#!/bin/sh
# Checks .clang-format conformance for every tracked .h/.cc file under the
# repo root given as $1 (default: the script's parent directory). Exit 0 on
# conformance, 1 on drift (with a per-file diff summary), 77 when
# clang-format is not installed (ctest maps 77 to SKIP via
# SKIP_RETURN_CODE).
set -u

root="${1:-$(dirname "$0")/..}"
cd "$root" || exit 2

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not installed; skipping" >&2
  exit 77
fi

status=0
for file in $(find src tools bench tests examples \
                   -name lint_fixtures -prune -o \
                   \( -name '*.h' -o -name '*.cc' \) -print | sort); do
  if ! clang-format --dry-run --Werror "$file" >/dev/null 2>&1; then
    echo "check_format: $file is not clang-format clean" >&2
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "check_format: run 'clang-format -i' on the files above" >&2
fi
exit "$status"
