// pgm_lint — the project-specific invariant checker (see tools/lint/lint.h
// for the rule catalogue). Exit codes: 0 clean, 1 findings, 2 usage/IO
// error. `ctest -L lint` runs this over the source tree.
//
// Usage:
//   pgm_lint --root <repo-root>        lint the whole tree
//   pgm_lint [--all-rules] <file>...   lint specific files (fixture mode)

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "tools/lint/lint.h"
#include "util/io.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: pgm_lint --root <dir> | pgm_lint [--all-rules] "
               "<file>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  pgm::lint::LintOptions options;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0) {
      if (i + 1 >= argc) return Usage();
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--all-rules") == 0) {
      options.all_rules = true;
    } else if (argv[i][0] == '-') {
      return Usage();
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (root.empty() == files.empty()) return Usage();

  std::vector<pgm::lint::Finding> findings;
  if (!root.empty()) {
    pgm::StatusOr<std::vector<pgm::lint::Finding>> tree =
        pgm::lint::LintTree(root, options);
    if (!tree.ok()) {
      std::fprintf(stderr, "pgm_lint: %s\n",
                   tree.status().ToString().c_str());
      return 2;
    }
    findings = std::move(tree).value();
  } else {
    for (const std::string& file : files) {
      pgm::StatusOr<std::string> content = pgm::ReadFileToString(file);
      if (!content.ok()) {
        std::fprintf(stderr, "pgm_lint: %s\n",
                     content.status().ToString().c_str());
        return 2;
      }
      std::vector<pgm::lint::Finding> file_findings =
          pgm::lint::LintSource(file, content.value(), options);
      findings.insert(findings.end(), file_findings.begin(),
                      file_findings.end());
    }
  }

  for (const pgm::lint::Finding& finding : findings) {
    std::fprintf(stderr, "%s\n",
                 pgm::lint::FormatFinding(finding).c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "pgm_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
