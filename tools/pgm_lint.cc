// pgm_lint — the project-specific invariant checker (see tools/lint/lint.h
// for the rule catalogue and tools/lint/analyze.h for the manifest-backed
// passes). Exit codes: 0 clean, 1 findings, 2 usage/IO error. `ctest -L
// lint` runs this over the source tree.
//
// Usage:
//   pgm_lint [flags] --root <repo-root>   lint + analyze the whole tree
//   pgm_lint [flags] <file>...            lint specific files (fixture mode)
//
// Flags:
//   --all-rules          also lint fixture directories (self-test mode)
//   --rules=<a,b,...>    run only the named rules; unknown names are a
//                        usage error listing the valid rule set
//   --manifests <dir>    load analyzer manifests from <dir> (file mode;
//                        --root mode loads <root>/tools/lint/manifests)

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "tools/lint/analyze.h"
#include "tools/lint/lint.h"
#include "util/io.h"

namespace {

int Usage() {
  std::string rules;
  for (const std::string& rule : pgm::lint::KnownRules()) {
    if (!rules.empty()) rules += ", ";
    rules += rule;
  }
  std::fprintf(stderr,
               "usage: pgm_lint [--all-rules] [--rules=<a,b,...>] "
               "[--manifests <dir>] (--root <dir> | <file>...)\n"
               "valid rules: %s\n",
               rules.c_str());
  return 2;
}

// Splits --rules=a,b,c and validates every name against KnownRules().
bool ParseRules(const char* arg, std::set<std::string>* out) {
  const std::vector<std::string>& known = pgm::lint::KnownRules();
  std::string list = arg;
  size_t start = 0;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    std::string name = list.substr(start, comma - start);
    if (!name.empty()) {
      bool ok = false;
      for (const std::string& rule : known) {
        if (rule == name) {
          ok = true;
          break;
        }
      }
      if (!ok) {
        std::fprintf(stderr, "pgm_lint: unknown rule '%s'\n", name.c_str());
        return false;
      }
      out->insert(name);
    }
    start = comma + 1;
  }
  if (out->empty()) {
    std::fprintf(stderr, "pgm_lint: --rules= names no rules\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string manifest_dir;
  pgm::lint::LintOptions options;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0) {
      if (i + 1 >= argc) return Usage();
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--all-rules") == 0) {
      options.all_rules = true;
    } else if (std::strncmp(argv[i], "--rules=", 8) == 0) {
      if (!ParseRules(argv[i] + 8, &options.only_rules)) return Usage();
    } else if (std::strcmp(argv[i], "--manifests") == 0) {
      if (i + 1 >= argc) return Usage();
      manifest_dir = argv[++i];
    } else if (argv[i][0] == '-') {
      return Usage();
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (root.empty() == files.empty()) return Usage();

  pgm::lint::AnalyzerManifests manifests;
  if (!manifest_dir.empty()) {
    pgm::StatusOr<pgm::lint::AnalyzerManifests> loaded =
        pgm::lint::LoadManifests(manifest_dir);
    if (!loaded.ok()) {
      std::fprintf(stderr, "pgm_lint: %s\n",
                   loaded.status().ToString().c_str());
      return 2;
    }
    manifests = std::move(loaded).value();
    options.manifests = &manifests;
  }

  std::vector<pgm::lint::Finding> findings;
  if (!root.empty()) {
    pgm::StatusOr<std::vector<pgm::lint::Finding>> tree =
        pgm::lint::LintTree(root, options);
    if (!tree.ok()) {
      std::fprintf(stderr, "pgm_lint: %s\n",
                   tree.status().ToString().c_str());
      return 2;
    }
    findings = std::move(tree).value();
  } else {
    for (const std::string& file : files) {
      pgm::StatusOr<std::string> content = pgm::ReadFileToString(file);
      if (!content.ok()) {
        std::fprintf(stderr, "pgm_lint: %s\n",
                     content.status().ToString().c_str());
        return 2;
      }
      std::vector<pgm::lint::Finding> file_findings =
          pgm::lint::LintSource(file, content.value(), options);
      findings.insert(findings.end(), file_findings.begin(),
                      file_findings.end());
    }
  }

  for (const pgm::lint::Finding& finding : findings) {
    std::fprintf(stderr, "%s\n",
                 pgm::lint::FormatFinding(finding).c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "pgm_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
