#ifndef PGM_TOOLS_DIFFERENTIAL_PARAMS_H_
#define PGM_TOOLS_DIFFERENTIAL_PARAMS_H_

// The randomized-oracle configuration sweep shared by the differential test
// and the golden generator (tools/gen_differential_goldens). Both draw the
// same configurations from the same fixed seed, so the committed fixture
// file and the assertions agree byte-for-byte; regenerating the fixtures on
// an implementation whose output drifted produces a visible diff instead of
// a silently moved goalpost.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/gap.h"
#include "core/miner.h"
#include "util/random.h"
#include "util/string_util.h"

namespace pgm::difftest {

/// One randomized oracle configuration: the data-generation knobs plus the
/// mining knobs the satellite sweep randomizes (alphabet size, sequence
/// length, gap requirement, ρs, em_order).
struct OracleConfig {
  std::string alphabet;
  std::size_t length = 0;
  std::int64_t min_gap = 0;
  std::int64_t max_gap = 0;
  double rho = 0.0;
  std::int64_t em_order = 0;
  std::uint64_t data_seed = 0;
};

inline constexpr std::size_t kNumOracleConfigs = 50;
inline constexpr std::uint64_t kOracleSweepSeed = 0x9e3779b97f4a7c15ull;

/// Draws the sweep's configurations from the fixed seed. Ranges keep the
/// enumeration oracle tractable (short sequences, alphabets of 2-5) while
/// covering rigid gaps (W = 1), adjacent characters (N = M = 0), and wide
/// windows.
inline std::vector<OracleConfig> OracleConfigs() {
  std::vector<OracleConfig> configs;
  configs.reserve(kNumOracleConfigs);
  Rng rng(kOracleSweepSeed);
  for (std::size_t i = 0; i < kNumOracleConfigs; ++i) {
    OracleConfig config;
    const std::int64_t alphabet_size = rng.UniformRange(2, 5);
    config.alphabet =
        std::string("ABCDE").substr(0, static_cast<std::size_t>(alphabet_size));
    config.length = static_cast<std::size_t>(rng.UniformRange(24, 96));
    config.min_gap = rng.UniformRange(0, 5);
    config.max_gap = config.min_gap + rng.UniformRange(0, 4);
    static constexpr double kRhoBuckets[] = {0.005, 0.01, 0.02, 0.04, 0.08};
    config.rho = kRhoBuckets[rng.UniformInt(5)];
    config.em_order = rng.UniformRange(2, 10);
    config.data_seed = rng.Next();
    configs.push_back(std::move(config));
  }
  return configs;
}

inline MinerConfig ToMinerConfig(const OracleConfig& config) {
  MinerConfig miner_config;
  miner_config.min_gap = config.min_gap;
  miner_config.max_gap = config.max_gap;
  miner_config.min_support_ratio = config.rho;
  miner_config.start_length = 1;
  miner_config.em_order = config.em_order;
  return miner_config;
}

/// The length horizon below which every engine must agree exactly with the
/// brute-force oracle; capped at 5 to bound |Σ|^l enumeration cost.
inline std::size_t OracleHorizon(const OracleConfig& config) {
  GapRequirement gap = *GapRequirement::Create(config.min_gap, config.max_gap);
  return std::min<std::size_t>(
      5, static_cast<std::size_t>(gap.MaxGuaranteedLength(
             static_cast<std::int64_t>(config.length))));
}

/// Canonical byte representation of the pattern set with length <=
/// max_length: "shorthand=support" joined with ';', in the engines' output
/// order (length, then symbols). Equality of these strings is equality of
/// pattern sets *and* supports.
inline std::string CanonicalPatterns(const MiningResult& result,
                                     std::size_t max_length) {
  std::string canonical;
  for (const FrequentPattern& fp : result.patterns) {
    if (fp.pattern.length() > max_length) continue;
    if (!canonical.empty()) canonical += ';';
    canonical += fp.pattern.ToShorthand();
    canonical += '=';
    canonical += std::to_string(fp.support);
  }
  return canonical;
}

/// One-line description of a configuration for SCOPED_TRACE / fixture
/// comments.
inline std::string DescribeConfig(const OracleConfig& config) {
  return StrFormat("alphabet=%s length=%zu gap=[%lld,%lld] rho=%g em=%lld",
                   config.alphabet.c_str(), config.length,
                   static_cast<long long>(config.min_gap),
                   static_cast<long long>(config.max_gap), config.rho,
                   static_cast<long long>(config.em_order));
}

}  // namespace pgm::difftest

#endif  // PGM_TOOLS_DIFFERENTIAL_PARAMS_H_
