#!/bin/sh
# Runs the Clang Static Analyzer (`clang --analyze`) over src/ and tools/
# with a curated checker set, pinned at zero findings. Exit 0 when clean,
# 1 on findings, 77 when clang is unavailable (ctest maps 77 to SKIP via
# SKIP_RETURN_CODE).
#
# `clang --analyze` exits 0 even when it reports path-sensitive bugs, so
# the gate greps the diagnostic stream for "warning:" instead of trusting
# the exit code. Checker set: the core and cplusplus packages (null
# derefs, uninitialized reads, use-after-move/free, delete mismatches)
# plus deadcode.DeadStores and the security checks that map to this
# codebase (memcpy bounds, tainted sizes). unix.Malloc covers the arena
# code paths that the raw-alloc lint waives deliberately.
set -u

root="${1:?usage: run_clang_analyze.sh <repo-root>}"

if ! command -v clang >/dev/null 2>&1; then
  echo "run_clang_analyze: clang not installed; skipping" >&2
  exit 77
fi

cd "$root" || exit 2

checkers="core,cplusplus,deadcode.DeadStores,unix.Malloc,unix.MallocSizeof,security.insecureAPI.bcmp,security.insecureAPI.bcopy"
log=$(mktemp) || exit 2
trap 'rm -f "$log"' EXIT

status=0
for file in $(find src tools -name '*.cc' -print | sort); do
  # kernel_avx2.cc is compiled with AVX2 enabled in the real build
  # (tools/../src/core/CMakeLists.txt); mirror that so the intrinsics parse.
  extra=""
  case "$file" in
    *kernel_avx2*) extra="-mavx2" ;;
  esac
  # shellcheck disable=SC2086
  if ! clang --analyze \
       -Xclang -analyzer-checker="$checkers" \
       --analyzer-output text \
       -std=c++17 $extra -I src -I . \
       -o /dev/null "$file" >"$log" 2>&1; then
    status=2
    cat "$log" >&2
    echo "run_clang_analyze: clang failed on $file" >&2
    continue
  fi
  if grep -q "warning:" "$log"; then
    cat "$log" >&2
    status=1
  fi
done
exit "$status"
