// Compares a fresh bench_regression metrics file against the committed
// baseline and fails (exit 1) when any tracked metric regresses by more
// than the tolerance (default 10%). Usage:
//
//   bench_check <baseline.json> <current.json> [--tolerance 0.10]
//
// The files are the flat `"key": number` JSON bench_regression emits.
// Direction is inferred from the key: "*_ms" metrics regress by going up,
// "*_speedup" / "*_ratio" metrics regress by going down. Keys prefixed
// "info." are informational and never checked; a tracked baseline key
// missing from the current file is a failure (a silently dropped metric is
// a regression of the harness itself). A baseline whose `info.abi_stamp`
// is missing or older than util/bench_abi.h's current stamp draws a
// deprecation warning (not a failure) asking for regeneration.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "util/bench_abi.h"
#include "util/flags.h"
#include "util/io.h"
#include "util/status.h"

namespace pgm {
namespace {

// Parses the flat `{"key": number, ...}` subset of JSON that
// bench_regression emits. Anything structurally richer is a parse error —
// this is a regression gate, not a JSON library.
StatusOr<std::map<std::string, double>> ParseFlatMetrics(
    const std::string& text) {
  std::map<std::string, double> metrics;
  std::size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '"') {
      ++i;
      continue;
    }
    const std::size_t key_begin = ++i;
    while (i < text.size() && text[i] != '"') ++i;
    if (i >= text.size()) {
      return Status::Corruption("unterminated key in metrics JSON");
    }
    const std::string key = text.substr(key_begin, i - key_begin);
    ++i;  // closing quote
    while (i < text.size() &&
           (std::isspace(static_cast<unsigned char>(text[i])) ||
            text[i] == ':')) {
      ++i;
    }
    const std::size_t value_begin = i;
    while (i < text.size() && text[i] != ',' && text[i] != '\n' &&
           text[i] != '}') {
      ++i;
    }
    const std::string value = text.substr(value_begin, i - value_begin);
    char* end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end == value.c_str()) {
      return Status::Corruption("non-numeric value for key '" + key + "'");
    }
    metrics[key] = parsed;
  }
  if (metrics.empty()) {
    return Status::Corruption("no metrics found in JSON");
  }
  return metrics;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

int Main(int argc, char** argv) {
  FlagSet flags(
      "Fails when any tracked metric of <current.json> regresses more than "
      "--tolerance relative to <baseline.json>.");
  double tolerance = 0.10;
  flags.AddDouble("tolerance", &tolerance,
                  "allowed relative regression (0.10 = 10%)");
  const Status parse_status = flags.Parse(argc, argv);
  if (!parse_status.ok()) {
    std::fprintf(stderr, "%s\n", parse_status.message().c_str());
    return parse_status.code() == StatusCode::kNotFound ? 0 : 2;
  }
  if (flags.positional_args().size() != 2) {
    std::fprintf(stderr, "usage: bench_check <baseline.json> <current.json>\n");
    return 2;
  }

  auto load = [](const std::string& path)
      -> StatusOr<std::map<std::string, double>> {
    StatusOr<std::string> text = ReadFileToString(path);
    if (!text.ok()) return text.status();
    return ParseFlatMetrics(*text);
  };
  StatusOr<std::map<std::string, double>> baseline =
      load(flags.positional_args()[0]);
  StatusOr<std::map<std::string, double>> current =
      load(flags.positional_args()[1]);
  if (!baseline.ok() || !current.ok()) {
    std::fprintf(stderr, "bench_check: %s\n",
                 (!baseline.ok() ? baseline : current).status().ToString()
                     .c_str());
    return 2;
  }

  // Deprecation check, not a gate: a baseline measured under an older
  // benchmark ABI (or before stamps existed) still compares, but the
  // numbers may not mean what the current harness measures — warn so the
  // baseline gets regenerated.
  const auto stamp_it = baseline->find("info.abi_stamp");
  if (stamp_it == baseline->end()) {
    std::fprintf(stderr,
                 "WARNING: baseline %s predates ABI stamps (current stamp "
                 "%g); regenerate it with bench_regression\n",
                 flags.positional_args()[0].c_str(), kBenchAbiStamp);
  } else if (stamp_it->second < kBenchAbiStamp) {
    std::fprintf(stderr,
                 "WARNING: baseline %s has ABI stamp %g, older than the "
                 "current harness's %g; its tracked metrics are deprecated "
                 "-- regenerate it with bench_regression\n",
                 flags.positional_args()[0].c_str(), stamp_it->second,
                 kBenchAbiStamp);
  }

  int failures = 0;
  for (const auto& [key, base] : *baseline) {
    if (key.rfind("info.", 0) == 0) continue;
    const auto it = current->find(key);
    if (it == current->end()) {
      std::fprintf(stderr, "FAIL %s: tracked metric missing from current\n",
                   key.c_str());
      ++failures;
      continue;
    }
    const double now = it->second;
    const bool lower_is_better = EndsWith(key, "_ms");
    const bool higher_is_better =
        EndsWith(key, "_speedup") || EndsWith(key, "_ratio");
    if (!lower_is_better && !higher_is_better) {
      std::printf("  ok  %s: %g (untracked direction, informational)\n",
                  key.c_str(), now);
      continue;
    }
    const double limit =
        lower_is_better ? base * (1.0 + tolerance) : base * (1.0 - tolerance);
    const bool regressed = lower_is_better ? now > limit : now < limit;
    if (regressed) {
      std::fprintf(stderr, "FAIL %s: %g vs baseline %g (limit %g)\n",
                   key.c_str(), now, base, limit);
      ++failures;
    } else {
      std::printf("  ok  %s: %g vs baseline %g (limit %g)\n", key.c_str(),
                  now, base, limit);
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "bench_check: %d metric(s) regressed beyond %.0f%%\n",
                 failures, tolerance * 100.0);
    return 1;
  }
  std::printf("bench_check: all tracked metrics within %.0f%% of baseline\n",
              tolerance * 100.0);
  return 0;
}

}  // namespace
}  // namespace pgm

int main(int argc, char** argv) { return pgm::Main(argc, argv); }
