#include "tools/lint/analyze.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdlib>

#include "util/io.h"
#include "util/string_util.h"

namespace pgm {
namespace lint {
namespace {

using internal::FindWord;
using internal::HasWaiver;

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Path components, split on '/'.
std::vector<std::string> Components(const std::string& path) {
  std::vector<std::string> parts;
  for (const std::string& part : Split(path, '/')) {
    if (!part.empty()) parts.push_back(part);
  }
  return parts;
}

const std::set<std::string>& TopDirs() {
  static const std::set<std::string> kTop = {"src", "tools", "tests", "bench",
                                            "examples"};
  return kTop;
}

/// Strips comment text from a manifest line.
std::string StripManifestComment(const std::string& line) {
  const std::size_t hash = line.find('#');
  return std::string(
      Trim(hash == std::string::npos ? line : line.substr(0, hash)));
}

}  // namespace

// --- LayeringManifest ---

StatusOr<LayeringManifest> LayeringManifest::Parse(const std::string& text) {
  LayeringManifest manifest;
  std::size_t line_number = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    const std::string line = StripManifestComment(raw_line);
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("layers manifest line %zu: expected '<module>: "
                    "<deps...>', got '%s'",
                    line_number, line.c_str()));
    }
    const std::string module = std::string(Trim(line.substr(0, colon)));
    if (module.empty()) {
      return Status::InvalidArgument(StrFormat(
          "layers manifest line %zu: empty module name", line_number));
    }
    if (manifest.allowed.count(module) != 0) {
      return Status::InvalidArgument(
          StrFormat("layers manifest line %zu: module '%s' declared twice",
                    line_number, module.c_str()));
    }
    std::set<std::string>& deps = manifest.allowed[module];
    for (const std::string& dep : Split(line.substr(colon + 1), ' ')) {
      const std::string trimmed = std::string(Trim(dep));
      if (!trimmed.empty()) deps.insert(trimmed);
    }
    deps.erase(module);  // self-edges are implicit
  }
  if (manifest.allowed.empty()) {
    return Status::InvalidArgument("layers manifest declares no modules");
  }
  return manifest;
}

Status LayeringManifest::CheckAcyclic() const {
  // Iterative three-color DFS over the declared edges. Edges to undeclared
  // modules are ignored here (CheckLayering reports them per-file).
  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  for (const auto& [module, deps] : allowed) color[module] = Color::kWhite;
  for (const auto& [root, root_deps] : allowed) {
    if (color[root] != Color::kWhite) continue;
    // Stack of (module, next-dep iterator position) plus the gray path for
    // the diagnostic.
    std::vector<std::pair<std::string, std::set<std::string>::const_iterator>>
        stack;
    stack.emplace_back(root, allowed.at(root).begin());
    color[root] = Color::kGray;
    while (!stack.empty()) {
      auto& [module, it] = stack.back();
      const std::set<std::string>& deps = allowed.at(module);
      if (it == deps.end()) {
        color[module] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const std::string dep = *it++;
      auto dep_color = color.find(dep);
      if (dep_color == color.end()) continue;  // undeclared: skip
      if (dep_color->second == Color::kGray) {
        std::string cycle;
        for (const auto& frame : stack) cycle += frame.first + " -> ";
        cycle += dep;
        return Status::InvalidArgument("layering manifest has a cycle: " +
                                       cycle);
      }
      if (dep_color->second == Color::kWhite) {
        color[dep] = Color::kGray;
        stack.emplace_back(dep, allowed.at(dep).begin());
      }
    }
  }
  return Status::OK();
}

// --- LockOrderManifest ---

StatusOr<LockOrderManifest> LockOrderManifest::Parse(const std::string& text) {
  LockOrderManifest manifest;
  std::set<int> ranks;
  std::size_t line_number = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    const std::string line = StripManifestComment(raw_line);
    if (line.empty()) continue;
    std::vector<std::string> fields;
    for (const std::string& field : Split(line, ' ')) {
      if (!std::string(Trim(field)).empty()) {
        fields.push_back(std::string(Trim(field)));
      }
    }
    if (fields.size() != 4) {
      return Status::InvalidArgument(
          StrFormat("locks manifest line %zu: expected '<rank> <name> "
                    "<path-substring> <expression>', got '%s'",
                    line_number, line.c_str()));
    }
    RankedLock lock;
    char* end = nullptr;
    lock.rank = static_cast<int>(std::strtol(fields[0].c_str(), &end, 10));
    if (end == nullptr || *end != '\0' || lock.rank <= 0) {
      return Status::InvalidArgument(
          StrFormat("locks manifest line %zu: rank '%s' is not a positive "
                    "integer",
                    line_number, fields[0].c_str()));
    }
    if (!ranks.insert(lock.rank).second) {
      return Status::InvalidArgument(StrFormat(
          "locks manifest line %zu: duplicate rank %d — the hierarchy "
          "must be a total order",
          line_number, lock.rank));
    }
    lock.name = fields[1];
    lock.path_substring = fields[2];
    lock.expression = fields[3];
    manifest.locks.push_back(std::move(lock));
  }
  return manifest;
}

const RankedLock* LockOrderManifest::Resolve(
    const std::string& path, const std::string& expression) const {
  for (const RankedLock& lock : locks) {
    if (path.find(lock.path_substring) == std::string::npos) continue;
    if (FindWord(expression, lock.expression) == std::string::npos) continue;
    return &lock;
  }
  return nullptr;
}

// --- DeterminismManifest ---

StatusOr<DeterminismManifest> DeterminismManifest::Parse(
    const std::string& text) {
  DeterminismManifest manifest;
  std::size_t line_number = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    const std::string line = StripManifestComment(raw_line);
    if (line.empty()) continue;
    const std::size_t space = line.find(' ');
    const std::string directive =
        space == std::string::npos ? line : line.substr(0, space);
    if (directive != "wall-clock-seam" || space == std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("determinism manifest line %zu: unknown directive '%s' "
                    "(expected 'wall-clock-seam <path-substring>')",
                    line_number, directive.c_str()));
    }
    const std::string seam = std::string(Trim(line.substr(space + 1)));
    if (seam.empty()) {
      return Status::InvalidArgument(StrFormat(
          "determinism manifest line %zu: empty seam path", line_number));
    }
    manifest.wall_clock_seams.push_back(seam);
  }
  return manifest;
}

bool DeterminismManifest::SanctionsWallClock(const std::string& path) const {
  for (const std::string& seam : wall_clock_seams) {
    if (path.find(seam) != std::string::npos) return true;
  }
  return false;
}

// --- Loading ---

StatusOr<AnalyzerManifests> LoadManifests(const std::string& dir) {
  AnalyzerManifests manifests;
  PGM_ASSIGN_OR_RETURN(std::string layers,
                       ReadFileToString(dir + "/layers.txt"));
  PGM_ASSIGN_OR_RETURN(manifests.layering, LayeringManifest::Parse(layers));
  PGM_RETURN_IF_ERROR(manifests.layering.CheckAcyclic());
  PGM_ASSIGN_OR_RETURN(std::string locks, ReadFileToString(dir + "/locks.txt"));
  PGM_ASSIGN_OR_RETURN(manifests.lock_order, LockOrderManifest::Parse(locks));
  PGM_ASSIGN_OR_RETURN(std::string determinism,
                       ReadFileToString(dir + "/determinism.txt"));
  PGM_ASSIGN_OR_RETURN(manifests.determinism,
                       DeterminismManifest::Parse(determinism));
  return manifests;
}

// --- Module mapping ---

std::string ModuleOf(const std::string& path) {
  const std::vector<std::string> parts = Components(path);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (TopDirs().count(parts[i]) == 0) continue;
    if (parts[i] != "src") return parts[i];
    return i + 1 < parts.size() ? parts[i + 1] : std::string();
  }
  return std::string();
}

std::string IncludeTargetModule(const std::string& include_path) {
  const std::size_t slash = include_path.find('/');
  if (slash == std::string::npos) return std::string();
  std::string first = include_path.substr(0, slash);
  // Includes are rooted either at src/ ("util/io.h") or at the project root
  // ("tools/lint/lint.h"); "src/x/y.h" would be both, so normalize.
  if (first == "src") {
    const std::size_t next = include_path.find('/', slash + 1);
    first = include_path.substr(slash + 1, next - slash - 1);
  }
  return first;
}

namespace {

/// The include target of a stripped line, or "" when the line is not a
/// quoted #include. Quotes are blanked by the stripper, so the target is
/// recovered from the raw line.
std::string QuotedIncludeTarget(const std::string& raw_line) {
  std::size_t at = raw_line.find('#');
  if (at == std::string::npos) return std::string();
  ++at;
  while (at < raw_line.size() && raw_line[at] == ' ') ++at;
  if (raw_line.compare(at, 7, "include") != 0) return std::string();
  at += 7;
  while (at < raw_line.size() && raw_line[at] == ' ') ++at;
  if (at >= raw_line.size() || raw_line[at] != '"') return std::string();
  const std::size_t close = raw_line.find('"', at + 1);
  if (close == std::string::npos) return std::string();
  return raw_line.substr(at + 1, close - at - 1);
}

}  // namespace

// --- Layering pass ---

std::vector<Finding> CheckLayering(const std::string& path,
                                   const std::vector<std::string>& raw,
                                   const std::vector<std::string>& stripped,
                                   const LayeringManifest& manifest) {
  std::vector<Finding> findings;
  const std::string from = ModuleOf(path);
  if (from.empty()) return findings;
  const auto declared = manifest.allowed.find(from);
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    // Only real preprocessor lines: the stripper blanks commented-out
    // includes' text but leaves the raw line, so gate on the stripped view.
    if (stripped[i].find("#") == std::string::npos) continue;
    const std::string target = QuotedIncludeTarget(raw[i]);
    if (target.empty()) continue;
    if (stripped[i].find("include") == std::string::npos) continue;
    const std::string to = IncludeTargetModule(target);
    if (to.empty() || to == from) continue;
    if (HasWaiver(raw, i, "layering")) continue;
    if (declared == manifest.allowed.end()) {
      findings.push_back(Finding{
          path, i + 1, "layering",
          StrFormat("module '%s' is not declared in the layering manifest "
                    "(tools/lint/manifests/layers.txt); every module must "
                    "declare its place in the DAG before it may include "
                    "across a boundary",
                    from.c_str())});
      continue;
    }
    if (declared->second.count(to) == 0) {
      findings.push_back(Finding{
          path, i + 1, "layering",
          StrFormat("undeclared layering edge %s -> %s (include of \"%s\"); "
                    "the module DAG in tools/lint/manifests/layers.txt does "
                    "not allow it — move the helper into the owning module "
                    "or declare the edge deliberately",
                    from.c_str(), to.c_str(), target.c_str())});
    }
  }
  return findings;
}

// --- Lock-order pass ---

std::vector<Finding> CheckLockOrder(const std::string& path,
                                    const std::vector<std::string>& raw,
                                    const std::vector<std::string>& stripped,
                                    const LockOrderManifest& manifest) {
  std::vector<Finding> findings;
  struct Held {
    int depth = 0;
    const RankedLock* lock = nullptr;
  };
  std::vector<Held> held;
  int depth = 0;
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    const std::string& line = stripped[i];
    std::size_t scan = 0;
    while (scan < line.size()) {
      const char c = line[scan];
      if (c == '{') {
        ++depth;
        ++scan;
        continue;
      }
      if (c == '}') {
        --depth;
        while (!held.empty() && held.back().depth > depth) held.pop_back();
        ++scan;
        continue;
      }
      // A MutexLock declaration: `MutexLock <name>(<expr>);`.
      if (c == 'M' && line.compare(scan, 9, "MutexLock") == 0 &&
          (scan == 0 || !IsWordChar(line[scan - 1])) &&
          (scan + 9 >= line.size() || !IsWordChar(line[scan + 9]))) {
        std::size_t open = line.find('(', scan + 9);
        if (open != std::string::npos) {
          const std::size_t close = line.find(')', open + 1);
          if (close != std::string::npos) {
            const std::string expr = line.substr(open + 1, close - open - 1);
            const RankedLock* lock = manifest.Resolve(path, expr);
            if (lock != nullptr) {
              if (!held.empty() && held.back().lock->rank >= lock->rank &&
                  !HasWaiver(raw, i, "lock-order")) {
                findings.push_back(Finding{
                    path, i + 1, "lock-order",
                    StrFormat(
                        "acquiring '%s' (rank %d) while holding '%s' (rank "
                        "%d) inverts the declared hierarchy "
                        "(tools/lint/manifests/locks.txt); nested scopes "
                        "must acquire in strictly increasing rank order",
                        lock->name.c_str(), lock->rank,
                        held.back().lock->name.c_str(),
                        held.back().lock->rank)});
              }
              held.push_back(Held{depth, lock});
            }
            scan = close + 1;
            continue;
          }
        }
      }
      ++scan;
    }
  }
  return findings;
}

// --- Include-cycle project pass ---

std::vector<Finding> CheckIncludeCycles(
    const std::vector<std::pair<std::string, std::string>>& files) {
  // Resolve include targets to indices in `files` by suffix match: the
  // include "util/io.h" names the file whose path ends in "/util/io.h"
  // (or "/src/util/io.h" — both spellings resolve to the same file).
  std::map<std::string, std::size_t> by_suffix;
  for (std::size_t i = 0; i < files.size(); ++i) {
    by_suffix["/" + files[i].first] = i;
  }
  auto resolve = [&](const std::string& target) -> std::size_t {
    for (const std::string& candidate :
         {"/" + target, "/src/" + target}) {
      for (const auto& [suffix, index] : by_suffix) {
        if (suffix.size() >= candidate.size() &&
            suffix.compare(suffix.size() - candidate.size(),
                           candidate.size(), candidate) == 0) {
          return index;
        }
      }
    }
    return files.size();
  };

  struct Edge {
    std::size_t to = 0;
    std::size_t line = 0;  // 1-based include line in the from-file
  };
  std::vector<std::vector<Edge>> edges(files.size());
  std::vector<std::vector<std::string>> raw_lines(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    std::vector<std::string> raw;
    std::vector<std::string> stripped;
    internal::SplitAndStrip(files[i].second, &raw, &stripped);
    raw_lines[i] = raw;
    for (std::size_t j = 0; j < stripped.size(); ++j) {
      if (stripped[j].find("include") == std::string::npos) continue;
      const std::string target = QuotedIncludeTarget(raw[j]);
      if (target.empty()) continue;
      const std::size_t to = resolve(target);
      if (to < files.size() && to != i) {
        edges[i].push_back(Edge{to, j + 1});
      }
    }
  }

  // Three-color DFS; the first back edge found per component is reported.
  std::vector<Finding> findings;
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(files.size(), kWhite);
  struct Frame {
    std::size_t node = 0;
    std::size_t next_edge = 0;
  };
  for (std::size_t root = 0; root < files.size(); ++root) {
    if (color[root] != kWhite) continue;
    std::vector<Frame> stack{Frame{root, 0}};
    color[root] = kGray;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next_edge >= edges[frame.node].size()) {
        color[frame.node] = kBlack;
        stack.pop_back();
        continue;
      }
      const Edge edge = edges[frame.node][frame.next_edge++];
      if (color[edge.to] == kGray) {
        // Reconstruct the cycle from the gray stack.
        std::string cycle;
        bool in_cycle = false;
        for (const Frame& f : stack) {
          if (f.node == edge.to) in_cycle = true;
          if (in_cycle) cycle += files[f.node].first + " -> ";
        }
        cycle += files[edge.to].first;
        if (!HasWaiver(raw_lines[frame.node], edge.line - 1,
                       "include-cycle")) {
          findings.push_back(Finding{
              files[frame.node].first, edge.line, "include-cycle",
              "file-level include cycle: " + cycle +
                  "; include guards mask the cycle until an ordering "
                  "change breaks the build — split the shared declarations "
                  "into a lower header"});
        }
        continue;
      }
      if (color[edge.to] == kWhite) {
        color[edge.to] = kGray;
        stack.push_back(Frame{edge.to, 0});
      }
    }
  }
  return findings;
}

}  // namespace lint
}  // namespace pgm
