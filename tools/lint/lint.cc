#include "tools/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <string_view>

#include "tools/lint/analyze.h"
#include "util/io.h"
#include "util/string_util.h"

namespace pgm {
namespace lint {
namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

namespace internal {

void SplitAndStrip(const std::string& content, std::vector<std::string>* raw,
                   std::vector<std::string>* stripped) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  std::string raw_line;
  std::string stripped_line;
  auto flush = [&]() {
    raw->push_back(raw_line);
    stripped->push_back(stripped_line);
    raw_line.clear();
    stripped_line.clear();
  };
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      flush();
      continue;
    }
    raw_line.push_back(c);
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          raw_line.push_back(next);
          stripped_line.append("  ");
          ++i;
        } else if (c == '"') {
          state = State::kString;
          stripped_line.push_back(' ');
        } else if (c == '\'') {
          // A quote right after an identifier/number char is a C++14 digit
          // separator (200'000), not a char-literal open.
          if (!stripped_line.empty() && IsWordChar(stripped_line.back())) {
            stripped_line.push_back(c);
          } else {
            state = State::kChar;
            stripped_line.push_back(' ');
          }
        } else {
          stripped_line.push_back(c);
        }
        break;
      case State::kLineComment:
        break;  // dropped; newline resets
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          raw_line.push_back(next);
          ++i;
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          raw_line.push_back(next);
          ++i;
        } else if (c == quote) {
          state = State::kCode;
        }
        break;
      }
    }
  }
  if (!raw_line.empty() || !stripped_line.empty()) flush();
}

}  // namespace internal

namespace {

using internal::SplitAndStrip;

// The waiver marker, split so the linter's own source does not read as a
// waiver (or as an unknown-waiver finding) when linting itself.
constexpr const char kWaiverMarker[] = "pgm-lint" ": allow(";
constexpr std::size_t kWaiverMarkerLen = sizeof(kWaiverMarker) - 1;

/// True when `line` names `rule` inside an allow(...) waiver marker.
bool LineWaives(const std::string& line, const std::string& rule) {
  const std::size_t at = line.find(kWaiverMarker);
  if (at == std::string::npos) return false;
  const std::size_t close = line.find(')', at);
  if (close == std::string::npos) return false;
  const std::string list =
      line.substr(at + kWaiverMarkerLen, close - at - kWaiverMarkerLen);
  for (const std::string& allowed : Split(list, ',')) {
    if (Trim(allowed) == rule) return true;
  }
  return false;
}

bool FileHasWaiver(const std::vector<std::string>& raw,
                   const std::string& rule) {
  for (const std::string& line : raw) {
    if (LineWaives(line, rule)) return true;
  }
  return false;
}

}  // namespace

namespace internal {

bool HasWaiver(const std::vector<std::string>& raw, std::size_t index,
               const std::string& rule) {
  if (LineWaives(raw[index], rule)) return true;
  return index > 0 && LineWaives(raw[index - 1], rule);
}

std::size_t FindWord(const std::string& line, const std::string& word,
                     std::size_t from) {
  std::size_t at = line.find(word, from);
  while (at != std::string::npos) {
    const bool left_ok = at == 0 || !IsWordChar(line[at - 1]);
    const std::size_t end = at + word.size();
    const bool right_ok = end >= line.size() || !IsWordChar(line[end]);
    if (left_ok && right_ok) return at;
    at = line.find(word, at + 1);
  }
  return std::string::npos;
}

}  // namespace internal

namespace {

using internal::FindWord;
using internal::HasWaiver;

/// Whole-word `word` immediately followed by '(' (ignoring spaces).
bool HasCall(const std::string& line, const std::string& word) {
  std::size_t at = FindWord(line, word);
  while (at != std::string::npos) {
    std::size_t after = at + word.size();
    while (after < line.size() && line[after] == ' ') ++after;
    if (after < line.size() && line[after] == '(') return true;
    at = FindWord(line, word, at + 1);
  }
  return false;
}

/// The word before position `at`, skipping trailing spaces ("" when none).
std::string WordBefore(const std::string& line, std::size_t at) {
  std::size_t end = at;
  while (end > 0 && line[end - 1] == ' ') --end;
  std::size_t begin = end;
  while (begin > 0 && IsWordChar(line[begin - 1])) --begin;
  return line.substr(begin, end - begin);
}

// --- Line-scoped rules. Each returns a message when the stripped line
// violates the rule, or "" when clean. ---

std::string CheckNakedLock(const std::string& line) {
  for (const char* method : {"lock", "unlock", "try_lock"}) {
    std::size_t at = FindWord(line, method);
    while (at != std::string::npos) {
      const bool member_call =
          (at >= 1 && line[at - 1] == '.') ||
          (at >= 2 && line[at - 2] == '-' && line[at - 1] == '>');
      std::size_t after = at + std::string(method).size();
      const bool is_call = after < line.size() && line[after] == '(';
      if (member_call && is_call) {
        return std::string("naked ") + method +
               "() call; hold locks through pgm::MutexLock (util/mutex.h)";
      }
      at = FindWord(line, method, at + 1);
    }
  }
  return "";
}

std::string CheckRawAlloc(const std::string& line) {
  std::size_t at = FindWord(line, "new");
  if (at != std::string::npos && WordBefore(line, at) != "operator") {
    return "raw `new` in src/core; PIL storage must come from PilArena so "
           "the MiningGuard ledger stays truthful";
  }
  at = FindWord(line, "delete");
  if (at != std::string::npos && WordBefore(line, at) != "operator") {
    // `= delete;` (deleted special member) is a declaration, not a
    // deallocation.
    std::size_t before = at;
    while (before > 0 && line[before - 1] == ' ') --before;
    if (before == 0 || line[before - 1] != '=') {
      return "raw `delete` in src/core; arena-owned rows are reclaimed by "
             "TruncateToWatermark/Clear, never freed directly";
    }
  }
  for (const char* fn : {"malloc", "calloc", "realloc", "free"}) {
    if (HasCall(line, fn)) {
      return std::string("raw ") + fn +
             "() in src/core; use PilArena or standard containers";
    }
  }
  return "";
}

std::string CheckUnseededRng(const std::string& line) {
  if (line.find("std::rand") != std::string::npos || HasCall(line, "rand") ||
      HasCall(line, "srand")) {
    return "std::rand/srand is unseeded global state; use util/random.h's "
           "Rng with an explicit seed";
  }
  if (FindWord(line, "random_device") != std::string::npos) {
    return "std::random_device is nondeterministic; runs must be "
           "reproducible from an explicit seed (util/random.h)";
  }
  for (const char* type : {"mt19937", "mt19937_64"}) {
    std::size_t at = FindWord(line, type);
    while (at != std::string::npos) {
      std::size_t after = at + std::string(type).size();
      while (after < line.size() && line[after] == ' ') ++after;
      std::size_t name_end = after;
      while (name_end < line.size() && IsWordChar(line[name_end])) ++name_end;
      std::size_t semi = name_end;
      while (semi < line.size() && line[semi] == ' ') ++semi;
      if (name_end > after && semi < line.size() && line[semi] == ';') {
        return "default-constructed mt19937 uses the fixed default seed "
               "silently; seed explicitly via util/random.h";
      }
      at = FindWord(line, type, at + 1);
    }
  }
  return "";
}

std::string CheckRawIntrinsics(const std::string& line) {
  // Identifier-boundary scan for the x86 vector-intrinsic prefixes: the
  // _mm/_mm256/_mm512 call families and the __m128/__m256/__m512 register
  // types. "_mm" alone covers every call-family width.
  static constexpr const char* kPrefixes[] = {"_mm", "__m128", "__m256",
                                              "__m512"};
  for (const char* prefix : kPrefixes) {
    const std::string needle(prefix);
    std::size_t at = line.find(needle);
    while (at != std::string::npos) {
      if (at == 0 || !IsWordChar(line[at - 1])) {
        return "raw vector intrinsic outside kernel_avx2.cc; SIMD lives "
               "behind the portable kernel wrapper (core/kernel.h) so every "
               "other translation unit stays architecture-neutral";
      }
      at = line.find(needle, at + 1);
    }
  }
  return "";
}

std::string CheckUndocumentedDiscard(const std::string& stripped,
                                     const std::vector<std::string>& raw,
                                     std::size_t index) {
  std::size_t at = stripped.find("(void)");
  while (at != std::string::npos) {
    std::size_t after = at + 6;
    while (after < stripped.size() && stripped[after] == ' ') ++after;
    // `(void)` directly before ')' is a C-style empty parameter list, not a
    // discard.
    if (after < stripped.size() && stripped[after] != ')') {
      const bool documented =
          raw[index].find("//") != std::string::npos ||
          raw[index].find("/*") != std::string::npos ||
          (index > 0 && (raw[index - 1].find("//") != std::string::npos ||
                         raw[index - 1].find("/*") != std::string::npos));
      if (!documented) {
        return "(void) discard without a justifying comment; (void) is the "
               "only escape from [[nodiscard]], so say why it is sound";
      }
    }
    at = stripped.find("(void)", at + 1);
  }
  return "";
}

// --- Determinism rules (pgm_analyze, PR 10). ---

/// Collects identifiers declared with an unordered container type anywhere
/// in the file: `unordered_map<K, V> name`, including multi-token template
/// arguments, as long as the declaration's angle brackets close on one
/// line. Members, locals, and parameters all register.
std::set<std::string> UnorderedIdentifiers(
    const std::vector<std::string>& stripped) {
  std::set<std::string> names;
  static constexpr const char* kTypes[] = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  for (const std::string& line : stripped) {
    for (const char* type : kTypes) {
      std::size_t at = FindWord(line, type);
      while (at != std::string::npos) {
        std::size_t scan = at + std::string(type).size();
        while (scan < line.size() && line[scan] == ' ') ++scan;
        if (scan < line.size() && line[scan] == '<') {
          int depth = 0;
          while (scan < line.size()) {
            if (line[scan] == '<') ++depth;
            if (line[scan] == '>') {
              --depth;
              if (depth == 0) {
                ++scan;
                break;
              }
            }
            ++scan;
          }
          while (scan < line.size() &&
                 (line[scan] == ' ' || line[scan] == '&')) {
            ++scan;
          }
          std::size_t name_end = scan;
          while (name_end < line.size() && IsWordChar(line[name_end])) {
            ++name_end;
          }
          if (name_end > scan) {
            names.insert(line.substr(scan, name_end - scan));
          }
        }
        at = FindWord(line, type, at + 1);
      }
    }
  }
  return names;
}

/// An unordered-container iteration on `line`: a range-for whose range
/// expression names a collected identifier, or a .begin()/.cbegin() walk of
/// one. Returns the offending identifier or "".
std::string UnorderedIterationOn(const std::string& line,
                                 const std::set<std::string>& unordered) {
  if (unordered.empty()) return "";
  const std::size_t for_at = FindWord(line, "for");
  if (for_at != std::string::npos) {
    const std::size_t colon = line.find(':', for_at);
    if (colon != std::string::npos) {
      for (const std::string& name : unordered) {
        if (FindWord(line, name, colon + 1) != std::string::npos) return name;
      }
    }
  }
  for (const std::string& name : unordered) {
    std::size_t at = FindWord(line, name);
    while (at != std::string::npos) {
      const std::size_t after = at + name.size();
      if (line.compare(after, 7, ".begin(") == 0 ||
          line.compare(after, 8, ".cbegin(") == 0) {
        return name;
      }
      at = FindWord(line, name, at + 1);
    }
  }
  return "";
}

/// The collect-then-sort escape: iterating an unordered container is fine
/// when the iteration feeds a container that is sorted immediately after —
/// a whole-word `sort(`-family call within the next `kSortWindow` lines.
constexpr std::size_t kSortWindow = 12;
bool SortFollowsWithin(const std::vector<std::string>& stripped,
                       std::size_t index) {
  const std::size_t end = std::min(stripped.size(), index + kSortWindow + 1);
  for (std::size_t i = index; i < end; ++i) {
    for (const char* fn : {"sort", "stable_sort", "partial_sort"}) {
      if (HasCall(stripped[i], fn)) return true;
    }
  }
  return false;
}

std::string CheckWallClock(const std::string& line) {
  // Clock *reads*; sleeping (sleep_for/sleep_until with a computed delay)
  // does not leak nondeterminism into results, so it stays legal.
  static constexpr const char* kClockTypes[] = {
      "system_clock", "steady_clock", "high_resolution_clock"};
  for (const char* type : kClockTypes) {
    if (FindWord(line, type) != std::string::npos) {
      return std::string(type) +
             " outside a sanctioned timing seam; results must not depend "
             "on when the run happened — route timing through "
             "util/stopwatch.h or declare a wall-clock-seam in "
             "tools/lint/manifests/determinism.txt";
    }
  }
  static constexpr const char* kClockCalls[] = {
      "time",      "clock",    "gettimeofday", "clock_gettime",
      "localtime", "gmtime",   "mktime",       "strftime",
      "ctime",     "asctime"};
  for (const char* fn : kClockCalls) {
    if (HasCall(line, fn)) {
      return std::string(fn) +
             "() outside a sanctioned timing seam; wall-clock reads make "
             "runs irreproducible — route timing through util/stopwatch.h "
             "or declare a wall-clock-seam in "
             "tools/lint/manifests/determinism.txt";
    }
  }
  return "";
}

std::string CheckPointerOrder(const std::string& line) {
  // Hashing or ordering by address: std::hash/std::less instantiated over
  // a pointer type, or a cast of a pointer to an integer for comparison.
  for (const char* templ : {"hash", "less", "greater"}) {
    std::size_t at = FindWord(line, templ);
    while (at != std::string::npos) {
      std::size_t open = at + std::string(templ).size();
      while (open < line.size() && line[open] == ' ') ++open;
      if (open < line.size() && line[open] == '<') {
        int depth = 0;
        std::size_t scan = open;
        while (scan < line.size()) {
          if (line[scan] == '<') ++depth;
          if (line[scan] == '>') {
            --depth;
            if (depth == 0) break;
          }
          if (line[scan] == '*' && depth > 0) {
            return std::string("std::") + templ +
                   " over a pointer type; addresses differ run to run, so "
                   "pointer-keyed order leaks nondeterminism into results "
                   "— key on the pointee's stable identity instead";
          }
          ++scan;
        }
      }
      at = FindWord(line, templ, at + 1);
    }
  }
  for (const char* cast : {"uintptr_t", "intptr_t"}) {
    const std::size_t at = FindWord(line, cast);
    if (at != std::string::npos &&
        line.find("reinterpret_cast") != std::string::npos) {
      return "pointer-to-integer cast; an address is not a stable key — "
             "sort or hash by the pointee's ordinal or content instead";
    }
  }
  return "";
}

struct FileScopeHit {
  std::size_t first_line = 0;  // 1-based; 0 = not seen
};

/// Rule names an allow(...) waiver marker on `line` carries, or empty.
std::vector<std::string> WaiverNames(const std::string& line) {
  std::vector<std::string> names;
  const std::size_t at = line.find(kWaiverMarker);
  if (at == std::string::npos) return names;
  const std::size_t close = line.find(')', at);
  if (close == std::string::npos) return names;
  for (const std::string& name :
       Split(line.substr(at + kWaiverMarkerLen, close - at - kWaiverMarkerLen),
             ',')) {
    names.push_back(std::string(Trim(name)));
  }
  return names;
}

}  // namespace

const std::vector<std::string>& KnownRules() {
  static const std::vector<std::string> kRules = {
      "arena-scratch",  "include-cycle",       "layering",
      "ledger-pairing", "lock-order",          "naked-lock",
      "pointer-order",  "raw-alloc",           "raw-intrinsics",
      "undocumented-discard",                  "unknown-waiver",
      "unordered-iteration",                   "unseeded-rng",
      "wall-clock"};
  return kRules;
}

std::vector<Finding> LintSource(const std::string& path,
                                const std::string& content,
                                const LintOptions& options) {
  std::vector<std::string> raw;
  std::vector<std::string> stripped;
  internal::SplitAndStrip(content, &raw, &stripped);

  std::vector<Finding> findings;
  auto enabled = [&](const char* rule) {
    return options.only_rules.empty() || options.only_rules.count(rule) != 0;
  };
  auto add = [&](std::size_t index, const char* rule,
                 const std::string& message) {
    if (!enabled(rule)) return;
    if (internal::HasWaiver(raw, index, rule)) return;
    findings.push_back(Finding{path, index + 1, rule, message});
  };

  const bool core_rules =
      options.all_rules || path.find("src/core") != std::string::npos;
  // kernel_avx2.cc is the one translation unit allowed to speak vector
  // intrinsics — fencing SIMD into it is the rule's whole point — so its
  // exemption holds even under all_rules (the fixture suite runs all_rules
  // over the live tree, which must stay clean).
  constexpr std::string_view kAvx2Tu = "kernel_avx2.cc";
  const bool avx2_tu =
      path.size() >= kAvx2Tu.size() &&
      path.compare(path.size() - kAvx2Tu.size(), kAvx2Tu.size(),
                   kAvx2Tu) == 0;

  // The wall-clock rule consults the determinism manifest for sanctioned
  // seams; without manifests (fixture mode) every file is fair game.
  const bool wall_clock_sanctioned =
      options.manifests != nullptr &&
      options.manifests->determinism.SanctionsWallClock(path);
  const std::set<std::string> unordered_names = UnorderedIdentifiers(stripped);

  FileScopeHit charge, release, scratch_use, scratch_begin, scratch_end;
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    const std::string& line = stripped[i];

    // Waiver hygiene runs on the raw line (waivers are comments, which the
    // stripper removes): a typo'd rule name silences nothing, so it fails
    // loudly with the valid catalogue.
    if (enabled("unknown-waiver")) {
      for (const std::string& name : WaiverNames(raw[i])) {
        if (std::find(KnownRules().begin(), KnownRules().end(), name) ==
            KnownRules().end()) {
          std::string valid;
          for (const std::string& rule : KnownRules()) {
            if (!valid.empty()) valid += ", ";
            valid += rule;
          }
          findings.push_back(
              Finding{path, i + 1, "unknown-waiver",
                      "waiver names unknown rule '" + name +
                          "'; valid rules: " + valid});
        }
      }
    }
    if (line.empty()) continue;

    std::string msg = CheckNakedLock(line);
    if (!msg.empty()) add(i, "naked-lock", msg);
    if (core_rules) {
      msg = CheckRawAlloc(line);
      if (!msg.empty()) add(i, "raw-alloc", msg);
    }
    msg = CheckUnseededRng(line);
    if (!msg.empty()) add(i, "unseeded-rng", msg);
    if (!avx2_tu) {
      msg = CheckRawIntrinsics(line);
      if (!msg.empty()) add(i, "raw-intrinsics", msg);
    }
    msg = CheckUndocumentedDiscard(line, raw, i);
    if (!msg.empty()) add(i, "undocumented-discard", msg);

    const std::string unordered_name =
        UnorderedIterationOn(line, unordered_names);
    if (!unordered_name.empty() && !SortFollowsWithin(stripped, i)) {
      add(i, "unordered-iteration",
          "iteration over unordered container '" + unordered_name +
              "' without a sorted-emission pattern; hash order is "
              "nondeterministic across runs and platforms — collect into a "
              "vector and sort (within " +
              std::to_string(kSortWindow) +
              " lines), or waive with a justification");
    }
    if (!wall_clock_sanctioned) {
      msg = CheckWallClock(line);
      if (!msg.empty()) add(i, "wall-clock", msg);
    }
    msg = CheckPointerOrder(line);
    if (!msg.empty()) add(i, "pointer-order", msg);

    auto note = [&](FileScopeHit* hit, const char* token) {
      if (hit->first_line == 0 && HasCall(line, token)) {
        hit->first_line = i + 1;
      }
    };
    note(&charge, "ChargeMemory");
    note(&release, "ReleaseMemory");
    note(&scratch_use, "Promote");
    note(&scratch_use, "TruncateToWatermark");
    note(&scratch_begin, "BeginScratch");
    note(&scratch_end, "EndScratch");
  }

  if (enabled("ledger-pairing") && charge.first_line != 0 &&
      release.first_line == 0 && !FileHasWaiver(raw, "ledger-pairing")) {
    findings.push_back(Finding{
        path, charge.first_line, "ledger-pairing",
        "ChargeMemory without a ReleaseMemory path in this file; every "
        "ledger charge needs a structural release or the ledger cannot "
        "drain to zero"});
  }
  if (enabled("arena-scratch") && scratch_use.first_line != 0 &&
      (scratch_begin.first_line == 0 || scratch_end.first_line == 0) &&
      !FileHasWaiver(raw, "arena-scratch")) {
    findings.push_back(Finding{
        path, scratch_use.first_line, "arena-scratch",
        "Promote/TruncateToWatermark without the BeginScratch/EndScratch "
        "bracket in this file; scratch operations are only legal inside an "
        "open scratch window"});
  }

  // The manifest-driven pgm_analyze passes: layering and static lock-order
  // run whenever manifests are supplied (tree scans always supply them).
  if (options.manifests != nullptr) {
    if (enabled("layering")) {
      std::vector<Finding> layering =
          CheckLayering(path, raw, stripped, options.manifests->layering);
      findings.insert(findings.end(), layering.begin(), layering.end());
    }
    if (enabled("lock-order")) {
      std::vector<Finding> lock_order =
          CheckLockOrder(path, raw, stripped, options.manifests->lock_order);
      findings.insert(findings.end(), lock_order.begin(), lock_order.end());
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

StatusOr<std::vector<Finding>> LintTree(const std::string& root,
                                        const LintOptions& options) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    return Status::IoError("lint root is not a directory: " + root);
  }

  // Tree scans always run the manifest-driven passes: load the repo's
  // manifests unless the caller supplied their own. A missing manifest is a
  // loud error — the analyzer without its declared DAG would silently pass
  // everything.
  LintOptions effective = options;
  AnalyzerManifests loaded;
  if (effective.manifests == nullptr) {
    PGM_ASSIGN_OR_RETURN(loaded,
                         LoadManifests(root + "/tools/lint/manifests"));
    effective.manifests = &loaded;
  }

  std::vector<std::string> paths;
  for (const char* top : {"src", "tools", "bench", "tests", "examples"}) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::is_directory(dir, ec)) continue;
    for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
         it.increment(ec)) {
      if (ec) return Status::IoError("walking " + dir.string() + ": " +
                                     ec.message());
      if (!it->is_regular_file(ec)) continue;
      const std::string path = it->path().string();
      if (path.find("lint_fixtures") != std::string::npos) continue;
      for (const char* suffix : {".cc", ".h", ".cpp"}) {
        const std::size_t n = std::string(suffix).size();
        if (path.size() >= n &&
            path.compare(path.size() - n, n, suffix) == 0) {
          paths.push_back(path);
          break;
        }
      }
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<Finding> findings;
  std::vector<std::pair<std::string, std::string>> files;
  files.reserve(paths.size());
  for (const std::string& path : paths) {
    PGM_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
    std::vector<Finding> file_findings = LintSource(path, content, effective);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
    files.emplace_back(path, std::move(content));
  }

  // Project pass: file-level include cycles need the whole graph at once.
  if (effective.only_rules.empty() ||
      effective.only_rules.count("include-cycle") != 0) {
    std::vector<Finding> cycles = CheckIncludeCycles(files);
    findings.insert(findings.end(), cycles.begin(), cycles.end());
  }
  return findings;
}

std::string FormatFinding(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.rule + "] " + finding.message;
}

}  // namespace lint
}  // namespace pgm
