#include "tools/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <string_view>

#include "util/io.h"
#include "util/string_util.h"

namespace pgm {
namespace lint {
namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Splits `content` into lines with comments, string literals, and char
/// literals blanked out (newlines preserved, so line numbers survive). The
/// raw lines come back too — waiver detection and the "has a comment"
/// checks must see what the stripper removed.
void SplitAndStrip(const std::string& content, std::vector<std::string>* raw,
                   std::vector<std::string>* stripped) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  std::string raw_line;
  std::string stripped_line;
  auto flush = [&]() {
    raw->push_back(raw_line);
    stripped->push_back(stripped_line);
    raw_line.clear();
    stripped_line.clear();
  };
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      flush();
      continue;
    }
    raw_line.push_back(c);
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          raw_line.push_back(next);
          stripped_line.append("  ");
          ++i;
        } else if (c == '"') {
          state = State::kString;
          stripped_line.push_back(' ');
        } else if (c == '\'') {
          // A quote right after an identifier/number char is a C++14 digit
          // separator (200'000), not a char-literal open.
          if (!stripped_line.empty() && IsWordChar(stripped_line.back())) {
            stripped_line.push_back(c);
          } else {
            state = State::kChar;
            stripped_line.push_back(' ');
          }
        } else {
          stripped_line.push_back(c);
        }
        break;
      case State::kLineComment:
        break;  // dropped; newline resets
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          raw_line.push_back(next);
          ++i;
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          raw_line.push_back(next);
          ++i;
        } else if (c == quote) {
          state = State::kCode;
        }
        break;
      }
    }
  }
  if (!raw_line.empty() || !stripped_line.empty()) flush();
}

/// True when `line` names `rule` inside a `pgm-lint: allow(...)` marker.
bool LineWaives(const std::string& line, const std::string& rule) {
  const std::size_t at = line.find("pgm-lint: allow(");
  if (at == std::string::npos) return false;
  const std::size_t close = line.find(')', at);
  if (close == std::string::npos) return false;
  const std::string list = line.substr(at + 16, close - at - 16);
  for (const std::string& allowed : Split(list, ',')) {
    if (Trim(allowed) == rule) return true;
  }
  return false;
}

/// True when the offending line or the line above carries a waiver for
/// `rule`.
bool HasWaiver(const std::vector<std::string>& raw, std::size_t index,
               const std::string& rule) {
  if (LineWaives(raw[index], rule)) return true;
  return index > 0 && LineWaives(raw[index - 1], rule);
}

bool FileHasWaiver(const std::vector<std::string>& raw,
                   const std::string& rule) {
  for (const std::string& line : raw) {
    if (LineWaives(line, rule)) return true;
  }
  return false;
}

/// Finds whole-word occurrences of `word` in `line` starting at or after
/// `from`; returns npos when absent.
std::size_t FindWord(const std::string& line, const std::string& word,
                     std::size_t from = 0) {
  std::size_t at = line.find(word, from);
  while (at != std::string::npos) {
    const bool left_ok = at == 0 || !IsWordChar(line[at - 1]);
    const std::size_t end = at + word.size();
    const bool right_ok = end >= line.size() || !IsWordChar(line[end]);
    if (left_ok && right_ok) return at;
    at = line.find(word, at + 1);
  }
  return std::string::npos;
}

/// Whole-word `word` immediately followed by '(' (ignoring spaces).
bool HasCall(const std::string& line, const std::string& word) {
  std::size_t at = FindWord(line, word);
  while (at != std::string::npos) {
    std::size_t after = at + word.size();
    while (after < line.size() && line[after] == ' ') ++after;
    if (after < line.size() && line[after] == '(') return true;
    at = FindWord(line, word, at + 1);
  }
  return false;
}

/// The word before position `at`, skipping trailing spaces ("" when none).
std::string WordBefore(const std::string& line, std::size_t at) {
  std::size_t end = at;
  while (end > 0 && line[end - 1] == ' ') --end;
  std::size_t begin = end;
  while (begin > 0 && IsWordChar(line[begin - 1])) --begin;
  return line.substr(begin, end - begin);
}

// --- Line-scoped rules. Each returns a message when the stripped line
// violates the rule, or "" when clean. ---

std::string CheckNakedLock(const std::string& line) {
  for (const char* method : {"lock", "unlock", "try_lock"}) {
    std::size_t at = FindWord(line, method);
    while (at != std::string::npos) {
      const bool member_call =
          (at >= 1 && line[at - 1] == '.') ||
          (at >= 2 && line[at - 2] == '-' && line[at - 1] == '>');
      std::size_t after = at + std::string(method).size();
      const bool is_call = after < line.size() && line[after] == '(';
      if (member_call && is_call) {
        return std::string("naked ") + method +
               "() call; hold locks through pgm::MutexLock (util/mutex.h)";
      }
      at = FindWord(line, method, at + 1);
    }
  }
  return "";
}

std::string CheckRawAlloc(const std::string& line) {
  std::size_t at = FindWord(line, "new");
  if (at != std::string::npos && WordBefore(line, at) != "operator") {
    return "raw `new` in src/core; PIL storage must come from PilArena so "
           "the MiningGuard ledger stays truthful";
  }
  at = FindWord(line, "delete");
  if (at != std::string::npos && WordBefore(line, at) != "operator") {
    // `= delete;` (deleted special member) is a declaration, not a
    // deallocation.
    std::size_t before = at;
    while (before > 0 && line[before - 1] == ' ') --before;
    if (before == 0 || line[before - 1] != '=') {
      return "raw `delete` in src/core; arena-owned rows are reclaimed by "
             "TruncateToWatermark/Clear, never freed directly";
    }
  }
  for (const char* fn : {"malloc", "calloc", "realloc", "free"}) {
    if (HasCall(line, fn)) {
      return std::string("raw ") + fn +
             "() in src/core; use PilArena or standard containers";
    }
  }
  return "";
}

std::string CheckUnseededRng(const std::string& line) {
  if (line.find("std::rand") != std::string::npos || HasCall(line, "rand") ||
      HasCall(line, "srand")) {
    return "std::rand/srand is unseeded global state; use util/random.h's "
           "Rng with an explicit seed";
  }
  if (FindWord(line, "random_device") != std::string::npos) {
    return "std::random_device is nondeterministic; runs must be "
           "reproducible from an explicit seed (util/random.h)";
  }
  for (const char* type : {"mt19937", "mt19937_64"}) {
    std::size_t at = FindWord(line, type);
    while (at != std::string::npos) {
      std::size_t after = at + std::string(type).size();
      while (after < line.size() && line[after] == ' ') ++after;
      std::size_t name_end = after;
      while (name_end < line.size() && IsWordChar(line[name_end])) ++name_end;
      std::size_t semi = name_end;
      while (semi < line.size() && line[semi] == ' ') ++semi;
      if (name_end > after && semi < line.size() && line[semi] == ';') {
        return "default-constructed mt19937 uses the fixed default seed "
               "silently; seed explicitly via util/random.h";
      }
      at = FindWord(line, type, at + 1);
    }
  }
  return "";
}

std::string CheckRawIntrinsics(const std::string& line) {
  // Identifier-boundary scan for the x86 vector-intrinsic prefixes: the
  // _mm/_mm256/_mm512 call families and the __m128/__m256/__m512 register
  // types. "_mm" alone covers every call-family width.
  static constexpr const char* kPrefixes[] = {"_mm", "__m128", "__m256",
                                              "__m512"};
  for (const char* prefix : kPrefixes) {
    const std::string needle(prefix);
    std::size_t at = line.find(needle);
    while (at != std::string::npos) {
      if (at == 0 || !IsWordChar(line[at - 1])) {
        return "raw vector intrinsic outside kernel_avx2.cc; SIMD lives "
               "behind the portable kernel wrapper (core/kernel.h) so every "
               "other translation unit stays architecture-neutral";
      }
      at = line.find(needle, at + 1);
    }
  }
  return "";
}

std::string CheckUndocumentedDiscard(const std::string& stripped,
                                     const std::vector<std::string>& raw,
                                     std::size_t index) {
  std::size_t at = stripped.find("(void)");
  while (at != std::string::npos) {
    std::size_t after = at + 6;
    while (after < stripped.size() && stripped[after] == ' ') ++after;
    // `(void)` directly before ')' is a C-style empty parameter list, not a
    // discard.
    if (after < stripped.size() && stripped[after] != ')') {
      const bool documented =
          raw[index].find("//") != std::string::npos ||
          raw[index].find("/*") != std::string::npos ||
          (index > 0 && (raw[index - 1].find("//") != std::string::npos ||
                         raw[index - 1].find("/*") != std::string::npos));
      if (!documented) {
        return "(void) discard without a justifying comment; (void) is the "
               "only escape from [[nodiscard]], so say why it is sound";
      }
    }
    at = stripped.find("(void)", at + 1);
  }
  return "";
}

struct FileScopeHit {
  std::size_t first_line = 0;  // 1-based; 0 = not seen
};

}  // namespace

std::vector<Finding> LintSource(const std::string& path,
                                const std::string& content,
                                const LintOptions& options) {
  std::vector<std::string> raw;
  std::vector<std::string> stripped;
  SplitAndStrip(content, &raw, &stripped);

  std::vector<Finding> findings;
  auto add = [&](std::size_t index, const char* rule,
                 const std::string& message) {
    if (HasWaiver(raw, index, rule)) return;
    findings.push_back(Finding{path, index + 1, rule, message});
  };

  const bool core_rules =
      options.all_rules || path.find("src/core") != std::string::npos;
  // kernel_avx2.cc is the one translation unit allowed to speak vector
  // intrinsics — fencing SIMD into it is the rule's whole point — so its
  // exemption holds even under all_rules (the fixture suite runs all_rules
  // over the live tree, which must stay clean).
  constexpr std::string_view kAvx2Tu = "kernel_avx2.cc";
  const bool avx2_tu =
      path.size() >= kAvx2Tu.size() &&
      path.compare(path.size() - kAvx2Tu.size(), kAvx2Tu.size(),
                   kAvx2Tu) == 0;

  FileScopeHit charge, release, scratch_use, scratch_begin, scratch_end;
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    const std::string& line = stripped[i];
    if (line.empty()) continue;

    std::string msg = CheckNakedLock(line);
    if (!msg.empty()) add(i, "naked-lock", msg);
    if (core_rules) {
      msg = CheckRawAlloc(line);
      if (!msg.empty()) add(i, "raw-alloc", msg);
    }
    msg = CheckUnseededRng(line);
    if (!msg.empty()) add(i, "unseeded-rng", msg);
    if (!avx2_tu) {
      msg = CheckRawIntrinsics(line);
      if (!msg.empty()) add(i, "raw-intrinsics", msg);
    }
    msg = CheckUndocumentedDiscard(line, raw, i);
    if (!msg.empty()) add(i, "undocumented-discard", msg);

    auto note = [&](FileScopeHit* hit, const char* token) {
      if (hit->first_line == 0 && HasCall(line, token)) {
        hit->first_line = i + 1;
      }
    };
    note(&charge, "ChargeMemory");
    note(&release, "ReleaseMemory");
    note(&scratch_use, "Promote");
    note(&scratch_use, "TruncateToWatermark");
    note(&scratch_begin, "BeginScratch");
    note(&scratch_end, "EndScratch");
  }

  if (charge.first_line != 0 && release.first_line == 0 &&
      !FileHasWaiver(raw, "ledger-pairing")) {
    findings.push_back(Finding{
        path, charge.first_line, "ledger-pairing",
        "ChargeMemory without a ReleaseMemory path in this file; every "
        "ledger charge needs a structural release or the ledger cannot "
        "drain to zero"});
  }
  if (scratch_use.first_line != 0 &&
      (scratch_begin.first_line == 0 || scratch_end.first_line == 0) &&
      !FileHasWaiver(raw, "arena-scratch")) {
    findings.push_back(Finding{
        path, scratch_use.first_line, "arena-scratch",
        "Promote/TruncateToWatermark without the BeginScratch/EndScratch "
        "bracket in this file; scratch operations are only legal inside an "
        "open scratch window"});
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

StatusOr<std::vector<Finding>> LintTree(const std::string& root,
                                        const LintOptions& options) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    return Status::IoError("lint root is not a directory: " + root);
  }
  std::vector<std::string> paths;
  for (const char* top : {"src", "tools", "bench", "tests", "examples"}) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::is_directory(dir, ec)) continue;
    for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
         it.increment(ec)) {
      if (ec) return Status::IoError("walking " + dir.string() + ": " +
                                     ec.message());
      if (!it->is_regular_file(ec)) continue;
      const std::string path = it->path().string();
      if (path.find("lint_fixtures") != std::string::npos) continue;
      if (path.size() >= 3 && path.compare(path.size() - 3, 3, ".cc") == 0) {
        paths.push_back(path);
      } else if (path.size() >= 2 &&
                 path.compare(path.size() - 2, 2, ".h") == 0) {
        paths.push_back(path);
      }
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<Finding> findings;
  for (const std::string& path : paths) {
    PGM_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
    std::vector<Finding> file_findings = LintSource(path, content, options);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

std::string FormatFinding(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.rule + "] " + finding.message;
}

}  // namespace lint
}  // namespace pgm
