#ifndef PGM_TOOLS_LINT_LINT_H_
#define PGM_TOOLS_LINT_LINT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/status.h"

namespace pgm {
namespace lint {

/// One rule violation. `line` is 1-based.
struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// The project-specific invariants the compiler cannot see. Each rule is a
/// file-scope textual check over comment- and string-stripped source:
///
///   naked-lock            .lock()/.unlock()/.try_lock() member calls —
///                         locking must go through the MutexLock RAII
///                         wrapper (util/mutex.h).
///   raw-alloc             new/delete/malloc/free in src/core — PIL memory
///                         must flow through PilArena so the MiningGuard
///                         ledger stays truthful.
///   unseeded-rng          std::rand/srand/std::random_device or a
///                         default-constructed mt19937 — all randomness
///                         must be seeded through util/random.h or results
///                         stop being reproducible.
///   undocumented-discard  a `(void)expr;` cast with no comment on the same
///                         or previous line — (void) is the only escape
///                         from [[nodiscard]], so each use must defend
///                         itself.
///   ledger-pairing        a file that calls MiningGuard::ChargeMemory must
///                         also contain a ReleaseMemory path (the ledger
///                         drains to zero only if every charge has a
///                         structural release).
///   arena-scratch         a file that calls PilArena::Promote or
///                         TruncateToWatermark must also contain the
///                         BeginScratch/EndScratch bracket those calls are
///                         only legal inside.
///   raw-intrinsics        any _mm*/__m128/__m256/__m512 identifier outside
///                         kernel_avx2.cc — vector code lives behind the
///                         portable kernel wrapper (core/kernel.h), and the
///                         one SIMD translation unit is exempt even under
///                         all_rules.
///
/// Waivers: `// pgm-lint: allow(rule-a,rule-b)` on the offending line or
/// the line above waives line-scoped rules; anywhere in the file it waives
/// the file-scoped rules (ledger-pairing, arena-scratch). Waivers are
/// comments, so every one doubles as documentation of the exception.
struct LintOptions {
  /// Apply every rule regardless of the file's path. Tree scans leave this
  /// false so path-scoped rules (raw-alloc) only fire where they apply;
  /// fixture tests set it to exercise all rules on one file.
  bool all_rules = false;
};

/// Lints one translation unit given its contents. `path` decides which
/// path-scoped rules apply (unless options.all_rules).
std::vector<Finding> LintSource(const std::string& path,
                                const std::string& content,
                                const LintOptions& options);

/// Walks src/, tools/, bench/, tests/, and examples/ under `root` (skipping
/// the lint_fixtures corpus) and lints every .h/.cc file, in sorted path
/// order. IoError when root is missing.
StatusOr<std::vector<Finding>> LintTree(const std::string& root,
                                        const LintOptions& options);

/// Formats one finding as "path:line: [rule] message".
std::string FormatFinding(const Finding& finding);

}  // namespace lint
}  // namespace pgm

#endif  // PGM_TOOLS_LINT_LINT_H_
