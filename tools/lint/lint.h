#ifndef PGM_TOOLS_LINT_LINT_H_
#define PGM_TOOLS_LINT_LINT_H_

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "util/status.h"

namespace pgm {
namespace lint {

struct AnalyzerManifests;  // tools/lint/analyze.h

/// One rule violation. `line` is 1-based.
struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// The project-specific invariants the compiler cannot see. Each rule is a
/// file-scope textual check over comment- and string-stripped source:
///
///   naked-lock            .lock()/.unlock()/.try_lock() member calls —
///                         locking must go through the MutexLock RAII
///                         wrapper (util/mutex.h).
///   raw-alloc             new/delete/malloc/free in src/core — PIL memory
///                         must flow through PilArena so the MiningGuard
///                         ledger stays truthful.
///   unseeded-rng          std::rand/srand/std::random_device or a
///                         default-constructed mt19937 — all randomness
///                         must be seeded through util/random.h or results
///                         stop being reproducible.
///   undocumented-discard  a `(void)expr;` cast with no comment on the same
///                         or previous line — (void) is the only escape
///                         from [[nodiscard]], so each use must defend
///                         itself.
///   ledger-pairing        a file that calls MiningGuard::ChargeMemory must
///                         also contain a ReleaseMemory path (the ledger
///                         drains to zero only if every charge has a
///                         structural release).
///   arena-scratch         a file that calls PilArena::Promote or
///                         TruncateToWatermark must also contain the
///                         BeginScratch/EndScratch bracket those calls are
///                         only legal inside.
///   raw-intrinsics        any _mm*/__m128/__m256/__m512 identifier outside
///                         kernel_avx2.cc — vector code lives behind the
///                         portable kernel wrapper (core/kernel.h), and the
///                         one SIMD translation unit is exempt even under
///                         all_rules.
///
/// The pgm_analyze rule families (PR 10) extend the catalogue with the
/// determinism and architecture invariants. The first four are line-scoped
/// like the rules above; the last three are manifest-driven passes
/// (tools/lint/analyze.h) that only run when manifests are loaded:
///
///   unordered-iteration   a range-for (or .begin() walk) over a variable
///                         declared as unordered_map/unordered_set in the
///                         same file. Hash-order iteration is
///                         nondeterministic across platforms and runs; the
///                         rule is silenced by the collect-then-sort idiom
///                         (a `sort(` call within the following 12 lines)
///                         or a justified waiver.
///   wall-clock            a clock read (time(), clock(), system_clock,
///                         steady_clock, high_resolution_clock,
///                         gettimeofday, clock_gettime, localtime, gmtime,
///                         mktime, strftime) outside the sanctioned seams
///                         declared in the determinism manifest
///                         (stopwatch/backoff/bench timing).
///   pointer-order         ordering or hashing by pointer value on a result
///                         path: std::hash/std::less over a pointer type,
///                         or a reinterpret_cast to (u)intptr_t. Addresses
///                         differ run to run, so any pointer-keyed order
///                         leaks nondeterminism into exports.
///   unknown-waiver        an allow(...) waiver naming a rule that does
///                         not exist — a typo'd waiver silences nothing,
///                         so it must fail loudly with the valid rule list.
///   layering              an #include edge the layering manifest does not
///                         declare (tools/lint/manifests/layers.txt) —
///                         back-edges, cycles, stray peer edges, and
///                         undeclared modules.
///   lock-order            nested MutexLock scopes acquiring out of the
///                         declared rank order (manifests/locks.txt); the
///                         same hierarchy util/mutex.h asserts at runtime
///                         in checked builds.
///   include-cycle         a file-level #include cycle anywhere in the
///                         tree (project pass; LintTree only).
///
/// Waivers: `// pgm-lint: allow(raw-alloc,unseeded-rng)` on the offending
/// line or the line above waives line-scoped rules; anywhere in the file
/// it waives the file-scoped rules (ledger-pairing, arena-scratch). Waivers are
/// comments, so every one doubles as documentation of the exception.
struct LintOptions {
  /// Apply every rule regardless of the file's path. Tree scans leave this
  /// false so path-scoped rules (raw-alloc) only fire where they apply;
  /// fixture tests set it to exercise all rules on one file.
  bool all_rules = false;
  /// When non-empty, only the named rules run (pgm_lint --rules=...).
  /// Names must come from KnownRules(); the CLI rejects unknown ones.
  std::set<std::string> only_rules;
  /// Manifests for the pgm_analyze passes (layering, lock-order,
  /// wall-clock seams). nullptr skips those passes — per-file fixture runs
  /// opt in explicitly; LintTree loads them from
  /// <root>/tools/lint/manifests.
  const AnalyzerManifests* manifests = nullptr;
};

/// Every rule name the linter can emit, sorted. The single source of truth
/// for --rules= validation and the unknown-waiver rule.
const std::vector<std::string>& KnownRules();

/// Lints one translation unit given its contents. `path` decides which
/// path-scoped rules apply (unless options.all_rules).
std::vector<Finding> LintSource(const std::string& path,
                                const std::string& content,
                                const LintOptions& options);

/// Walks src/, tools/, bench/, tests/, and examples/ under `root` (skipping
/// the lint_fixtures corpus) and lints every .h/.cc file, in sorted path
/// order. IoError when root is missing.
StatusOr<std::vector<Finding>> LintTree(const std::string& root,
                                        const LintOptions& options);

/// Formats one finding as "path:line: [rule] message".
std::string FormatFinding(const Finding& finding);

namespace internal {

/// Splits `content` into lines with comments, string literals, and char
/// literals blanked out (newlines preserved, so line numbers survive). The
/// raw lines come back too — waiver detection must see what the stripper
/// removed. Shared by the line rules here and the analyze passes.
void SplitAndStrip(const std::string& content, std::vector<std::string>* raw,
                   std::vector<std::string>* stripped);

/// True when the offending line or the line above carries a
/// allow(rule) waiver marker.
bool HasWaiver(const std::vector<std::string>& raw, std::size_t index,
               const std::string& rule);

/// Finds whole-word occurrences of `word` in `line` starting at or after
/// `from`; returns npos when absent.
std::size_t FindWord(const std::string& line, const std::string& word,
                     std::size_t from = 0);

}  // namespace internal

}  // namespace lint
}  // namespace pgm

#endif  // PGM_TOOLS_LINT_LINT_H_
