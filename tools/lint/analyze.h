#ifndef PGM_TOOLS_LINT_ANALYZE_H_
#define PGM_TOOLS_LINT_ANALYZE_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "tools/lint/lint.h"
#include "util/status.h"

namespace pgm {
namespace lint {

/// The pgm_analyze manifests: each semantic rule family is driven by a
/// declared data file under tools/lint/manifests/, so changing the
/// architecture (a new module, a new lock, a new sanctioned clock seam)
/// means editing a manifest, not the analyzer.

/// tools/lint/manifests/layers.txt — the module DAG. One line per module:
///   <module>: <allowed direct dependency> ...
/// Self-edges are implicit; '#' starts a comment. Every module that appears
/// in the tree must be declared, and the declared graph must be acyclic
/// (CheckAcyclic). The `layering` rule fails any #include edge the manifest
/// does not declare — back-edges, stray peer edges, and undeclared modules
/// all surface the same way.
struct LayeringManifest {
  std::map<std::string, std::set<std::string>> allowed;

  static StatusOr<LayeringManifest> Parse(const std::string& text);
  /// OK when the declared graph is a DAG; InvalidArgument naming one cycle
  /// otherwise.
  Status CheckAcyclic() const;
};

/// One declared pgm::Mutex instance. A MutexLock site resolves to the rank
/// whose `path_substring` appears in the file path and whose `expression`
/// appears (as a whole word) in the lock argument.
struct RankedLock {
  std::string name;
  std::string path_substring;
  std::string expression;
  int rank = 0;
};

/// tools/lint/manifests/locks.txt — the lock hierarchy. One line per lock:
///   <rank> <name> <path-substring> <expression>
/// Ranks must be unique; nested MutexLock scopes must acquire in strictly
/// increasing rank order (the same order util/mutex.h asserts at runtime in
/// checked builds).
struct LockOrderManifest {
  std::vector<RankedLock> locks;

  static StatusOr<LockOrderManifest> Parse(const std::string& text);
  /// The manifest entry for a MutexLock site, or nullptr when the lock is
  /// unranked (local mutexes outside the declared hierarchy).
  const RankedLock* Resolve(const std::string& path,
                            const std::string& expression) const;
};

/// tools/lint/manifests/determinism.txt — sanctioned exceptions to the
/// determinism rules. Currently one directive:
///   wall-clock-seam <path-substring>
/// Files matching a seam may read clocks (the stopwatch/backoff/bench
/// timing seams); everywhere else the `wall-clock` rule fires.
struct DeterminismManifest {
  std::vector<std::string> wall_clock_seams;

  static StatusOr<DeterminismManifest> Parse(const std::string& text);
  bool SanctionsWallClock(const std::string& path) const;
};

struct AnalyzerManifests {
  LayeringManifest layering;
  LockOrderManifest lock_order;
  DeterminismManifest determinism;
};

/// Loads layers.txt, locks.txt, and determinism.txt from `dir`. IoError
/// when a manifest is missing or unreadable; InvalidArgument when one is
/// malformed or the layering graph has a cycle.
StatusOr<AnalyzerManifests> LoadManifests(const std::string& dir);

/// The module a path belongs to: "src/<m>/..." maps to <m>; tools/, tests/,
/// bench/, and examples/ map to themselves. "" when the path is outside the
/// known tree shape. Only the first recognized component counts, so
/// absolute paths work.
std::string ModuleOf(const std::string& path);

/// The module an include target ("util/io.h") belongs to — the first path
/// component. "" for same-directory includes (no slash), which never cross
/// a module boundary.
std::string IncludeTargetModule(const std::string& include_path);

/// Per-file layering pass: every `#include "..."` edge must be declared in
/// the manifest. `raw`/`stripped` are the SplitAndStrip views of the file.
std::vector<Finding> CheckLayering(const std::string& path,
                                   const std::vector<std::string>& raw,
                                   const std::vector<std::string>& stripped,
                                   const LayeringManifest& manifest);

/// Per-file static lock-order pass: tracks nested `MutexLock name(expr);`
/// scopes by brace depth and fails when an inner acquisition's declared
/// rank is not strictly greater than the outermost held rank. Unranked
/// locks are invisible to the check.
std::vector<Finding> CheckLockOrder(const std::string& path,
                                    const std::vector<std::string>& raw,
                                    const std::vector<std::string>& stripped,
                                    const LockOrderManifest& manifest);

/// Project pass over the whole file set ((path, content) pairs): detects
/// file-level `#include "..."` cycles. Module-level cycles are already
/// impossible when every edge passes CheckLayering against an acyclic
/// manifest; this catches header cycles *within* a module, which include
/// guards mask until an ordering change breaks the build.
std::vector<Finding> CheckIncludeCycles(
    const std::vector<std::pair<std::string, std::string>>& files);

}  // namespace lint
}  // namespace pgm

#endif  // PGM_TOOLS_LINT_ANALYZE_H_
