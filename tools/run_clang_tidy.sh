#!/bin/sh
# Runs the repo's .clang-tidy profile over src/ and tools/ using the
# compile database in the build tree given as $2. Exit 0 when clean, 1 on
# findings, 77 when clang-tidy or the compile database is unavailable
# (ctest maps 77 to SKIP via SKIP_RETURN_CODE).
set -u

root="${1:?usage: run_clang_tidy.sh <repo-root> <build-dir>}"
build="${2:?usage: run_clang_tidy.sh <repo-root> <build-dir>}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not installed; skipping" >&2
  exit 77
fi
if [ ! -f "$build/compile_commands.json" ]; then
  echo "run_clang_tidy: $build/compile_commands.json missing; configure" \
       "with CMAKE_EXPORT_COMPILE_COMMANDS=ON (the default here); skipping" >&2
  exit 77
fi

cd "$root" || exit 2
status=0
for file in $(find src tools -name '*.cc' -print | sort); do
  if ! clang-tidy -p "$build" --quiet "$file"; then
    status=1
  fi
done
exit "$status"
