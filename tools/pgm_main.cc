// The `pgm` command-line tool. All logic lives in the testable pgm_cli
// library; this binary only routes the rendered report to stdout.

#include <cstdio>
#include <string>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::string output;
  const int code = pgm::cli::Run(argc, argv, &output);
  std::fwrite(output.data(), 1, output.size(), code == 0 ? stdout : stderr);
  return code;
}
