// The `pgm` command-line tool. All logic lives in the testable pgm_cli
// library; this binary only routes the rendered report to stdout and
// failure diagnostics to stderr. Exit codes distinguish the failure class
// (see pgm::cli::ExitCodeForStatus): 0 ok, 2 invalid argument / usage,
// 3 I/O error, 4 corrupt input, 5 resource exhausted, 6 not found,
// 1 anything else.

#include <cstdio>
#include <string>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::string output;
  std::string error;
  const int code = pgm::cli::Run(argc, argv, &output, &error);
  if (!output.empty()) {
    std::fwrite(output.data(), 1, output.size(), stdout);
  }
  if (!error.empty()) {
    std::fwrite(error.data(), 1, error.size(), stderr);
  }
  return code;
}
