// The `pgm` command-line tool. All logic lives in the testable pgm_cli
// library; this binary only installs the signal handlers and routes the
// rendered report to stdout and failure diagnostics to stderr. Exit codes
// distinguish the failure class (see pgm::cli::ExitCodeForStatus): 0 ok,
// 2 invalid argument / usage, 3 I/O error, 4 corrupt input, 5 resource
// exhausted, 6 not found, 7 service unavailable (shed), 1 anything else —
// and 130 when SIGINT/SIGTERM interrupted a run that then wound down to a
// partial-but-sound result.

#include <csignal>
#include <cstdio>
#include <string>

#include "cli/cli.h"

namespace {

// Async-signal-safe: RequestCancel is a relaxed atomic store. The running
// command (mine, serve) polls the token and drains gracefully; a second
// signal gets the default disposition restored below, so a stuck run can
// still be killed the ordinary way.
extern "C" void HandleInterrupt(int signum) {
  pgm::cli::GlobalCancelToken().RequestCancel();
  std::signal(signum, SIG_DFL);
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGINT, HandleInterrupt);
  std::signal(SIGTERM, HandleInterrupt);
  std::string output;
  std::string error;
  const int code = pgm::cli::Run(argc, argv, &output, &error);
  if (!output.empty()) {
    std::fwrite(output.data(), 1, output.size(), stdout);
  }
  if (!error.empty()) {
    std::fwrite(error.data(), 1, error.size(), stderr);
  }
  return code;
}
