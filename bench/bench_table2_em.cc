// Reproduces Table 2 of the paper: the K_r profile of S = ACGTCCGT under
// gap [1,2] with m = 2, and the resulting e_m. Also prints the e_m
// statistic of the AX829174 surrogate under the Section 6 parameters to
// show the statistic at experiment scale.

#include <cstdio>

#include "bench/common.h"
#include "core/em.h"
#include "util/table_printer.h"

namespace pgm::bench {
namespace {

int Run(int argc, char** argv) {
  HarnessOptions options;
  FlagSet flags("Table 2: K_r values of ACGTCCGT (gap [1,2], m=2)");
  RegisterHarnessFlags(flags, options);
  if (int code = HandleParseResult(flags.Parse(argc, argv)); code >= 0) {
    return code;
  }

  std::printf("=== Table 2: K_r of S = ACGTCCGT, gap [1,2], m = 2 ===\n");
  Sequence s = ValueOrDie(Sequence::FromString("ACGTCCGT", Alphabet::Dna()));
  GapRequirement gap = ValueOrDie(GapRequirement::Create(1, 2));
  EmResult em = ValueOrDie(ComputeEm(s, gap, 2));

  TablePrinter table({"K_r", "K1", "K2", "K3", "K4", "K5", "K6", "K7", "K8"});
  auto row = table.Row().Add("Value");
  CsvWriter csv({"r", "K_r"});
  for (std::size_t r = 0; r < em.k_values.size(); ++r) {
    row.Add(em.k_values[r]);
    CheckOk(csv.Row().Add(static_cast<std::uint64_t>(r + 1))
                .Add(em.k_values[r])
                .Done());
  }
  row.Done();
  table.Print();
  std::printf("e_m = max K_r = %llu   (paper: e_m = 2)\n\n",
              static_cast<unsigned long long>(em.em));

  std::printf(
      "=== e_m at experiment scale: AX829174 surrogate segment, gap [9,12] "
      "===\n");
  Sequence segment = ValueOrDie(SurrogateSegment(1000, options.seed));
  GapRequirement wide = ValueOrDie(GapRequirement::Create(9, 12));
  TablePrinter scale({"m", "W^m", "e_m", "W^m / e_m"});
  for (std::int64_t m : {2, 4, 6, 8, 10}) {
    EmResult r = ValueOrDie(ComputeEm(segment, wide, m));
    long double wm = 1.0L;
    for (std::int64_t i = 0; i < m; ++i) wm *= 4.0L;
    scale.Row()
        .Add(m)
        .Add(static_cast<std::uint64_t>(wm))
        .Add(r.em)
        .Add(static_cast<double>(wm / static_cast<long double>(
                                          r.em == 0 ? 1 : r.em)))
        .Done();
  }
  scale.Print();
  std::printf(
      "The W^m/e_m ratio grows with m (the paper's observation in Section "
      "4.2), which is what gives Theorem 2 its pruning power.\n");

  MaybeWriteCsv(options, csv);
  return 0;
}

}  // namespace
}  // namespace pgm::bench

int main(int argc, char** argv) { return pgm::bench::Run(argc, argv); }
