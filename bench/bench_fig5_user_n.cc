// Reproduces Figure 5 of the paper: MPP execution time as a function of the
// user estimate n, at L = 1000, gap [9,12], ρs = 0.003%. The paper's
// observations: time grows with n (worse estimates prune less), and an
// under-estimate (n below no(ρs)) runs even faster than the perfect
// estimate — which motivates the adaptive strategy, also timed here.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "core/miner.h"
#include "util/table_printer.h"

namespace pgm::bench {
namespace {

int Run(int argc, char** argv) {
  HarnessOptions options;
  std::int64_t length = 1000;
  FlagSet flags("Figure 5: MPP time vs the user estimate n");
  flags.AddInt64("length", &length, "subject sequence length L");
  RegisterHarnessFlags(flags, options);
  if (int code = HandleParseResult(flags.Parse(argc, argv)); code >= 0) {
    return code;
  }

  Sequence segment = ValueOrDie(
      SurrogateSegment(static_cast<std::size_t>(length), options.seed));
  MinerConfig config = Section6Defaults();

  // Establish no(rho_s) with a worst-case run.
  MinerConfig worst = config;
  worst.user_n = -1;
  MiningResult reference = ValueOrDie(MineMpp(segment, worst));
  const std::int64_t no_rho = reference.longest_frequent_length;
  const std::size_t total_frequent = reference.patterns.size();

  std::printf(
      "=== Figure 5: MPP time vs n (L=%lld, gap [9,12], rho_s=0.003%%) ===\n"
      "no(rho_s) = %lld, l1 = %lld, total frequent patterns (complete) = "
      "%zu\n\n",
      static_cast<long long>(length), static_cast<long long>(no_rho),
      static_cast<long long>(reference.n_used), total_frequent);

  TablePrinter table(
      {"n", "time (s)", "candidates", "patterns found", "complete up to"});
  CsvWriter csv({"n", "seconds", "candidates", "patterns"});
  std::vector<std::int64_t> ns = {10, 20, 30, 40, 50, 60};
  if (std::find(ns.begin(), ns.end(), no_rho) == ns.end()) {
    ns.insert(ns.begin(), no_rho);
    std::sort(ns.begin(), ns.end());
  }
  for (std::int64_t n : ns) {
    MinerConfig c = config;
    c.user_n = n;
    MiningResult result = ValueOrDie(MineMpp(segment, c));
    table.Row()
        .Add(n)
        .Add(result.total_seconds)
        .Add(result.total_candidates)
        .Add(static_cast<std::uint64_t>(result.patterns.size()))
        .Add(result.guaranteed_complete_up_to)
        .Done();
    CheckOk(csv.Row()
                .Add(n)
                .Add(result.total_seconds)
                .Add(result.total_candidates)
                .Add(static_cast<std::uint64_t>(result.patterns.size()))
                .Done());
  }
  table.Print();

  // The adaptive refinement the paper sketches after Figure 5.
  MinerConfig adaptive = config;
  adaptive.initial_n = 10;
  MiningResult adaptive_result = ValueOrDie(MineAdaptive(segment, adaptive));
  std::printf(
      "\nAdaptive strategy (start n=10): %.4g s over %lld iteration(s), "
      "%zu patterns, final n = %lld\n"
      "Expected shape (paper): time increases with n; n below no(rho_s) is "
      "cheapest, making the adaptive loop attractive.\n",
      adaptive_result.total_seconds,
      static_cast<long long>(adaptive_result.adaptive_iterations),
      adaptive_result.patterns.size(),
      static_cast<long long>(adaptive_result.n_used));
  MaybeWriteCsv(options, csv);
  return 0;
}

}  // namespace
}  // namespace pgm::bench

int main(int argc, char** argv) { return pgm::bench::Run(argc, argv); }
