// Reproduces Figure 6 of the paper: MPPm execution time as the gap
// flexibility W grows from 4 to 8 with N fixed at 9 (gap [9, W+8]).
// L = 1000, m = 8, ρs = 0.003%. Expected: time grows steeply with W, since
// N_l (and with it every PIL) scales as W^(l-1).

#include <cstdio>

#include "bench/common.h"
#include "core/miner.h"
#include "util/table_printer.h"

namespace pgm::bench {
namespace {

int Run(int argc, char** argv) {
  HarnessOptions options;
  std::int64_t length = 1000;
  FlagSet flags("Figure 6: MPPm time vs gap flexibility W (N = 9)");
  flags.AddInt64("length", &length, "subject sequence length L");
  RegisterHarnessFlags(flags, options);
  if (int code = HandleParseResult(flags.Parse(argc, argv)); code >= 0) {
    return code;
  }

  Sequence segment = ValueOrDie(
      SurrogateSegment(static_cast<std::size_t>(length), options.seed));

  std::printf(
      "=== Figure 6: MPPm time vs W (L=%lld, N=9, m=8, rho_s=0.003%%) ===\n",
      static_cast<long long>(length));
  TablePrinter table({"W", "gap", "time (s)", "e_m time (s)", "candidates",
                      "patterns", "n est."});
  CsvWriter csv({"W", "seconds", "em_seconds", "candidates", "patterns"});
  for (std::int64_t w = 4; w <= 8; ++w) {
    MinerConfig config = Section6Defaults();
    config.min_gap = 9;
    config.max_gap = 9 + w - 1;
    config.em_order = 8;
    MiningResult result = ValueOrDie(MineMppm(segment, config));
    GapRequirement gap =
        ValueOrDie(GapRequirement::Create(config.min_gap, config.max_gap));
    table.Row()
        .Add(w)
        .Add(gap.ToString())
        .Add(result.total_seconds)
        .Add(result.em_seconds)
        .Add(result.total_candidates)
        .Add(static_cast<std::uint64_t>(result.patterns.size()))
        .Add(result.estimated_n)
        .Done();
    CheckOk(csv.Row()
                .Add(w)
                .Add(result.total_seconds)
                .Add(result.em_seconds)
                .Add(result.total_candidates)
                .Add(static_cast<std::uint64_t>(result.patterns.size()))
                .Done());
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): execution time grows steeply with W "
      "because N_l and all PIL window sums scale with W^(l-1); practical "
      "mining needs a reasonably small W (a DNA helical turn implies W ~ "
      "2-4).\n");
  MaybeWriteCsv(options, csv);
  return 0;
}

}  // namespace
}  // namespace pgm::bench

int main(int argc, char** argv) { return pgm::bench::Run(argc, argv); }
