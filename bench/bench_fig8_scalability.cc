// Reproduces Figure 8 of the paper: MPPm execution time as the subject
// sequence length L grows from 1,000 to 10,000 characters (the full
// AX829174 surrogate), gap [9,12], m = 10, ρs = 0.003%. Expected: linear
// scaling in L.

#include <cstdio>

#include "bench/common.h"
#include "core/miner.h"
#include "datagen/presets.h"
#include "seq/fragmenter.h"
#include "util/random.h"
#include "util/table_printer.h"

namespace pgm::bench {
namespace {

int Run(int argc, char** argv) {
  HarnessOptions options;
  FlagSet flags("Figure 8: MPPm time vs sequence length L");
  RegisterHarnessFlags(flags, options);
  if (int code = HandleParseResult(flags.Parse(argc, argv)); code >= 0) {
    return code;
  }

  Sequence genome = ValueOrDie(MakeAx829174Surrogate());

  std::printf(
      "=== Figure 8: MPPm time vs L (gap [9,12], m=10, rho_s=0.003%%, "
      "threads=%lld) ===\n",
      static_cast<long long>(options.threads));
  TablePrinter table({"L", "time (s)", "time/L (ms)", "candidates",
                      "patterns", "n est."});
  CsvWriter csv({"L", "seconds", "candidates", "patterns"});
  for (std::int64_t length = 1000; length <= 10'000; length += 1000) {
    Rng rng(options.seed + static_cast<std::uint64_t>(length));
    Sequence segment = ValueOrDie(
        RandomSegment(genome, static_cast<std::size_t>(length), rng));
    MinerConfig config = Section6Defaults();
    config.threads = options.threads;
    MiningResult result = ValueOrDie(MineMppm(segment, config));
    table.Row()
        .Add(length)
        .Add(result.total_seconds)
        .Add(result.total_seconds * 1000.0 / static_cast<double>(length))
        .Add(result.total_candidates)
        .Add(static_cast<std::uint64_t>(result.patterns.size()))
        .Add(result.estimated_n)
        .Done();
    CheckOk(csv.Row()
                .Add(length)
                .Add(result.total_seconds)
                .Add(result.total_candidates)
                .Add(static_cast<std::uint64_t>(result.patterns.size()))
                .Done());
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): roughly linear in L — the time/L column "
      "should stay of one magnitude across the sweep.\n");
  MaybeWriteCsv(options, csv);
  return 0;
}

}  // namespace
}  // namespace pgm::bench

int main(int argc, char** argv) { return pgm::bench::Run(argc, argv); }
