#include "bench/common.h"

#include <cstdio>
#include <cstdlib>

#include "datagen/presets.h"
#include "seq/fragmenter.h"
#include "util/logging.h"
#include "util/random.h"

namespace pgm::bench {

void RegisterHarnessFlags(FlagSet& flags, HarnessOptions& options) {
  flags.AddString("csv", &options.csv_path,
                  "also write the table as CSV to this path");
  flags.AddString("metrics-json", &options.metrics_json_path,
                  "append one JSON line of metrics+trace per mining run to "
                  "this path");
  flags.AddInt64("seed", &options.seed, "seed for synthetic data generation");
  flags.AddInt64("threads", &options.threads,
                 "worker threads for level evaluation (1 = serial, 0 = one "
                 "per hardware thread)");
}

int HandleParseResult(const Status& status) {
  if (status.ok()) return -1;
  if (status.code() == StatusCode::kNotFound) {
    // --help: the message is the usage text.
    std::printf("%s\n", status.message().c_str());
    return 0;
  }
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  return 2;
}

StatusOr<Sequence> SurrogateSegment(std::size_t length, std::uint64_t seed) {
  PGM_ASSIGN_OR_RETURN(Sequence genome, MakeAx829174Surrogate());
  Rng rng(seed);
  return RandomSegment(genome, length, rng);
}

MinerConfig Section6Defaults() {
  MinerConfig config;
  config.min_gap = 9;
  config.max_gap = 12;
  config.min_support_ratio = 0.003 / 100.0;  // the paper's 0.003%
  config.start_length = 3;
  config.em_order = 10;
  return config;
}

void MaybeWriteCsv(const HarnessOptions& options, const CsvWriter& csv) {
  if (options.csv_path.empty()) return;
  Status status = csv.WriteToFile(options.csv_path);
  if (status.ok()) {
    PGM_LOG(kInfo) << "wrote CSV to " << options.csv_path;
  } else {
    PGM_LOG(kError) << "failed to write CSV: " << status;
  }
}

void MaybeAppendRunJson(const HarnessOptions& options, const std::string& label,
                        const RunObservation& run) {
  if (options.metrics_json_path.empty()) return;
  TraceJsonOptions trace_options;
  trace_options.include_volatile = true;
  std::string line = "{\"run\": \"" + label + "\", \"metrics\": " +
                     run.metrics.ToJson() +
                     ", \"trace\": " + run.trace.ToJson(trace_options) + "}";
  // The exports are pretty-printed; strip the newlines (no string value can
  // contain one — the escaper encodes control characters) so each appended
  // record is one JSON line.
  std::string::size_type pos = 0;
  while ((pos = line.find('\n', pos)) != std::string::npos) {
    line.erase(pos, 1);
  }
  line += "\n";
  std::FILE* f = std::fopen(options.metrics_json_path.c_str(), "ab");
  if (f == nullptr) {
    PGM_LOG(kError) << "cannot open " << options.metrics_json_path;
    return;
  }
  const std::size_t written = std::fwrite(line.data(), 1, line.size(), f);
  if (std::fclose(f) != 0 || written != line.size()) {
    PGM_LOG(kError) << "failed to append run JSON to "
                    << options.metrics_json_path;
    return;
  }
  PGM_LOG(kInfo) << "appended run '" << label << "' to "
                 << options.metrics_json_path;
}

void CheckOk(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "fatal: %s\n", status.ToString().c_str());
    std::abort();
  }
}

}  // namespace pgm::bench
