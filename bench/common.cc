#include "bench/common.h"

#include <cstdio>
#include <cstdlib>

#include "datagen/presets.h"
#include "seq/fragmenter.h"
#include "util/logging.h"
#include "util/random.h"

namespace pgm::bench {

void RegisterHarnessFlags(FlagSet& flags, HarnessOptions& options) {
  flags.AddString("csv", &options.csv_path,
                  "also write the table as CSV to this path");
  flags.AddInt64("seed", &options.seed, "seed for synthetic data generation");
  flags.AddInt64("threads", &options.threads,
                 "worker threads for level evaluation (1 = serial, 0 = one "
                 "per hardware thread)");
}

int HandleParseResult(const Status& status) {
  if (status.ok()) return -1;
  if (status.code() == StatusCode::kNotFound) {
    // --help: the message is the usage text.
    std::printf("%s\n", status.message().c_str());
    return 0;
  }
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  return 2;
}

StatusOr<Sequence> SurrogateSegment(std::size_t length, std::uint64_t seed) {
  PGM_ASSIGN_OR_RETURN(Sequence genome, MakeAx829174Surrogate());
  Rng rng(seed);
  return RandomSegment(genome, length, rng);
}

MinerConfig Section6Defaults() {
  MinerConfig config;
  config.min_gap = 9;
  config.max_gap = 12;
  config.min_support_ratio = 0.003 / 100.0;  // the paper's 0.003%
  config.start_length = 3;
  config.em_order = 10;
  return config;
}

void MaybeWriteCsv(const HarnessOptions& options, const CsvWriter& csv) {
  if (options.csv_path.empty()) return;
  Status status = csv.WriteToFile(options.csv_path);
  if (status.ok()) {
    PGM_LOG(kInfo) << "wrote CSV to " << options.csv_path;
  } else {
    PGM_LOG(kError) << "failed to write CSV: " << status;
  }
}

void CheckOk(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "fatal: %s\n", status.ToString().c_str());
    std::abort();
  }
}

}  // namespace pgm::bench
