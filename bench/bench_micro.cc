// Micro-benchmarks (google-benchmark) for the core primitives, including
// the ablations called out in DESIGN.md §6:
//   * PIL combine vs direct-DP support recounting (why PILs exist),
//   * e_m via bounded multiplicity search vs naive offset enumeration,
//   * N_l computation across the closed-form and recurrence regions,
//   * candidate generation and sequence synthesis throughput.

#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "core/em.h"
#include "core/miner.h"
#include "core/offset_counter.h"
#include "core/pil.h"
#include "core/verifier.h"
#include "datagen/generators.h"
#include "datagen/presets.h"
#include "util/random.h"

namespace pgm::bench {
namespace {

Sequence BenchSequence(std::size_t length) {
  Rng rng(2718);
  return ValueOrDie(UniformRandomSequence(length, Alphabet::Dna(), rng));
}

// --- Ablation 1: PIL combine vs recounting support from scratch. ---

void BM_PilCombine(benchmark::State& state) {
  const std::size_t length = static_cast<std::size_t>(state.range(0));
  Sequence s = BenchSequence(length);
  GapRequirement gap = ValueOrDie(GapRequirement::Create(9, 12));
  Pattern left = ValueOrDie(Pattern::Parse("ACG", Alphabet::Dna()));
  Pattern right = ValueOrDie(Pattern::Parse("CGT", Alphabet::Dna()));
  PartialIndexList left_pil = ValueOrDie(ComputePil(s, left, gap));
  PartialIndexList right_pil = ValueOrDie(ComputePil(s, right, gap));
  for (auto _ : state) {
    PartialIndexList combined =
        PartialIndexList::Combine(left_pil, right_pil, gap);
    benchmark::DoNotOptimize(combined.TotalSupport().count);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(left_pil.size()));
}
BENCHMARK(BM_PilCombine)->Arg(1000)->Arg(10'000)->Arg(100'000);

void BM_VerifierRecount(benchmark::State& state) {
  const std::size_t length = static_cast<std::size_t>(state.range(0));
  Sequence s = BenchSequence(length);
  GapRequirement gap = ValueOrDie(GapRequirement::Create(9, 12));
  Pattern pattern = ValueOrDie(Pattern::Parse("ACGT", Alphabet::Dna()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountSupport(s, pattern, gap)->count);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(length));
}
BENCHMARK(BM_VerifierRecount)->Arg(1000)->Arg(10'000)->Arg(100'000);

// --- Ablation 2: exact e_m search vs naive enumeration. ---

void BM_EmBoundedSearch(benchmark::State& state) {
  const std::int64_t m = state.range(0);
  Sequence s = BenchSequence(1000);
  GapRequirement gap = ValueOrDie(GapRequirement::Create(9, 12));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeEm(s, gap, m)->em);
  }
}
BENCHMARK(BM_EmBoundedSearch)->Arg(4)->Arg(8)->Arg(10);

void BM_EmNaiveEnumeration(benchmark::State& state) {
  const std::int64_t m = state.range(0);
  Sequence s = BenchSequence(1000);
  GapRequirement gap = ValueOrDie(GapRequirement::Create(9, 12));
  for (auto _ : state) {
    std::uint64_t em = 0;
    for (std::size_t r = 0; r < s.size(); r += 25) {  // sampled: full scan
      em = std::max(em, BruteForceKr(s, gap, m, r));  // is intractable
    }
    benchmark::DoNotOptimize(em);
  }
}
BENCHMARK(BM_EmNaiveEnumeration)->Arg(4)->Arg(8);

// --- N_l computation. ---

void BM_OffsetCounterClosedForm(benchmark::State& state) {
  GapRequirement gap = ValueOrDie(GapRequirement::Create(9, 12));
  for (auto _ : state) {
    OffsetCounter counter(10'000, gap);
    benchmark::DoNotOptimize(counter.Count(counter.l1()));
  }
}
BENCHMARK(BM_OffsetCounterClosedForm);

void BM_OffsetCounterCaseThree(benchmark::State& state) {
  GapRequirement gap = ValueOrDie(GapRequirement::Create(9, 12));
  for (auto _ : state) {
    OffsetCounter counter(2'000, gap);
    benchmark::DoNotOptimize(counter.Count(counter.l2()));
  }
}
BENCHMARK(BM_OffsetCounterCaseThree);

// --- End-to-end miners at Section 6 scale. ---

void BM_MineMppm(benchmark::State& state) {
  Sequence segment = ValueOrDie(SurrogateSegment(1000, 42));
  MinerConfig config = Section6Defaults();
  for (auto _ : state) {
    benchmark::DoNotOptimize(MineMppm(segment, config)->patterns.size());
  }
}
BENCHMARK(BM_MineMppm);

// Same run with a full observer (metrics registry + trace) attached. The
// contract in DESIGN.md §Observability is that BM_MineMppm (null observer)
// stays within 1% of the pre-observability baseline; this variant shows the
// cost of actually recording, which is allowed to be visible.
void BM_MineMppmObserved(benchmark::State& state) {
  Sequence segment = ValueOrDie(SurrogateSegment(1000, 42));
  MinerConfig config = Section6Defaults();
  for (auto _ : state) {
    RunObservation obs;
    benchmark::DoNotOptimize(
        MineMppm(segment, obs.Attach(config))->patterns.size());
  }
}
BENCHMARK(BM_MineMppmObserved);

void BM_MineMppBestCase(benchmark::State& state) {
  Sequence segment = ValueOrDie(SurrogateSegment(1000, 42));
  MinerConfig config = Section6Defaults();
  config.user_n = 13;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MineMpp(segment, config)->patterns.size());
  }
}
BENCHMARK(BM_MineMppBestCase);

// --- Parallel level evaluation: the threads axis. ---

// MPPm at Section 6 scale with the level joins sharded over the argument's
// worker count. Results are identical at every thread count; only the time
// should move.
void BM_MineMppmThreads(benchmark::State& state) {
  Sequence segment = ValueOrDie(SurrogateSegment(1000, 42));
  MinerConfig config = Section6Defaults();
  config.threads = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MineMppm(segment, config)->patterns.size());
  }
}
BENCHMARK(BM_MineMppmThreads)->Arg(1)->Arg(2)->Arg(4);

// A level-heavy configuration (worst-case n, low threshold, longer segment)
// so the candidate lists are wide enough for the sharding to matter.
void BM_MineMppLevelHeavyThreads(benchmark::State& state) {
  Sequence segment = ValueOrDie(SurrogateSegment(4000, 42));
  MinerConfig config = Section6Defaults();
  config.min_support_ratio = 0.00001;  // 0.001%
  config.threads = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MineMpp(segment, config)->patterns.size());
  }
}
BENCHMARK(BM_MineMppLevelHeavyThreads)->Arg(1)->Arg(2)->Arg(4);

// --- Data generation throughput. ---

void BM_GenerateBacteriaGenome(benchmark::State& state) {
  const std::size_t length = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeBacteriaLikeGenome(length, seed++)->size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(length));
}
BENCHMARK(BM_GenerateBacteriaGenome)->Arg(100'000);

}  // namespace
}  // namespace pgm::bench

BENCHMARK_MAIN();
