// Reproduces Figure 4 of the paper: execution time versus support
// threshold ρs for
//   (a) MPPm vs MPP in the worst case (user has no estimate: n = l1), and
//   (b) MPPm vs MPP in the best case (user guesses n = no(ρs) exactly).
//
// Parameters follow Section 6: L = 1000 (surrogate AX829174 segment),
// gap [9,12], m = 10, ρs swept over 0.0015%..0.005%.

#include <cstdio>

#include "bench/common.h"
#include "core/miner.h"
#include "util/table_printer.h"

namespace pgm::bench {
namespace {

int Run(int argc, char** argv) {
  HarnessOptions options;
  std::int64_t length = 1000;
  std::int64_t repetitions = 3;
  FlagSet flags("Figure 4: time vs support threshold (MPPm / MPP worst / best)");
  flags.AddInt64("length", &length, "subject sequence length L");
  flags.AddInt64("repetitions", &repetitions,
                 "timing repetitions per configuration (median-free mean)");
  RegisterHarnessFlags(flags, options);
  if (int code = HandleParseResult(flags.Parse(argc, argv)); code >= 0) {
    return code;
  }

  Sequence segment = ValueOrDie(
      SurrogateSegment(static_cast<std::size_t>(length), options.seed));

  const double thresholds_percent[] = {0.0015, 0.002, 0.0025, 0.003,
                                       0.0035, 0.004, 0.0045, 0.005};

  TablePrinter table({"rho_s (%)", "no(rho_s)", "n(MPPm)", "MPPm (s)",
                      "MPP worst (s)", "MPP best (s)", "worst/MPPm",
                      "MPPm/best"});
  CsvWriter csv({"rho_percent", "no_rho", "mppm_n", "mppm_seconds",
                 "mpp_worst_seconds", "mpp_best_seconds"});

  for (double rho_percent : thresholds_percent) {
    MinerConfig config = Section6Defaults();
    config.min_support_ratio = rho_percent / 100.0;

    auto timed = [&](const MinerConfig& c,
                     StatusOr<MiningResult> (*miner)(const Sequence&,
                                                     const MinerConfig&)) {
      double best_seconds = 0.0;
      MiningResult last;
      for (std::int64_t rep = 0; rep < repetitions; ++rep) {
        last = ValueOrDie(miner(segment, c));
        if (rep == 0 || last.total_seconds < best_seconds) {
          best_seconds = last.total_seconds;
        }
      }
      last.total_seconds = best_seconds;
      return last;
    };

    MinerConfig worst = config;
    worst.user_n = -1;
    MiningResult mpp_worst = timed(worst, &MineMpp);

    MiningResult mppm = timed(config, &MineMppm);

    MinerConfig best = config;
    best.user_n = mpp_worst.longest_frequent_length;
    MiningResult mpp_best = timed(best, &MineMpp);

    table.Row()
        .Add(rho_percent)
        .Add(mpp_worst.longest_frequent_length)
        .Add(mppm.estimated_n)
        .Add(mppm.total_seconds)
        .Add(mpp_worst.total_seconds)
        .Add(mpp_best.total_seconds)
        .Add(mpp_worst.total_seconds / mppm.total_seconds)
        .Add(mppm.total_seconds / mpp_best.total_seconds)
        .Done();
    CheckOk(csv.Row()
                .Add(rho_percent)
                .Add(mpp_worst.longest_frequent_length)
                .Add(mppm.estimated_n)
                .Add(mppm.total_seconds)
                .Add(mpp_worst.total_seconds)
                .Add(mpp_best.total_seconds)
                .Done());
  }

  std::printf("=== Figure 4: time vs rho_s (L=%lld, gap [9,12], m=10) ===\n",
              static_cast<long long>(length));
  table.Print();
  std::printf(
      "\nExpected shape (paper): times fall as rho_s grows; "
      "MPP(worst) >> MPPm (paper: 16-30x) and MPPm modestly slower than "
      "MPP(best) (paper: 1.5-3.7x).\n");
  MaybeWriteCsv(options, csv);
  return 0;
}

}  // namespace
}  // namespace pgm::bench

int main(int argc, char** argv) { return pgm::bench::Run(argc, argv); }
