// Reproduces Table 3 of the paper: the number of candidate patterns counted
// per level by the enumeration baseline (analytic 4^i), MPP in the worst
// case (n = l1), MPPm, and MPP in the best case (n = no(ρs)).
//
// Parameters follow Section 6: a length-1000 segment of (the surrogate of)
// AX829174, gap [9,12], ρs = 0.003%, m = 10.

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/common.h"
#include "core/miner.h"
#include "util/saturating.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace pgm::bench {
namespace {

int Run(int argc, char** argv) {
  HarnessOptions options;
  std::int64_t length = 1000;
  FlagSet flags(
      "Table 3: candidates counted per level by Enumeration / MPP(worst) / "
      "MPPm / MPP(best)");
  flags.AddInt64("length", &length, "subject sequence length L");
  RegisterHarnessFlags(flags, options);
  if (int code = HandleParseResult(flags.Parse(argc, argv)); code >= 0) {
    return code;
  }

  Sequence segment = ValueOrDie(
      SurrogateSegment(static_cast<std::size_t>(length), options.seed));
  MinerConfig config = Section6Defaults();

  // Each run gets its own observer so --metrics-json can emit one
  // machine-readable line per algorithm next to the human table.
  RunObservation worst_obs, mppm_obs, best_obs;
  MinerConfig worst = config;
  worst.user_n = -1;
  MiningResult mpp_worst = ValueOrDie(MineMpp(segment, worst_obs.Attach(worst)));
  MiningResult mppm = ValueOrDie(MineMppm(segment, mppm_obs.Attach(config)));
  MinerConfig best = config;
  best.user_n = mpp_worst.longest_frequent_length;  // no(ρs)
  MiningResult mpp_best = ValueOrDie(MineMpp(segment, best_obs.Attach(best)));
  MaybeAppendRunJson(options, "mpp_worst", worst_obs);
  MaybeAppendRunJson(options, "mppm", mppm_obs);
  MaybeAppendRunJson(options, "mpp_best", best_obs);

  std::printf(
      "L=%lld, gap [9,12], rho_s=0.003%%, m=10; no(rho_s)=%lld, l1=%lld, "
      "MPPm estimated n=%lld\n\n",
      static_cast<long long>(length),
      static_cast<long long>(mpp_worst.longest_frequent_length),
      static_cast<long long>(mpp_worst.n_used),
      static_cast<long long>(mppm.estimated_n));

  auto by_level = [](const MiningResult& result) {
    std::map<std::int64_t, std::uint64_t> map;
    for (const LevelStats& stats : result.level_stats) {
      map[stats.length] = stats.num_candidates;
    }
    return map;
  };
  const auto worst_levels = by_level(mpp_worst);
  const auto mppm_levels = by_level(mppm);
  const auto best_levels = by_level(mpp_best);

  std::int64_t max_level = 0;
  for (const auto& [level, count] : worst_levels) {
    if (count > 0) max_level = std::max(max_level, level);
  }

  TablePrinter table(
      {"", "Enumeration", "MPP (worst case)", "MPPm", "MPP (best case)"});
  CsvWriter csv({"level", "enumeration", "mpp_worst", "mppm", "mpp_best"});
  auto cell = [](const std::map<std::int64_t, std::uint64_t>& levels,
                 std::int64_t level) -> std::string {
    auto it = levels.find(level);
    if (it == levels.end()) return "-";
    return FormatCount(it->second);
  };
  for (std::int64_t level = 3; level <= max_level; ++level) {
    // Enumeration counts all 4^i candidates at level i (it has no pruning);
    // beyond ~13 the paper itself prints the analytic 4^i.
    std::uint64_t enumeration = 1;
    for (std::int64_t i = 0; i < level; ++i) enumeration = SatMul(enumeration, 4);
    table.Row()
        .Add(StrFormat("C%lld", static_cast<long long>(level)))
        .Add(FormatCount(enumeration))
        .Add(cell(worst_levels, level))
        .Add(cell(mppm_levels, level))
        .Add(cell(best_levels, level))
        .Done();
    auto num = [](const std::map<std::int64_t, std::uint64_t>& levels,
                  std::int64_t l) -> std::int64_t {
      auto it = levels.find(l);
      return it == levels.end() ? -1 : static_cast<std::int64_t>(it->second);
    };
    CheckOk(csv.Row()
                .Add(level)
                .Add(enumeration)
                .Add(num(worst_levels, level))
                .Add(num(mppm_levels, level))
                .Add(num(best_levels, level))
                .Done());
  }
  table.Print();

  std::printf(
      "\nTotals: MPP(worst)=%s  MPPm=%s  MPP(best)=%s candidates\n"
      "Expected shape (paper): Enumeration >> MPP(worst) >> MPPm > "
      "MPP(best), with pruning kicking in around level 8.\n",
      FormatCount(mpp_worst.total_candidates).c_str(),
      FormatCount(mppm.total_candidates).c_str(),
      FormatCount(mpp_best.total_candidates).c_str());
  MaybeWriteCsv(options, csv);
  return 0;
}

}  // namespace
}  // namespace pgm::bench

int main(int argc, char** argv) { return pgm::bench::Run(argc, argv); }
