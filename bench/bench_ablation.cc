// Ablation studies for the design choices called out in DESIGN.md §6:
//
//   A. MPPm's n-estimation with the Theorem 2 λ' bound (e_m) versus the
//      plain Theorem 1 λ bound — quantifies what the e_m statistic buys.
//   B. The e_m order m itself: estimation quality and overhead as m grows.
//   C. Maximal-pattern condensation: how much smaller the reported result
//      set becomes (a reporting extension beyond the paper).

#include <cstdio>

#include "analysis/maximal.h"
#include "analysis/window_model.h"
#include "bench/common.h"
#include "core/miner.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace pgm::bench {
namespace {

int Run(int argc, char** argv) {
  HarnessOptions options;
  std::int64_t length = 1000;
  FlagSet flags("Ablations: e_m bound on/off, e_m order m, maximal patterns");
  flags.AddInt64("length", &length, "subject sequence length L");
  RegisterHarnessFlags(flags, options);
  if (int code = HandleParseResult(flags.Parse(argc, argv)); code >= 0) {
    return code;
  }

  Sequence segment = ValueOrDie(
      SurrogateSegment(static_cast<std::size_t>(length), options.seed));
  MinerConfig config = Section6Defaults();
  CsvWriter csv({"ablation", "setting", "estimated_n", "seconds",
                 "candidates"});

  // --- A: Theorem 2 vs Theorem 1 in the n-estimate. ---
  std::printf(
      "=== Ablation A: the n-estimate with and without the e_m bound "
      "(L=%lld, gap [9,12], rho_s=0.003%%) ===\n",
      static_cast<long long>(length));
  TablePrinter bound_table({"n-estimation bound", "estimated n", "time (s)",
                            "candidates", "patterns"});
  for (bool use_em : {true, false}) {
    MinerConfig c = config;
    c.use_em_bound = use_em;
    MiningResult result = ValueOrDie(MineMppm(segment, c));
    bound_table.Row()
        .Add(use_em ? "Theorem 2 (lambda', with e_m)" : "Theorem 1 (lambda only)")
        .Add(result.estimated_n)
        .Add(result.total_seconds)
        .Add(result.total_candidates)
        .Add(static_cast<std::uint64_t>(result.patterns.size()))
        .Done();
    CheckOk(csv.Row()
                .Add("em_bound")
                .Add(use_em ? "on" : "off")
                .Add(result.estimated_n)
                .Add(result.total_seconds)
                .Add(result.total_candidates)
                .Done());
  }
  bound_table.Print();
  std::printf(
      "Without Theorem 2 the scan accepts nearly every k, degrading the "
      "estimate toward the worst case n = l1.\n\n");

  // --- B: sweep the order m. ---
  std::printf("=== Ablation B: e_m order m ===\n");
  TablePrinter m_table({"m", "e_m", "estimated n", "e_m time (s)",
                        "total time (s)", "candidates"});
  for (std::int64_t m : {2, 4, 6, 8, 10, 12}) {
    MinerConfig c = config;
    c.em_order = m;
    MiningResult result = ValueOrDie(MineMppm(segment, c));
    m_table.Row()
        .Add(m)
        .Add(result.em)
        .Add(result.estimated_n)
        .Add(result.em_seconds)
        .Add(result.total_seconds)
        .Add(result.total_candidates)
        .Done();
    CheckOk(csv.Row()
                .Add("em_order")
                .Add(std::to_string(m))
                .Add(result.estimated_n)
                .Add(result.total_seconds)
                .Add(result.total_candidates)
                .Done());
  }
  m_table.Print();
  std::printf(
      "Larger m tightens the estimate (W^m/e_m grows) at higher one-off "
      "analysis cost — the paper's trade-off from Section 5.2.\n\n");

  // --- C: maximal-pattern condensation. ---
  std::printf("=== Ablation C: maximal-pattern condensation ===\n");
  MiningResult full = ValueOrDie(MineMppm(segment, config));
  Stopwatch watch;
  std::vector<FrequentPattern> maximal = FilterMaximalPatterns(full.patterns);
  const double condense_seconds = watch.ElapsedSeconds();
  std::printf(
      "%zu frequent patterns condense to %zu maximal ones (%.1fx smaller) "
      "in %.4g s\n",
      full.patterns.size(), maximal.size(),
      static_cast<double>(full.patterns.size()) /
          static_cast<double>(maximal.empty() ? 1 : maximal.size()),
      condense_seconds);
  CheckOk(csv.Row()
              .Add("maximal")
              .Add("on")
              .Add(static_cast<std::int64_t>(maximal.size()))
              .Add(condense_seconds)
              .Add(static_cast<std::uint64_t>(full.patterns.size()))
              .Done());

  // --- D: the related-work window model (Section 2 contrast). ---
  std::printf(
      "\n=== Ablation D: window-counting model (Han et al. / Mannila et "
      "al.) vs the paper's offset-sequence model ===\n");
  GapRequirement gap = ValueOrDie(GapRequirement::Create(9, 12));
  // Take the longest frequent patterns under the paper's model and ask
  // how many windows (non-overlapping, the Han-style tiling) even get a
  // chance to see them.
  std::vector<const FrequentPattern*> longest;
  for (const FrequentPattern& fp : full.patterns) {
    if (static_cast<std::int64_t>(fp.pattern.length()) >=
        full.longest_frequent_length - 1) {
      longest.push_back(&fp);
    }
  }
  TablePrinter window_table({"pattern", "span range", "sup (paper model)",
                             "w=64 tiles hit", "w=128 tiles hit",
                             "w=256 tiles hit"});
  for (std::size_t i = 0; i < longest.size() && i < 5; ++i) {
    const FrequentPattern& fp = *longest[i];
    const std::int64_t l = static_cast<std::int64_t>(fp.pattern.length());
    auto row = window_table.Row()
                   .Add(fp.pattern.ToShorthand())
                   .Add(StrFormat("%lld-%lld",
                                  static_cast<long long>(gap.MinSpan(l)),
                                  static_cast<long long>(gap.MaxSpan(l))))
                   .Add(fp.support);
    for (std::size_t width : {64u, 128u, 256u}) {
      WindowModelConfig wconfig;
      wconfig.window_width = width;
      wconfig.overlapping = false;
      wconfig.min_window_fraction = 0.01;
      const std::int64_t hits = ValueOrDie(
          CountWindowsWithOccurrence(segment, fp.pattern, gap, wconfig));
      row.Add(StrFormat("%lld/%lld", static_cast<long long>(hits),
                        static_cast<long long>(
                            NumWindows(segment.size(), wconfig))));
    }
    row.Done();
  }
  window_table.Print();
  std::printf(
      "Patterns spanning ~%lld+ positions are invisible to tiles narrower "
      "than their span and under-counted by wider ones (boundary losses) — "
      "the paper's Section 2 argument for the offset-sequence model.\n",
      static_cast<long long>(gap.MinSpan(full.longest_frequent_length)));

  MaybeWriteCsv(options, csv);
  return 0;
}

}  // namespace
}  // namespace pgm::bench

int main(int argc, char** argv) { return pgm::bench::Run(argc, argv); }
