// Reproduces the Section 7 case study: mine 100 kb genome fragments with
// MPPm at gap [10,12] and ρs = 0.006%, then aggregate the composition of
// the frequent length-8 patterns.
//
// The paper's genome downloads (H. influenzae, H. pylori, M. genitalium,
// M. pneumoniae; H. sapiens, C. elegans, D. melanogaster) are replaced by
// the documented synthetic presets (DESIGN.md §3). The reported statistics
// mirror the paper's:
//   * bacteria: essentially all 256 AT-only length-8 patterns frequent,
//     only a handful of multi-C/G ones;
//   * eukaryotes: AT-only patterns still frequent in some fragments, plus
//     C/G-rich patterns (poly-G up to 16-17 bases in one fragment);
//   * worm: self-repeating patterns (ATATATATATA-style).

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/case_study.h"
#include "analysis/compare.h"
#include "bench/common.h"
#include "datagen/presets.h"
#include "util/table_printer.h"

namespace pgm::bench {
namespace {

struct Species {
  std::string name;
  std::string kind;
  Sequence genome;
};

int Run(int argc, char** argv) {
  HarnessOptions options;
  std::int64_t fragment_kb = 100;
  std::int64_t fragments_per_species = 2;
  FlagSet flags("Section 7 case study: composition of frequent patterns");
  flags.AddInt64("fragment_kb", &fragment_kb, "fragment size in kilobases");
  flags.AddInt64("fragments", &fragments_per_species,
                 "fragments mined per species");
  RegisterHarnessFlags(flags, options);
  if (int code = HandleParseResult(flags.Parse(argc, argv)); code >= 0) {
    return code;
  }

  const std::size_t fragment_length =
      static_cast<std::size_t>(fragment_kb) * 1000;
  const std::size_t genome_length =
      fragment_length * static_cast<std::size_t>(fragments_per_species);
  const std::uint64_t seed = static_cast<std::uint64_t>(options.seed);

  std::vector<Species> species;
  species.push_back({"H. influenzae (like)", "bacteria",
                     ValueOrDie(MakeBacteriaLikeGenome(genome_length, seed))});
  species.push_back(
      {"M. genitalium (like)", "bacteria",
       ValueOrDie(MakeBacteriaLikeGenome(genome_length, seed + 1))});
  species.push_back(
      {"H. sapiens (like)", "eukaryote",
       ValueOrDie(MakeEukaryoteLikeGenome(genome_length, seed + 2))});
  species.push_back(
      {"D. melanogaster (like)", "eukaryote",
       ValueOrDie(MakeEukaryoteLikeGenome(genome_length, seed + 3))});
  species.push_back({"C. elegans (like)", "worm",
                     ValueOrDie(MakeWormLikeGenome(genome_length, seed + 4))});

  CaseStudyConfig config;
  config.miner.min_gap = 10;
  config.miner.max_gap = 12;
  config.miner.min_support_ratio = 0.006 / 100.0;
  config.miner.start_length = 3;
  config.miner.em_order = 10;
  config.fragment_length = fragment_length;
  config.report_length = 8;

  std::printf(
      "=== Section 7 case study: gap [10,12], rho_s=0.006%%, %lld x %lld kb "
      "fragments per species ===\n\n",
      static_cast<long long>(fragments_per_species),
      static_cast<long long>(fragment_kb));

  TablePrinter table({"species", "kind", "AT-only len-8 (avg of 256)",
                      "1 C/G (avg of 2048)", ">=2 C/G (avg of 63232)",
                      "all-256-AT frags", "longest", "longest poly-G",
                      "self-repeating"});
  CsvWriter csv({"species", "kind", "avg_at_only", "avg_single_cg",
                 "avg_multi_cg", "fragments_all_at", "longest",
                 "longest_poly_g", "self_repeating"});

  std::vector<NamedPatternSet> long_pattern_sets;
  for (const Species& sp : species) {
    CaseStudyReport report = ValueOrDie(RunCaseStudy(sp.genome, config));
    // Collect the long patterns (>= report_length) for the cross-species
    // uniqueness comparison below.
    NamedPatternSet set;
    set.name = sp.name;
    for (const FrequentPattern& fp : report.frequent_union) {
      if (static_cast<std::int64_t>(fp.pattern.length()) >=
          config.report_length) {
        set.patterns.push_back(fp);
      }
    }
    long_pattern_sets.push_back(std::move(set));
    std::uint64_t self_repeating = 0;
    for (const FragmentReport& f : report.fragments) {
      self_repeating += f.num_self_repeating;
    }
    table.Row()
        .Add(sp.name)
        .Add(sp.kind)
        .Add(report.avg_at_only)
        .Add(report.avg_single_cg)
        .Add(report.avg_multi_cg)
        .Add(static_cast<std::uint64_t>(report.fragments_with_all_at))
        .Add(report.longest_overall)
        .Add(report.longest_poly_g_overall)
        .Add(self_repeating)
        .Done();
    CheckOk(csv.Row()
                .Add(sp.name)
                .Add(sp.kind)
                .Add(report.avg_at_only)
                .Add(report.avg_single_cg)
                .Add(report.avg_multi_cg)
                .Add(static_cast<std::uint64_t>(report.fragments_with_all_at))
                .Add(report.longest_overall)
                .Add(report.longest_poly_g_overall)
                .Add(self_repeating)
                .Done());
  }
  table.Print();

  // The paper's closing observation: "there are unique periodic patterns
  // for each species".
  std::printf("\ncross-species comparison of length->=%lld patterns:\n",
              static_cast<long long>(config.report_length));
  std::vector<SetComparison> comparisons =
      ValueOrDie(ComparePatternSets(long_pattern_sets));
  TablePrinter unique_table(
      {"species", "long patterns", "common to all", "unique", "example unique"});
  for (const SetComparison& comparison : comparisons) {
    unique_table.Row()
        .Add(comparison.name)
        .Add(static_cast<std::uint64_t>(comparison.total))
        .Add(static_cast<std::uint64_t>(comparison.common.size()))
        .Add(static_cast<std::uint64_t>(comparison.unique.size()))
        .Add(comparison.unique.empty() ? "-"
                                       : comparison.unique.front().ToShorthand())
        .Done();
  }
  unique_table.Print();

  std::printf(
      "\nPaper findings to compare against:\n"
      "  * bacteria: ~250 of the 256 AT-only length-8 patterns frequent per "
      "fragment; only ~3.9 of the 63232 multi-C/G ones; longest pattern 10\n"
      "  * eukaryotes: all 256 AT-only patterns frequent in some fragments; "
      "additional C/G-rich patterns incl. poly-G of length 16 (and a 17-G "
      "pattern unique to H. sapiens)\n"
      "  * C. elegans: self-repeating patterns such as ATATATATATA and "
      "GTAGTAGTAGT\n");
  MaybeWriteCsv(options, csv);
  return 0;
}

}  // namespace
}  // namespace pgm::bench

int main(int argc, char** argv) { return pgm::bench::Run(argc, argv); }
