// Reproduces Figure 7 of the paper: MPPm execution time as the minimum gap
// N varies from 8 to 12 with the flexibility fixed at W = 4 (gap
// [N, N+3]). L = 1000, m = 8, ρs = 0.003%. Expected: time grows with N —
// λ_{n,n-i} is a decreasing function of N, so a smaller N prunes more.

#include <cstdio>

#include "bench/common.h"
#include "core/miner.h"
#include "util/table_printer.h"

namespace pgm::bench {
namespace {

int Run(int argc, char** argv) {
  HarnessOptions options;
  std::int64_t length = 1000;
  FlagSet flags("Figure 7: MPPm time vs minimum gap N (W = 4)");
  flags.AddInt64("length", &length, "subject sequence length L");
  RegisterHarnessFlags(flags, options);
  if (int code = HandleParseResult(flags.Parse(argc, argv)); code >= 0) {
    return code;
  }

  Sequence segment = ValueOrDie(
      SurrogateSegment(static_cast<std::size_t>(length), options.seed));

  std::printf(
      "=== Figure 7: MPPm time vs N (L=%lld, W=4, m=8, rho_s=0.003%%) ===\n",
      static_cast<long long>(length));
  TablePrinter table(
      {"N", "gap", "time (s)", "candidates", "patterns", "n est."});
  CsvWriter csv({"N", "seconds", "candidates", "patterns"});
  for (std::int64_t n = 8; n <= 12; ++n) {
    MinerConfig config = Section6Defaults();
    config.min_gap = n;
    config.max_gap = n + 3;
    config.em_order = 8;
    MiningResult result = ValueOrDie(MineMppm(segment, config));
    GapRequirement gap =
        ValueOrDie(GapRequirement::Create(config.min_gap, config.max_gap));
    table.Row()
        .Add(n)
        .Add(gap.ToString())
        .Add(result.total_seconds)
        .Add(result.total_candidates)
        .Add(static_cast<std::uint64_t>(result.patterns.size()))
        .Add(result.estimated_n)
        .Done();
    CheckOk(csv.Row()
                .Add(n)
                .Add(result.total_seconds)
                .Add(result.total_candidates)
                .Add(static_cast<std::uint64_t>(result.patterns.size()))
                .Done());
  }
  table.Print();
  std::printf(
      "\nExpected shape (paper): mild growth with N — "
      "λ_{n,n-i} = [L-(n-1)((M+N)/2+1)] / [L-(i-1)((M+N)/2+1)] decreases "
      "as N grows, so less pruning and more work.\n");
  MaybeWriteCsv(options, csv);
  return 0;
}

}  // namespace
}  // namespace pgm::bench

int main(int argc, char** argv) { return pgm::bench::Run(argc, argv); }
