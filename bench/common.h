#ifndef PGM_BENCH_COMMON_H_
#define PGM_BENCH_COMMON_H_

#include <cstdint>
#include <string>

#include "core/miner.h"
#include "seq/sequence.h"
#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/status.h"

namespace pgm::bench {

/// Shared flags every harness binary accepts: --csv <path> to also write the
/// table as CSV, --seed for data generation, --threads for the miners'
/// level-evaluation worker count.
struct HarnessOptions {
  std::string csv_path;
  std::int64_t seed = 42;
  std::int64_t threads = 1;
};

/// Registers the shared flags on `flags`.
void RegisterHarnessFlags(FlagSet& flags, HarnessOptions& options);

/// Prints usage-or-error outcomes of FlagSet::Parse; returns the process
/// exit code to use, or -1 to continue.
int HandleParseResult(const Status& status);

/// A deterministic length-L segment of the AX829174 surrogate, starting at
/// a seed-dependent offset — the Section 6 methodology ("we randomly pick a
/// length-L segment from AX829174").
StatusOr<Sequence> SurrogateSegment(std::size_t length, std::uint64_t seed);

/// The paper's Section 6 defaults: gap [9,12], ρs = 0.003%, start length 3,
/// m = 10.
MinerConfig Section6Defaults();

/// Writes `csv` to options.csv_path when set, logging the outcome.
void MaybeWriteCsv(const HarnessOptions& options, const CsvWriter& csv);

/// Crashes with the status message when not OK (harness binaries only).
void CheckOk(const Status& status);

template <typename T>
T ValueOrDie(StatusOr<T> result) {
  CheckOk(result.status());
  return std::move(result).value();
}

}  // namespace pgm::bench

#endif  // PGM_BENCH_COMMON_H_
