#ifndef PGM_BENCH_COMMON_H_
#define PGM_BENCH_COMMON_H_

#include <cstdint>
#include <string>

#include "core/miner.h"
#include "core/trace.h"
#include "seq/sequence.h"
#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/metrics.h"
#include "util/status.h"

namespace pgm::bench {

/// Shared flags every harness binary accepts: --csv <path> to also write the
/// table as CSV, --seed for data generation, --threads for the miners'
/// level-evaluation worker count, --metrics-json for machine-readable
/// per-run observability output next to the human tables.
struct HarnessOptions {
  std::string csv_path;
  std::string metrics_json_path;
  std::int64_t seed = 42;
  std::int64_t threads = 1;
};

/// Registers the shared flags on `flags`.
void RegisterHarnessFlags(FlagSet& flags, HarnessOptions& options);

/// Prints usage-or-error outcomes of FlagSet::Parse; returns the process
/// exit code to use, or -1 to continue.
int HandleParseResult(const Status& status);

/// A deterministic length-L segment of the AX829174 surrogate, starting at
/// a seed-dependent offset — the Section 6 methodology ("we randomly pick a
/// length-L segment from AX829174").
StatusOr<Sequence> SurrogateSegment(std::size_t length, std::uint64_t seed);

/// The paper's Section 6 defaults: gap [9,12], ρs = 0.003%, start length 3,
/// m = 10.
MinerConfig Section6Defaults();

/// Writes `csv` to options.csv_path when set, logging the outcome.
void MaybeWriteCsv(const HarnessOptions& options, const CsvWriter& csv);

/// One mining run's observer bundle: fresh metrics registry + trace wired
/// into a MiningObserver. Attach to a config with Attach(), run the miner,
/// then emit the run with MaybeAppendRunJson.
struct RunObservation {
  RunObservation() {
    observer.metrics = &metrics;
    observer.trace = &trace;
  }
  RunObservation(const RunObservation&) = delete;
  RunObservation& operator=(const RunObservation&) = delete;

  /// Returns `config` with this observation's observer attached. The
  /// RunObservation must outlive the mining call.
  MinerConfig Attach(MinerConfig config) const {
    config.observer = &observer;
    return config;
  }

  MetricsRegistry metrics;
  MiningTrace trace;
  MiningObserver observer;
};

/// Appends `{"run": <label>, "metrics": ..., "trace": ...}` as one JSON line
/// to options.metrics_json_path when set (timing fields included — bench
/// output is for comparison, not byte-stability), logging failures.
void MaybeAppendRunJson(const HarnessOptions& options, const std::string& label,
                        const RunObservation& run);

/// Crashes with the status message when not OK (harness binaries only).
void CheckOk(const Status& status);

template <typename T>
T ValueOrDie(StatusOr<T> result) {
  CheckOk(result.status());
  return std::move(result).value();
}

}  // namespace pgm::bench

#endif  // PGM_BENCH_COMMON_H_
