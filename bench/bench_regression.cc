// Benchmark-regression harness for the arena join path (PR "arena-backed
// PILs"), the serving layer (PR "pgm serve"), and the corpus executor
// (PR "pgm corpus"). Four measurement groups, emitted as a flat JSON file
// that tools/bench_check compares against the committed baseline
// (BENCH_pr9.json at the repo root):
//
//   1. Candidate-join benchmark: one level's full candidate pipeline run
//      (a) the pre-arena way — eager CandidateSpec generation with one
//      symbol string per candidate, one heap-allocating
//      PartialIndexList::Combine per candidate, a per-PIL MiningGuard
//      memory charge/release pair, and a separate TotalSupport pass — and
//      (b) through the shipped arena path: JoinPlan::SelfJoin +
//      ParallelLevelExecutor::ExecuteJoin writing into a reused output
//      arena, support computed inside the kernel, symbols built lazily for
//      retained candidates only. Both paths apply the same retention
//      threshold and fold the identical checksum over every candidate's
//      rows, so the comparison also re-verifies the byte-equivalence
//      contract. Two regimes: the Section 6 wide-gap DNA join (few
//      candidates, long PILs — bandwidth-bound) and a deep protein-alphabet
//      level (~150k candidates over ~4-row PILs in prefix groups of 20 —
//      where per-candidate spec generation, allocation, and ledger traffic
//      dominate and the arena wins big).
//   2. End-to-end MineMpp wall clock on a surrogate segment at 1, 2, and 8
//      worker threads, interleaved rep by rep so the gated
//      e2e_mpp_speedup_2t / e2e_mpp_speedup_8t ratios (t1/t2, t1/t8) draw
//      their minima from the same machine conditions. On a single-core box
//      the ratios sit near 1.0; the gate then guards the pipelined
//      executor's overhead (a ratio collapse means threading suddenly
//      costs wall clock it did not before).
//   3. Serving-layer rows (PR "pgm serve"): a 100-job batch through a full
//      MiningService lifecycle — cold (cache off, every job mines), miss
//      (cache on, 100 distinct inputs: mining plus insert/lookup overhead),
//      and hit (cache on, 1000 identical jobs: one mine plus 999 cache
//      hits, so the row prices the admission + lookup path itself; the
//      larger batch amortizes service start/stop noise).
//   4. Corpus executor rows (PR "pgm corpus"): MineCorpus over a
//      multi-fragment surrogate plan at corpus_threads 1 and 8,
//      interleaved rep by rep like the e2e sweep. The gated
//      corpus_8t_speedup ratio (t1/t8) sits near 1.0 on a single-core box
//      and guards the whole-fragment fan-out's overhead: a collapse below
//      1 means claiming fragments off the shared cursor suddenly costs
//      wall clock that serial fragment mining did not.
//
// Every timing is the minimum over several repetitions (robust against
// scheduler noise). Keys prefixed "info." are informational only;
// bench_check ignores them. --smoke runs fewer repetitions of the same
// workloads, so its numbers remain comparable to a full run's baseline.
//
// Gating policy (abi_stamp 5): only *ratio* rows (join_*_speedup,
// join_speedup, serve_hit_speedup, e2e_mpp_speedup_*, kernel_*_speedup,
// corpus_8t_speedup) are tracked by bench_check. Both sides
// of each ratio are measured in the same process seconds apart, so
// machine-wide slowdowns (noisy neighbours, thermal throttling) cancel and
// the 10% tolerance is meaningful. Absolute wall-clock rows are emitted as
// info.* — recorded in the baseline for eyeballing trends, never gated,
// because on shared hardware they swing well past any sane tolerance
// between back-to-back runs.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench/common.h"
#include "core/candidate_index.h"
#include "core/gap.h"
#include "core/guard.h"
#include "core/kernel.h"
#include "core/miner.h"
#include "core/parallel.h"
#include "core/pil.h"
#include "core/pil_arena.h"
#include "corpus/executor.h"
#include "corpus/plan.h"
#include "seq/alphabet.h"
#include "serve/service.h"
#include "util/bench_abi.h"
#include "util/flags.h"
#include "util/io.h"
#include "util/limits.h"
#include "util/random.h"
#include "util/saturating.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace pgm::bench {
namespace {

constexpr std::size_t kJoinSequenceLength = 8000;
constexpr std::size_t kEndToEndSequenceLength = 8000;

// Uniform random sequence over the 20-letter protein alphabet — the
// deep-level join workload (a DNA alphabet caps prefix groups at 4
// suffixes; protein groups of 20 exercise the prefix-sharing kernel the
// way dense deep levels do).
Sequence RandomProteinSegment(std::size_t length, std::uint64_t seed) {
  Rng rng(seed);
  const Alphabet& protein = Alphabet::Protein();
  std::string text;
  text.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    text.push_back(
        protein.CharAt(static_cast<Symbol>(rng.UniformInt(protein.size()))));
  }
  return ValueOrDie(Sequence::FromString(text, protein));
}

// Minimum wall clock over `reps` runs of `fn`, in milliseconds.
template <typename Fn>
double MinMillis(int reps, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    fn();
    const double ms = watch.ElapsedSeconds() * 1e3;
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

// Folds a candidate's output rows into a checksum that the compiler cannot
// elide and both join paths must agree on.
std::uint64_t Fold(std::uint64_t checksum, const PilEntry* rows,
                   std::size_t len, const SupportInfo& support) {
  checksum = checksum * 1099511628211ull + len;
  checksum += support.count;
  if (len > 0) checksum ^= rows[0].pos + rows[len - 1].count;
  return checksum;
}

// The pre-arena level representation and candidate generator, reproduced
// from the engine this PR replaced (git history: core/parallel.cc
// GenerateCandidates): eager specs, one symbol string per candidate.
struct LegacyEntry {
  std::string symbols;
  PartialIndexList pil;
};

struct LegacySpec {
  std::string symbols;
  std::uint32_t left = 0;
  std::uint32_t right = 0;
};

std::vector<LegacySpec> GenerateLegacyCandidates(
    const std::vector<LegacyEntry>& level) {
  std::vector<LegacySpec> candidates;
  if (level.empty()) return candidates;
  const std::size_t len = level.front().symbols.size();
  std::unordered_map<std::string_view, std::vector<std::uint32_t>> by_prefix;
  by_prefix.reserve(level.size());
  for (std::uint32_t i = 0; i < level.size(); ++i) {
    const std::string_view prefix =
        std::string_view(level[i].symbols).substr(0, len - 1);
    by_prefix[prefix].push_back(i);
  }
  for (std::uint32_t i = 0; i < level.size(); ++i) {
    const std::string_view suffix_key =
        std::string_view(level[i].symbols).substr(1);
    auto it = by_prefix.find(suffix_key);
    if (it == by_prefix.end()) continue;
    for (std::uint32_t j : it->second) {
      LegacySpec spec;
      spec.symbols.reserve(len + 1);
      spec.symbols.push_back(level[i].symbols.front());
      spec.symbols.append(level[j].symbols);
      spec.left = i;
      spec.right = j;
      candidates.push_back(std::move(spec));
    }
  }
  return candidates;
}

struct JoinBenchResult {
  double legacy_ms = 0.0;
  double arena_ms = 0.0;
  double arena_t2_ms = 0.0;
  double arena_t8_ms = 0.0;
  std::uint64_t candidates = 0;
};

// Times one level's candidate pipeline — generation, join, support,
// threshold, retention — through the pre-arena engine loop and through the
// shipped arena executor, on the same level at the same retention
// threshold.
JoinBenchResult RunJoinBench(const Sequence& sequence,
                             const GapRequirement& gap, std::int64_t level_k,
                             int reps) {
  internal::BuiltLevel level =
      internal::BuildAllPatternsOfLength(sequence, gap, level_k);
  const internal::JoinPlan ref_plan =
      internal::JoinPlan::SelfJoin(level.entries);

  std::vector<LegacyEntry> legacy_level;
  legacy_level.reserve(level.entries.size());
  for (const internal::ArenaEntry& entry : level.entries) {
    const PilEntry* rows = level.arena.Rows(entry.span);
    legacy_level.push_back(
        {entry.symbols, PartialIndexList::FromEntries(std::vector<PilEntry>(
                            rows, rows + entry.span.len))});
  }

  // Retention threshold at roughly the 80th percentile of candidate
  // supports (computed once, untimed): most candidates get pruned, the
  // survivors get promoted/stored — the shape of a real mining level.
  std::uint64_t threshold = 0;
  {
    std::vector<std::uint64_t> supports;
    for (const internal::JoinTask& task : ref_plan.tasks()) {
      for (std::uint32_t r = task.rights_begin; r < task.rights_end; ++r) {
        supports.push_back(
            PartialIndexList::Combine(
                legacy_level[task.left].pil,
                legacy_level[ref_plan.rights_pool()[r]].pil, gap)
                .TotalSupport()
                .count);
      }
    }
    std::sort(supports.begin(), supports.end());
    threshold = supports.empty() ? 0 : supports[supports.size() * 4 / 5];
  }

  MiningGuard guard(ResourceLimits{});
  std::uint64_t legacy_checksum = 0;
  auto legacy_rep = [&] {
    legacy_checksum = 0;
    std::vector<LegacySpec> specs = GenerateLegacyCandidates(legacy_level);
    std::vector<LegacyEntry> retained;
    for (LegacySpec& spec : specs) {
      // Engine-faithful charging. The bench guard has unlimited limits, so
      // a trip here means the harness itself is broken — fail loudly rather
      // than time a short-circuited loop.
      if (!guard.Tick()) std::abort();
      PartialIndexList pil = PartialIndexList::Combine(
          legacy_level[spec.left].pil, legacy_level[spec.right].pil, gap);
      const std::uint64_t bytes = pil.MemoryBytes();
      if (!guard.ChargeMemory(bytes)) std::abort();
      const SupportInfo support = pil.TotalSupport();
      legacy_checksum =
          Fold(legacy_checksum, pil.entries().data(), pil.size(), support);
      if (support.count >= threshold) {
        retained.push_back({std::move(spec.symbols), std::move(pil)});
      } else {
        guard.ReleaseMemory(bytes);
      }
    }
    for (const LegacyEntry& entry : retained) {
      guard.ReleaseMemory(entry.pil.MemoryBytes());
    }
  };

  PilArena out(&guard);
  std::uint64_t arena_checksum = 0;
  std::uint64_t num_candidates = 0;
  // One arena-path repetition at the given worker count. The merge is
  // deterministic (candidate order) at every thread count, so the checksum
  // must match the legacy one regardless of `threads`.
  auto arena_rep = [&](internal::ParallelLevelExecutor& executor) {
    arena_checksum = 0;
    num_candidates = 0;
    const internal::JoinPlan plan = internal::JoinPlan::SelfJoin(level.entries);
    std::vector<internal::ArenaEntry> retained;
    bool interrupted = false;
    auto sink = [&](const internal::JoinedCandidate& candidate) -> Status {
      ++num_candidates;
      arena_checksum = Fold(arena_checksum, out.Rows(candidate.span),
                            candidate.span.len, candidate.support);
      if (candidate.support.count >= threshold) {
        internal::ArenaEntry entry;
        entry.symbols.reserve(level.entries.front().symbols.size() + 1);
        entry.symbols.push_back(
            level.entries[candidate.left].symbols.front());
        entry.symbols.append(level.entries[candidate.right].symbols);
        entry.span = out.Promote(candidate.span);
        retained.push_back(std::move(entry));
      }
      return Status::OK();
    };
    out.BeginScratch();
    CheckOk(executor.ExecuteJoin(level.entries, level.arena, level.entries,
                                 level.arena, plan, gap, KernelImpl::kScalar,
                                 &guard, out, sink, &interrupted));
    out.EndScratch();
    // Steady state: the output arena keeps its capacity across levels.
    out.Clear();
  };

  internal::ParallelLevelExecutor serial(1);
  // Interleave the two paths rep by rep (legacy, arena, legacy, arena, ...)
  // instead of running each path's repetitions as a block. A multi-second
  // noise burst (noisy neighbour, thermal dip) then slows both sides of the
  // speedup ratio together, and the per-path minima are drawn from the same
  // quiet windows — which is what keeps the gated ratio rows stable on
  // shared hardware.
  double legacy_ms = 0.0;
  double arena_ms = 0.0;
  for (int r = 0; r < reps; ++r) {
    {
      Stopwatch watch;
      legacy_rep();
      const double ms = watch.ElapsedSeconds() * 1e3;
      if (r == 0 || ms < legacy_ms) legacy_ms = ms;
    }
    {
      Stopwatch watch;
      arena_rep(serial);
      const double ms = watch.ElapsedSeconds() * 1e3;
      if (r == 0 || ms < arena_ms) arena_ms = ms;
    }
  }

  if (legacy_checksum != arena_checksum) {
    std::fprintf(stderr,
                 "FATAL: join paths disagree (legacy %llu vs arena %llu)\n",
                 static_cast<unsigned long long>(legacy_checksum),
                 static_cast<unsigned long long>(arena_checksum));
    std::exit(1);
  }

  JoinBenchResult result;
  result.legacy_ms = legacy_ms;
  result.arena_ms = arena_ms;
  result.candidates = num_candidates;
  internal::ParallelLevelExecutor two(2);
  result.arena_t2_ms = MinMillis(reps, [&] { arena_rep(two); });
  internal::ParallelLevelExecutor eight(8);
  result.arena_t8_ms = MinMillis(reps, [&] { arena_rep(eight); });
  if (legacy_checksum != arena_checksum) {
    std::fprintf(stderr, "FATAL: threaded arena join is not deterministic\n");
    std::exit(1);
  }
  return result;
}

struct KernelBenchResult {
  double scalar_ms = 0.0;
  double bits_ms = 0.0;
  double avx2_ms = 0.0;
  bool avx2_supported = false;
};

// Times one level's join through ExecuteJoin under each kernel tier on the
// same plan — the pure kernel-dispatch comparison (PR "kernel tier"). The
// gap window must fit 64 bits or every tier degenerates to the scalar
// fallback and the ratios pin at 1. Reps are interleaved (scalar, bits,
// avx2, scalar, ...) with per-tier minima, the same noise-cancelling
// pattern as the legacy/arena interleave above. Checksums must agree
// across tiers — the benchmark doubles as a byte-equivalence re-check.
// When AVX2 is unavailable the avx2 tier re-times the bits kernel
// (ResolveKernel's own fallback), so kernel_avx2_speedup stays present in
// the JSON and the baseline comparison never sees a missing key.
KernelBenchResult RunKernelBench(const Sequence& sequence,
                                 const GapRequirement& gap,
                                 std::int64_t level_k, int reps) {
  internal::BuiltLevel level =
      internal::BuildAllPatternsOfLength(sequence, gap, level_k);
  const internal::JoinPlan plan = internal::JoinPlan::SelfJoin(level.entries);
  MiningGuard guard(ResourceLimits{});
  PilArena out(&guard);
  internal::ParallelLevelExecutor serial(1);

  std::uint64_t checksum = 0;
  auto one_rep = [&](KernelImpl kernel) {
    checksum = 0;
    bool interrupted = false;
    auto sink = [&](const internal::JoinedCandidate& candidate) -> Status {
      checksum = Fold(checksum, out.Rows(candidate.span), candidate.span.len,
                      candidate.support);
      return Status::OK();
    };
    out.BeginScratch();
    CheckOk(serial.ExecuteJoin(level.entries, level.arena, level.entries,
                               level.arena, plan, gap, kernel, &guard, out,
                               sink, &interrupted));
    out.EndScratch();
    out.Clear();
  };

  KernelBenchResult result;
  result.avx2_supported = Avx2Available();
  const KernelImpl avx2_impl =
      result.avx2_supported ? KernelImpl::kAvx2 : KernelImpl::kBits;
  std::uint64_t scalar_checksum = 0;
  for (int r = 0; r < reps; ++r) {
    {
      Stopwatch watch;
      one_rep(KernelImpl::kScalar);
      const double ms = watch.ElapsedSeconds() * 1e3;
      if (r == 0 || ms < result.scalar_ms) result.scalar_ms = ms;
      scalar_checksum = checksum;
    }
    {
      Stopwatch watch;
      one_rep(KernelImpl::kBits);
      const double ms = watch.ElapsedSeconds() * 1e3;
      if (r == 0 || ms < result.bits_ms) result.bits_ms = ms;
    }
    if (checksum != scalar_checksum) {
      std::fprintf(stderr, "FATAL: bits kernel disagrees with scalar\n");
      std::exit(1);
    }
    {
      Stopwatch watch;
      one_rep(avx2_impl);
      const double ms = watch.ElapsedSeconds() * 1e3;
      if (r == 0 || ms < result.avx2_ms) result.avx2_ms = ms;
    }
    if (checksum != scalar_checksum) {
      std::fprintf(stderr, "FATAL: avx2 kernel disagrees with scalar\n");
      std::exit(1);
    }
  }
  return result;
}

struct ServeBenchResult {
  double cold_ms = 0.0;
  double miss_ms = 0.0;
  double hit_ms = 0.0;
};

constexpr std::size_t kServeJobs = 100;
// The hit batch runs 10x more jobs than the cold/miss batches: a 100-job
// all-hits batch finishes in ~1ms, where service start/stop scheduling
// noise swamps the signal. 1000 jobs amortizes that fixed cost; the gated
// speedup is computed per job, so the batch sizes need not match.
constexpr std::size_t kServeHitJobs = 1000;

// Prices the serving layer itself with a deliberately light mining config:
// small segments and a tight max_length keep the per-job mining cost low,
// so the cold/miss/hit spread reflects the service machinery (admission,
// queue, cache key, lookup, response accounting) rather than the miners.
ServeBenchResult RunServeBench(int reps, std::uint64_t seed) {
  constexpr std::size_t kSegmentLength = 1000;
  std::vector<Sequence> segments;
  segments.reserve(kServeJobs);
  for (std::size_t i = 0; i < kServeJobs; ++i) {
    segments.push_back(
        ValueOrDie(SurrogateSegment(kSegmentLength, seed + 1000 + i)));
  }
  MinerConfig config;
  config.min_gap = 0;
  config.max_gap = 2;
  config.min_support_ratio = 0.05;
  config.start_length = 2;
  config.max_length = 4;

  // One full service lifecycle: submit the whole batch, drain, join.
  // `distinct` jobs cycle through the prepared segments (all different for
  // a batch of kServeJobs); identical jobs all reuse segment 0.
  auto run_batch = [&](std::uint64_t cache_bytes, bool distinct,
                       std::size_t jobs) {
    ServiceConfig service_config;
    service_config.queue_capacity = jobs + 1;
    service_config.workers = 1;
    service_config.cache_capacity_bytes = cache_bytes;
    service_config.loader =
        [&segments](const std::string& input) -> StatusOr<Sequence> {
      PGM_ASSIGN_OR_RETURN(std::int64_t index, ParseInt64(input));
      return segments[static_cast<std::size_t>(index) % segments.size()];
    };
    MiningService service(std::move(service_config));
    for (std::size_t i = 0; i < jobs; ++i) {
      MiningJob job;
      job.input = std::to_string(distinct ? i : 0);
      job.config = config;
      CheckOk(service.Submit(std::move(job)).status());
    }
    service.Start();
    const std::vector<JobResponse> responses = service.Join();
    if (responses.size() != jobs) std::abort();
    for (const JobResponse& response : responses) CheckOk(response.status);
  };

  ServeBenchResult result;
  result.cold_ms = MinMillis(
      reps, [&] { run_batch(0, /*distinct=*/false, kServeJobs); });
  // Interleave miss/hit reps so both sides of the gated serve_hit_speedup
  // ratio sample the same machine conditions (same rationale as the
  // legacy/arena interleave in RunJoinBench).
  for (int r = 0; r < reps; ++r) {
    {
      Stopwatch watch;
      run_batch(16u << 20, /*distinct=*/true, kServeJobs);
      const double ms = watch.ElapsedSeconds() * 1e3;
      if (r == 0 || ms < result.miss_ms) result.miss_ms = ms;
    }
    {
      Stopwatch watch;
      run_batch(16u << 20, /*distinct=*/false, kServeHitJobs);
      const double ms = watch.ElapsedSeconds() * 1e3;
      if (r == 0 || ms < result.hit_ms) result.hit_ms = ms;
    }
  }
  return result;
}

struct EndToEndResult {
  double t1_ms = 0.0;
  double t2_ms = 0.0;
  double t8_ms = 0.0;
};

// End-to-end MineMpp at 1, 2, and 8 threads, interleaved one rep of each
// per round (t1, t2, t8, t1, ...) with per-config minima — the same
// rationale as the legacy/arena interleave in RunJoinBench: a machine-wide
// noise burst slows all three configs of the same round together, so the
// gated t1/t2 and t1/t8 ratios stay stable on shared hardware.
EndToEndResult RunEndToEndSweep(const Sequence& sequence, int reps) {
  auto one_rep = [&](std::int64_t threads) {
    MinerConfig config = Section6Defaults();
    config.threads = threads;
    Stopwatch watch;
    const StatusOr<MiningResult> result = MineMpp(sequence, config);
    CheckOk(result.status());
    return watch.ElapsedSeconds() * 1e3;
  };
  EndToEndResult e2e;
  for (int r = 0; r < reps; ++r) {
    const double t1 = one_rep(1);
    const double t2 = one_rep(2);
    const double t8 = one_rep(8);
    if (r == 0 || t1 < e2e.t1_ms) e2e.t1_ms = t1;
    if (r == 0 || t2 < e2e.t2_ms) e2e.t2_ms = t2;
    if (r == 0 || t8 < e2e.t8_ms) e2e.t8_ms = t8;
  }
  return e2e;
}

struct CorpusBenchResult {
  double t1_ms = 0.0;
  double t8_ms = 0.0;
  std::size_t fragments = 0;
};

// MineCorpus over a surrogate segment cut into fragments, at corpus_threads
// 1 and 8, interleaved one rep of each per round with per-config minima —
// the same noise-cancelling pattern as RunEndToEndSweep. The workload
// parallelizes at whole-fragment granularity (one miner per fragment), so
// on a multi-core box the ratio tracks the fan-out's scaling and on a
// single-core box it prices the fan-out's overhead.
CorpusBenchResult RunCorpusBench(const Sequence& sequence, int reps) {
  CorpusPlanOptions plan_options;
  plan_options.fragment.fragment_length = 1000;
  const CorpusPlan plan =
      ValueOrDie(CorpusPlan::FromSequence(sequence, "bench", plan_options));
  auto one_rep = [&](std::int64_t threads) {
    CorpusOptions options;
    options.algorithm = "mpp";
    options.miner = Section6Defaults();
    options.corpus_threads = threads;
    Stopwatch watch;
    const StatusOr<CorpusResult> result = MineCorpus(plan, options);
    CheckOk(result.status());
    if (result->fragments_completed != plan.fragments().size()) std::abort();
    return watch.ElapsedSeconds() * 1e3;
  };
  CorpusBenchResult corpus;
  corpus.fragments = plan.fragments().size();
  for (int r = 0; r < reps; ++r) {
    const double t1 = one_rep(1);
    const double t8 = one_rep(8);
    if (r == 0 || t1 < corpus.t1_ms) corpus.t1_ms = t1;
    if (r == 0 || t8 < corpus.t8_ms) corpus.t8_ms = t8;
  }
  return corpus;
}

std::string ToJson(const std::map<std::string, double>& metrics) {
  std::string json = "{\n";
  bool first = true;
  for (const auto& [key, value] : metrics) {
    if (!first) json += ",\n";
    first = false;
    json += StrFormat("  \"%s\": %.6g", key.c_str(), value);
  }
  json += "\n}\n";
  return json;
}

int Main(int argc, char** argv) {
  FlagSet flags(
      "Arena join benchmark-regression harness: candidate-join pipeline "
      "(pre-arena engine loop vs arena executor) and end-to-end MineMpp "
      "wall clock, written as flat JSON for tools/bench_check.");
  bool smoke = false;
  std::string json_path = "BENCH_pr9.json";
  std::int64_t seed = 42;
  flags.AddBool("smoke", &smoke,
                "fewer repetitions of the same workloads (CI mode)");
  flags.AddString("json", &json_path, "output path for the flat metrics JSON");
  flags.AddInt64("seed", &seed, "surrogate segment seed");
  const int parse_exit = HandleParseResult(flags.Parse(argc, argv));
  if (parse_exit >= 0) return parse_exit;

  const int join_reps = smoke ? 5 : 9;
  const int e2e_reps = smoke ? 2 : 5;
  const MinerConfig defaults = Section6Defaults();
  const GapRequirement gap =
      ValueOrDie(GapRequirement::Create(defaults.min_gap, defaults.max_gap));

  const Sequence join_sequence = ValueOrDie(
      SurrogateSegment(kJoinSequenceLength, static_cast<std::uint64_t>(seed)));
  // Wide-gap regime (the Section 6 defaults): few long PILs, memory-bound.
  const JoinBenchResult wide = RunJoinBench(join_sequence, gap, 3, join_reps);
  // Deep-level regime: a protein alphabet with a narrow gap yields ~150k
  // length-4 candidates over ~4-row PILs in prefix groups of 20 — the
  // regime where the pre-arena engine's eager per-candidate spec (one
  // symbol-string allocation each), per-Combine heap PIL, and per-PIL
  // ledger round-trip dominate the window arithmetic.
  const GapRequirement deep_gap = ValueOrDie(GapRequirement::Create(0, 1));
  const Sequence deep_sequence =
      RandomProteinSegment(kJoinSequenceLength, static_cast<std::uint64_t>(seed));
  const JoinBenchResult deep =
      RunJoinBench(deep_sequence, deep_gap, 3, join_reps);

  const Sequence e2e_sequence = ValueOrDie(SurrogateSegment(
      kEndToEndSequenceLength, static_cast<std::uint64_t>(seed)));

  // Kernel tiers on the wide-gap Section 6 workload (W = 4, so the bitset
  // kernel engages): long suffix PILs are exactly the regime the bitmap
  // rank/cum precomputation amortizes over.
  const KernelBenchResult kern =
      RunKernelBench(join_sequence, gap, 3, join_reps);

  std::map<std::string, double> metrics;
  metrics["info.abi_stamp"] = kBenchAbiStamp;
  metrics["info.join_wide_legacy_ms"] = wide.legacy_ms;
  metrics["info.join_wide_arena_ms"] = wide.arena_ms;
  metrics["join_wide_speedup"] = wide.legacy_ms / wide.arena_ms;
  metrics["info.join_deep_legacy_ms"] = deep.legacy_ms;
  metrics["info.join_deep_arena_ms"] = deep.arena_ms;
  metrics["join_deep_speedup"] = deep.legacy_ms / deep.arena_ms;
  metrics["join_speedup"] =
      (wide.legacy_ms + deep.legacy_ms) / (wide.arena_ms + deep.arena_ms);
  const EndToEndResult e2e = RunEndToEndSweep(e2e_sequence, e2e_reps);
  metrics["info.e2e_mpp_t1_ms"] = e2e.t1_ms;
  metrics["info.e2e_mpp_t2_ms"] = e2e.t2_ms;
  metrics["info.e2e_mpp_t8_ms"] = e2e.t8_ms;
  // Gated end-to-end thread-scaling ratios (see the gating-policy note):
  // both sides come from interleaved reps of the same sweep.
  metrics["e2e_mpp_speedup_2t"] = e2e.t1_ms / e2e.t2_ms;
  metrics["e2e_mpp_speedup_8t"] = e2e.t1_ms / e2e.t8_ms;
  const int serve_reps = smoke ? 3 : 5;
  const ServeBenchResult serve =
      RunServeBench(serve_reps, static_cast<std::uint64_t>(seed));
  metrics["info.serve_cold_ms"] = serve.cold_ms;
  metrics["info.serve_miss_ms"] = serve.miss_ms;
  metrics["info.serve_hit_ms"] = serve.hit_ms;
  // The cache payoff, per job: a warm hit skips mining entirely, so
  // miss/hit is the end-to-end price of a mine relative to an admission +
  // digest + lookup. The hit batch is larger, hence the normalization.
  metrics["serve_hit_speedup"] = (serve.miss_ms / kServeJobs) /
                                 (serve.hit_ms / kServeHitJobs);
  metrics["info.serve_hit_jobs"] = static_cast<double>(kServeHitJobs);
  metrics["info.serve_jobs"] = static_cast<double>(kServeJobs);
  metrics["info.join_wide_arena_t2_ms"] = wide.arena_t2_ms;
  metrics["info.join_wide_arena_t8_ms"] = wide.arena_t8_ms;
  metrics["info.join_deep_arena_t2_ms"] = deep.arena_t2_ms;
  metrics["info.join_deep_arena_t8_ms"] = deep.arena_t8_ms;
  metrics["info.join_wide_candidates"] = static_cast<double>(wide.candidates);
  metrics["info.join_deep_candidates"] = static_cast<double>(deep.candidates);
  metrics["info.join_reps"] = join_reps;
  metrics["info.sequence_length"] =
      static_cast<double>(kJoinSequenceLength);
  metrics["info.kernel_scalar_ms"] = kern.scalar_ms;
  metrics["info.kernel_bits_ms"] = kern.bits_ms;
  metrics["info.kernel_avx2_ms"] = kern.avx2_ms;
  metrics["info.kernel_avx2_supported"] = kern.avx2_supported ? 1.0 : 0.0;
  // Gated kernel-tier ratios: both sides interleaved in RunKernelBench.
  // On a box without AVX2 the avx2 row re-times the bits kernel, so the
  // ratio degrades to a second bits sample rather than a missing key.
  metrics["kernel_bits_speedup"] = kern.scalar_ms / kern.bits_ms;
  metrics["kernel_avx2_speedup"] = kern.scalar_ms / kern.avx2_ms;
  const CorpusBenchResult corpus = RunCorpusBench(e2e_sequence, e2e_reps);
  metrics["info.corpus_t1_ms"] = corpus.t1_ms;
  metrics["info.corpus_t8_ms"] = corpus.t8_ms;
  metrics["info.corpus_fragments"] = static_cast<double>(corpus.fragments);
  // Gated corpus fan-out ratio: both sides interleaved in RunCorpusBench.
  metrics["corpus_8t_speedup"] = corpus.t1_ms / corpus.t8_ms;

  const std::string json = ToJson(metrics);
  std::fputs(json.c_str(), stdout);
  CheckOk(WriteStringToFile(json_path, json));
  std::fprintf(stderr, "wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace pgm::bench

int main(int argc, char** argv) { return pgm::bench::Main(argc, argv); }
