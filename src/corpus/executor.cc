#include "corpus/executor.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <utility>

#include "util/metrics.h"
#include "util/saturating.h"
#include "util/thread_pool.h"

namespace pgm {

namespace {

StatusOr<MiningResult> MineOne(const std::string& algorithm,
                               const Sequence& sequence,
                               const MinerConfig& config) {
  if (algorithm == "mpp") return MineMpp(sequence, config);
  if (algorithm == "mppm") return MineMppm(sequence, config);
  if (algorithm == "enum") return MineEnumeration(sequence, config);
  if (algorithm == "adaptive") return MineAdaptive(sequence, config);
  return Status::InvalidArgument("unknown algorithm: " + algorithm);
}

/// Bytes the executor keeps alive for one fragment between mining and
/// aggregation: the window's symbols plus the mined result's footprint.
std::uint64_t WindowBytes(const Sequence& sequence) {
  return sizeof(Sequence) +
         static_cast<std::uint64_t>(sequence.size()) * sizeof(Symbol);
}

std::uint64_t ResultBytes(const MiningResult& result) {
  std::uint64_t bytes = sizeof(MiningResult);
  for (const FrequentPattern& p : result.patterns) {
    bytes += sizeof(FrequentPattern) +
             static_cast<std::uint64_t>(p.pattern.length()) * sizeof(Symbol);
  }
  bytes += static_cast<std::uint64_t>(result.level_stats.size()) *
           sizeof(LevelStats);
  return bytes;
}

/// One fragment's in-flight state. Workers write disjoint slots (claimed
/// off an atomic cursor), so no lock is needed; the aggregation pass reads
/// them serially after the fork-join barrier.
struct Slot {
  FragmentResult out;
  std::uint64_t charged_bytes = 0;
  // Per-fragment observer sinks (allocated only when the caller attached an
  // observer): interposing them is what makes the merged export
  // deterministic — each fragment records privately, and the aggregator
  // replays the streams in ordinal order.
  std::unique_ptr<MetricsRegistry> metrics;
  std::unique_ptr<MiningTrace> trace;
  MiningObserver observer;
};

const char* FragmentReason(const FragmentResult& fragment) {
  if (!fragment.mined) return "skipped";
  if (!fragment.status.ok()) return "error";
  return TerminationReasonToString(fragment.result.termination);
}

}  // namespace

MiningResult CorpusResult::ToMiningResult() const {
  MiningResult result;
  result.patterns = patterns;
  result.termination = termination;
  result.total_candidates = total_candidates;
  result.pil_memory_peak_bytes = pil_memory_peak_bytes;
  result.longest_frequent_length = longest_frequent_length;
  result.guaranteed_complete_up_to = guaranteed_complete_up_to;
  return result;
}

StatusOr<CorpusResult> MineCorpus(const CorpusPlan& plan,
                                  const CorpusOptions& options) {
  if (plan.fragments().empty()) {
    return Status::InvalidArgument(
        "corpus plan contains no fragments (" + plan.Describe() +
        "); see CorpusPlan::EmptyPlanDiagnostic");
  }
  if (options.corpus_threads < 0) {
    return Status::InvalidArgument("corpus_threads must be >= 0");
  }
  if (options.algorithm != "mpp" && options.algorithm != "mppm" &&
      options.algorithm != "enum" && options.algorithm != "adaptive") {
    return Status::InvalidArgument("unknown algorithm: " + options.algorithm);
  }

  const std::vector<CorpusFragment>& fragments = plan.fragments();
  const bool observing =
      options.observer != nullptr && (options.observer->metrics != nullptr ||
                                      options.observer->trace != nullptr);

  CorpusLedger own_ledger;
  CorpusLedger& ledger =
      options.ledger != nullptr ? *options.ledger : own_ledger;

  // The corpus guard: deadline/cancellation polled at every fragment
  // pickup, per-fragment candidate totals charged against the corpus-level
  // caps as fragments finish (max_level_candidates caps one fragment,
  // max_total_candidates the accumulated corpus).
  ResourceLimits corpus_limits = options.limits;
  corpus_limits.pil_memory_budget_bytes = 0;  // per-fragment (miner.limits)
  MiningGuard corpus_guard(corpus_limits, options.cancel);

  std::vector<Slot> slots(fragments.size());
  for (std::size_t i = 0; i < fragments.size(); ++i) {
    const CorpusFragment& fragment = fragments[i];
    FragmentResult& out = slots[i].out;
    out.ordinal = fragment.ordinal;
    out.record_index = fragment.record_index;
    out.record_id = fragment.record_id;
    out.fragment_index = fragment.fragment_index;
    out.start = fragment.start;
    out.length = fragment.sequence.size();
    if (observing) {
      Slot& slot = slots[i];
      if (options.observer->metrics != nullptr) {
        slot.metrics = std::make_unique<MetricsRegistry>();
        slot.observer.metrics = slot.metrics.get();
      }
      if (options.observer->trace != nullptr) {
        slot.trace = std::make_unique<MiningTrace>();
        slot.observer.trace = slot.trace.get();
      }
    }
  }

  // Fan out at whole-fragment granularity: workers claim ordinals off a
  // shared cursor and mine one fragment per claim. One miner per fragment
  // sidesteps the per-level pipeline barrier entirely — fragments are
  // independent runs, so this is the coarse-grain parallelism the level
  // executor cannot reach on small inputs.
  std::atomic<std::size_t> cursor{0};
  ThreadPool pool(ThreadPool::ResolveThreadCount(options.corpus_threads));
  pool.Execute([&](std::size_t) {
    while (true) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= fragments.size()) break;
      Slot& slot = slots[i];
      // A latched corpus budget/cancel skips everything not yet started;
      // already-running fragments wind down through their own guards.
      if (!corpus_guard.CheckNow()) continue;

      const Sequence& window = fragments[i].sequence;
      slot.charged_bytes = WindowBytes(window);
      ledger.Charge(slot.charged_bytes);

      MinerConfig config = options.miner;
      config.observer = observing ? &slot.observer : nullptr;
      config.cancel = options.cancel;
      if (options.limits.deadline_ms > 0) {
        // The remaining corpus deadline clamps each fragment's own, so one
        // fragment cannot overshoot the corpus budget on its own.
        const std::int64_t elapsed_ms =
            static_cast<std::int64_t>(corpus_guard.elapsed_seconds() * 1000.0);
        std::int64_t remaining = options.limits.deadline_ms - elapsed_ms;
        if (remaining < 1) remaining = 1;
        if (config.limits.deadline_ms <= 0 ||
            remaining < config.limits.deadline_ms) {
          config.limits.deadline_ms = remaining;
        }
      }

      StatusOr<MiningResult> mined =
          MineOne(options.algorithm, window, config);
      slot.out.mined = true;
      if (mined.ok()) {
        slot.out.result = *std::move(mined);
        const std::uint64_t result_bytes = ResultBytes(slot.out.result);
        ledger.Charge(result_bytes);
        slot.charged_bytes = SatAdd(slot.charged_bytes, result_bytes);
        if (!corpus_guard.ChargeLevelCandidates(
                slot.out.result.total_candidates)) {
          // A corpus candidate cap latched: unstarted fragments will be
          // skipped at pickup. This fragment's own result stays — it is
          // already complete and sound.
        }
      } else {
        slot.out.status = mined.status();
      }
    }
  });

  // Deterministic aggregation: fold the slots in plan-ordinal order,
  // whatever order the workers finished in. Everything derived below —
  // pattern union, counters, merged observer streams — depends only on the
  // per-fragment results and this fixed order, so untripped runs are
  // byte-identical at every corpus_threads setting.
  CorpusResult corpus;
  corpus.fragments_planned = fragments.size();
  corpus.fragments.reserve(fragments.size());

  struct UnionEntry {
    FrequentPattern pattern;
    std::uint64_t fragment_count = 0;
  };
  std::map<std::vector<Symbol>, UnionEntry> pattern_union;

  MetricsRegistry* user_metrics =
      observing ? options.observer->metrics : nullptr;
  MiningTrace* user_trace = observing ? options.observer->trace : nullptr;

  for (Slot& slot : slots) {
    FragmentResult& fragment = slot.out;
    if (user_trace != nullptr) {
      TraceEvent start;
      start.kind = TraceEventKind::kFragmentStart;
      start.fragment = static_cast<std::int64_t>(fragment.ordinal);
      start.detail = fragment.record_id;
      start.offset = fragment.start;
      start.candidates = fragment.length;
      user_trace->Append(std::move(start));
      if (slot.trace != nullptr) {
        for (TraceEvent& event : slot.trace->events()) {
          user_trace->Append(std::move(event));
        }
      }
    }
    if (user_metrics != nullptr && slot.metrics != nullptr) {
      user_metrics->MergeFrom(*slot.metrics);
    }

    const bool ok = fragment.mined && fragment.status.ok();
    if (fragment.mined) {
      ++corpus.fragments_mined;
      if (!fragment.status.ok()) {
        ++corpus.fragments_failed;
      } else if (fragment.result.complete()) {
        ++corpus.fragments_completed;
      }
    } else {
      ++corpus.fragments_skipped;
    }
    if (ok) {
      const MiningResult& result = fragment.result;
      corpus.total_candidates =
          SatAdd(corpus.total_candidates, result.total_candidates);
      corpus.pil_memory_peak_bytes =
          std::max(corpus.pil_memory_peak_bytes, result.pil_memory_peak_bytes);
      corpus.longest_frequent_length = std::max(
          corpus.longest_frequent_length, result.longest_frequent_length);
      for (const FrequentPattern& found : result.patterns) {
        UnionEntry& entry = pattern_union[found.pattern.symbols()];
        if (entry.fragment_count == 0 || found.support > entry.pattern.support) {
          // Keep the best *per-fragment* support (§7 aggregation: support
          // is never summed across fragment boundaries); ties keep the
          // earliest fragment's entry.
          entry.pattern = found;
        }
        ++entry.fragment_count;
      }
    }

    if (user_trace != nullptr) {
      TraceEvent end;
      end.kind = TraceEventKind::kFragmentEnd;
      end.fragment = static_cast<std::int64_t>(fragment.ordinal);
      end.detail = FragmentReason(fragment);
      end.patterns = ok ? fragment.result.patterns.size() : 0;
      user_trace->Append(std::move(end));
    }

    ledger.Release(slot.charged_bytes);
    slot.charged_bytes = 0;
    corpus.fragments.push_back(std::move(fragment));
  }

  // The union map is keyed by symbols; re-sort to the MiningResult contract
  // (length, then symbols).
  corpus.patterns.reserve(pattern_union.size());
  corpus.pattern_fragment_counts.reserve(pattern_union.size());
  std::vector<const UnionEntry*> entries;
  entries.reserve(pattern_union.size());
  for (const auto& [symbols, entry] : pattern_union) entries.push_back(&entry);
  std::sort(entries.begin(), entries.end(),
            [](const UnionEntry* a, const UnionEntry* b) {
              if (a->pattern.pattern.length() != b->pattern.pattern.length()) {
                return a->pattern.pattern.length() < b->pattern.pattern.length();
              }
              return a->pattern.pattern.symbols() < b->pattern.pattern.symbols();
            });
  for (const UnionEntry* entry : entries) {
    corpus.patterns.push_back(entry->pattern);
    corpus.pattern_fragment_counts.push_back(entry->fragment_count);
  }

  // Termination: a corpus-level trip wins; otherwise the first fragment cut
  // short by its own budget names the reason.
  if (corpus_guard.stopped()) {
    corpus.termination = corpus_guard.reason();
  } else {
    for (const FragmentResult& fragment : corpus.fragments) {
      if (fragment.mined && fragment.status.ok() &&
          !fragment.result.complete()) {
        corpus.termination = fragment.result.termination;
        break;
      }
    }
  }

  if (corpus.fragments_skipped == 0 && corpus.fragments_failed == 0 &&
      corpus.fragments_mined == corpus.fragments_planned) {
    corpus.guaranteed_complete_up_to = INT64_MAX;
    for (const FragmentResult& fragment : corpus.fragments) {
      corpus.guaranteed_complete_up_to =
          std::min(corpus.guaranteed_complete_up_to,
                   fragment.result.guaranteed_complete_up_to);
    }
  }

  corpus.ledger_peak_bytes = ledger.peak_bytes();

  // Deterministic corpus.* metrics (the ledger peak is concurrency-shaped,
  // so it stays out of the export and rides on the result instead).
  if (user_metrics != nullptr) {
    std::uint64_t patterns_total = 0;
    for (const FragmentResult& fragment : corpus.fragments) {
      if (fragment.mined && fragment.status.ok()) {
        patterns_total = SatAdd(
            patterns_total,
            static_cast<std::uint64_t>(fragment.result.patterns.size()));
      }
    }
    user_metrics->GetCounter("corpus.records")->Add(plan.num_records());
    user_metrics->GetCounter("corpus.records.skipped")
        ->Add(plan.skipped_records().size());
    user_metrics->GetCounter("corpus.residues.dropped")
        ->Add(plan.num_dropped_residues());
    user_metrics->GetCounter("corpus.fragments.planned")
        ->Add(corpus.fragments_planned);
    user_metrics->GetCounter("corpus.fragments.mined")
        ->Add(corpus.fragments_mined);
    user_metrics->GetCounter("corpus.fragments.completed")
        ->Add(corpus.fragments_completed);
    user_metrics->GetCounter("corpus.fragments.failed")
        ->Add(corpus.fragments_failed);
    user_metrics->GetCounter("corpus.fragments.skipped")
        ->Add(corpus.fragments_skipped);
    user_metrics->GetCounter("corpus.patterns.total")->Add(patterns_total);
    user_metrics->GetCounter("corpus.patterns.unique")
        ->Add(corpus.patterns.size());
    user_metrics->GetCounter("corpus.candidates.total")
        ->Add(corpus.total_candidates);
  }

  return corpus;
}

}  // namespace pgm
