#ifndef PGM_CORPUS_EXECUTOR_H_
#define PGM_CORPUS_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/guard.h"
#include "core/miner.h"
#include "core/trace.h"
#include "corpus/plan.h"
#include "util/limits.h"
#include "util/status.h"

namespace pgm {

/// The corpus ledger: live bytes of in-flight fragment state (each
/// fragment's window plus its mined result), charged when a worker picks
/// the fragment up and released when the aggregator folds it in. This is
/// the corpus-level roll-up of the per-fragment MiningGuard ledgers — each
/// fragment's guard already drains to zero inside the miner; the corpus
/// ledger accounts for what the executor itself keeps alive between mining
/// and aggregation, and must read zero after MineCorpus returns on every
/// termination path (the differential suite asserts exactly that).
class CorpusLedger {
 public:
  CorpusLedger() = default;
  CorpusLedger(const CorpusLedger&) = delete;
  CorpusLedger& operator=(const CorpusLedger&) = delete;

  void Charge(std::uint64_t bytes) {
    const std::uint64_t now =
        outstanding_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    std::uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now,
                                        std::memory_order_relaxed)) {
    }
  }
  void Release(std::uint64_t bytes) {
    outstanding_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  std::uint64_t outstanding_bytes() const {
    return outstanding_.load(std::memory_order_relaxed);
  }
  std::uint64_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> outstanding_{0};
  std::atomic<std::uint64_t> peak_{0};
};

/// Configuration for one corpus run.
struct CorpusOptions {
  /// Mining algorithm per fragment: "mpp", "mppm", "enum", or "adaptive"
  /// (the serve-layer names).
  std::string algorithm = "mppm";
  /// The per-fragment mining configuration. `miner.threads` is the
  /// *within-fragment* level parallelism and defaults to serial — the
  /// corpus executor parallelizes at whole-fragment granularity instead,
  /// which sidesteps the per-level pipeline barrier entirely.
  /// `miner.limits` applies to each fragment independently;
  /// `miner.observer` is ignored (attach `observer` below — the executor
  /// must interpose per-fragment sinks to keep exports deterministic).
  MinerConfig miner;
  /// Worker threads mining whole fragments: 1 = serial, 0 = one per
  /// hardware thread, T > 1 = exactly T. Fragment results are folded in
  /// plan-ordinal order whatever the thread count, so untripped runs are
  /// byte-identical at every setting.
  std::int64_t corpus_threads = 1;
  /// Corpus-wide budgets. deadline_ms covers the whole run: it is checked
  /// when each fragment is picked up (later fragments are skipped once it
  /// expires) and the remaining time clamps each fragment's own deadline.
  /// max_total_candidates caps the accumulated candidate count across
  /// fragments; max_level_candidates caps any single fragment's total.
  /// pil_memory_budget_bytes is a *per-fragment* budget here (fragments are
  /// independent runs) — set it through `miner.limits` too if both corpus
  /// and fragment budgets are wanted.
  ResourceLimits limits;
  /// Optional cooperative cancellation for the whole corpus; must outlive
  /// the call. In-flight fragments stop at their next guard poll
  /// (partial-but-sound per fragment); unstarted fragments are skipped.
  const CancelToken* cancel = nullptr;
  /// Optional metrics/trace sinks. The executor gives every fragment
  /// private sinks and merges them into this observer in fragment-ordinal
  /// order after the fan-out joins — fragment_start/fragment_end events
  /// bracket each fragment's stream, and the merged export is
  /// byte-identical across corpus_threads settings.
  const MiningObserver* observer = nullptr;
  /// Optional external ledger to charge instead of an internal one (tests
  /// assert it drains to zero; hosts can poll it for live usage).
  CorpusLedger* ledger = nullptr;
};

/// One fragment's outcome inside a CorpusResult.
struct FragmentResult {
  // Identity (copied from the plan's CorpusFragment).
  std::size_t ordinal = 0;
  std::size_t record_index = 0;
  std::string record_id;
  std::size_t fragment_index = 0;
  std::size_t start = 0;
  std::size_t length = 0;

  /// True when the fragment was actually mined; false when a corpus-level
  /// budget trip or cancellation latched before a worker picked it up.
  bool mined = false;
  /// The miner's status for this fragment (OK unless the configuration was
  /// rejected). Meaningless when !mined.
  Status status;
  /// The per-fragment mining result; valid when mined && status.ok().
  MiningResult result;
};

/// The deterministic aggregate of a corpus run.
struct CorpusResult {
  /// Per-fragment outcomes, in plan-ordinal order (index == ordinal).
  std::vector<FragmentResult> fragments;

  /// The corpus-level frequent-pattern union: each distinct pattern once,
  /// carrying its best *per-fragment* support (the §7 aggregation — a
  /// pattern's support is counted within fragments, never across fragment
  /// boundaries), sorted by (length, symbols) like MiningResult::patterns.
  std::vector<FrequentPattern> patterns;
  /// Parallel to `patterns`: in how many fragments the pattern was
  /// frequent.
  std::vector<std::uint64_t> pattern_fragment_counts;

  std::size_t fragments_planned = 0;
  std::size_t fragments_mined = 0;
  /// Mined fragments whose own run completed (vs. tripped a per-fragment
  /// budget).
  std::size_t fragments_completed = 0;
  std::size_t fragments_failed = 0;
  std::size_t fragments_skipped = 0;

  /// kCompleted when every planned fragment was mined to completion;
  /// otherwise the first corpus-level trip reason, or the first
  /// per-fragment termination when only fragment budgets tripped. Either
  /// way the partial-but-sound contract holds: every reported pattern is
  /// genuinely frequent in the fragment(s) that reported it.
  TerminationReason termination = TerminationReason::kCompleted;

  /// Saturating sum of per-fragment candidate totals.
  std::uint64_t total_candidates = 0;
  /// Max over fragments of the per-fragment PIL peak.
  std::uint64_t pil_memory_peak_bytes = 0;
  /// Peak of the corpus ledger (in-flight fragment state).
  std::uint64_t ledger_peak_bytes = 0;
  /// Longest frequent pattern across the corpus (0 when none).
  std::int64_t longest_frequent_length = 0;
  /// Min over mined fragments of guaranteed_complete_up_to (0 when any
  /// fragment was skipped or failed — no corpus-wide guarantee then).
  std::int64_t guaranteed_complete_up_to = 0;

  bool complete() const {
    return termination == TerminationReason::kCompleted;
  }

  /// Flattens the aggregate into a MiningResult so single-sequence
  /// consumers (the serve layer's JobResponse, report printers) can carry a
  /// corpus answer unchanged. Level stats are not meaningful corpus-wide
  /// and stay empty.
  MiningResult ToMiningResult() const;
};

/// Mines every fragment of `plan` and aggregates deterministically. The
/// Status is only non-OK for invalid configuration (unknown algorithm,
/// invalid corpus_threads); per-fragment failures and budget trips are
/// reported inside the CorpusResult (partial-but-sound). An empty plan
/// yields InvalidArgument — never a silent zero-pattern success — and
/// callers should print CorpusPlan::EmptyPlanDiagnostic for the full
/// explanation.
StatusOr<CorpusResult> MineCorpus(const CorpusPlan& plan,
                                  const CorpusOptions& options);

}  // namespace pgm

#endif  // PGM_CORPUS_EXECUTOR_H_
