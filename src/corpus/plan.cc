#include "corpus/plan.h"

#include <utility>

#include "util/backoff.h"
#include "util/io.h"
#include "util/string_util.h"

namespace pgm {

namespace {

bool CapReached(const CorpusPlan& plan, const CorpusPlanOptions& options) {
  return options.max_fragments > 0 &&
         plan.fragments().size() >= options.max_fragments;
}

}  // namespace

Status CorpusPlan::AddRecord(const std::string& record_id,
                             const Sequence& sequence,
                             const CorpusPlanOptions& options) {
  const std::size_t record_index = num_records_++;
  PGM_ASSIGN_OR_RETURN(std::vector<Sequence> windows,
                       Fragment(sequence, options.fragment));
  if (windows.empty()) {
    skipped_records_.push_back(
        SkippedRecord{record_index, record_id, sequence.size()});
    return Status::OK();
  }
  for (std::size_t i = 0; i < windows.size(); ++i) {
    if (options.max_fragments > 0 &&
        fragments_.size() >= options.max_fragments) {
      break;
    }
    total_symbols_ += windows[i].size();
    // Fragment() cuts consecutive windows from offset 0, so window i always
    // starts at i * fragment_length (the tail included).
    fragments_.push_back(CorpusFragment{
        /*ordinal=*/fragments_.size(), record_index, record_id,
        /*fragment_index=*/i, /*start=*/i * options.fragment.fragment_length,
        std::move(windows[i])});
  }
  return Status::OK();
}

StatusOr<CorpusPlan> CorpusPlan::FromSequence(const Sequence& sequence,
                                              const std::string& name,
                                              const CorpusPlanOptions& options) {
  CorpusPlan plan;
  PGM_RETURN_IF_ERROR(plan.AddRecord(name, sequence, options));
  return plan;
}

StatusOr<CorpusPlan> CorpusPlan::FromRecords(
    const std::vector<FastaRecord>& records, const Alphabet& alphabet,
    const CorpusPlanOptions& options) {
  CorpusPlan plan;
  for (const FastaRecord& record : records) {
    if (CapReached(plan, options)) break;
    std::size_t dropped = 0;
    const Sequence sequence = RecordToSequence(record, alphabet, &dropped);
    plan.num_dropped_residues_ += dropped;
    PGM_RETURN_IF_ERROR(plan.AddRecord(record.id, sequence, options));
  }
  return plan;
}

StatusOr<CorpusPlan> CorpusPlan::FromFastaFile(const std::string& path,
                                               const Alphabet& alphabet,
                                               const CorpusPlanOptions& options,
                                               bool use_mmap) {
  if (!use_mmap) {
    PGM_ASSIGN_OR_RETURN(
        std::string contents,
        ReadFileToStringWithRetry(path, DefaultReadRetryPolicy()));
    PGM_ASSIGN_OR_RETURN(std::vector<FastaRecord> records,
                         ParseFasta(contents));
    return FromRecords(records, alphabet, options);
  }
  // Transient open/read faults retry with the same policy as the string
  // readers (DefaultReadRetryPolicy), so the two ingestion paths recover
  // identically; truncated content still parses to loud Corruption below.
  const RetryPolicy policy = DefaultReadRetryPolicy();
  const int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  StatusOr<MmapFile> file = MmapFile::Open(path);
  for (int attempt = 1;
       !file.ok() && file.status().code() == StatusCode::kIoError &&
       attempt < attempts;
       ++attempt) {
    BackoffSleep(BackoffDelayMs(policy, attempt + 1));
    file = MmapFile::Open(path);
  }
  if (!file.ok()) return file.status();

  CorpusPlan plan;
  plan.used_mmap_ = file->is_mapped();
  FastaScanner scanner(file->view());
  FastaRecord record;
  while (!CapReached(plan, options)) {
    PGM_ASSIGN_OR_RETURN(bool more, scanner.Next(&record));
    if (!more) break;
    std::size_t dropped = 0;
    const Sequence sequence = RecordToSequence(record, alphabet, &dropped);
    plan.num_dropped_residues_ += dropped;
    PGM_RETURN_IF_ERROR(plan.AddRecord(record.id, sequence, options));
  }
  return plan;
}

std::string CorpusPlan::Describe() const {
  std::string out = StrFormat("%zu record(s), %zu fragment(s), %zu symbol(s)",
                              num_records_, fragments_.size(), total_symbols_);
  if (!skipped_records_.empty()) {
    out += StrFormat(", %zu record(s) skipped", skipped_records_.size());
  }
  return out;
}

std::string CorpusPlan::EmptyPlanDiagnostic(
    const CorpusPlanOptions& options) const {
  std::string out = StrFormat(
      "corpus plan is empty: none of the %zu record(s) produced a fragment\n"
      "  fragment_length=%zu keep_tail=%s\n",
      num_records_, options.fragment.fragment_length,
      options.fragment.keep_tail ? "true" : "false");
  constexpr std::size_t kMaxListed = 8;
  for (std::size_t i = 0; i < skipped_records_.size() && i < kMaxListed; ++i) {
    const SkippedRecord& skipped = skipped_records_[i];
    out += StrFormat("  record '%s' has %zu symbol(s)%s\n",
                     skipped.record_id.c_str(), skipped.length,
                     skipped.length < options.fragment.fragment_length &&
                             !options.fragment.keep_tail
                         ? " (< fragment_length; tail dropped)"
                         : "");
  }
  if (skipped_records_.size() > kMaxListed) {
    out += StrFormat("  ... and %zu more record(s)\n",
                     skipped_records_.size() - kMaxListed);
  }
  out +=
      "hint: lower the fragment length or enable keep_tail to mine "
      "sub-window records";
  return out;
}

}  // namespace pgm
