#ifndef PGM_CORPUS_PLAN_H_
#define PGM_CORPUS_PLAN_H_

#include <cstddef>
#include <string>
#include <vector>

#include "seq/alphabet.h"
#include "seq/fasta.h"
#include "seq/fragmenter.h"
#include "seq/sequence.h"
#include "util/status.h"

namespace pgm {

/// How a CorpusPlan expands records into fragments.
struct CorpusPlanOptions {
  /// Window cut applied to every record (seq/fragmenter.h). The paper's §7
  /// methodology is the default: 100 kb windows, tail dropped.
  FragmenterOptions fragment;
  /// Cap on the total number of fragments across all records (0 = all).
  /// Applied in plan order, so the cap is deterministic.
  std::size_t max_fragments = 0;
};

/// One unit of corpus work: a fixed window of one record, ready to mine.
struct CorpusFragment {
  /// Position in the plan's stable merge order — the aggregator folds
  /// per-fragment results in increasing ordinal regardless of which worker
  /// finishes first.
  std::size_t ordinal = 0;
  /// Index of the source record within the corpus input.
  std::size_t record_index = 0;
  /// FASTA record id (or a synthesized name for non-FASTA inputs).
  std::string record_id;
  /// Index of this window within its record.
  std::size_t fragment_index = 0;
  /// Window start offset within the *encoded* record sequence.
  std::size_t start = 0;
  /// The window itself. Self-contained (Sequence owns its symbols), so the
  /// plan never aliases the input file or a whole-record buffer.
  Sequence sequence;
};

/// A record that contributed zero fragments — shorter than fragment_length
/// with keep_tail=false, or empty after encoding. Kept so corpus callers
/// can diagnose loudly instead of silently mining nothing (see
/// FragmenterOptions::keep_tail).
struct SkippedRecord {
  std::size_t record_index = 0;
  std::string record_id;
  /// Encoded length of the record (symbols, after dropping non-alphabet
  /// characters).
  std::size_t length = 0;
};

/// The expanded work list of a corpus run: every fragment of every record,
/// in (record, window) order. Immutable once built; the executor reads it
/// from many threads.
class CorpusPlan {
 public:
  /// Plans a single already-encoded sequence under `name`.
  static StatusOr<CorpusPlan> FromSequence(const Sequence& sequence,
                                           const std::string& name,
                                           const CorpusPlanOptions& options);

  /// Plans every record, encoding residues over `alphabet` (characters
  /// outside the alphabet are dropped, FASTA ambiguity-code style; the
  /// total is reported by num_dropped_residues()).
  static StatusOr<CorpusPlan> FromRecords(const std::vector<FastaRecord>& records,
                                          const Alphabet& alphabet,
                                          const CorpusPlanOptions& options);

  /// Plans a multi-record FASTA file. With use_mmap (the default) the file
  /// is scanned through MmapFile + FastaScanner one record at a time, so a
  /// genome-scale corpus never materializes as one string; with it off the
  /// file is read through ReadFileToString (the retrying reader), which
  /// tests use to diff the two ingestion paths.
  static StatusOr<CorpusPlan> FromFastaFile(const std::string& path,
                                            const Alphabet& alphabet,
                                            const CorpusPlanOptions& options,
                                            bool use_mmap = true);

  /// Fragments in merge order (ordinal == index).
  const std::vector<CorpusFragment>& fragments() const { return fragments_; }
  /// Records that produced zero fragments.
  const std::vector<SkippedRecord>& skipped_records() const {
    return skipped_records_;
  }
  /// Total records planned (contributing + skipped).
  std::size_t num_records() const { return num_records_; }
  /// Residue characters dropped during encoding (non-alphabet codes).
  std::size_t num_dropped_residues() const { return num_dropped_residues_; }
  /// True when the file path ingested through a real memory mapping (false
  /// for non-file plans and the no-mmap/fallback paths).
  bool used_mmap() const { return used_mmap_; }
  /// Sum of fragment lengths (symbols actually scheduled for mining).
  std::size_t total_symbols() const { return total_symbols_; }

  /// One-line shape summary for reports ("3 records, 12 fragments of
  /// 100000, 1 record skipped").
  std::string Describe() const;

  /// The loud-diagnostic contract for an empty plan: a multi-line
  /// explanation of why zero fragments were planned (per-record lengths vs
  /// fragment_length, keep_tail state) and what to change. `pgm corpus`
  /// prints this and refuses to run rather than report zero patterns.
  std::string EmptyPlanDiagnostic(const CorpusPlanOptions& options) const;

 private:
  Status AddRecord(const std::string& record_id, const Sequence& sequence,
                   const CorpusPlanOptions& options);

  std::vector<CorpusFragment> fragments_;
  std::vector<SkippedRecord> skipped_records_;
  std::size_t num_records_ = 0;
  std::size_t num_dropped_residues_ = 0;
  std::size_t total_symbols_ = 0;
  bool used_mmap_ = false;
};

}  // namespace pgm

#endif  // PGM_CORPUS_PLAN_H_
