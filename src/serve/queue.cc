#include "serve/queue.h"

#include <utility>

namespace pgm {

JobQueue::JobQueue(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

JobQueue::PushResult JobQueue::TryPush(MiningJob job) {
  {
    MutexLock lock(mutex_);
    if (closed_) return PushResult::kClosed;
    if (jobs_.size() >= capacity_) return PushResult::kFull;
    jobs_.push_back(std::move(job));
  }
  ready_cv_.notify_one();
  return PushResult::kAccepted;
}

bool JobQueue::Pop(MiningJob* job) {
  MutexLock lock(mutex_);
  // Manual wait loop (not the predicate overload): the guarded reads of
  // jobs_/closed_ must sit in this function, where the analysis sees the
  // lock held.
  while (jobs_.empty() && !closed_) ready_cv_.wait(mutex_);
  if (jobs_.empty()) return false;
  *job = std::move(jobs_.front());
  jobs_.pop_front();
  return true;
}

void JobQueue::Close() {
  {
    MutexLock lock(mutex_);
    closed_ = true;
  }
  ready_cv_.notify_all();
}

std::size_t JobQueue::size() const {
  MutexLock lock(mutex_);
  return jobs_.size();
}

bool JobQueue::closed() const {
  MutexLock lock(mutex_);
  return closed_;
}

}  // namespace pgm
