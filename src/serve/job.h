#ifndef PGM_SERVE_JOB_H_
#define PGM_SERVE_JOB_H_

#include <cstdint>
#include <string>

#include "core/miner.h"
#include "util/status.h"

namespace pgm {

/// One mining request submitted to the service. The service treats the
/// `input` string as opaque and hands it to the ServiceConfig loader, so
/// jobs can name files, CLI input specs, or anything else the host wires up.
struct MiningJob {
  /// Assigned by MiningService::Submit; 0 until then.
  std::int64_t id = 0;
  /// Input spec resolved by the service's loader (e.g. "fasta:genome.fa").
  std::string input;
  /// Mining algorithm: "mpp", "mppm", "enum", or "adaptive".
  std::string algorithm = "mpp";
  /// The client's mining configuration. The service overrides the volatile
  /// plumbing fields: `cancel` is replaced by the service-wide drain token,
  /// `observer` by the service observer, and `limits` is clamped against the
  /// server ceilings (never raised above what the client asked for).
  MinerConfig config;

  /// Corpus-mode switch: when > 0 the input is expanded into fragments of
  /// this length by the ServiceConfig corpus_loader and mined by the corpus
  /// executor — every record, per-fragment support aggregation (the paper's
  /// Section 7 methodology). 0 = ordinary single-sequence job.
  std::size_t corpus_fragment_length = 0;
  /// Corpus jobs only: also mine each record's final sub-window remainder
  /// (FragmenterOptions::keep_tail).
  bool corpus_keep_tail = false;
};

/// The service's answer for one submitted job. Every job — executed, shed,
/// or failed — produces exactly one response, so callers can account for all
/// submissions after Join().
struct JobResponse {
  std::int64_t id = 0;
  std::string input;
  std::string algorithm;

  /// OK when mining ran (possibly partial — check result.termination);
  /// kUnavailable when admission control shed the job; the loader's or
  /// validator's error otherwise.
  Status status;
  /// Valid only when status.ok(). Partial results keep their termination
  /// reason intact (partial-but-sound contract).
  MiningResult result;

  /// True when the result came from the ResultCache.
  bool cache_hit = false;
  /// Corpus jobs only: fragments the plan scheduled (0 for ordinary jobs).
  std::size_t corpus_fragments = 0;
  /// Input-load attempts consumed (> 1 means transient faults were retried).
  int load_attempts = 0;
  /// For shed jobs: the server's suggested client backoff.
  std::int64_t retry_after_ms = 0;
  /// Wall-clock execution time (0 for shed jobs). Volatile — excluded from
  /// deterministic comparisons.
  double latency_ms = 0.0;
};

}  // namespace pgm

#endif  // PGM_SERVE_JOB_H_
