#include "serve/canonical.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/digest.h"
#include "util/string_util.h"

namespace pgm {

namespace {

std::string CanonDouble(double value) {
  // %a round-trips the exact bit pattern; "%g"-style renderings can collapse
  // distinct configs onto one key.
  return StrFormat("%a", value);
}

}  // namespace

std::string CanonicalConfigString(const std::string& algorithm,
                                  const MinerConfig& config) {
  // Execution knobs (threads, kernel_tier) are deliberately absent: they
  // never change the mined bytes, so keying on them would only fragment the
  // cache.
  std::vector<std::pair<std::string, std::string>> fields;
  fields.emplace_back("algorithm", algorithm);
  fields.emplace_back("em_order", std::to_string(config.em_order));
  fields.emplace_back("initial_n", std::to_string(config.initial_n));
  fields.emplace_back("max_gap", std::to_string(config.max_gap));
  fields.emplace_back("max_iterations", std::to_string(config.max_iterations));
  fields.emplace_back("max_length", std::to_string(config.max_length));
  fields.emplace_back("min_gap", std::to_string(config.min_gap));
  fields.emplace_back("min_support_ratio",
                      CanonDouble(config.min_support_ratio));
  fields.emplace_back("start_length", std::to_string(config.start_length));
  fields.emplace_back("use_em_bound", config.use_em_bound ? "1" : "0");
  fields.emplace_back("user_n", std::to_string(config.user_n));
  // The emplace order above is already alphabetical, but the contract is
  // "sorted by key", not "insertion order" — keep it true by construction so
  // a future field added in the wrong spot cannot silently change keys.
  std::sort(fields.begin(), fields.end());

  std::string out;
  for (const auto& [key, value] : fields) {
    out += key;
    out += '=';
    out += value;
    out += ';';
  }
  return out;
}

std::uint64_t SequenceDigest(const Sequence& sequence) {
  Digest64 digest;
  digest.Update(sequence.alphabet().symbols());
  digest.UpdateU64(sequence.alphabet().case_insensitive() ? 1 : 0);
  digest.UpdateU64(sequence.size());
  if (!sequence.symbols().empty()) {
    static_assert(sizeof(Symbol) == 1,
                  "SequenceDigest hashes the symbol array as raw bytes");
    digest.Update(sequence.symbols().data(), sequence.symbols().size());
  }
  return digest.value();
}

std::string CacheKey(const Sequence& sequence, const std::string& algorithm,
                     const MinerConfig& config) {
  return DigestToHex(SequenceDigest(sequence)) + ":" +
         DigestToHex(Fnv1a64(CanonicalConfigString(algorithm, config)));
}

}  // namespace pgm
