#ifndef PGM_SERVE_CANONICAL_H_
#define PGM_SERVE_CANONICAL_H_

#include <cstdint>
#include <string>

#include "core/miner.h"
#include "seq/sequence.h"

namespace pgm {

/// Renders the semantic fields of `config` — the ones that determine which
/// patterns a completed run emits — as a canonical string: `key=value;`
/// pairs sorted by key, doubles in `%a` hex-float form so the rendering is
/// exact and locale-independent.
///
/// Volatile fields are deliberately excluded: `threads`, `observer`,
/// `cancel`, and `limits` never change a *completed* result (the guard only
/// observes, and the parallel merge is candidate-ordered), so two requests
/// that differ only in those fields may share a cache entry. The cache in
/// turn stores only completed results, which is what makes the exclusion
/// sound.
std::string CanonicalConfigString(const std::string& algorithm,
                                  const MinerConfig& config);

/// FNV-1a 64 digest of the sequence: alphabet characters, case flag, length,
/// then the encoded symbol bytes.
std::uint64_t SequenceDigest(const Sequence& sequence);

/// The ResultCache key: `<sequence digest hex>:<canonical config hex>` (two
/// 16-digit lowercase hex fields). Keeping the halves separate makes cache
/// keys greppable by input in traces and logs.
std::string CacheKey(const Sequence& sequence, const std::string& algorithm,
                     const MinerConfig& config);

}  // namespace pgm

#endif  // PGM_SERVE_CANONICAL_H_
