#include "serve/service.h"

#include <algorithm>
#include <utility>

#include "serve/canonical.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace pgm {

namespace {

// Microsecond buckets: cache hits answer in tens of microseconds, so a
// millisecond-resolution histogram collapsed every hit (and most small
// mining jobs) into bucket 0. The top bucket still covers a 30 s job.
std::vector<std::uint64_t> LatencyBoundsUs() {
  return {50,      100,     250,     500,      1000,    2500,
          5000,    10000,   25000,   50000,    100000,  250000,
          500000,  1000000, 2500000, 5000000,  10000000, 30000000};
}

/// min over "-1 means absent" deadline ceilings.
std::int64_t MinDeadlineCeiling(std::int64_t a, std::int64_t b) {
  if (a < 0) return b;
  if (b < 0) return a;
  return std::min(a, b);
}

/// min over "0 means absent" budget ceilings: the client never gets more
/// than the server ceiling, and "unlimited" requests get exactly it.
std::uint64_t ClampBudget(std::uint64_t requested, std::uint64_t ceiling) {
  if (ceiling == 0) return requested;
  if (requested == 0) return ceiling;
  return std::min(requested, ceiling);
}

StatusOr<MiningResult> RunAlgorithm(const std::string& algorithm,
                                    const Sequence& sequence,
                                    const MinerConfig& config) {
  if (algorithm == "mpp") return MineMpp(sequence, config);
  if (algorithm == "mppm") return MineMppm(sequence, config);
  if (algorithm == "enum") return MineEnumeration(sequence, config);
  if (algorithm == "adaptive") return MineAdaptive(sequence, config);
  return Status::InvalidArgument("unknown algorithm: " + algorithm);
}

/// Runs `load` up to policy.max_attempts times, retrying only transient
/// kIoError failures — Corruption, NotFound, InvalidArgument mean the bytes
/// (or the request) are wrong and must fail loudly now. Sets *attempts to
/// the attempts consumed.
template <typename LoadFn>
auto RetryTransient(const RetryPolicy& policy, MetricsRegistry* metrics,
                    int* attempts, LoadFn&& load) -> decltype(load()) {
  const int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int attempt = 1;; ++attempt) {
    *attempts = attempt;
    auto result = load();
    if (result.ok()) {
      if (attempt > 1) {
        metrics->GetCounter("serve.retries.recovered")->Increment();
      }
      return result;
    }
    if (result.status().code() != StatusCode::kIoError ||
        attempt >= max_attempts) {
      return result;
    }
    metrics->GetCounter("serve.retries.attempted")->Increment();
    BackoffSleep(BackoffDelayMs(policy, attempt + 1));
  }
}

}  // namespace

MiningService::MiningService(ServiceConfig config)
    : config_(std::move(config)),
      metrics_(config_.observer != nullptr &&
                       config_.observer->metrics != nullptr
                   ? config_.observer->metrics
                   : &own_metrics_),
      trace_(config_.observer != nullptr ? config_.observer->trace : nullptr),
      queue_(config_.queue_capacity),
      cache_(config_.cache_capacity_bytes, metrics_),
      pool_(ThreadPool::ResolveThreadCount(
          static_cast<std::int64_t>(config_.workers))) {
  if (!config_.loader) {
    config_.loader = [](const std::string& input) -> StatusOr<Sequence> {
      return Status::FailedPrecondition("no loader configured for input: " +
                                        input);
    };
  }
}

// The responses were either collected by an earlier Join() or abandoned
// with the service; the discard only drops copies.
MiningService::~MiningService() { (void)Join(); }

StatusOr<std::int64_t> MiningService::Submit(MiningJob job) {
  const std::int64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  job.id = id;
  metrics_->GetCounter("serve.jobs.submitted")->Increment();

  JobResponse shed;
  shed.id = id;
  shed.input = job.input;
  shed.algorithm = job.algorithm;

  JobQueue::PushResult push = draining() ? JobQueue::PushResult::kClosed
                                         : queue_.TryPush(std::move(job));
  if (push == JobQueue::PushResult::kAccepted) {
    metrics_->GetCounter("serve.jobs.admitted")->Increment();
    const std::int64_t depth = static_cast<std::int64_t>(queue_.size());
    metrics_->GetGauge("serve.queue.depth")->Set(depth);
    metrics_->GetGauge("serve.queue.depth_peak")->SetMax(depth);
    if (trace_ != nullptr) {
      TraceEvent event;
      event.kind = TraceEventKind::kJobAdmitted;
      event.job = id;
      trace_->Append(std::move(event));
    }
    return id;
  }

  // Load shedding: answer immediately with a machine-readable reason and a
  // backoff hint — the queue never grows past its capacity.
  metrics_->GetCounter("serve.jobs.shed")->Increment();
  shed.retry_after_ms = config_.retry_after_ms;
  shed.status = Status::Unavailable(StrFormat(
      "%s; retry after %lld ms",
      push == JobQueue::PushResult::kFull ? "queue full" : "service draining",
      static_cast<long long>(config_.retry_after_ms)));
  if (trace_ != nullptr) {
    TraceEvent event;
    event.kind = TraceEventKind::kJobShed;
    event.job = id;
    event.retry_after_ms = config_.retry_after_ms;
    trace_->Append(std::move(event));
  }
  Status status = shed.status;
  RecordResponse(std::move(shed));
  return status;
}

void MiningService::Start() {
  MutexLock lock(mutex_);
  if (started_) return;
  started_ = true;
  // A host thread owns the fork-join: ThreadPool::Execute blocks its caller
  // until the drain finishes, and Join() must stay free to close the queue.
  host_ = std::thread(
      [this] { pool_.Execute([this](std::size_t) { WorkerDrainLoop(); }); });
}

void MiningService::BeginShutdown() {
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  metrics_->GetCounter("serve.shutdown.begun")->Increment();
  // Order matters for the drain contract: close first so no new job can
  // slip in after the cancel latch, then cancel so in-flight and queued
  // jobs all observe it and flush partial results.
  queue_.Close();
  cancel_.RequestCancel();
}

std::vector<JobResponse> MiningService::Join() {
  Start();
  queue_.Close();
  bool join_host = false;
  {
    MutexLock lock(mutex_);
    if (!joined_) {
      joined_ = true;
      join_host = true;
    }
  }
  // Joined outside the lock: workers still draining record responses under
  // mutex_, so holding it here would deadlock.
  if (join_host && host_.joinable()) host_.join();

  std::vector<JobResponse> out;
  {
    MutexLock lock(mutex_);
    out = responses_;
  }
  std::sort(out.begin(), out.end(),
            [](const JobResponse& a, const JobResponse& b) {
              return a.id < b.id;
            });
  return out;
}

ResourceLimits MiningService::ClampLimits(const ResourceLimits& requested) const {
  ResourceLimits effective = requested;
  const std::int64_t ceiling = MinDeadlineCeiling(
      config_.max_deadline_ms, config_.default_limits.deadline_ms);
  if (ceiling >= 0) {
    effective.deadline_ms = requested.deadline_ms < 0
                                ? ceiling
                                : std::min(requested.deadline_ms, ceiling);
  }
  effective.pil_memory_budget_bytes =
      ClampBudget(requested.pil_memory_budget_bytes,
                  config_.default_limits.pil_memory_budget_bytes);
  effective.max_level_candidates = ClampBudget(
      requested.max_level_candidates, config_.default_limits.max_level_candidates);
  effective.max_total_candidates = ClampBudget(
      requested.max_total_candidates, config_.default_limits.max_total_candidates);
  return effective;
}

void MiningService::WorkerDrainLoop() {
  MiningJob job;
  while (queue_.Pop(&job)) {
    metrics_->GetGauge("serve.queue.depth")
        ->Set(static_cast<std::int64_t>(queue_.size()));
    Process(std::move(job));
  }
}

StatusOr<Sequence> MiningService::LoadWithRetry(const std::string& input,
                                                int* attempts) {
  return RetryTransient(config_.io_retry, metrics_, attempts,
                        [&] { return config_.loader(input); });
}

void MiningService::Process(MiningJob job) {
  Stopwatch watch;
  JobResponse response;
  response.id = job.id;
  response.input = job.input;
  response.algorithm = job.algorithm;

  metrics_->GetCounter("serve.jobs.started")->Increment();
  if (trace_ != nullptr) {
    TraceEvent event;
    event.kind = TraceEventKind::kJobStart;
    event.job = job.id;
    event.detail = job.algorithm;
    trace_->Append(std::move(event));
  }

  if (job.corpus_fragment_length > 0) {
    ExecuteCorpus(job, &response);
  } else {
    ExecuteSingle(job, &response);
  }

  // Account and respond.
  const double elapsed_seconds = watch.ElapsedSeconds();
  response.latency_ms = elapsed_seconds * 1000.0;
  metrics_
      ->GetHistogram("serve.latency_us", LatencyBoundsUs())
      ->Observe(static_cast<std::uint64_t>(elapsed_seconds * 1e6));
  std::string reason;
  if (response.status.ok()) {
    reason = TerminationReasonToString(response.result.termination);
    metrics_->GetCounter("serve.jobs.completed")->Increment();
    metrics_->GetCounter(std::string("serve.termination.") + reason)
        ->Increment();
  } else {
    reason = StatusCodeToString(response.status.code());
    metrics_->GetCounter("serve.jobs.failed")->Increment();
  }
  if (trace_ != nullptr) {
    TraceEvent event;
    event.kind = TraceEventKind::kJobEnd;
    event.job = response.id;
    event.detail = reason;
    event.cache_hit = response.cache_hit;
    event.patterns = response.result.patterns.size();
    trace_->Append(std::move(event));
  }
  RecordResponse(std::move(response));
}

void MiningService::ExecuteSingle(const MiningJob& job,
                                  JobResponse* response) {
  // Phase 1: load (with transient-fault retry).
  int attempts = 0;
  StatusOr<Sequence> sequence = LoadWithRetry(job.input, &attempts);
  response->load_attempts = attempts;
  if (!sequence.ok()) {
    response->status = sequence.status();
    return;
  }

  // Phase 2: cache.
  const std::string key = CacheKey(*sequence, job.algorithm, job.config);
  MiningResult cached;
  if (cache_.Lookup(key, &cached)) {
    response->result = std::move(cached);
    response->cache_hit = true;
    return;
  }

  // Phase 3: clamp budgets and execute under the drain token.
  MinerConfig run_config = job.config;
  run_config.limits = ClampLimits(job.config.limits);
  if (run_config.limits.deadline_ms != job.config.limits.deadline_ms) {
    metrics_->GetCounter("serve.deadline.clamped")->Increment();
  }
  run_config.cancel = &cancel_;
  run_config.observer = config_.observer;

  StatusOr<MiningResult> mined =
      RunAlgorithm(job.algorithm, *sequence, run_config);
  if (!mined.ok()) {
    response->status = mined.status();
    return;
  }
  response->result = std::move(mined).value();
  // Phase 4: only completed results are cacheable — a partial result
  // depends on the budgets and the trip point, a completed one only
  // on (sequence, semantic config).
  if (response->result.complete() && cache_.capacity_bytes() > 0) {
    (void)cache_.Insert(key, response->result);  // full/oversized is fine
  }
}

void MiningService::ExecuteCorpus(const MiningJob& job,
                                  JobResponse* response) {
  metrics_->GetCounter("serve.jobs.corpus")->Increment();
  if (!config_.corpus_loader) {
    response->status = Status::FailedPrecondition(
        "no corpus loader configured for input: " + job.input);
    return;
  }

  CorpusPlanOptions plan_options;
  plan_options.fragment.fragment_length = job.corpus_fragment_length;
  plan_options.fragment.keep_tail = job.corpus_keep_tail;

  int attempts = 0;
  StatusOr<CorpusPlan> plan = RetryTransient(
      config_.io_retry, metrics_, &attempts,
      [&] { return config_.corpus_loader(job.input, plan_options); });
  response->load_attempts = attempts;
  if (!plan.ok()) {
    response->status = plan.status();
    return;
  }
  if (plan->fragments().empty()) {
    // The loud-diagnostic contract: an input that fragments to nothing is
    // a client error, never a silent zero-pattern success.
    response->status =
        Status::InvalidArgument(plan->EmptyPlanDiagnostic(plan_options));
    return;
  }

  // Budgets are clamped against the same server ceilings as ordinary jobs;
  // the deadline and candidate caps govern the whole corpus, while the PIL
  // budget applies per fragment (fragments are independent runs).
  const ResourceLimits clamped = ClampLimits(job.config.limits);
  if (clamped.deadline_ms != job.config.limits.deadline_ms) {
    metrics_->GetCounter("serve.deadline.clamped")->Increment();
  }
  CorpusOptions options;
  options.algorithm = job.algorithm;
  options.miner = job.config;
  options.miner.cancel = nullptr;    // the executor attaches options.cancel
  options.miner.observer = nullptr;  // the executor interposes per-fragment
  options.miner.limits = ResourceLimits{};
  options.miner.limits.pil_memory_budget_bytes =
      clamped.pil_memory_budget_bytes;
  options.limits = clamped;
  // Fragment fan-out stays serial inside the service: the service already
  // parallelizes across jobs, and serial fragments keep one corpus job from
  // starving the other workers' CPUs.
  options.corpus_threads = 1;
  options.cancel = &cancel_;
  options.observer = config_.observer;

  StatusOr<CorpusResult> corpus = MineCorpus(*plan, options);
  if (!corpus.ok()) {
    response->status = corpus.status();
    return;
  }
  response->corpus_fragments = corpus->fragments_planned;
  response->result = corpus->ToMiningResult();
  // No cache interaction (see the header): the ResultCache key hashes one
  // sequence's bytes, and a corpus never materializes as one sequence.
}

void MiningService::RecordResponse(JobResponse response) {
  MutexLock lock(mutex_);
  responses_.push_back(std::move(response));
}

}  // namespace pgm
