#ifndef PGM_SERVE_QUEUE_H_
#define PGM_SERVE_QUEUE_H_

#include <cstddef>
#include <deque>

#include "serve/job.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace pgm {

/// A bounded, closable FIFO of pending mining jobs.
///
/// Admission never blocks and never grows past the capacity: TryPush on a
/// full queue reports kFull immediately, which is the service's
/// load-shedding primitive — a saturated server answers "come back later"
/// in O(1) instead of queueing unboundedly and melting down. Pop blocks
/// until a job arrives or the queue is closed *and* drained, so workers
/// process everything admitted before shutdown completes.
class JobQueue {
 public:
  enum class PushResult {
    kAccepted,
    /// The queue is at capacity; the caller should shed the job.
    kFull,
    /// Close() was called; no further admissions.
    kClosed,
  };

  /// `capacity` 0 is pinned to 1 (a zero-capacity queue would shed
  /// everything, which is a misconfiguration, not a service).
  explicit JobQueue(std::size_t capacity);

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Non-blocking admission. On kAccepted the queue took ownership of `job`.
  PushResult TryPush(MiningJob job);

  /// Blocks until a job is available (returns true, moving it into *job) or
  /// the queue is closed and empty (returns false — the drain is complete).
  bool Pop(MiningJob* job);

  /// Stops admissions. Jobs already queued remain poppable; blocked Pop
  /// calls wake and drain them, then return false.
  void Close();

  std::size_t capacity() const { return capacity_; }
  /// Pending (admitted, not yet popped) jobs. Advisory: the value can be
  /// stale by the time the caller acts on it.
  std::size_t size() const;
  bool closed() const;

 private:
  const std::size_t capacity_;

  mutable Mutex mutex_{kLockRankQueue};
  CondVar ready_cv_;
  std::deque<MiningJob> jobs_ PGM_GUARDED_BY(mutex_);
  bool closed_ PGM_GUARDED_BY(mutex_) = false;
};

}  // namespace pgm

#endif  // PGM_SERVE_QUEUE_H_
