#ifndef PGM_SERVE_SERVICE_H_
#define PGM_SERVE_SERVICE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/guard.h"
#include "core/miner.h"
#include "core/trace.h"
#include "corpus/executor.h"
#include "corpus/plan.h"
#include "serve/cache.h"
#include "serve/job.h"
#include "serve/queue.h"
#include "seq/sequence.h"
#include "util/backoff.h"
#include "util/limits.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace pgm {

/// Tuning and plumbing for a MiningService instance.
struct ServiceConfig {
  /// Admission-queue capacity; jobs past this are shed, never queued.
  std::size_t queue_capacity = 64;
  /// Worker threads draining the queue (each runs whole jobs; mining-internal
  /// parallelism is the job's own config.threads).
  std::size_t workers = 1;
  /// Server-side ceiling on any job's wall-clock deadline, in milliseconds;
  /// -1 = no ceiling. Client deadlines are clamped down to this, never up.
  std::int64_t max_deadline_ms = -1;
  /// Server-side ceilings for the remaining budgets (0 fields = no ceiling).
  /// A job asking for "unlimited" (0 / negative) gets the ceiling; a job
  /// asking for more than the ceiling is clamped to it.
  ResourceLimits default_limits;
  /// Result-cache budget in bytes; 0 disables caching.
  std::uint64_t cache_capacity_bytes = 0;
  /// Retry schedule for transient input-load faults (kIoError only).
  RetryPolicy io_retry;
  /// Backoff hint returned with kUnavailable when admission sheds a job.
  std::int64_t retry_after_ms = 50;
  /// Optional metrics/trace sinks; must outlive the service. The service
  /// emits serve.* metrics and kJob* trace events here and attaches the same
  /// observer to every mining run.
  const MiningObserver* observer = nullptr;
  /// Resolves a job's input spec to a sequence. Required. Runs on worker
  /// threads, so it must be thread-safe; kIoError returns are treated as
  /// transient and retried per io_retry.
  std::function<StatusOr<Sequence>(const std::string&)> loader;
  /// Resolves a corpus job's input spec (corpus_fragment_length > 0) to a
  /// fragment plan. Optional — corpus jobs fail with FailedPrecondition
  /// when unset. Same threading and retry contract as `loader`.
  std::function<StatusOr<CorpusPlan>(const std::string&,
                                     const CorpusPlanOptions&)>
      corpus_loader;
};

/// A long-lived, fault-tolerant mining service: bounded admission, clamped
/// per-request budgets, result caching, retry of transient input faults, and
/// graceful drain.
///
/// Lifecycle: construct → Submit(...) any number of times → Start() →
/// Submit(...) more → Join(). Submissions are accepted both before Start
/// (they queue up; useful for deterministic batch runs) and while running.
/// BeginShutdown() — safe from any thread, including a signal-watcher —
/// stops admissions and latches the service-wide CancelToken; running jobs
/// stop at their next guard poll and return partial-but-sound results with
/// termination = cancelled, and queued jobs drain the same way. Join()
/// always returns one JobResponse per submitted job (shed ones included),
/// sorted by job id.
class MiningService {
 public:
  explicit MiningService(ServiceConfig config);
  /// Joins the drain if the caller forgot to; prefer calling Join().
  ~MiningService();

  MiningService(const MiningService&) = delete;
  MiningService& operator=(const MiningService&) = delete;

  /// Admission control. Returns the job id, or kUnavailable when the queue
  /// is full or the service is draining — in which case a shed JobResponse
  /// (status kUnavailable, retry_after_ms set) is also recorded so Join()
  /// accounts for the job.
  StatusOr<std::int64_t> Submit(MiningJob job);

  /// Starts the drain: a host thread runs the queue loop on a ThreadPool of
  /// config.workers threads. Idempotent.
  void Start();

  /// Graceful drain: stop admitting, cancel in-flight work. Does not wait —
  /// call Join() to collect. Idempotent, thread-safe, async-signal-watcher
  /// safe (it only flips atomics, closes the queue, and bumps metrics).
  void BeginShutdown();

  /// Closes admissions, waits for every queued job to finish, and returns
  /// all responses sorted by id. After Join() the service is inert: further
  /// Submits are shed with kUnavailable.
  std::vector<JobResponse> Join();

  /// True once BeginShutdown (or Join) has run.
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// The service-wide cancellation token (latched by BeginShutdown).
  const CancelToken& cancel_token() const { return cancel_; }

  /// The registry serve.* metrics land in: the observer's, or an internal
  /// one when no observer metrics were supplied.
  const MetricsRegistry& metrics() const { return *metrics_; }

  const ResultCache& cache() const { return cache_; }

  /// The budgets a job asking for `requested` would actually run under.
  /// Exposed for tests pinning the clamp table.
  ResourceLimits ClampLimits(const ResourceLimits& requested) const;

 private:
  void WorkerDrainLoop();
  /// Executes one job start to finish and records its response.
  void Process(MiningJob job);
  /// The single-sequence job body: load, cache, clamp, mine. Fills
  /// response->result or ->status.
  void ExecuteSingle(const MiningJob& job, JobResponse* response);
  /// The corpus job body: plan (with retry), fan out fragments, aggregate.
  /// Corpus results bypass the ResultCache — the cache key is built from
  /// one sequence's bytes and a corpus never materializes as one sequence.
  void ExecuteCorpus(const MiningJob& job, JobResponse* response);
  /// Loads the job's input with transient-fault retry. Sets *attempts.
  StatusOr<Sequence> LoadWithRetry(const std::string& input, int* attempts);
  void RecordResponse(JobResponse response);

  ServiceConfig config_;
  MetricsRegistry own_metrics_;
  MetricsRegistry* metrics_;  // observer's registry or &own_metrics_
  MiningTrace* trace_;        // observer's trace or null

  JobQueue queue_;
  ResultCache cache_;
  CancelToken cancel_;
  ThreadPool pool_;

  std::atomic<bool> draining_{false};
  std::atomic<std::int64_t> next_id_{1};

  Mutex mutex_{kLockRankService};
  std::vector<JobResponse> responses_ PGM_GUARDED_BY(mutex_);
  bool started_ PGM_GUARDED_BY(mutex_) = false;
  bool joined_ PGM_GUARDED_BY(mutex_) = false;
  std::thread host_;  // runs the ThreadPool drain; joined in Join()
};

}  // namespace pgm

#endif  // PGM_SERVE_SERVICE_H_
