#include "serve/cache.h"

#include <utility>

namespace pgm {

namespace {

void BumpCounter(MetricsRegistry* metrics, const char* name) {
  if (metrics != nullptr) metrics->GetCounter(name)->Increment();
}

}  // namespace

std::uint64_t ApproxResultBytes(const MiningResult& result) {
  std::uint64_t bytes = sizeof(MiningResult);
  for (const FrequentPattern& fp : result.patterns) {
    bytes += sizeof(FrequentPattern);
    bytes += fp.pattern.symbols().capacity() * sizeof(Symbol);
  }
  bytes += result.level_stats.capacity() * sizeof(LevelStats);
  return bytes;
}

ResultCache::ResultCache(std::uint64_t capacity_bytes, MetricsRegistry* metrics)
    : capacity_bytes_(capacity_bytes), metrics_(metrics) {}

bool ResultCache::Lookup(const std::string& key, MiningResult* result) {
  if (capacity_bytes_ == 0) return false;  // disabled: no metrics noise
  {
    MutexLock lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      *result = it->second.result;
      BumpCounter(metrics_, "serve.cache.hits");
      return true;
    }
  }
  BumpCounter(metrics_, "serve.cache.misses");
  return false;
}

bool ResultCache::Insert(const std::string& key, const MiningResult& result) {
  if (capacity_bytes_ == 0) return false;  // disabled: no metrics noise
  const std::uint64_t bytes = ApproxResultBytes(result);
  if (bytes > capacity_bytes_) {
    // An entry bigger than the whole budget can never fit: caching must
    // never be the thing that busts the memory ledger.
    BumpCounter(metrics_, "serve.cache.rejected");
    return false;
  }
  MutexLock lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Refresh in place; completed results for one key are equivalent, but
    // the recency bump and ledger swap keep the bookkeeping exact.
    bytes_in_use_ -= it->second.bytes;
    it->second.result = result;
    it->second.bytes = bytes;
    bytes_in_use_ += bytes;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  } else {
    while (bytes_in_use_ + bytes > capacity_bytes_) EvictOne();
    lru_.push_front(key);
    Entry entry;
    entry.result = result;
    entry.bytes = bytes;
    entry.lru_pos = lru_.begin();
    entries_.emplace(key, std::move(entry));
    bytes_in_use_ += bytes;
    BumpCounter(metrics_, "serve.cache.insertions");
  }
  if (metrics_ != nullptr) {
    metrics_->GetGauge("serve.cache.bytes")
        ->Set(static_cast<std::int64_t>(bytes_in_use_));
  }
  return true;
}

void ResultCache::EvictOne() {
  const std::string& victim = lru_.back();
  auto it = entries_.find(victim);
  bytes_in_use_ -= it->second.bytes;
  entries_.erase(it);
  lru_.pop_back();
  BumpCounter(metrics_, "serve.cache.evictions");
}

std::uint64_t ResultCache::bytes_in_use() const {
  MutexLock lock(mutex_);
  return bytes_in_use_;
}

std::size_t ResultCache::entry_count() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

}  // namespace pgm
