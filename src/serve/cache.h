#ifndef PGM_SERVE_CACHE_H_
#define PGM_SERVE_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <string>

#include "core/miner.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace pgm {

/// Estimated resident size of a MiningResult: the struct, its pattern
/// payloads, and its level stats. An estimate, not an audit — the cache's
/// ledger bounds memory growth, it does not reproduce malloc bookkeeping.
std::uint64_t ApproxResultBytes(const MiningResult& result);

/// An LRU cache of completed mining results keyed by
/// serve::CacheKey(sequence, algorithm, config).
///
/// Only *completed* results belong here (the service enforces it): a
/// completed run is independent of thread count and resource limits, so a
/// hit is byte-equivalent to re-mining. Every entry's approximate size is
/// charged against `capacity_bytes`; inserting past the budget evicts
/// least-recently-used entries first, and an entry larger than the whole
/// budget is refused outright. All methods are thread-safe.
class ResultCache {
 public:
  /// `capacity_bytes` 0 disables the cache (lookups miss, inserts drop).
  /// `metrics` may be null; when set, the cache maintains
  /// serve.cache.{hits,misses,insertions,evictions,rejected} counters and
  /// the serve.cache.bytes gauge. It must outlive the cache.
  explicit ResultCache(std::uint64_t capacity_bytes,
                       MetricsRegistry* metrics = nullptr);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// On hit, copies the cached result into *result, marks the entry
  /// most-recently-used, and returns true.
  bool Lookup(const std::string& key, MiningResult* result);

  /// Inserts (or refreshes) `key`, evicting LRU entries until the ledger
  /// fits the budget. Returns false when the entry alone exceeds the budget
  /// (or the cache is disabled) — the result is simply not cached.
  bool Insert(const std::string& key, const MiningResult& result);

  std::uint64_t capacity_bytes() const { return capacity_bytes_; }
  std::uint64_t bytes_in_use() const;
  std::size_t entry_count() const;

 private:
  struct Entry {
    MiningResult result;
    std::uint64_t bytes = 0;
    /// Position in lru_ (most recent at the front).
    std::list<std::string>::iterator lru_pos;
  };

  /// Drops the LRU entry. Requires a non-empty cache.
  void EvictOne() PGM_REQUIRES(mutex_);

  const std::uint64_t capacity_bytes_;
  MetricsRegistry* const metrics_;

  mutable Mutex mutex_{kLockRankCache};
  std::map<std::string, Entry> entries_ PGM_GUARDED_BY(mutex_);
  std::list<std::string> lru_ PGM_GUARDED_BY(mutex_);
  std::uint64_t bytes_in_use_ PGM_GUARDED_BY(mutex_) = 0;
};

}  // namespace pgm

#endif  // PGM_SERVE_CACHE_H_
