#include "core/gap.h"

#include "util/string_util.h"

namespace pgm {

StatusOr<GapRequirement> GapRequirement::Create(std::int64_t min_gap,
                                                std::int64_t max_gap) {
  if (min_gap < 0) {
    return Status::InvalidArgument(
        StrFormat("minimum gap must be non-negative, got %lld",
                  static_cast<long long>(min_gap)));
  }
  if (max_gap < min_gap) {
    return Status::InvalidArgument(
        StrFormat("maximum gap %lld is smaller than minimum gap %lld",
                  static_cast<long long>(max_gap),
                  static_cast<long long>(min_gap)));
  }
  return GapRequirement(min_gap, max_gap);
}

std::string GapRequirement::ToString() const {
  return StrFormat("[%lld,%lld]", static_cast<long long>(min_gap_),
                   static_cast<long long>(max_gap_));
}

}  // namespace pgm
