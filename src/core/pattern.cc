#include "core/pattern.h"

#include <cassert>

#include "util/string_util.h"

namespace pgm {

StatusOr<Pattern> Pattern::FromSymbols(std::vector<Symbol> symbols,
                                       const Alphabet& alphabet) {
  if (symbols.empty()) {
    return Status::InvalidArgument("a pattern must contain at least one character");
  }
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    if (symbols[i] >= alphabet.size()) {
      return Status::InvalidArgument(
          StrFormat("symbol %u at index %zu is out of range for an alphabet "
                    "of size %zu",
                    symbols[i], i, alphabet.size()));
    }
  }
  return Pattern(std::move(symbols), alphabet);
}

StatusOr<Pattern> Pattern::Parse(std::string_view shorthand,
                                 const Alphabet& alphabet) {
  if (shorthand.empty()) {
    return Status::InvalidArgument("empty pattern");
  }
  std::vector<Symbol> symbols;
  symbols.reserve(shorthand.size());
  for (std::size_t i = 0; i < shorthand.size(); ++i) {
    char c = shorthand[i];
    if (c == '.') {
      return Status::InvalidArgument(
          "shorthand notation must not contain wildcards; use "
          "ParseFullNotation for the explicit form");
    }
    Symbol s = alphabet.Encode(c);
    if (s == kInvalidSymbol) {
      return Status::InvalidArgument(
          StrFormat("character '%c' at index %zu is not in the alphabet", c, i));
    }
    symbols.push_back(s);
  }
  return Pattern(std::move(symbols), alphabet);
}

StatusOr<Pattern> Pattern::ParseFullNotation(std::string_view text,
                                             const Alphabet& alphabet,
                                             const GapRequirement& gap) {
  if (text.empty()) {
    return Status::InvalidArgument("empty pattern");
  }
  if (text.front() == '.' || text.back() == '.') {
    return Status::InvalidArgument(
        "a pattern must begin and end with characters, not wildcards");
  }
  std::vector<Symbol> symbols;
  std::int64_t gap_run = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '.') {
      ++gap_run;
      continue;
    }
    Symbol s = alphabet.Encode(c);
    if (s == kInvalidSymbol) {
      return Status::InvalidArgument(
          StrFormat("character '%c' at index %zu is not in the alphabet", c, i));
    }
    if (!symbols.empty()) {
      if (gap_run < gap.min_gap() || gap_run > gap.max_gap()) {
        return Status::InvalidArgument(StrFormat(
            "gap of size %lld before index %zu violates the gap requirement %s",
            static_cast<long long>(gap_run), i, gap.ToString().c_str()));
      }
    }
    gap_run = 0;
    symbols.push_back(s);
  }
  return Pattern(std::move(symbols), alphabet);
}

char Pattern::CharAt(std::size_t i) const {
  return alphabet_.CharAt(symbols_[i]);
}

Pattern Pattern::Prefix() const {
  assert(symbols_.size() >= 2);
  return Pattern(std::vector<Symbol>(symbols_.begin(), symbols_.end() - 1),
                 alphabet_);
}

Pattern Pattern::Suffix() const {
  assert(symbols_.size() >= 2);
  return Pattern(std::vector<Symbol>(symbols_.begin() + 1, symbols_.end()),
                 alphabet_);
}

Pattern Pattern::SubPattern(std::size_t start, std::size_t count) const {
  if (start >= symbols_.size()) return Pattern({}, alphabet_);
  std::size_t end = std::min(symbols_.size(), start + count);
  return Pattern(
      std::vector<Symbol>(symbols_.begin() + start, symbols_.begin() + end),
      alphabet_);
}

std::string Pattern::ToShorthand() const {
  std::string out;
  out.reserve(symbols_.size());
  for (Symbol s : symbols_) out.push_back(alphabet_.CharAt(s));
  return out;
}

std::string Pattern::ToString(const GapRequirement& gap) const {
  std::string separator =
      StrFormat("g(%lld,%lld)", static_cast<long long>(gap.min_gap()),
                static_cast<long long>(gap.max_gap()));
  std::string out;
  for (std::size_t i = 0; i < symbols_.size(); ++i) {
    if (i > 0) out += separator;
    out.push_back(alphabet_.CharAt(symbols_[i]));
  }
  return out;
}

}  // namespace pgm
