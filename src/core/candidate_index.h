#ifndef PGM_CORE_CANDIDATE_INDEX_H_
#define PGM_CORE_CANDIDATE_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/pil_arena.h"

namespace pgm {
namespace internal {

class ParallelLevelExecutor;

/// A pattern of one mining level: its encoded symbols (one byte per Symbol,
/// usable as a hash key) and the span of its PIL rows in the level's arena.
struct ArenaEntry {
  std::string symbols;
  PilSpan span;
};

/// One mining level in arena form: the entry table plus the arena that owns
/// every entry's rows. The level-wise engines hand these across phases
/// (seed build → n-estimation → mining) as a unit; destroying one returns
/// the arena's whole charge to the guard, so there is no per-entry ledger
/// bookkeeping to keep balanced on early exits.
struct BuiltLevel {
  PilArena arena;
  std::vector<ArenaEntry> entries;
};

/// One join task: the left pattern extended by every right pattern in
/// [rights_begin, rights_end) of the plan's rights pool. The candidates of
/// task t, in rights order, precede those of task t+1 — that flat order is
/// the executor's merge order, identical to the pre-index candidate order
/// (left-major, group members in level-index order).
struct JoinTask {
  std::uint32_t left = 0;
  std::uint32_t rights_begin = 0;
  std::uint32_t rights_end = 0;

  std::uint32_t group_size() const { return rights_end - rights_begin; }
};

/// The prefix-indexed candidate plan of one level join.
///
/// For the level-wise self-join, rights are grouped by their shared
/// length-(l-1) prefix: every left pattern whose suffix equals that prefix
/// joins against the *same* pool range, stored once per group. The executor
/// exploits the grouping by scanning a left pattern's PIL once per group
/// slice instead of once per candidate (core/pil_arena.h's
/// CombinePrefixGroup), and the plan itself replaces the old per-candidate
/// CandidateSpec vector — no per-candidate symbol strings are materialized
/// at generation time at all.
class JoinPlan {
 public:
  /// The level-wise join of `level` with itself: for every pair (P1, P2)
  /// with suffix(P1) == prefix(P2), the candidate P1[0] + P2. Joining
  /// length-1 entries keys on the empty string, i.e. the full cross
  /// product. `executor` (optional) parallelizes the probe half — the
  /// read-only suffix lookups — across its pool; the plan is identical
  /// with or without it (the bucketing and the left-order compaction stay
  /// serial).
  static JoinPlan SelfJoin(const std::vector<ArenaEntry>& level,
                           ParallelLevelExecutor* executor = nullptr);

  /// Every left extended by every right (the enumeration engine's
  /// level-extension by single symbols).
  static JoinPlan CrossProduct(std::uint32_t num_left,
                               std::uint32_t num_right);

  const std::vector<JoinTask>& tasks() const { return tasks_; }
  const std::vector<std::uint32_t>& rights_pool() const {
    return rights_pool_;
  }
  std::uint64_t num_candidates() const { return num_candidates_; }
  bool empty() const { return num_candidates_ == 0; }

 private:
  std::vector<JoinTask> tasks_;
  std::vector<std::uint32_t> rights_pool_;
  std::uint64_t num_candidates_ = 0;
};

}  // namespace internal
}  // namespace pgm

#endif  // PGM_CORE_CANDIDATE_INDEX_H_
