#ifndef PGM_CORE_GUARD_H_
#define PGM_CORE_GUARD_H_

#include <atomic>
#include <cstdint>

#include "util/limits.h"
#include "util/stopwatch.h"

namespace pgm {

/// Cooperative cancellation flag. The owner (e.g. a request handler) keeps
/// the token alive for the duration of the mining call and may flip it from
/// another thread; the miners poll it at level boundaries and every
/// MiningGuard::kTickPeriod PIL extensions.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

  /// Re-arms a latched token. Only safe between mining calls (no run may be
  /// polling the token); exists so a long-lived owner — the CLI's
  /// process-wide signal token, tests — can reuse one token across runs.
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Tracks a mining run against its ResourceLimits and an optional
/// CancelToken. All Charge*/Tick/CheckNow methods return true while mining
/// may continue; the first violation latches a sticky TerminationReason and
/// every later call returns false, so callers can unwind level by level.
///
/// The guard only observes — it never changes which candidates are generated
/// or how supports are counted — so a run that finishes without tripping any
/// limit is bit-identical to an ungoverned run.
///
/// Thread safety: every method may be called concurrently from the parallel
/// level engine's workers. The tick counter, memory ledger, and candidate
/// totals are atomics; the termination reason latches via compare-exchange,
/// so exactly one violation wins and all workers observe the stop. The
/// partial-but-sound contract survives parallelism: a trip seen by one
/// worker is seen by all at their next Tick/Charge, and whatever candidates
/// were fully evaluated before the stop carry exact supports.
///
/// Under the thread-safety capability model (util/thread_annotations.h) the
/// guard is deliberately capability-free: it owns no mutex, every member is
/// an atomic (asserted lock-free below), and cross-member consistency is
/// never assumed — each charge checks its own budget against its own
/// counter, and the only multi-member protocol (trip exactly once) is the
/// CAS latch in Stop(). There is therefore nothing for PGM_GUARDED_BY to
/// name; the enforced contract is instead the [[nodiscard]] on every
/// charge, which makes ignoring a trip a compile error.
class MiningGuard {
 public:
  /// PIL extensions between two wall-clock/cancellation polls. Power of two
  /// so the fast path of Tick() is a mask, not a division.
  static constexpr std::uint64_t kTickPeriod = 1 << 16;

  /// `cancel` may be null; when non-null it must outlive the guard.
  explicit MiningGuard(const ResourceLimits& limits,
                       const CancelToken* cancel = nullptr);

  /// Full check of deadline and cancellation. Used at level boundaries.
  [[nodiscard]] bool CheckNow();

  /// Per-PIL-extension tick: an atomic counter bump on the fast path, a
  /// full CheckNow() every kTickPeriod calls (per process, not per worker —
  /// the counter is shared, so the polling cadence is independent of the
  /// thread count).
  [[nodiscard]] bool Tick() {
    if (stopped()) return false;
    const std::uint64_t tick = ticks_.fetch_add(1, std::memory_order_relaxed);
    if (((tick + 1) & (kTickPeriod - 1)) != 0) return true;
    return CheckNow();
  }

  /// Batched Tick(): charges `n` extensions in one atomic add, polling
  /// CheckNow() when the batch crosses a kTickPeriod boundary (the same
  /// cadence as n single Ticks). On a trip — latched earlier, detected by
  /// the poll, or raced in by another thread — the whole batch is refunded
  /// and false is returned, so the tick total counts only batches whose
  /// work was actually delivered. This is what keeps the executor's
  /// "ticks == sink-delivered candidates" invariant exact: a piece charges
  /// its candidates up front and hands them back when it is abandoned.
  [[nodiscard]] bool TickN(std::uint64_t n) {
    if (n == 0) return !stopped();
    if (stopped()) return false;
    const std::uint64_t before = ticks_.fetch_add(n, std::memory_order_relaxed);
    const bool poll = ((before + n) / kTickPeriod) != (before / kTickPeriod);
    if ((poll && !CheckNow()) || stopped()) {
      ticks_.fetch_sub(n, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  /// Extensions charged so far (Tick calls plus net TickN batches). With
  /// the executor's batched protocol this equals the number of candidates
  /// whose joins were delivered to the sink.
  std::uint64_t ticks() const {
    return ticks_.load(std::memory_order_relaxed);
  }

  /// Accounts `bytes` of live PIL memory against the budget.
  [[nodiscard]] bool ChargeMemory(std::uint64_t bytes);
  /// Returns memory accounted by a matching ChargeMemory (freed PILs).
  void ReleaseMemory(std::uint64_t bytes);

  /// Accounts one level's candidate set against the per-level and total
  /// candidate caps.
  [[nodiscard]] bool ChargeLevelCandidates(std::uint64_t level_candidates);

  bool stopped() const {
    return reason() != TerminationReason::kCompleted;
  }
  TerminationReason reason() const {
    return reason_.load(std::memory_order_acquire);
  }

  std::uint64_t memory_in_use_bytes() const {
    return memory_in_use_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t memory_peak_bytes() const {
    return memory_peak_bytes_.load(std::memory_order_relaxed);
  }
  double elapsed_seconds() const { return watch_.ElapsedSeconds(); }

 private:
  /// Latches the first violation: later calls (from any thread) lose the
  /// compare-exchange and keep the original reason.
  void Stop(TerminationReason reason) {
    TerminationReason expected = TerminationReason::kCompleted;
    reason_.compare_exchange_strong(expected, reason,
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire);
  }

  // The capability-free design above only holds while these stay lock-free;
  // a platform where they silently degrade to mutex-backed atomics would
  // reintroduce the locking the annotations claim is absent.
  static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
                "MiningGuard's ledger must be lock-free atomics");
  static_assert(std::atomic<bool>::is_always_lock_free,
                "CancelToken's flag must be a lock-free atomic");

  ResourceLimits limits_;
  const CancelToken* cancel_;
  Stopwatch watch_;
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<std::uint64_t> memory_in_use_bytes_{0};
  std::atomic<std::uint64_t> memory_peak_bytes_{0};
  std::atomic<std::uint64_t> total_candidates_{0};
  std::atomic<TerminationReason> reason_{TerminationReason::kCompleted};
};

}  // namespace pgm

#endif  // PGM_CORE_GUARD_H_
