#ifndef PGM_CORE_GUARD_H_
#define PGM_CORE_GUARD_H_

#include <atomic>
#include <cstdint>

#include "util/limits.h"
#include "util/stopwatch.h"

namespace pgm {

/// Cooperative cancellation flag. The owner (e.g. a request handler) keeps
/// the token alive for the duration of the mining call and may flip it from
/// another thread; the miners poll it at level boundaries and every
/// MiningGuard::kTickPeriod PIL extensions.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Tracks a mining run against its ResourceLimits and an optional
/// CancelToken. All Charge*/Tick/CheckNow methods return true while mining
/// may continue; the first violation latches a sticky TerminationReason and
/// every later call returns false, so callers can unwind level by level.
///
/// The guard only observes — it never changes which candidates are generated
/// or how supports are counted — so a run that finishes without tripping any
/// limit is bit-identical to an ungoverned run.
class MiningGuard {
 public:
  /// PIL extensions between two wall-clock/cancellation polls. Power of two
  /// so the fast path of Tick() is a mask, not a division.
  static constexpr std::uint64_t kTickPeriod = 1 << 16;

  /// `cancel` may be null; when non-null it must outlive the guard.
  explicit MiningGuard(const ResourceLimits& limits,
                       const CancelToken* cancel = nullptr);

  /// Full check of deadline and cancellation. Used at level boundaries.
  bool CheckNow();

  /// Per-PIL-extension tick: a counter bump on the fast path, a full
  /// CheckNow() every kTickPeriod calls.
  bool Tick() {
    if (stopped()) return false;
    if ((++ticks_ & (kTickPeriod - 1)) != 0) return true;
    return CheckNow();
  }

  /// Accounts `bytes` of live PIL memory against the budget.
  bool ChargeMemory(std::uint64_t bytes);
  /// Returns memory accounted by a matching ChargeMemory (freed PILs).
  void ReleaseMemory(std::uint64_t bytes);

  /// Accounts one level's candidate set against the per-level and total
  /// candidate caps.
  bool ChargeLevelCandidates(std::uint64_t level_candidates);

  bool stopped() const { return reason_ != TerminationReason::kCompleted; }
  TerminationReason reason() const { return reason_; }

  std::uint64_t memory_in_use_bytes() const { return memory_in_use_bytes_; }
  std::uint64_t memory_peak_bytes() const { return memory_peak_bytes_; }
  double elapsed_seconds() const { return watch_.ElapsedSeconds(); }

 private:
  void Stop(TerminationReason reason) {
    if (!stopped()) reason_ = reason;
  }

  ResourceLimits limits_;
  const CancelToken* cancel_;
  Stopwatch watch_;
  std::uint64_t ticks_ = 0;
  std::uint64_t memory_in_use_bytes_ = 0;
  std::uint64_t memory_peak_bytes_ = 0;
  std::uint64_t total_candidates_ = 0;
  TerminationReason reason_ = TerminationReason::kCompleted;
};

}  // namespace pgm

#endif  // PGM_CORE_GUARD_H_
