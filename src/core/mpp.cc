#include <algorithm>

#include "core/miner.h"
#include "util/stopwatch.h"

namespace pgm {

StatusOr<MiningResult> MineMpp(const Sequence& sequence,
                               const MinerConfig& config) {
  PGM_RETURN_IF_ERROR(internal::ValidateConfig(sequence, config));
  PGM_ASSIGN_OR_RETURN(GapRequirement gap,
                       GapRequirement::Create(config.min_gap, config.max_gap));
  Stopwatch watch;
  MiningGuard guard(config.limits, config.cancel);
  internal::ObserverContext ctx(config.observer, "mpp",
                                KernelTierToString(config.kernel_tier));
  OffsetCounter counter(static_cast<std::int64_t>(sequence.size()), gap);

  // Algorithm line 3: clamp the user estimate to l1 ("if n > l1, n = l1");
  // user_n < 0 encodes "no estimate", the paper's worst case n = l1.
  std::int64_t n = config.user_n;
  if (n < 0 || n > counter.l1()) n = counter.l1();

  PGM_ASSIGN_OR_RETURN(
      MiningResult result,
      internal::RunLevelwise(sequence, config, counter, n,
                             internal::BuiltLevel{}, guard,
                             /*executor=*/nullptr, &ctx));
  result.mining_seconds = watch.ElapsedSeconds();
  result.total_seconds = result.mining_seconds;
  return result;
}

}  // namespace pgm
