#ifndef PGM_CORE_PATTERN_H_
#define PGM_CORE_PATTERN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/gap.h"
#include "seq/alphabet.h"
#include "util/status.h"

namespace pgm {

/// A periodic pattern a1 g(N,M) a2 ... g(N,M) al, stored in the paper's
/// shorthand form: just the character symbols, with the gap requirement
/// carried separately by the mining context (Section 3: "Since the mining
/// problem is defined with specified values of N and M, we use the shorthand
/// notation").
///
/// |P| (the length) is the number of characters; wildcards never count.
class Pattern {
 public:
  Pattern() = default;

  /// Builds from encoded symbols. All must be valid for `alphabet`.
  static StatusOr<Pattern> FromSymbols(std::vector<Symbol> symbols,
                                       const Alphabet& alphabet);

  /// Parses the shorthand notation, e.g. "ATC". Empty input is invalid.
  static StatusOr<Pattern> Parse(std::string_view shorthand,
                                 const Alphabet& alphabet);

  /// Parses the full wildcard notation, e.g. "A..T.C" where runs of '.' are
  /// gaps. Validates that the pattern begins and ends with characters and
  /// that every gap size lies within `gap` (the definition of a legal
  /// pattern under a fixed gap requirement).
  static StatusOr<Pattern> ParseFullNotation(std::string_view text,
                                             const Alphabet& alphabet,
                                             const GapRequirement& gap);

  /// Pattern length l = number of characters.
  std::size_t length() const { return symbols_.size(); }
  bool empty() const { return symbols_.empty(); }

  /// 0-based access to the i-th character symbol (the paper's P[i+1]).
  Symbol operator[](std::size_t i) const { return symbols_[i]; }
  const std::vector<Symbol>& symbols() const { return symbols_; }

  /// Character at index `i`.
  char CharAt(std::size_t i) const;

  /// prefix(P): the first l-1 characters. Requires length() >= 2.
  Pattern Prefix() const;

  /// suffix(P): the last l-1 characters. Requires length() >= 2.
  Pattern Suffix() const;

  /// The contiguous sub-pattern P[start..start+count) (0-based). Clamped to
  /// the pattern end.
  Pattern SubPattern(std::size_t start, std::size_t count) const;

  /// Shorthand notation, e.g. "ATC".
  std::string ToShorthand() const;

  /// Explicit notation with gap ranges, e.g. "Ag(9,12)Tg(9,12)C".
  std::string ToString(const GapRequirement& gap) const;

  const Alphabet& alphabet() const { return alphabet_; }

  /// Equality compares symbols and alphabets.
  bool operator==(const Pattern& other) const {
    return symbols_ == other.symbols_ && alphabet_ == other.alphabet_;
  }

  /// Lexicographic order on symbols then length (alphabets assumed equal);
  /// lets patterns live in ordered containers and keeps mining output stable.
  bool operator<(const Pattern& other) const {
    return symbols_ < other.symbols_;
  }

 private:
  Pattern(std::vector<Symbol> symbols, Alphabet alphabet)
      : symbols_(std::move(symbols)), alphabet_(std::move(alphabet)) {}

  std::vector<Symbol> symbols_;
  Alphabet alphabet_ = Alphabet::Dna();
};

}  // namespace pgm

#endif  // PGM_CORE_PATTERN_H_
