#ifndef PGM_CORE_VERIFIER_H_
#define PGM_CORE_VERIFIER_H_

#include <cstdint>
#include <vector>

#include "core/gap.h"
#include "core/pattern.h"
#include "core/pil.h"
#include "seq/sequence.h"
#include "util/status.h"

namespace pgm {

/// Independent support computation paths, used to cross-check the PIL-based
/// miners and available to library users who want to score a handful of
/// known patterns without running a full mining pass.

/// Counts sup(P) by backward dynamic programming over positions:
/// ways(j, x) = [S[x] == P[j]] * sum of ways(j+1, x') over the gap window.
/// O(l * L * W) time, O(L) space, saturating at 2^64-1.
/// Fails when the pattern's alphabet differs from the sequence's.
StatusOr<SupportInfo> CountSupport(const Sequence& sequence,
                                   const Pattern& pattern,
                                   const GapRequirement& gap);

/// Computes PIL(P) directly (same DP, reporting per-first-offset counts).
StatusOr<PartialIndexList> ComputePil(const Sequence& sequence,
                                      const Pattern& pattern,
                                      const GapRequirement& gap);

/// Extension beyond the paper's uniform-gap model: counts sup(P) when each
/// of the l-1 gaps carries its own requirement `gaps[j]` (the paper's
/// introduction motivates per-gap flexibility as a way to model bounded
/// insertions/deletions within individual periods). The level-wise miners
/// keep the uniform model (their N_l/λ theory depends on it); this scorer
/// lets users verify a handful of candidate patterns under the richer
/// constraint. Requires gaps.size() == pattern.length() - 1.
StatusOr<SupportInfo> CountSupportWithGapVector(
    const Sequence& sequence, const Pattern& pattern,
    const std::vector<GapRequirement>& gaps);

/// Test reference: enumerates matching offset sequences explicitly (DFS,
/// exponential in pattern length; small inputs only). Offset sequences are
/// 0-based and returned in lexicographic order. At most `limit` sequences
/// are produced (0 = unlimited).
std::vector<std::vector<std::int64_t>> EnumerateMatches(
    const Sequence& sequence, const Pattern& pattern,
    const GapRequirement& gap, std::size_t limit = 0);

}  // namespace pgm

#endif  // PGM_CORE_VERIFIER_H_
