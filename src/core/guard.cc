#include "core/guard.h"

#include <algorithm>

#include "util/saturating.h"

namespace pgm {

MiningGuard::MiningGuard(const ResourceLimits& limits,
                         const CancelToken* cancel)
    : limits_(limits), cancel_(cancel) {}

bool MiningGuard::CheckNow() {
  if (stopped()) return false;
  if (cancel_ != nullptr && cancel_->cancelled()) {
    Stop(TerminationReason::kCancelled);
    return false;
  }
  if (limits_.deadline_ms >= 0 &&
      watch_.ElapsedMicros() >= limits_.deadline_ms * 1000) {
    Stop(TerminationReason::kDeadline);
    return false;
  }
  return true;
}

bool MiningGuard::ChargeMemory(std::uint64_t bytes) {
  memory_in_use_bytes_ = SatAdd(memory_in_use_bytes_, bytes);
  memory_peak_bytes_ = std::max(memory_peak_bytes_, memory_in_use_bytes_);
  if (stopped()) return false;
  if (limits_.pil_memory_budget_bytes > 0 &&
      memory_in_use_bytes_ > limits_.pil_memory_budget_bytes) {
    Stop(TerminationReason::kMemoryBudget);
    return false;
  }
  return true;
}

void MiningGuard::ReleaseMemory(std::uint64_t bytes) {
  memory_in_use_bytes_ -= std::min(memory_in_use_bytes_, bytes);
}

bool MiningGuard::ChargeLevelCandidates(std::uint64_t level_candidates) {
  total_candidates_ = SatAdd(total_candidates_, level_candidates);
  if (stopped()) return false;
  if (limits_.max_level_candidates > 0 &&
      level_candidates > limits_.max_level_candidates) {
    Stop(TerminationReason::kCandidateCap);
    return false;
  }
  if (limits_.max_total_candidates > 0 &&
      total_candidates_ > limits_.max_total_candidates) {
    Stop(TerminationReason::kCandidateCap);
    return false;
  }
  return true;
}

}  // namespace pgm
