#include "core/guard.h"

#include <algorithm>

#include "util/saturating.h"

namespace pgm {

MiningGuard::MiningGuard(const ResourceLimits& limits,
                         const CancelToken* cancel)
    : limits_(limits), cancel_(cancel) {}

bool MiningGuard::CheckNow() {
  if (stopped()) return false;
  if (cancel_ != nullptr && cancel_->cancelled()) {
    Stop(TerminationReason::kCancelled);
    return false;
  }
  if (limits_.deadline_ms >= 0 &&
      watch_.ElapsedMicros() >= limits_.deadline_ms * 1000) {
    Stop(TerminationReason::kDeadline);
    return false;
  }
  return true;
}

bool MiningGuard::ChargeMemory(std::uint64_t bytes) {
  std::uint64_t current = memory_in_use_bytes_.load(std::memory_order_relaxed);
  std::uint64_t updated;
  do {
    updated = SatAdd(current, bytes);
  } while (!memory_in_use_bytes_.compare_exchange_weak(
      current, updated, std::memory_order_relaxed));
  std::uint64_t peak = memory_peak_bytes_.load(std::memory_order_relaxed);
  while (peak < updated &&
         !memory_peak_bytes_.compare_exchange_weak(
             peak, updated, std::memory_order_relaxed)) {
  }
  if (stopped()) return false;
  if (limits_.pil_memory_budget_bytes > 0 &&
      updated > limits_.pil_memory_budget_bytes) {
    Stop(TerminationReason::kMemoryBudget);
    return false;
  }
  return true;
}

void MiningGuard::ReleaseMemory(std::uint64_t bytes) {
  std::uint64_t current = memory_in_use_bytes_.load(std::memory_order_relaxed);
  std::uint64_t updated;
  do {
    updated = current - std::min(current, bytes);
  } while (!memory_in_use_bytes_.compare_exchange_weak(
      current, updated, std::memory_order_relaxed));
}

bool MiningGuard::ChargeLevelCandidates(std::uint64_t level_candidates) {
  std::uint64_t current = total_candidates_.load(std::memory_order_relaxed);
  std::uint64_t updated;
  do {
    updated = SatAdd(current, level_candidates);
  } while (!total_candidates_.compare_exchange_weak(
      current, updated, std::memory_order_relaxed));
  if (stopped()) return false;
  if (limits_.max_level_candidates > 0 &&
      level_candidates > limits_.max_level_candidates) {
    Stop(TerminationReason::kCandidateCap);
    return false;
  }
  if (limits_.max_total_candidates > 0 &&
      updated > limits_.max_total_candidates) {
    Stop(TerminationReason::kCandidateCap);
    return false;
  }
  return true;
}

}  // namespace pgm
