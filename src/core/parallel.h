#ifndef PGM_CORE_PARALLEL_H_
#define PGM_CORE_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/candidate_index.h"
#include "core/gap.h"
#include "core/guard.h"
#include "core/kernel.h"
#include "core/pil_arena.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace pgm {
namespace internal {

class ObserverContext;

/// One joined candidate, handed to the consumer in candidate order. `span`
/// is scratch in the output arena (above its watermark): the consumer
/// Promote()s it to retain the candidate, or simply returns to drop it —
/// scratch is reclaimed wholesale after the block, so dropping costs
/// nothing and there is no per-candidate charge to hand back.
struct JoinedCandidate {
  /// Index into the join's left entry table.
  std::uint32_t left = 0;
  /// Index into the join's right entry table.
  std::uint32_t right = 0;
  /// The candidate's PIL rows in the output arena (scratch).
  PilSpan span;
  /// sup of the candidate, computed inside the join kernel.
  SupportInfo support;
};

/// Serial, in-candidate-order consumer of joined candidates. May call
/// Promote on the output arena (and nothing else on it).
using JoinSink = std::function<Status(const JoinedCandidate&)>;

/// Data-parallel execution of one level's join plan — a pipeline, not a
/// barrier.
///
/// The plan is pre-sliced (serially, from the plan alone) into "pieces":
/// slices of one task's rights range sized by output rows (left-PIL length
/// × candidates, targeting kPieceRowsTarget), each one call of the
/// prefix-group kernel (core/pil_arena.h). Pieces are grouped in plan order
/// into "blocks" sized by the same row measure (kBlockRowsTarget), so a
/// skewed prefix group costs proportionally many blocks instead of
/// straggling inside one. Slicing depends only on the plan, never on the
/// schedule or the thread count.
///
/// Execution runs the whole level inside ONE ThreadPool::Execute call.
/// Worker 0 — the caller thread — is the driver: it publishes blocks into a
/// bounded ring of reserved scratch (assigning every piece a disjoint
/// output-arena slice), merges completed pieces through the sink strictly
/// in piece order, and fills pieces itself whenever the merge head is
/// waiting on someone else's piece. The other workers loop claiming pieces
/// off a shared cursor (claim order = plan order) and filling their
/// pre-assigned slices. Publication is the release-store of the claimable
/// piece limit; completion is a per-piece state flag the driver
/// acquire-loads before reading the piece's rows — so the merge overlaps
/// in-flight joins instead of waiting for a level-wide barrier.
///
/// Ring bound / arena protocol: the driver reserves a scratch window of
/// kWindowRowsTarget rows (at least one block) ahead of the watermark and
/// publishes blocks only while they fit; when the window is exhausted and
/// every published piece has merged, it truncates the dead scratch and
/// recycles the window. Reserve() — the only call that may reallocate the
/// buffer — therefore runs only while no piece is in flight, which is what
/// makes the workers' raw row pointers stable. Promote() compacts merged
/// rows onto the watermark, which never overtakes an unmerged piece's slice
/// because retained rows never exceed the scratch they came from.
///
/// Ordering argument (the byte-identical `--threads` contract): the sink
/// sees candidates exactly in plan order regardless of which worker filled
/// them, kernel arithmetic is schedule-independent, and scratch offsets
/// never reach the output (Promote assigns final spans in merge order). An
/// uninterrupted run is therefore byte-identical at every thread count.
///
/// Guard interaction: a worker charges a claimed piece's candidates with
/// one TickN(count) before filling; a refused batch (trip) abandons the
/// piece and refunds the ticks, so the guard's tick total equals the
/// candidates actually delivered to the sink. After a trip the driver stops
/// publishing, drains the published window (filled pieces still reach the
/// sink — the work was paid for), and reports *interrupted. A Reserve()
/// that trips the memory budget latches at a window boundary, where the
/// pipeline is empty by construction — so memory-budget truncation points
/// are deterministic and the delivered prefix is byte-identical at every
/// thread count; tick-based trips keep the documented latitude (the
/// delivered set may differ between thread counts, never its soundness).
///
/// Thread-safety shape: the executor's mutex/condvars exist only to park
/// idle threads (workers waiting for publication, the driver waiting for
/// the merge head's piece); every data handoff is lock-free — the claim
/// cursor, the publication limit (release/acquire), the per-piece state
/// flags (release/acquire), and disjoint pre-assigned arena slices. The
/// sink and all arena mutation run on the driver (= caller) thread only;
/// the `arena-scratch` lint rule plus PilArena's runtime asserts enforce
/// the scratch bracket, and the TSan `concurrency` suite checks the
/// handoff.
class ParallelLevelExecutor {
 public:
  /// `threads` follows MinerConfig::threads: 1 = serial (no pool), 0 = one
  /// worker per hardware thread, T > 1 = exactly T workers.
  explicit ParallelLevelExecutor(std::int64_t threads);
  ~ParallelLevelExecutor();

  ParallelLevelExecutor(const ParallelLevelExecutor&) = delete;
  ParallelLevelExecutor& operator=(const ParallelLevelExecutor&) = delete;

  /// Worker count (1 when serial).
  std::size_t num_threads() const;

  /// Attaches the recording context that receives one shard-timing trace
  /// event per ExecuteJoin call (wall-clock and worker count — the volatile
  /// part of the trace). Null (the default) disables recording; the context
  /// must outlive the executor's use.
  void set_observer(ObserverContext* ctx) { ctx_ = ctx; }

  /// Runs `plan` — every candidate left_entries[t.left] ⋈
  /// right_entries[rights_pool[r]] under `gap` — writing candidate PILs
  /// into `out` and feeding the results to `sink` serially, in plan order.
  /// `left_arena`/`right_arena` back the entries' spans and may alias each
  /// other (the level self-join) but never `out`. `kernel` is the resolved
  /// join-kernel implementation (ResolveKernel, core/kernel.h) every piece
  /// of this level runs — all tiers produce byte-identical rows and
  /// supports, so the choice never affects results, only speed. `guard` may
  /// be null (ungoverned build). Returns a non-OK status only when the sink
  /// fails; *interrupted is set when the guard tripped, in which case the
  /// sink saw a sound subset of the candidates. On return `out` holds
  /// exactly the spans the sink promoted (scratch is truncated on every
  /// path).
  Status ExecuteJoin(const std::vector<ArenaEntry>& left_entries,
                     const PilArena& left_arena,
                     const std::vector<ArenaEntry>& right_entries,
                     const PilArena& right_arena, const JoinPlan& plan,
                     const GapRequirement& gap, KernelImpl kernel,
                     MiningGuard* guard, PilArena& out, const JoinSink& sink,
                     bool* interrupted);

  /// Data-parallel loop over [0, n) on this executor's pool (inline when
  /// serial): ThreadPool::ParallelFor with its disjoint-writes discipline.
  /// The serial phases of the level loop — first-level construction,
  /// candidate-generation probing, support thresholding — run through this.
  void ParallelFor(std::size_t n, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  std::unique_ptr<ThreadPool> pool_;  // null when serial
  ObserverContext* ctx_ = nullptr;
};

}  // namespace internal
}  // namespace pgm

#endif  // PGM_CORE_PARALLEL_H_
