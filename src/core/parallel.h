#ifndef PGM_CORE_PARALLEL_H_
#define PGM_CORE_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/candidate_index.h"
#include "core/gap.h"
#include "core/guard.h"
#include "core/pil_arena.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace pgm {
namespace internal {

class ObserverContext;

/// One joined candidate, handed to the consumer in candidate order. `span`
/// is scratch in the output arena (above its watermark): the consumer
/// Promote()s it to retain the candidate, or simply returns to drop it —
/// scratch is reclaimed wholesale after the block, so dropping costs
/// nothing and there is no per-candidate charge to hand back.
struct JoinedCandidate {
  /// Index into the join's left entry table.
  std::uint32_t left = 0;
  /// Index into the join's right entry table.
  std::uint32_t right = 0;
  /// The candidate's PIL rows in the output arena (scratch).
  PilSpan span;
  /// sup of the candidate, computed inside the join kernel.
  SupportInfo support;
};

/// Serial, in-candidate-order consumer of joined candidates. May call
/// Promote on the output arena (and nothing else on it).
using JoinSink = std::function<Status(const JoinedCandidate&)>;

/// Data-parallel execution of one level's join plan.
///
/// The plan's tasks are sliced into "pieces" of at most kChunkSize
/// candidates sharing one left pattern; each piece is one call of the
/// prefix-group kernel (core/pil_arena.h), so a left PIL is streamed once
/// per piece instead of once per candidate. Slicing depends only on the
/// plan, never on the schedule, and the serial merge consumes pieces in
/// plan order — so a run that no resource limit interrupts produces
/// byte-identical results at every thread count.
///
/// Execution proceeds in blocks of pieces. Per block: the caller thread
/// Reserve()s the block's worst-case rows in the output arena (one slice of
/// left-PIL length per candidate) and assigns every piece its slice —
/// workers never allocate, and the arena buffer is stable while they write.
/// Workers then drain pieces off an atomic counter into their disjoint
/// slices; the sink consumes the block serially in piece order, promoting
/// what it keeps; TruncateToWatermark() reclaims the rest. The block size
/// bounds the scratch rows live beyond the retained set.
///
/// Guard interaction: workers Tick() per candidate. When the guard trips,
/// workers stop claiming pieces; every piece already filled still reaches
/// the sink (delivering the work already paid for), and the level stops
/// after the current block. A Reserve() that trips the memory budget
/// likewise finishes its block first. Under an interrupting limit the set
/// of delivered candidates may differ between thread counts — the
/// documented partial-result latitude, never unsoundness.
///
/// Thread-safety shape (why there is no PGM_GUARDED_BY state here): the
/// executor deliberately owns no mutex. Workers communicate through an
/// atomic piece counter and write disjoint, pre-reserved arena slices; the
/// sink and all arena mutation run on the caller thread only. The
/// cross-thread invariants therefore live outside the capability system:
/// the `arena-scratch` lint rule plus PilArena's runtime asserts enforce
/// the scratch bracket, and the TSan `concurrency` suite checks the
/// handoff. (Same reasoning as MiningGuard's all-atomic ledger — see
/// core/guard.h.)
class ParallelLevelExecutor {
 public:
  /// `threads` follows MinerConfig::threads: 1 = serial (no pool), 0 = one
  /// worker per hardware thread, T > 1 = exactly T workers.
  explicit ParallelLevelExecutor(std::int64_t threads);
  ~ParallelLevelExecutor();

  ParallelLevelExecutor(const ParallelLevelExecutor&) = delete;
  ParallelLevelExecutor& operator=(const ParallelLevelExecutor&) = delete;

  /// Worker count (1 when serial).
  std::size_t num_threads() const;

  /// Attaches the recording context that receives one shard-timing trace
  /// event per ExecuteJoin call (wall-clock and worker count — the volatile
  /// part of the trace). Null (the default) disables recording; the context
  /// must outlive the executor's use.
  void set_observer(ObserverContext* ctx) { ctx_ = ctx; }

  /// Runs `plan` — every candidate left_entries[t.left] ⋈
  /// right_entries[rights_pool[r]] under `gap` — writing candidate PILs
  /// into `out` and feeding the results to `sink` serially, in plan order.
  /// `left_arena`/`right_arena` back the entries' spans and may alias each
  /// other (the level self-join) but never `out`. `guard` may be null
  /// (ungoverned build). Returns a non-OK status only when the sink fails;
  /// *interrupted is set when the guard tripped, in which case the sink saw
  /// a sound subset of the candidates. On return `out` holds exactly the
  /// spans the sink promoted (scratch is truncated on every path).
  Status ExecuteJoin(const std::vector<ArenaEntry>& left_entries,
                     const PilArena& left_arena,
                     const std::vector<ArenaEntry>& right_entries,
                     const PilArena& right_arena, const JoinPlan& plan,
                     const GapRequirement& gap, MiningGuard* guard,
                     PilArena& out, const JoinSink& sink, bool* interrupted);

 private:
  std::unique_ptr<ThreadPool> pool_;  // null when serial
  ObserverContext* ctx_ = nullptr;
};

}  // namespace internal
}  // namespace pgm

#endif  // PGM_CORE_PARALLEL_H_
