#ifndef PGM_CORE_PARALLEL_H_
#define PGM_CORE_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/gap.h"
#include "core/guard.h"
#include "core/pil.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace pgm {
namespace internal {

class ObserverContext;

/// A pattern under construction: its encoded symbols (one byte per Symbol,
/// usable as a hash key) and its PIL.
struct LevelEntry {
  std::string symbols;
  PartialIndexList pil;
};

/// One level-join candidate: `symbols` is the joined pattern, whose PIL is
/// Combine(left_level[left].pil, right_level[right].pil).
struct CandidateSpec {
  std::string symbols;
  std::uint32_t left;
  std::uint32_t right;
};

/// Generates the join of `level` with itself: for every pair (P1, P2) with
/// suffix(P1) == prefix(P2), the candidate P1[0] + P2. Returns tuples of
/// (candidate symbols, index of P1, index of P2). Works uniformly for all
/// lengths: joining length-1 entries keys on the empty string, i.e. the
/// full cross product.
std::vector<CandidateSpec> GenerateCandidates(
    const std::vector<LevelEntry>& level);

/// One combined candidate, handed to the consumer in candidate order.
struct EvaluatedCandidate {
  LevelEntry entry;
  SupportInfo support;
  /// Heap bytes of entry.pil, already charged to the guard. The consumer
  /// owns the charge: keep it for retained entries, ReleaseMemory it for
  /// dropped ones.
  std::uint64_t bytes = 0;
  /// False when this candidate's charge tripped the memory budget. The
  /// consumer still sees the candidate (its PIL is live and its support
  /// exact — recording it keeps strictly more of the work already paid
  /// for), but the level stops after the current block.
  bool within_budget = true;
};

/// Serial, in-candidate-order consumer of evaluated candidates.
using CandidateSink = std::function<Status(EvaluatedCandidate&&)>;

/// Data-parallel evaluation of one level's candidate list.
///
/// Each level's CandidateSpecs are independent — evaluating one is a pure
/// PartialIndexList::Combine plus a support sum — so the executor shards
/// them across a ThreadPool and merges the outputs back in candidate order.
/// Because the merge order equals the serial processing order, a run that
/// no resource limit interrupts produces byte-identical results at every
/// thread count (there is no work stealing whose schedule could leak into
/// the output).
///
/// Evaluation proceeds in fixed-size blocks: workers drain a block's chunks
/// off an atomic counter, then the sink consumes the block serially. The
/// block size bounds how many candidate PILs are live beyond the retained
/// set, so the memory high-water stays close to the serial path's
/// |retained| + O(threads) instead of ballooning to |C_l|.
///
/// Guard interaction: workers Tick() per candidate and charge each combined
/// PIL's bytes before publishing it. When the guard trips, workers stop
/// picking up new candidates; every candidate already evaluated still
/// reaches the sink (its charge must be owned by someone), so the ledger
/// stays balanced and the partial result stays sound. Under an interrupting
/// limit the set of evaluated candidates may differ between thread counts —
/// that is the documented partial-result latitude, never unsoundness.
class ParallelLevelExecutor {
 public:
  /// `threads` follows MinerConfig::threads: 1 = serial (no pool), 0 = one
  /// worker per hardware thread, T > 1 = exactly T workers.
  explicit ParallelLevelExecutor(std::int64_t threads);
  ~ParallelLevelExecutor();

  ParallelLevelExecutor(const ParallelLevelExecutor&) = delete;
  ParallelLevelExecutor& operator=(const ParallelLevelExecutor&) = delete;

  /// Worker count (1 when serial).
  std::size_t num_threads() const;

  /// Attaches the recording context that receives one shard-timing trace
  /// event per EvaluateCandidates call (wall-clock and worker count — the
  /// volatile part of the trace). Null (the default) disables recording;
  /// the context must outlive the executor's use.
  void set_observer(ObserverContext* ctx) { ctx_ = ctx; }

  /// Combines every spec (left_level[left] ⋈ right_level[right]) under
  /// `gap` and feeds the results to `sink` serially, in spec order. `guard`
  /// may be null (ungoverned build). Returns a non-OK status only when the
  /// sink fails; *interrupted is set when the guard tripped, in which case
  /// the sink saw a sound subset of the candidates.
  Status EvaluateCandidates(const std::vector<LevelEntry>& left_level,
                            const std::vector<LevelEntry>& right_level,
                            std::vector<CandidateSpec> specs,
                            const GapRequirement& gap, MiningGuard* guard,
                            const CandidateSink& sink, bool* interrupted);

 private:
  std::unique_ptr<ThreadPool> pool_;  // null when serial
  ObserverContext* ctx_ = nullptr;
};

}  // namespace internal
}  // namespace pgm

#endif  // PGM_CORE_PARALLEL_H_
