#ifndef PGM_CORE_PIL_H_
#define PGM_CORE_PIL_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "core/gap.h"
#include "seq/sequence.h"
#include "util/saturating.h"

namespace pgm {

/// One entry of a partial index list: there are exactly `count` offset
/// sequences of the pattern whose first offset is `pos` (0-based).
struct PilEntry {
  std::uint32_t pos;
  std::uint64_t count;

  bool operator==(const PilEntry& other) const {
    return pos == other.pos && count == other.count;
  }
};

// `pos` is 32 bits, so a PIL can only index sequences whose last position
// fits in it. Sequence construction and ValidateConfig reject anything
// longer (kMaxSequenceLength in seq/sequence.h); this assert ties that
// limit to the field so widening one without the other fails to compile
// instead of silently truncating positions.
static_assert(kMaxSequenceLength - 1 <=
                  std::numeric_limits<decltype(PilEntry::pos)>::max(),
              "PilEntry::pos must be able to index every position of a "
              "maximum-length sequence; update kMaxSequenceLength and "
              "PilEntry::pos together");

/// Aggregate support of a pattern together with an overflow indicator.
struct SupportInfo {
  /// Total number of matching offset sequences, clamped at 2^64-1.
  std::uint64_t count = 0;
  /// True when `count` hit the clamp (degenerate inputs only).
  bool saturated = false;
};

/// sup over a row range: the saturating sum of the entries' counts. The one
/// support computation both PIL representations (heap-backed
/// PartialIndexList and arena spans) share, so their results are identical
/// by construction.
SupportInfo SupportOfRows(const PilEntry* rows, std::size_t len);

namespace internal {

/// Sliding-window accumulator over suffix-PIL counts. Saturated entries are
/// tracked separately so the running sum stays exact under removal. Shared
/// by PartialIndexList::Combine and the arena group-join kernel
/// (core/pil_arena.h) — one definition, identical arithmetic.
class WindowSum {
 public:
  void Add(std::uint64_t count) {
    if (IsSaturated(count)) {
      ++num_saturated_;
    } else {
      sum_ += count;
    }
  }

  void Remove(std::uint64_t count) {
    if (IsSaturated(count)) {
      --num_saturated_;
    } else {
      sum_ -= count;
    }
  }

  /// Current window total, clamped at 2^64-1.
  std::uint64_t Total() const {
    if (num_saturated_ > 0) return kSaturatedCount;
    if (sum_ >= static_cast<unsigned __int128>(kSaturatedCount)) {
      return kSaturatedCount;
    }
    return static_cast<std::uint64_t>(sum_);
  }

 private:
  // Sum of non-saturated counts. Entries are < 2^64 and there are < 2^32 of
  // them, so the exact sum fits comfortably in 128 bits.
  unsigned __int128 sum_ = 0;
  std::uint64_t num_saturated_ = 0;
};

}  // namespace internal

/// The partial index list (PIL) of Section 5.1: for a pattern P over a
/// subject sequence S, a sorted list of (x, y) pairs meaning "y offset
/// sequences of the form [x, c2, ..., cl] match P". The PIL supports the
/// two operations the paper identifies:
///
///   1. sup(P) = sum of all y (TotalSupport).
///   2. PIL(P) is computable from PIL(prefix(P)) and PIL(suffix(P)) alone
///      (Combine) — this is what makes the level-wise join cheap.
class PartialIndexList {
 public:
  PartialIndexList() = default;

  /// PIL of a length-1 pattern: one entry of count 1 per occurrence of
  /// `symbol` in `sequence`.
  static PartialIndexList ForSymbol(const Sequence& sequence, Symbol symbol);

  /// PIL(P) from PIL(prefix(P)) and PIL(suffix(P)) under `gap`, using the
  /// paper's procedure with a sliding-window sum (O(|prefix| + |suffix|)):
  /// for each (x, y) in the prefix list, t = sum of y' over suffix entries
  /// (x', y') with x' - x - 1 in [N, M]; emit (x, t) when t > 0.
  static PartialIndexList Combine(const PartialIndexList& prefix_pil,
                                  const PartialIndexList& suffix_pil,
                                  const GapRequirement& gap);

  /// Builds directly from entries; they must be sorted by pos with positive
  /// counts (assert-checked in debug builds). Test helper.
  static PartialIndexList FromEntries(std::vector<PilEntry> entries);

  const std::vector<PilEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// sup(P): the saturating sum of all counts.
  SupportInfo TotalSupport() const;

  /// Approximate heap footprint, for the miners' memory accounting.
  std::size_t MemoryBytes() const {
    return entries_.capacity() * sizeof(PilEntry);
  }

  bool operator==(const PartialIndexList& other) const {
    return entries_ == other.entries_;
  }

 private:
  std::vector<PilEntry> entries_;
};

}  // namespace pgm

#endif  // PGM_CORE_PIL_H_
