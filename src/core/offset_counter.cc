#include "core/offset_counter.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/saturating.h"

namespace pgm {

namespace {

/// f(l, i) row for i in [1, (l-1)(W-1)], advanced one level at a time via
/// Equation 8: f(k+1, i) = sum_{j=1..W} f(k, i-W+j). Outside the stored
/// range, f(k, i<=0) = W^(k-1) and f(k, i > (k-1)(W-1)) = 0.
std::vector<long double> AdvanceRow(const std::vector<long double>& prev_row,
                                    std::int64_t prev_level, std::int64_t w) {
  const std::int64_t prev_len = (prev_level - 1) * (w - 1);
  assert(static_cast<std::int64_t>(prev_row.size()) == prev_len);
  const long double w_pow_prev = std::pow(static_cast<long double>(w),
                                          static_cast<long double>(prev_level - 1));

  // Prefix sums over the stored region: pre[d] = sum of prev_row[0..d-1].
  std::vector<long double> pre(prev_len + 1, 0.0L);
  for (std::int64_t d = 0; d < prev_len; ++d) pre[d + 1] = pre[d] + prev_row[d];

  const std::int64_t next_len = prev_level * (w - 1);
  std::vector<long double> next(next_len, 0.0L);
  for (std::int64_t i = 1; i <= next_len; ++i) {
    const std::int64_t lo = i - w + 1;  // delta range [lo, i]
    const std::int64_t hi = i;
    long double total = 0.0L;
    if (lo <= 0) {
      const std::int64_t num_nonpositive = std::min<std::int64_t>(hi, 0) - lo + 1;
      total += static_cast<long double>(num_nonpositive) * w_pow_prev;
    }
    const std::int64_t a = std::max<std::int64_t>(1, lo);
    const std::int64_t b = std::min<std::int64_t>(prev_len, hi);
    if (a <= b) total += pre[b] - pre[a - 1];
    next[i - 1] = total;
  }
  return next;
}

}  // namespace

OffsetCounter::OffsetCounter(std::int64_t sequence_length,
                             const GapRequirement& gap)
    : sequence_length_(std::max<std::int64_t>(0, sequence_length)),
      gap_(gap),
      l1_(gap.MaxGuaranteedLength(sequence_length_)),
      l2_(gap.MaxPossibleLength(sequence_length_)) {}

void OffsetCounter::EnsureComputed(std::int64_t length) const {
  const std::int64_t target = std::min(length, l2_);
  const std::int64_t w = gap_.flexibility();
  const long double half_period =
      (static_cast<long double>(gap_.max_gap() + gap_.min_gap())) / 2.0L + 1.0L;
  for (std::int64_t l = computed_through_ + 1; l <= target; ++l) {
    long double value = 0.0L;
    if (l <= l1_) {
      // Theorem 4 closed form.
      value = (static_cast<long double>(sequence_length_) -
               static_cast<long double>(l - 1) * half_period) *
              std::pow(static_cast<long double>(w),
                       static_cast<long double>(l - 1));
    } else {
      // Case 3 (l1 < l <= l2): count by dynamic programming over positions,
      // row_[p] = number of length-`row_level_` offset sequences starting
      // at p. All additions are of like-magnitude positive terms, so the
      // values stay exact as long as they fit the 64-bit mantissa (unlike
      // the f(l, i) recurrence, whose prefix sums mix the unclipped
      // W^(l-1) base with tiny boundary terms).
      if (row_level_ == 0) {
        row_.assign(static_cast<std::size_t>(sequence_length_), 1.0L);
        row_level_ = 1;
      }
      while (row_level_ < l) {
        std::vector<long double> next(row_.size(), 0.0L);
        for (std::int64_t p = 0; p < sequence_length_; ++p) {
          const std::int64_t lo = p + gap_.min_gap() + 1;
          const std::int64_t hi =
              std::min<std::int64_t>(sequence_length_ - 1, p + gap_.max_gap() + 1);
          long double total = 0.0L;
          for (std::int64_t q = lo; q <= hi; ++q) total += row_[q];
          next[p] = total;
        }
        row_.swap(next);
        ++row_level_;
      }
      for (const long double v : row_) value += v;
    }
    counts_.push_back(value);
    computed_through_ = l;
  }
}

long double OffsetCounter::Count(std::int64_t length) const {
  if (length < 1 || length > l2_) return 0.0L;
  EnsureComputed(length);
  return counts_[length - 1];
}

long double OffsetCounter::Lambda(std::int64_t length, std::int64_t d) const {
  assert(d >= 0 && d < length);
  const long double numerator = Count(length);
  const long double denominator =
      Count(length - d) * std::pow(static_cast<long double>(gap_.flexibility()),
                                   static_cast<long double>(d));
  if (denominator <= 0.0L) return 0.0L;
  long double lambda = numerator / denominator;
  // W^d can overflow even long double's huge exponent range for extreme d;
  // an infinite denominator (or inf/inf) collapses λ to the sound value 0
  // (no pruning).
  if (!std::isfinite(lambda) || lambda < 0.0L) return 0.0L;
  if (lambda > 1.0L) lambda = 1.0L;
  return lambda;
}

long double OffsetCounter::LambdaPrime(std::int64_t length, std::int64_t d,
                                       std::int64_t m, std::uint64_t em) const {
  assert(m >= 1);
  assert(em >= 1);
  const std::int64_t s = d / m;
  const long double wm = std::pow(static_cast<long double>(gap_.flexibility()),
                                  static_cast<long double>(m));
  const long double tightening =
      std::pow(wm / static_cast<long double>(em), static_cast<long double>(s));
  return tightening * Lambda(length, d);
}

long double OffsetCounter::F(std::int64_t length, std::int64_t i) const {
  assert(length >= 1);
  const std::int64_t w = gap_.flexibility();
  if (i <= 0) {
    return std::pow(static_cast<long double>(w),
                    static_cast<long double>(length - 1));
  }
  if (i > (length - 1) * (w - 1)) return 0.0L;
  // Test-facing API: rebuild rows from scratch (cheap at test sizes).
  std::vector<long double> row;  // level-1 row is empty
  for (std::int64_t level = 1; level < length; ++level) {
    row = AdvanceRow(row, level, w);
  }
  return row[i - 1];
}

std::uint64_t BruteForceCountOffsetSequences(std::int64_t sequence_length,
                                             const GapRequirement& gap,
                                             std::int64_t length) {
  if (length < 1 || sequence_length < 1) return 0;
  const std::int64_t L = sequence_length;
  // counts[p] = number of length-k offset sequences starting at position p.
  std::vector<std::uint64_t> counts(L, 1);
  for (std::int64_t k = 2; k <= length; ++k) {
    std::vector<std::uint64_t> next(L, 0);
    for (std::int64_t p = 0; p < L; ++p) {
      std::uint64_t total = 0;
      const std::int64_t lo = p + gap.min_gap() + 1;
      const std::int64_t hi = std::min<std::int64_t>(L - 1, p + gap.max_gap() + 1);
      for (std::int64_t q = lo; q <= hi; ++q) {
        total = SatAdd(total, counts[q]);
      }
      next[p] = total;
    }
    counts.swap(next);
  }
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total = SatAdd(total, c);
  return total;
}

}  // namespace pgm
