#include "core/em.h"

#include <algorithm>
#include <map>
#include <string>

#include "util/saturating.h"

namespace pgm {

namespace {

/// A DFS state: positions reachable after matching some character string,
/// each with the number of offset-sequence prefixes that land on it.
/// Position vectors stay sorted; the window spans at most
/// depth * (M+1) + 1 positions so states stay small.
struct StateEntry {
  std::int64_t pos;
  std::uint64_t count;
};

/// Exact K_r search with branch and bound. `psi[k][p]` is an upper bound on
/// the maximum single-string multiplicity reachable from position p in k
/// further gapped steps:
///
///   psi[0][p] = 1
///   psi[k][p] = max over chars c of sum of psi[k-1][q]
///               for q in [p+N+1, p+M+1] with S[q] = c.
///
/// It over-counts only because it lets every parent pick its best character
/// independently, so sum(count_p * psi[rem][p]) bounds every leaf below a
/// state — tight enough to cut almost everything in low-multiplicity
/// regions.
class KrSearcher {
 public:
  KrSearcher(const Sequence& sequence, const GapRequirement& gap,
             std::int64_t m)
      : sequence_(sequence), gap_(gap), m_(m) {
    const std::size_t L = sequence.size();
    psi_.assign(static_cast<std::size_t>(m) + 1,
                std::vector<std::uint64_t>(L, 0));
    for (std::size_t p = 0; p < L; ++p) psi_[0][p] = 1;
    const std::size_t num_symbols = sequence.alphabet().size();
    std::vector<std::uint64_t> per_char(num_symbols);
    for (std::int64_t k = 1; k <= m; ++k) {
      for (std::int64_t p = 0; p < static_cast<std::int64_t>(L); ++p) {
        std::fill(per_char.begin(), per_char.end(), 0);
        const std::int64_t lo = p + gap.min_gap() + 1;
        const std::int64_t hi =
            std::min<std::int64_t>(static_cast<std::int64_t>(L) - 1,
                                   p + gap.max_gap() + 1);
        std::uint64_t best = 0;
        for (std::int64_t q = lo; q <= hi; ++q) {
          std::uint64_t& slot = per_char[sequence[q]];
          slot = SatAdd(slot, psi_[k - 1][q]);
          best = std::max(best, slot);
        }
        psi_[k][p] = best;
      }
    }
  }

  /// Upper bound on K_r before searching.
  std::uint64_t Bound(std::size_t r) const { return psi_[m_][r]; }

  /// Exact K_r.
  std::uint64_t Search(std::size_t r) const {
    std::vector<StateEntry> root{StateEntry{static_cast<std::int64_t>(r), 1}};
    return SearchState(root, m_, /*best_so_far=*/0);
  }

 private:
  std::uint64_t StateBound(const std::vector<StateEntry>& state,
                           std::int64_t remaining) const {
    std::uint64_t bound = 0;
    for (const StateEntry& entry : state) {
      bound = SatAdd(bound, SatMul(entry.count, psi_[remaining][entry.pos]));
    }
    return bound;
  }

  std::uint64_t SearchState(const std::vector<StateEntry>& state,
                            std::int64_t remaining,
                            std::uint64_t best_so_far) const {
    if (remaining == 0) {
      std::uint64_t total = 0;
      for (const StateEntry& entry : state) {
        total = SatAdd(total, entry.count);
      }
      return total;
    }
    const std::int64_t L = static_cast<std::int64_t>(sequence_.size());
    const std::size_t num_symbols = sequence_.alphabet().size();

    // Children grouped by next character, kept sorted by position.
    std::vector<std::vector<StateEntry>> children(num_symbols);
    for (const StateEntry& entry : state) {
      const std::int64_t lo = entry.pos + gap_.min_gap() + 1;
      const std::int64_t hi =
          std::min<std::int64_t>(L - 1, entry.pos + gap_.max_gap() + 1);
      for (std::int64_t q = lo; q <= hi; ++q) {
        auto& bucket = children[sequence_[q]];
        if (bucket.empty() || bucket.back().pos < q) {
          bucket.push_back(StateEntry{q, entry.count});
        } else if (bucket.back().pos == q) {
          bucket.back().count = SatAdd(bucket.back().count, entry.count);
        } else {
          auto it = std::lower_bound(
              bucket.begin(), bucket.end(), q,
              [](const StateEntry& e, std::int64_t p) { return e.pos < p; });
          if (it != bucket.end() && it->pos == q) {
            it->count = SatAdd(it->count, entry.count);
          } else {
            bucket.insert(it, StateEntry{q, entry.count});
          }
        }
      }
    }

    // Explore the most promising character first so the bound bites early.
    std::vector<std::pair<std::uint64_t, std::size_t>> order;
    for (std::size_t c = 0; c < num_symbols; ++c) {
      if (children[c].empty()) continue;
      order.emplace_back(StateBound(children[c], remaining - 1), c);
    }
    std::sort(order.begin(), order.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });

    std::uint64_t best = best_so_far;
    for (const auto& [bound, c] : order) {
      if (bound <= best) break;  // order is descending: nothing better left
      best = std::max(best, SearchState(children[c], remaining - 1, best));
    }
    return best;
  }

  const Sequence& sequence_;
  const GapRequirement& gap_;
  std::int64_t m_;
  // psi_[k][p] as documented above.
  std::vector<std::vector<std::uint64_t>> psi_;
};

}  // namespace

StatusOr<EmResult> ComputeEm(const Sequence& sequence,
                             const GapRequirement& gap, std::int64_t m) {
  if (m < 1) {
    return Status::InvalidArgument("e_m order m must be >= 1");
  }
  EmResult result;
  result.m = m;
  result.k_values.resize(sequence.size(), 0);
  if (sequence.empty()) return result;
  KrSearcher searcher(sequence, gap, m);
  for (std::size_t r = 0; r < sequence.size(); ++r) {
    // K_r counts complete length-(m+1) offset sequences only; psi bounds it
    // from above, so a zero bound (window runs off the sequence) is final.
    if (searcher.Bound(r) == 0) {
      result.k_values[r] = 0;
      continue;
    }
    result.k_values[r] = searcher.Search(r);
    result.em = std::max(result.em, result.k_values[r]);
  }
  return result;
}

std::uint64_t BruteForceKr(const Sequence& sequence, const GapRequirement& gap,
                           std::int64_t m, std::size_t r) {
  const std::int64_t L = static_cast<std::int64_t>(sequence.size());
  std::map<std::string, std::uint64_t> counts;
  std::string current;
  current.push_back(sequence.CharAt(r));
  // Depth-first enumeration of all offset sequences [r, r+g1, ...] with
  // deltas in [N+1, M+1].
  auto dfs = [&](auto&& self, std::int64_t pos, std::int64_t remaining) -> void {
    if (remaining == 0) {
      ++counts[current];
      return;
    }
    for (std::int64_t delta = gap.min_gap() + 1; delta <= gap.max_gap() + 1;
         ++delta) {
      const std::int64_t next = pos + delta;
      if (next >= L) break;
      current.push_back(sequence.CharAt(static_cast<std::size_t>(next)));
      self(self, next, remaining - 1);
      current.pop_back();
    }
  };
  dfs(dfs, static_cast<std::int64_t>(r), m);
  std::uint64_t best = 0;
  for (const auto& [pattern, count] : counts) best = std::max(best, count);
  return best;
}

}  // namespace pgm
