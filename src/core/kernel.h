#ifndef PGM_CORE_KERNEL_H_
#define PGM_CORE_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/gap.h"
#include "core/pil_arena.h"

namespace pgm {

/// User-facing join-kernel selection (MinerConfig::kernel_tier, --kernel).
/// The tiers differ only in speed: every tier produces byte-identical PIL
/// rows and support counts — the scalar kernel is the authoritative oracle
/// the others are differentially tested against (DESIGN.md §7e).
enum class KernelTier {
  /// Pick the fastest tier the window width and CPU allow: AVX2 when
  /// supported, otherwise the generic-64-bit bitset kernel, for
  /// W = max_gap - min_gap + 1 <= 64; scalar beyond.
  kAuto,
  /// Always the scalar sliding-window kernel (the oracle).
  kScalar,
  /// The generic-64-bit bitset kernel for W <= 64 (scalar beyond).
  kBits,
  /// The AVX2-vectorized bitset kernel for W <= 64 when the CPU supports
  /// it; degrades to kBits (no AVX2) and to scalar (W > 64).
  kAvx2,
};

/// The implementation actually resolved for one run: what ResolveKernel
/// picked from the tier, the gap's window width, and the CPU.
enum class KernelImpl { kScalar, kBits, kAvx2 };

/// "auto" | "scalar" | "bits" | "avx2".
const char* KernelTierToString(KernelTier tier);
/// Inverse of KernelTierToString; returns false on an unknown name.
bool KernelTierFromString(const std::string& name, KernelTier* tier);
/// "scalar" | "bits" | "avx2" (the shard_timing trace field).
const char* KernelImplToString(KernelImpl impl);

/// True when the AVX2 kernel can run here: the CPU reports AVX2 at runtime
/// AND kernel_avx2.cc was compiled with AVX2 enabled (x86 builds only; on
/// other architectures this is false and kAvx2 degrades to kBits).
bool Avx2Available();

/// Maps a configured tier to the implementation a run with `gap` uses.
/// W = gap.flexibility() > 64 always resolves to scalar — the bitset
/// kernels pack one window into a 64-bit mask, so wider windows have no
/// bit-parallel representation; an explicit kBits/kAvx2 request falls back
/// rather than failing.
KernelImpl ResolveKernel(KernelTier tier, const GapRequirement& gap);

/// Reusable per-worker state for CombinePrefixGroupKernel: the scalar
/// kernel's window states plus the bitset kernel's position bitmap, word
/// ranks, and suffix-count prefix sums. Once warmed up to the largest pair
/// seen, the join performs no allocation (the same contract
/// GroupJoinScratch gives the scalar kernel).
struct KernelScratch {
  GroupJoinScratch scalar;
  std::vector<std::uint64_t> bitmap;
  std::vector<std::uint64_t> rank;
  std::vector<std::uint64_t> cum;
};

/// The dispatching join kernel: identical contract to CombinePrefixGroup
/// (core/pil_arena.h), with `impl` selecting the implementation.
/// kScalar delegates to CombinePrefixGroup verbatim. kBits/kAvx2 run each
/// (prefix, suffix) pair through the bitset kernel when the pair is exactly
/// representable (no saturated suffix counts, total suffix count below the
/// clamp, dense-enough position span) and fall back to a per-pair scalar
/// loop otherwise — every path reproduces the oracle's rows and supports
/// byte-for-byte, which the kernel test layer enforces rather than trusts.
void CombinePrefixGroupKernel(KernelImpl impl, const PilEntry* prefix_rows,
                              std::size_t prefix_len,
                              const GapRequirement& gap,
                              const GroupSuffix* suffixes,
                              GroupOutput* outputs, std::size_t group_size,
                              KernelScratch& scratch);

namespace internal {

/// Rows per window-extraction strip (the unit the AVX2 path vectorizes).
inline constexpr std::size_t kKernelStrip = 64;

/// Extracts `n` W-bit window masks from the pair's bitmap — one per query
/// bit offset offs[i] — together with each query's below-window bits of its
/// first word (`prelow`, popcounted by the caller into a row rank) and the
/// word-rank base (`rankbase`). Defined in kernel_avx2.cc: the AVX2 build
/// gathers bitmap/rank words for four queries at a time and extracts the
/// masks with variable vector shifts; non-AVX2 builds compile a portable
/// stub with the same semantics (a NEON variant would slot in there). Only
/// called when the resolved impl is kAvx2.
void ExtractWindowsAvx2(const std::uint64_t* bitmap, const std::uint64_t* rank,
                        const std::uint64_t* offs, std::size_t n,
                        std::uint64_t wmask, std::uint64_t* masks,
                        std::uint64_t* prelow, std::uint64_t* rankbase);

/// True when kernel_avx2.cc was compiled with AVX2 code generation (its
/// translation unit owns the answer; see Avx2Available).
bool Avx2KernelCompiled();

}  // namespace internal
}  // namespace pgm

#endif  // PGM_CORE_KERNEL_H_
