#include "core/pil.h"

#include <cassert>

namespace pgm {

SupportInfo SupportOfRows(const PilEntry* rows, std::size_t len) {
  unsigned __int128 sum = 0;
  bool any_saturated = false;
  for (std::size_t i = 0; i < len; ++i) {
    if (IsSaturated(rows[i].count)) any_saturated = true;
    sum += rows[i].count;
  }
  SupportInfo info;
  if (any_saturated || sum >= static_cast<unsigned __int128>(kSaturatedCount)) {
    info.count = kSaturatedCount;
    info.saturated = true;
  } else {
    info.count = static_cast<std::uint64_t>(sum);
    info.saturated = false;
  }
  return info;
}

PartialIndexList PartialIndexList::ForSymbol(const Sequence& sequence,
                                             Symbol symbol) {
  PartialIndexList pil;
  for (std::size_t pos = 0; pos < sequence.size(); ++pos) {
    if (sequence[pos] == symbol) {
      pil.entries_.push_back(
          PilEntry{static_cast<std::uint32_t>(pos), 1});
    }
  }
  return pil;
}

PartialIndexList PartialIndexList::Combine(const PartialIndexList& prefix_pil,
                                           const PartialIndexList& suffix_pil,
                                           const GapRequirement& gap) {
  PartialIndexList result;
  const auto& prefix = prefix_pil.entries_;
  const auto& suffix = suffix_pil.entries_;
  if (prefix.empty() || suffix.empty()) return result;
  result.entries_.reserve(prefix.size());

  // For prefix position x, eligible suffix positions lie in
  // [x + N + 1, x + M + 1]. Both bounds are monotone in x, so `lo` and `hi`
  // only ever advance: amortized O(|prefix| + |suffix|).
  internal::WindowSum window;
  std::size_t lo = 0;  // first suffix index inside the window
  std::size_t hi = 0;  // first suffix index beyond the window
  for (const PilEntry& entry : prefix) {
    const std::int64_t window_begin =
        static_cast<std::int64_t>(entry.pos) + gap.min_gap() + 1;
    const std::int64_t window_end =
        static_cast<std::int64_t>(entry.pos) + gap.max_gap() + 1;
    while (hi < suffix.size() &&
           static_cast<std::int64_t>(suffix[hi].pos) <= window_end) {
      window.Add(suffix[hi].count);
      ++hi;
    }
    while (lo < hi &&
           static_cast<std::int64_t>(suffix[lo].pos) < window_begin) {
      window.Remove(suffix[lo].count);
      ++lo;
    }
    const std::uint64_t total = window.Total();
    if (total > 0) {
      result.entries_.push_back(PilEntry{entry.pos, total});
    }
  }
  return result;
}

PartialIndexList PartialIndexList::FromEntries(std::vector<PilEntry> entries) {
#ifndef NDEBUG
  for (std::size_t i = 0; i < entries.size(); ++i) {
    assert(entries[i].count > 0);
    if (i > 0) assert(entries[i - 1].pos < entries[i].pos);
  }
#endif
  PartialIndexList pil;
  pil.entries_ = std::move(entries);
  return pil;
}

SupportInfo PartialIndexList::TotalSupport() const {
  return SupportOfRows(entries_.data(), entries_.size());
}

}  // namespace pgm
