#include "core/kernel.h"

// The ONLY translation unit allowed to use vector intrinsics: the
// raw-intrinsics pgm_lint rule pins every other file to the portable
// wrapper in core/kernel.h. Compiled with per-file -mavx2 on x86 (see
// src/core/CMakeLists.txt), so the rest of the build stays untainted by
// AVX2 code generation and the dispatcher can pick the vector path from
// runtime CPUID alone.

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace pgm {
namespace internal {

bool Avx2KernelCompiled() {
#if defined(__AVX2__)
  return true;
#else
  return false;
#endif
}

#if defined(__AVX2__)

void ExtractWindowsAvx2(const std::uint64_t* bitmap, const std::uint64_t* rank,
                        const std::uint64_t* offs, std::size_t n,
                        std::uint64_t wmask, std::uint64_t* masks,
                        std::uint64_t* prelow, std::uint64_t* rankbase) {
  const __m256i vwmask = _mm256_set1_epi64x(static_cast<long long>(wmask));
  const __m256i vones = _mm256_set1_epi64x(1);
  const __m256i v64 = _mm256_set1_epi64x(64);
  const __m256i v63 = _mm256_set1_epi64x(63);
  const long long* words = reinterpret_cast<const long long*>(bitmap);
  const long long* ranks = reinterpret_cast<const long long*>(rank);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i voff =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(offs + i));
    const __m256i vword = _mm256_srli_epi64(voff, 6);
    const __m256i vbit = _mm256_and_si256(voff, v63);
    const __m256i w0 = _mm256_i64gather_epi64(words, vword, 8);
    const __m256i w1 = _mm256_i64gather_epi64(words + 1, vword, 8);
    const __m256i vrank = _mm256_i64gather_epi64(ranks, vword, 8);
    // Intel variable-shift semantics: a count >= 64 yields 0, so the
    // bit == 0 lane (where 64 - bit == 64) takes nothing from w1 — exactly
    // the portable path's bit == 0 special case, without a branch.
    const __m256i low = _mm256_srlv_epi64(w0, vbit);
    const __m256i high = _mm256_sllv_epi64(w1, _mm256_sub_epi64(v64, vbit));
    const __m256i vmask =
        _mm256_and_si256(_mm256_or_si256(low, high), vwmask);
    // (1 << bit) - 1 keeps w0's below-window bits; bit == 0 keeps none.
    const __m256i vlowmask =
        _mm256_sub_epi64(_mm256_sllv_epi64(vones, vbit), vones);
    const __m256i vprelow = _mm256_and_si256(w0, vlowmask);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(masks + i), vmask);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(prelow + i), vprelow);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(rankbase + i), vrank);
  }
  for (; i < n; ++i) {
    const std::uint64_t word = offs[i] >> 6;
    const std::uint64_t bit = offs[i] & 63;
    const std::uint64_t w0 = bitmap[word];
    const std::uint64_t w1 = bitmap[word + 1];
    masks[i] = (bit == 0 ? w0 : (w0 >> bit) | (w1 << (64 - bit))) & wmask;
    prelow[i] = bit == 0 ? 0 : w0 & ((std::uint64_t{1} << bit) - 1);
    rankbase[i] = rank[word];
  }
}

#else  // !defined(__AVX2__)

// Portable stub — and the slot a NEON port would fill. ResolveKernel never
// selects kAvx2 on this build (Avx2Available() is false), but the stub
// keeps the symbol defined and semantically identical to the vector path,
// so a stray call stays correct instead of crashing.
void ExtractWindowsAvx2(const std::uint64_t* bitmap, const std::uint64_t* rank,
                        const std::uint64_t* offs, std::size_t n,
                        std::uint64_t wmask, std::uint64_t* masks,
                        std::uint64_t* prelow, std::uint64_t* rankbase) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t word = offs[i] >> 6;
    const std::uint64_t bit = offs[i] & 63;
    const std::uint64_t w0 = bitmap[word];
    const std::uint64_t w1 = bitmap[word + 1];
    masks[i] = (bit == 0 ? w0 : (w0 >> bit) | (w1 << (64 - bit))) & wmask;
    prelow[i] = bit == 0 ? 0 : w0 & ((std::uint64_t{1} << bit) - 1);
    rankbase[i] = rank[word];
  }
}

#endif  // defined(__AVX2__)

}  // namespace internal
}  // namespace pgm
