#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <string_view>
#include <unordered_map>

#include "core/trace.h"
#include "util/stopwatch.h"

namespace pgm {
namespace internal {

namespace {

/// Emits one shard-timing event when the enclosing EvaluateCandidates call
/// returns — RAII so every early return (sink error, guard trip) still
/// records. Runs on the caller thread, after the pool has quiesced.
struct ShardTimingScope {
  ObserverContext* ctx;
  std::uint64_t candidates;
  std::int64_t workers;
  Stopwatch watch;

  ~ShardTimingScope() {
    if (ctx != nullptr) {
      ctx->ShardTiming(candidates, workers, watch.ElapsedSeconds());
    }
  }
};

/// Candidates a worker claims per grab of the shared chunk counter: small
/// enough to balance skewed PIL sizes, large enough that the counter is not
/// contended.
constexpr std::size_t kChunkSize = 16;
/// Chunks per worker per block. The block is the unit the sink consumes, so
/// this (times kChunkSize, times workers) bounds the candidate PILs live
/// beyond the retained set.
constexpr std::size_t kChunksPerWorker = 8;

}  // namespace

std::vector<CandidateSpec> GenerateCandidates(
    const std::vector<LevelEntry>& level) {
  std::vector<CandidateSpec> candidates;
  if (level.empty()) return candidates;
  const std::size_t len = level.front().symbols.size();

  // Bucket level entries by their (len-1)-prefix. Keys are views into the
  // entries' stable symbol storage, so neither bucketing nor probing
  // allocates a key string.
  std::unordered_map<std::string_view, std::vector<std::uint32_t>> by_prefix;
  by_prefix.reserve(level.size());
  for (std::uint32_t i = 0; i < level.size(); ++i) {
    const std::string_view prefix =
        std::string_view(level[i].symbols).substr(0, len - 1);
    by_prefix[prefix].push_back(i);
  }

  for (std::uint32_t i = 0; i < level.size(); ++i) {
    const std::string_view suffix_key =
        std::string_view(level[i].symbols).substr(1);
    auto it = by_prefix.find(suffix_key);
    if (it == by_prefix.end()) continue;
    for (std::uint32_t j : it->second) {
      CandidateSpec spec;
      spec.symbols.reserve(len + 1);
      spec.symbols.push_back(level[i].symbols.front());
      spec.symbols.append(level[j].symbols);
      spec.left = i;
      spec.right = j;
      candidates.push_back(std::move(spec));
    }
  }
  return candidates;
}

ParallelLevelExecutor::ParallelLevelExecutor(std::int64_t threads) {
  const std::size_t resolved = ThreadPool::ResolveThreadCount(threads);
  if (resolved > 1) pool_ = std::make_unique<ThreadPool>(resolved);
}

ParallelLevelExecutor::~ParallelLevelExecutor() = default;

std::size_t ParallelLevelExecutor::num_threads() const {
  return pool_ == nullptr ? 1 : pool_->num_threads();
}

Status ParallelLevelExecutor::EvaluateCandidates(
    const std::vector<LevelEntry>& left_level,
    const std::vector<LevelEntry>& right_level,
    std::vector<CandidateSpec> specs, const GapRequirement& gap,
    MiningGuard* guard, const CandidateSink& sink, bool* interrupted) {
  *interrupted = false;
  if (specs.empty()) return Status::OK();
  ShardTimingScope timing{ctx_, specs.size(),
                          static_cast<std::int64_t>(num_threads()), {}};

  // Serial path: stream one candidate at a time, so at most a single
  // non-retained PIL is ever live (the pre-parallel memory behavior).
  if (pool_ == nullptr) {
    for (CandidateSpec& spec : specs) {
      if (guard != nullptr && !guard->Tick()) {
        *interrupted = true;
        return Status::OK();
      }
      EvaluatedCandidate candidate;
      candidate.entry.pil = PartialIndexList::Combine(
          left_level[spec.left].pil, right_level[spec.right].pil, gap);
      candidate.entry.symbols = std::move(spec.symbols);
      candidate.bytes = candidate.entry.pil.MemoryBytes();
      candidate.within_budget =
          guard == nullptr || guard->ChargeMemory(candidate.bytes);
      candidate.support = candidate.entry.pil.TotalSupport();
      const bool stop = !candidate.within_budget;
      PGM_RETURN_IF_ERROR(sink(std::move(candidate)));
      if (stop) {
        *interrupted = true;
        return Status::OK();
      }
    }
    return Status::OK();
  }

  struct Slot {
    LevelEntry entry;
    SupportInfo support;
    std::uint64_t bytes = 0;
    bool within_budget = true;
    bool filled = false;
  };
  const std::size_t block_size =
      pool_->num_threads() * kChunksPerWorker * kChunkSize;
  std::vector<Slot> slots(std::min(block_size, specs.size()));

  for (std::size_t begin = 0; begin < specs.size(); begin += block_size) {
    const std::size_t count = std::min(block_size, specs.size() - begin);
    std::atomic<std::size_t> next_chunk{0};
    std::atomic<bool> tripped{false};
    pool_->Execute([&](std::size_t) {
      while (true) {
        const std::size_t chunk =
            next_chunk.fetch_add(1, std::memory_order_relaxed);
        const std::size_t chunk_begin = chunk * kChunkSize;
        if (chunk_begin >= count) return;
        const std::size_t chunk_end = std::min(count, chunk_begin + kChunkSize);
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
          if (guard != nullptr && !guard->Tick()) {
            tripped.store(true, std::memory_order_relaxed);
            return;
          }
          CandidateSpec& spec = specs[begin + i];
          Slot& slot = slots[i];
          slot.entry.pil = PartialIndexList::Combine(
              left_level[spec.left].pil, right_level[spec.right].pil, gap);
          slot.entry.symbols = std::move(spec.symbols);
          slot.bytes = slot.entry.pil.MemoryBytes();
          slot.within_budget =
              guard == nullptr || guard->ChargeMemory(slot.bytes);
          slot.support = slot.entry.pil.TotalSupport();
          slot.filled = true;
          if (!slot.within_budget) {
            tripped.store(true, std::memory_order_relaxed);
            return;
          }
        }
      }
    });

    // Merge the block in candidate order. Every filled slot reaches the
    // sink even after a trip — its PIL was charged, and the sink owns the
    // charge — while slots abandoned by stopping workers were never
    // charged, so the ledger balances on every path.
    const bool block_tripped = tripped.load(std::memory_order_relaxed) ||
                               (guard != nullptr && guard->stopped());
    for (std::size_t i = 0; i < count; ++i) {
      Slot& slot = slots[i];
      if (!slot.filled) continue;
      EvaluatedCandidate candidate;
      candidate.entry = std::move(slot.entry);
      candidate.support = slot.support;
      candidate.bytes = slot.bytes;
      candidate.within_budget = slot.within_budget;
      slot = Slot{};
      PGM_RETURN_IF_ERROR(sink(std::move(candidate)));
    }
    if (block_tripped) {
      *interrupted = true;
      return Status::OK();
    }
  }
  return Status::OK();
}

}  // namespace internal
}  // namespace pgm
