#include "core/parallel.h"

// pgm-lint: allow(arena-scratch) — ExecuteJoin runs INSIDE the caller's
// BeginScratch/EndScratch bracket (asserted at entry); the truncate calls
// here are the protocol's cleanup half, not an unbracketed use.

#include <algorithm>
#include <atomic>
#include <cassert>

#include "core/trace.h"
#include "util/mutex.h"
#include "util/stopwatch.h"

namespace pgm {
namespace internal {

namespace {

/// Emits one shard-timing event when the enclosing ExecuteJoin call returns
/// — RAII so every early return (sink error, guard trip) still records.
/// Runs on the caller thread, after the pool has quiesced. `candidates`
/// counts deliveries to the sink (not the plan's size), accumulated by the
/// merge as it goes, so tripped levels report the work that happened; the
/// phase fields split the driver's wall-clock into kernel fills it ran
/// itself, sink merging, and waiting on in-flight pieces.
struct ShardTimingScope {
  ObserverContext* ctx = nullptr;
  std::uint64_t candidates = 0;
  std::int64_t workers = 0;
  const char* kernel = "scalar";
  double fill_seconds = 0.0;
  double merge_seconds = 0.0;
  double stall_seconds = 0.0;
  Stopwatch watch;

  ~ShardTimingScope() {
    if (ctx != nullptr) {
      ctx->ShardTiming(candidates, workers, kernel, watch.ElapsedSeconds(),
                       fill_seconds, merge_seconds, stall_seconds);
    }
  }
};

/// Output rows one piece targets. A piece is one kernel call: candidates
/// sharing a left pattern, each needing a left-PIL-length slice. Sizing by
/// rows (not candidate count) keeps pieces comparable units of work when
/// PIL lengths are skewed.
constexpr std::uint64_t kPieceRowsTarget = 2048;
/// Cap on candidates per piece, so short-PIL groups still amortize one
/// streaming pass over the left rows without unbounded kernel state.
constexpr std::uint64_t kMaxPieceCands = 64;
/// Rows per published block — the granule the driver hands the workers.
constexpr std::uint64_t kBlockRowsTarget = 16384;
/// The scratch window (block ring bound): the driver keeps at most this
/// many rows reserved ahead of the watermark (more when a single block is
/// bigger). Bounds speculative memory independently of the thread count,
/// which also makes memory-budget trip points deterministic.
constexpr std::uint64_t kWindowRowsTarget = 4 * kBlockRowsTarget;

/// One kernel call's worth of candidates: a slice [begin, end) of one
/// task's rights range. Immutable after the prepass except for the two
/// publication fields, which the driver assigns before the release-store
/// of the piece limit (the claiming worker's acquire orders the read).
struct Piece {
  std::uint32_t task = 0;
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  std::uint64_t left_len = 0;
  /// left_len * (end - begin): the piece's scratch slice size.
  std::uint64_t rows = 0;
  /// Arena offset of the first candidate's output slice; candidate k's
  /// slice starts at out_offset + k * left_len.
  std::uint64_t out_offset = 0;
  /// Index of the piece's first candidate in the window metadata arrays.
  std::uint64_t meta_base = 0;
};

/// Piece fill states (per-piece atomic, release by the filling worker,
/// acquire by the merging driver).
constexpr std::uint8_t kPending = 0;
constexpr std::uint8_t kFilled = 1;
constexpr std::uint8_t kAbandoned = 2;

/// A publication granule: consecutive pieces totalling ~kBlockRowsTarget
/// output rows.
struct Block {
  std::uint64_t piece_begin = 0;
  std::uint64_t piece_end = 0;
  std::uint64_t rows = 0;
  std::uint64_t cands = 0;
};

/// Per-worker reusable buffers: once warmed up to the largest piece, the
/// fill phase performs no allocation.
struct WorkerScratch {
  std::vector<GroupSuffix> suffixes;
  std::vector<GroupOutput> outputs;
  KernelScratch kernel;
};

}  // namespace

ParallelLevelExecutor::ParallelLevelExecutor(std::int64_t threads) {
  const std::size_t resolved = ThreadPool::ResolveThreadCount(threads);
  if (resolved > 1) pool_ = std::make_unique<ThreadPool>(resolved);
}

ParallelLevelExecutor::~ParallelLevelExecutor() = default;

std::size_t ParallelLevelExecutor::num_threads() const {
  return pool_ == nullptr ? 1 : pool_->num_threads();
}

void ParallelLevelExecutor::ParallelFor(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (pool_ == nullptr) {
    fn(0, n);
    return;
  }
  pool_->ParallelFor(n, grain, fn);
}

Status ParallelLevelExecutor::ExecuteJoin(
    const std::vector<ArenaEntry>& left_entries, const PilArena& left_arena,
    const std::vector<ArenaEntry>& right_entries, const PilArena& right_arena,
    const JoinPlan& plan, const GapRequirement& gap, KernelImpl kernel,
    MiningGuard* guard, PilArena& out, const JoinSink& sink,
    bool* interrupted) {
  *interrupted = false;
  assert(out.scratch_open() &&
         "ExecuteJoin requires the caller's BeginScratch/EndScratch bracket");
  if (plan.empty()) return Status::OK();
  ShardTimingScope timing;
  timing.ctx = ctx_;
  timing.workers = static_cast<std::int64_t>(num_threads());
  timing.kernel = KernelImplToString(kernel);

  const std::vector<JoinTask>& tasks = plan.tasks();
  const std::vector<std::uint32_t>& pool = plan.rights_pool();
  const std::size_t workers = num_threads();

  // --- Prepass (serial): slice the plan into row-sized pieces and group
  // them into row-sized blocks. Depends only on the plan, never on the
  // schedule or the thread count — the pieces' flat order IS the candidate
  // order the sink must observe.
  std::vector<Piece> pieces;
  std::vector<Block> blocks;
  {
    Block block;
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      const JoinTask& task = tasks[t];
      const std::uint64_t left_len = left_entries[task.left].span.len;
      const std::uint32_t group = task.group_size();
      std::uint32_t per_piece = static_cast<std::uint32_t>(kMaxPieceCands);
      if (left_len > 0) {
        per_piece = static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
            kPieceRowsTarget / left_len, 1, kMaxPieceCands));
      }
      for (std::uint32_t off = 0; off < group; off += per_piece) {
        Piece piece;
        piece.task = static_cast<std::uint32_t>(t);
        piece.begin = off;
        piece.end = std::min(off + per_piece, group);
        piece.left_len = left_len;
        piece.rows = left_len * (piece.end - piece.begin);
        block.rows += piece.rows;
        block.cands += piece.end - piece.begin;
        pieces.push_back(piece);
        if (block.rows >= kBlockRowsTarget) {
          block.piece_end = pieces.size();
          blocks.push_back(block);
          block = Block{};
          block.piece_begin = pieces.size();
        }
      }
    }
    if (block.piece_begin < pieces.size()) {
      block.piece_end = pieces.size();
      blocks.push_back(block);
    }
  }
  const std::uint64_t total_pieces = pieces.size();
  if (total_pieces == 0) return Status::OK();

  std::vector<WorkerScratch> scratch(workers);
  // Per-candidate outputs of the current window, indexed by Piece::meta_base
  // (+ the candidate's position in its piece). Sized at window recycle,
  // when no piece is in flight.
  std::vector<std::uint32_t> meta_lens;
  std::vector<SupportInfo> meta_supports;

  // Lock-free handoff state. piece_limit's release-store publishes the
  // pieces' out_offset/meta_base assignments and out_base; a claim's
  // acquire-load pairs with it. piece_state's release/acquire publishes the
  // filled rows and metadata to the merging driver.
  std::atomic<std::uint64_t> next_piece{0};
  std::atomic<std::uint64_t> piece_limit{0};
  std::atomic<PilEntry*> out_base{nullptr};
  std::atomic<bool> stop{false};        // sink failed: fills are pointless
  std::atomic<bool> level_done{false};  // drained: workers may exit
  std::vector<std::atomic<std::uint8_t>> piece_state(
      static_cast<std::size_t>(total_pieces));
  for (auto& state : piece_state) {
    state.store(kPending, std::memory_order_relaxed);
  }

  // The mutex/condvars only park idle threads; every data handoff above is
  // lock-free (see the class comment in parallel.h).
  Mutex mu{kLockRankRing};
  CondVar work_cv;   // workers: publication advanced / level done
  CondVar merge_cv;  // driver: a piece completed

  constexpr std::uint64_t kNone = ~std::uint64_t{0};
  auto try_claim = [&]() -> std::uint64_t {
    std::uint64_t cur = next_piece.load(std::memory_order_relaxed);
    while (cur < piece_limit.load(std::memory_order_acquire)) {
      if (next_piece.compare_exchange_weak(cur, cur + 1,
                                           std::memory_order_relaxed)) {
        return cur;
      }
    }
    return kNone;
  };

  // Fills one claimed piece. Charges the piece's candidates with one
  // batched TickN first: a refused batch (guard trip) abandons the piece
  // and refunds the ticks, so the guard's tick total stays equal to the
  // candidates the sink will receive. Every terminal state (filled or
  // abandoned) is published so the merge head never waits forever.
  auto run_piece = [&](std::uint64_t index, WorkerScratch& ws) {
    const Piece& piece = pieces[static_cast<std::size_t>(index)];
    const std::uint32_t count = piece.end - piece.begin;
    bool filled = false;
    if (!stop.load(std::memory_order_relaxed) &&
        (guard == nullptr || guard->TickN(count))) {
      const JoinTask& task = tasks[piece.task];
      if (ws.suffixes.size() < count) {
        ws.suffixes.resize(count);
        ws.outputs.resize(count);
      }
      PilEntry* base = out_base.load(std::memory_order_relaxed);
      for (std::uint32_t k = 0; k < count; ++k) {
        const ArenaEntry& right =
            right_entries[pool[task.rights_begin + piece.begin + k]];
        ws.suffixes[k] =
            GroupSuffix{right_arena.Rows(right.span), right.span.len};
        ws.outputs[k] = GroupOutput{
            base + piece.out_offset + k * piece.left_len, 0, {}};
      }
      CombinePrefixGroupKernel(kernel,
                               left_arena.Rows(left_entries[task.left].span),
                               piece.left_len, gap, ws.suffixes.data(),
                               ws.outputs.data(), count, ws.kernel);
      for (std::uint32_t k = 0; k < count; ++k) {
        meta_lens[piece.meta_base + k] =
            static_cast<std::uint32_t>(ws.outputs[k].len);
        meta_supports[piece.meta_base + k] = ws.outputs[k].support;
      }
      filled = true;
    }
    piece_state[static_cast<std::size_t>(index)].store(
        filled ? kFilled : kAbandoned, std::memory_order_release);
    MutexLock lock(mu);
    merge_cv.notify_all();
  };

  std::uint64_t merge_head = 0;  // next piece to merge (plan order)
  std::uint64_t published = 0;   // driver's mirror of piece_limit
  std::uint64_t next_block = 0;
  std::uint64_t window_reserved = 0;  // absolute row bound of the window
  std::uint64_t window_meta = 0;      // metadata slots used in the window
  bool publish_stopped = false;       // guard trip: publish no further work
  Status sink_status = Status::OK();

  // Publishes blocks while they fit in the reserved window. When the
  // window is exhausted and drained (merge_head == published), recycles it:
  // truncate the dead scratch, Reserve a fresh window — the only potential
  // reallocation, and by construction no piece is in flight to observe it.
  auto publish_blocks = [&]() {
    bool any = false;
    while (!publish_stopped && next_block < blocks.size()) {
      if (guard != nullptr && guard->stopped()) {
        publish_stopped = true;
        break;
      }
      const Block& block = blocks[static_cast<std::size_t>(next_block)];
      if (out.size() + block.rows > window_reserved) {
        if (merge_head < published) break;  // ring busy: merge first
        out.TruncateToWatermark();
        std::uint64_t rows = 0;
        std::uint64_t cands = 0;
        for (std::uint64_t b = next_block;
             b < blocks.size() && rows < kWindowRowsTarget; ++b) {
          rows += blocks[static_cast<std::size_t>(b)].rows;
          cands += blocks[static_cast<std::size_t>(b)].cands;
        }
        if (!out.Reserve(static_cast<std::size_t>(out.size() + rows))) {
          // Memory trip. The guard latched with the pipeline empty, so the
          // delivered prefix — every candidate of the previous windows —
          // is exact and identical at every thread count.
          publish_stopped = true;
          break;
        }
        window_reserved = out.size() + rows;
        if (meta_lens.size() < cands) {
          meta_lens.resize(static_cast<std::size_t>(cands));
          meta_supports.resize(static_cast<std::size_t>(cands));
        }
        window_meta = 0;
        out_base.store(out.MutableRows(PilSpan{0, 0}),
                       std::memory_order_relaxed);
        continue;
      }
      for (std::uint64_t p = block.piece_begin; p < block.piece_end; ++p) {
        Piece& piece = pieces[static_cast<std::size_t>(p)];
        piece.out_offset = out.Allocate(piece.rows).offset;
        piece.meta_base = window_meta;
        window_meta += piece.end - piece.begin;
      }
      published = block.piece_end;
      ++next_block;
      any = true;
    }
    if (any) {
      MutexLock lock(mu);
      piece_limit.store(published, std::memory_order_release);
      work_cv.notify_all();
    }
  };

  // The driver (worker 0 = the caller thread): publish, merge in piece
  // order, and fill pieces itself whenever the merge head is waiting on a
  // piece some other worker owns. Claim order equals plan order, so the
  // driver's own claims are usually exactly the merge head.
  auto driver = [&]() {
    Stopwatch phase;
    while (true) {
      publish_blocks();
      if (merge_head >= published) {
        // Everything published is merged. Stop, or recycle the window on
        // the next publish_blocks pass.
        if (publish_stopped || next_block >= blocks.size()) break;
        continue;
      }
      const std::size_t head = static_cast<std::size_t>(merge_head);
      const std::uint8_t state =
          piece_state[head].load(std::memory_order_acquire);
      if (state == kPending) {
        const std::uint64_t claimed = try_claim();
        if (claimed != kNone) {
          phase.Reset();
          run_piece(claimed, scratch[0]);
          timing.fill_seconds += phase.ElapsedSeconds();
          continue;
        }
        phase.Reset();
        {
          MutexLock lock(mu);
          while (piece_state[head].load(std::memory_order_acquire) ==
                 kPending) {
            merge_cv.wait(mu);
          }
        }
        timing.stall_seconds += phase.ElapsedSeconds();
        continue;
      }
      if (state == kFilled) {
        // Merge the piece: the sink sees its candidates in plan order.
        // Abandoned pieces (kAbandoned) are skipped — their ticks were
        // refunded and their scratch dies with the window.
        phase.Reset();
        const Piece& piece = pieces[head];
        const JoinTask& task = tasks[piece.task];
        const std::uint32_t count = piece.end - piece.begin;
        for (std::uint32_t k = 0; k < count; ++k) {
          JoinedCandidate candidate;
          candidate.left = task.left;
          candidate.right = pool[task.rights_begin + piece.begin + k];
          candidate.span = PilSpan{piece.out_offset + k * piece.left_len,
                                   meta_lens[piece.meta_base + k]};
          candidate.support = meta_supports[piece.meta_base + k];
          Status status = sink(candidate);
          if (!status.ok()) {
            sink_status = std::move(status);
            stop.store(true, std::memory_order_relaxed);
            break;
          }
          ++timing.candidates;
        }
        timing.merge_seconds += phase.ElapsedSeconds();
        if (!sink_status.ok()) break;
      }
      ++merge_head;
    }
    MutexLock lock(mu);
    level_done.store(true, std::memory_order_relaxed);
    work_cv.notify_all();
  };

  // Workers: claim and fill until the level is done and the published
  // pieces are drained. After a stop/trip, remaining claims resolve as
  // cheap abandons, so the drain is prompt.
  auto worker_loop = [&](std::size_t worker) {
    WorkerScratch& ws = scratch[worker];
    while (true) {
      const std::uint64_t claimed = try_claim();
      if (claimed != kNone) {
        run_piece(claimed, ws);
        continue;
      }
      MutexLock lock(mu);
      while (!level_done.load(std::memory_order_relaxed) &&
             next_piece.load(std::memory_order_relaxed) >=
                 piece_limit.load(std::memory_order_relaxed)) {
        work_cv.wait(mu);
      }
      if (level_done.load(std::memory_order_relaxed) &&
          next_piece.load(std::memory_order_relaxed) >=
              piece_limit.load(std::memory_order_relaxed)) {
        return;
      }
    }
  };

  if (pool_ == nullptr) {
    driver();
  } else {
    pool_->Execute([&](std::size_t worker) {
      if (worker == 0) {
        driver();
      } else {
        worker_loop(worker);
      }
    });
  }

  // Catch-all reclaim: on the sink-error path workers may have filled
  // pieces after the driver left; the pool has quiesced, so truncating
  // here leaves exactly the promoted spans (the invariant EndScratch
  // asserts).
  out.TruncateToWatermark();
  if (!sink_status.ok()) return sink_status;
  if (guard != nullptr && guard->stopped()) *interrupted = true;
  return Status::OK();
}

}  // namespace internal
}  // namespace pgm
