#include "core/parallel.h"

// pgm-lint: allow(arena-scratch) — ExecuteJoin runs INSIDE the caller's
// BeginScratch/EndScratch bracket (asserted at entry); the truncate calls
// here are the protocol's cleanup half, not an unbracketed use.

#include <algorithm>
#include <atomic>
#include <cassert>

#include "core/trace.h"
#include "util/stopwatch.h"

namespace pgm {
namespace internal {

namespace {

/// Emits one shard-timing event when the enclosing ExecuteJoin call returns
/// — RAII so every early return (sink error, guard trip) still records.
/// Runs on the caller thread, after the pool has quiesced.
struct ShardTimingScope {
  ObserverContext* ctx;
  std::uint64_t candidates;
  std::int64_t workers;
  Stopwatch watch;

  ~ShardTimingScope() {
    if (ctx != nullptr) {
      ctx->ShardTiming(candidates, workers, watch.ElapsedSeconds());
    }
  }
};

/// Candidates per piece — the unit a worker claims off the shared counter
/// and the group size of one kernel call. Small enough to balance skewed
/// PIL sizes, large enough that the counter is not contended and the
/// prefix rows are streamed once for a useful number of candidates.
constexpr std::size_t kChunkSize = 16;
/// Chunks per worker per block. The block is the unit the sink consumes, so
/// this (times kChunkSize, times workers) bounds the scratch candidate
/// slices live beyond the retained set.
constexpr std::size_t kChunksPerWorker = 8;

/// One kernel call's worth of candidates: a slice [begin, end) of one
/// task's rights range, with a pre-assigned output slice per candidate.
struct Piece {
  std::uint32_t task = 0;
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  /// Arena offset of the first candidate's output slice; candidate k's
  /// slice starts at out_offset + k * left_len.
  std::uint64_t out_offset = 0;
  std::uint64_t left_len = 0;
  /// Index of the piece's first candidate in the block metadata arrays.
  std::uint32_t cand_base = 0;
  /// Set by the worker that completed the piece; pieces abandoned by a
  /// stopping worker stay false and are skipped by the merge. Distinct
  /// pieces are owned by one worker each, and ThreadPool::Execute's join
  /// publishes the writes to the merging thread.
  bool filled = false;
};

/// Per-worker reusable buffers: once warmed up to the largest piece, the
/// fill phase performs no allocation.
struct WorkerScratch {
  std::vector<GroupSuffix> suffixes;
  std::vector<GroupOutput> outputs;
  GroupJoinScratch kernel;
};

}  // namespace

ParallelLevelExecutor::ParallelLevelExecutor(std::int64_t threads) {
  const std::size_t resolved = ThreadPool::ResolveThreadCount(threads);
  if (resolved > 1) pool_ = std::make_unique<ThreadPool>(resolved);
}

ParallelLevelExecutor::~ParallelLevelExecutor() = default;

std::size_t ParallelLevelExecutor::num_threads() const {
  return pool_ == nullptr ? 1 : pool_->num_threads();
}

Status ParallelLevelExecutor::ExecuteJoin(
    const std::vector<ArenaEntry>& left_entries, const PilArena& left_arena,
    const std::vector<ArenaEntry>& right_entries, const PilArena& right_arena,
    const JoinPlan& plan, const GapRequirement& gap, MiningGuard* guard,
    PilArena& out, const JoinSink& sink, bool* interrupted) {
  *interrupted = false;
  assert(out.scratch_open() &&
         "ExecuteJoin requires the caller's BeginScratch/EndScratch bracket");
  if (plan.empty()) return Status::OK();
  ShardTimingScope timing{ctx_, plan.num_candidates(),
                          static_cast<std::int64_t>(num_threads()), {}};

  const std::vector<JoinTask>& tasks = plan.tasks();
  const std::vector<std::uint32_t>& pool = plan.rights_pool();
  const std::size_t workers = num_threads();
  const std::size_t block_target = workers * kChunksPerWorker * kChunkSize;

  std::vector<Piece> pieces;
  std::vector<std::uint32_t> out_lens;      // per block candidate
  std::vector<SupportInfo> out_supports;    // per block candidate
  std::vector<WorkerScratch> scratch(workers);

  // Fills one piece: ticks the guard per candidate, then runs the group
  // kernel into the piece's pre-assigned slices. Returns false on a trip
  // (the piece stays unfilled).
  auto run_piece = [&](Piece& piece, WorkerScratch& ws,
                       PilEntry* out_base) -> bool {
    const JoinTask& task = tasks[piece.task];
    const std::uint32_t count = piece.end - piece.begin;
    for (std::uint32_t k = 0; k < count; ++k) {
      if (guard != nullptr && !guard->Tick()) return false;
    }
    if (ws.suffixes.size() < count) {
      ws.suffixes.resize(count);
      ws.outputs.resize(count);
    }
    for (std::uint32_t k = 0; k < count; ++k) {
      const ArenaEntry& right =
          right_entries[pool[task.rights_begin + piece.begin + k]];
      ws.suffixes[k] = GroupSuffix{right_arena.Rows(right.span),
                                   right.span.len};
      ws.outputs[k] =
          GroupOutput{out_base + piece.out_offset + k * piece.left_len, 0, {}};
    }
    CombinePrefixGroup(left_arena.Rows(left_entries[task.left].span),
                       piece.left_len, gap, ws.suffixes.data(),
                       ws.outputs.data(), count, ws.kernel);
    for (std::uint32_t k = 0; k < count; ++k) {
      out_lens[piece.cand_base + k] =
          static_cast<std::uint32_t>(ws.outputs[k].len);
      out_supports[piece.cand_base + k] = ws.outputs[k].support;
    }
    piece.filled = true;
    return true;
  };

  std::size_t task_idx = 0;
  std::uint32_t task_off = 0;  // rights of tasks[task_idx] already sliced
  while (task_idx < tasks.size()) {
    // --- Slice the next block (serial; depends only on the plan). ---
    pieces.clear();
    std::size_t block_cands = 0;
    std::uint64_t block_rows = 0;
    while (task_idx < tasks.size() && block_cands < block_target) {
      const JoinTask& task = tasks[task_idx];
      const std::uint32_t remaining = task.group_size() - task_off;
      if (remaining == 0) {
        ++task_idx;
        task_off = 0;
        continue;
      }
      const std::uint32_t take = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(kChunkSize, remaining));
      Piece piece;
      piece.task = static_cast<std::uint32_t>(task_idx);
      piece.begin = task_off;
      piece.end = task_off + take;
      piece.left_len = left_entries[task.left].span.len;
      piece.cand_base = static_cast<std::uint32_t>(block_cands);
      block_cands += take;
      block_rows += piece.left_len * take;
      pieces.push_back(piece);
      task_off += take;
      if (task_off == task.group_size()) {
        ++task_idx;
        task_off = 0;
      }
    }
    if (pieces.empty()) break;

    // --- Reserve scratch and assign output slices (serial). ---
    // A Reserve that trips the budget still grew the capacity, so the block
    // it was charged for runs to completion before the level unwinds.
    const bool within_budget = out.Reserve(out.size() + block_rows);
    for (Piece& piece : pieces) {
      piece.out_offset =
          out.Allocate(piece.left_len * (piece.end - piece.begin)).offset;
    }
    out_lens.assign(block_cands, 0);
    out_supports.assign(block_cands, SupportInfo{});
    PilEntry* out_base = out.MutableRows(PilSpan{0, 0});

    // --- Fill phase: workers drain pieces into disjoint slices. ---
    if (pool_ == nullptr) {
      for (Piece& piece : pieces) {
        if (!run_piece(piece, scratch[0], out_base)) break;
      }
    } else {
      std::atomic<std::size_t> next_piece{0};
      pool_->Execute([&](std::size_t worker) {
        while (true) {
          const std::size_t i =
              next_piece.fetch_add(1, std::memory_order_relaxed);
          if (i >= pieces.size()) return;
          if (!run_piece(pieces[i], scratch[worker], out_base)) return;
        }
      });
    }

    // --- Merge the block in candidate order. Every filled piece reaches
    // the sink even after a trip (its candidates' work is done and its
    // scratch is live); pieces abandoned by stopping workers are skipped.
    const bool block_tripped =
        !within_budget || (guard != nullptr && guard->stopped());
    for (const Piece& piece : pieces) {
      if (!piece.filled) continue;
      const JoinTask& task = tasks[piece.task];
      for (std::uint32_t k = 0; k < piece.end - piece.begin; ++k) {
        JoinedCandidate candidate;
        candidate.left = task.left;
        candidate.right = pool[task.rights_begin + piece.begin + k];
        candidate.span = PilSpan{piece.out_offset + k * piece.left_len,
                                 out_lens[piece.cand_base + k]};
        candidate.support = out_supports[piece.cand_base + k];
        const Status status = sink(candidate);
        if (!status.ok()) {
          out.TruncateToWatermark();
          return status;
        }
      }
    }
    out.TruncateToWatermark();
    if (block_tripped) {
      *interrupted = true;
      return Status::OK();
    }
  }
  return Status::OK();
}

}  // namespace internal
}  // namespace pgm
