#include <algorithm>
#include <string>
#include <utility>

#include "core/miner.h"
#include "util/saturating.h"
#include "util/stopwatch.h"

namespace pgm {

StatusOr<MiningResult> MineEnumeration(const Sequence& sequence,
                                       const MinerConfig& config) {
  PGM_RETURN_IF_ERROR(internal::ValidateConfig(sequence, config));
  PGM_ASSIGN_OR_RETURN(GapRequirement gap,
                       GapRequirement::Create(config.min_gap, config.max_gap));
  Stopwatch watch;
  MiningGuard guard(config.limits, config.cancel);
  internal::ObserverContext ctx(config.observer, "enum",
                                KernelTierToString(config.kernel_tier));
  internal::ParallelLevelExecutor executor(config.threads);
  executor.set_observer(&ctx);
  OffsetCounter counter(static_cast<std::int64_t>(sequence.size()), gap);
  const KernelImpl kernel = ResolveKernel(config.kernel_tier, gap);

  MiningResult result;
  // Enumeration cannot prune, so it has no completeness horizon below l2;
  // it is exact up to whatever level budget it is given.
  const std::int64_t l2 = counter.l2();
  const std::int64_t cap =
      config.max_length >= 0 ? std::min(config.max_length, l2) : l2;
  result.n_used = cap;
  result.guaranteed_complete_up_to = cap;

  std::int64_t last_completed_level = 0;
  auto finalize = [&]() {
    result.termination = guard.reason();
    result.pil_memory_peak_bytes = guard.memory_peak_bytes();
    if (!result.complete()) {
      result.guaranteed_complete_up_to =
          std::min(result.guaranteed_complete_up_to, last_completed_level);
    }
    std::sort(result.patterns.begin(), result.patterns.end(),
              [](const FrequentPattern& a, const FrequentPattern& b) {
                if (a.pattern.length() != b.pattern.length()) {
                  return a.pattern.length() < b.pattern.length();
                }
                return a.pattern.symbols() < b.pattern.symbols();
              });
    ctx.Finish(&result);
    result.total_seconds = result.mining_seconds = watch.ElapsedSeconds();
  };

  const long double rho = config.min_support_ratio;
  const std::size_t alphabet_size = sequence.alphabet().size();

  // |Σ|^length, saturating (the analytic candidate count per level).
  auto analytic_candidates = [&](std::int64_t length) -> std::uint64_t {
    std::uint64_t value = 1;
    for (std::int64_t i = 0; i < length; ++i) {
      value = SatMul(value, static_cast<std::uint64_t>(alphabet_size));
    }
    return value;
  };

  std::int64_t level_length = config.start_length;
  if (level_length > cap) {
    finalize();
    return result;
  }
  if (!guard.CheckNow()) {
    ctx.GuardTrip(guard.reason(), 0);
    finalize();
    return result;
  }

  // The enumeration applies no λ relaxation, so every level's relaxed
  // threshold equals its full one.
  auto full_threshold_for = [&](std::int64_t length) -> double {
    return static_cast<double>(rho * counter.Count(length));
  };
  // The first level opens in the registry before its construction, so a
  // budget trip during the builds still reports the level (and its analytic
  // candidate count) instead of an empty stats vector.
  ctx.LevelStart(level_length, analytic_candidates(level_length), 1.0,
                 full_threshold_for(level_length),
                 full_threshold_for(level_length));

  // PILs of the length-1 patterns, used to extend levels on the left:
  // PIL(c + P) = Combine(PIL(c), PIL(P)) — valid because `c` is exactly the
  // prefix character preceding P by one gap. The singles level stays live
  // for the whole run; the current level ping-pongs between two arenas.
  // All three arenas drop their charges when they go out of scope, so the
  // guard's ledger drains to zero on every exit.
  internal::BuiltLevel singles = internal::BuildAllPatternsOfLength(
      sequence, gap, 1, &guard, &executor, kernel);

  internal::BuiltLevel level = internal::BuildAllPatternsOfLength(
      sequence, gap, level_length, &guard, &executor, kernel);
  PilArena other(&guard);
  if (guard.stopped()) {
    ctx.GuardTrip(guard.reason(), level_length);
    ctx.LevelEnd(level_length, analytic_candidates(level_length), 0, 0, 0,
                 /*completed=*/false);
    finalize();
    return result;
  }

  bool interrupted = false;
  while (true) {
    if (!guard.CheckNow()) {
      ctx.GuardTrip(guard.reason(), level_length);
      ctx.LevelEnd(level_length, analytic_candidates(level_length), 0, 0, 0,
                   /*completed=*/false);
      break;
    }
    const long double n_l = counter.Count(level_length);
    const long double full_threshold = rho * n_l;

    LevelStats stats;
    stats.length = level_length;
    stats.num_candidates = analytic_candidates(level_length);
    std::uint64_t evaluated = 0;
    if (guard.ChargeLevelCandidates(stats.num_candidates)) {
      for (const internal::ArenaEntry& entry : level.entries) {
        if (!guard.Tick()) {
          interrupted = true;
          break;
        }
        ++evaluated;
        const SupportInfo support = level.arena.Support(entry.span);
        ctx.ObserveCandidate(support.count, entry.span.bytes());
        if (support.count == 0) continue;
        const long double support_ld = static_cast<long double>(support.count);
        if (support_ld >= full_threshold) {
          ++stats.num_frequent;
          FrequentPattern fp;
          std::vector<Symbol> symbols(entry.symbols.begin(),
                                      entry.symbols.end());
          PGM_ASSIGN_OR_RETURN(
              fp.pattern,
              Pattern::FromSymbols(std::move(symbols), sequence.alphabet()));
          fp.support = support.count;
          fp.saturated = support.saturated;
          fp.support_ratio = static_cast<double>(support_ld / n_l);
          result.patterns.push_back(std::move(fp));
          result.longest_frequent_length =
              std::max(result.longest_frequent_length, level_length);
        }
      }
    } else {
      interrupted = true;
    }
    // Enumeration carries every matched pattern forward regardless of
    // support: num_retained reports the carried-forward set size.
    stats.num_retained = level.entries.size();
    if (interrupted) ctx.GuardTrip(guard.reason(), level_length);
    ctx.LevelEnd(level_length, stats.num_candidates, evaluated,
                 stats.num_frequent, stats.num_retained, !interrupted);
    if (interrupted) break;
    last_completed_level = level_length;

    if (level_length >= cap || level.entries.empty()) break;

    // Extend every level pattern by every single on the left. The plan
    // indexes (singles, level), singles-major, matching the serial visit
    // order, so the executor's merged output is identical to it.
    const internal::JoinPlan plan = internal::JoinPlan::CrossProduct(
        static_cast<std::uint32_t>(singles.entries.size()),
        static_cast<std::uint32_t>(level.entries.size()));
    std::vector<internal::ArenaEntry> next;
    auto sink = [&](const internal::JoinedCandidate& candidate) -> Status {
      if (candidate.span.empty()) return Status::OK();
      internal::ArenaEntry entry;
      entry.symbols.reserve(
          level.entries[candidate.right].symbols.size() + 1);
      entry.symbols.push_back(
          singles.entries[candidate.left].symbols.front());
      entry.symbols.append(level.entries[candidate.right].symbols);
      entry.span = other.Promote(candidate.span);
      next.push_back(std::move(entry));
      return Status::OK();
    };
    bool extension_interrupted = false;
    other.BeginScratch();
    const Status join_status = executor.ExecuteJoin(
        singles.entries, singles.arena, level.entries, level.arena, plan, gap,
        kernel, &guard, other, sink, &extension_interrupted);
    other.EndScratch();
    PGM_RETURN_IF_ERROR(join_status);
    interrupted = extension_interrupted;
    level.entries = std::move(next);
    level.arena.Clear();
    std::swap(level.arena, other);
    if (interrupted) {
      // The trip happened while building the next level's PILs: record that
      // level as started-and-cut-short so the candidate totals stay true.
      const std::int64_t next_length = level_length + 1;
      ctx.LevelStart(next_length, analytic_candidates(next_length), 1.0,
                     full_threshold_for(next_length),
                     full_threshold_for(next_length));
      ctx.GuardTrip(guard.reason(), next_length);
      ctx.LevelEnd(next_length, analytic_candidates(next_length), 0, 0, 0,
                   /*completed=*/false);
      break;
    }
    ++level_length;
    ctx.LevelStart(level_length, analytic_candidates(level_length), 1.0,
                   full_threshold_for(level_length),
                   full_threshold_for(level_length));
  }

  finalize();
  return result;
}

}  // namespace pgm
