#ifndef PGM_CORE_GAP_H_
#define PGM_CORE_GAP_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace pgm {

/// The gap requirement [N, M] between two successive pattern characters
/// (Section 3 of the paper), plus the derived quantities of Table 1.
///
/// A pattern a1 g(N,M) a2 ... al matches an offset sequence [c1..cl] iff
/// c_{j+1} - c_j - 1 lies in [N, M] for every j. W = M - N + 1 is the
/// flexibility of the gap.
class GapRequirement {
 public:
  /// Validates 0 <= N <= M. (N == M is a rigid period; the paper's DNA
  /// experiments use e.g. [9,12].)
  static StatusOr<GapRequirement> Create(std::int64_t min_gap,
                                         std::int64_t max_gap);

  std::int64_t min_gap() const { return min_gap_; }  // N
  std::int64_t max_gap() const { return max_gap_; }  // M

  /// Flexibility W = M - N + 1.
  std::int64_t flexibility() const { return max_gap_ - min_gap_ + 1; }

  /// Minimum span of a length-l pattern: (l-1)N + l.
  std::int64_t MinSpan(std::int64_t length) const {
    return (length - 1) * min_gap_ + length;
  }

  /// Maximum span of a length-l pattern: (l-1)M + l.
  std::int64_t MaxSpan(std::int64_t length) const {
    return (length - 1) * max_gap_ + length;
  }

  /// l1 = floor((L+M)/(M+1)): longest length whose MAX span fits in L.
  std::int64_t MaxGuaranteedLength(std::int64_t sequence_length) const {
    return (sequence_length + max_gap_) / (max_gap_ + 1);
  }

  /// l2 = floor((L+N)/(N+1)): longest length whose MIN span fits in L.
  std::int64_t MaxPossibleLength(std::int64_t sequence_length) const {
    return (sequence_length + min_gap_) / (min_gap_ + 1);
  }

  /// "[N,M]".
  std::string ToString() const;

  bool operator==(const GapRequirement& other) const {
    return min_gap_ == other.min_gap_ && max_gap_ == other.max_gap_;
  }

 private:
  GapRequirement(std::int64_t min_gap, std::int64_t max_gap)
      : min_gap_(min_gap), max_gap_(max_gap) {}

  std::int64_t min_gap_;
  std::int64_t max_gap_;
};

}  // namespace pgm

#endif  // PGM_CORE_GAP_H_
