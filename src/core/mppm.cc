#include <algorithm>

#include "core/em.h"
#include "core/miner.h"
#include "util/saturating.h"
#include "util/stopwatch.h"

namespace pgm {

StatusOr<MiningResult> MineMppm(const Sequence& sequence,
                                const MinerConfig& config) {
  PGM_RETURN_IF_ERROR(internal::ValidateConfig(sequence, config));
  PGM_ASSIGN_OR_RETURN(GapRequirement gap,
                       GapRequirement::Create(config.min_gap, config.max_gap));
  Stopwatch total_watch;
  MiningGuard guard(config.limits, config.cancel);
  internal::ObserverContext ctx(config.observer, "mppm",
                                KernelTierToString(config.kernel_tier));
  internal::ParallelLevelExecutor executor(config.threads);
  executor.set_observer(&ctx);
  OffsetCounter counter(static_cast<std::int64_t>(sequence.size()), gap);

  // A budget that is exhausted on arrival (0-ms deadline, pre-cancelled
  // token) skips every phase and returns an empty partial result.
  if (!guard.CheckNow()) {
    MiningResult result;
    result.termination = guard.reason();
    result.total_seconds = total_watch.ElapsedSeconds();
    ctx.GuardTrip(guard.reason(), 0);
    ctx.Finish(&result);
    return result;
  }

  // Phase 1: the e_m statistic (Section 4.2).
  Stopwatch em_watch;
  PGM_ASSIGN_OR_RETURN(EmResult em_result,
                       ComputeEm(sequence, gap, config.em_order));
  // e_m == 0 means no complete length-(m+1) offset sequence exists, so no
  // pattern longer than m can be frequent; 1 keeps the Theorem 2 bound
  // sound (and maximally tight) in that case.
  const std::uint64_t em = std::max<std::uint64_t>(1, em_result.em);
  const double em_seconds = em_watch.ElapsedSeconds();

  // Phase 2: estimate n. Count the supports of all start-length patterns,
  // then find the largest k <= l1 for which some start-length pattern still
  // clears the Theorem 2 prefix bound λ'_{k,k-s} * ρs * N_s. Scanning k
  // downward returns the largest such k directly.
  const std::int64_t s = config.start_length;
  internal::BuiltLevel seed = internal::BuildAllPatternsOfLength(
      sequence, gap, s, &guard, &executor,
      ResolveKernel(config.kernel_tier, gap));
  if (guard.stopped()) {
    // Dropping the seed returns its arena's charge to the guard; the ledger
    // needs no manual balancing.
    seed = internal::BuiltLevel{};
    MiningResult result;
    result.termination = guard.reason();
    result.pil_memory_peak_bytes = guard.memory_peak_bytes();
    result.em = em_result.em;
    result.em_seconds = em_seconds;
    result.total_seconds = total_watch.ElapsedSeconds();
    result.mining_seconds = result.total_seconds - em_seconds;
    // The trip cut the first level's construction short. Record the level
    // with its analytic |Σ|^s candidate count (n is not yet estimated, so
    // no λ relaxation applies) so the partial result reports the true
    // candidate total instead of zero.
    std::uint64_t analytic = 1;
    for (std::int64_t i = 0; i < s; ++i) {
      analytic = SatMul(analytic, sequence.alphabet().size());
    }
    const double full_threshold = static_cast<double>(
        static_cast<long double>(config.min_support_ratio) * counter.Count(s));
    ctx.LevelStart(s, analytic, 1.0, full_threshold, full_threshold);
    ctx.GuardTrip(guard.reason(), s);
    ctx.LevelEnd(s, analytic, 0, 0, 0, /*completed=*/false);
    ctx.Finish(&result);
    return result;
  }
  std::uint64_t max_support = 0;
  for (const internal::ArenaEntry& entry : seed.entries) {
    max_support = std::max(max_support, seed.arena.Support(entry.span).count);
  }
  const long double rho = config.min_support_ratio;
  const long double n_s = counter.Count(s);
  std::int64_t n = s;
  for (std::int64_t k = counter.l1(); k > s; --k) {
    const long double factor =
        config.use_em_bound
            ? counter.LambdaPrime(k, k - s, config.em_order, em)
            : counter.Lambda(k, k - s);
    const long double threshold = factor * rho * n_s;
    if (static_cast<long double>(max_support) >= threshold) {
      n = k;
      break;
    }
  }

  ctx.Estimate(em_result.em, n);

  // Phase 3: MPP with the estimated n, reusing the seed level.
  PGM_ASSIGN_OR_RETURN(
      MiningResult result,
      internal::RunLevelwise(sequence, config, counter, n, std::move(seed),
                             guard, &executor, &ctx));
  result.em = em_result.em;
  result.estimated_n = n;
  result.em_seconds = em_seconds;
  result.total_seconds = total_watch.ElapsedSeconds();
  result.mining_seconds = result.total_seconds - em_seconds;
  return result;
}

}  // namespace pgm
