#include "core/trace.h"

#include <utility>

#include "core/miner.h"
#include "util/saturating.h"
#include "util/string_util.h"

namespace pgm {

const char* TraceEventKindToString(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kRunStart:
      return "run_start";
    case TraceEventKind::kLevelStart:
      return "level_start";
    case TraceEventKind::kLevelEnd:
      return "level_end";
    case TraceEventKind::kGuardTrip:
      return "guard_trip";
    case TraceEventKind::kEstimate:
      return "estimate";
    case TraceEventKind::kShardTiming:
      return "shard_timing";
    case TraceEventKind::kRunEnd:
      return "run_end";
    case TraceEventKind::kJobAdmitted:
      return "job_admitted";
    case TraceEventKind::kJobShed:
      return "job_shed";
    case TraceEventKind::kJobStart:
      return "job_start";
    case TraceEventKind::kJobEnd:
      return "job_end";
    case TraceEventKind::kFragmentStart:
      return "fragment_start";
    case TraceEventKind::kFragmentEnd:
      return "fragment_end";
  }
  return "unknown";
}

void MiningTrace::Append(TraceEvent event) {
  MutexLock lock(mutex_);
  events_.push_back(std::move(event));
}

std::size_t MiningTrace::size() const {
  MutexLock lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> MiningTrace::events() const {
  MutexLock lock(mutex_);
  return events_;
}

void MiningTrace::Clear() {
  MutexLock lock(mutex_);
  events_.clear();
}

namespace {

/// Shortest-round-trip double formatting; %.17g prints the same bytes for
/// the same bit pattern, which is all the determinism contract needs.
std::string JsonDouble(double value) { return StrFormat("%.17g", value); }

void AppendEventJson(const TraceEvent& event, bool include_volatile,
                     std::string* out) {
  out->append("{\"kind\": \"");
  out->append(TraceEventKindToString(event.kind));
  out->append("\"");
  switch (event.kind) {
    case TraceEventKind::kRunStart:
      out->append(", \"algorithm\": \"" + event.detail + "\"");
      out->append(", \"kernel_tier\": \"" + event.kernel_tier + "\"");
      break;
    case TraceEventKind::kLevelStart:
      out->append(", \"level\": " + std::to_string(event.level));
      out->append(", \"candidates\": " + std::to_string(event.candidates));
      out->append(", \"lambda\": " + JsonDouble(event.lambda));
      out->append(", \"full_threshold\": " +
                  JsonDouble(event.full_threshold));
      out->append(", \"relaxed_threshold\": " +
                  JsonDouble(event.relaxed_threshold));
      break;
    case TraceEventKind::kLevelEnd:
      out->append(", \"level\": " + std::to_string(event.level));
      out->append(", \"candidates\": " + std::to_string(event.candidates));
      out->append(", \"evaluated\": " + std::to_string(event.evaluated));
      out->append(", \"frequent\": " + std::to_string(event.frequent));
      out->append(", \"retained\": " + std::to_string(event.retained));
      out->append(", \"pruned\": " + std::to_string(event.pruned));
      out->append(event.completed ? ", \"completed\": true"
                                  : ", \"completed\": false");
      break;
    case TraceEventKind::kGuardTrip:
      out->append(", \"level\": " + std::to_string(event.level));
      out->append(", \"reason\": \"" + event.detail + "\"");
      break;
    case TraceEventKind::kEstimate:
      out->append(", \"em\": " + std::to_string(event.em));
      out->append(", \"estimated_n\": " + std::to_string(event.estimated_n));
      break;
    case TraceEventKind::kShardTiming:
      out->append(", \"level\": " + std::to_string(event.level));
      out->append(", \"candidates\": " + std::to_string(event.candidates));
      out->append(", \"workers\": " + std::to_string(event.workers));
      // The resolved kernel implementation is deterministic given the
      // config, so unlike the timing fields it is not include_volatile
      // business — it prints whenever the event itself does.
      out->append(", \"kernel_tier\": \"" + event.kernel_tier + "\"");
      out->append(", \"seconds\": " + JsonDouble(event.seconds));
      out->append(", \"fill_seconds\": " + JsonDouble(event.fill_seconds));
      out->append(", \"merge_seconds\": " + JsonDouble(event.merge_seconds));
      out->append(", \"stall_seconds\": " + JsonDouble(event.stall_seconds));
      break;
    case TraceEventKind::kRunEnd:
      out->append(", \"reason\": \"" + event.detail + "\"");
      out->append(", \"patterns\": " + std::to_string(event.patterns));
      out->append(", \"levels\": " + std::to_string(event.levels));
      if (include_volatile) {
        out->append(", \"memory_peak_bytes\": " +
                    std::to_string(event.memory_bytes));
      }
      break;
    case TraceEventKind::kJobAdmitted:
      out->append(", \"job\": " + std::to_string(event.job));
      break;
    case TraceEventKind::kJobShed:
      out->append(", \"job\": " + std::to_string(event.job));
      out->append(", \"retry_after_ms\": " +
                  std::to_string(event.retry_after_ms));
      break;
    case TraceEventKind::kJobStart:
      out->append(", \"job\": " + std::to_string(event.job));
      out->append(", \"algorithm\": \"" + event.detail + "\"");
      break;
    case TraceEventKind::kJobEnd:
      out->append(", \"job\": " + std::to_string(event.job));
      out->append(", \"reason\": \"" + event.detail + "\"");
      out->append(event.cache_hit ? ", \"cache_hit\": true"
                                  : ", \"cache_hit\": false");
      out->append(", \"patterns\": " + std::to_string(event.patterns));
      break;
    case TraceEventKind::kFragmentStart:
      out->append(", \"fragment\": " + std::to_string(event.fragment));
      out->append(", \"record\": \"" + event.detail + "\"");
      out->append(", \"offset\": " + std::to_string(event.offset));
      out->append(", \"length\": " + std::to_string(event.candidates));
      break;
    case TraceEventKind::kFragmentEnd:
      out->append(", \"fragment\": " + std::to_string(event.fragment));
      out->append(", \"reason\": \"" + event.detail + "\"");
      out->append(", \"patterns\": " + std::to_string(event.patterns));
      break;
  }
  out->append("}");
}

}  // namespace

std::string MiningTrace::ToJson(const TraceJsonOptions& options) const {
  std::vector<TraceEvent> snapshot = events();
  std::string out = "{\n  \"events\": [";
  bool first = true;
  for (const TraceEvent& event : snapshot) {
    if (event.kind == TraceEventKind::kShardTiming &&
        !options.include_volatile) {
      continue;
    }
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendEventJson(event, options.include_volatile, &out);
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}";
  return out;
}

namespace internal {

namespace {

/// Per-level counter key: zero-padded so the registry's lexicographic order
/// equals the numeric level order.
std::string LevelKey(std::int64_t length, const char* field) {
  return StrFormat("mine.level.%05lld.%s", static_cast<long long>(length),
                   field);
}

std::vector<std::uint64_t> SupportBounds() {
  return {1,    2,    4,     8,     16,    32,     64,     128,
          256,  512,  1024,  4096,  16384, 65536,  262144, 1048576};
}

std::vector<std::uint64_t> PilBytesBounds() {
  return {64,      256,     1024,    4096,     16384,    65536,
          262144,  1048576, 4194304, 16777216, 67108864};
}

}  // namespace

ObserverContext::ObserverContext(const MiningObserver* observer,
                                 const char* algorithm,
                                 const char* kernel_tier)
    : user_metrics_(observer == nullptr ? nullptr : observer->metrics),
      trace_(observer == nullptr ? nullptr : observer->trace) {
  if (user_metrics_ != nullptr) {
    support_histogram_ =
        run_metrics_.GetHistogram("mine.candidate.support", SupportBounds());
    pil_bytes_histogram_ = run_metrics_.GetHistogram("mine.candidate.pil_bytes",
                                                     PilBytesBounds());
  }
  if (trace_ != nullptr) {
    TraceEvent event;
    event.kind = TraceEventKind::kRunStart;
    event.detail = algorithm;
    event.kernel_tier = kernel_tier;
    trace_->Append(std::move(event));
  }
}

void ObserverContext::LevelStart(std::int64_t length, std::uint64_t candidates,
                                 double lambda, double full_threshold,
                                 double relaxed_threshold) {
  levels_.push_back(length);
  current_level_ = length;
  run_metrics_.GetCounter("mine.levels.started")->Increment();
  run_metrics_.GetCounter("mine.candidates.generated")->Add(candidates);
  run_metrics_.GetCounter(LevelKey(length, "candidates"))->Add(candidates);
  if (trace_ != nullptr) {
    TraceEvent event;
    event.kind = TraceEventKind::kLevelStart;
    event.level = length;
    event.candidates = candidates;
    event.lambda = lambda;
    event.full_threshold = full_threshold;
    event.relaxed_threshold = relaxed_threshold;
    trace_->Append(std::move(event));
  }
}

void ObserverContext::LevelEnd(std::int64_t length, std::uint64_t candidates,
                               std::uint64_t evaluated, std::uint64_t frequent,
                               std::uint64_t retained, bool completed) {
  const std::uint64_t pruned = candidates - retained;
  run_metrics_.GetCounter("mine.candidates.evaluated")->Add(evaluated);
  run_metrics_.GetCounter("mine.candidates.frequent")->Add(frequent);
  run_metrics_.GetCounter("mine.candidates.retained")->Add(retained);
  run_metrics_.GetCounter("mine.candidates.pruned")->Add(pruned);
  run_metrics_.GetCounter(LevelKey(length, "evaluated"))->Add(evaluated);
  run_metrics_.GetCounter(LevelKey(length, "frequent"))->Add(frequent);
  run_metrics_.GetCounter(LevelKey(length, "retained"))->Add(retained);
  if (completed) {
    run_metrics_.GetCounter("mine.levels.completed")->Increment();
  }
  if (trace_ != nullptr) {
    TraceEvent event;
    event.kind = TraceEventKind::kLevelEnd;
    event.level = length;
    event.candidates = candidates;
    event.evaluated = evaluated;
    event.frequent = frequent;
    event.retained = retained;
    event.pruned = pruned;
    event.completed = completed;
    trace_->Append(std::move(event));
  }
}

void ObserverContext::GuardTrip(TerminationReason reason, std::int64_t level) {
  run_metrics_.GetCounter("mine.guard.trips")->Increment();
  run_metrics_
      .GetCounter(std::string("mine.guard.trips.") +
                  TerminationReasonToString(reason))
      ->Increment();
  if (trace_ != nullptr) {
    TraceEvent event;
    event.kind = TraceEventKind::kGuardTrip;
    event.level = level;
    event.detail = TerminationReasonToString(reason);
    trace_->Append(std::move(event));
  }
}

void ObserverContext::Estimate(std::uint64_t em, std::int64_t estimated_n) {
  run_metrics_.GetGauge("mine.last.em")->Set(static_cast<std::int64_t>(em));
  run_metrics_.GetGauge("mine.last.estimated_n")->Set(estimated_n);
  if (trace_ != nullptr) {
    TraceEvent event;
    event.kind = TraceEventKind::kEstimate;
    event.em = em;
    event.estimated_n = estimated_n;
    trace_->Append(std::move(event));
  }
}

void ObserverContext::ShardTiming(std::uint64_t candidates,
                                  std::int64_t workers, const char* kernel,
                                  double seconds, double fill_seconds,
                                  double merge_seconds,
                                  double stall_seconds) {
  if (trace_ == nullptr) return;
  TraceEvent event;
  event.kind = TraceEventKind::kShardTiming;
  event.level = current_level_;
  event.candidates = candidates;
  event.workers = workers;
  event.kernel_tier = kernel;
  event.seconds = seconds;
  event.fill_seconds = fill_seconds;
  event.merge_seconds = merge_seconds;
  event.stall_seconds = stall_seconds;
  trace_->Append(std::move(event));
}

void ObserverContext::Finish(MiningResult* result) {
  if (finished_) return;
  finished_ = true;

  // The registry is authoritative: LevelStats is re-derived as a view of
  // the per-level counters, and total_candidates as their (saturating) sum,
  // so a run the guard cut mid-level still reports the level it was working
  // on — the counts were recorded at LevelStart, before any evaluation.
  result->level_stats.clear();
  result->level_stats.reserve(levels_.size());
  std::uint64_t total = 0;
  for (std::int64_t length : levels_) {
    LevelStats stats;
    stats.length = length;
    stats.num_candidates =
        run_metrics_.CounterValue(LevelKey(length, "candidates"));
    stats.num_frequent =
        run_metrics_.CounterValue(LevelKey(length, "frequent"));
    stats.num_retained =
        run_metrics_.CounterValue(LevelKey(length, "retained"));
    total = SatAdd(total, stats.num_candidates);
    result->level_stats.push_back(stats);
  }
  result->total_candidates = total;

  run_metrics_.GetCounter("mine.runs")->Increment();
  run_metrics_.GetCounter("mine.patterns.emitted")
      ->Add(result->patterns.size());
  run_metrics_.GetGauge("mine.last.n_used")->Set(result->n_used);
  run_metrics_.GetGauge("mine.last.guaranteed_complete_up_to")
      ->Set(result->guaranteed_complete_up_to);
  run_metrics_.GetGauge("mine.last.longest_frequent_length")
      ->Set(result->longest_frequent_length);

  if (trace_ != nullptr) {
    TraceEvent event;
    event.kind = TraceEventKind::kRunEnd;
    event.detail = TerminationReasonToString(result->termination);
    event.patterns = result->patterns.size();
    event.levels = levels_.size();
    event.memory_bytes = result->pil_memory_peak_bytes;
    trace_->Append(std::move(event));
  }
  if (user_metrics_ != nullptr) user_metrics_->MergeFrom(run_metrics_);
}

}  // namespace internal
}  // namespace pgm
