#include "core/kernel.h"

#include <algorithm>
#include <bit>

#include "util/saturating.h"

namespace pgm {

const char* KernelTierToString(KernelTier tier) {
  switch (tier) {
    case KernelTier::kAuto:
      return "auto";
    case KernelTier::kScalar:
      return "scalar";
    case KernelTier::kBits:
      return "bits";
    case KernelTier::kAvx2:
      return "avx2";
  }
  return "auto";
}

bool KernelTierFromString(const std::string& name, KernelTier* tier) {
  if (name == "auto") {
    *tier = KernelTier::kAuto;
  } else if (name == "scalar") {
    *tier = KernelTier::kScalar;
  } else if (name == "bits") {
    *tier = KernelTier::kBits;
  } else if (name == "avx2") {
    *tier = KernelTier::kAvx2;
  } else {
    return false;
  }
  return true;
}

const char* KernelImplToString(KernelImpl impl) {
  switch (impl) {
    case KernelImpl::kScalar:
      return "scalar";
    case KernelImpl::kBits:
      return "bits";
    case KernelImpl::kAvx2:
      return "avx2";
  }
  return "scalar";
}

bool Avx2Available() {
#if defined(__x86_64__) || defined(__i386__)
  return internal::Avx2KernelCompiled() && __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

KernelImpl ResolveKernel(KernelTier tier, const GapRequirement& gap) {
  if (tier == KernelTier::kScalar) return KernelImpl::kScalar;
  // The bitset kernels pack one window into a 64-bit mask; wider windows
  // have no bit-parallel representation, so even an explicit kBits/kAvx2
  // request degrades to scalar rather than failing.
  if (gap.flexibility() > 64) return KernelImpl::kScalar;
  if (tier == KernelTier::kBits) return KernelImpl::kBits;
  // kAuto and kAvx2 both prefer the vector path when the hardware has it.
  return Avx2Available() ? KernelImpl::kAvx2 : KernelImpl::kBits;
}

namespace {

/// Final support clamp, shared by every non-oracle path and identical to
/// CombinePrefixGroup's: the exact 128-bit sum collapses to the saturated
/// sentinel at or above the clamp.
SupportInfo FinishSupport(unsigned __int128 sum, bool saturated) {
  SupportInfo info;
  if (saturated || sum >= static_cast<unsigned __int128>(kSaturatedCount)) {
    info.count = kSaturatedCount;
    info.saturated = true;
  } else {
    info.count = static_cast<std::uint64_t>(sum);
    info.saturated = false;
  }
  return info;
}

/// Per-pair scalar fallback: one suffix's slice of CombinePrefixGroup's
/// loop, operation-for-operation (same WindowSum, same emit test, same
/// clamp), so its rows and support are byte-identical to the oracle's.
void CombinePairScalar(const PilEntry* prefix_rows, std::size_t prefix_len,
                       std::int64_t min_gap, std::int64_t max_gap,
                       const GroupSuffix& suffix, GroupOutput& out) {
  internal::WindowSum window;
  std::size_t lo = 0;
  std::size_t hi = 0;
  unsigned __int128 support_sum = 0;
  bool support_saturated = false;
  std::size_t out_len = 0;
  const PilEntry* suffix_rows = suffix.rows;
  const std::size_t suffix_len = suffix.len;
  PilEntry* out_rows = out.rows;
  for (std::size_t i = 0; i < prefix_len; ++i) {
    const std::int64_t window_begin =
        static_cast<std::int64_t>(prefix_rows[i].pos) + min_gap + 1;
    const std::int64_t window_end =
        static_cast<std::int64_t>(prefix_rows[i].pos) + max_gap + 1;
    while (hi < suffix_len &&
           static_cast<std::int64_t>(suffix_rows[hi].pos) <= window_end) {
      window.Add(suffix_rows[hi].count);
      ++hi;
    }
    while (lo < hi &&
           static_cast<std::int64_t>(suffix_rows[lo].pos) < window_begin) {
      window.Remove(suffix_rows[lo].count);
      ++lo;
    }
    const std::uint64_t total = window.Total();
    if (total > 0) {
      out_rows[out_len++] = PilEntry{prefix_rows[i].pos, total};
      if (IsSaturated(total)) support_saturated = true;
      support_sum += total;
    }
  }
  out.len = out_len;
  out.support = FinishSupport(support_sum, support_saturated);
}

/// The bitset pair kernel (W = window width <= 64). Layout: a bitmap over
/// the pair's position span marks suffix positions; rank[w] counts set bits
/// in words [0, w); cum[i] prefix-sums the suffix counts. A prefix row x
/// then resolves in O(1): extract the W bits at offset x + min_gap + 1 -
/// base (two words, shift+OR+AND), popcount them for the number of suffix
/// rows in the window, rank + a masked popcount for the first such row, and
/// the window total is a cum difference. Returns false — caller falls back
/// to CombinePairScalar — when the pair is not exactly representable: a
/// saturated suffix count or total suffix mass at/above the clamp (the
/// plain uint64 sums would diverge from WindowSum's clamping), or a span so
/// sparse the O(span) bitmap pass would dominate the O(rows) scalar loop.
/// Eligibility depends only on the pair, never the schedule, so the
/// decision is thread-count independent.
bool CombinePairBits(KernelImpl impl, const PilEntry* prefix_rows,
                     std::size_t prefix_len, std::int64_t min_gap,
                     std::uint64_t wbits, const GroupSuffix& suffix,
                     GroupOutput& out, KernelScratch& scratch) {
  const PilEntry* suffix_rows = suffix.rows;
  const std::size_t suffix_len = suffix.len;
  unsigned __int128 mass = 0;
  for (std::size_t i = 0; i < suffix_len; ++i) {
    if (IsSaturated(suffix_rows[i].count)) return false;
    mass += suffix_rows[i].count;
  }
  if (mass >= static_cast<unsigned __int128>(kSaturatedCount)) return false;

  const std::int64_t shift = min_gap + 1;
  const std::uint64_t first_query = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(prefix_rows[0].pos) + shift);
  const std::uint64_t base =
      std::min<std::uint64_t>(suffix_rows[0].pos, first_query) &
      ~std::uint64_t{63};
  const std::uint64_t last_query =
      static_cast<std::uint64_t>(
          static_cast<std::int64_t>(prefix_rows[prefix_len - 1].pos) + shift) +
      (wbits - 1);
  const std::uint64_t span_hi =
      std::max<std::uint64_t>(suffix_rows[suffix_len - 1].pos, last_query);
  const std::uint64_t words = ((span_hi - base) >> 6) + 1;
  if (words > 4 * (prefix_len + suffix_len) + 64) return false;

  // One pad word so every query's second-word read stays in bounds.
  const std::size_t alloc = static_cast<std::size_t>(words) + 1;
  if (scratch.bitmap.size() < alloc) scratch.bitmap.resize(alloc);
  std::fill_n(scratch.bitmap.begin(), alloc, std::uint64_t{0});
  std::uint64_t* bitmap = scratch.bitmap.data();
  for (std::size_t i = 0; i < suffix_len; ++i) {
    const std::uint64_t bit = suffix_rows[i].pos - base;
    bitmap[bit >> 6] |= std::uint64_t{1} << (bit & 63);
  }
  if (scratch.rank.size() < alloc) scratch.rank.resize(alloc);
  std::uint64_t* rank = scratch.rank.data();
  std::uint64_t running = 0;
  for (std::uint64_t w = 0; w < words; ++w) {
    rank[w] = running;
    running += static_cast<std::uint64_t>(std::popcount(bitmap[w]));
  }
  rank[words] = running;
  if (scratch.cum.size() < suffix_len + 1) scratch.cum.resize(suffix_len + 1);
  std::uint64_t* cum = scratch.cum.data();
  cum[0] = 0;
  for (std::size_t i = 0; i < suffix_len; ++i) {
    cum[i + 1] = cum[i] + suffix_rows[i].count;
  }

  const std::uint64_t wmask =
      wbits == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << wbits) - 1;
  PilEntry* out_rows = out.rows;
  std::size_t out_len = 0;
  unsigned __int128 support_sum = 0;

  std::uint64_t offs[internal::kKernelStrip];
  std::uint64_t masks[internal::kKernelStrip];
  std::uint64_t prelow[internal::kKernelStrip];
  std::uint64_t rankbase[internal::kKernelStrip];
  for (std::size_t begin = 0; begin < prefix_len;
       begin += internal::kKernelStrip) {
    const std::size_t n =
        std::min(internal::kKernelStrip, prefix_len - begin);
    for (std::size_t k = 0; k < n; ++k) {
      offs[k] = static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(prefix_rows[begin + k].pos) +
                    shift) -
                base;
    }
    if (impl == KernelImpl::kAvx2) {
      internal::ExtractWindowsAvx2(bitmap, rank, offs, n, wmask, masks,
                                   prelow, rankbase);
    } else {
      for (std::size_t k = 0; k < n; ++k) {
        const std::uint64_t word = offs[k] >> 6;
        const std::uint64_t bit = offs[k] & 63;
        const std::uint64_t w0 = bitmap[word];
        const std::uint64_t w1 = bitmap[word + 1];
        masks[k] =
            (bit == 0 ? w0 : (w0 >> bit) | (w1 << (64 - bit))) & wmask;
        prelow[k] = bit == 0 ? 0 : w0 & ((std::uint64_t{1} << bit) - 1);
        rankbase[k] = rank[word];
      }
    }
    for (std::size_t k = 0; k < n; ++k) {
      const std::uint64_t cnt =
          static_cast<std::uint64_t>(std::popcount(masks[k]));
      if (cnt == 0) continue;
      const std::uint64_t lo =
          rankbase[k] + static_cast<std::uint64_t>(std::popcount(prelow[k]));
      const std::uint64_t total = cum[lo + cnt] - cum[lo];
      out_rows[out_len++] = PilEntry{prefix_rows[begin + k].pos, total};
      support_sum += total;
    }
  }
  out.len = out_len;
  // No window clamps under the eligibility preconditions, so the only
  // saturation source left is the cross-row support sum.
  out.support = FinishSupport(support_sum, /*saturated=*/false);
  return true;
}

}  // namespace

void CombinePrefixGroupKernel(KernelImpl impl, const PilEntry* prefix_rows,
                              std::size_t prefix_len,
                              const GapRequirement& gap,
                              const GroupSuffix* suffixes,
                              GroupOutput* outputs, std::size_t group_size,
                              KernelScratch& scratch) {
  if (impl == KernelImpl::kScalar) {
    CombinePrefixGroup(prefix_rows, prefix_len, gap, suffixes, outputs,
                       group_size, scratch.scalar);
    return;
  }
  const std::int64_t min_gap = gap.min_gap();
  const std::int64_t max_gap = gap.max_gap();
  const std::uint64_t wbits = static_cast<std::uint64_t>(gap.flexibility());
  for (std::size_t j = 0; j < group_size; ++j) {
    GroupOutput& out = outputs[j];
    out.len = 0;
    out.support = SupportInfo{};
    if (prefix_len == 0 || suffixes[j].len == 0) continue;
    if (wbits <= 64 && CombinePairBits(impl, prefix_rows, prefix_len, min_gap,
                                       wbits, suffixes[j], out, scratch)) {
      continue;
    }
    CombinePairScalar(prefix_rows, prefix_len, min_gap, max_gap, suffixes[j],
                      out);
  }
}

}  // namespace pgm
