#ifndef PGM_CORE_PIL_ARENA_H_
#define PGM_CORE_PIL_ARENA_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/gap.h"
#include "core/guard.h"
#include "core/pil.h"

namespace pgm {

/// A half-open row range inside a PilArena: the arena-backed representation
/// of one pattern's partial index list. Spans are trivially copyable and
/// 16 bytes, so pattern tables stay compact; the rows themselves live in
/// the owning arena's contiguous buffer.
struct PilSpan {
  std::uint64_t offset = 0;
  std::uint64_t len = 0;

  bool empty() const { return len == 0; }
  std::uint64_t bytes() const { return len * sizeof(PilEntry); }
};

/// Contiguous bump storage for the PIL rows of one mining level.
///
/// The level-wise engines keep two arenas that ping-pong across levels: the
/// join reads level l-1's spans from the source arena and writes level l's
/// rows into the destination arena, then the source is Clear()ed (capacity
/// kept) and the roles swap. Once both arenas have grown to the run's
/// high-water mark, steady-state mining performs zero heap allocations in
/// the join loop.
///
/// Scratch/watermark protocol: rows appended above `watermark()` are
/// speculative join output ("scratch"). The serial consumer either
/// Promote()s a scratch span — compacting its rows down onto the watermark —
/// or abandons it; TruncateToWatermark() then reclaims everything
/// speculative at once. This is what lets parallel workers write candidate
/// PILs into disjoint pre-reserved slices and still end the level with the
/// retained rows densely packed.
///
/// The window in which scratch operations are legal is explicit: the join
/// driver brackets it with BeginScratch()/EndScratch(), and Promote /
/// TruncateToWatermark assert the window is open (debug builds; the
/// `arena-scratch` pgm_lint rule enforces the same pairing textually at
/// build time). EndScratch additionally asserts no speculative rows
/// survived — every scratch row was either promoted or truncated — which is
/// the structural half of the ledger-balance invariant.
///
/// Guard accounting: the arena charges its *capacity* against the guard's
/// memory ledger — the delta on every growth, the whole capacity back on
/// destruction (or move-assignment). Capacity never shrinks while the arena
/// lives, so the ledger carries each arena's high-water footprint rather
/// than per-PIL vector capacities, and it drains to zero exactly when the
/// arenas die with the run.
///
/// Thread safety: Reserve/Allocate/Promote/Truncate/Clear are serial-only.
/// Concurrent workers may call Rows()/MutableRows() on disjoint spans
/// between a Reserve and the next serial mutation (the buffer is stable in
/// that window — this is the executor's fill phase).
class PilArena {
 public:
  /// An unaccounted arena (no guard).
  PilArena() = default;
  /// `guard` may be null (unaccounted); when non-null it must outlive the
  /// arena.
  explicit PilArena(MiningGuard* guard) : guard_(guard) {}
  ~PilArena() { Release(); }

  PilArena(const PilArena&) = delete;
  PilArena& operator=(const PilArena&) = delete;

  /// Moves transfer the buffer and its ledger charge; the source is left
  /// empty and chargeless.
  PilArena(PilArena&& other) noexcept { MoveFrom(other); }
  PilArena& operator=(PilArena&& other) noexcept {
    if (this != &other) {
      Release();
      MoveFrom(other);
    }
    return *this;
  }

  /// Grows capacity to at least `total_rows` (geometric growth, never
  /// shrinks) and charges the delta to the guard. Returns false when the
  /// charge tripped the memory budget — the capacity is still available, so
  /// the caller can finish the in-flight block before unwinding (the same
  /// "deliver what was paid for" contract the per-vector ledger had).
  /// [[nodiscard]]: ignoring the verdict would mine past a tripped budget.
  [[nodiscard]] bool Reserve(std::size_t total_rows);

  /// Appends `len` uninitialized rows and returns their span. Capacity must
  /// have been Reserve()d. Serial-only.
  PilSpan Allocate(std::size_t len) {
    PilSpan span{size_, len};
    size_ += len;
    return span;
  }

  /// Appends one initialized row (first-level construction). Capacity must
  /// have been Reserve()d. Serial-only.
  void AppendRow(PilEntry row) { rows_[size_++] = row; }

  const PilEntry* Rows(const PilSpan& span) const {
    return rows_.data() + span.offset;
  }
  PilEntry* MutableRows(const PilSpan& span) {
    return rows_.data() + span.offset;
  }

  /// Rows in use (retained + scratch).
  std::uint64_t size() const { return size_; }
  /// The retained frontier: rows below it are promoted level output, rows
  /// at or above it are speculative scratch.
  std::uint64_t watermark() const { return watermark_; }

  /// Opens the scratch window: the caller is about to Allocate speculative
  /// spans and consume them with Promote/TruncateToWatermark. No scratch
  /// rows may be pending from a previous window.
  void BeginScratch() {
    assert(!scratch_open_ && "BeginScratch inside an open scratch window");
    assert(size_ == watermark_ && "scratch rows pending at BeginScratch");
    scratch_open_ = true;
  }

  /// Closes the scratch window. Every speculative row must have been
  /// promoted or truncated.
  void EndScratch() {
    assert(scratch_open_ && "EndScratch without BeginScratch");
    assert(size_ == watermark_ && "scratch rows leaked past EndScratch");
    scratch_open_ = false;
  }

  /// True between BeginScratch and EndScratch.
  bool scratch_open() const { return scratch_open_; }

  /// Compacts a scratch span down onto the watermark and returns its final
  /// span. Spans must be promoted in increasing offset order (the serial
  /// merge's candidate order), which guarantees the destination never
  /// overtakes the source. Legal only inside a scratch window.
  PilSpan Promote(const PilSpan& span);

  /// Drops all scratch rows (size back to the watermark). Legal only inside
  /// a scratch window.
  void TruncateToWatermark() {
    assert(scratch_open_ && "TruncateToWatermark outside a scratch window");
    size_ = watermark_;
  }

  /// Marks everything currently in the arena as retained (used after
  /// first-level construction, where every row is level output).
  void SealWatermark() { watermark_ = size_; }

  /// Empties the arena but keeps the capacity and its ledger charge — the
  /// ping-pong reuse path. Illegal inside a scratch window.
  void Clear() {
    assert(!scratch_open_ && "Clear inside an open scratch window");
    size_ = 0;
    watermark_ = 0;
  }

  /// sup(P) for an arena-backed pattern.
  SupportInfo Support(const PilSpan& span) const {
    return SupportOfRows(Rows(span), span.len);
  }

  /// Capacity bytes currently charged to the guard (the arena's high-water
  /// footprint).
  std::uint64_t capacity_bytes() const {
    return rows_.size() * sizeof(PilEntry);
  }

  /// Number of buffer growths since construction. A warmed-up arena stops
  /// growing: steady-state levels report zero new growths, which is the
  /// "zero allocations in the join loop" claim in checkable form.
  std::uint64_t growth_count() const { return growths_; }

 private:
  void Release();
  void MoveFrom(PilArena& other);

  MiningGuard* guard_ = nullptr;
  // Sized to capacity up front (Reserve resizes, Allocate only bumps), so
  // worker threads never observe a reallocation.
  std::vector<PilEntry> rows_;
  std::uint64_t size_ = 0;
  std::uint64_t watermark_ = 0;
  std::uint64_t growths_ = 0;
  bool scratch_open_ = false;
};

/// One suffix input of a prefix-group join.
struct GroupSuffix {
  const PilEntry* rows = nullptr;
  std::size_t len = 0;
};

/// One candidate's output slot: `rows` must point at a pre-reserved slice of
/// at least the prefix length (Combine emits at most one row per prefix
/// row). The kernel sets `len` and `support`.
struct GroupOutput {
  PilEntry* rows = nullptr;
  std::size_t len = 0;
  SupportInfo support;
};

/// Reusable per-worker state for CombinePrefixGroup, so the kernel performs
/// no allocation once warmed up to the largest group it has seen.
class GroupJoinScratch {
 public:
  struct State {
    std::size_t lo = 0;
    std::size_t hi = 0;
    internal::WindowSum window;
    unsigned __int128 support_sum = 0;
    bool support_saturated = false;
  };

  State* Prepare(std::size_t group_size) {
    if (states_.size() < group_size) states_.resize(group_size);
    for (std::size_t i = 0; i < group_size; ++i) states_[i] = State{};
    return states_.data();
  }

 private:
  std::vector<State> states_;
};

/// The arena join kernel: combines one prefix PIL with every suffix PIL of
/// its prefix group, writing each candidate's rows into its pre-reserved
/// output slice. The prefix rows are streamed in cache-sized blocks, each
/// block replayed per suffix with that suffix's window state held in
/// registers (see the comment in the implementation). Arithmetic is
/// identical to PartialIndexList::Combine followed by TotalSupport — same
/// sliding window, same saturation handling — so row contents and supports
/// are byte-identical to the per-candidate path; only the order in which
/// (prefix row, suffix) pairs are visited changes, never the per-suffix
/// sequence of window operations.
void CombinePrefixGroup(const PilEntry* prefix_rows, std::size_t prefix_len,
                        const GapRequirement& gap, const GroupSuffix* suffixes,
                        GroupOutput* outputs, std::size_t group_size,
                        GroupJoinScratch& scratch);

}  // namespace pgm

#endif  // PGM_CORE_PIL_ARENA_H_
