#ifndef PGM_CORE_EM_H_
#define PGM_CORE_EM_H_

#include <cstdint>
#include <vector>

#include "core/gap.h"
#include "seq/sequence.h"
#include "util/status.h"

namespace pgm {

/// Result of the e_m analysis of Section 4.2.
struct EmResult {
  /// k_values[r] = K_r for every 0-based start position r: the count of the
  /// most frequently observed character string over all length-(m+1) offset
  /// sequences starting at r. 0 when no complete offset sequence fits.
  std::vector<std::uint64_t> k_values;
  /// e_m = max_r K_r.
  std::uint64_t em = 0;
  /// Order m the statistic was computed for.
  std::int64_t m = 0;
};

/// Computes e_m exactly. `m >= 1` is the number of *gapped extensions*; each
/// examined offset sequence has m+1 positions. Uses a multiplicity-weighted
/// string DFS: a search state maps reachable positions to the number of
/// offset-sequence prefixes landing there, branching per character — far
/// cheaper than enumerating the W^m raw offset sequences because branches
/// whose total multiplicity drops to 1 terminate immediately.
///
/// Returns InvalidArgument for m < 1.
StatusOr<EmResult> ComputeEm(const Sequence& sequence,
                             const GapRequirement& gap, std::int64_t m);

/// Test reference: K_r by naive enumeration of every length-(m+1) offset
/// sequence starting at 0-based position `r` (exponential in m; tests only).
std::uint64_t BruteForceKr(const Sequence& sequence, const GapRequirement& gap,
                           std::int64_t m, std::size_t r);

}  // namespace pgm

#endif  // PGM_CORE_EM_H_
