#ifndef PGM_CORE_TRACE_H_
#define PGM_CORE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/limits.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace pgm {

struct MiningResult;

/// Structured trace events emitted by the mining engines. Each kind has a
/// fixed JSON key schema (see MiningTrace::ToJson), so consumers can parse
/// the stream without guessing which fields are meaningful.
enum class TraceEventKind {
  /// A mining run began; `detail` names the algorithm.
  kRunStart,
  /// A level's candidate set was generated (or, for the first level, its
  /// analytic |Σ|^l count fixed): level, candidates, and the λ/λ′-derived
  /// thresholds the level will apply.
  kLevelStart,
  /// A level finished (completed == true) or was cut short by the guard:
  /// candidates generated, candidates actually evaluated (PIL join +
  /// support count), how many met the full threshold (frequent), how many
  /// met the relaxed threshold and seed the next join (retained), and how
  /// many were pruned (generated - retained).
  kLevelEnd,
  /// The MiningGuard latched a termination reason; `detail` carries it.
  kGuardTrip,
  /// MPPm's Theorem 2 phase: the e_m statistic and the estimated n.
  kEstimate,
  /// One ParallelLevelExecutor::ExecuteJoin call: candidates delivered to
  /// the sink, worker count, wall-clock seconds, and the driver's
  /// pipeline-stage split (fill/merge/stall seconds). Volatile
  /// (thread/timing dependent) — exported only with
  /// TraceJsonOptions::include_volatile.
  kShardTiming,
  /// The run finished; `detail` carries the termination reason.
  kRunEnd,

  // --- Serving-layer events (src/serve) ---
  /// A job passed admission control and entered the queue.
  kJobAdmitted,
  /// Admission control rejected a job (queue full or service draining);
  /// `retry_after_ms` carries the hint returned to the client.
  kJobShed,
  /// A worker dequeued the job and began executing it; `detail` names the
  /// algorithm.
  kJobStart,
  /// The job finished (successfully, partially, or with an error); `detail`
  /// carries the termination reason or status code name, `cache_hit` whether
  /// the result came from the ResultCache.
  kJobEnd,

  // --- Corpus-executor events (src/corpus) ---
  /// The corpus aggregator opened one fragment's event stream: `fragment`
  /// is the plan ordinal, `detail` the record id, `offset`/`candidates` the
  /// fragment's window start and length within its record. The fragment's
  /// own run events (run_start..run_end) follow, then kFragmentEnd — the
  /// aggregator emits fragments in ordinal order regardless of which worker
  /// mined them first, so the stream is byte-stable across thread counts.
  kFragmentStart,
  /// The fragment's stream closed: `detail` carries the per-fragment
  /// termination reason ("skipped" when a corpus-level budget trip or an
  /// error prevented mining it), `patterns` its frequent-pattern count.
  kFragmentEnd,
};

const char* TraceEventKindToString(TraceEventKind kind);

/// One trace event. Only the fields its kind documents are meaningful; the
/// rest stay at their defaults.
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kRunStart;
  std::int64_t level = 0;
  std::uint64_t candidates = 0;
  std::uint64_t evaluated = 0;
  std::uint64_t frequent = 0;
  std::uint64_t retained = 0;
  std::uint64_t pruned = 0;
  bool completed = false;
  double lambda = 0.0;
  double full_threshold = 0.0;
  double relaxed_threshold = 0.0;
  std::uint64_t em = 0;
  std::int64_t estimated_n = -1;
  std::uint64_t patterns = 0;
  std::uint64_t levels = 0;
  /// Algorithm name (kRunStart, kJobStart) or termination reason / status
  /// code name (kGuardTrip, kRunEnd, kJobEnd).
  std::string detail;
  /// Join-kernel tier (core/kernel.h). kRunStart carries the *configured*
  /// tier (MinerConfig::kernel_tier — "auto"/"scalar"/"bits"/"avx2");
  /// kShardTiming carries the *resolved* implementation the level actually
  /// ran ("scalar"/"bits"/"avx2"). Deterministic given the config — results
  /// are byte-identical across tiers — so it is NOT volatile-gated; but the
  /// resolved value can differ across machines (CPUID), which is fine
  /// because shard_timing events as a whole are volatile.
  std::string kernel_tier;

  // Serving-layer fields (kJob* events only).
  std::int64_t job = 0;
  std::int64_t retry_after_ms = 0;
  bool cache_hit = false;

  // Corpus-executor fields (kFragment* events only): the fragment's plan
  // ordinal and its window offset within its source record (the window
  // length rides in `candidates`).
  std::int64_t fragment = 0;
  std::uint64_t offset = 0;

  // Volatile fields: wall-clock and thread-count dependent, so they are not
  // byte-stable across runs. Exported only with include_volatile.
  std::int64_t workers = 0;
  double seconds = 0.0;
  std::uint64_t memory_bytes = 0;
  // Pipeline-stage split of the driver's time inside one ExecuteJoin
  // (kShardTiming only): kernel fills the driver ran itself, sink merging,
  // and waiting on pieces in flight on other workers.
  double fill_seconds = 0.0;
  double merge_seconds = 0.0;
  double stall_seconds = 0.0;
};

struct TraceJsonOptions {
  /// Include kShardTiming events and the workers/seconds/memory fields.
  /// Off by default so the export is byte-identical across thread counts
  /// and repeated runs of the same seed.
  bool include_volatile = false;
};

/// An append-only event log. Appends take a mutex (events are emitted at
/// level granularity, never per candidate, so this is far off the hot
/// path); reads snapshot under the same mutex.
class MiningTrace {
 public:
  MiningTrace() = default;
  MiningTrace(const MiningTrace&) = delete;
  MiningTrace& operator=(const MiningTrace&) = delete;

  void Append(TraceEvent event);
  std::size_t size() const;
  std::vector<TraceEvent> events() const;
  void Clear();

  /// Deterministic JSON export: {"events": [...]} with one object per line,
  /// fixed per-kind key order. See TraceJsonOptions for the determinism
  /// contract.
  std::string ToJson(const TraceJsonOptions& options = {}) const;

 private:
  mutable Mutex mutex_{kLockRankTrace};
  std::vector<TraceEvent> events_ PGM_GUARDED_BY(mutex_);
};

/// The observer handle mining callers attach to MinerConfig::observer.
/// Either pointer may be null; both sinks must outlive the mining call.
/// Metrics enable per-candidate histograms (support, PIL bytes); the trace
/// records the level-by-level event stream.
struct MiningObserver {
  MetricsRegistry* metrics = nullptr;
  MiningTrace* trace = nullptr;
};

namespace internal {

/// Per-run recording context the engines thread through their level loops.
///
/// The context always owns a private MetricsRegistry — the single source of
/// truth from which Finish() derives MiningResult::level_stats and
/// total_candidates — and mirrors it into the user's registry at Finish.
/// All methods except ObserveCandidate run in the engines' serial sections,
/// so the recorded values are independent of the thread count; the
/// per-candidate histograms are skipped entirely unless a user metrics
/// registry is attached, keeping the null-observer hot path to one branch.
class ObserverContext {
 public:
  /// `observer` may be null (the null-observer fast path); `algorithm` names
  /// the run in the kRunStart event and `kernel_tier` records the run's
  /// configured join-kernel tier there (KernelTierToString — the configured
  /// tier, not the resolved implementation, so exports stay byte-identical
  /// across machines).
  ObserverContext(const MiningObserver* observer, const char* algorithm,
                  const char* kernel_tier = "auto");

  ObserverContext(const ObserverContext&) = delete;
  ObserverContext& operator=(const ObserverContext&) = delete;

  /// A level's candidate set is fixed; records the generated count and the
  /// thresholds, and opens the level in the registry.
  void LevelStart(std::int64_t length, std::uint64_t candidates,
                  double lambda, double full_threshold,
                  double relaxed_threshold);

  /// One candidate evaluated (support counted). Hot path: a no-op branch
  /// unless a metrics registry is attached.
  void ObserveCandidate(std::uint64_t support, std::uint64_t pil_bytes) {
    if (support_histogram_ == nullptr) return;
    support_histogram_->Observe(support);
    pil_bytes_histogram_->Observe(pil_bytes);
  }

  /// Closes a level. `completed` is false when the guard cut it short.
  void LevelEnd(std::int64_t length, std::uint64_t candidates,
                std::uint64_t evaluated, std::uint64_t frequent,
                std::uint64_t retained, bool completed);

  /// The guard latched `reason` while working on `level` (0 = before any
  /// level started).
  void GuardTrip(TerminationReason reason, std::int64_t level);

  /// MPPm's n-estimation outcome.
  void Estimate(std::uint64_t em, std::int64_t estimated_n);

  /// One executor join pass (trace-only; volatile). `candidates` counts
  /// sink deliveries — not the plan size — so interrupted levels report the
  /// work that actually happened; `kernel` names the resolved join-kernel
  /// implementation the pass ran (KernelImplToString); the stage fields
  /// split the driver's time (see TraceEvent).
  void ShardTiming(std::uint64_t candidates, std::int64_t workers,
                   const char* kernel, double seconds, double fill_seconds,
                   double merge_seconds, double stall_seconds);

  /// Seals the run: derives result->level_stats and total_candidates from
  /// the run registry, records the run gauges and the kRunEnd event, and
  /// mirrors the run registry into the user's. Idempotent.
  void Finish(MiningResult* result);

  /// The run-private registry (authoritative for this run's counts).
  const MetricsRegistry& run_metrics() const { return run_metrics_; }

 private:
  MetricsRegistry* user_metrics_ = nullptr;
  MiningTrace* trace_ = nullptr;
  MetricsRegistry run_metrics_;
  Histogram* support_histogram_ = nullptr;   // null = histograms disabled
  Histogram* pil_bytes_histogram_ = nullptr;
  std::vector<std::int64_t> levels_;  // lengths, in LevelStart order
  std::int64_t current_level_ = 0;
  bool finished_ = false;
};

}  // namespace internal
}  // namespace pgm

#endif  // PGM_CORE_TRACE_H_
