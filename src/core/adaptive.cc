#include <algorithm>

#include "core/miner.h"
#include "util/stopwatch.h"

namespace pgm {

StatusOr<MiningResult> MineAdaptive(const Sequence& sequence,
                                    const MinerConfig& config) {
  PGM_RETURN_IF_ERROR(internal::ValidateConfig(sequence, config));
  if (config.initial_n < 1) {
    return Status::InvalidArgument("initial_n must be >= 1");
  }
  if (config.max_iterations < 1) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  Stopwatch watch;

  // The Section 6 sketch: run MPP with a cheap small n; whenever the
  // best-effort output contains a pattern longer than n, the guess was too
  // low — raise n to that length and re-run. Terminates because n grows
  // strictly and is capped at l1 by MineMpp.
  std::int64_t n = config.initial_n;
  std::int64_t iterations = 0;
  MiningResult result;
  while (true) {
    MinerConfig run_config = config;
    run_config.user_n = n;
    // The deadline governs the whole refinement loop: each inner run gets
    // only what remains of the overall budget. Memory and candidate caps
    // apply per run — a re-run starts from a clean slate.
    if (config.limits.deadline_ms >= 0) {
      const std::int64_t elapsed_ms =
          static_cast<std::int64_t>(watch.ElapsedSeconds() * 1000.0);
      run_config.limits.deadline_ms =
          std::max<std::int64_t>(0, config.limits.deadline_ms - elapsed_ms);
    }
    PGM_ASSIGN_OR_RETURN(result, MineMpp(sequence, run_config));
    ++iterations;
    // A truncated inner run ends the refinement: its partial result (and
    // its TerminationReason) is what the caller gets.
    if (!result.complete()) break;
    const std::int64_t longest = result.longest_frequent_length;
    if (longest <= n || iterations >= config.max_iterations) break;
    n = longest;
  }
  result.adaptive_iterations = iterations;
  result.total_seconds = result.mining_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace pgm
