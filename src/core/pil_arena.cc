#include "core/pil_arena.h"

// pgm-lint: allow(arena-scratch) — this file IMPLEMENTS the scratch
// protocol; the bracket lives in callers.

#include <algorithm>
#include <cassert>
#include <cstring>

#include "util/saturating.h"

namespace pgm {

bool PilArena::Reserve(std::size_t total_rows) {
  if (total_rows <= rows_.size()) return guard_ == nullptr || !guard_->stopped();
  // Geometric growth so a level loop performs O(log) growths, after which
  // the ping-pong reuse makes further levels allocation-free.
  const std::size_t grown = std::max(total_rows, rows_.size() * 2);
  const std::uint64_t delta =
      static_cast<std::uint64_t>(grown - rows_.size()) * sizeof(PilEntry);
  rows_.resize(grown);
  ++growths_;
  // Charge after growing: the rows exist either way, and the caller is
  // allowed to finish the current block with them (the ledger stays truthful
  // about live memory even past the budget).
  return guard_ == nullptr || guard_->ChargeMemory(delta);
}

PilSpan PilArena::Promote(const PilSpan& span) {
  assert(scratch_open_ && "Promote outside a scratch window");
  assert(span.offset >= watermark_);
  PilSpan promoted{watermark_, span.len};
  if (span.offset != watermark_ && span.len > 0) {
    std::memmove(rows_.data() + watermark_, rows_.data() + span.offset,
                 span.len * sizeof(PilEntry));
  }
  watermark_ += span.len;
  return promoted;
}

void PilArena::Release() {
  if (guard_ != nullptr && !rows_.empty()) {
    guard_->ReleaseMemory(capacity_bytes());
  }
  rows_.clear();
  size_ = 0;
  watermark_ = 0;
}

void PilArena::MoveFrom(PilArena& other) {
  guard_ = other.guard_;
  rows_ = std::move(other.rows_);
  size_ = other.size_;
  watermark_ = other.watermark_;
  growths_ = other.growths_;
  scratch_open_ = other.scratch_open_;
  other.guard_ = nullptr;
  other.rows_.clear();
  other.size_ = 0;
  other.watermark_ = 0;
  other.growths_ = 0;
  other.scratch_open_ = false;
}

void CombinePrefixGroup(const PilEntry* prefix_rows, std::size_t prefix_len,
                        const GapRequirement& gap, const GroupSuffix* suffixes,
                        GroupOutput* outputs, std::size_t group_size,
                        GroupJoinScratch& scratch) {
  GroupJoinScratch::State* states = scratch.Prepare(group_size);
  for (std::size_t j = 0; j < group_size; ++j) outputs[j].len = 0;

  const std::int64_t min_gap = gap.min_gap();
  const std::int64_t max_gap = gap.max_gap();
  // Blocked iteration: each block of prefix rows is streamed from memory
  // once and then replayed per suffix out of cache, while that suffix's
  // window state lives in registers (loaded from and stored back to the
  // scratch array once per block, amortized over kBlockRows rows). A
  // straight prefix-row-outer loop would instead touch every suffix's
  // ~64-byte state per row, which costs more than the prefix re-streaming
  // it avoids. Each suffix still sees exactly the per-row Add/Remove/Total
  // sequence of PartialIndexList::Combine, so outputs are byte-identical.
  constexpr std::size_t kBlockRows = 256;
  for (std::size_t block_begin = 0; block_begin < prefix_len;
       block_begin += kBlockRows) {
    const std::size_t block_end =
        std::min(prefix_len, block_begin + kBlockRows);
    for (std::size_t j = 0; j < group_size; ++j) {
      GroupJoinScratch::State st = states[j];
      GroupOutput& out = outputs[j];
      const PilEntry* suffix_rows = suffixes[j].rows;
      const std::size_t suffix_len = suffixes[j].len;
      PilEntry* out_rows = out.rows;
      std::size_t out_len = out.len;
      for (std::size_t i = block_begin; i < block_end; ++i) {
        const std::int64_t window_begin =
            static_cast<std::int64_t>(prefix_rows[i].pos) + min_gap + 1;
        const std::int64_t window_end =
            static_cast<std::int64_t>(prefix_rows[i].pos) + max_gap + 1;
        while (st.hi < suffix_len &&
               static_cast<std::int64_t>(suffix_rows[st.hi].pos) <=
                   window_end) {
          st.window.Add(suffix_rows[st.hi].count);
          ++st.hi;
        }
        while (st.lo < st.hi &&
               static_cast<std::int64_t>(suffix_rows[st.lo].pos) <
                   window_begin) {
          st.window.Remove(suffix_rows[st.lo].count);
          ++st.lo;
        }
        const std::uint64_t total = st.window.Total();
        if (total > 0) {
          out_rows[out_len++] = PilEntry{prefix_rows[i].pos, total};
          if (IsSaturated(total)) st.support_saturated = true;
          st.support_sum += total;
        }
      }
      out.len = out_len;
      states[j] = st;
    }
  }

  for (std::size_t j = 0; j < group_size; ++j) {
    const GroupJoinScratch::State& st = states[j];
    SupportInfo info;
    if (st.support_saturated ||
        st.support_sum >= static_cast<unsigned __int128>(kSaturatedCount)) {
      info.count = kSaturatedCount;
      info.saturated = true;
    } else {
      info.count = static_cast<std::uint64_t>(st.support_sum);
      info.saturated = false;
    }
    outputs[j].support = info;
  }
}

}  // namespace pgm
