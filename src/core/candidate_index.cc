#include "core/candidate_index.h"

#include <string_view>
#include <unordered_map>

#include "core/parallel.h"

namespace pgm {
namespace internal {

JoinPlan JoinPlan::SelfJoin(const std::vector<ArenaEntry>& level,
                            ParallelLevelExecutor* executor) {
  JoinPlan plan;
  if (level.empty()) return plan;
  const std::size_t len = level.front().symbols.size();

  // Bucket level entries by their (len-1)-prefix. Keys are views into the
  // entries' stable symbol storage, so neither bucketing nor probing
  // allocates a key string. Each bucket becomes one contiguous slice of the
  // rights pool, shared by every left whose suffix matches it.
  std::unordered_map<std::string_view, std::uint32_t> group_of_prefix;
  group_of_prefix.reserve(level.size());
  struct Group {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
  };
  std::vector<Group> groups;
  {
    std::vector<std::vector<std::uint32_t>> members;
    for (std::uint32_t i = 0; i < level.size(); ++i) {
      const std::string_view prefix =
          std::string_view(level[i].symbols).substr(0, len - 1);
      auto [it, inserted] = group_of_prefix.emplace(
          prefix, static_cast<std::uint32_t>(members.size()));
      if (inserted) members.emplace_back();
      members[it->second].push_back(i);
    }
    groups.reserve(members.size());
    std::size_t total = 0;
    for (const auto& m : members) total += m.size();
    plan.rights_pool_.reserve(total);
    for (const auto& m : members) {
      Group g;
      g.begin = static_cast<std::uint32_t>(plan.rights_pool_.size());
      plan.rights_pool_.insert(plan.rights_pool_.end(), m.begin(), m.end());
      g.end = static_cast<std::uint32_t>(plan.rights_pool_.size());
      groups.push_back(g);
    }
  }

  // One task per (left, matching group), in left order: candidate t's
  // position in the flattened task list equals its position in the old
  // left-major CandidateSpec vector, so the executor's merge — and with it
  // the mined output — is unchanged by the grouping. The probes are
  // read-only lookups in the (now frozen) prefix map writing one slot per
  // left, so they parallelize; the compaction that fixes the task order
  // stays serial.
  constexpr std::uint32_t kNoGroup = ~std::uint32_t{0};
  std::vector<std::uint32_t> match(level.size(), kNoGroup);
  auto probe = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const std::string_view suffix_key =
          std::string_view(level[i].symbols).substr(1);
      auto it = group_of_prefix.find(suffix_key);
      if (it != group_of_prefix.end()) match[i] = it->second;
    }
  };
  if (executor != nullptr) {
    executor->ParallelFor(level.size(), 1024, probe);
  } else {
    probe(0, level.size());
  }
  for (std::uint32_t i = 0; i < level.size(); ++i) {
    if (match[i] == kNoGroup) continue;
    const Group& g = groups[match[i]];
    plan.tasks_.push_back(JoinTask{i, g.begin, g.end});
    plan.num_candidates_ += g.end - g.begin;
  }
  return plan;
}

JoinPlan JoinPlan::CrossProduct(std::uint32_t num_left,
                                std::uint32_t num_right) {
  JoinPlan plan;
  if (num_left == 0 || num_right == 0) return plan;
  plan.rights_pool_.reserve(num_right);
  for (std::uint32_t j = 0; j < num_right; ++j) plan.rights_pool_.push_back(j);
  plan.tasks_.reserve(num_left);
  for (std::uint32_t i = 0; i < num_left; ++i) {
    plan.tasks_.push_back(JoinTask{i, 0, num_right});
  }
  plan.num_candidates_ =
      static_cast<std::uint64_t>(num_left) * num_right;
  return plan;
}

}  // namespace internal
}  // namespace pgm
