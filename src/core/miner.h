#ifndef PGM_CORE_MINER_H_
#define PGM_CORE_MINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/gap.h"
#include "core/guard.h"
#include "core/offset_counter.h"
#include "core/parallel.h"
#include "core/pattern.h"
#include "core/pil.h"
#include "core/trace.h"
#include "seq/sequence.h"
#include "util/limits.h"
#include "util/status.h"

namespace pgm {

/// Shared configuration for all mining algorithms. The gap requirement and
/// support threshold follow Section 3; the remaining knobs select algorithm
/// variants from Sections 5 and 6.
struct MinerConfig {
  /// Minimum gap N between successive pattern characters.
  std::int64_t min_gap = 0;
  /// Maximum gap M between successive pattern characters.
  std::int64_t max_gap = 0;
  /// ρs as a fraction in (0, 1] (the paper quotes percentages: 0.003% is
  /// 0.00003 here). A pattern P of length l is frequent iff
  /// sup(P) >= ρs * N_l.
  double min_support_ratio = 0.0;
  /// First mined pattern length. The paper starts at 3 because length-1/2
  /// patterns over a 4-letter alphabet are always frequent and thus
  /// uninteresting; tests use 1 to cross-validate against enumeration.
  std::int64_t start_length = 3;
  /// Hard cap on pattern length; -1 means "until the candidate set empties
  /// or l2 is reached". Enumeration treats this as its level budget.
  std::int64_t max_length = -1;

  // --- MPP ---
  /// The user's estimate n of the longest frequent pattern length; -1 means
  /// "no idea" which the paper calls the worst case (n = l1). Values above
  /// l1 are clamped to l1 (algorithm line 3).
  std::int64_t user_n = -1;

  // --- MPPm ---
  /// The order m of the e_m statistic (Theorem 2).
  std::int64_t em_order = 10;
  /// When false, the n-estimation uses the loose Theorem 1 λ instead of the
  /// tight Theorem 2 λ' (ablation; typically estimates n = l1).
  bool use_em_bound = true;

  // --- Adaptive ---
  /// Starting n of the adaptive refinement loop (Section 6 sketch).
  std::int64_t initial_n = 10;
  /// Safety bound on adaptive iterations.
  std::int64_t max_iterations = 16;

  // --- Parallel execution ---
  /// Worker threads for level evaluation: 1 = serial (the default), 0 = one
  /// per hardware thread, T > 1 = exactly T workers. Candidates within a
  /// level are evaluated in parallel and merged in candidate order, so runs
  /// that no resource limit interrupts produce byte-identical results at
  /// every thread count; under an interrupting limit the partial-but-sound
  /// contract holds at every thread count, but the truncation point may
  /// differ.
  std::int64_t threads = 1;
  /// Join-kernel tier for the level joins (core/kernel.h, DESIGN.md §7e).
  /// kAuto picks the bitset kernel — AVX2-vectorized when the CPU supports
  /// it — whenever the window width W = max_gap - min_gap + 1 fits one
  /// 64-bit mask, and the scalar kernel otherwise. Every tier produces
  /// byte-identical rows and supports (the scalar kernel is the
  /// authoritative oracle the others are differentially tested against),
  /// so this knob only affects speed, never results.
  KernelTier kernel_tier = KernelTier::kAuto;

  // --- Resource governance ---
  /// Budgets for the run (defaults: unlimited). When a budget is exhausted
  /// the miners return ok() with a partial-but-sound result; see
  /// MiningResult::termination. For Adaptive, the deadline covers the whole
  /// refinement loop, not each inner MPP run.
  ResourceLimits limits;
  /// Optional cooperative cancellation; must outlive the mining call.
  /// Polled at level boundaries and every MiningGuard::kTickPeriod PIL
  /// extensions.
  const CancelToken* cancel = nullptr;

  // --- Observability ---
  /// Optional metrics/trace sinks (core/trace.h); the observer and its
  /// registries must outlive the mining call. Null (the default) keeps the
  /// per-candidate hot path at a single predicted branch. Adaptive attaches
  /// the observer to every inner MPP run, so counters accumulate across
  /// iterations and the trace carries one run_start/run_end pair per
  /// iteration.
  const MiningObserver* observer = nullptr;
};

/// One frequent pattern in a mining result.
struct FrequentPattern {
  Pattern pattern;
  /// sup(P): number of distinct matching offset sequences (clamped).
  std::uint64_t support = 0;
  /// True when the support counter saturated (degenerate inputs).
  bool saturated = false;
  /// sup(P) / N_l.
  double support_ratio = 0.0;
};

/// Per-level candidate accounting (the raw material of the paper's Table 3).
/// A view derived from the run's metrics registry at finish time: the
/// engines record per-level counters as they mine and this struct is read
/// back from them, so it agrees with any attached MetricsRegistry by
/// construction.
struct LevelStats {
  /// Pattern length of the level.
  std::int64_t length = 0;
  /// |C_l|: candidates generated (for the first level: |Σ|^start_length).
  std::uint64_t num_candidates = 0;
  /// |L_l|: candidates meeting the full threshold ρs * N_l.
  std::uint64_t num_frequent = 0;
  /// |L̂_l|: candidates meeting the relaxed threshold λ_{n,n-l} * ρs * N_l
  /// (these seed the next level's join).
  std::uint64_t num_retained = 0;
};

/// The outcome of a mining run.
struct MiningResult {
  /// All frequent patterns, sorted by (length, symbols).
  std::vector<FrequentPattern> patterns;
  /// One entry per processed level, in order.
  std::vector<LevelStats> level_stats;

  /// The effective n the level thresholds used (user, clamp, or estimate).
  std::int64_t n_used = 0;
  /// Completeness guarantee: every frequent pattern with length <= this
  /// bound is present; longer ones are returned best-effort.
  std::int64_t guaranteed_complete_up_to = 0;
  /// Length of the longest frequent pattern found (0 when none).
  std::int64_t longest_frequent_length = 0;
  /// Total candidates across levels. Derived from the run's metrics
  /// registry, so it equals the (saturating) sum of
  /// LevelStats::num_candidates and includes the level a budget trip cut
  /// short — partial runs report the true count of generated candidates.
  std::uint64_t total_candidates = 0;

  /// Why the run stopped. Anything except kCompleted marks a partial
  /// result: every returned pattern is genuinely frequent, patterns with
  /// length <= guaranteed_complete_up_to are all present, and longer ones
  /// may be missing. Budget exhaustion is NOT an error — the Status stays
  /// OK and the caller inspects this field.
  TerminationReason termination = TerminationReason::kCompleted;
  /// Peak PIL memory observed by the guard, in bytes. Measured as the
  /// high-water capacity of the run's PIL arenas (core/pil_arena.h) — the
  /// memory actually held for pattern rows — not per-pattern heap blocks.
  std::uint64_t pil_memory_peak_bytes = 0;

  /// True when no budget, deadline, or cancellation cut the run short.
  bool complete() const {
    return termination == TerminationReason::kCompleted;
  }

  /// MPPm: the computed e_m and its estimate of n (-1 when not applicable).
  std::uint64_t em = 0;
  std::int64_t estimated_n = -1;
  /// Adaptive: number of MPP invocations performed (0 when not applicable).
  std::int64_t adaptive_iterations = 0;

  /// Wall-clock accounting (seconds).
  double em_seconds = 0.0;
  double mining_seconds = 0.0;
  double total_seconds = 0.0;
};

/// MPP (Section 5.1): level-wise mining with PIL-based support counting and
/// the Theorem 1 λ-relaxed thresholds, steered by the user estimate n
/// (config.user_n). Guarantees completeness for lengths <= min(n, l1) and
/// returns longer frequent patterns best-effort.
StatusOr<MiningResult> MineMpp(const Sequence& sequence,
                               const MinerConfig& config);

/// MPPm (Section 5.2): MPP with n estimated automatically from the e_m
/// statistic (config.em_order) and the first level's support spectrum.
StatusOr<MiningResult> MineMppm(const Sequence& sequence,
                                const MinerConfig& config);

/// The brute-force baseline of Section 6: every |Σ|^l pattern of every level
/// is counted; no pruning. Practical only for small alphabets/levels — set
/// config.max_length. Exact (it is the reference the tests validate
/// against).
StatusOr<MiningResult> MineEnumeration(const Sequence& sequence,
                                       const MinerConfig& config);

/// The adaptive-n refinement the paper sketches at the end of Section 6:
/// run MPP with a small n, raise n to the longest pattern found, repeat
/// until stable.
StatusOr<MiningResult> MineAdaptive(const Sequence& sequence,
                                    const MinerConfig& config);

namespace internal {

// ArenaEntry, BuiltLevel, JoinPlan (core/candidate_index.h) and the
// ParallelLevelExecutor (core/parallel.h) are re-exported here.

/// Validates the shared configuration fields against the sequence.
Status ValidateConfig(const Sequence& sequence, const MinerConfig& config);

/// Builds the arena-backed level of every length-k pattern with non-empty
/// PIL. Used to seed the level-wise loop and by MPPm's n-estimation. When
/// `guard` is non-null every PIL extension ticks it and the level arena's
/// capacity is charged against the memory budget; the charge travels with
/// the returned BuiltLevel and drains when it is destroyed. On a tripped
/// guard the returned level is partial and `guard->stopped()` is true.
/// When `executor` is non-null the level joins run on it; null means
/// serial. `kernel` selects the join-kernel implementation (core/kernel.h)
/// — every tier produces byte-identical levels, so the scalar default is a
/// correctness-neutral convenience for tests and benchmarks.
BuiltLevel BuildAllPatternsOfLength(
    const Sequence& sequence, const GapRequirement& gap, std::int64_t k,
    MiningGuard* guard = nullptr, ParallelLevelExecutor* executor = nullptr,
    KernelImpl kernel = KernelImpl::kScalar);

/// The shared level-wise engine behind MPP and MPPm. `n_effective` is the
/// (already clamped) n; `seed_level` may carry a precomputed first level to
/// avoid duplicate work (pass a default-constructed BuiltLevel to build
/// internally — non-empty seeds must be backed by arenas charged against
/// `guard`). The guard is checked at every level boundary and ticked per
/// PIL extension; when it trips, the engine stops, tightens
/// guaranteed_complete_up_to to the last fully processed level, and returns
/// the partial result with the guard's reason. The engine's arenas release
/// their charges when they go out of scope, so on every exit the guard's
/// ledger returns to whatever the caller's outstanding charges are.
/// `executor` runs the level joins (null = construct one from
/// config.threads internally). `ctx` is the caller's recording context
/// (null = the engine creates one from config.observer); the engine calls
/// ctx->Finish, which derives the result's LevelStats/total_candidates from
/// the run registry.
StatusOr<MiningResult> RunLevelwise(const Sequence& sequence,
                                    const MinerConfig& config,
                                    const OffsetCounter& counter,
                                    std::int64_t n_effective,
                                    BuiltLevel seed_level, MiningGuard& guard,
                                    ParallelLevelExecutor* executor = nullptr,
                                    ObserverContext* ctx = nullptr);

}  // namespace internal
}  // namespace pgm

#endif  // PGM_CORE_MINER_H_
