#ifndef PGM_CORE_OFFSET_COUNTER_H_
#define PGM_CORE_OFFSET_COUNTER_H_

#include <cstdint>
#include <vector>

#include "core/gap.h"
#include "util/status.h"

namespace pgm {

/// Computes N_l — the number of distinct length-l offset sequences of a
/// length-L subject sequence under a gap requirement [N, M] — and the
/// pruning factors λ and λ' derived from it (Section 4 of the paper).
///
/// Three cases (Section 4.1):
///   1. l > l2:        N_l = 0 (even the minimum span exceeds L).
///   2. l <= l1:       N_l = [L - (l-1)((M+N)/2 + 1)] * W^(l-1) (Theorem 4).
///   3. l1 < l <= l2:  N_l = sum of f(l, i) for i in [maxspan(l)-L,
///                     (l-1)(W-1)], where f obeys the recurrence
///                     f(k+1, i) = sum_{j=1..W} f(k, i-W+j)  (Equation 8)
///                     with f(l, i<=0) = W^(l-1) and f(l, i>(l-1)(W-1)) = 0.
///
/// Values are computed in `long double` (64-bit mantissa on x86-64): exact
/// for all values below 2^64 and a tight approximation beyond, which is all
/// the support-ratio thresholds need. Case-3 rows are built incrementally
/// and cached, so repeated queries are O(1) after the first.
class OffsetCounter {
 public:
  /// `sequence_length` is L >= 0.
  OffsetCounter(std::int64_t sequence_length, const GapRequirement& gap);

  std::int64_t sequence_length() const { return sequence_length_; }
  const GapRequirement& gap() const { return gap_; }

  /// l1: length of the longest pattern whose maximum span fits in L.
  std::int64_t l1() const { return l1_; }
  /// l2: length of the longest pattern whose minimum span fits in L.
  std::int64_t l2() const { return l2_; }

  /// N_l for l >= 1. Returns 0 for l > l2.
  long double Count(std::int64_t length) const;

  /// λ_{l,d} = N_l / (N_{l-d} * W^d): the factor by which the support-ratio
  /// threshold of a length-(l-d) sub-pattern of a frequent length-l pattern
  /// may be relaxed (Theorem 1 / Equation 2). Requires 0 <= d < l, l <= l2.
  /// Always in [0, 1].
  long double Lambda(std::int64_t length, std::int64_t d) const;

  /// λ'_{l,d} = (W^m / e_m)^s * λ_{l,d} with s = floor(d/m): the tightened
  /// factor of Theorem 2 / Equation 5 for the length-(l-d) *prefix*.
  /// `em` must be >= 1 (computed by EmEstimator).
  long double LambdaPrime(std::int64_t length, std::int64_t d, std::int64_t m,
                          std::uint64_t em) const;

  /// f(l, i): the number of length-l offset sequences [0, c2, ..., cl] of a
  /// subject sequence of length maxspan(l) - i whose first offset is the
  /// first position. Exposed for tests of Theorem 3 and Equation 8.
  long double F(std::int64_t length, std::int64_t i) const;

 private:
  /// Extends the cached case-3 DP rows up to `length` and caches N_length.
  void EnsureComputed(std::int64_t length) const;

  std::int64_t sequence_length_;
  GapRequirement gap_;
  std::int64_t l1_;
  std::int64_t l2_;

  // Lazily grown cache: counts_[l-1] = N_l for 1 <= l <= computed_through_.
  mutable std::vector<long double> counts_;
  mutable std::int64_t computed_through_ = 0;
  // Rolling case-3 DP row over positions: row_[p] = number of
  // length-row_level_ offset sequences starting at position p. Grown only
  // when a case-3 length is actually requested.
  mutable std::vector<long double> row_;
  mutable std::int64_t row_level_ = 0;
};

/// Independent exact reference: counts length-l offset sequences by dynamic
/// programming over positions (O(L * l * W) time), saturating at 2^64-1.
/// Used by tests to validate OffsetCounter on small inputs.
std::uint64_t BruteForceCountOffsetSequences(std::int64_t sequence_length,
                                             const GapRequirement& gap,
                                             std::int64_t length);

}  // namespace pgm

#endif  // PGM_CORE_OFFSET_COUNTER_H_
