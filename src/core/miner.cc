#include "core/miner.h"

#include <algorithm>
#include <unordered_map>

#include "util/saturating.h"
#include "util/string_util.h"

namespace pgm {
namespace internal {

Status ValidateConfig(const Sequence& sequence, const MinerConfig& config) {
  if (sequence.empty()) {
    return Status::InvalidArgument("subject sequence must not be empty");
  }
  PGM_ASSIGN_OR_RETURN(GapRequirement gap,
                       GapRequirement::Create(config.min_gap, config.max_gap));
  (void)gap;
  if (!(config.min_support_ratio > 0.0) || config.min_support_ratio > 1.0) {
    return Status::InvalidArgument(
        StrFormat("min_support_ratio must lie in (0, 1], got %g",
                  config.min_support_ratio));
  }
  if (config.start_length < 1) {
    return Status::InvalidArgument("start_length must be >= 1");
  }
  if (config.max_length >= 0 && config.max_length < config.start_length) {
    return Status::InvalidArgument(
        "max_length must be >= start_length (or -1 for unbounded)");
  }
  return Status::OK();
}

namespace {

/// Generates the join of `level` with itself: for every pair (P1, P2) with
/// suffix(P1) == prefix(P2), the candidate P1[0] + P2. Returns tuples of
/// (candidate symbols, index of P1, index of P2). Works uniformly for all
/// lengths: joining length-1 entries keys on the empty string, i.e. the
/// full cross product.
struct CandidateSpec {
  std::string symbols;
  std::uint32_t left;
  std::uint32_t right;
};

std::vector<CandidateSpec> GenerateCandidates(
    const std::vector<LevelEntry>& level) {
  std::vector<CandidateSpec> candidates;
  if (level.empty()) return candidates;
  const std::size_t len = level.front().symbols.size();

  // Bucket level entries by their (len-1)-prefix.
  std::unordered_map<std::string, std::vector<std::uint32_t>> by_prefix;
  by_prefix.reserve(level.size());
  for (std::uint32_t i = 0; i < level.size(); ++i) {
    by_prefix[level[i].symbols.substr(0, len - 1)].push_back(i);
  }

  for (std::uint32_t i = 0; i < level.size(); ++i) {
    const std::string suffix_key = level[i].symbols.substr(1);
    auto it = by_prefix.find(suffix_key);
    if (it == by_prefix.end()) continue;
    for (std::uint32_t j : it->second) {
      CandidateSpec spec;
      spec.symbols.reserve(len + 1);
      spec.symbols.push_back(level[i].symbols.front());
      spec.symbols.append(level[j].symbols);
      spec.left = i;
      spec.right = j;
      candidates.push_back(std::move(spec));
    }
  }
  return candidates;
}

}  // namespace

std::vector<LevelEntry> BuildAllPatternsOfLength(const Sequence& sequence,
                                                 const GapRequirement& gap,
                                                 std::int64_t k,
                                                 MiningGuard* guard) {
  // Bytes charged for the level currently held; released when the level is
  // replaced. The final level's charge is handed off to the caller.
  std::uint64_t level_bytes = 0;
  auto charge = [&](const PartialIndexList& pil) {
    if (guard == nullptr) return true;
    const std::uint64_t bytes = pil.MemoryBytes();
    level_bytes += bytes;
    return guard->ChargeMemory(bytes);
  };

  // Length-1 patterns: one entry per alphabet symbol with occurrences.
  std::vector<LevelEntry> level;
  for (Symbol s = 0; s < sequence.alphabet().size(); ++s) {
    PartialIndexList pil = PartialIndexList::ForSymbol(sequence, s);
    if (pil.empty()) continue;
    LevelEntry entry;
    entry.symbols.assign(1, static_cast<char>(s));
    entry.pil = std::move(pil);
    const bool within_budget = charge(entry.pil);
    level.push_back(std::move(entry));
    if (!within_budget) return level;
  }
  for (std::int64_t length = 2; length <= k; ++length) {
    std::vector<LevelEntry> next;
    std::uint64_t next_bytes = 0;
    bool interrupted = false;
    for (CandidateSpec& spec : GenerateCandidates(level)) {
      if (guard != nullptr && !guard->Tick()) {
        interrupted = true;
        break;
      }
      PartialIndexList pil = PartialIndexList::Combine(
          level[spec.left].pil, level[spec.right].pil, gap);
      if (pil.empty()) continue;
      bool within_budget = true;
      if (guard != nullptr) {
        const std::uint64_t bytes = pil.MemoryBytes();
        next_bytes += bytes;
        within_budget = guard->ChargeMemory(bytes);
      }
      next.push_back(LevelEntry{std::move(spec.symbols), std::move(pil)});
      if (!within_budget) {
        interrupted = true;
        break;
      }
    }
    level = std::move(next);
    if (guard != nullptr) guard->ReleaseMemory(level_bytes);
    level_bytes = next_bytes;
    if (interrupted) break;
  }
  return level;
}

StatusOr<MiningResult> RunLevelwise(const Sequence& sequence,
                                    const MinerConfig& config,
                                    const OffsetCounter& counter,
                                    std::int64_t n_effective,
                                    std::vector<LevelEntry> seed_level,
                                    MiningGuard& guard) {
  PGM_RETURN_IF_ERROR(ValidateConfig(sequence, config));
  PGM_ASSIGN_OR_RETURN(GapRequirement gap,
                       GapRequirement::Create(config.min_gap, config.max_gap));

  MiningResult result;
  result.n_used = n_effective;
  result.guaranteed_complete_up_to = std::min(n_effective, counter.l1());

  // Last level whose candidates were all processed: on an interrupted run
  // the completeness guarantee shrinks to this horizon.
  std::int64_t last_completed_level = 0;
  auto finalize = [&]() {
    result.termination = guard.reason();
    result.pil_memory_peak_bytes = guard.memory_peak_bytes();
    if (!result.complete()) {
      result.guaranteed_complete_up_to =
          std::min(result.guaranteed_complete_up_to, last_completed_level);
    }
    std::sort(result.patterns.begin(), result.patterns.end(),
              [](const FrequentPattern& a, const FrequentPattern& b) {
                if (a.pattern.length() != b.pattern.length()) {
                  return a.pattern.length() < b.pattern.length();
                }
                return a.pattern.symbols() < b.pattern.symbols();
              });
  };

  const long double rho = config.min_support_ratio;
  const std::int64_t l2 = counter.l2();
  const std::size_t alphabet_size = sequence.alphabet().size();
  std::int64_t level_length = config.start_length;
  if (level_length > l2) {  // no offset sequences at all
    finalize();
    return result;
  }
  if (!guard.CheckNow()) {
    finalize();
    return result;
  }

  // λ factor applied at level i: Theorem 1's λ_{n,n-i} for i <= n, 1 beyond
  // (algorithm lines 4-7).
  auto level_lambda = [&](std::int64_t i) -> long double {
    if (i > n_effective) return 1.0L;
    return counter.Lambda(n_effective, n_effective - i);
  };

  // Bytes charged to the guard for the currently retained PILs.
  std::uint64_t retained_bytes = 0;

  // Processes one candidate (whose PIL is already charged to the guard):
  // records it as frequent when it clears the full threshold and appends it
  // to `retained_out` when it clears the relaxed one. Candidates failing
  // both thresholds free their PIL immediately (releasing the charge), so
  // peak memory is |L̂_l| + |L̂_{l+1}| lists rather than |C_{l+1}|.
  auto process_candidate = [&](LevelEntry&& entry, long double n_l,
                               long double full_threshold,
                               long double relaxed_threshold,
                               std::int64_t length, LevelStats& stats,
                               std::vector<LevelEntry>& retained_out,
                               std::uint64_t& retained_bytes_out) -> Status {
    const std::uint64_t entry_bytes = entry.pil.MemoryBytes();
    const SupportInfo support = entry.pil.TotalSupport();
    if (support.count == 0) {
      guard.ReleaseMemory(entry_bytes);
      return Status::OK();
    }
    const long double support_ld = static_cast<long double>(support.count);
    if (support_ld >= full_threshold) {
      ++stats.num_frequent;
      FrequentPattern fp;
      std::vector<Symbol> symbols(entry.symbols.begin(), entry.symbols.end());
      PGM_ASSIGN_OR_RETURN(
          fp.pattern,
          Pattern::FromSymbols(std::move(symbols), sequence.alphabet()));
      fp.support = support.count;
      fp.saturated = support.saturated;
      fp.support_ratio = static_cast<double>(support_ld / n_l);
      result.patterns.push_back(std::move(fp));
      result.longest_frequent_length =
          std::max(result.longest_frequent_length, length);
    }
    if (support_ld >= relaxed_threshold) {
      ++stats.num_retained;
      retained_bytes_out += entry_bytes;
      retained_out.push_back(std::move(entry));
    } else {
      guard.ReleaseMemory(entry_bytes);
    }
    return Status::OK();
  };

  // First level: all |Σ|^start_length patterns (counted as candidates even
  // when their PIL turned out empty). A non-empty seed was built (and
  // memory-charged) by the caller against the same guard.
  std::vector<LevelEntry> first_level =
      seed_level.empty()
          ? BuildAllPatternsOfLength(sequence, gap, level_length, &guard)
          : std::move(seed_level);
  if (guard.stopped()) {
    finalize();
    return result;
  }
  long double first_candidates = 1.0L;
  for (std::int64_t i = 0; i < level_length; ++i) {
    first_candidates *= static_cast<long double>(alphabet_size);
  }

  std::vector<LevelEntry> retained;
  bool interrupted = false;
  {
    const long double n_l = counter.Count(level_length);
    const long double full_threshold = rho * n_l;
    const long double relaxed_threshold =
        level_lambda(level_length) * full_threshold;
    LevelStats stats;
    stats.length = level_length;
    stats.num_candidates =
        first_candidates >= static_cast<long double>(kSaturatedCount)
            ? kSaturatedCount
            : static_cast<std::uint64_t>(first_candidates);
    if (guard.ChargeLevelCandidates(stats.num_candidates)) {
      for (LevelEntry& entry : first_level) {
        if (!guard.Tick()) {
          interrupted = true;
          break;
        }
        PGM_RETURN_IF_ERROR(process_candidate(
            std::move(entry), n_l, full_threshold, relaxed_threshold,
            level_length, stats, retained, retained_bytes));
      }
    } else {
      interrupted = true;
    }
    first_level.clear();
    result.level_stats.push_back(stats);
    result.total_candidates =
        SatAdd(result.total_candidates, stats.num_candidates);
    if (!interrupted) last_completed_level = level_length;
  }

  while (!interrupted && !retained.empty() &&
         (config.max_length < 0 || level_length < config.max_length) &&
         level_length + 1 <= l2) {
    if (!guard.CheckNow()) break;
    ++level_length;
    const long double n_l = counter.Count(level_length);
    const long double full_threshold = rho * n_l;
    const long double relaxed_threshold =
        level_lambda(level_length) * full_threshold;

    LevelStats stats;
    stats.length = level_length;
    std::vector<CandidateSpec> specs = GenerateCandidates(retained);
    stats.num_candidates = specs.size();

    std::vector<LevelEntry> next_retained;
    std::uint64_t next_retained_bytes = 0;
    if (guard.ChargeLevelCandidates(specs.size())) {
      for (CandidateSpec& spec : specs) {
        if (!guard.Tick()) {
          interrupted = true;
          break;
        }
        LevelEntry candidate;
        candidate.symbols = std::move(spec.symbols);
        candidate.pil = PartialIndexList::Combine(
            retained[spec.left].pil, retained[spec.right].pil, gap);
        // The candidate is processed even when its charge trips the budget:
        // the PIL is already live, so recording it keeps strictly more of
        // the work already paid for.
        const bool within_budget =
            guard.ChargeMemory(candidate.pil.MemoryBytes());
        PGM_RETURN_IF_ERROR(process_candidate(
            std::move(candidate), n_l, full_threshold, relaxed_threshold,
            level_length, stats, next_retained, next_retained_bytes));
        if (!within_budget) {
          interrupted = true;
          break;
        }
      }
    } else {
      interrupted = true;
    }
    const std::uint64_t old_retained_bytes = retained_bytes;
    retained = std::move(next_retained);
    guard.ReleaseMemory(old_retained_bytes);
    retained_bytes = next_retained_bytes;
    result.level_stats.push_back(stats);
    result.total_candidates =
        SatAdd(result.total_candidates, stats.num_candidates);
    if (!interrupted) last_completed_level = level_length;
  }

  finalize();
  return result;
}

}  // namespace internal
}  // namespace pgm
