#include "core/miner.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

#include "util/saturating.h"
#include "util/string_util.h"

namespace pgm {
namespace internal {

Status ValidateConfig(const Sequence& sequence, const MinerConfig& config) {
  if (sequence.empty()) {
    return Status::InvalidArgument("subject sequence must not be empty");
  }
  PGM_RETURN_IF_ERROR(ValidateSequenceLength(sequence.size()));
  PGM_ASSIGN_OR_RETURN(GapRequirement gap,
                       GapRequirement::Create(config.min_gap, config.max_gap));
  (void)gap;  // validation only; the engines re-create their own
  if (!(config.min_support_ratio > 0.0) || config.min_support_ratio > 1.0) {
    return Status::InvalidArgument(
        StrFormat("min_support_ratio must lie in (0, 1], got %g",
                  config.min_support_ratio));
  }
  if (config.start_length < 1) {
    return Status::InvalidArgument("start_length must be >= 1");
  }
  if (config.max_length >= 0 && config.max_length < config.start_length) {
    return Status::InvalidArgument(
        "max_length must be >= start_length (or -1 for unbounded)");
  }
  if (config.threads < 0) {
    return Status::InvalidArgument(
        "threads must be >= 0 (0 = one per hardware thread)");
  }
  return Status::OK();
}

BuiltLevel BuildAllPatternsOfLength(const Sequence& sequence,
                                    const GapRequirement& gap, std::int64_t k,
                                    MiningGuard* guard,
                                    ParallelLevelExecutor* executor,
                                    KernelImpl kernel) {
  ParallelLevelExecutor serial_executor(1);
  if (executor == nullptr) executor = &serial_executor;

  // Length-1 patterns: every position contributes exactly one row (to its
  // symbol's span), so one reservation of |S| rows covers the whole level.
  BuiltLevel level{PilArena(guard), {}};
  if (!level.arena.Reserve(sequence.size())) {
    // The very first reservation tripped the memory budget. The guard has
    // latched, so skip the build: every caller checks guard->stopped() and
    // unwinds, and the rows would only be discarded.
    level.arena.SealWatermark();
    return level;
  }
  // Built in two parallel passes over position chunks: count per
  // (chunk, symbol), serially prefix-sum the counts into per-chunk write
  // cursors (symbol-major, chunks in position order inside each symbol),
  // then fill the disjoint slices. The resulting layout — symbol-major,
  // positions ascending — is byte-identical to a serial symbol-by-symbol
  // append, and independent of the thread count by construction.
  const std::size_t seq_len = sequence.size();
  const std::size_t alphabet_size = sequence.alphabet().size();
  constexpr std::size_t kBuildChunk = std::size_t{1} << 16;
  const std::size_t num_chunks = (seq_len + kBuildChunk - 1) / kBuildChunk;
  std::vector<std::uint64_t> cursors(num_chunks * alphabet_size, 0);
  executor->ParallelFor(
      num_chunks, 1, [&](std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t c = chunk_begin; c < chunk_end; ++c) {
          std::uint64_t* counts = cursors.data() + c * alphabet_size;
          const std::size_t hi = std::min((c + 1) * kBuildChunk, seq_len);
          for (std::size_t pos = c * kBuildChunk; pos < hi; ++pos) {
            counts[sequence[pos]] += 1;
          }
        }
      });
  std::vector<std::uint64_t> base(alphabet_size + 1, 0);
  {
    std::uint64_t running = 0;
    for (std::size_t s = 0; s < alphabet_size; ++s) {
      base[s] = running;
      for (std::size_t c = 0; c < num_chunks; ++c) {
        const std::uint64_t count = cursors[c * alphabet_size + s];
        cursors[c * alphabet_size + s] = running;
        running += count;
      }
    }
    base[alphabet_size] = running;  // == seq_len: every position has a symbol
  }
  PilEntry* rows = level.arena.MutableRows(level.arena.Allocate(seq_len));
  executor->ParallelFor(
      num_chunks, 1, [&](std::size_t chunk_begin, std::size_t chunk_end) {
        for (std::size_t c = chunk_begin; c < chunk_end; ++c) {
          std::uint64_t* cursor = cursors.data() + c * alphabet_size;
          const std::size_t hi = std::min((c + 1) * kBuildChunk, seq_len);
          for (std::size_t pos = c * kBuildChunk; pos < hi; ++pos) {
            rows[cursor[sequence[pos]]++] =
                PilEntry{static_cast<std::uint32_t>(pos), 1};
          }
        }
      });
  for (std::size_t s = 0; s < alphabet_size; ++s) {
    const std::uint64_t len = base[s + 1] - base[s];
    if (len == 0) continue;
    ArenaEntry entry;
    entry.symbols.assign(1, static_cast<char>(static_cast<Symbol>(s)));
    entry.span = PilSpan{base[s], len};
    level.entries.push_back(std::move(entry));
  }
  level.arena.SealWatermark();
  if (guard != nullptr && guard->stopped()) return level;

  // Longer levels: self-join into the other arena, then swap — the same
  // ping-pong the mining loop uses, so a multi-level build touches exactly
  // two arenas regardless of k.
  PilArena other(guard);
  for (std::int64_t length = 2; length <= k; ++length) {
    const JoinPlan plan = JoinPlan::SelfJoin(level.entries, executor);
    std::vector<ArenaEntry> next;
    bool interrupted = false;
    auto sink = [&](const JoinedCandidate& candidate) -> Status {
      if (candidate.span.empty()) return Status::OK();
      ArenaEntry entry;
      entry.symbols.reserve(static_cast<std::size_t>(length));
      entry.symbols.push_back(level.entries[candidate.left].symbols.front());
      entry.symbols.append(level.entries[candidate.right].symbols);
      entry.span = other.Promote(candidate.span);
      next.push_back(std::move(entry));
      return Status::OK();
    };
    other.BeginScratch();
    // The sink cannot fail, so the status is always OK.
    const Status status =
        executor->ExecuteJoin(level.entries, level.arena, level.entries,
                              level.arena, plan, gap, kernel, guard, other,
                              sink, &interrupted);
    other.EndScratch();
    (void)status;  // the sink above cannot fail, so this is always OK
    level.entries = std::move(next);
    level.arena.Clear();
    std::swap(level.arena, other);
    if (interrupted) break;
  }
  return level;
}

StatusOr<MiningResult> RunLevelwise(const Sequence& sequence,
                                    const MinerConfig& config,
                                    const OffsetCounter& counter,
                                    std::int64_t n_effective,
                                    BuiltLevel seed_level, MiningGuard& guard,
                                    ParallelLevelExecutor* executor,
                                    ObserverContext* ctx) {
  PGM_RETURN_IF_ERROR(ValidateConfig(sequence, config));
  PGM_ASSIGN_OR_RETURN(GapRequirement gap,
                       GapRequirement::Create(config.min_gap, config.max_gap));
  ParallelLevelExecutor own_executor(executor == nullptr ? config.threads : 1);
  if (executor == nullptr) executor = &own_executor;
  // Only direct callers (tests) get a context made here; the engines pass
  // their own so the trace carries their algorithm name, not "levelwise".
  std::optional<ObserverContext> own_ctx;
  if (ctx == nullptr) {
    own_ctx.emplace(config.observer, "levelwise",
                    KernelTierToString(config.kernel_tier));
    ctx = &*own_ctx;
  }
  executor->set_observer(ctx);
  // One resolution per run: the gap (and so the window width) is fixed, so
  // every level of the run uses the same kernel implementation.
  const KernelImpl kernel = ResolveKernel(config.kernel_tier, gap);

  MiningResult result;
  result.n_used = n_effective;
  result.guaranteed_complete_up_to = std::min(n_effective, counter.l1());

  // Last level whose candidates were all processed: on an interrupted run
  // the completeness guarantee shrinks to this horizon.
  std::int64_t last_completed_level = 0;
  auto finalize = [&]() {
    result.termination = guard.reason();
    result.pil_memory_peak_bytes = guard.memory_peak_bytes();
    if (!result.complete()) {
      result.guaranteed_complete_up_to =
          std::min(result.guaranteed_complete_up_to, last_completed_level);
    }
    std::sort(result.patterns.begin(), result.patterns.end(),
              [](const FrequentPattern& a, const FrequentPattern& b) {
                if (a.pattern.length() != b.pattern.length()) {
                  return a.pattern.length() < b.pattern.length();
                }
                return a.pattern.symbols() < b.pattern.symbols();
              });
    ctx->Finish(&result);
  };

  const long double rho = config.min_support_ratio;
  const std::int64_t l2 = counter.l2();
  const std::size_t alphabet_size = sequence.alphabet().size();
  std::int64_t level_length = config.start_length;
  if (level_length > l2) {  // no offset sequences at all
    finalize();
    return result;
  }
  if (!guard.CheckNow()) {
    ctx->GuardTrip(guard.reason(), 0);
    finalize();
    return result;
  }

  // λ factor applied at level i: Theorem 1's λ_{n,n-i} for i <= n, 1 beyond
  // (algorithm lines 4-7).
  auto level_lambda = [&](std::int64_t i) -> long double {
    if (i > n_effective) return 1.0L;
    return counter.Lambda(n_effective, n_effective - i);
  };

  // Records one pattern that cleared the full threshold.
  auto record_frequent = [&](const std::string& symbols,
                             const SupportInfo& support, long double n_l,
                             std::int64_t length) -> Status {
    FrequentPattern fp;
    std::vector<Symbol> syms(symbols.begin(), symbols.end());
    PGM_ASSIGN_OR_RETURN(
        fp.pattern, Pattern::FromSymbols(std::move(syms), sequence.alphabet()));
    fp.support = support.count;
    fp.saturated = support.saturated;
    fp.support_ratio = static_cast<double>(
        static_cast<long double>(support.count) / n_l);
    result.patterns.push_back(std::move(fp));
    result.longest_frequent_length =
        std::max(result.longest_frequent_length, length);
    return Status::OK();
  };

  // The two arenas the mining loop ping-pongs between: arenas[cur] owns the
  // retained entries' rows, arenas[cur ^ 1] receives the next level. After
  // a level the source is Clear()ed — capacity (and its ledger charge)
  // stays, so warmed-up levels run without arena growth. Dropped candidates
  // are never released individually; their scratch rows vanish with the
  // executor's block truncation and their share of the capacity charge with
  // the arenas at function exit.
  PilArena arenas[2] = {PilArena(&guard), PilArena(&guard)};
  int cur = 0;
  std::vector<ArenaEntry> retained;
  bool interrupted = false;

  // First level: all |Σ|^start_length patterns (counted as candidates even
  // when their PIL turned out empty). The level opens in the registry
  // before the build, so a trip during construction still reports the level
  // it was working on. A non-empty seed was built (and memory-charged) by
  // the caller against the same guard.
  long double first_candidates = 1.0L;
  for (std::int64_t i = 0; i < level_length; ++i) {
    first_candidates *= static_cast<long double>(alphabet_size);
  }
  {
    const long double n_l = counter.Count(level_length);
    const long double full_threshold = rho * n_l;
    const long double relaxed_threshold =
        level_lambda(level_length) * full_threshold;
    LevelStats stats;
    stats.length = level_length;
    stats.num_candidates =
        first_candidates >= static_cast<long double>(kSaturatedCount)
            ? kSaturatedCount
            : static_cast<std::uint64_t>(first_candidates);
    ctx->LevelStart(level_length, stats.num_candidates,
                    static_cast<double>(level_lambda(level_length)),
                    static_cast<double>(full_threshold),
                    static_cast<double>(relaxed_threshold));
    std::uint64_t evaluated = 0;
    BuiltLevel first_level =
        seed_level.entries.empty()
            ? BuildAllPatternsOfLength(sequence, gap, level_length, &guard,
                                       executor, kernel)
            : std::move(seed_level);
    if (guard.stopped()) {
      // Dropping the level here returns its arena's charge to the guard.
      ctx->GuardTrip(guard.reason(), level_length);
      ctx->LevelEnd(level_length, stats.num_candidates, evaluated, 0, 0,
                    /*completed=*/false);
      finalize();
      return result;
    }
    if (guard.ChargeLevelCandidates(stats.num_candidates)) {
      // Support counting is a read-only scan per entry: precompute the
      // supports in parallel, then threshold serially — ticks, records,
      // and the retention order are exactly the serial loop's.
      std::vector<SupportInfo> supports(first_level.entries.size());
      executor->ParallelFor(
          first_level.entries.size(), 64,
          [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
              supports[i] =
                  first_level.arena.Support(first_level.entries[i].span);
            }
          });
      for (std::size_t i = 0; i < first_level.entries.size(); ++i) {
        ArenaEntry& entry = first_level.entries[i];
        if (!guard.Tick()) {
          interrupted = true;
          break;
        }
        const SupportInfo support = supports[i];
        ++evaluated;
        ctx->ObserveCandidate(support.count, entry.span.bytes());
        if (support.count == 0) continue;
        const long double support_ld =
            static_cast<long double>(support.count);
        if (support_ld >= full_threshold) {
          ++stats.num_frequent;
          PGM_RETURN_IF_ERROR(
              record_frequent(entry.symbols, support, n_l, level_length));
        }
        if (support_ld >= relaxed_threshold) {
          ++stats.num_retained;
          retained.push_back(std::move(entry));
        }
      }
    } else {
      interrupted = true;
    }
    // Retained spans stay valid: the whole first-level arena becomes the
    // loop's source side.
    arenas[cur] = std::move(first_level.arena);
    if (interrupted) ctx->GuardTrip(guard.reason(), level_length);
    ctx->LevelEnd(level_length, stats.num_candidates, evaluated,
                  stats.num_frequent, stats.num_retained, !interrupted);
    if (!interrupted) last_completed_level = level_length;
  }

  while (!interrupted && !retained.empty() &&
         (config.max_length < 0 || level_length < config.max_length) &&
         level_length + 1 <= l2) {
    if (!guard.CheckNow()) {
      ctx->GuardTrip(guard.reason(), level_length);
      break;
    }
    ++level_length;
    const long double n_l = counter.Count(level_length);
    const long double full_threshold = rho * n_l;
    const long double relaxed_threshold =
        level_lambda(level_length) * full_threshold;

    LevelStats stats;
    stats.length = level_length;
    const JoinPlan plan = JoinPlan::SelfJoin(retained, executor);
    stats.num_candidates = plan.num_candidates();
    ctx->LevelStart(level_length, stats.num_candidates,
                    static_cast<double>(level_lambda(level_length)),
                    static_cast<double>(full_threshold),
                    static_cast<double>(relaxed_threshold));
    std::uint64_t evaluated = 0;

    PilArena& src = arenas[cur];
    PilArena& dst = arenas[cur ^ 1];
    std::vector<ArenaEntry> next_retained;
    if (guard.ChargeLevelCandidates(stats.num_candidates)) {
      auto sink = [&](const JoinedCandidate& candidate) -> Status {
        ++evaluated;
        ctx->ObserveCandidate(candidate.support.count,
                              candidate.span.bytes());
        if (candidate.support.count == 0) return Status::OK();
        const long double support_ld =
            static_cast<long double>(candidate.support.count);
        const bool frequent = support_ld >= full_threshold;
        const bool retain = support_ld >= relaxed_threshold;
        if (!frequent && !retain) return Status::OK();
        std::string symbols;
        symbols.reserve(static_cast<std::size_t>(level_length));
        symbols.push_back(retained[candidate.left].symbols.front());
        symbols.append(retained[candidate.right].symbols);
        if (frequent) {
          ++stats.num_frequent;
          PGM_RETURN_IF_ERROR(
              record_frequent(symbols, candidate.support, n_l, level_length));
        }
        if (retain) {
          ++stats.num_retained;
          ArenaEntry entry;
          entry.symbols = std::move(symbols);
          entry.span = dst.Promote(candidate.span);
          next_retained.push_back(std::move(entry));
        }
        return Status::OK();
      };
      bool level_interrupted = false;
      dst.BeginScratch();
      const Status join_status =
          executor->ExecuteJoin(retained, src, retained, src, plan, gap,
                                kernel, &guard, dst, sink,
                                &level_interrupted);
      dst.EndScratch();
      PGM_RETURN_IF_ERROR(join_status);
      interrupted = level_interrupted;
    } else {
      interrupted = true;
    }
    retained = std::move(next_retained);
    src.Clear();
    cur ^= 1;
    if (interrupted) ctx->GuardTrip(guard.reason(), level_length);
    ctx->LevelEnd(level_length, stats.num_candidates, evaluated,
                  stats.num_frequent, stats.num_retained, !interrupted);
    if (!interrupted) last_completed_level = level_length;
  }

  finalize();
  return result;
}

}  // namespace internal
}  // namespace pgm
