#include "core/miner.h"

#include <algorithm>
#include <optional>

#include "util/saturating.h"
#include "util/string_util.h"

namespace pgm {
namespace internal {

Status ValidateConfig(const Sequence& sequence, const MinerConfig& config) {
  if (sequence.empty()) {
    return Status::InvalidArgument("subject sequence must not be empty");
  }
  PGM_RETURN_IF_ERROR(ValidateSequenceLength(sequence.size()));
  PGM_ASSIGN_OR_RETURN(GapRequirement gap,
                       GapRequirement::Create(config.min_gap, config.max_gap));
  (void)gap;
  if (!(config.min_support_ratio > 0.0) || config.min_support_ratio > 1.0) {
    return Status::InvalidArgument(
        StrFormat("min_support_ratio must lie in (0, 1], got %g",
                  config.min_support_ratio));
  }
  if (config.start_length < 1) {
    return Status::InvalidArgument("start_length must be >= 1");
  }
  if (config.max_length >= 0 && config.max_length < config.start_length) {
    return Status::InvalidArgument(
        "max_length must be >= start_length (or -1 for unbounded)");
  }
  if (config.threads < 0) {
    return Status::InvalidArgument(
        "threads must be >= 0 (0 = one per hardware thread)");
  }
  return Status::OK();
}

namespace {

/// Sum of the heap bytes the entries' PILs hold — the charge the level
/// carries against the guard's memory ledger.
std::uint64_t LevelBytes(const std::vector<LevelEntry>& level) {
  std::uint64_t bytes = 0;
  for (const LevelEntry& entry : level) bytes += entry.pil.MemoryBytes();
  return bytes;
}

}  // namespace

std::vector<LevelEntry> BuildAllPatternsOfLength(
    const Sequence& sequence, const GapRequirement& gap, std::int64_t k,
    MiningGuard* guard, ParallelLevelExecutor* executor) {
  ParallelLevelExecutor serial_executor(1);
  if (executor == nullptr) executor = &serial_executor;

  // Bytes charged for the level currently held; released when the level is
  // replaced. The final level's charge is handed off to the caller.
  std::uint64_t level_bytes = 0;

  // Length-1 patterns: one entry per alphabet symbol with occurrences.
  std::vector<LevelEntry> level;
  for (Symbol s = 0; s < sequence.alphabet().size(); ++s) {
    PartialIndexList pil = PartialIndexList::ForSymbol(sequence, s);
    if (pil.empty()) continue;
    LevelEntry entry;
    entry.symbols.assign(1, static_cast<char>(s));
    entry.pil = std::move(pil);
    bool within_budget = true;
    if (guard != nullptr) {
      const std::uint64_t bytes = entry.pil.MemoryBytes();
      level_bytes += bytes;
      within_budget = guard->ChargeMemory(bytes);
    }
    level.push_back(std::move(entry));
    if (!within_budget) return level;
  }
  for (std::int64_t length = 2; length <= k; ++length) {
    std::vector<LevelEntry> next;
    std::uint64_t next_bytes = 0;
    bool interrupted = false;
    auto sink = [&](EvaluatedCandidate&& candidate) -> Status {
      if (candidate.entry.pil.empty()) {
        if (guard != nullptr) guard->ReleaseMemory(candidate.bytes);
        return Status::OK();
      }
      next_bytes += candidate.bytes;
      next.push_back(std::move(candidate.entry));
      return Status::OK();
    };
    // The sink cannot fail, so the status is always OK.
    const Status status = executor->EvaluateCandidates(
        level, level, GenerateCandidates(level), gap, guard, sink,
        &interrupted);
    (void)status;
    level = std::move(next);
    if (guard != nullptr) guard->ReleaseMemory(level_bytes);
    level_bytes = next_bytes;
    if (interrupted) break;
  }
  return level;
}

StatusOr<MiningResult> RunLevelwise(const Sequence& sequence,
                                    const MinerConfig& config,
                                    const OffsetCounter& counter,
                                    std::int64_t n_effective,
                                    std::vector<LevelEntry> seed_level,
                                    MiningGuard& guard,
                                    ParallelLevelExecutor* executor,
                                    ObserverContext* ctx) {
  PGM_RETURN_IF_ERROR(ValidateConfig(sequence, config));
  PGM_ASSIGN_OR_RETURN(GapRequirement gap,
                       GapRequirement::Create(config.min_gap, config.max_gap));
  ParallelLevelExecutor own_executor(executor == nullptr ? config.threads : 1);
  if (executor == nullptr) executor = &own_executor;
  // Only direct callers (tests) get a context made here; the engines pass
  // their own so the trace carries their algorithm name, not "levelwise".
  std::optional<ObserverContext> own_ctx;
  if (ctx == nullptr) {
    own_ctx.emplace(config.observer, "levelwise");
    ctx = &*own_ctx;
  }
  executor->set_observer(ctx);

  MiningResult result;
  result.n_used = n_effective;
  result.guaranteed_complete_up_to = std::min(n_effective, counter.l1());

  // Last level whose candidates were all processed: on an interrupted run
  // the completeness guarantee shrinks to this horizon.
  std::int64_t last_completed_level = 0;
  auto finalize = [&]() {
    result.termination = guard.reason();
    result.pil_memory_peak_bytes = guard.memory_peak_bytes();
    if (!result.complete()) {
      result.guaranteed_complete_up_to =
          std::min(result.guaranteed_complete_up_to, last_completed_level);
    }
    std::sort(result.patterns.begin(), result.patterns.end(),
              [](const FrequentPattern& a, const FrequentPattern& b) {
                if (a.pattern.length() != b.pattern.length()) {
                  return a.pattern.length() < b.pattern.length();
                }
                return a.pattern.symbols() < b.pattern.symbols();
              });
    ctx->Finish(&result);
  };
  // Ledger audit: every exit drops the level entries it still holds, so
  // their charges must go back to the guard — a leak here would make later
  // levels (or a caller reusing the guard) trip the memory budget
  // spuriously.
  auto release_level = [&](std::vector<LevelEntry>& level) {
    guard.ReleaseMemory(LevelBytes(level));
    level.clear();
  };

  const long double rho = config.min_support_ratio;
  const std::int64_t l2 = counter.l2();
  const std::size_t alphabet_size = sequence.alphabet().size();
  std::int64_t level_length = config.start_length;
  if (level_length > l2) {  // no offset sequences at all
    release_level(seed_level);
    finalize();
    return result;
  }
  if (!guard.CheckNow()) {
    release_level(seed_level);
    ctx->GuardTrip(guard.reason(), 0);
    finalize();
    return result;
  }

  // λ factor applied at level i: Theorem 1's λ_{n,n-i} for i <= n, 1 beyond
  // (algorithm lines 4-7).
  auto level_lambda = [&](std::int64_t i) -> long double {
    if (i > n_effective) return 1.0L;
    return counter.Lambda(n_effective, n_effective - i);
  };

  // Bytes charged to the guard for the currently retained PILs.
  std::uint64_t retained_bytes = 0;

  // Processes one candidate (whose PIL is already charged to the guard):
  // records it as frequent when it clears the full threshold and appends it
  // to `retained_out` when it clears the relaxed one. Candidates failing
  // both thresholds free their PIL immediately (releasing the charge), so
  // peak memory is |L̂_l| + |L̂_{l+1}| lists (plus the executor's bounded
  // in-flight block) rather than |C_{l+1}|.
  auto process_candidate = [&](LevelEntry&& entry, const SupportInfo& support,
                               long double n_l, long double full_threshold,
                               long double relaxed_threshold,
                               std::int64_t length, LevelStats& stats,
                               std::vector<LevelEntry>& retained_out,
                               std::uint64_t& retained_bytes_out,
                               std::uint64_t& evaluated_out) -> Status {
    const std::uint64_t entry_bytes = entry.pil.MemoryBytes();
    ++evaluated_out;
    ctx->ObserveCandidate(support.count, entry_bytes);
    if (support.count == 0) {
      guard.ReleaseMemory(entry_bytes);
      return Status::OK();
    }
    const long double support_ld = static_cast<long double>(support.count);
    if (support_ld >= full_threshold) {
      ++stats.num_frequent;
      FrequentPattern fp;
      std::vector<Symbol> symbols(entry.symbols.begin(), entry.symbols.end());
      PGM_ASSIGN_OR_RETURN(
          fp.pattern,
          Pattern::FromSymbols(std::move(symbols), sequence.alphabet()));
      fp.support = support.count;
      fp.saturated = support.saturated;
      fp.support_ratio = static_cast<double>(support_ld / n_l);
      result.patterns.push_back(std::move(fp));
      result.longest_frequent_length =
          std::max(result.longest_frequent_length, length);
    }
    if (support_ld >= relaxed_threshold) {
      ++stats.num_retained;
      retained_bytes_out += entry_bytes;
      retained_out.push_back(std::move(entry));
    } else {
      guard.ReleaseMemory(entry_bytes);
    }
    return Status::OK();
  };

  // First level: all |Σ|^start_length patterns (counted as candidates even
  // when their PIL turned out empty). The level opens in the registry
  // before the build, so a trip during construction still reports the level
  // it was working on. A non-empty seed was built (and memory-charged) by
  // the caller against the same guard.
  long double first_candidates = 1.0L;
  for (std::int64_t i = 0; i < level_length; ++i) {
    first_candidates *= static_cast<long double>(alphabet_size);
  }

  std::vector<LevelEntry> retained;
  bool interrupted = false;
  {
    const long double n_l = counter.Count(level_length);
    const long double full_threshold = rho * n_l;
    const long double relaxed_threshold =
        level_lambda(level_length) * full_threshold;
    LevelStats stats;
    stats.length = level_length;
    stats.num_candidates =
        first_candidates >= static_cast<long double>(kSaturatedCount)
            ? kSaturatedCount
            : static_cast<std::uint64_t>(first_candidates);
    ctx->LevelStart(level_length, stats.num_candidates,
                    static_cast<double>(level_lambda(level_length)),
                    static_cast<double>(full_threshold),
                    static_cast<double>(relaxed_threshold));
    std::uint64_t evaluated = 0;
    std::vector<LevelEntry> first_level =
        seed_level.empty()
            ? BuildAllPatternsOfLength(sequence, gap, level_length, &guard,
                                       executor)
            : std::move(seed_level);
    if (guard.stopped()) {
      release_level(first_level);
      ctx->GuardTrip(guard.reason(), level_length);
      ctx->LevelEnd(level_length, stats.num_candidates, evaluated, 0, 0,
                    /*completed=*/false);
      finalize();
      return result;
    }
    if (guard.ChargeLevelCandidates(stats.num_candidates)) {
      std::size_t processed = 0;
      for (; processed < first_level.size(); ++processed) {
        if (!guard.Tick()) {
          interrupted = true;
          break;
        }
        LevelEntry& entry = first_level[processed];
        const SupportInfo support = entry.pil.TotalSupport();
        PGM_RETURN_IF_ERROR(process_candidate(
            std::move(entry), support, n_l, full_threshold, relaxed_threshold,
            level_length, stats, retained, retained_bytes, evaluated));
      }
      // Entries the interrupt left unprocessed are dropped here; return
      // their charge to the guard.
      for (std::size_t i = processed; i < first_level.size(); ++i) {
        guard.ReleaseMemory(first_level[i].pil.MemoryBytes());
      }
    } else {
      interrupted = true;
      guard.ReleaseMemory(LevelBytes(first_level));
    }
    first_level.clear();
    if (interrupted) ctx->GuardTrip(guard.reason(), level_length);
    ctx->LevelEnd(level_length, stats.num_candidates, evaluated,
                  stats.num_frequent, stats.num_retained, !interrupted);
    if (!interrupted) last_completed_level = level_length;
  }

  while (!interrupted && !retained.empty() &&
         (config.max_length < 0 || level_length < config.max_length) &&
         level_length + 1 <= l2) {
    if (!guard.CheckNow()) {
      ctx->GuardTrip(guard.reason(), level_length);
      break;
    }
    ++level_length;
    const long double n_l = counter.Count(level_length);
    const long double full_threshold = rho * n_l;
    const long double relaxed_threshold =
        level_lambda(level_length) * full_threshold;

    LevelStats stats;
    stats.length = level_length;
    std::vector<CandidateSpec> specs = GenerateCandidates(retained);
    stats.num_candidates = specs.size();
    ctx->LevelStart(level_length, stats.num_candidates,
                    static_cast<double>(level_lambda(level_length)),
                    static_cast<double>(full_threshold),
                    static_cast<double>(relaxed_threshold));
    std::uint64_t evaluated = 0;

    std::vector<LevelEntry> next_retained;
    std::uint64_t next_retained_bytes = 0;
    if (guard.ChargeLevelCandidates(specs.size())) {
      auto sink = [&](EvaluatedCandidate&& candidate) -> Status {
        return process_candidate(std::move(candidate.entry), candidate.support,
                                 n_l, full_threshold, relaxed_threshold,
                                 level_length, stats, next_retained,
                                 next_retained_bytes, evaluated);
      };
      bool level_interrupted = false;
      PGM_RETURN_IF_ERROR(executor->EvaluateCandidates(
          retained, retained, std::move(specs), gap, &guard, sink,
          &level_interrupted));
      interrupted = level_interrupted;
    } else {
      interrupted = true;
    }
    const std::uint64_t old_retained_bytes = retained_bytes;
    retained = std::move(next_retained);
    guard.ReleaseMemory(old_retained_bytes);
    retained_bytes = next_retained_bytes;
    if (interrupted) ctx->GuardTrip(guard.reason(), level_length);
    ctx->LevelEnd(level_length, stats.num_candidates, evaluated,
                  stats.num_frequent, stats.num_retained, !interrupted);
    if (!interrupted) last_completed_level = level_length;
  }

  guard.ReleaseMemory(retained_bytes);
  retained.clear();
  finalize();
  return result;
}

}  // namespace internal
}  // namespace pgm
