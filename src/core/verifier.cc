#include "core/verifier.h"

#include <algorithm>

#include "util/saturating.h"
#include "util/string_util.h"

namespace pgm {

namespace {

Status CheckAlphabets(const Sequence& sequence, const Pattern& pattern) {
  if (!(sequence.alphabet() == pattern.alphabet())) {
    return Status::InvalidArgument(
        "pattern and sequence use different alphabets");
  }
  if (pattern.empty()) {
    return Status::InvalidArgument("pattern must not be empty");
  }
  return Status::OK();
}

/// ways[x] after processing pattern index j holds the number of offset
/// sequences realizing P[j..l) that start at position x.
std::vector<std::uint64_t> BackwardWays(const Sequence& sequence,
                                        const Pattern& pattern,
                                        const GapRequirement& gap) {
  const std::int64_t L = static_cast<std::int64_t>(sequence.size());
  const std::int64_t l = static_cast<std::int64_t>(pattern.length());
  std::vector<std::uint64_t> ways(sequence.size(), 0);
  for (std::int64_t x = 0; x < L; ++x) {
    ways[x] = (sequence[x] == pattern[l - 1]) ? 1 : 0;
  }
  for (std::int64_t j = l - 2; j >= 0; --j) {
    std::vector<std::uint64_t> next(sequence.size(), 0);
    for (std::int64_t x = 0; x < L; ++x) {
      if (sequence[x] != pattern[j]) continue;
      std::uint64_t total = 0;
      const std::int64_t lo = x + gap.min_gap() + 1;
      const std::int64_t hi = std::min<std::int64_t>(L - 1, x + gap.max_gap() + 1);
      for (std::int64_t q = lo; q <= hi; ++q) {
        total = SatAdd(total, ways[q]);
      }
      next[x] = total;
    }
    ways.swap(next);
  }
  return ways;
}

}  // namespace

StatusOr<SupportInfo> CountSupport(const Sequence& sequence,
                                   const Pattern& pattern,
                                   const GapRequirement& gap) {
  PGM_RETURN_IF_ERROR(CheckAlphabets(sequence, pattern));
  std::vector<std::uint64_t> ways = BackwardWays(sequence, pattern, gap);
  SupportInfo info;
  unsigned __int128 sum = 0;
  for (std::uint64_t w : ways) {
    if (IsSaturated(w)) {
      info.saturated = true;
    }
    sum += w;
  }
  if (info.saturated || sum >= static_cast<unsigned __int128>(kSaturatedCount)) {
    info.count = kSaturatedCount;
    info.saturated = true;
  } else {
    info.count = static_cast<std::uint64_t>(sum);
  }
  return info;
}

StatusOr<PartialIndexList> ComputePil(const Sequence& sequence,
                                      const Pattern& pattern,
                                      const GapRequirement& gap) {
  PGM_RETURN_IF_ERROR(CheckAlphabets(sequence, pattern));
  std::vector<std::uint64_t> ways = BackwardWays(sequence, pattern, gap);
  std::vector<PilEntry> entries;
  for (std::size_t x = 0; x < ways.size(); ++x) {
    if (ways[x] > 0) {
      entries.push_back(PilEntry{static_cast<std::uint32_t>(x), ways[x]});
    }
  }
  return PartialIndexList::FromEntries(std::move(entries));
}

StatusOr<SupportInfo> CountSupportWithGapVector(
    const Sequence& sequence, const Pattern& pattern,
    const std::vector<GapRequirement>& gaps) {
  PGM_RETURN_IF_ERROR(CheckAlphabets(sequence, pattern));
  if (gaps.size() + 1 != pattern.length()) {
    return Status::InvalidArgument(
        StrFormat("pattern of length %zu needs %zu gap requirements, got %zu",
                  pattern.length(), pattern.length() - 1, gaps.size()));
  }
  const std::int64_t L = static_cast<std::int64_t>(sequence.size());
  const std::int64_t l = static_cast<std::int64_t>(pattern.length());
  // Same backward DP as the uniform scorer, but gap j (between P[j] and
  // P[j+1]) uses its own window.
  std::vector<std::uint64_t> ways(sequence.size(), 0);
  for (std::int64_t x = 0; x < L; ++x) {
    ways[x] = (sequence[x] == pattern[l - 1]) ? 1 : 0;
  }
  for (std::int64_t j = l - 2; j >= 0; --j) {
    const GapRequirement& gap = gaps[j];
    std::vector<std::uint64_t> next(sequence.size(), 0);
    for (std::int64_t x = 0; x < L; ++x) {
      if (sequence[x] != pattern[j]) continue;
      std::uint64_t total = 0;
      const std::int64_t lo = x + gap.min_gap() + 1;
      const std::int64_t hi = std::min<std::int64_t>(L - 1, x + gap.max_gap() + 1);
      for (std::int64_t q = lo; q <= hi; ++q) {
        total = SatAdd(total, ways[q]);
      }
      next[x] = total;
    }
    ways.swap(next);
  }
  SupportInfo info;
  unsigned __int128 sum = 0;
  for (std::uint64_t w : ways) {
    if (IsSaturated(w)) info.saturated = true;
    sum += w;
  }
  if (info.saturated || sum >= static_cast<unsigned __int128>(kSaturatedCount)) {
    info.count = kSaturatedCount;
    info.saturated = true;
  } else {
    info.count = static_cast<std::uint64_t>(sum);
  }
  return info;
}

std::vector<std::vector<std::int64_t>> EnumerateMatches(
    const Sequence& sequence, const Pattern& pattern,
    const GapRequirement& gap, std::size_t limit) {
  std::vector<std::vector<std::int64_t>> matches;
  if (pattern.empty() || !(sequence.alphabet() == pattern.alphabet())) {
    return matches;
  }
  const std::int64_t L = static_cast<std::int64_t>(sequence.size());
  const std::int64_t l = static_cast<std::int64_t>(pattern.length());
  std::vector<std::int64_t> offsets;
  auto dfs = [&](auto&& self, std::int64_t pos, std::int64_t j) -> bool {
    if (limit != 0 && matches.size() >= limit) return false;
    if (sequence[pos] != pattern[j]) return true;
    offsets.push_back(pos);
    if (j == l - 1) {
      matches.push_back(offsets);
    } else {
      const std::int64_t lo = pos + gap.min_gap() + 1;
      const std::int64_t hi = std::min<std::int64_t>(L - 1, pos + gap.max_gap() + 1);
      for (std::int64_t q = lo; q <= hi; ++q) {
        if (!self(self, q, j + 1)) break;
      }
    }
    offsets.pop_back();
    return limit == 0 || matches.size() < limit;
  };
  for (std::int64_t start = 0; start < L; ++start) {
    if (!dfs(dfs, start, 0)) break;
  }
  return matches;
}

}  // namespace pgm
