#ifndef PGM_SEQ_STATS_H_
#define PGM_SEQ_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "seq/sequence.h"
#include "util/status.h"

namespace pgm {

/// Per-symbol composition of a sequence.
struct CompositionStats {
  /// counts[s] = occurrences of symbol s; parallel to the alphabet order.
  std::vector<std::uint64_t> counts;
  /// frequencies[s] = counts[s] / L (all zero for an empty sequence).
  std::vector<double> frequencies;
  std::uint64_t total = 0;
};

/// Counts every symbol of `sequence`.
CompositionStats ComputeComposition(const Sequence& sequence);

/// GC content for DNA sequences: (count(G)+count(C)) / L. Returns
/// FailedPrecondition when the alphabet lacks 'G' or 'C'.
StatusOr<double> GcContent(const Sequence& sequence);

/// Counts all length-k contiguous substrings. Keys are decoded strings.
/// Returns InvalidArgument for k == 0 and an empty map when k > L.
StatusOr<std::map<std::string, std::uint64_t>> CountKmers(
    const Sequence& sequence, std::size_t k);

/// Shannon entropy (bits per symbol) of the composition; 0 for sequences of
/// length < 1.
double CompositionEntropy(const Sequence& sequence);

}  // namespace pgm

#endif  // PGM_SEQ_STATS_H_
