#include "seq/fragmenter.h"

#include "util/string_util.h"

namespace pgm {

StatusOr<std::vector<Sequence>> Fragment(const Sequence& sequence,
                                         const FragmenterOptions& options) {
  if (options.fragment_length == 0) {
    return Status::InvalidArgument("fragment_length must be positive");
  }
  std::vector<Sequence> fragments;
  std::size_t start = 0;
  while (start + options.fragment_length <= sequence.size()) {
    fragments.push_back(sequence.Subsequence(start, options.fragment_length));
    start += options.fragment_length;
  }
  if (options.keep_tail && start < sequence.size()) {
    fragments.push_back(
        sequence.Subsequence(start, sequence.size() - start));
  }
  return fragments;
}

StatusOr<Sequence> RandomSegment(const Sequence& sequence, std::size_t length,
                                 Rng& rng) {
  if (length == 0) {
    return Status::InvalidArgument("segment length must be positive");
  }
  if (length > sequence.size()) {
    return Status::InvalidArgument(
        StrFormat("segment length %zu exceeds sequence length %zu", length,
                  sequence.size()));
  }
  std::size_t max_start = sequence.size() - length;
  std::size_t start =
      static_cast<std::size_t>(rng.UniformInt(static_cast<std::uint64_t>(max_start) + 1));
  return sequence.Subsequence(start, length);
}

}  // namespace pgm
