#include "seq/fasta.h"

#include <cctype>
#include <cstdio>

#include "util/io.h"
#include "util/string_util.h"

namespace pgm {

StatusOr<std::vector<FastaRecord>> ParseFasta(const std::string& text) {
  std::vector<FastaRecord> records;
  bool saw_header = false;
  std::size_t line_number = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    std::string_view line = Trim(raw_line);
    if (line.empty() || line[0] == ';') continue;  // blank or comment
    if (line[0] == '>') {
      saw_header = true;
      FastaRecord record;
      std::string_view header = line.substr(1);
      std::size_t space = header.find_first_of(" \t");
      if (space == std::string_view::npos) {
        record.id = std::string(header);
      } else {
        record.id = std::string(header.substr(0, space));
        record.description = std::string(Trim(header.substr(space + 1)));
      }
      if (record.id.empty()) {
        return Status::Corruption(
            StrFormat("empty FASTA record id at line %zu", line_number));
      }
      records.push_back(std::move(record));
      continue;
    }
    if (!saw_header) {
      return Status::Corruption(StrFormat(
          "residue data before the first '>' header at line %zu", line_number));
    }
    for (char c : line) {
      if (std::isspace(static_cast<unsigned char>(c))) continue;
      records.back().residues.push_back(c);
    }
  }
  for (const FastaRecord& record : records) {
    if (record.residues.empty()) {
      return Status::Corruption("FASTA record '" + record.id +
                                "' has no residues");
    }
  }
  return records;
}

StatusOr<std::vector<FastaRecord>> ReadFastaFile(const std::string& path) {
  // Transient read faults retry once (DefaultReadRetryPolicy); permanent
  // faults surface IoError, and truncated content still parses to loud
  // Corruption below.
  PGM_ASSIGN_OR_RETURN(
      std::string contents,
      ReadFileToStringWithRetry(path, DefaultReadRetryPolicy()));
  return ParseFasta(contents);
}

Sequence RecordToSequence(const FastaRecord& record, const Alphabet& alphabet,
                          std::size_t* num_dropped) {
  return Sequence::FromStringLossy(record.residues, alphabet, num_dropped);
}

std::string WriteFasta(const std::vector<FastaRecord>& records,
                       std::size_t line_width) {
  if (line_width == 0) line_width = 70;
  std::string out;
  for (const FastaRecord& record : records) {
    out += '>';
    out += record.id;
    if (!record.description.empty()) {
      out += ' ';
      out += record.description;
    }
    out += '\n';
    for (std::size_t i = 0; i < record.residues.size(); i += line_width) {
      out.append(record.residues, i,
                 std::min(line_width, record.residues.size() - i));
      out += '\n';
    }
  }
  return out;
}

Status WriteFastaFile(const std::string& path,
                      const std::vector<FastaRecord>& records,
                      std::size_t line_width) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  std::string doc = WriteFasta(records, line_width);
  std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  if (written != doc.size()) {
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace pgm
