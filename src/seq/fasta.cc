#include "seq/fasta.h"

#include <cctype>
#include <cstdio>

#include "util/io.h"
#include "util/string_util.h"

namespace pgm {

namespace {

// Parses a trimmed header line (starting with '>') into id/description.
// Corruption when the id is empty.
Status ParseHeaderLine(std::string_view line, std::size_t line_number,
                       FastaRecord* record) {
  std::string_view header = line.substr(1);
  std::size_t space = header.find_first_of(" \t");
  if (space == std::string_view::npos) {
    record->id = std::string(header);
  } else {
    record->id = std::string(header.substr(0, space));
    record->description = std::string(Trim(header.substr(space + 1)));
  }
  if (record->id.empty()) {
    return Status::Corruption(
        StrFormat("empty FASTA record id at line %zu", line_number));
  }
  return Status::OK();
}

}  // namespace

bool FastaScanner::NextLine(std::string_view* line) {
  if (pos_ >= text_.size()) return false;
  const std::size_t newline = text_.find('\n', pos_);
  if (newline == std::string_view::npos) {
    *line = text_.substr(pos_);
    pos_ = text_.size();
  } else {
    *line = text_.substr(pos_, newline - pos_);
    pos_ = newline + 1;
  }
  ++line_number_;
  return true;
}

StatusOr<bool> FastaScanner::Next(FastaRecord* record) {
  record->id.clear();
  record->description.clear();
  record->residues.clear();
  std::string_view header;
  std::size_t header_line = 0;
  if (have_pending_header_) {
    header = pending_header_;
    header_line = pending_header_line_;
    have_pending_header_ = false;
  } else {
    // Scan forward to this record's header.
    std::string_view raw;
    bool found = false;
    while (NextLine(&raw)) {
      std::string_view line = Trim(raw);
      if (line.empty() || line[0] == ';') continue;  // blank or comment
      if (line[0] != '>') {
        return Status::Corruption(
            StrFormat("residue data before the first '>' header at line %zu",
                      line_number_));
      }
      header = line;
      header_line = line_number_;
      found = true;
      break;
    }
    if (!found) return false;  // clean end of input
  }
  PGM_RETURN_IF_ERROR(ParseHeaderLine(header, header_line, record));
  // Accumulate residue lines until the next header (stashed as lookahead)
  // or end of input.
  std::string_view raw;
  while (NextLine(&raw)) {
    std::string_view line = Trim(raw);
    if (line.empty() || line[0] == ';') continue;
    if (line[0] == '>') {
      have_pending_header_ = true;
      pending_header_ = line;
      pending_header_line_ = line_number_;
      break;
    }
    for (char c : line) {
      if (std::isspace(static_cast<unsigned char>(c))) continue;
      record->residues.push_back(c);
    }
  }
  if (record->residues.empty()) {
    return Status::Corruption("FASTA record '" + record->id +
                              "' has no residues");
  }
  return true;
}

StatusOr<std::vector<FastaRecord>> ParseFasta(std::string_view text) {
  std::vector<FastaRecord> records;
  FastaScanner scanner(text);
  while (true) {
    FastaRecord record;
    PGM_ASSIGN_OR_RETURN(bool more, scanner.Next(&record));
    if (!more) break;
    records.push_back(std::move(record));
  }
  return records;
}

StatusOr<std::vector<FastaRecord>> ReadFastaFile(const std::string& path) {
  // Transient read faults retry once (DefaultReadRetryPolicy); permanent
  // faults surface IoError, and truncated content still parses to loud
  // Corruption below.
  PGM_ASSIGN_OR_RETURN(
      std::string contents,
      ReadFileToStringWithRetry(path, DefaultReadRetryPolicy()));
  return ParseFasta(contents);
}

Sequence RecordToSequence(const FastaRecord& record, const Alphabet& alphabet,
                          std::size_t* num_dropped) {
  return Sequence::FromStringLossy(record.residues, alphabet, num_dropped);
}

std::string WriteFasta(const std::vector<FastaRecord>& records,
                       std::size_t line_width) {
  if (line_width == 0) line_width = 70;
  std::string out;
  for (const FastaRecord& record : records) {
    out += '>';
    out += record.id;
    if (!record.description.empty()) {
      out += ' ';
      out += record.description;
    }
    out += '\n';
    for (std::size_t i = 0; i < record.residues.size(); i += line_width) {
      out.append(record.residues, i,
                 std::min(line_width, record.residues.size() - i));
      out += '\n';
    }
  }
  return out;
}

Status WriteFastaFile(const std::string& path,
                      const std::vector<FastaRecord>& records,
                      std::size_t line_width) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  std::string doc = WriteFasta(records, line_width);
  std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  if (written != doc.size()) {
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace pgm
