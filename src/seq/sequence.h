#ifndef PGM_SEQ_SEQUENCE_H_
#define PGM_SEQ_SEQUENCE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "seq/alphabet.h"
#include "util/status.h"

namespace pgm {

/// Longest supported subject sequence, in symbols. The miners' partial
/// index lists store positions as 32-bit integers (PilEntry::pos), so a
/// longer sequence would silently wrap positions and corrupt mining; the
/// factories and MinerConfig validation reject it up front instead.
inline constexpr std::uint64_t kMaxSequenceLength = 1ULL << 32;

/// InvalidArgument when `length` exceeds kMaxSequenceLength, OK otherwise.
/// Exposed separately so callers (and tests) can check a length without
/// materializing a multi-gigabyte sequence. Note Sequence::FromStringLossy
/// cannot fail and so does not call this; lossy-decoded input is gated at
/// mining time by ValidateConfig.
Status ValidateSequenceLength(std::uint64_t length);

/// A subject sequence: an immutable, alphabet-encoded character string.
///
/// Positions are 0-based throughout the library (the paper uses 1-based
/// indexing; the translation is purely notational). The miners operate on
/// the encoded symbol array, never on raw characters.
///
/// The alphabet is stored by value (it is ~280 bytes), so a Sequence is
/// self-contained and safe to copy or return from factories.
class Sequence {
 public:
  /// Encodes `text` over `alphabet`. Fails with InvalidArgument on the first
  /// character outside the alphabet (reporting its 0-based position).
  static StatusOr<Sequence> FromString(std::string_view text,
                                       const Alphabet& alphabet);

  /// Like FromString but characters outside the alphabet are dropped
  /// (useful for genome files with 'N' ambiguity codes). Reports the number
  /// of dropped characters via `*num_dropped` when non-null.
  static Sequence FromStringLossy(std::string_view text,
                                  const Alphabet& alphabet,
                                  std::size_t* num_dropped = nullptr);

  /// Builds directly from encoded symbols (all must be < alphabet.size()).
  static StatusOr<Sequence> FromSymbols(std::vector<Symbol> symbols,
                                        const Alphabet& alphabet);

  Sequence(const Sequence&) = default;
  Sequence& operator=(const Sequence&) = default;
  Sequence(Sequence&&) = default;
  Sequence& operator=(Sequence&&) = default;

  /// Length L of the sequence.
  std::size_t size() const { return symbols_.size(); }
  bool empty() const { return symbols_.empty(); }

  /// Encoded symbol at 0-based position `i`.
  Symbol operator[](std::size_t i) const { return symbols_[i]; }

  const std::vector<Symbol>& symbols() const { return symbols_; }
  const Alphabet& alphabet() const { return alphabet_; }

  /// Character at 0-based position `i`.
  char CharAt(std::size_t i) const { return alphabet_.CharAt(symbols_[i]); }

  /// Decodes back to a character string.
  std::string ToString() const;

  /// The subsequence [start, start+length), clamped to the sequence end.
  Sequence Subsequence(std::size_t start, std::size_t length) const;

  /// The reversed sequence (used for suffix-side Theorem 2 bounds).
  Sequence Reversed() const;

 private:
  Sequence(std::vector<Symbol> symbols, Alphabet alphabet)
      : symbols_(std::move(symbols)), alphabet_(std::move(alphabet)) {}

  std::vector<Symbol> symbols_;
  Alphabet alphabet_;
};

}  // namespace pgm

#endif  // PGM_SEQ_SEQUENCE_H_
