#include "seq/sequence.h"

#include <algorithm>

#include "util/string_util.h"

namespace pgm {

Status ValidateSequenceLength(std::uint64_t length) {
  if (length > kMaxSequenceLength) {
    return Status::InvalidArgument(
        StrFormat("sequence length %llu exceeds the supported maximum %llu "
                  "(PIL positions are 32-bit)",
                  static_cast<unsigned long long>(length),
                  static_cast<unsigned long long>(kMaxSequenceLength)));
  }
  return Status::OK();
}

StatusOr<Sequence> Sequence::FromString(std::string_view text,
                                        const Alphabet& alphabet) {
  PGM_RETURN_IF_ERROR(ValidateSequenceLength(text.size()));
  std::vector<Symbol> symbols;
  symbols.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    Symbol s = alphabet.Encode(text[i]);
    if (s == kInvalidSymbol) {
      return Status::InvalidArgument(
          StrFormat("character '%c' at position %zu is not in the alphabet",
                    text[i], i));
    }
    symbols.push_back(s);
  }
  return Sequence(std::move(symbols), alphabet);
}

Sequence Sequence::FromStringLossy(std::string_view text,
                                   const Alphabet& alphabet,
                                   std::size_t* num_dropped) {
  std::vector<Symbol> symbols;
  symbols.reserve(text.size());
  std::size_t dropped = 0;
  for (char c : text) {
    Symbol s = alphabet.Encode(c);
    if (s == kInvalidSymbol) {
      ++dropped;
    } else {
      symbols.push_back(s);
    }
  }
  if (num_dropped != nullptr) *num_dropped = dropped;
  return Sequence(std::move(symbols), alphabet);
}

StatusOr<Sequence> Sequence::FromSymbols(std::vector<Symbol> symbols,
                                         const Alphabet& alphabet) {
  PGM_RETURN_IF_ERROR(ValidateSequenceLength(symbols.size()));
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    if (symbols[i] >= alphabet.size()) {
      return Status::InvalidArgument(
          StrFormat("symbol %u at position %zu is out of range for an "
                    "alphabet of size %zu",
                    symbols[i], i, alphabet.size()));
    }
  }
  return Sequence(std::move(symbols), alphabet);
}

std::string Sequence::ToString() const {
  std::string out;
  out.reserve(symbols_.size());
  for (Symbol s : symbols_) out.push_back(alphabet_.CharAt(s));
  return out;
}

Sequence Sequence::Subsequence(std::size_t start, std::size_t length) const {
  if (start >= symbols_.size()) {
    return Sequence(std::vector<Symbol>(), alphabet_);
  }
  std::size_t end = std::min(symbols_.size(), start + length);
  return Sequence(
      std::vector<Symbol>(symbols_.begin() + start, symbols_.begin() + end),
      alphabet_);
}

Sequence Sequence::Reversed() const {
  std::vector<Symbol> reversed(symbols_.rbegin(), symbols_.rend());
  return Sequence(std::move(reversed), alphabet_);
}

}  // namespace pgm
