#ifndef PGM_SEQ_FASTA_H_
#define PGM_SEQ_FASTA_H_

#include <string>
#include <vector>

#include "seq/sequence.h"
#include "util/status.h"

namespace pgm {

/// One record of a FASTA file.
struct FastaRecord {
  /// Text after '>' up to the first whitespace.
  std::string id;
  /// Remainder of the header line (may be empty).
  std::string description;
  /// Raw residue characters with line breaks and blanks removed.
  std::string residues;
};

/// Parses FASTA-formatted `text`. Returns Corruption when residue data
/// precedes the first header or a record is empty.
StatusOr<std::vector<FastaRecord>> ParseFasta(const std::string& text);

/// Reads and parses a FASTA file from disk.
StatusOr<std::vector<FastaRecord>> ReadFastaFile(const std::string& path);

/// Encodes a record over `alphabet`, dropping characters outside the
/// alphabet (ambiguity codes such as 'N'). `*num_dropped` reports how many
/// were dropped when non-null.
Sequence RecordToSequence(const FastaRecord& record, const Alphabet& alphabet,
                          std::size_t* num_dropped = nullptr);

/// Serializes records to FASTA text with lines wrapped at `line_width`.
std::string WriteFasta(const std::vector<FastaRecord>& records,
                       std::size_t line_width = 70);

/// Writes WriteFasta(records) to `path`.
Status WriteFastaFile(const std::string& path,
                      const std::vector<FastaRecord>& records,
                      std::size_t line_width = 70);

}  // namespace pgm

#endif  // PGM_SEQ_FASTA_H_
