#ifndef PGM_SEQ_FASTA_H_
#define PGM_SEQ_FASTA_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "seq/sequence.h"
#include "util/status.h"

namespace pgm {

/// One record of a FASTA file.
struct FastaRecord {
  /// Text after '>' up to the first whitespace.
  std::string id;
  /// Remainder of the header line (may be empty).
  std::string description;
  /// Raw residue characters with line breaks and blanks removed.
  std::string residues;
};

/// A streaming record scanner over FASTA text. Built for the corpus
/// executor's memory-mapped ingestion path: `text` is typically an
/// MmapFile::view(), and the scanner walks it line by line without copying
/// anything but the current record's id/description/residues — a
/// genome-scale multi-record file never materializes as one string.
///
/// `text` must outlive the scanner (the returned records are owned copies
/// and do not alias it).
class FastaScanner {
 public:
  explicit FastaScanner(std::string_view text) : text_(text) {}

  /// Advances to the next record, filling *record (its previous contents
  /// are replaced). Returns true on a record, false at end of input, and
  /// Corruption on malformed input — residue data before the first '>'
  /// header, an empty record id, or a record with no residues.
  StatusOr<bool> Next(FastaRecord* record);

  /// 1-based line number of the last line consumed (diagnostics).
  std::size_t line_number() const { return line_number_; }

 private:
  /// Pops the next line off text_ (without its terminator), bumping
  /// line_number_. Returns false at end of input.
  bool NextLine(std::string_view* line);

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_number_ = 0;
  /// Lookahead: the header line that terminated the previous record.
  bool have_pending_header_ = false;
  std::string_view pending_header_;
  std::size_t pending_header_line_ = 0;
};

/// Parses FASTA-formatted `text`. Returns Corruption when residue data
/// precedes the first header or a record is empty. Accepts a view so
/// memory-mapped inputs (MmapFile::view()) parse without an owning copy of
/// the whole document.
StatusOr<std::vector<FastaRecord>> ParseFasta(std::string_view text);

/// Reads and parses a FASTA file from disk.
StatusOr<std::vector<FastaRecord>> ReadFastaFile(const std::string& path);

/// Encodes a record over `alphabet`, dropping characters outside the
/// alphabet (ambiguity codes such as 'N'). `*num_dropped` reports how many
/// were dropped when non-null.
Sequence RecordToSequence(const FastaRecord& record, const Alphabet& alphabet,
                          std::size_t* num_dropped = nullptr);

/// Serializes records to FASTA text with lines wrapped at `line_width`.
std::string WriteFasta(const std::vector<FastaRecord>& records,
                       std::size_t line_width = 70);

/// Writes WriteFasta(records) to `path`.
Status WriteFastaFile(const std::string& path,
                      const std::vector<FastaRecord>& records,
                      std::size_t line_width = 70);

}  // namespace pgm

#endif  // PGM_SEQ_FASTA_H_
