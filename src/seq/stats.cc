#include "seq/stats.h"

#include <cmath>

namespace pgm {

CompositionStats ComputeComposition(const Sequence& sequence) {
  CompositionStats stats;
  stats.counts.assign(sequence.alphabet().size(), 0);
  stats.frequencies.assign(sequence.alphabet().size(), 0.0);
  for (Symbol s : sequence.symbols()) {
    ++stats.counts[s];
  }
  stats.total = sequence.size();
  if (stats.total > 0) {
    for (std::size_t i = 0; i < stats.counts.size(); ++i) {
      stats.frequencies[i] =
          static_cast<double>(stats.counts[i]) / static_cast<double>(stats.total);
    }
  }
  return stats;
}

StatusOr<double> GcContent(const Sequence& sequence) {
  const Alphabet& alphabet = sequence.alphabet();
  Symbol g = alphabet.Encode('G');
  Symbol c = alphabet.Encode('C');
  if (g == kInvalidSymbol || c == kInvalidSymbol) {
    return Status::FailedPrecondition(
        "GC content requires an alphabet containing 'G' and 'C'");
  }
  if (sequence.empty()) return 0.0;
  std::uint64_t gc = 0;
  for (Symbol s : sequence.symbols()) {
    if (s == g || s == c) ++gc;
  }
  return static_cast<double>(gc) / static_cast<double>(sequence.size());
}

StatusOr<std::map<std::string, std::uint64_t>> CountKmers(
    const Sequence& sequence, std::size_t k) {
  if (k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  std::map<std::string, std::uint64_t> counts;
  if (k > sequence.size()) return counts;
  std::string window;
  window.reserve(k);
  for (std::size_t i = 0; i + k <= sequence.size(); ++i) {
    window.clear();
    for (std::size_t j = 0; j < k; ++j) window.push_back(sequence.CharAt(i + j));
    ++counts[window];
  }
  return counts;
}

double CompositionEntropy(const Sequence& sequence) {
  if (sequence.empty()) return 0.0;
  CompositionStats stats = ComputeComposition(sequence);
  double entropy = 0.0;
  for (double p : stats.frequencies) {
    if (p > 0.0) entropy -= p * std::log2(p);
  }
  return entropy;
}

}  // namespace pgm
