#include "seq/alphabet.h"

#include <cctype>

#include "util/string_util.h"

namespace pgm {

StatusOr<Alphabet> Alphabet::Create(std::string_view symbols,
                                    bool case_insensitive) {
  if (symbols.empty()) {
    return Status::InvalidArgument("alphabet must not be empty");
  }
  if (symbols.size() > 128) {
    return Status::InvalidArgument("alphabet too large (max 128 symbols)");
  }
  Alphabet alphabet;
  alphabet.case_insensitive_ = case_insensitive;
  for (char c : symbols) {
    if (!std::isprint(static_cast<unsigned char>(c)) ||
        std::isspace(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument(
          "alphabet characters must be printable and non-space");
    }
    if (c == '.') {
      return Status::InvalidArgument(
          "'.' is reserved for the wildcard and cannot be an alphabet symbol");
    }
    char canonical = case_insensitive
                         ? static_cast<char>(std::toupper(
                               static_cast<unsigned char>(c)))
                         : c;
    if (alphabet.Contains(canonical)) {
      return Status::InvalidArgument(
          StrFormat("duplicate alphabet character '%c'", canonical));
    }
    Symbol index = static_cast<Symbol>(alphabet.symbols_.size());
    alphabet.symbols_.push_back(canonical);
    alphabet.encode_[static_cast<unsigned char>(canonical)] = index;
    if (case_insensitive) {
      char lower =
          static_cast<char>(std::tolower(static_cast<unsigned char>(canonical)));
      alphabet.encode_[static_cast<unsigned char>(lower)] = index;
    }
  }
  return alphabet;
}

const Alphabet& Alphabet::Dna() {
  static const Alphabet& instance = *new Alphabet(*Create("ACGT"));
  return instance;
}

const Alphabet& Alphabet::Protein() {
  static const Alphabet& instance = *new Alphabet(*Create("ACDEFGHIKLMNPQRSTVWY"));
  return instance;
}

}  // namespace pgm
