#ifndef PGM_SEQ_FRAGMENTER_H_
#define PGM_SEQ_FRAGMENTER_H_

#include <cstddef>
#include <vector>

#include "seq/sequence.h"
#include "util/random.h"
#include "util/status.h"

namespace pgm {

/// Cuts a long sequence into consecutive fragments, mirroring the paper's
/// Section 7 methodology ("we segmented the genomes into short fragments of
/// 100 kilo-bases").
struct FragmenterOptions {
  /// Fragment length in characters.
  std::size_t fragment_length = 100'000;
  /// When false, a final fragment shorter than fragment_length is dropped
  /// (the paper mines fixed-size windows); when true it is kept. In
  /// particular, keep_tail=false on a sequence *shorter* than
  /// fragment_length yields an empty fragment set — the whole sequence is
  /// one sub-window-sized tail. Corpus-level callers must surface that
  /// loudly (`pgm corpus` refuses to run a plan with zero fragments) rather
  /// than report a silent zero-pattern result.
  bool keep_tail = false;
};

/// Splits `sequence` into fragments. Returns InvalidArgument when
/// fragment_length is 0. May return an empty vector: an empty sequence, or
/// keep_tail=false with sequence length < fragment_length (see
/// FragmenterOptions::keep_tail).
StatusOr<std::vector<Sequence>> Fragment(const Sequence& sequence,
                                         const FragmenterOptions& options);

/// Picks a uniformly random length-L window of `sequence` (the Section 6
/// methodology: "we randomly pick a length-L segment from AX829174").
/// Returns InvalidArgument when L == 0 or L > sequence length.
StatusOr<Sequence> RandomSegment(const Sequence& sequence, std::size_t length,
                                 Rng& rng);

}  // namespace pgm

#endif  // PGM_SEQ_FRAGMENTER_H_
