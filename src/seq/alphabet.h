#ifndef PGM_SEQ_ALPHABET_H_
#define PGM_SEQ_ALPHABET_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace pgm {

/// Symbol index inside an Alphabet. Sequences and patterns are stored encoded
/// as Symbol values; miners never touch raw characters in their inner loops.
using Symbol = std::uint8_t;

/// Sentinel returned by Alphabet::Encode for characters outside the alphabet.
inline constexpr Symbol kInvalidSymbol = 0xFF;

/// A finite character alphabet with O(1) char <-> symbol-index mapping.
///
/// The mining model (Section 3 of the paper) is alphabet-generic; the two
/// bioinformatics instances the paper uses are provided as factories:
/// `Alphabet::Dna()` = {A, C, G, T} and `Alphabet::Protein()` = the 20
/// standard amino acids.
class Alphabet {
 public:
  /// Builds an alphabet from the distinct characters of `symbols`.
  /// Fails on empty input, duplicate characters, more than 128 characters,
  /// non-printable characters, or use of '.' (reserved for the wildcard).
  static StatusOr<Alphabet> Create(std::string_view symbols,
                                   bool case_insensitive = true);

  /// {A, C, G, T}, case-insensitive.
  static const Alphabet& Dna();

  /// The 20 standard amino acids "ACDEFGHIKLMNPQRSTVWY", case-insensitive.
  static const Alphabet& Protein();

  Alphabet(const Alphabet&) = default;
  Alphabet& operator=(const Alphabet&) = default;

  /// Number of symbols.
  std::size_t size() const { return symbols_.size(); }

  /// Canonical character of symbol `s` (s must be < size()).
  char CharAt(Symbol s) const { return symbols_[s]; }

  /// Symbol index of `c`, or kInvalidSymbol when `c` is not in the alphabet.
  Symbol Encode(char c) const {
    return encode_[static_cast<unsigned char>(c)];
  }

  /// True iff `c` belongs to the alphabet.
  bool Contains(char c) const { return Encode(c) != kInvalidSymbol; }

  /// The canonical symbol characters, in index order.
  const std::string& symbols() const { return symbols_; }

  bool case_insensitive() const { return case_insensitive_; }

  bool operator==(const Alphabet& other) const {
    return symbols_ == other.symbols_ &&
           case_insensitive_ == other.case_insensitive_;
  }

 private:
  Alphabet() { encode_.fill(kInvalidSymbol); }

  std::string symbols_;
  bool case_insensitive_ = true;
  std::array<Symbol, 256> encode_;
};

}  // namespace pgm

#endif  // PGM_SEQ_ALPHABET_H_
