#include "cli/cli.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "analysis/compare.h"
#include "analysis/composition.h"
#include "analysis/report.h"
#include "analysis/significance.h"
#include "analysis/oscillation.h"
#include "analysis/tandem.h"
#include "core/em.h"
#include "core/miner.h"
#include "core/trace.h"
#include "corpus/executor.h"
#include "datagen/presets.h"
#include "seq/fasta.h"
#include "serve/service.h"
#include "util/csv_writer.h"
#include "util/flags.h"
#include "util/io.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace pgm::cli {

CancelToken& GlobalCancelToken() {
  static CancelToken token;
  return token;
}

namespace {

StatusOr<Sequence> LoadPreset(const std::string& body) {
  // body = <name>[:<length>[:<seed>]]
  std::vector<std::string> parts = Split(body, ':');
  const std::string& name = parts[0];
  std::size_t length = 100'000;
  std::uint64_t seed = 1;
  if (parts.size() >= 2) {
    PGM_ASSIGN_OR_RETURN(std::int64_t parsed, ParseInt64(parts[1]));
    if (parsed <= 0) return Status::InvalidArgument("preset length must be positive");
    length = static_cast<std::size_t>(parsed);
  }
  if (parts.size() >= 3) {
    PGM_ASSIGN_OR_RETURN(std::int64_t parsed, ParseInt64(parts[2]));
    seed = static_cast<std::uint64_t>(parsed);
  }
  if (parts.size() > 3) {
    return Status::InvalidArgument("preset spec has too many ':' fields");
  }
  if (name == "ax829174") return MakeAx829174Surrogate();
  if (name == "bacteria") return MakeBacteriaLikeGenome(length, seed);
  if (name == "eukaryote") return MakeEukaryoteLikeGenome(length, seed);
  if (name == "worm") return MakeWormLikeGenome(length, seed);
  return Status::InvalidArgument(
      "unknown preset '" + name +
      "' (expected ax829174, bacteria, eukaryote, or worm)");
}

}  // namespace

StatusOr<Sequence> LoadInput(const std::string& spec) {
  std::string body = spec;
  const Alphabet* alphabet = &Alphabet::Dna();
  const std::string protein_suffix = "@protein";
  if (body.size() > protein_suffix.size() &&
      body.compare(body.size() - protein_suffix.size(), protein_suffix.size(),
                   protein_suffix) == 0) {
    alphabet = &Alphabet::Protein();
    body.resize(body.size() - protein_suffix.size());
  }
  const std::size_t colon = body.find(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument(
        "input spec must look like kind:value (kinds: fasta, text, raw, "
        "preset); got '" + spec + "'");
  }
  const std::string kind = body.substr(0, colon);
  const std::string value = body.substr(colon + 1);
  if (value.empty()) {
    return Status::InvalidArgument("empty value in input spec '" + spec + "'");
  }

  if (kind == "raw") {
    return Sequence::FromString(value, *alphabet);
  }
  if (kind == "text") {
    PGM_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(value));
    std::size_t dropped = 0;
    Sequence sequence = Sequence::FromStringLossy(contents, *alphabet, &dropped);
    if (sequence.empty()) {
      return Status::InvalidArgument("file contains no alphabet characters: " +
                                     value);
    }
    return sequence;
  }
  if (kind == "fasta") {
    std::string path = value;
    std::string record_id;
    const std::size_t hash = value.find('#');
    if (hash != std::string::npos) {
      path = value.substr(0, hash);
      record_id = value.substr(hash + 1);
    }
    PGM_ASSIGN_OR_RETURN(std::vector<FastaRecord> records, ReadFastaFile(path));
    if (records.empty()) {
      return Status::NotFound("no records in FASTA file: " + path);
    }
    const FastaRecord* chosen = &records.front();
    if (!record_id.empty()) {
      chosen = nullptr;
      for (const FastaRecord& record : records) {
        if (record.id == record_id) {
          chosen = &record;
          break;
        }
      }
      if (chosen == nullptr) {
        return Status::NotFound("record '" + record_id + "' not in " + path);
      }
    }
    return RecordToSequence(*chosen, *alphabet);
  }
  if (kind == "preset") {
    return LoadPreset(value);
  }
  return Status::InvalidArgument("unknown input kind '" + kind + "'");
}

StatusOr<CorpusPlan> LoadCorpusInput(const std::string& spec,
                                     const CorpusPlanOptions& options,
                                     bool use_mmap) {
  std::string body = spec;
  const Alphabet* alphabet = &Alphabet::Dna();
  const std::string protein_suffix = "@protein";
  if (body.size() > protein_suffix.size() &&
      body.compare(body.size() - protein_suffix.size(), protein_suffix.size(),
                   protein_suffix) == 0) {
    alphabet = &Alphabet::Protein();
    body.resize(body.size() - protein_suffix.size());
  }
  const std::size_t colon = body.find(':');
  const std::string kind =
      colon == std::string::npos ? std::string() : body.substr(0, colon);
  if (kind == "fasta") {
    std::string path = body.substr(colon + 1);
    std::string record_id;
    const std::size_t hash = path.find('#');
    if (hash != std::string::npos) {
      record_id = path.substr(hash + 1);
      path.resize(hash);
    }
    if (path.empty()) {
      return Status::InvalidArgument("empty value in input spec '" + spec +
                                     "'");
    }
    if (record_id.empty()) {
      return CorpusPlan::FromFastaFile(path, *alphabet, options, use_mmap);
    }
    PGM_ASSIGN_OR_RETURN(std::vector<FastaRecord> records,
                         ReadFastaFile(path));
    for (const FastaRecord& record : records) {
      if (record.id == record_id) {
        return CorpusPlan::FromRecords({record}, *alphabet, options);
      }
    }
    return Status::NotFound("record '" + record_id + "' not in " + path);
  }
  // raw:/text:/preset: (and malformed specs, which fail inside LoadInput
  // with the usual message) become a single pseudo-record named by the
  // spec, so corpus reports and fragment traces stay self-describing.
  PGM_ASSIGN_OR_RETURN(Sequence sequence, LoadInput(spec));
  return CorpusPlan::FromSequence(sequence, spec, options);
}

namespace {

// ---------------------------------------------------------------------------
// pgm mine
// ---------------------------------------------------------------------------

Status RunMine(const std::vector<std::string>& args, std::string* output,
               int* exit_override) {
  std::string input;
  std::string algorithm = "mppm";
  std::int64_t min_gap = 9, max_gap = 12;
  double rho_percent = 0.003;
  std::int64_t start_length = 3, max_length = -1, user_n = -1, em_order = 10;
  std::int64_t top = 25;
  bool maximal = false;
  bool level_stats = false;
  bool lift = false;
  std::string csv_path;
  std::string metrics_path;
  std::string trace_path;
  bool trace_timings = false;
  std::int64_t deadline_ms = -1;
  std::int64_t pil_budget_bytes = 0;
  std::int64_t max_level_candidates = 0;
  std::int64_t max_total_candidates = 0;
  std::int64_t threads = 1;
  std::string kernel = "auto";

  FlagSet flags("pgm mine: find frequent periodic patterns");
  flags.AddString("input", &input, "input spec (see pgm --help)");
  flags.AddString("algorithm", &algorithm, "mpp | mppm | enum | adaptive");
  flags.AddInt64("min-gap", &min_gap, "minimum gap N");
  flags.AddInt64("max-gap", &max_gap, "maximum gap M");
  flags.AddDouble("rho-percent", &rho_percent, "support threshold in percent");
  flags.AddInt64("start-length", &start_length, "first mined pattern length");
  flags.AddInt64("max-length", &max_length, "pattern length cap (-1 = none)");
  flags.AddInt64("n", &user_n, "MPP estimate of longest pattern (-1 = worst)");
  flags.AddInt64("m", &em_order, "MPPm e_m order");
  flags.AddInt64("top", &top, "patterns shown (longest / highest ratio first)");
  flags.AddBool("maximal", &maximal, "condense to maximal patterns");
  flags.AddBool("lift", &lift,
                "also rank patterns by compositional lift (observed/expected)");
  flags.AddBool("level-stats", &level_stats, "include per-level candidates");
  flags.AddString("csv", &csv_path, "also write all patterns as CSV here");
  flags.AddString("metrics-out", &metrics_path,
                  "write run metrics (counters/gauges/histograms) as "
                  "deterministic JSON here");
  flags.AddString("trace", &trace_path,
                  "write the structured mining trace (level starts/ends, "
                  "prune decisions, guard trips) as JSON here");
  flags.AddBool("trace-timings", &trace_timings,
                "include wall-clock/worker fields and shard timings in "
                "--trace output (not byte-stable across runs)");
  flags.AddInt64("deadline-ms", &deadline_ms,
                 "wall-clock budget in ms; partial result on expiry "
                 "(-1 = none)");
  flags.AddInt64("pil-budget-bytes", &pil_budget_bytes,
                 "PIL memory budget in bytes (0 = unlimited)");
  flags.AddInt64("max-level-candidates", &max_level_candidates,
                 "cap on candidates per level (0 = unlimited)");
  flags.AddInt64("max-total-candidates", &max_total_candidates,
                 "cap on total candidates (0 = unlimited)");
  flags.AddInt64("threads", &threads,
                 "worker threads for level evaluation (1 = serial, 0 = one "
                 "per hardware thread); results are identical at every "
                 "thread count");
  flags.AddString("kernel", &kernel,
                  "join-kernel tier: auto | scalar | bits | avx2 (auto picks "
                  "the bitset/AVX2 kernel when the gap window fits 64 bits; "
                  "results are identical under every tier)");
  std::vector<char*> argv;
  std::vector<std::string> storage = args;
  storage.insert(storage.begin(), "pgm mine");
  for (std::string& s : storage) argv.push_back(s.data());
  PGM_RETURN_IF_ERROR(flags.Parse(static_cast<int>(argv.size()), argv.data()));
  if (input.empty()) {
    return Status::InvalidArgument("--input is required\n" + flags.Usage());
  }

  PGM_ASSIGN_OR_RETURN(Sequence sequence, LoadInput(input));
  MinerConfig config;
  config.min_gap = min_gap;
  config.max_gap = max_gap;
  config.min_support_ratio = rho_percent / 100.0;
  config.start_length = start_length;
  config.max_length = max_length;
  config.user_n = user_n;
  config.em_order = em_order;
  if (pil_budget_bytes < 0 || max_level_candidates < 0 ||
      max_total_candidates < 0) {
    return Status::InvalidArgument(
        "resource budgets must be non-negative (0 = unlimited)");
  }
  config.limits.deadline_ms = deadline_ms;
  config.limits.pil_memory_budget_bytes =
      static_cast<std::uint64_t>(pil_budget_bytes);
  config.limits.max_level_candidates =
      static_cast<std::uint64_t>(max_level_candidates);
  config.limits.max_total_candidates =
      static_cast<std::uint64_t>(max_total_candidates);
  config.threads = threads;
  if (!KernelTierFromString(kernel, &config.kernel_tier)) {
    return Status::InvalidArgument(
        "unknown --kernel '" + kernel + "' (auto | scalar | bits | avx2)");
  }
  // SIGINT/SIGTERM latch the process-wide token (tools/pgm_main.cc); the
  // miners poll it and wind down to a partial-but-sound result.
  config.cancel = &GlobalCancelToken();

  MetricsRegistry metrics;
  MiningTrace trace;
  MiningObserver observer;
  if (!metrics_path.empty()) observer.metrics = &metrics;
  if (!trace_path.empty()) observer.trace = &trace;
  if (observer.metrics != nullptr || observer.trace != nullptr) {
    config.observer = &observer;
  }

  StatusOr<MiningResult> mined = [&]() -> StatusOr<MiningResult> {
    if (algorithm == "mpp") return MineMpp(sequence, config);
    if (algorithm == "mppm") return MineMppm(sequence, config);
    if (algorithm == "enum") return MineEnumeration(sequence, config);
    if (algorithm == "adaptive") return MineAdaptive(sequence, config);
    return Status::InvalidArgument("unknown --algorithm '" + algorithm + "'");
  }();
  PGM_RETURN_IF_ERROR(mined.status());
  const MiningResult& result = *mined;
  PGM_ASSIGN_OR_RETURN(GapRequirement gap,
                       GapRequirement::Create(min_gap, max_gap));

  output->append(StrFormat(
      "subject: L=%zu over {%s}; rho_s=%g%%; algorithm=%s\n",
      sequence.size(), sequence.alphabet().symbols().c_str(), rho_percent,
      algorithm.c_str()));
  ReportOptions report_options;
  report_options.top = static_cast<std::size_t>(std::max<std::int64_t>(0, top));
  report_options.maximal_only = maximal;
  report_options.include_level_stats = level_stats;
  output->append(FormatMiningReport(result, gap, report_options));

  if (lift) {
    PGM_ASSIGN_OR_RETURN(std::vector<ScoredPattern> ranked,
                         RankByLift(result, sequence));
    TablePrinter lift_table(
        {"pattern", "observed ratio", "expected (composition)", "lift"});
    const std::size_t shown = std::min<std::size_t>(
        ranked.size(), static_cast<std::size_t>(std::max<std::int64_t>(0, top)));
    for (std::size_t i = 0; i < shown; ++i) {
      lift_table.Row()
          .Add(ranked[i].pattern.pattern.ToShorthand())
          .Add(ranked[i].pattern.support_ratio)
          .Add(ranked[i].expected_ratio)
          .Add(ranked[i].lift)
          .Done();
    }
    output->append("\nmost surprising patterns (by compositional lift):\n");
    output->append(lift_table.ToString());
  }

  if (!csv_path.empty()) {
    PGM_RETURN_IF_ERROR(SavePatternsCsv(result, csv_path));
    output->append("wrote " + std::to_string(result.patterns.size()) +
                   " patterns to " + csv_path + "\n");
  }
  // The observability exports come after the report so a failed write
  // (IoError, loud in *error) never swallows the mining result itself.
  if (!metrics_path.empty()) {
    PGM_RETURN_IF_ERROR(WriteStringToFile(metrics_path, metrics.ToJson() + "\n"));
    output->append("wrote metrics JSON to " + metrics_path + "\n");
  }
  if (!trace_path.empty()) {
    TraceJsonOptions trace_options;
    trace_options.include_volatile = trace_timings;
    PGM_RETURN_IF_ERROR(
        WriteStringToFile(trace_path, trace.ToJson(trace_options) + "\n"));
    output->append("wrote trace JSON to " + trace_path + "\n");
  }
  if (result.termination == TerminationReason::kCancelled &&
      GlobalCancelToken().cancelled()) {
    // Interrupted, not failed: everything reported above is genuinely
    // frequent, but patterns past guaranteed_complete_up_to may be missing.
    // The distinct exit code lets scripts keep the partial output.
    output->append(StrFormat(
        "interrupted: partial result is sound; complete up to length %lld\n",
        static_cast<long long>(result.guaranteed_complete_up_to)));
    *exit_override = kExitCancelled;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// pgm corpus
// ---------------------------------------------------------------------------

Status RunCorpus(const std::vector<std::string>& args, std::string* output,
                 int* exit_override) {
  std::string input;
  std::string algorithm = "mppm";
  std::int64_t fragment_length = 100'000;
  bool keep_tail = false;
  std::int64_t max_fragments = 0;
  std::int64_t min_gap = 9, max_gap = 12;
  double rho_percent = 0.003;
  std::int64_t start_length = 3, max_length = -1, user_n = -1, em_order = 10;
  std::int64_t top = 25;
  std::int64_t threads = 1;
  std::string kernel = "auto";
  std::int64_t deadline_ms = -1;
  std::int64_t pil_budget_bytes = 0;
  std::int64_t max_level_candidates = 0;
  std::int64_t max_total_candidates = 0;
  bool no_mmap = false;
  std::string csv_path;
  std::string metrics_path;
  std::string trace_path;
  bool trace_timings = false;

  FlagSet flags(
      "pgm corpus: mine every record of a corpus fragment-by-fragment "
      "(the paper's Section 7 methodology: support is counted within "
      "fragments, never across fragment boundaries)");
  flags.AddString("input", &input,
                  "input spec; fasta:<path> mines every record");
  flags.AddString("algorithm", &algorithm, "mpp | mppm | enum | adaptive");
  flags.AddInt64("fragment-length", &fragment_length,
                 "window length each record is cut into (Section 7 uses "
                 "100000)");
  flags.AddBool("keep-tail", &keep_tail,
                "also mine the final sub-window remainder of each record "
                "(off = drop it, the paper's convention)");
  flags.AddInt64("max-fragments", &max_fragments,
                 "cap on total fragments planned (0 = all)");
  flags.AddInt64("min-gap", &min_gap, "minimum gap N");
  flags.AddInt64("max-gap", &max_gap, "maximum gap M");
  flags.AddDouble("rho-percent", &rho_percent, "support threshold in percent");
  flags.AddInt64("start-length", &start_length, "first mined pattern length");
  flags.AddInt64("max-length", &max_length, "pattern length cap (-1 = none)");
  flags.AddInt64("n", &user_n, "MPP estimate of longest pattern (-1 = worst)");
  flags.AddInt64("m", &em_order, "MPPm e_m order");
  flags.AddInt64("top", &top, "patterns shown (longest / highest ratio first)");
  flags.AddInt64("threads", &threads,
                 "worker threads mining whole fragments (1 = serial, 0 = one "
                 "per hardware thread); results are identical at every "
                 "thread count");
  flags.AddString("kernel", &kernel,
                  "join-kernel tier per fragment: auto | scalar | bits | "
                  "avx2 (results are identical under every tier)");
  flags.AddInt64("deadline-ms", &deadline_ms,
                 "corpus-wide wall-clock budget in ms; later fragments are "
                 "skipped on expiry, partial result stays sound (-1 = none)");
  flags.AddInt64("pil-budget-bytes", &pil_budget_bytes,
                 "per-fragment PIL memory budget in bytes (0 = unlimited)");
  flags.AddInt64("max-level-candidates", &max_level_candidates,
                 "cap on any single fragment's candidate total (0 = "
                 "unlimited)");
  flags.AddInt64("max-total-candidates", &max_total_candidates,
                 "cap on candidates accumulated across the corpus (0 = "
                 "unlimited)");
  flags.AddBool("no-mmap", &no_mmap,
                "ingest FASTA through the buffered reader instead of the "
                "memory-mapped scanner (same bytes, same result)");
  flags.AddString("csv", &csv_path,
                  "also write the aggregated patterns as CSV here");
  flags.AddString("metrics-out", &metrics_path,
                  "write run metrics (corpus.* + per-fragment mining "
                  "counters) as deterministic JSON here");
  flags.AddString("trace", &trace_path,
                  "write the corpus trace (fragment_start/fragment_end "
                  "bracketing each fragment's mining events) as JSON here");
  flags.AddBool("trace-timings", &trace_timings,
                "include wall-clock/worker fields in --trace output (not "
                "byte-stable across runs)");
  std::vector<std::string> storage = args;
  storage.insert(storage.begin(), "pgm corpus");
  std::vector<char*> argv;
  for (std::string& s : storage) argv.push_back(s.data());
  PGM_RETURN_IF_ERROR(flags.Parse(static_cast<int>(argv.size()), argv.data()));
  if (input.empty()) {
    return Status::InvalidArgument("--input is required\n" + flags.Usage());
  }
  if (fragment_length <= 0) {
    return Status::InvalidArgument("--fragment-length must be positive");
  }
  if (max_fragments < 0) {
    return Status::InvalidArgument("--max-fragments must be non-negative");
  }
  if (pil_budget_bytes < 0 || max_level_candidates < 0 ||
      max_total_candidates < 0) {
    return Status::InvalidArgument(
        "resource budgets must be non-negative (0 = unlimited)");
  }

  CorpusPlanOptions plan_options;
  plan_options.fragment.fragment_length =
      static_cast<std::size_t>(fragment_length);
  plan_options.fragment.keep_tail = keep_tail;
  plan_options.max_fragments = static_cast<std::size_t>(max_fragments);
  PGM_ASSIGN_OR_RETURN(CorpusPlan plan,
                       LoadCorpusInput(input, plan_options, !no_mmap));
  if (plan.fragments().empty()) {
    // The loud-diagnostic contract: an input that fragments to nothing is
    // a usage error (exit 2), never a silent zero-pattern success.
    return Status::InvalidArgument(plan.EmptyPlanDiagnostic(plan_options));
  }

  CorpusOptions options;
  options.algorithm = algorithm;
  options.miner.min_gap = min_gap;
  options.miner.max_gap = max_gap;
  options.miner.min_support_ratio = rho_percent / 100.0;
  options.miner.start_length = start_length;
  options.miner.max_length = max_length;
  options.miner.user_n = user_n;
  options.miner.em_order = em_order;
  if (!KernelTierFromString(kernel, &options.miner.kernel_tier)) {
    return Status::InvalidArgument(
        "unknown --kernel '" + kernel + "' (auto | scalar | bits | avx2)");
  }
  options.miner.limits.pil_memory_budget_bytes =
      static_cast<std::uint64_t>(pil_budget_bytes);
  options.limits.deadline_ms = deadline_ms;
  options.limits.max_level_candidates =
      static_cast<std::uint64_t>(max_level_candidates);
  options.limits.max_total_candidates =
      static_cast<std::uint64_t>(max_total_candidates);
  options.corpus_threads = threads;
  options.cancel = &GlobalCancelToken();

  MetricsRegistry metrics;
  MiningTrace trace;
  MiningObserver observer;
  if (!metrics_path.empty()) observer.metrics = &metrics;
  if (!trace_path.empty()) observer.trace = &trace;
  if (observer.metrics != nullptr || observer.trace != nullptr) {
    options.observer = &observer;
  }

  PGM_ASSIGN_OR_RETURN(CorpusResult corpus, MineCorpus(plan, options));

  output->append(StrFormat(
      "corpus: %s; fragment_length=%lld keep_tail=%s; rho_s=%g%%; "
      "algorithm=%s\n",
      plan.Describe().c_str(), static_cast<long long>(fragment_length),
      keep_tail ? "true" : "false", rho_percent, algorithm.c_str()));
  for (const SkippedRecord& skipped : plan.skipped_records()) {
    output->append(StrFormat(
        "warning: record '%s' contributed no fragments (%zu symbol(s))\n",
        skipped.record_id.c_str(), skipped.length));
  }
  if (plan.num_dropped_residues() > 0) {
    output->append(StrFormat(
        "note: %zu non-alphabet residue(s) dropped during encoding\n",
        plan.num_dropped_residues()));
  }
  output->append(StrFormat(
      "fragments: %zu planned, %zu mined, %zu completed, %zu skipped, "
      "%zu failed\n",
      corpus.fragments_planned, corpus.fragments_mined,
      corpus.fragments_completed, corpus.fragments_skipped,
      corpus.fragments_failed));
  output->append(StrFormat(
      "termination: %s; candidates=%llu; complete up to length %lld\n",
      TerminationReasonToString(corpus.termination),
      static_cast<unsigned long long>(corpus.total_candidates),
      static_cast<long long>(corpus.guaranteed_complete_up_to)));

  // Aggregate pattern table, longest first (support ratio as tiebreak) to
  // mirror FormatMiningReport; `fragments` counts the fragments in which
  // the pattern met the threshold — the Section 7 aggregation unit.
  std::vector<std::size_t> order(corpus.patterns.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const FrequentPattern& pa = corpus.patterns[a];
    const FrequentPattern& pb = corpus.patterns[b];
    if (pa.pattern.length() != pb.pattern.length()) {
      return pa.pattern.length() > pb.pattern.length();
    }
    if (pa.support_ratio != pb.support_ratio) {
      return pa.support_ratio > pb.support_ratio;
    }
    return a < b;
  });
  output->append(StrFormat("%zu distinct frequent pattern(s) across the "
                           "corpus\n",
                           corpus.patterns.size()));
  TablePrinter table(
      {"pattern", "length", "fragments", "best support", "best ratio"});
  const std::size_t shown = std::min<std::size_t>(
      order.size(), static_cast<std::size_t>(std::max<std::int64_t>(0, top)));
  for (std::size_t i = 0; i < shown; ++i) {
    const FrequentPattern& pattern = corpus.patterns[order[i]];
    table.Row()
        .Add(pattern.pattern.ToShorthand())
        .Add(static_cast<std::uint64_t>(pattern.pattern.length()))
        .Add(corpus.pattern_fragment_counts[order[i]])
        .Add(pattern.support)
        .Add(pattern.support_ratio)
        .Done();
  }
  output->append(table.ToString());

  if (!csv_path.empty()) {
    const MiningResult flat = corpus.ToMiningResult();
    PGM_RETURN_IF_ERROR(SavePatternsCsv(flat, csv_path));
    output->append("wrote " + std::to_string(flat.patterns.size()) +
                   " patterns to " + csv_path + "\n");
  }
  if (!metrics_path.empty()) {
    PGM_RETURN_IF_ERROR(
        WriteStringToFile(metrics_path, metrics.ToJson() + "\n"));
    output->append("wrote metrics JSON to " + metrics_path + "\n");
  }
  if (!trace_path.empty()) {
    TraceJsonOptions trace_options;
    trace_options.include_volatile = trace_timings;
    PGM_RETURN_IF_ERROR(
        WriteStringToFile(trace_path, trace.ToJson(trace_options) + "\n"));
    output->append("wrote trace JSON to " + trace_path + "\n");
  }
  if (corpus.termination == TerminationReason::kCancelled &&
      GlobalCancelToken().cancelled()) {
    output->append(
        "interrupted: partial corpus result is sound; unmined fragments "
        "were skipped\n");
    *exit_override = kExitCancelled;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// pgm em
// ---------------------------------------------------------------------------

Status RunEm(const std::vector<std::string>& args, std::string* output) {
  std::string input;
  std::int64_t min_gap = 9, max_gap = 12, m = 10;
  FlagSet flags("pgm em: compute the e_m statistic (Theorem 2)");
  flags.AddString("input", &input, "input spec");
  flags.AddInt64("min-gap", &min_gap, "minimum gap N");
  flags.AddInt64("max-gap", &max_gap, "maximum gap M");
  flags.AddInt64("m", &m, "order of the statistic");
  std::vector<std::string> storage = args;
  storage.insert(storage.begin(), "pgm em");
  std::vector<char*> argv;
  for (std::string& s : storage) argv.push_back(s.data());
  PGM_RETURN_IF_ERROR(flags.Parse(static_cast<int>(argv.size()), argv.data()));
  if (input.empty()) {
    return Status::InvalidArgument("--input is required\n" + flags.Usage());
  }
  PGM_ASSIGN_OR_RETURN(Sequence sequence, LoadInput(input));
  PGM_ASSIGN_OR_RETURN(GapRequirement gap,
                       GapRequirement::Create(min_gap, max_gap));
  PGM_ASSIGN_OR_RETURN(EmResult em, ComputeEm(sequence, gap, m));
  long double wm = 1.0L;
  for (std::int64_t i = 0; i < m; ++i) {
    wm *= static_cast<long double>(gap.flexibility());
  }
  output->append(StrFormat(
      "L=%zu, gap %s, m=%lld: e_m = %llu, W^m = %.6g, W^m/e_m = %.4g\n",
      sequence.size(), gap.ToString().c_str(), static_cast<long long>(m),
      static_cast<unsigned long long>(em.em), static_cast<double>(wm),
      static_cast<double>(wm / static_cast<long double>(
                                   em.em == 0 ? 1 : em.em))));
  // Top-5 positions by K_r.
  std::vector<std::size_t> order(em.k_values.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return em.k_values[a] > em.k_values[b];
  });
  output->append("highest-K_r positions:");
  for (std::size_t i = 0; i < order.size() && i < 5; ++i) {
    output->append(StrFormat(" %zu (K=%llu)", order[i],
                             static_cast<unsigned long long>(
                                 em.k_values[order[i]])));
  }
  output->append("\n");
  return Status::OK();
}

// ---------------------------------------------------------------------------
// pgm scan (base-pair oscillation)
// ---------------------------------------------------------------------------

Status RunScan(const std::vector<std::string>& args, std::string* output) {
  std::string input;
  std::string pairs = "AA,AT,GC";
  std::int64_t max_distance = 20;
  FlagSet flags("pgm scan: base-pair oscillation correlation spectra");
  flags.AddString("input", &input, "input spec");
  flags.AddString("pairs", &pairs, "comma-separated base pairs, e.g. AA,AT");
  flags.AddInt64("max-distance", &max_distance, "largest distance p");
  std::vector<std::string> storage = args;
  storage.insert(storage.begin(), "pgm scan");
  std::vector<char*> argv;
  for (std::string& s : storage) argv.push_back(s.data());
  PGM_RETURN_IF_ERROR(flags.Parse(static_cast<int>(argv.size()), argv.data()));
  if (input.empty()) {
    return Status::InvalidArgument("--input is required\n" + flags.Usage());
  }
  PGM_ASSIGN_OR_RETURN(Sequence sequence, LoadInput(input));

  for (const std::string& pair : Split(pairs, ',')) {
    if (pair.size() != 2) {
      return Status::InvalidArgument("pair must be two characters: '" + pair +
                                     "'");
    }
    PGM_ASSIGN_OR_RETURN(
        CorrelationSpectrum spectrum,
        CorrelationSpectrumFor(sequence, pair[0], pair[1], max_distance));
    output->append(StrFormat("corr_%c%c(p):\n", pair[0], pair[1]));
    double max_abs = 1e-12;
    for (double v : spectrum.values) max_abs = std::max(max_abs, std::abs(v));
    for (std::size_t i = 0; i < spectrum.values.size(); ++i) {
      const double v = spectrum.values[i];
      const int bar = static_cast<int>(std::abs(v) / max_abs * 32);
      output->append(StrFormat("  p=%2zu  %+10.6f  %s\n", i + 1, v,
                               std::string(static_cast<std::size_t>(bar),
                                           v < 0 ? '-' : '#')
                                   .c_str()));
    }
    std::vector<std::int64_t> peaks = FindPeaks(spectrum, 0.0);
    output->append("  peaks:");
    for (std::int64_t p : peaks) {
      output->append(StrFormat(" %lld", static_cast<long long>(p)));
    }
    output->append("\n");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// pgm tandem
// ---------------------------------------------------------------------------

Status RunTandem(const std::vector<std::string>& args, std::string* output) {
  std::string input;
  std::int64_t max_period = 6, min_copies = 3, top = 20, min_length = 12;
  FlagSet flags("pgm tandem: classical tandem-repeat scan");
  flags.AddString("input", &input, "input spec");
  flags.AddInt64("max-period", &max_period, "largest repeat period");
  flags.AddInt64("min-copies", &min_copies, "minimum complete copies");
  flags.AddInt64("min-length", &min_length, "minimum region length shown");
  flags.AddInt64("top", &top, "repeats shown (longest first)");
  std::vector<std::string> storage = args;
  storage.insert(storage.begin(), "pgm tandem");
  std::vector<char*> argv;
  for (std::string& s : storage) argv.push_back(s.data());
  PGM_RETURN_IF_ERROR(flags.Parse(static_cast<int>(argv.size()), argv.data()));
  if (input.empty()) {
    return Status::InvalidArgument("--input is required\n" + flags.Usage());
  }
  PGM_ASSIGN_OR_RETURN(Sequence sequence, LoadInput(input));
  PGM_ASSIGN_OR_RETURN(std::vector<TandemRepeat> repeats,
                       FindTandemRepeats(sequence, max_period, min_copies));
  std::vector<const TandemRepeat*> shown;
  for (const TandemRepeat& repeat : repeats) {
    if (repeat.length >= min_length) shown.push_back(&repeat);
  }
  std::sort(shown.begin(), shown.end(),
            [](const TandemRepeat* a, const TandemRepeat* b) {
              return a->length > b->length;
            });
  output->append(StrFormat("%zu tandem repeats (of %zu total) with length "
                           ">= %lld:\n",
                           shown.size(), repeats.size(),
                           static_cast<long long>(min_length)));
  TablePrinter table({"start", "period", "length", "copies", "unit"});
  for (std::size_t i = 0; i < shown.size() &&
                          i < static_cast<std::size_t>(std::max<std::int64_t>(0, top));
       ++i) {
    const TandemRepeat& repeat = *shown[i];
    table.Row()
        .Add(repeat.start)
        .Add(repeat.period)
        .Add(repeat.length)
        .Add(repeat.copies())
        .Add(sequence
                 .Subsequence(static_cast<std::size_t>(repeat.start),
                              static_cast<std::size_t>(repeat.period))
                 .ToString())
        .Done();
  }
  output->append(table.ToString());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// pgm compare
// ---------------------------------------------------------------------------

Status RunCompare(const std::vector<std::string>& args, std::string* output) {
  std::int64_t examples = 3;
  bool use_protein = false;
  FlagSet flags(
      "pgm compare: compare two or more patterns-CSV files (as written by "
      "pgm mine --csv)");
  flags.AddBool("protein", &use_protein, "patterns use the protein alphabet");
  flags.AddInt64("examples", &examples, "unique-pattern examples shown");
  std::vector<std::string> storage = args;
  storage.insert(storage.begin(), "pgm compare");
  std::vector<char*> argv;
  for (std::string& s : storage) argv.push_back(s.data());
  PGM_RETURN_IF_ERROR(flags.Parse(static_cast<int>(argv.size()), argv.data()));
  const std::vector<std::string>& paths = flags.positional_args();
  if (paths.size() < 2) {
    return Status::InvalidArgument(
        "pgm compare needs at least two patterns-CSV files\n" + flags.Usage());
  }
  const Alphabet& alphabet =
      use_protein ? Alphabet::Protein() : Alphabet::Dna();
  std::vector<NamedPatternSet> sets;
  for (const std::string& path : paths) {
    NamedPatternSet set;
    set.name = path;
    PGM_ASSIGN_OR_RETURN(set.patterns, LoadPatternsCsv(path, alphabet));
    sets.push_back(std::move(set));
  }
  PGM_ASSIGN_OR_RETURN(std::vector<SetComparison> comparisons,
                       ComparePatternSets(sets));
  TablePrinter table({"file", "patterns", "common to all", "unique",
                      "example unique"});
  for (const SetComparison& comparison : comparisons) {
    std::string example = "-";
    if (!comparison.unique.empty()) {
      example.clear();
      for (std::int64_t i = 0;
           i < examples &&
           i < static_cast<std::int64_t>(comparison.unique.size());
           ++i) {
        if (i > 0) example += " ";
        example += comparison.unique[i].ToShorthand();
      }
    }
    table.Row()
        .Add(comparison.name)
        .Add(static_cast<std::uint64_t>(comparison.total))
        .Add(static_cast<std::uint64_t>(comparison.common.size()))
        .Add(static_cast<std::uint64_t>(comparison.unique.size()))
        .Add(example)
        .Done();
  }
  output->append(table.ToString());
  if (sets.size() == 2) {
    output->append(StrFormat(
        "Jaccard similarity: %.4f\n",
        PatternSetJaccard(sets[0].patterns, sets[1].patterns)));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// pgm generate
// ---------------------------------------------------------------------------

Status RunGenerate(const std::vector<std::string>& args, std::string* output) {
  std::string preset = "bacteria";
  std::int64_t length = 100'000, seed = 1;
  std::string out_path;
  FlagSet flags("pgm generate: write a synthetic genome preset as FASTA");
  flags.AddString("preset", &preset,
                  "ax829174 | bacteria | eukaryote | worm");
  flags.AddInt64("length", &length, "genome length (ignored for ax829174)");
  flags.AddInt64("seed", &seed, "generation seed");
  flags.AddString("output", &out_path, "output FASTA path (required)");
  std::vector<std::string> storage = args;
  storage.insert(storage.begin(), "pgm generate");
  std::vector<char*> argv;
  for (std::string& s : storage) argv.push_back(s.data());
  PGM_RETURN_IF_ERROR(flags.Parse(static_cast<int>(argv.size()), argv.data()));
  if (out_path.empty()) {
    return Status::InvalidArgument("--output is required\n" + flags.Usage());
  }
  PGM_ASSIGN_OR_RETURN(
      Sequence sequence,
      LoadInput(StrFormat("preset:%s:%lld:%lld", preset.c_str(),
                          static_cast<long long>(length),
                          static_cast<long long>(seed))));
  FastaRecord record;
  record.id = preset;
  record.description = StrFormat("synthetic %s genome, L=%zu, seed=%lld",
                                 preset.c_str(), sequence.size(),
                                 static_cast<long long>(seed));
  record.residues = sequence.ToString();
  PGM_RETURN_IF_ERROR(WriteFastaFile(out_path, {record}));
  output->append(StrFormat("wrote %zu bp to %s\n", sequence.size(),
                           out_path.c_str()));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// pgm serve
// ---------------------------------------------------------------------------

/// Parses one job-file line: `<input-spec> [key=value ...]`. Keys mirror the
/// pgm mine flags (algorithm, min-gap, max-gap, rho-percent, start-length,
/// max-length, n, m, threads, kernel, deadline-ms). `corpus=<len>` switches
/// the job to corpus mode: the input is expanded into fragments of that
/// length and mined by the corpus executor (corpus-keep-tail=1 keeps each
/// record's sub-window remainder).
Status ParseJobLine(const std::string& line, std::size_t line_number,
                    MiningJob* job) {
  std::vector<std::string> tokens;
  for (const std::string& token : Split(line, ' ')) {
    if (!token.empty()) tokens.push_back(token);
  }
  job->input = tokens.front();
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::size_t eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("jobs line %zu: expected key=value, got '%s'", line_number,
                    tokens[i].c_str()));
    }
    const std::string key = tokens[i].substr(0, eq);
    const std::string value = tokens[i].substr(eq + 1);
    if (key == "algorithm") {
      job->algorithm = value;
      continue;
    }
    if (key == "rho-percent") {
      PGM_ASSIGN_OR_RETURN(double parsed, ParseDouble(value));
      job->config.min_support_ratio = parsed / 100.0;
      continue;
    }
    if (key == "kernel") {
      if (!KernelTierFromString(value, &job->config.kernel_tier)) {
        return Status::InvalidArgument(
            StrFormat("jobs line %zu: unknown kernel '%s'", line_number,
                      value.c_str()));
      }
      continue;
    }
    PGM_ASSIGN_OR_RETURN(std::int64_t parsed, ParseInt64(value));
    if (key == "min-gap") {
      job->config.min_gap = parsed;
    } else if (key == "max-gap") {
      job->config.max_gap = parsed;
    } else if (key == "start-length") {
      job->config.start_length = parsed;
    } else if (key == "max-length") {
      job->config.max_length = parsed;
    } else if (key == "n") {
      job->config.user_n = parsed;
    } else if (key == "m") {
      job->config.em_order = parsed;
    } else if (key == "threads") {
      job->config.threads = parsed;
    } else if (key == "deadline-ms") {
      job->config.limits.deadline_ms = parsed;
    } else if (key == "corpus") {
      if (parsed <= 0) {
        return Status::InvalidArgument(
            StrFormat("jobs line %zu: corpus fragment length must be "
                      "positive, got %lld",
                      line_number, static_cast<long long>(parsed)));
      }
      job->corpus_fragment_length = static_cast<std::size_t>(parsed);
    } else if (key == "corpus-keep-tail") {
      job->corpus_keep_tail = parsed != 0;
    } else {
      return Status::InvalidArgument(
          StrFormat("jobs line %zu: unknown key '%s'", line_number,
                    key.c_str()));
    }
  }
  return Status::OK();
}

/// One line per job response: machine-greppable outcome columns.
void AppendResponseLine(const JobResponse& response, std::string* output) {
  output->append(StrFormat("job %lld %s %s: ",
                           static_cast<long long>(response.id),
                           response.input.c_str(),
                           response.algorithm.c_str()));
  if (!response.status.ok()) {
    output->append(StatusCodeToString(response.status.code()));
    if (response.status.code() == StatusCode::kUnavailable) {
      output->append(StrFormat(" retry_after_ms=%lld",
                               static_cast<long long>(response.retry_after_ms)));
    }
  } else {
    output->append(StrFormat(
        "%s patterns=%zu cache_hit=%d",
        TerminationReasonToString(response.result.termination),
        response.result.patterns.size(), response.cache_hit ? 1 : 0));
    if (response.corpus_fragments > 0) {
      output->append(
          StrFormat(" fragments=%zu", response.corpus_fragments));
    }
  }
  if (response.load_attempts > 1) {
    output->append(StrFormat(" load_attempts=%d", response.load_attempts));
  }
  output->append("\n");
}

Status RunServe(const std::vector<std::string>& args, std::string* output,
                int* exit_override) {
  std::string jobs_path;
  std::int64_t queue_capacity = 64;
  std::int64_t workers = 1;
  std::int64_t max_deadline_ms = -1;
  std::int64_t cache_bytes = 0;
  std::int64_t retry_attempts = 2;
  std::int64_t retry_base_ms = 1;
  std::int64_t retry_after_ms = 50;
  std::string metrics_path;
  std::string trace_path;

  FlagSet flags("pgm serve: run a batch of mining jobs as a bounded service");
  flags.AddString("jobs", &jobs_path,
                  "job file: one '<input-spec> key=value ...' per line "
                  "('#' starts a comment)");
  flags.AddInt64("queue-capacity", &queue_capacity,
                 "admission queue bound; jobs past it are shed (exit-visible "
                 "as Unavailable responses)");
  flags.AddInt64("workers", &workers,
                 "service worker threads (0 = one per hardware thread)");
  flags.AddInt64("max-deadline-ms", &max_deadline_ms,
                 "server ceiling on any job's deadline (-1 = none)");
  flags.AddInt64("cache-bytes", &cache_bytes,
                 "result-cache budget in bytes (0 = cache off)");
  flags.AddInt64("retry-attempts", &retry_attempts,
                 "input-load attempts per job (transient I/O faults only)");
  flags.AddInt64("retry-base-ms", &retry_base_ms,
                 "first retry backoff; doubles per attempt");
  flags.AddInt64("retry-after-ms", &retry_after_ms,
                 "backoff hint attached to shed responses");
  flags.AddString("metrics-out", &metrics_path,
                  "write service+mining metrics as deterministic JSON here");
  flags.AddString("trace", &trace_path,
                  "write the job/mining trace as JSON here");
  std::vector<std::string> storage = args;
  storage.insert(storage.begin(), "pgm serve");
  std::vector<char*> argv;
  for (std::string& s : storage) argv.push_back(s.data());
  PGM_RETURN_IF_ERROR(flags.Parse(static_cast<int>(argv.size()), argv.data()));
  if (jobs_path.empty()) {
    return Status::InvalidArgument("--jobs is required\n" + flags.Usage());
  }
  if (queue_capacity <= 0 || workers < 0 || cache_bytes < 0 ||
      retry_attempts < 1 || retry_base_ms < 0 || retry_after_ms < 0) {
    return Status::InvalidArgument(
        "serve knobs must be positive (queue-capacity, retry-attempts) or "
        "non-negative (workers, cache-bytes, retry-base-ms, retry-after-ms)");
  }

  PGM_ASSIGN_OR_RETURN(std::string jobs_text, ReadFileToString(jobs_path));
  std::vector<MiningJob> jobs;
  std::size_t line_number = 0;
  for (const std::string& raw_line : Split(jobs_text, '\n')) {
    ++line_number;
    std::string_view line = Trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    MiningJob job;
    PGM_RETURN_IF_ERROR(
        ParseJobLine(std::string(line), line_number, &job));
    jobs.push_back(std::move(job));
  }
  if (jobs.empty()) {
    return Status::InvalidArgument("no jobs in " + jobs_path);
  }

  MetricsRegistry metrics;
  MiningTrace trace;
  MiningObserver observer;
  observer.metrics = &metrics;
  if (!trace_path.empty()) observer.trace = &trace;

  ServiceConfig service_config;
  service_config.queue_capacity = static_cast<std::size_t>(queue_capacity);
  service_config.workers = static_cast<std::size_t>(workers);
  service_config.max_deadline_ms = max_deadline_ms;
  service_config.cache_capacity_bytes = static_cast<std::uint64_t>(cache_bytes);
  service_config.io_retry.max_attempts = static_cast<int>(retry_attempts);
  service_config.io_retry.base_delay_ms = retry_base_ms;
  service_config.retry_after_ms = retry_after_ms;
  service_config.observer = &observer;
  service_config.loader = [](const std::string& spec) {
    return LoadInput(spec);
  };
  service_config.corpus_loader = [](const std::string& spec,
                                    const CorpusPlanOptions& options) {
    return LoadCorpusInput(spec, options);
  };
  MiningService service(std::move(service_config));

  // Submit everything before starting the drain: shedding then depends only
  // on queue capacity and submission order, so batch runs are reproducible.
  for (MiningJob& job : jobs) {
    (void)service.Submit(std::move(job));  // shed jobs recorded as responses
  }
  service.Start();

  // Signal watcher: SIGINT/SIGTERM latch the global token; the watcher
  // turns that into a graceful drain (stop admitting, cancel in-flight,
  // flush partials).
  std::atomic<bool> watcher_stop{false};
  std::thread watcher([&service, &watcher_stop] {
    while (!watcher_stop.load(std::memory_order_acquire)) {
      if (GlobalCancelToken().cancelled()) {
        service.BeginShutdown();
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });
  std::vector<JobResponse> responses = service.Join();
  watcher_stop.store(true, std::memory_order_release);
  watcher.join();

  std::size_t completed = 0, partial = 0, shed = 0, failed = 0, hits = 0;
  for (const JobResponse& response : responses) {
    AppendResponseLine(response, output);
    if (response.status.ok()) {
      if (response.result.complete()) {
        ++completed;
      } else {
        ++partial;
      }
      if (response.cache_hit) ++hits;
    } else if (response.status.code() == StatusCode::kUnavailable) {
      ++shed;
    } else {
      ++failed;
    }
  }
  output->append(StrFormat(
      "served %zu jobs: %zu completed, %zu partial, %zu shed, %zu failed, "
      "%zu cache hits\n",
      responses.size(), completed, partial, shed, failed, hits));

  if (!metrics_path.empty()) {
    PGM_RETURN_IF_ERROR(
        WriteStringToFile(metrics_path, metrics.ToJson() + "\n"));
    output->append("wrote metrics JSON to " + metrics_path + "\n");
  }
  if (!trace_path.empty()) {
    PGM_RETURN_IF_ERROR(
        WriteStringToFile(trace_path, trace.ToJson() + "\n"));
    output->append("wrote trace JSON to " + trace_path + "\n");
  }
  if (GlobalCancelToken().cancelled()) {
    output->append("interrupted: drained gracefully; partial results above "
                   "are sound\n");
    *exit_override = kExitCancelled;
  }
  return Status::OK();
}

}  // namespace

std::string RootUsage() {
  return
      "pgm — periodic pattern mining with gap requirements (SIGMOD 2005)\n"
      "\n"
      "Usage: pgm <command> [flags]   (pgm <command> --help for details)\n"
      "\n"
      "Commands:\n"
      "  mine      find frequent periodic patterns (MPP/MPPm/enum/adaptive)\n"
      "  corpus    mine a multi-record corpus fragment-by-fragment (paper "
      "Section 7)\n"
      "  em        compute the e_m pruning statistic\n"
      "  scan      base-pair oscillation correlation spectra\n"
      "  tandem    classical tandem-repeat scan\n"
      "  compare   compare two or more patterns-CSV files\n"
      "  generate  write a synthetic genome preset as FASTA\n"
      "  serve     run a job batch as a bounded, fault-tolerant service\n"
      "\n"
      "Input specs (--input):\n"
      "  fasta:<path>[#<record-id>]     FASTA file\n"
      "  text:<path>                    raw characters from a file\n"
      "  raw:<characters>               characters inline\n"
      "  preset:<name>[:<len>[:<seed>]] synthetic genome (ax829174,\n"
      "                                 bacteria, eukaryote, worm)\n"
      "  append @protein for the amino-acid alphabet\n";
}

int ExitCodeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidArgument:
      return 2;
    case StatusCode::kIoError:
      return 3;
    case StatusCode::kCorruption:
      return 4;
    case StatusCode::kResourceExhausted:
      return 5;
    case StatusCode::kNotFound:
      return 6;
    case StatusCode::kUnavailable:
      return 7;
    default:
      return 1;
  }
}

int Run(int argc, char** argv, std::string* output, std::string* error) {
  if (argc < 2) {
    error->append(RootUsage());
    return 2;
  }
  const std::string command = argv[1];
  std::vector<std::string> rest(argv + 2, argv + argc);
  if (command == "--help" || command == "-h" || command == "help") {
    output->append(RootUsage());
    return 0;
  }
  Status status = Status::OK();
  // -1 = no override; RunMine/RunServe set kExitCancelled after a graceful
  // signal-driven wind-down (the Status stays OK — the partial result is
  // sound and already rendered).
  int exit_override = -1;
  if (command == "mine") {
    status = RunMine(rest, output, &exit_override);
  } else if (command == "corpus") {
    status = RunCorpus(rest, output, &exit_override);
  } else if (command == "serve") {
    status = RunServe(rest, output, &exit_override);
  } else if (command == "em") {
    status = RunEm(rest, output);
  } else if (command == "scan") {
    status = RunScan(rest, output);
  } else if (command == "tandem") {
    status = RunTandem(rest, output);
  } else if (command == "compare") {
    status = RunCompare(rest, output);
  } else if (command == "generate") {
    status = RunGenerate(rest, output);
  } else {
    error->append("unknown command '" + command + "'\n\n" + RootUsage());
    return 2;
  }
  if (!status.ok()) {
    if (status.code() == StatusCode::kNotFound &&
        status.message().rfind("pgm ", 0) == 0) {
      // --help inside a sub-command: message is the usage text.
      output->append(status.message());
      return 0;
    }
    error->append(status.ToString());
    error->append("\n");
    return ExitCodeForStatus(status);
  }
  return exit_override >= 0 ? exit_override : 0;
}

int Run(int argc, char** argv, std::string* output) {
  return Run(argc, argv, output, output);
}

int RunFromString(const std::string& command_line, std::string* output,
                  std::string* error) {
  std::vector<std::string> tokens;
  for (const std::string& token : Split(command_line, ' ')) {
    if (!token.empty()) tokens.push_back(token);
  }
  std::vector<char*> argv;
  for (std::string& token : tokens) argv.push_back(token.data());
  return Run(static_cast<int>(argv.size()), argv.data(), output,
             error == nullptr ? output : error);
}

}  // namespace pgm::cli
