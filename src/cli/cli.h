#ifndef PGM_CLI_CLI_H_
#define PGM_CLI_CLI_H_

#include <string>
#include <vector>

#include "core/guard.h"
#include "corpus/plan.h"
#include "seq/sequence.h"
#include "util/status.h"

namespace pgm::cli {

/// The `pgm` command-line tool, structured as a testable library: every
/// sub-command renders its report into a string, and the thin `tools/`
/// binary prints it. Sub-commands:
///
///   pgm mine     --input <spec> --min-gap N --max-gap M --rho-percent R ...
///   pgm corpus   --input <spec> --fragment-length L --threads T ...
///   pgm em       --input <spec> --min-gap N --max-gap M --m K
///   pgm scan     --input <spec> --pairs AA,AT --max-distance P
///   pgm tandem   --input <spec> --max-period P [--min-copies C]
///   pgm compare  <patterns.csv> <patterns.csv> [...]
///   pgm generate --preset <name> --length L --seed S --output file.fa
///   pgm serve    --jobs <file> --queue-capacity Q --workers W ...
///
/// Input specs (the --input flag):
///   fasta:<path>[#<record-id>]   a FASTA file (first record by default)
///   text:<path>                  raw characters from a file
///   raw:<characters>             characters given inline
///   preset:<name>[:<len>[:<seed>]]  a synthetic genome; names: ax829174,
///                                bacteria, eukaryote, worm
/// An optional `@protein` suffix switches the alphabet from DNA to the 20
/// amino acids (e.g. "raw:LWLWLW@protein").

/// Parses an input spec and loads the sequence.
StatusOr<Sequence> LoadInput(const std::string& spec);

/// Parses an input spec into a corpus plan (every record, fragmented).
/// `fasta:<path>` expands every record of the file — with use_mmap (the
/// default) through the streaming MmapFile + FastaScanner path, so a
/// genome-scale corpus never materializes as one string; a `#<record-id>`
/// suffix restricts the corpus to that record. Non-FASTA specs (raw:,
/// text:, preset:) become a single pseudo-record named by the spec itself.
StatusOr<CorpusPlan> LoadCorpusInput(const std::string& spec,
                                     const CorpusPlanOptions& options,
                                     bool use_mmap = true);

/// Maps a failure Status to the tool's process exit code, so scripts can
/// branch on the failure class: InvalidArgument/usage errors=2, IoError=3,
/// Corruption=4, ResourceExhausted=5, NotFound=6, Unavailable (serve
/// admission shed)=7, any other failure=1, OK=0. Note budget exhaustion
/// during mining does NOT produce a failure — the run exits 0 with a
/// partial result (see MiningResult::termination).
int ExitCodeForStatus(const Status& status);

/// Exit code when a run was interrupted by SIGINT/SIGTERM and returned a
/// partial-but-sound result: the conventional 128 + SIGINT. Distinct from
/// every ExitCodeForStatus value so scripts can tell "interrupted, partial
/// output is trustworthy" from "failed".
inline constexpr int kExitCancelled = 130;

/// The process-wide cancellation token `pgm mine` and `pgm serve` run
/// under. Signal handlers (tools/pgm_main.cc) latch it with RequestCancel —
/// an atomic store, so it is async-signal-safe — and the running command
/// winds down to a partial result and exits kExitCancelled. Tests that
/// latch it must Reset() it afterwards; the token is process-global.
CancelToken& GlobalCancelToken();

/// Executes a full command line (argv[0] is the program name). The
/// rendered report is appended to *output; failure diagnostics are
/// appended to *error (the binary routes them to stderr). Returns the
/// process exit code (see ExitCodeForStatus).
int Run(int argc, char** argv, std::string* output, std::string* error);

/// Backwards-compatible overload: diagnostics are appended to *output.
int Run(int argc, char** argv, std::string* output);

/// Convenience for tests: tokenizes `command_line` on spaces (no quoting)
/// and calls Run.
int RunFromString(const std::string& command_line, std::string* output,
                  std::string* error = nullptr);

/// Top-level usage text.
std::string RootUsage();

}  // namespace pgm::cli

#endif  // PGM_CLI_CLI_H_
