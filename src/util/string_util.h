#ifndef PGM_UTIL_STRING_UTIL_H_
#define PGM_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace pgm {

/// Splits `input` on `delimiter`; adjacent delimiters yield empty fields.
/// Splitting the empty string yields a single empty field.
std::vector<std::string> Split(std::string_view input, char delimiter);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

/// ASCII-only case conversion.
std::string ToUpper(std::string_view input);
std::string ToLower(std::string_view input);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Strict integer / floating-point parsing: the whole (trimmed) string must
/// be consumed, otherwise InvalidArgument is returned.
StatusOr<std::int64_t> ParseInt64(std::string_view input);
StatusOr<double> ParseDouble(std::string_view input);

/// Formats `value` with thousands separators, e.g. 1234567 -> "1,234,567".
std::string WithThousandsSeparators(std::uint64_t value);

/// Human-oriented rendering of a possibly huge count: exact digits when the
/// value is small enough, scientific notation otherwise, "2^64-sat" for a
/// saturated counter.
std::string FormatCount(std::uint64_t value);

}  // namespace pgm

#endif  // PGM_UTIL_STRING_UTIL_H_
