#include "util/random.h"

#include <cassert>

namespace pgm {

namespace {
inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::UniformInt(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::UniformRange(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [lo, hi] where hi-lo wraps; that
  // cannot happen for int64 inputs with lo <= hi unless the span is 2^64,
  // which requires lo == INT64_MIN and hi == INT64_MAX.
  if (span == 0) return static_cast<std::int64_t>(Next());
  return lo + static_cast<std::int64_t>(UniformInt(span));
}

double Rng::UniformDouble() {
  // 53 top bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

std::size_t Rng::Categorical(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return weights.size() - 1;
  double target = UniformDouble() * total;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cumulative += (weights[i] > 0.0 ? weights[i] : 0.0);
    if (target < cumulative) return i;
  }
  return weights.size() - 1;
}

}  // namespace pgm
