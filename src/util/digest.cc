#include "util/digest.h"

namespace pgm {

std::uint64_t Fnv1a64(std::string_view text) {
  return Digest64().Update(text).value();
}

std::string DigestToHex(std::uint64_t value) {
  static const char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[value & 0xf];
    value >>= 4;
  }
  return out;
}

}  // namespace pgm
