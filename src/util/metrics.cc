#include "util/metrics.h"

#include <algorithm>

namespace pgm {

namespace {

/// Escapes a metric name for use as a JSON string. Names are plain
/// identifiers in practice, but a malformed export would poison every
/// downstream consumer, so escape defensively.
std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendUintList(const std::vector<std::uint64_t>& values,
                    std::string* out) {
  out->push_back('[');
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out->append(", ");
    out->append(std::to_string(values[i]));
  }
  out->push_back(']');
}

}  // namespace

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {}

void Histogram::Observe(std::uint64_t value) {
  const std::size_t index = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, SatAdd(current, value),
                                     std::memory_order_relaxed)) {
  }
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot.reset(new Counter());
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot.reset(new Gauge());
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<std::uint64_t> bounds) {
  MutexLock lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot.reset(new Histogram(std::move(bounds)));
  return slot.get();
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  MutexLock lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  const Counter* counter = FindCounter(name);
  return counter == nullptr ? 0 : counter->value();
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  // Snapshot the other registry's handles under its lock, then apply them
  // through the public getters (which take this registry's lock); never hold
  // both locks at once, so Merge cycles cannot deadlock.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  {
    MutexLock lock(other.mutex_);
    for (const auto& [name, counter] : other.counters_) {
      counters.emplace_back(name, counter->value());
    }
    for (const auto& [name, gauge] : other.gauges_) {
      gauges.emplace_back(name, gauge->value());
    }
    for (const auto& [name, histogram] : other.histograms_) {
      histograms.emplace_back(name, histogram.get());
    }
  }
  for (const auto& [name, value] : counters) {
    if (value > 0) GetCounter(name)->Add(value);
  }
  for (const auto& [name, value] : gauges) GetGauge(name)->Set(value);
  for (const auto& [name, source] : histograms) {
    Histogram* target = GetHistogram(name, source->bounds());
    const std::size_t buckets =
        std::min(target->bounds_.size(), source->bounds_.size()) + 1;
    for (std::size_t i = 0; i < buckets; ++i) {
      const std::uint64_t delta = source->bucket_count(i);
      if (delta > 0) {
        target->buckets_[i].fetch_add(delta, std::memory_order_relaxed);
      }
    }
    target->count_.fetch_add(source->count(), std::memory_order_relaxed);
    std::uint64_t current = target->sum_.load(std::memory_order_relaxed);
    while (!target->sum_.compare_exchange_weak(
        current, SatAdd(current, source->sum()), std::memory_order_relaxed)) {
    }
  }
}

std::string MetricsRegistry::ToJson() const {
  MutexLock lock(mutex_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + EscapeJson(name) +
           "\": " + std::to_string(counter->value());
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out +=
        "    \"" + EscapeJson(name) + "\": " + std::to_string(gauge->value());
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + EscapeJson(name) + "\": {\"bounds\": ";
    AppendUintList(histogram->bounds(), &out);
    out += ", \"buckets\": ";
    std::vector<std::uint64_t> buckets(histogram->bounds().size() + 1);
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      buckets[i] = histogram->bucket_count(i);
    }
    AppendUintList(buckets, &out);
    out += ", \"count\": " + std::to_string(histogram->count());
    out += ", \"sum\": " + std::to_string(histogram->sum());
    out += "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}";
  return out;
}

}  // namespace pgm
