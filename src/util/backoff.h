#ifndef PGM_UTIL_BACKOFF_H_
#define PGM_UTIL_BACKOFF_H_

#include <cstdint>
#include <vector>

namespace pgm {

/// Exponential-backoff retry policy for transient faults (I/O reads, the
/// serving loop's load phase). The schedule is a pure function of the policy
/// and the attempt number — jitter comes from `jitter_seed`, never from
/// wall-clock or global RNG state — so tests can pin the exact delays a
/// caller will sleep.
struct RetryPolicy {
  /// Total attempts including the first; 1 means "no retry".
  int max_attempts = 1;
  /// Delay before the first retry (attempt 2), in milliseconds.
  std::int64_t base_delay_ms = 0;
  /// Each subsequent retry multiplies the previous delay by this.
  double multiplier = 2.0;
  /// Delays are clamped to this ceiling.
  std::int64_t max_delay_ms = 1000;
  /// Non-zero mixes a deterministic jitter into each delay: the delay for
  /// attempt k is drawn from [delay/2, delay] using SplitMix64(seed ^ k).
  /// Zero disables jitter (the delay is exactly the exponential value).
  std::uint64_t jitter_seed = 0;
};

/// The delay to sleep before retry attempt `attempt` (attempt 2 is the
/// first retry; attempt <= 1 returns 0). Deterministic given the policy.
std::int64_t BackoffDelayMs(const RetryPolicy& policy, int attempt);

/// Sleeps for `delay_ms` — or, when a ScopedBackoffRecorder is installed,
/// records the delay instead of sleeping, so retry tests run at full speed
/// and assert the exact schedule.
void BackoffSleep(std::int64_t delay_ms);

/// Captures every BackoffSleep delay for the duration of the scope instead
/// of sleeping (tests only; scopes must not nest). Safe to install before
/// spawning worker threads that sleep concurrently — the recorder's log is
/// mutex-protected — but installation/removal must not race with sleeps.
class ScopedBackoffRecorder {
 public:
  ScopedBackoffRecorder();
  ~ScopedBackoffRecorder();
  ScopedBackoffRecorder(const ScopedBackoffRecorder&) = delete;
  ScopedBackoffRecorder& operator=(const ScopedBackoffRecorder&) = delete;

  /// The delays recorded so far, in BackoffSleep call order.
  std::vector<std::int64_t> delays() const;
};

}  // namespace pgm

#endif  // PGM_UTIL_BACKOFF_H_
