#ifndef PGM_UTIL_LIMITS_H_
#define PGM_UTIL_LIMITS_H_

#include <cstdint>

namespace pgm {

/// Resource budgets for a mining run. The defaults mean "unlimited": a
/// negative deadline disables the clock and a zero budget/cap disables that
/// check entirely, so a default-constructed ResourceLimits reproduces the
/// ungoverned behavior bit-for-bit.
///
/// Limits never make a run fail: when a budget is exhausted the miners stop
/// early and return a partial-but-sound result (see
/// MiningResult::termination). Theorem 1's N_l = O(L * W^(l-1)) growth means
/// candidate sets and PIL memory explode combinatorially with the gap window
/// W; these knobs are how a service facing arbitrary user inputs bounds that
/// explosion instead of hanging or OOM-ing.
struct ResourceLimits {
  /// Wall-clock deadline for the whole mining call, in milliseconds;
  /// negative means no deadline. A deadline of 0 trips at the first check.
  std::int64_t deadline_ms = -1;
  /// Budget for live PIL heap memory in bytes (the level-wise engine's
  /// dominant allocation); 0 means unlimited.
  std::uint64_t pil_memory_budget_bytes = 0;
  /// Cap on |C_l|, the candidates generated for any single level; 0 means
  /// unlimited.
  std::uint64_t max_level_candidates = 0;
  /// Cap on the total candidates generated across all levels; 0 means
  /// unlimited.
  std::uint64_t max_total_candidates = 0;

  /// True when any limit is active.
  bool any() const {
    return deadline_ms >= 0 || pil_memory_budget_bytes > 0 ||
           max_level_candidates > 0 || max_total_candidates > 0;
  }
};

/// Why a mining run stopped. Everything except kCompleted marks a partial
/// result: the patterns returned are all genuinely frequent (sound), but
/// patterns longer than MiningResult::guaranteed_complete_up_to may be
/// missing.
enum class TerminationReason {
  kCompleted = 0,
  kDeadline = 1,
  kMemoryBudget = 2,
  kCandidateCap = 3,
  kCancelled = 4,
};

/// Returns a stable human-readable name for `reason` (e.g. "deadline").
inline const char* TerminationReasonToString(TerminationReason reason) {
  switch (reason) {
    case TerminationReason::kCompleted:
      return "completed";
    case TerminationReason::kDeadline:
      return "deadline";
    case TerminationReason::kMemoryBudget:
      return "memory-budget";
    case TerminationReason::kCandidateCap:
      return "candidate-cap";
    case TerminationReason::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

}  // namespace pgm

#endif  // PGM_UTIL_LIMITS_H_
