#include "util/flags.h"

#include "util/string_util.h"

namespace pgm {

FlagSet::FlagSet(std::string program_description)
    : description_(std::move(program_description)) {}

void FlagSet::AddInt64(const std::string& name, std::int64_t* value,
                       const std::string& help) {
  flags_[name] = Flag{Type::kInt64, value, help, std::to_string(*value)};
}

void FlagSet::AddDouble(const std::string& name, double* value,
                        const std::string& help) {
  flags_[name] = Flag{Type::kDouble, value, help, StrFormat("%g", *value)};
}

void FlagSet::AddString(const std::string& name, std::string* value,
                        const std::string& help) {
  flags_[name] = Flag{Type::kString, value, help, *value};
}

void FlagSet::AddBool(const std::string& name, bool* value,
                      const std::string& help) {
  flags_[name] = Flag{Type::kBool, value, help, *value ? "true" : "false"};
}

Status FlagSet::SetFlag(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name + "\n" + Usage());
  }
  Flag& flag = it->second;
  switch (flag.type) {
    case Type::kInt64: {
      PGM_ASSIGN_OR_RETURN(*static_cast<std::int64_t*>(flag.target),
                           ParseInt64(value));
      return Status::OK();
    }
    case Type::kDouble: {
      PGM_ASSIGN_OR_RETURN(*static_cast<double*>(flag.target),
                           ParseDouble(value));
      return Status::OK();
    }
    case Type::kString:
      *static_cast<std::string*>(flag.target) = value;
      return Status::OK();
    case Type::kBool: {
      std::string lower = ToLower(value);
      if (lower == "true" || lower == "1" || lower.empty()) {
        *static_cast<bool*>(flag.target) = true;
      } else if (lower == "false" || lower == "0") {
        *static_cast<bool*>(flag.target) = false;
      } else {
        return Status::InvalidArgument("bad boolean value for --" + name +
                                       ": '" + value + "'");
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable flag type");
}

Status FlagSet::Parse(int argc, char** argv) {
  if (argc > 0) program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      return Status::NotFound(Usage());
    }
    if (arg.rfind("--", 0) != 0) {
      positional_args_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      PGM_RETURN_IF_ERROR(SetFlag(body.substr(0, eq), body.substr(eq + 1)));
      continue;
    }
    auto it = flags_.find(body);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + body + "\n" + Usage());
    }
    if (it->second.type == Type::kBool) {
      PGM_RETURN_IF_ERROR(SetFlag(body, "true"));
      continue;
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("flag --" + body + " requires a value");
    }
    PGM_RETURN_IF_ERROR(SetFlag(body, argv[++i]));
  }
  return Status::OK();
}

std::string FlagSet::Usage() const {
  std::string out = description_ + "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    out += StrFormat("  --%-24s %s (default: %s)\n", name.c_str(),
                     flag.help.c_str(), flag.default_repr.c_str());
  }
  return out;
}

}  // namespace pgm
