#ifndef PGM_UTIL_FAULT_INJECTION_H_
#define PGM_UTIL_FAULT_INJECTION_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace pgm {

/// A deterministic fault to inject into ReadFileToString, so tests can
/// exercise the IoError/Corruption branches of the file-format parsers
/// (FASTA, CSV) without relying on the filesystem misbehaving.
struct FileFault {
  enum class Kind {
    /// fopen() appears to fail: the reader returns IoError without reading.
    kOpenError,
    /// The read fails mid-stream: the reader sees the first `byte_limit`
    /// bytes, then gets IoError.
    kReadError,
    /// A silent short read: the reader receives only the first `byte_limit`
    /// bytes and no error — the parser must detect the truncation itself.
    kTruncate,
  };

  Kind kind = Kind::kOpenError;
  /// Bytes delivered before the fault fires (kReadError, kTruncate).
  std::size_t byte_limit = 0;
  /// The fault applies only to paths containing this substring; empty
  /// matches every path.
  std::string path_substring;
  /// The fault fires at most this many times, then later reads succeed —
  /// this is how tests model a *transient* fault that a retry recovers
  /// from. 0 means unlimited (a permanent fault).
  std::int64_t max_hits = 0;
};

/// Arms `fault` for the duration of the scope (tests only; scopes must not
/// nest). `hits()` reports how many reads the fault intercepted, so a test
/// can assert the branch actually fired. Reads may run on other threads
/// (the serving loop's workers) while the scope is held — the hit counter
/// and arm/disarm handshake are atomic — but construction/destruction must
/// not race with in-flight reads.
class ScopedFileFault {
 public:
  explicit ScopedFileFault(FileFault fault);
  ~ScopedFileFault();
  ScopedFileFault(const ScopedFileFault&) = delete;
  ScopedFileFault& operator=(const ScopedFileFault&) = delete;

  std::int64_t hits() const;

 private:
  FileFault fault_;
};

namespace internal {

/// True when an armed kOpenError fault matches `path` (counts a hit).
bool ShouldFailOpen(const std::string& path);

/// Applies an armed kReadError/kTruncate fault matching `path` to the bytes
/// just read: truncates *contents to byte_limit and, for kReadError, returns
/// the injected IoError (counts a hit). OK when no fault applies.
Status ApplyReadFault(const std::string& path, std::string* contents);

/// The zero-copy twin of ApplyReadFault for readers that expose a view
/// instead of owning bytes (MmapFile): clamps *size to byte_limit for an
/// armed kReadError/kTruncate fault matching `path`, returning the injected
/// IoError for kReadError (counts a hit). OK when no fault applies. Both
/// overloads share one hit budget, so a transient fault behaves identically
/// whichever ingestion path a reader takes.
Status ApplyReadFaultToSize(const std::string& path, std::size_t* size);

}  // namespace internal
}  // namespace pgm

#endif  // PGM_UTIL_FAULT_INJECTION_H_
