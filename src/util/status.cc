#include "util/status.h"

namespace pgm {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace pgm
