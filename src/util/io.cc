#include "util/io.h"

#include <cstdio>

#include "util/fault_injection.h"

namespace pgm {

StatusOr<std::string> ReadFileToString(const std::string& path) {
  if (internal::ShouldFailOpen(path)) {
    return Status::IoError("cannot open (injected fault): " + path);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open: " + path);
  }
  std::string contents;
  char buffer[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IoError("error while reading: " + path);
  }
  PGM_RETURN_IF_ERROR(internal::ApplyReadFault(path, &contents));
  return contents;
}

StatusOr<std::string> ReadFileToStringWithRetry(const std::string& path,
                                                const RetryPolicy& policy) {
  const int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int attempt = 1;; ++attempt) {
    StatusOr<std::string> contents = ReadFileToString(path);
    if (contents.ok() ||
        contents.status().code() != StatusCode::kIoError ||
        attempt >= attempts) {
      return contents;
    }
    BackoffSleep(BackoffDelayMs(policy, attempt + 1));
  }
}

RetryPolicy DefaultReadRetryPolicy() {
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.base_delay_ms = 1;
  policy.multiplier = 2.0;
  policy.max_delay_ms = 50;
  return policy;
}

Status WriteStringToFile(const std::string& path,
                         const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  const std::size_t written =
      contents.empty() ? 0 : std::fwrite(contents.data(), 1, contents.size(), f);
  const bool write_error = written != contents.size();
  if (std::fclose(f) != 0 || write_error) {
    return Status::IoError("error while writing: " + path);
  }
  return Status::OK();
}

}  // namespace pgm
