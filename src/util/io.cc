#include "util/io.h"

#include <cstdio>
#include <utility>

#include "util/fault_injection.h"

#if defined(__unix__) || defined(__APPLE__)
#define PGM_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace pgm {

StatusOr<MmapFile> MmapFile::Open(const std::string& path) {
  if (internal::ShouldFailOpen(path)) {
    return Status::IoError("cannot open (injected fault): " + path);
  }
  MmapFile file;
  file.path_ = path;
#if PGM_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("cannot open: " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IoError("cannot stat regular file: " + path);
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size > 0) {
    void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base == MAP_FAILED) {
      ::close(fd);
      return Status::IoError("cannot mmap: " + path);
    }
    file.mapped_ = base;
    file.mapped_size_ = size;
    file.data_ = static_cast<const char*>(base);
    file.size_ = size;
  }
  ::close(fd);
#else
  StatusOr<std::string> contents = ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  file.fallback_ = *std::move(contents);
  file.data_ = file.fallback_.data();
  file.size_ = file.fallback_.size();
  return file;  // ReadFileToString already applied any read fault.
#endif
  // Same observable fault semantics as ReadFileToString: kReadError clamps
  // the visible bytes then fails loudly; kTruncate clamps silently.
  std::size_t visible = file.size_;
  const Status fault = internal::ApplyReadFaultToSize(path, &visible);
  file.size_ = visible;
  if (!fault.ok()) return fault;
  return file;
}

MmapFile::~MmapFile() { Release(); }

MmapFile::MmapFile(MmapFile&& other) noexcept { StealFrom(other); }

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Release();
    StealFrom(other);
  }
  return *this;
}

void MmapFile::Release() {
#if PGM_HAVE_MMAP
  if (mapped_ != nullptr) {
    // Unmap cannot fail for a mapping we own; nothing actionable if it did.
    (void)::munmap(mapped_, mapped_size_);
  }
#endif
  mapped_ = nullptr;
  mapped_size_ = 0;
  data_ = "";
  size_ = 0;
  fallback_.clear();
  path_.clear();
}

void MmapFile::StealFrom(MmapFile& other) {
  path_ = std::move(other.path_);
  mapped_ = other.mapped_;
  mapped_size_ = other.mapped_size_;
  size_ = other.size_;
  fallback_ = std::move(other.fallback_);
  // The fallback string's buffer may move with it; re-anchor the view.
  data_ = mapped_ != nullptr ? static_cast<const char*>(mapped_)
          : size_ > 0       ? fallback_.data()
                            : "";
  other.mapped_ = nullptr;
  other.mapped_size_ = 0;
  other.data_ = "";
  other.size_ = 0;
  other.fallback_.clear();
  other.path_.clear();
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  if (internal::ShouldFailOpen(path)) {
    return Status::IoError("cannot open (injected fault): " + path);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open: " + path);
  }
  std::string contents;
  char buffer[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IoError("error while reading: " + path);
  }
  PGM_RETURN_IF_ERROR(internal::ApplyReadFault(path, &contents));
  return contents;
}

StatusOr<std::string> ReadFileToStringWithRetry(const std::string& path,
                                                const RetryPolicy& policy) {
  const int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int attempt = 1;; ++attempt) {
    StatusOr<std::string> contents = ReadFileToString(path);
    if (contents.ok() ||
        contents.status().code() != StatusCode::kIoError ||
        attempt >= attempts) {
      return contents;
    }
    BackoffSleep(BackoffDelayMs(policy, attempt + 1));
  }
}

RetryPolicy DefaultReadRetryPolicy() {
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.base_delay_ms = 1;
  policy.multiplier = 2.0;
  policy.max_delay_ms = 50;
  return policy;
}

Status WriteStringToFile(const std::string& path,
                         const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  const std::size_t written =
      contents.empty() ? 0 : std::fwrite(contents.data(), 1, contents.size(), f);
  const bool write_error = written != contents.size();
  if (std::fclose(f) != 0 || write_error) {
    return Status::IoError("error while writing: " + path);
  }
  return Status::OK();
}

}  // namespace pgm
