#include "util/csv_writer.h"

#include <cstdio>

#include "util/string_util.h"

namespace pgm {

CsvWriter::CsvWriter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

Status CsvWriter::AddRow(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrFormat("row has %zu cells, header has %zu", cells.size(),
                  columns_.size()));
  }
  rows_.push_back(std::move(cells));
  return Status::OK();
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::Add(std::string_view value) {
  cells_.emplace_back(value);
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::Add(double value) {
  cells_.push_back(StrFormat("%.17g", value));
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::Add(std::int64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::Add(std::uint64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

Status CsvWriter::RowBuilder::Done() {
  return writer_->AddRow(std::move(cells_));
}

std::string CsvWriter::EscapeCell(const std::string& cell) {
  bool needs_quotes = cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string escaped = "\"";
  for (char c : cell) {
    if (c == '"') escaped += "\"\"";
    else escaped += c;
  }
  escaped += '"';
  return escaped;
}

std::string CsvWriter::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ',';
    out += EscapeCell(columns_[i]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += EscapeCell(row[i]);
    }
    out += '\n';
  }
  return out;
}

Status CsvWriter::WriteToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  std::string doc = ToString();
  std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  if (written != doc.size()) {
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace pgm
