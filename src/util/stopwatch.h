#ifndef PGM_UTIL_STOPWATCH_H_
#define PGM_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace pgm {

/// Monotonic wall-clock stopwatch used by the mining algorithms and the
/// benchmark harness.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in whole microseconds.
  std::int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pgm

#endif  // PGM_UTIL_STOPWATCH_H_
