#ifndef PGM_UTIL_IO_H_
#define PGM_UTIL_IO_H_

#include <string>

#include "util/backoff.h"
#include "util/status.h"

namespace pgm {

/// Reads an entire file into a string. IoError on open or read failure.
///
/// This is the single choke point for file ingestion (FASTA, CSV, raw text):
/// it honors ScopedFileFault (util/fault_injection.h), so tests can
/// deterministically exercise open failures, mid-stream read errors, and
/// silent short reads in every caller.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// ReadFileToString with retry: IoError attempts are retried up to
/// policy.max_attempts with the policy's deterministic exponential backoff
/// (BackoffSleep honors ScopedBackoffRecorder, so tests never wall-clock
/// sleep). Only IoError is considered transient — any other failure, and
/// the Corruption a parser raises on truncated content, surfaces on the
/// first attempt. With the default one-attempt policy this is exactly
/// ReadFileToString.
StatusOr<std::string> ReadFileToStringWithRetry(const std::string& path,
                                                const RetryPolicy& policy);

/// The retry policy the file-format readers (FASTA, CSV) use: one retry
/// after 1 ms. Transient blips (NFS hiccup, injected kReadError with
/// max_hits=1) recover invisibly; permanent faults cost one extra read
/// attempt and then surface exactly as before.
RetryPolicy DefaultReadRetryPolicy();

/// Writes `contents` to `path`, truncating any existing file. IoError on
/// open or write failure — callers that must not lose their primary result
/// (e.g. the CLI's --metrics-out) surface the Status loudly after the
/// result is already delivered.
Status WriteStringToFile(const std::string& path, const std::string& contents);

}  // namespace pgm

#endif  // PGM_UTIL_IO_H_
