#ifndef PGM_UTIL_IO_H_
#define PGM_UTIL_IO_H_

#include <string>

#include "util/status.h"

namespace pgm {

/// Reads an entire file into a string. IoError on open or read failure.
///
/// This is the single choke point for file ingestion (FASTA, CSV, raw text):
/// it honors ScopedFileFault (util/fault_injection.h), so tests can
/// deterministically exercise open failures, mid-stream read errors, and
/// silent short reads in every caller.
StatusOr<std::string> ReadFileToString(const std::string& path);

}  // namespace pgm

#endif  // PGM_UTIL_IO_H_
