#ifndef PGM_UTIL_IO_H_
#define PGM_UTIL_IO_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "util/backoff.h"
#include "util/status.h"

namespace pgm {

/// A read-only memory-mapped file. The corpus executor's ingestion path:
/// multi-record genome-scale FASTA files are scanned through `view()`
/// without ever materializing the file as one std::string (ReadFileToString
/// would). Sequences built from the view copy their symbols (Sequence is
/// self-contained), so the mapping only needs to outlive the *parse*, not
/// the mined fragments — see DESIGN.md §10.
///
/// This is the same ingestion choke point contract as ReadFileToString: it
/// honors ScopedFileFault (util/fault_injection.h) with identical
/// observable semantics — kOpenError fails Open with IoError, kReadError
/// clamps the visible bytes to byte_limit and fails Open with IoError,
/// kTruncate silently clamps the view so parsers must detect the
/// truncation themselves.
///
/// Move-only; the mapping is released on destruction. On platforms without
/// mmap the class transparently falls back to an owned in-memory copy, so
/// callers never branch on platform.
class MmapFile {
 public:
  /// Maps `path` read-only. IoError on open/stat/map failure. A zero-length
  /// file yields an empty view without establishing a mapping.
  static StatusOr<MmapFile> Open(const std::string& path);

  MmapFile() = default;
  ~MmapFile();
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// The mapped bytes. Valid until destruction/move-from.
  std::string_view view() const { return {data_, size_}; }
  std::size_t size() const { return size_; }
  const std::string& path() const { return path_; }
  /// True when the bytes come from a real mmap rather than the fallback
  /// owned copy (exposed for tests and the corpus.* metrics).
  bool is_mapped() const { return mapped_ != nullptr; }

 private:
  std::string path_;
  const char* data_ = "";
  std::size_t size_ = 0;
  /// Base address of the live mapping (may differ from data_ only in that
  /// data_ is the same pointer; kept separate so the fallback path can point
  /// data_ into fallback_ with mapped_ == nullptr).
  void* mapped_ = nullptr;
  std::size_t mapped_size_ = 0;
  std::string fallback_;

  void Release();
  void StealFrom(MmapFile& other);
};

/// Reads an entire file into a string. IoError on open or read failure.
///
/// This is the single choke point for file ingestion (FASTA, CSV, raw text):
/// it honors ScopedFileFault (util/fault_injection.h), so tests can
/// deterministically exercise open failures, mid-stream read errors, and
/// silent short reads in every caller.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// ReadFileToString with retry: IoError attempts are retried up to
/// policy.max_attempts with the policy's deterministic exponential backoff
/// (BackoffSleep honors ScopedBackoffRecorder, so tests never wall-clock
/// sleep). Only IoError is considered transient — any other failure, and
/// the Corruption a parser raises on truncated content, surfaces on the
/// first attempt. With the default one-attempt policy this is exactly
/// ReadFileToString.
StatusOr<std::string> ReadFileToStringWithRetry(const std::string& path,
                                                const RetryPolicy& policy);

/// The retry policy the file-format readers (FASTA, CSV) use: one retry
/// after 1 ms. Transient blips (NFS hiccup, injected kReadError with
/// max_hits=1) recover invisibly; permanent faults cost one extra read
/// attempt and then surface exactly as before.
RetryPolicy DefaultReadRetryPolicy();

/// Writes `contents` to `path`, truncating any existing file. IoError on
/// open or write failure — callers that must not lose their primary result
/// (e.g. the CLI's --metrics-out) surface the Status loudly after the
/// result is already delivered.
Status WriteStringToFile(const std::string& path, const std::string& contents);

}  // namespace pgm

#endif  // PGM_UTIL_IO_H_
