#ifndef PGM_UTIL_IO_H_
#define PGM_UTIL_IO_H_

#include <string>

#include "util/status.h"

namespace pgm {

/// Reads an entire file into a string. IoError on open or read failure.
///
/// This is the single choke point for file ingestion (FASTA, CSV, raw text):
/// it honors ScopedFileFault (util/fault_injection.h), so tests can
/// deterministically exercise open failures, mid-stream read errors, and
/// silent short reads in every caller.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Writes `contents` to `path`, truncating any existing file. IoError on
/// open or write failure — callers that must not lose their primary result
/// (e.g. the CLI's --metrics-out) surface the Status loudly after the
/// result is already delivered.
Status WriteStringToFile(const std::string& path, const std::string& contents);

}  // namespace pgm

#endif  // PGM_UTIL_IO_H_
