#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "util/saturating.h"

namespace pgm {

std::vector<std::string> Split(std::string_view input, char delimiter) {
  std::vector<std::string> result;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      result.emplace_back(input.substr(start));
      break;
    }
    result.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return result;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string result;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result.append(separator);
    result.append(parts[i]);
  }
  return result;
}

std::string_view Trim(std::string_view input) {
  std::size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  std::size_t end = input.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string ToUpper(std::string_view input) {
  std::string result(input);
  for (char& c : result) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return result;
}

std::string ToLower(std::string_view input) {
  std::string result(input);
  for (char& c : result) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return result;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string result(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(result.data(), result.size() + 1, format, args_copy);
  va_end(args_copy);
  return result;
}

StatusOr<std::int64_t> ParseInt64(std::string_view input) {
  std::string trimmed(Trim(input));
  if (trimmed.empty()) {
    return Status::InvalidArgument("cannot parse empty string as integer");
  }
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(trimmed.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: '" + trimmed + "'");
  }
  if (end != trimmed.c_str() + trimmed.size()) {
    return Status::InvalidArgument("trailing garbage in integer: '" + trimmed +
                                   "'");
  }
  return static_cast<std::int64_t>(value);
}

StatusOr<double> ParseDouble(std::string_view input) {
  std::string trimmed(Trim(input));
  if (trimmed.empty()) {
    return Status::InvalidArgument("cannot parse empty string as double");
  }
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(trimmed.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("double out of range: '" + trimmed + "'");
  }
  if (end != trimmed.c_str() + trimmed.size()) {
    return Status::InvalidArgument("trailing garbage in double: '" + trimmed +
                                   "'");
  }
  return value;
}

std::string WithThousandsSeparators(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string result;
  result.reserve(digits.size() + digits.size() / 3);
  std::size_t leading = digits.size() % 3;
  if (leading == 0) leading = 3;
  result.append(digits, 0, leading);
  for (std::size_t i = leading; i < digits.size(); i += 3) {
    result.push_back(',');
    result.append(digits, i, 3);
  }
  return result;
}

std::string FormatCount(std::uint64_t value) {
  if (IsSaturated(value)) return "2^64-sat";
  if (value < 10'000'000'000ULL) return WithThousandsSeparators(value);
  return StrFormat("%.3e", static_cast<double>(value));
}

}  // namespace pgm
