#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace pgm {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads <= 1) return;
  workers_.reserve(num_threads - 1);
  for (std::size_t i = 1; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Execute(const std::function<void(std::size_t)>& fn) {
  if (workers_.empty()) {
    fn(0);
    return;
  }
  {
    MutexLock lock(mu_);
    task_ = &fn;
    pending_ = workers_.size();
    ++generation_;
  }
  work_cv_.notify_all();
  fn(0);
  MutexLock lock(mu_);
  // Manual wait loop (not the predicate overload): the guarded read of
  // pending_ must sit in this function, where the analysis sees the lock
  // held — a predicate lambda would be analyzed as an unlocked context.
  while (pending_ != 0) done_cv_.wait(mu_);
  task_ = nullptr;
}

void ThreadPool::WorkerLoop(std::size_t worker_index) {
  std::uint64_t seen_generation = 0;
  while (true) {
    const std::function<void(std::size_t)>* task = nullptr;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && generation_ == seen_generation) work_cv_.wait(mu_);
      if (shutdown_) return;
      seen_generation = generation_;
      task = task_;
    }
    (*task)(worker_index);
    {
      MutexLock lock(mu_);
      --pending_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::ParallelFor(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<std::size_t>(grain, 1);
  // A loop that cannot produce at least two ranges has nothing to hand the
  // workers; run it inline and skip the wakeup entirely.
  if (workers_.empty() || n <= grain) {
    fn(0, n);
    return;
  }
  std::atomic<std::size_t> cursor{0};
  Execute([&](std::size_t) {
    while (true) {
      const std::size_t begin =
          cursor.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) return;
      fn(begin, std::min(begin + grain, n));
    }
  });
}

std::size_t ThreadPool::ResolveThreadCount(std::int64_t requested) {
  if (requested > 0) return static_cast<std::size_t>(requested);
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<std::size_t>(hardware);
}

}  // namespace pgm
