#ifndef PGM_UTIL_RANDOM_H_
#define PGM_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace pgm {

/// Deterministic, seedable PRNG (xoshiro256++ seeded through SplitMix64).
/// All data generators take an explicit Rng so every experiment in the
/// benchmark harness is exactly reproducible from its seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// unbiased multiply-shift rejection method.
  std::uint64_t UniformInt(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Samples an index according to non-negative `weights` (need not be
  /// normalized). Returns weights.size() - 1 if all weights are zero.
  std::size_t Categorical(const std::vector<double>& weights);

 private:
  std::uint64_t state_[4];
};

/// SplitMix64 step; exposed for seeding utilities and tests.
std::uint64_t SplitMix64(std::uint64_t& state);

}  // namespace pgm

#endif  // PGM_UTIL_RANDOM_H_
