#include "util/csv_reader.h"

#include "util/io.h"
#include "util/string_util.h"

namespace pgm {

StatusOr<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;
  std::size_t line = 1;

  auto end_field = [&]() {
    if (!field_was_quoted && !field.empty() && field.back() == '\r') {
      field.pop_back();
    }
    row.push_back(std::move(field));
    field.clear();
    field_was_quoted = false;
  };
  auto end_row = [&]() {
    // A line with no content at all — blank, or a bare "\r" from a CRLF
    // file — is not a record (tolerates trailing blank lines).
    if (row.empty() && !field_was_quoted &&
        (field.empty() || field == "\r")) {
      field.clear();
      return;
    }
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;  // escaped quote
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++line;
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          return Status::Corruption(
              StrFormat("line %zu: quote inside unquoted field", line));
        }
        in_quotes = true;
        field_was_quoted = true;
        break;
      case ',':
        end_field();
        break;
      case '\n':
        end_row();
        ++line;
        break;
      default:
        if (field_was_quoted) {
          if (c == '\r') break;  // CR of a CRLF line ending after the quote
          return Status::Corruption(
              StrFormat("line %zu: characters after closing quote", line));
        }
        field.push_back(c);
    }
  }
  if (in_quotes) {
    return Status::Corruption("unterminated quoted field at end of input");
  }
  // Final row without trailing newline.
  if (!field.empty() || field_was_quoted || !row.empty()) {
    end_row();
  }
  return rows;
}

StatusOr<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path) {
  // Same transient-fault discipline as ReadFastaFile: retry IoError once,
  // let truncation surface as Corruption from the parser.
  PGM_ASSIGN_OR_RETURN(
      std::string contents,
      ReadFileToStringWithRetry(path, DefaultReadRetryPolicy()));
  return ParseCsv(contents);
}

}  // namespace pgm
