#ifndef PGM_UTIL_CSV_READER_H_
#define PGM_UTIL_CSV_READER_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace pgm {

/// Parses RFC-4180-style CSV text (the dialect CsvWriter emits): comma
/// separators, double-quote quoting with "" escapes, rows split on '\n'
/// (a trailing '\r' per field is stripped for CRLF files). Returns the
/// rows including the header. Fails with Corruption on unbalanced quotes
/// or characters trailing a closing quote.
StatusOr<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text);

/// Reads and parses a CSV file from disk.
StatusOr<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

}  // namespace pgm

#endif  // PGM_UTIL_CSV_READER_H_
