#ifndef PGM_UTIL_CSV_READER_H_
#define PGM_UTIL_CSV_READER_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace pgm {

/// Parses RFC-4180-style CSV text (the dialect CsvWriter emits): comma
/// separators, double-quote quoting with "" escapes, rows split on '\n'.
/// CRLF line endings are accepted after both quoted and unquoted fields,
/// and lines with no content (blank or bare "\r") are skipped, so files
/// with trailing blank lines parse cleanly. Returns the rows including the
/// header. Fails with Corruption on unbalanced quotes or characters
/// trailing a closing quote.
StatusOr<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text);

/// Reads and parses a CSV file from disk.
StatusOr<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

}  // namespace pgm

#endif  // PGM_UTIL_CSV_READER_H_
