#ifndef PGM_UTIL_MUTEX_H_
#define PGM_UTIL_MUTEX_H_

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "util/thread_annotations.h"

// Runtime lock-order assertions: every ranked pgm::Mutex acquisition is
// checked against the ranks this thread already holds, and a non-increasing
// acquisition aborts with both ranks named. On by default (the check is a
// thread-local array walk, far below the cost of the lock itself);
// -DPGM_LOCK_ORDER_CHECKS=0 (CMake option PGM_LOCK_ORDER_CHECKS=OFF)
// compiles it out entirely. The static mirror of the same hierarchy is
// tools/lint/manifests/locks.txt, enforced by pgm_lint's lock-order rule.
#ifndef PGM_LOCK_ORDER_CHECKS
#define PGM_LOCK_ORDER_CHECKS 1
#endif

namespace pgm {

/// The declared lock hierarchy, outermost (lowest) to innermost (highest).
/// A thread may only acquire a ranked mutex whose rank is strictly greater
/// than every ranked mutex it already holds. Values and names mirror
/// tools/lint/manifests/locks.txt — change them together.
enum LockRank : int {
  kLockRankUnranked = 0,  ///< exempt from ordering (default-constructed)
  kLockRankQueue = 10,    ///< serve/queue.h admission queue
  kLockRankService = 20,  ///< serve/service.h job table
  kLockRankCache = 30,    ///< serve/cache.h result cache
  kLockRankPool = 40,     ///< util/thread_pool.h task queue
  kLockRankRing = 50,     ///< core/parallel.cc level-executor block ring
  kLockRankMetrics = 60,  ///< util/metrics.h registry
  kLockRankTrace = 70,    ///< core/trace.h sink
  kLockRankBackoff = 80,  ///< util/backoff.cc sleep recorder
};

#if PGM_LOCK_ORDER_CHECKS
namespace lock_order_internal {

/// Per-thread stack of held ranks. Fixed capacity: the hierarchy is eight
/// deep and MutexLock scopes nest shallowly; overflowing it is itself a
/// locking bug, so it aborts rather than silently dropping entries.
struct HeldStack {
  int ranks[16];
  int depth = 0;
};

inline HeldStack& Held() {
  static thread_local HeldStack held;
  return held;
}

/// Called before blocking on the lock, so an order violation that would
/// deadlock aborts with a diagnosis instead of hanging.
inline void NoteAcquired(int rank) {
  if (rank == kLockRankUnranked) return;
  HeldStack& held = Held();
  if (held.depth > 0 && held.ranks[held.depth - 1] >= rank) {
    std::fprintf(stderr,
                 "pgm: lock-order violation: acquiring rank %d while "
                 "holding rank %d; ranked mutexes must be acquired in "
                 "strictly increasing rank order (see "
                 "tools/lint/manifests/locks.txt)\n",
                 rank, held.ranks[held.depth - 1]);
    std::abort();
  }
  if (held.depth == 16) {
    std::fprintf(stderr, "pgm: lock-order stack overflow (16 ranked "
                         "mutexes held by one thread)\n");
    std::abort();
  }
  held.ranks[held.depth++] = rank;
}

/// Removes the most recent occurrence of `rank`. Usually the top (MutexLock
/// is scoped), but a CondVar wait releases its mutex mid-scope, so the
/// search tolerates out-of-LIFO release.
inline void NoteReleased(int rank) {
  if (rank == kLockRankUnranked) return;
  HeldStack& held = Held();
  for (int i = held.depth - 1; i >= 0; --i) {
    if (held.ranks[i] != rank) continue;
    for (int j = i; j + 1 < held.depth; ++j) held.ranks[j] = held.ranks[j + 1];
    --held.depth;
    return;
  }
}

}  // namespace lock_order_internal
#endif  // PGM_LOCK_ORDER_CHECKS

/// An annotated std::mutex. libstdc++ ships std::mutex without thread-safety
/// annotations, so locking through the raw type is invisible to Clang's
/// analysis; this wrapper is the capability the PGM_GUARDED_BY declarations
/// throughout the codebase refer to. It satisfies BasicLockable (lowercase
/// lock/unlock), so std::condition_variable_any waits on it directly.
///
/// Construct with a LockRank to opt the mutex into both the runtime
/// lock-order assertions above and the static lock-order lint; every
/// long-lived mutex in the tree is ranked, and new ones should be too
/// (add a row to tools/lint/manifests/locks.txt alongside).
///
/// Lock through MutexLock; the bare lock()/unlock() methods exist for the
/// condition-variable protocol and the RAII wrapper only (the `naked-lock`
/// lint rule rejects direct calls elsewhere).
class PGM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(LockRank rank) : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PGM_ACQUIRE() {  // pgm-lint: allow(naked-lock)
#if PGM_LOCK_ORDER_CHECKS
    lock_order_internal::NoteAcquired(rank_);
#endif
    mu_.lock();  // pgm-lint: allow(naked-lock)
  }
  void unlock() PGM_RELEASE() {  // pgm-lint: allow(naked-lock)
#if PGM_LOCK_ORDER_CHECKS
    lock_order_internal::NoteReleased(rank_);
#endif
    mu_.unlock();  // pgm-lint: allow(naked-lock)
  }

  int rank() const { return rank_; }

 private:
  std::mutex mu_;
  int rank_ = kLockRankUnranked;
};

/// RAII lock for pgm::Mutex — the only sanctioned way to hold one outside a
/// condition-variable wait loop.
class PGM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PGM_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }  // pgm-lint: allow(naked-lock)
  ~MutexLock() PGM_RELEASE() { mu_.unlock(); }  // pgm-lint: allow(naked-lock)

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with pgm::Mutex. Waits release and reacquire
/// the capability, which the analysis cannot see; callers therefore keep
/// guarded reads in the function that holds the MutexLock (a manual
/// while-wait loop), never in a predicate lambda. A wait on a ranked mutex
/// pops and re-pushes its rank through lock()/unlock(), so the re-acquire
/// is order-checked like any other acquisition.
using CondVar = std::condition_variable_any;

}  // namespace pgm

#endif  // PGM_UTIL_MUTEX_H_
