#ifndef PGM_UTIL_MUTEX_H_
#define PGM_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace pgm {

/// An annotated std::mutex. libstdc++ ships std::mutex without thread-safety
/// annotations, so locking through the raw type is invisible to Clang's
/// analysis; this wrapper is the capability the PGM_GUARDED_BY declarations
/// throughout the codebase refer to. It satisfies BasicLockable (lowercase
/// lock/unlock), so std::condition_variable_any waits on it directly.
///
/// Lock through MutexLock; the bare lock()/unlock() methods exist for the
/// condition-variable protocol and the RAII wrapper only (the `naked-lock`
/// lint rule rejects direct calls elsewhere).
class PGM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PGM_ACQUIRE() { mu_.lock(); }    // pgm-lint: allow(naked-lock)
  void unlock() PGM_RELEASE() { mu_.unlock(); }  // pgm-lint: allow(naked-lock)

 private:
  std::mutex mu_;
};

/// RAII lock for pgm::Mutex — the only sanctioned way to hold one outside a
/// condition-variable wait loop.
class PGM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PGM_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }  // pgm-lint: allow(naked-lock)
  ~MutexLock() PGM_RELEASE() { mu_.unlock(); }  // pgm-lint: allow(naked-lock)

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with pgm::Mutex. Waits release and reacquire
/// the capability, which the analysis cannot see; callers therefore keep
/// guarded reads in the function that holds the MutexLock (a manual
/// while-wait loop), never in a predicate lambda.
using CondVar = std::condition_variable_any;

}  // namespace pgm

#endif  // PGM_UTIL_MUTEX_H_
