#ifndef PGM_UTIL_STATUS_H_
#define PGM_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace pgm {

/// Canonical error codes, modeled after the usual database-engine set
/// (RocksDB's Status / Arrow's Status / absl::StatusCode).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kIoError = 5,
  kCorruption = 6,
  kUnimplemented = 7,
  kResourceExhausted = 8,
  kInternal = 9,
  /// The serving layer's load-shedding code: the operation was refused
  /// because the service is saturated or draining, and retrying later is
  /// expected to succeed (unlike kResourceExhausted, which reports a
  /// per-request budget that retrying alone will not fix).
  kUnavailable = 10,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result used throughout the library instead
/// of exceptions. Library code never throws; fallible operations return
/// `Status` (or `StatusOr<T>` when they produce a value).
///
/// The class is [[nodiscard]]: a call site that drops a returned Status on
/// the floor is a compile warning (an error under PGM_ANALYZE=ON). The rare
/// construct whose failure is genuinely unobservable must say so with an
/// explicit `(void)` cast and a comment defending it.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type `T` or an error `Status`. Accessing the value of a
/// non-OK StatusOr is a programming error (asserted in debug builds).
/// [[nodiscard]] for the same reason as Status: dropping one silently
/// discards both the value and the error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit construction from a value or from an error Status keeps call
  /// sites terse (`return 42;` / `return Status::InvalidArgument(...)`).
  StatusOr(T value) : value_(std::move(value)) {}             // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {      // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when holding an error. The rvalue
  /// overload moves the value out instead of copying it, so
  /// `std::move(result).value_or(...)` stays cheap for heavy payloads
  /// (e.g. MiningResult).
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }
  T value_or(T fallback) && {
    return ok() ? *std::move(value_) : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status to the caller.
#define PGM_RETURN_IF_ERROR(expr)           \
  do {                                      \
    ::pgm::Status pgm_status_ = (expr);     \
    if (!pgm_status_.ok()) return pgm_status_; \
  } while (false)

#define PGM_STATUS_CONCAT_INNER_(x, y) x##y
#define PGM_STATUS_CONCAT_(x, y) PGM_STATUS_CONCAT_INNER_(x, y)

/// Evaluates `rexpr` (a StatusOr<T>), propagating a non-OK status; otherwise
/// move-assigns the value into `lhs` (which may include a declaration).
#define PGM_ASSIGN_OR_RETURN(lhs, rexpr)                               \
  auto PGM_STATUS_CONCAT_(pgm_statusor_, __LINE__) = (rexpr);          \
  if (!PGM_STATUS_CONCAT_(pgm_statusor_, __LINE__).ok())               \
    return PGM_STATUS_CONCAT_(pgm_statusor_, __LINE__).status();       \
  lhs = std::move(PGM_STATUS_CONCAT_(pgm_statusor_, __LINE__)).value()

}  // namespace pgm

#endif  // PGM_UTIL_STATUS_H_
