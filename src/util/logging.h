#ifndef PGM_UTIL_LOGGING_H_
#define PGM_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace pgm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink; emits one line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace pgm

#define PGM_LOG(level)                                          \
  ::pgm::internal_logging::LogMessage(::pgm::LogLevel::level,   \
                                      __FILE__, __LINE__)

#endif  // PGM_UTIL_LOGGING_H_
