#ifndef PGM_UTIL_THREAD_POOL_H_
#define PGM_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace pgm {

/// A fixed-size pool of worker threads for fork-join data parallelism.
///
/// The pool targets the miners' level loops: the caller partitions a level
/// into chunks, hands Execute() a function that drains chunks off a shared
/// atomic counter, and Execute() runs it on every worker (the calling
/// thread included) and blocks until all invocations return. There is no
/// task queue and no work stealing — scheduling lives in the caller's chunk
/// counter, which is what keeps output slots deterministic.
///
/// A pool asked for <= 1 threads spawns nothing: Execute() runs the
/// function inline on the caller, so serial runs never touch threading
/// machinery.
class ThreadPool {
 public:
  /// `num_threads` counts the calling thread, so num_threads - 1 workers
  /// are spawned (none for num_threads <= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count including the calling thread (always >= 1).
  std::size_t num_threads() const { return workers_.size() + 1; }

  /// Invokes fn(worker_index) for every worker_index in [0, num_threads())
  /// concurrently — index 0 on the calling thread — and returns once all
  /// invocations have finished, so writes made by the workers are visible
  /// to the caller. Not reentrant: `fn` must not call Execute itself.
  void Execute(const std::function<void(std::size_t)>& fn);

  /// Fork-join loop over [0, n): workers drain half-open ranges of at most
  /// `grain` indices off a shared cursor and call fn(begin, end) for each.
  /// Ranges are claimed in order but may run on any worker, so fn must only
  /// write state disjoint per index (the deterministic-output discipline of
  /// Execute applies unchanged). Runs inline on the caller when the pool is
  /// serial or the loop is too small to split. Not reentrant (uses Execute).
  void ParallelFor(std::size_t n, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>& fn);

  /// Maps a user-facing thread-count request to an actual worker count:
  /// 0 means one per hardware thread, anything else is clamped to >= 1.
  static std::size_t ResolveThreadCount(std::int64_t requested);

 private:
  void WorkerLoop(std::size_t worker_index);

  std::vector<std::thread> workers_;

  Mutex mu_{kLockRankPool};
  CondVar work_cv_;
  CondVar done_cv_;
  // task_ is non-null exactly while a generation runs.
  const std::function<void(std::size_t)>* task_ PGM_GUARDED_BY(mu_) = nullptr;
  std::uint64_t generation_ PGM_GUARDED_BY(mu_) = 0;
  std::size_t pending_ PGM_GUARDED_BY(mu_) = 0;
  bool shutdown_ PGM_GUARDED_BY(mu_) = false;
};

}  // namespace pgm

#endif  // PGM_UTIL_THREAD_POOL_H_
