#ifndef PGM_UTIL_THREAD_ANNOTATIONS_H_
#define PGM_UTIL_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis annotations, compiled out on toolchains
/// without the attribute (GCC, MSVC). Annotating a member
///
///   std::vector<TraceEvent> events_ PGM_GUARDED_BY(mutex_);
///
/// makes any access outside a scope that holds `mutex_` a compile error
/// under `-Wthread-safety` (the PGM_ANALYZE=ON build config), turning the
/// locking discipline that TSan checks dynamically into a build-time
/// guarantee. See https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
/// for the capability model.
///
/// The macro set mirrors the annotations the codebase actually uses; add
/// new wrappers here rather than spelling the attribute inline, so the
/// non-Clang no-op path stays complete.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define PGM_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef PGM_THREAD_ANNOTATION_
#define PGM_THREAD_ANNOTATION_(x)  // no-op on non-Clang toolchains
#endif

/// Declares a type as a capability (lockable). libstdc++'s std::mutex
/// carries no TSA annotations, so the codebase locks through the annotated
/// pgm::Mutex wrapper (util/mutex.h) instead.
#define PGM_CAPABILITY(x) PGM_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type whose constructor acquires and destructor releases
/// a capability (e.g. pgm::MutexLock).
#define PGM_SCOPED_CAPABILITY PGM_THREAD_ANNOTATION_(scoped_lockable)

/// Declares that a data member may only be read or written while holding
/// the given capability.
#define PGM_GUARDED_BY(x) PGM_THREAD_ANNOTATION_(guarded_by(x))

/// Declares that the pointee (not the pointer) is protected by the given
/// capability.
#define PGM_PT_GUARDED_BY(x) PGM_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Declares that a function must be called with the capability held; the
/// caller keeps ownership across the call.
#define PGM_REQUIRES(...) \
  PGM_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Declares that a function acquires the capability and does not release
/// it before returning.
#define PGM_ACQUIRE(...) \
  PGM_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Declares that a function releases a capability the caller held.
#define PGM_RELEASE(...) \
  PGM_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Declares that a function must NOT be called with the capability held
/// (deadlock prevention for functions that acquire it themselves).
#define PGM_EXCLUDES(...) PGM_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Escape hatch: disables the analysis for one function whose locking is
/// correct for reasons the analysis cannot see. Every use must carry a
/// comment explaining why.
#define PGM_NO_THREAD_SAFETY_ANALYSIS \
  PGM_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // PGM_UTIL_THREAD_ANNOTATIONS_H_
