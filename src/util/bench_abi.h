#ifndef PGM_UTIL_BENCH_ABI_H_
#define PGM_UTIL_BENCH_ABI_H_

namespace pgm {

/// The benchmark measurement ABI stamp. Bump it whenever the *meaning* of a
/// tracked bench_regression metric changes — arena row layout, join-plan
/// shape, workload sizes — so stale baselines announce themselves:
/// bench_regression writes the stamp as `info.abi_stamp`, and bench_check
/// prints a deprecation warning (not a failure) when the baseline's stamp
/// is missing or older than this constant.
///
/// Stamp history:
///   1  PR 4 arena-join harness (per-level arenas, prefix-group joins)
///   2  PR 6 serving-layer rows (serve_hit_speedup + info.serve_*_ms) and
///      the BENCH_pr6.json baseline; absolute wall-clock rows demoted to
///      info.* so the gate tracks only in-process ratios, which are robust
///      to machine-wide noise
///   3  PR 7 pipelined level executor: end-to-end thread-scaling ratios
///      (e2e_mpp_speedup_2t / _8t, interleaved t1/t2/t8 reps) join the
///      gated set and the baseline moves to BENCH_pr7.json; the e2e
///      wall-clock rows measure the block-ring pipeline rather than the
///      old per-block fork-join barrier
///   4  PR 8 bit-parallel join kernels: kernel_bits_speedup /
///      kernel_avx2_speedup (scalar vs bitset vs AVX2 tiers on the
///      wide-gap join, interleaved reps) join the gated set and the
///      baseline moves to BENCH_pr8.json
///   5  PR 9 corpus executor: corpus_8t_speedup (MineCorpus over a
///      multi-fragment plan at corpus_threads 1 vs 8, interleaved reps)
///      joins the gated set and the baseline moves to BENCH_pr9.json;
///      absolute corpus wall-clock rows ride along as info.corpus_*_ms
inline constexpr double kBenchAbiStamp = 5;

}  // namespace pgm

#endif  // PGM_UTIL_BENCH_ABI_H_
