#include "util/table_printer.h"

#include <cstdio>

#include "util/string_util.h"

namespace pgm {

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

TablePrinter::RowBuilder& TablePrinter::RowBuilder::Add(
    std::string_view value) {
  cells_.emplace_back(value);
  return *this;
}

TablePrinter::RowBuilder& TablePrinter::RowBuilder::Add(double value) {
  cells_.push_back(StrFormat("%.4g", value));
  return *this;
}

TablePrinter::RowBuilder& TablePrinter::RowBuilder::Add(std::int64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

TablePrinter::RowBuilder& TablePrinter::RowBuilder::Add(std::uint64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

void TablePrinter::RowBuilder::Done() { printer_->AddRow(std::move(cells_)); }

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    widths[i] = columns_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i].size() > widths[i]) widths[i] = row[i].size();
    }
  }

  auto border = [&]() {
    std::string line = "+";
    for (std::size_t w : widths) {
      line.append(w + 2, '-');
      line += '+';
    }
    line += '\n';
    return line;
  };
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      line += ' ';
      line += cell;
      line.append(widths[i] - cell.size() + 1, ' ');
      line += '|';
    }
    line += '\n';
    return line;
  };

  std::string out = border();
  out += render_row(columns_);
  out += border();
  for (const auto& row : rows_) out += render_row(row);
  out += border();
  return out;
}

void TablePrinter::Print() const {
  std::string rendered = ToString();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
}

}  // namespace pgm
