#include "util/fault_injection.h"

#include <cassert>

namespace pgm {

namespace {

// Tests arm at most one fault at a time (ScopedFileFault asserts this), so a
// plain global suffices; readers run on the armed thread.
const FileFault* g_active_fault = nullptr;
std::int64_t g_hits = 0;

bool Matches(const FileFault& fault, const std::string& path) {
  return fault.path_substring.empty() ||
         path.find(fault.path_substring) != std::string::npos;
}

}  // namespace

ScopedFileFault::ScopedFileFault(FileFault fault) : fault_(std::move(fault)) {
  assert(g_active_fault == nullptr && "ScopedFileFault scopes must not nest");
  g_active_fault = &fault_;
  g_hits = 0;
}

ScopedFileFault::~ScopedFileFault() { g_active_fault = nullptr; }

std::int64_t ScopedFileFault::hits() const { return g_hits; }

namespace internal {

bool ShouldFailOpen(const std::string& path) {
  if (g_active_fault == nullptr ||
      g_active_fault->kind != FileFault::Kind::kOpenError ||
      !Matches(*g_active_fault, path)) {
    return false;
  }
  ++g_hits;
  return true;
}

Status ApplyReadFault(const std::string& path, std::string* contents) {
  if (g_active_fault == nullptr || !Matches(*g_active_fault, path)) {
    return Status::OK();
  }
  switch (g_active_fault->kind) {
    case FileFault::Kind::kOpenError:
      return Status::OK();  // handled by ShouldFailOpen
    case FileFault::Kind::kReadError:
      ++g_hits;
      if (contents->size() > g_active_fault->byte_limit) {
        contents->resize(g_active_fault->byte_limit);
      }
      return Status::IoError("injected read failure: " + path);
    case FileFault::Kind::kTruncate:
      ++g_hits;
      if (contents->size() > g_active_fault->byte_limit) {
        contents->resize(g_active_fault->byte_limit);
      }
      return Status::OK();
  }
  return Status::OK();
}

}  // namespace internal
}  // namespace pgm
