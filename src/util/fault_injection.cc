#include "util/fault_injection.h"

#include <atomic>
#include <cassert>

namespace pgm {

namespace {

// Tests arm at most one fault at a time (ScopedFileFault asserts this). The
// pointer and hit counter are atomics because the serving loop's workers
// read files concurrently while a fault-campaign test holds the scope; the
// scope itself must still bracket all reads (armed before workers start or
// before jobs are submitted, disarmed after they join).
std::atomic<const FileFault*> g_active_fault{nullptr};
std::atomic<std::int64_t> g_hits{0};

bool Matches(const FileFault& fault, const std::string& path) {
  return fault.path_substring.empty() ||
         path.find(fault.path_substring) != std::string::npos;
}

// Counts a hit against the fault's max_hits budget. Returns false when the
// budget is already spent — the fault is exhausted and the read proceeds
// normally (a transient fault that has cleared).
bool TryConsumeHit(const FileFault& fault) {
  std::int64_t seen = g_hits.load(std::memory_order_relaxed);
  while (true) {
    if (fault.max_hits > 0 && seen >= fault.max_hits) return false;
    if (g_hits.compare_exchange_weak(seen, seen + 1,
                                     std::memory_order_relaxed)) {
      return true;
    }
  }
}

}  // namespace

ScopedFileFault::ScopedFileFault(FileFault fault) : fault_(std::move(fault)) {
  assert(g_active_fault.load(std::memory_order_relaxed) == nullptr &&
         "ScopedFileFault scopes must not nest");
  g_hits.store(0, std::memory_order_relaxed);
  g_active_fault.store(&fault_, std::memory_order_release);
}

ScopedFileFault::~ScopedFileFault() {
  g_active_fault.store(nullptr, std::memory_order_release);
}

std::int64_t ScopedFileFault::hits() const {
  return g_hits.load(std::memory_order_relaxed);
}

namespace internal {

bool ShouldFailOpen(const std::string& path) {
  const FileFault* fault = g_active_fault.load(std::memory_order_acquire);
  if (fault == nullptr || fault->kind != FileFault::Kind::kOpenError ||
      !Matches(*fault, path)) {
    return false;
  }
  return TryConsumeHit(*fault);
}

Status ApplyReadFault(const std::string& path, std::string* contents) {
  std::size_t size = contents->size();
  const Status status = ApplyReadFaultToSize(path, &size);
  if (size < contents->size()) contents->resize(size);
  return status;
}

Status ApplyReadFaultToSize(const std::string& path, std::size_t* size) {
  const FileFault* fault = g_active_fault.load(std::memory_order_acquire);
  if (fault == nullptr || !Matches(*fault, path)) {
    return Status::OK();
  }
  switch (fault->kind) {
    case FileFault::Kind::kOpenError:
      return Status::OK();  // handled by ShouldFailOpen
    case FileFault::Kind::kReadError:
      if (!TryConsumeHit(*fault)) return Status::OK();
      if (*size > fault->byte_limit) *size = fault->byte_limit;
      return Status::IoError("injected read failure: " + path);
    case FileFault::Kind::kTruncate:
      if (!TryConsumeHit(*fault)) return Status::OK();
      if (*size > fault->byte_limit) *size = fault->byte_limit;
      return Status::OK();
  }
  return Status::OK();
}

}  // namespace internal
}  // namespace pgm
