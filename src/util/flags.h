#ifndef PGM_UTIL_FLAGS_H_
#define PGM_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace pgm {

/// Minimal command-line flag parser for the example and benchmark binaries.
/// Supports `--name=value`, `--name value`, and bare `--bool_flag`.
/// Unknown flags are an error; positional arguments are collected.
class FlagSet {
 public:
  explicit FlagSet(std::string program_description);

  /// Registration. The pointed-to variables hold the defaults and receive
  /// the parsed values. Pointers must outlive Parse().
  void AddInt64(const std::string& name, std::int64_t* value,
                const std::string& help);
  void AddDouble(const std::string& name, double* value,
                 const std::string& help);
  void AddString(const std::string& name, std::string* value,
                 const std::string& help);
  void AddBool(const std::string& name, bool* value, const std::string& help);

  /// Parses argv. On `--help` returns a NotFound status whose message is the
  /// usage text (callers print it and exit 0).
  Status Parse(int argc, char** argv);

  const std::vector<std::string>& positional_args() const {
    return positional_args_;
  }

  /// Usage text listing all registered flags with defaults.
  std::string Usage() const;

 private:
  enum class Type { kInt64, kDouble, kString, kBool };
  struct Flag {
    Type type;
    void* target;
    std::string help;
    std::string default_repr;
  };

  Status SetFlag(const std::string& name, const std::string& value);

  std::string description_;
  std::string program_name_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_args_;
};

}  // namespace pgm

#endif  // PGM_UTIL_FLAGS_H_
