#ifndef PGM_UTIL_SATURATING_H_
#define PGM_UTIL_SATURATING_H_

#include <cstdint>
#include <limits>

namespace pgm {

/// Support counts can in degenerate inputs (e.g. a homopolymer sequence with
/// a wide gap requirement) exceed 2^64: sup(P) is bounded only by
/// N_l <= L * W^(l-1). All support arithmetic therefore saturates at
/// kSaturatedCount instead of silently wrapping; a saturated count is
/// reported as such by the miners.
inline constexpr std::uint64_t kSaturatedCount =
    std::numeric_limits<std::uint64_t>::max();

/// Returns a + b, clamped to kSaturatedCount on overflow.
inline std::uint64_t SatAdd(std::uint64_t a, std::uint64_t b) {
  std::uint64_t result = 0;
  if (__builtin_add_overflow(a, b, &result)) return kSaturatedCount;
  return result;
}

/// Returns a * b, clamped to kSaturatedCount on overflow.
inline std::uint64_t SatMul(std::uint64_t a, std::uint64_t b) {
  std::uint64_t result = 0;
  if (__builtin_mul_overflow(a, b, &result)) return kSaturatedCount;
  return result;
}

/// True iff `count` hit the saturation clamp.
inline bool IsSaturated(std::uint64_t count) { return count == kSaturatedCount; }

}  // namespace pgm

#endif  // PGM_UTIL_SATURATING_H_
