#include "util/backoff.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <thread>

#include "util/mutex.h"
#include "util/random.h"
#include "util/thread_annotations.h"

namespace pgm {

namespace {

/// The recorder's log lives behind a process-global mutex rather than in the
/// recorder object so concurrent BackoffSleep calls from service workers
/// stay race-free while a test holds the scope.
Mutex g_recorder_mutex{kLockRankBackoff};
bool g_recorder_active PGM_GUARDED_BY(g_recorder_mutex) = false;
std::vector<std::int64_t>& RecordedDelays()
    PGM_REQUIRES(g_recorder_mutex) {
  static std::vector<std::int64_t> log;
  return log;
}
/// Fast-path gate so un-recorded sleeps never touch the mutex.
std::atomic<bool> g_recorder_installed{false};

}  // namespace

std::int64_t BackoffDelayMs(const RetryPolicy& policy, int attempt) {
  if (attempt <= 1 || policy.base_delay_ms <= 0) return 0;
  double delay = static_cast<double>(policy.base_delay_ms);
  for (int i = 2; i < attempt; ++i) {
    delay *= policy.multiplier;
    if (delay >= static_cast<double>(policy.max_delay_ms)) break;
  }
  std::int64_t ms = static_cast<std::int64_t>(
      std::min(delay, static_cast<double>(policy.max_delay_ms)));
  if (policy.jitter_seed != 0 && ms > 1) {
    // Deterministic jitter in [ms/2, ms]: the draw depends only on the seed
    // and the attempt number, so a retried schedule replays exactly.
    std::uint64_t state =
        policy.jitter_seed ^ static_cast<std::uint64_t>(attempt);
    const std::uint64_t draw = SplitMix64(state);
    const std::int64_t half = ms / 2;
    ms = half + static_cast<std::int64_t>(
                    draw % static_cast<std::uint64_t>(ms - half + 1));
  }
  return ms;
}

void BackoffSleep(std::int64_t delay_ms) {
  if (delay_ms <= 0) return;
  if (g_recorder_installed.load(std::memory_order_acquire)) {
    MutexLock lock(g_recorder_mutex);
    if (g_recorder_active) {
      RecordedDelays().push_back(delay_ms);
      return;
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
}

ScopedBackoffRecorder::ScopedBackoffRecorder() {
  MutexLock lock(g_recorder_mutex);
  assert(!g_recorder_active && "ScopedBackoffRecorder scopes must not nest");
  g_recorder_active = true;
  RecordedDelays().clear();
  g_recorder_installed.store(true, std::memory_order_release);
}

ScopedBackoffRecorder::~ScopedBackoffRecorder() {
  MutexLock lock(g_recorder_mutex);
  g_recorder_active = false;
  g_recorder_installed.store(false, std::memory_order_release);
}

std::vector<std::int64_t> ScopedBackoffRecorder::delays() const {
  MutexLock lock(g_recorder_mutex);
  return RecordedDelays();
}

}  // namespace pgm
