#ifndef PGM_UTIL_TABLE_PRINTER_H_
#define PGM_UTIL_TABLE_PRINTER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pgm {

/// Renders rows as an aligned, boxed ASCII table. The benchmark harness uses
/// it to print the paper's tables and figure series in a readable form.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns);

  /// Appends a row. Short rows are padded with empty cells; long rows are
  /// truncated to the header width.
  void AddRow(std::vector<std::string> cells);

  /// Row builder mirrors CsvWriter's for symmetric harness code.
  class RowBuilder {
   public:
    explicit RowBuilder(TablePrinter* printer) : printer_(printer) {}
    RowBuilder& Add(std::string_view value);
    RowBuilder& Add(double value);
    RowBuilder& Add(std::int64_t value);
    RowBuilder& Add(std::uint64_t value);
    void Done();

   private:
    TablePrinter* printer_;
    std::vector<std::string> cells_;
  };
  RowBuilder Row() { return RowBuilder(this); }

  /// Rendered table with +---+ borders.
  std::string ToString() const;

  /// Prints ToString() to stdout.
  void Print() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pgm

#endif  // PGM_UTIL_TABLE_PRINTER_H_
