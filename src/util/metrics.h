#ifndef PGM_UTIL_METRICS_H_
#define PGM_UTIL_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/saturating.h"
#include "util/thread_annotations.h"

namespace pgm {

/// A monotonically increasing counter. The hot path is a single CAS loop
/// with relaxed ordering; values saturate at kSaturatedCount instead of
/// wrapping, matching the mining counters they aggregate.
class Counter {
 public:
  void Increment() { Add(1); }

  void Add(std::uint64_t delta) {
    std::uint64_t current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, SatAdd(current, delta),
                                         std::memory_order_relaxed)) {
    }
  }

  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::atomic<std::uint64_t> value_{0};
};

/// A last-write-wins integral gauge.
class Gauge {
 public:
  void Set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }

  /// Raises the gauge to `value` when larger (peak tracking).
  void SetMax(std::int64_t value) {
    std::int64_t current = value_.load(std::memory_order_relaxed);
    while (current < value &&
           !value_.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
  }

  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<std::int64_t> value_{0};
};

/// A fixed-bucket histogram: bucket i counts observations <= bounds[i], and
/// one extra overflow bucket counts the rest. Observe is a binary search
/// over the (immutable) bounds plus relaxed atomic adds, so concurrent
/// observation is safe and cheap.
class Histogram {
 public:
  void Observe(std::uint64_t value);

  /// Total observations and their (saturating) sum.
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  const std::vector<std::uint64_t>& bounds() const { return bounds_; }

  /// Count in bucket `i`; `i == bounds().size()` is the overflow bucket.
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<std::uint64_t> bounds);
  std::vector<std::uint64_t> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// A thread-safe registry of named metrics. Registration (Get*) takes a
/// mutex; the returned handles are stable for the registry's lifetime and
/// their update paths are lock-free, so callers hoist the lookup out of hot
/// loops and pay only an atomic per update.
///
/// All values are integral and all exports are key-sorted, so ToJson() is
/// deterministic: two registries fed the same updates serialize to the same
/// bytes regardless of thread count or timing.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the named metric, creating it on first use.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` must be strictly increasing; it is ignored when the histogram
  /// already exists.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<std::uint64_t> bounds);

  /// Read-only lookups; null when the name was never registered.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  /// Value of the named counter, 0 when absent.
  std::uint64_t CounterValue(const std::string& name) const;

  /// Folds `other` into this registry: counters and histogram buckets add,
  /// gauges take the source's value (last write wins). Histograms that exist
  /// in both keep this registry's bounds; bucket counts merge index-wise.
  void MergeFrom(const MetricsRegistry& other);

  /// Deterministic key-sorted JSON export:
  ///   {"counters": {...}, "gauges": {...}, "histograms": {...}}
  std::string ToJson() const;

 private:
  // The mutex guards only the maps (registration and export); the metric
  // objects the map values own are internally atomic, so updates through
  // previously returned handles need no capability.
  mutable Mutex mutex_{kLockRankMetrics};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      PGM_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      PGM_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      PGM_GUARDED_BY(mutex_);
};

}  // namespace pgm

#endif  // PGM_UTIL_METRICS_H_
