#ifndef PGM_UTIL_CSV_WRITER_H_
#define PGM_UTIL_CSV_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace pgm {

/// Accumulates rows and serializes them as RFC-4180-style CSV. Used by the
/// benchmark harness to emit machine-readable copies of every paper table.
class CsvWriter {
 public:
  /// `columns` is the header row.
  explicit CsvWriter(std::vector<std::string> columns);

  std::size_t num_columns() const { return columns_.size(); }
  std::size_t num_rows() const { return rows_.size(); }

  /// Appends a row; returns InvalidArgument when the cell count mismatches
  /// the header.
  Status AddRow(std::vector<std::string> cells);

  /// Convenience: begin a row builder.
  class RowBuilder {
   public:
    explicit RowBuilder(CsvWriter* writer) : writer_(writer) {}
    RowBuilder& Add(std::string_view value);
    RowBuilder& Add(double value);
    RowBuilder& Add(std::int64_t value);
    RowBuilder& Add(std::uint64_t value);
    /// Commits the row to the writer.
    Status Done();

   private:
    CsvWriter* writer_;
    std::vector<std::string> cells_;
  };
  RowBuilder Row() { return RowBuilder(this); }

  /// Full document including the header line, with proper quoting.
  std::string ToString() const;

  /// Writes ToString() to `path`.
  Status WriteToFile(const std::string& path) const;

 private:
  static std::string EscapeCell(const std::string& cell);

  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pgm

#endif  // PGM_UTIL_CSV_WRITER_H_
