#ifndef PGM_UTIL_DIGEST_H_
#define PGM_UTIL_DIGEST_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace pgm {

/// Streaming FNV-1a 64-bit digest. Not cryptographic — it keys the serving
/// layer's result cache, where a collision costs a wrong cache hit on
/// adversarially chosen inputs at worst; the canonical config string is part
/// of the key material, so accidental collisions need both the sequence and
/// the config to collide at once.
class Digest64 {
 public:
  static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  Digest64() = default;

  Digest64& Update(const void* data, std::size_t size) {
    const unsigned char* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      state_ ^= bytes[i];
      state_ *= kPrime;
    }
    return *this;
  }
  Digest64& Update(std::string_view text) {
    return Update(text.data(), text.size());
  }
  /// Hashes the value's little-endian byte representation, so digests are
  /// identical across platforms we build for.
  Digest64& UpdateU64(std::uint64_t value) {
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i) {
      bytes[i] = static_cast<unsigned char>(value >> (8 * i));
    }
    return Update(bytes, sizeof(bytes));
  }

  std::uint64_t value() const { return state_; }

 private:
  std::uint64_t state_ = kOffsetBasis;
};

/// FNV-1a 64 of `text` in one call.
std::uint64_t Fnv1a64(std::string_view text);

/// Fixed-width (16 hex digits, lowercase) rendering of a digest value.
std::string DigestToHex(std::uint64_t value);

}  // namespace pgm

#endif  // PGM_UTIL_DIGEST_H_
