#include "datagen/presets.h"

#include <string>
#include <vector>

#include "datagen/generators.h"
#include "datagen/markov.h"
#include "datagen/planting.h"
#include "util/random.h"

namespace pgm {

namespace {

/// Plants a family of tandem runs along the whole sequence: starting near
/// `first`, one run roughly every `spacing` positions, cycling through
/// `motifs`, each run `min_run_length` to `min_run_length + length_jitter`
/// characters long (rounded down to whole motif copies).
StatusOr<Sequence> ScatterRuns(Sequence sequence,
                               const std::vector<std::string>& motifs,
                               std::size_t first, std::size_t spacing,
                               std::size_t min_run_length,
                               std::size_t length_jitter, double purity,
                               Rng& rng) {
  std::size_t pos = first;
  std::size_t motif_index = 0;
  while (true) {
    const std::string& motif = motifs[motif_index % motifs.size()];
    const std::size_t target_length =
        min_run_length +
        (length_jitter > 0
             ? static_cast<std::size_t>(rng.UniformInt(length_jitter + 1))
             : 0);
    const std::size_t copies = std::max<std::size_t>(1, target_length / motif.size());
    if (pos + copies * motif.size() > sequence.size()) break;
    PGM_ASSIGN_OR_RETURN(sequence, PlantNoisyTandemRun(sequence, motif, pos,
                                                        copies, purity, rng));
    ++motif_index;
    const std::size_t jitter =
        spacing / 4 > 0 ? static_cast<std::size_t>(rng.UniformInt(spacing / 4))
                        : 0;
    pos += spacing + jitter;
  }
  return sequence;
}

/// Order-1 Markov model over DNA with the given stationary-ish base weights
/// and a mild same-base persistence boost (real genomes are locally sticky).
StatusOr<MarkovModel> StickyDnaModel(const std::vector<double>& base_weights,
                                     double persistence_boost) {
  std::vector<std::vector<double>> transitions;
  for (std::size_t prev = 0; prev < 4; ++prev) {
    std::vector<double> row = base_weights;
    row[prev] *= persistence_boost;
    transitions.push_back(std::move(row));
  }
  return MarkovModel::Create(Alphabet::Dna(), 1, std::move(transitions));
}

}  // namespace

StatusOr<Sequence> MakeAx829174Surrogate() {
  // Fixed seed: the surrogate is one specific deterministic sequence, just
  // as AX829174 is one specific database entry.
  Rng rng(0x20050311ULL);
  PGM_ASSIGN_OR_RETURN(MarkovModel model,
                       StickyDnaModel({0.29, 0.21, 0.21, 0.29}, 1.5));
  PGM_ASSIGN_OR_RETURN(Sequence sequence, model.Generate(10'011, rng));

  // AT-rich mixed regions of ~130 bp roughly every 650-810 bp, alternating
  // A-dominant (A:0.62, T:0.30) and T-dominant. Calibrated so that under
  // the Section 6 parameters (gap [9,12], ρs = 0.003%) the longest
  // frequent patterns have length ~13 (the paper's no(ρs)), while K_r
  // inside a region stays near (W*0.62)^m << W^m, keeping e_m informative
  // (W^10/e_10 ≈ 30-40) — dense *mixed* composition, not pure runs, is
  // what real AT-rich human fragments look like.
  const std::size_t region_length = 130;
  std::size_t pos = 250;
  int index = 0;
  while (pos + region_length < sequence.size()) {
    const double a = (index % 2 == 0) ? 0.62 : 0.30;
    const double t = 0.92 - a;
    PGM_ASSIGN_OR_RETURN(
        sequence, PlantCompositionalRegion(sequence, pos, region_length,
                                           {a, 0.04, 0.04, t}, rng));
    pos += 650 + static_cast<std::size_t>(rng.UniformInt(160));
    ++index;
  }
  return sequence;
}

StatusOr<Sequence> MakeBacteriaLikeGenome(std::size_t length,
                                          std::uint64_t seed) {
  Rng rng(seed ^ 0xBAC7E61AULL);
  // ~64% A+T (H. influenzae-like). Compositionally this alone makes
  // AT-only length-8 patterns frequent at the Section 7 parameters
  // (0.32^8 ≈ 1.1e-4 >> ρs = 6e-5) while >=2-C/G patterns are not
  // (0.32^6 * 0.18^2 ≈ 3.5e-5 < 6e-5).
  PGM_ASSIGN_OR_RETURN(
      Sequence sequence,
      WeightedRandomSequence(length, Alphabet::Dna(), {0.32, 0.18, 0.18, 0.32},
                             rng));
  // A/T runs of 106-112 bp every ~2 kb: long enough that length-10
  // patterns (minspan(10) = 100 under gap [10,12]) draw combinatorially
  // large support from inside a run, short enough that length-11+ support
  // (which must step outside the run) falls below the threshold — the
  // paper's "longest pattern was 10 bases".
  const std::vector<std::string> motifs = {"A",  "T",  "AT",  "AAT",
                                           "TA", "ATT", "TTA", "T"};
  return ScatterRuns(std::move(sequence), motifs, /*first=*/900,
                     /*spacing=*/1'900, /*min_run_length=*/104,
                     /*length_jitter=*/4, /*purity=*/0.90, rng);
}

StatusOr<Sequence> MakeEukaryoteLikeGenome(std::size_t length,
                                           std::uint64_t seed) {
  Rng rng(seed ^ 0xE0CA2707ULL);
  // 60% A+T: AT-only length-8 patterns are borderline (0.30^8 ≈ 6.6e-5 vs
  // ρs = 6e-5) — frequent in some fragments, echoing the paper's weaker
  // eukaryote claim.
  PGM_ASSIGN_OR_RETURN(
      Sequence sequence,
      WeightedRandomSequence(length, Alphabet::Dna(), {0.30, 0.20, 0.20, 0.30},
                             rng));
  // Sparser A/T runs than bacteria.
  const std::vector<std::string> at_motifs = {"A", "AT", "T", "TAA"};
  PGM_ASSIGN_OR_RETURN(
      sequence, ScatterRuns(std::move(sequence), at_motifs, /*first=*/1'500,
                            /*spacing=*/3'200, /*min_run_length=*/104,
                            /*length_jitter=*/4, /*purity=*/0.90, rng));
  // Medium G tracts every ~16 kb: poly-G length-8 becomes frequent in most
  // fragments ("many of which consist of more C's and G's").
  PGM_ASSIGN_OR_RETURN(
      sequence, ScatterRuns(std::move(sequence), {"G"}, /*first=*/5'000,
                            /*spacing=*/16'000, /*min_run_length=*/118,
                            /*length_jitter=*/10, /*purity=*/0.92, rng));
  // One very long G tract every ~150 kb (planted last so nothing overwrites
  // it): hosts the paper's frequent 16-G / 17-G patterns and nothing
  // longer. 195 bp (calibrated empirically) gives a length-17 pattern
  // (minspan 176) just enough span slack to clear the support threshold
  // while length-18 falls short.
  return ScatterRuns(std::move(sequence), {"G"}, /*first=*/52'000,
                     /*spacing=*/150'000, /*min_run_length=*/195,
                     /*length_jitter=*/0, /*purity=*/0.95, rng);
}

StatusOr<Sequence> MakeWormLikeGenome(std::size_t length, std::uint64_t seed) {
  Rng rng(seed ^ 0xCE1E6A25ULL);
  PGM_ASSIGN_OR_RETURN(
      Sequence sequence,
      WeightedRandomSequence(length, Alphabet::Dna(), {0.32, 0.18, 0.18, 0.32},
                             rng));
  // Standard A/T runs.
  const std::vector<std::string> at_motifs = {"A", "T", "AAT", "AT"};
  PGM_ASSIGN_OR_RETURN(
      sequence, ScatterRuns(std::move(sequence), at_motifs, /*first=*/1'200,
                            /*spacing=*/2'400, /*min_run_length=*/104,
                            /*length_jitter=*/4, /*purity=*/0.90, rng));
  // C. elegans is microsatellite-rich: huge (AT)n expansions (make the
  // self-repeating ATATATATATA patterns frequent) ...
  PGM_ASSIGN_OR_RETURN(
      sequence, ScatterRuns(std::move(sequence), {"AT", "TA"}, /*first=*/4'000,
                            /*spacing=*/11'000, /*min_run_length=*/430,
                            /*length_jitter=*/40, /*purity=*/0.94, rng));
  // ... and (GTA)n expansions (the paper's GTAGTAGTAGT; see EXPERIMENTS.md
  // for the support analysis of period-3 repeats under an 11-12 bp gap).
  return ScatterRuns(std::move(sequence), {"GTA", "TAG"}, /*first=*/7'500,
                     /*spacing=*/13'000, /*min_run_length=*/420,
                     /*length_jitter=*/30, /*purity=*/0.94, rng);
}

}  // namespace pgm
