#include "datagen/markov.h"

#include <cmath>

#include "util/string_util.h"

namespace pgm {

namespace {

std::size_t NumContexts(std::size_t alphabet_size, std::size_t order) {
  std::size_t contexts = 1;
  for (std::size_t i = 0; i < order; ++i) contexts *= alphabet_size;
  return contexts;
}

}  // namespace

StatusOr<MarkovModel> MarkovModel::Create(
    const Alphabet& alphabet, std::size_t order,
    std::vector<std::vector<double>> transitions) {
  if (order > 8) {
    return Status::InvalidArgument("Markov order above 8 is not supported");
  }
  const std::size_t contexts = NumContexts(alphabet.size(), order);
  if (transitions.size() != contexts) {
    return Status::InvalidArgument(
        StrFormat("expected %zu transition rows, got %zu", contexts,
                  transitions.size()));
  }
  for (std::size_t c = 0; c < contexts; ++c) {
    if (transitions[c].size() != alphabet.size()) {
      return Status::InvalidArgument(
          StrFormat("transition row %zu has %zu entries, expected %zu", c,
                    transitions[c].size(), alphabet.size()));
    }
    double total = 0.0;
    for (double w : transitions[c]) {
      if (w < 0.0 || !std::isfinite(w)) {
        return Status::InvalidArgument(
            StrFormat("transition row %zu contains a negative or non-finite "
                      "weight",
                      c));
      }
      total += w;
    }
    if (total <= 0.0) {
      return Status::InvalidArgument(
          StrFormat("transition row %zu has zero total weight", c));
    }
  }
  return MarkovModel(alphabet, order, std::move(transitions));
}

StatusOr<MarkovModel> MarkovModel::Fit(const Sequence& example,
                                       std::size_t order) {
  if (example.size() < order + 1) {
    return Status::InvalidArgument(
        StrFormat("example sequence of length %zu is too short for order %zu",
                  example.size(), order));
  }
  const std::size_t k = example.alphabet().size();
  const std::size_t contexts = NumContexts(k, order);
  // Laplace smoothing: every transition starts at weight 1.
  std::vector<std::vector<double>> transitions(
      contexts, std::vector<double>(k, 1.0));
  std::size_t context = 0;
  const std::size_t context_mod = contexts;
  for (std::size_t i = 0; i < example.size(); ++i) {
    if (i >= order) {
      transitions[context][example[i]] += 1.0;
    }
    context = (context * k + example[i]) % context_mod;
  }
  return Create(example.alphabet(), order, std::move(transitions));
}

StatusOr<Sequence> MarkovModel::Generate(std::size_t length, Rng& rng) const {
  const std::size_t k = alphabet_.size();
  const std::size_t contexts = transitions_.size();
  std::vector<Symbol> symbols;
  symbols.reserve(length);
  std::size_t context = static_cast<std::size_t>(rng.UniformInt(contexts));
  for (std::size_t i = 0; i < length; ++i) {
    Symbol next = static_cast<Symbol>(rng.Categorical(transitions_[context]));
    symbols.push_back(next);
    context = (context * k + next) % contexts;
  }
  return Sequence::FromSymbols(std::move(symbols), alphabet_);
}

}  // namespace pgm
