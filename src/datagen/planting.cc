#include "datagen/planting.h"

#include "util/string_util.h"

namespace pgm {

StatusOr<Sequence> PlantTandemRun(const Sequence& base, std::string_view motif,
                                  std::size_t start, std::size_t copies) {
  if (motif.empty() || copies == 0) {
    return Status::InvalidArgument("motif and copies must be non-empty");
  }
  const std::size_t run_length = motif.size() * copies;
  if (start + run_length > base.size()) {
    return Status::OutOfRange(
        StrFormat("tandem run [%zu, %zu) overruns sequence of length %zu",
                  start, start + run_length, base.size()));
  }
  std::vector<Symbol> encoded_motif;
  encoded_motif.reserve(motif.size());
  for (char c : motif) {
    Symbol s = base.alphabet().Encode(c);
    if (s == kInvalidSymbol) {
      return Status::InvalidArgument(
          StrFormat("motif character '%c' is not in the alphabet", c));
    }
    encoded_motif.push_back(s);
  }
  std::vector<Symbol> symbols = base.symbols();
  for (std::size_t i = 0; i < run_length; ++i) {
    symbols[start + i] = encoded_motif[i % encoded_motif.size()];
  }
  return Sequence::FromSymbols(std::move(symbols), base.alphabet());
}

StatusOr<Sequence> PlantNoisyTandemRun(const Sequence& base,
                                       std::string_view motif,
                                       std::size_t start, std::size_t copies,
                                       double purity, Rng& rng) {
  if (purity < 0.0 || purity > 1.0) {
    return Status::InvalidArgument("purity must lie in [0, 1]");
  }
  PGM_ASSIGN_OR_RETURN(Sequence planted,
                       PlantTandemRun(base, motif, start, copies));
  if (purity >= 1.0) return planted;
  std::vector<Symbol> symbols = planted.symbols();
  const std::size_t run_length = motif.size() * copies;
  for (std::size_t i = 0; i < run_length; ++i) {
    if (!rng.Bernoulli(purity)) {
      symbols[start + i] = base[start + i];
    }
  }
  return Sequence::FromSymbols(std::move(symbols), base.alphabet());
}

StatusOr<Sequence> PlantCompositionalRegion(const Sequence& base,
                                            std::size_t start,
                                            std::size_t length,
                                            const std::vector<double>& weights,
                                            Rng& rng) {
  if (length == 0) {
    return Status::InvalidArgument("region length must be positive");
  }
  if (start + length > base.size()) {
    return Status::OutOfRange(
        StrFormat("region [%zu, %zu) overruns sequence of length %zu", start,
                  start + length, base.size()));
  }
  if (weights.size() != base.alphabet().size()) {
    return Status::InvalidArgument(
        StrFormat("expected %zu weights (one per symbol), got %zu",
                  base.alphabet().size(), weights.size()));
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) {
      return Status::InvalidArgument("weights must be non-negative");
    }
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("at least one weight must be positive");
  }
  std::vector<Symbol> symbols = base.symbols();
  for (std::size_t i = 0; i < length; ++i) {
    symbols[start + i] = static_cast<Symbol>(rng.Categorical(weights));
  }
  return Sequence::FromSymbols(std::move(symbols), base.alphabet());
}

StatusOr<Sequence> PlantGappedOccurrences(
    const Sequence& base, const Pattern& pattern, const GapRequirement& gap,
    std::size_t num_occurrences, Rng& rng, std::vector<std::size_t>* anchors) {
  if (pattern.empty()) {
    return Status::InvalidArgument("pattern must not be empty");
  }
  if (!(pattern.alphabet() == base.alphabet())) {
    return Status::InvalidArgument(
        "pattern and sequence use different alphabets");
  }
  const std::int64_t max_span =
      gap.MaxSpan(static_cast<std::int64_t>(pattern.length()));
  if (max_span > static_cast<std::int64_t>(base.size())) {
    return Status::OutOfRange(
        StrFormat("pattern max span %lld exceeds sequence length %zu",
                  static_cast<long long>(max_span), base.size()));
  }
  std::vector<Symbol> symbols = base.symbols();
  const std::size_t max_anchor =
      base.size() - static_cast<std::size_t>(max_span);
  for (std::size_t occ = 0; occ < num_occurrences; ++occ) {
    std::size_t pos =
        static_cast<std::size_t>(rng.UniformInt(max_anchor + 1));
    if (anchors != nullptr) anchors->push_back(pos);
    symbols[pos] = pattern[0];
    for (std::size_t j = 1; j < pattern.length(); ++j) {
      pos += static_cast<std::size_t>(
                 rng.UniformRange(gap.min_gap(), gap.max_gap())) +
             1;
      symbols[pos] = pattern[j];
    }
  }
  return Sequence::FromSymbols(std::move(symbols), base.alphabet());
}

}  // namespace pgm
