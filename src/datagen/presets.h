#ifndef PGM_DATAGEN_PRESETS_H_
#define PGM_DATAGEN_PRESETS_H_

#include <cstddef>
#include <cstdint>

#include "seq/sequence.h"
#include "util/status.h"

namespace pgm {

/// Synthetic genome presets — the documented substitutes for the paper's
/// proprietary-download inputs (see DESIGN.md §3). Each preset is fully
/// deterministic given its seed and plants the compositional periodicities
/// that drive the paper's qualitative findings.

/// Surrogate for the NCBI entry AX829174 (Homo sapiens, 10,011 bp) used in
/// all Section 6 experiments. Sticky order-1 Markov base with human-like
/// composition, plus AT-rich mixed regions (~130 bp, A:0.62/T:0.30) like
/// the ones that make long A/T periodic patterns frequent in real human
/// fragments while keeping e_m informative. Always 10,011 characters;
/// deterministic (fixed seed).
StatusOr<Sequence> MakeAx829174Surrogate();

/// Bacteria-like genome (H. influenzae / H. pylori / M. genitalium /
/// M. pneumoniae stand-in): AT-rich composition (~66% A+T) with scattered
/// short A/T runs. Under the Section 7 parameters (gap [10,12],
/// ρs = 0.006%) essentially all 256 AT-only length-8 patterns come out
/// frequent while C/G-bearing patterns do not — the paper's core finding.
StatusOr<Sequence> MakeBacteriaLikeGenome(std::size_t length,
                                          std::uint64_t seed);

/// Eukaryote-like genome (H. sapiens / D. melanogaster stand-in): more
/// balanced composition, A/T runs plus long G tracts, so poly-G patterns
/// (up to the paper's "16 G's" observation) additionally become frequent.
StatusOr<Sequence> MakeEukaryoteLikeGenome(std::size_t length,
                                           std::uint64_t seed);

/// Worm-like genome (C. elegans stand-in): adds GTA-repeat microsatellites,
/// reproducing the paper's "GTAGTAGTAGT"-style self-repeating patterns.
StatusOr<Sequence> MakeWormLikeGenome(std::size_t length, std::uint64_t seed);

}  // namespace pgm

#endif  // PGM_DATAGEN_PRESETS_H_
