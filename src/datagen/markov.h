#ifndef PGM_DATAGEN_MARKOV_H_
#define PGM_DATAGEN_MARKOV_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "seq/sequence.h"
#include "util/random.h"
#include "util/status.h"

namespace pgm {

/// An order-k Markov chain over an alphabet, used to synthesize sequences
/// whose local composition statistics mimic real genomes (the AX829174
/// surrogate is an order-2 instance).
class MarkovModel {
 public:
  /// Builds a model with explicit transition weights.
  /// `transitions` has |Σ|^order rows (contexts, most recent symbol in the
  /// lowest "digit") of |Σ| non-negative weights each; rows need not be
  /// normalized but each must have a positive total.
  static StatusOr<MarkovModel> Create(
      const Alphabet& alphabet, std::size_t order,
      std::vector<std::vector<double>> transitions);

  /// Maximum-likelihood fit from an example sequence, with add-one
  /// (Laplace) smoothing so every transition stays reachable.
  /// Fails when the sequence is shorter than order + 1.
  static StatusOr<MarkovModel> Fit(const Sequence& example, std::size_t order);

  std::size_t order() const { return order_; }
  const Alphabet& alphabet() const { return alphabet_; }

  /// Transition weights for a context (row index as described in Create).
  const std::vector<double>& TransitionRow(std::size_t context) const {
    return transitions_[context];
  }

  /// Generates `length` symbols. The initial context is drawn uniformly.
  StatusOr<Sequence> Generate(std::size_t length, Rng& rng) const;

 private:
  MarkovModel(const Alphabet& alphabet, std::size_t order,
              std::vector<std::vector<double>> transitions)
      : alphabet_(alphabet), order_(order), transitions_(std::move(transitions)) {}

  Alphabet alphabet_;
  std::size_t order_;
  std::vector<std::vector<double>> transitions_;
};

}  // namespace pgm

#endif  // PGM_DATAGEN_MARKOV_H_
