#include "datagen/generators.h"

#include "util/string_util.h"

namespace pgm {

StatusOr<Sequence> UniformRandomSequence(std::size_t length,
                                         const Alphabet& alphabet, Rng& rng) {
  std::vector<Symbol> symbols;
  symbols.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    symbols.push_back(static_cast<Symbol>(rng.UniformInt(alphabet.size())));
  }
  return Sequence::FromSymbols(std::move(symbols), alphabet);
}

StatusOr<Sequence> WeightedRandomSequence(std::size_t length,
                                          const Alphabet& alphabet,
                                          const std::vector<double>& weights,
                                          Rng& rng) {
  if (weights.size() != alphabet.size()) {
    return Status::InvalidArgument(
        StrFormat("expected %zu weights (one per symbol), got %zu",
                  alphabet.size(), weights.size()));
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) {
      return Status::InvalidArgument("weights must be non-negative");
    }
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("at least one weight must be positive");
  }
  std::vector<Symbol> symbols;
  symbols.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    symbols.push_back(static_cast<Symbol>(rng.Categorical(weights)));
  }
  return Sequence::FromSymbols(std::move(symbols), alphabet);
}

}  // namespace pgm
