#ifndef PGM_DATAGEN_PLANTING_H_
#define PGM_DATAGEN_PLANTING_H_

#include <cstddef>
#include <string_view>
#include <vector>

#include "core/gap.h"
#include "core/pattern.h"
#include "seq/sequence.h"
#include "util/random.h"
#include "util/status.h"

namespace pgm {

/// Editing utilities that implant known structure into synthetic sequences.
/// High support under the paper's model does not come from isolated exact
/// occurrences (each contributes a single offset sequence) but from *dense*
/// regions where many positions inside every gap window match — e.g. a
/// poly-A run supports a combinatorially exploding number of offset
/// sequences for A-only patterns. The planting functions therefore provide
/// both flavors: tandem runs (density) and gapped occurrences (exactness).

/// Overwrites base[start ...] with `copies` back-to-back copies of `motif`
/// (a tandem repeat). Fails when the run would overrun the sequence or the
/// motif has characters outside the alphabet.
StatusOr<Sequence> PlantTandemRun(const Sequence& base, std::string_view motif,
                                  std::size_t start, std::size_t copies);

/// Like PlantTandemRun, but each run position receives the motif character
/// only with probability `purity` (keeping the pre-existing character
/// otherwise). Real repeats carry substitutions and phase shifts (the paper
/// notes "the repeats are not error-free"); impurity also keeps the e_m
/// statistic informative — a long *perfect* run drives e_m up to W^m, which
/// degrades MPPm's n-estimate to the worst case.
StatusOr<Sequence> PlantNoisyTandemRun(const Sequence& base,
                                       std::string_view motif,
                                       std::size_t start, std::size_t copies,
                                       double purity, Rng& rng);

/// Overwrites base[start, start+length) with characters drawn i.i.d. from
/// `weights` (one non-negative weight per alphabet symbol). This models
/// compositionally biased regions (e.g. an AT-rich isochore with A:0.55,
/// T:0.35): unlike a near-pure tandem run, such a region gives biased
/// patterns large combinatorial support while keeping K_r — and hence
/// e_m — far below W^m, which is what makes MPPm's n-estimate effective
/// on real genomes.
StatusOr<Sequence> PlantCompositionalRegion(const Sequence& base,
                                            std::size_t start,
                                            std::size_t length,
                                            const std::vector<double>& weights,
                                            Rng& rng);

/// Plants `num_occurrences` gapped occurrences of `pattern`: each picks a
/// uniform anchor with room for the maximum span and writes the pattern's
/// characters at positions separated by uniform gaps in [N, M]. Anchors of
/// the occurrences are appended to `*anchors` when non-null.
/// Fails when even the maximum span does not fit.
StatusOr<Sequence> PlantGappedOccurrences(const Sequence& base,
                                          const Pattern& pattern,
                                          const GapRequirement& gap,
                                          std::size_t num_occurrences, Rng& rng,
                                          std::vector<std::size_t>* anchors = nullptr);

}  // namespace pgm

#endif  // PGM_DATAGEN_PLANTING_H_
