#ifndef PGM_DATAGEN_GENERATORS_H_
#define PGM_DATAGEN_GENERATORS_H_

#include <cstddef>
#include <vector>

#include "seq/sequence.h"
#include "util/random.h"
#include "util/status.h"

namespace pgm {

/// Generates a length-`length` sequence with symbols drawn i.i.d. uniformly
/// from `alphabet`.
StatusOr<Sequence> UniformRandomSequence(std::size_t length,
                                         const Alphabet& alphabet, Rng& rng);

/// Generates a length-`length` sequence with symbols drawn i.i.d. from the
/// categorical distribution `weights` (one non-negative weight per alphabet
/// symbol, in alphabet order; normalization not required).
/// Fails when weights.size() != alphabet.size() or all weights are zero.
StatusOr<Sequence> WeightedRandomSequence(std::size_t length,
                                          const Alphabet& alphabet,
                                          const std::vector<double>& weights,
                                          Rng& rng);

}  // namespace pgm

#endif  // PGM_DATAGEN_GENERATORS_H_
