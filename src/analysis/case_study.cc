#include "analysis/case_study.h"

#include <algorithm>
#include <map>
#include <string>

#include "corpus/executor.h"

namespace pgm {

StatusOr<CaseStudyReport> RunCaseStudy(const Sequence& genome,
                                       const CaseStudyConfig& config) {
  if (config.report_length < 1) {
    return Status::InvalidArgument("report_length must be >= 1");
  }
  CorpusPlanOptions plan_options;
  plan_options.fragment.fragment_length = config.fragment_length;
  plan_options.fragment.keep_tail = false;
  plan_options.max_fragments = config.max_fragments;
  PGM_ASSIGN_OR_RETURN(
      CorpusPlan plan,
      CorpusPlan::FromSequence(genome, "genome", plan_options));
  if (plan.fragments().empty()) {
    return Status::InvalidArgument(
        "genome is shorter than one fragment; nothing to mine");
  }

  // The corpus executor mines the fragments (serially here — the case
  // study is itself run per species inside benchmarks) and hands back
  // per-fragment results in ordinal order; the report folds them exactly
  // as the original per-fragment loop did, so output is unchanged.
  CorpusOptions options;
  options.algorithm = "mppm";
  options.miner = config.miner;
  PGM_ASSIGN_OR_RETURN(CorpusResult corpus, MineCorpus(plan, options));

  // Number of AT-only patterns of the report length: 2^report_length.
  std::uint64_t all_at_count = 1;
  for (std::int64_t i = 0; i < config.report_length; ++i) all_at_count *= 2;

  CaseStudyReport report;
  std::map<std::string, std::size_t> union_index;
  for (const FragmentResult& fragment_result : corpus.fragments) {
    if (fragment_result.mined && !fragment_result.status.ok()) {
      return fragment_result.status;
    }
    const MiningResult& mined = fragment_result.result;
    for (const FrequentPattern& fp : mined.patterns) {
      const std::string key(fp.pattern.symbols().begin(),
                            fp.pattern.symbols().end());
      auto [it, inserted] =
          union_index.emplace(key, report.frequent_union.size());
      if (inserted) {
        report.frequent_union.push_back(fp);
      } else if (fp.support >
                 report.frequent_union[it->second].support) {
        report.frequent_union[it->second] = fp;
      }
    }

    FragmentReport fragment;
    fragment.index = fragment_result.ordinal;
    PGM_ASSIGN_OR_RETURN(fragment.buckets,
                         BucketFrequentPatterns(mined, config.report_length));
    fragment.longest = mined.longest_frequent_length;
    fragment.num_frequent = mined.patterns.size();
    for (const FrequentPattern& fp : mined.patterns) {
      const std::int64_t length =
          static_cast<std::int64_t>(fp.pattern.length());
      if (IsHomopolymer(fp.pattern, 'G')) {
        fragment.longest_poly_g = std::max(fragment.longest_poly_g, length);
      }
      if (length >= 4 && IsSelfRepeating(fp.pattern)) {
        ++fragment.num_self_repeating;
      }
    }

    report.avg_at_only += static_cast<double>(fragment.buckets.at_only);
    report.avg_single_cg += static_cast<double>(fragment.buckets.single_cg);
    report.avg_multi_cg += static_cast<double>(fragment.buckets.multi_cg);
    if (fragment.buckets.at_only == all_at_count) {
      ++report.fragments_with_all_at;
    }
    if (fragment.longest_poly_g >= config.report_length) {
      ++report.fragments_with_poly_g;
    }
    report.longest_poly_g_overall =
        std::max(report.longest_poly_g_overall, fragment.longest_poly_g);
    report.longest_overall = std::max(report.longest_overall, fragment.longest);
    report.fragments.push_back(fragment);
  }
  const double n = static_cast<double>(report.fragments.size());
  report.avg_at_only /= n;
  report.avg_single_cg /= n;
  report.avg_multi_cg /= n;
  return report;
}

}  // namespace pgm
