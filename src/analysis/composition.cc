#include "analysis/composition.h"

namespace pgm {

StatusOr<std::int64_t> CountCg(const Pattern& pattern) {
  const Alphabet& alphabet = pattern.alphabet();
  const Symbol c = alphabet.Encode('C');
  const Symbol g = alphabet.Encode('G');
  if (c == kInvalidSymbol || g == kInvalidSymbol) {
    return Status::FailedPrecondition(
        "C/G classification requires an alphabet containing 'C' and 'G'");
  }
  std::int64_t count = 0;
  for (Symbol s : pattern.symbols()) {
    if (s == c || s == g) ++count;
  }
  return count;
}

StatusOr<DnaPatternClass> ClassifyDnaPattern(const Pattern& pattern) {
  PGM_ASSIGN_OR_RETURN(std::int64_t cg, CountCg(pattern));
  if (cg == 0) return DnaPatternClass::kAtOnly;
  if (cg == 1) return DnaPatternClass::kSingleCg;
  return DnaPatternClass::kMultiCg;
}

StatusOr<LengthClassCounts> BucketFrequentPatterns(const MiningResult& result,
                                                   std::int64_t length) {
  LengthClassCounts counts;
  counts.length = length;
  for (const FrequentPattern& fp : result.patterns) {
    if (static_cast<std::int64_t>(fp.pattern.length()) != length) continue;
    PGM_ASSIGN_OR_RETURN(DnaPatternClass cls, ClassifyDnaPattern(fp.pattern));
    switch (cls) {
      case DnaPatternClass::kAtOnly:
        ++counts.at_only;
        break;
      case DnaPatternClass::kSingleCg:
        ++counts.single_cg;
        break;
      case DnaPatternClass::kMultiCg:
        ++counts.multi_cg;
        break;
    }
  }
  return counts;
}

bool IsSelfRepeating(const Pattern& pattern) {
  const std::size_t l = pattern.length();
  if (l < 2) return false;
  for (std::size_t unit = 1; unit <= l / 2; ++unit) {
    // The unit must actually repeat (at least two full copies), and every
    // position must equal the one a unit earlier.
    bool repeats = true;
    for (std::size_t i = unit; i < l; ++i) {
      if (pattern[i] != pattern[i - unit]) {
        repeats = false;
        break;
      }
    }
    if (repeats) return true;
  }
  return false;
}

bool IsHomopolymer(const Pattern& pattern, char c) {
  const Symbol target = pattern.alphabet().Encode(c);
  if (target == kInvalidSymbol || pattern.empty()) return false;
  for (Symbol s : pattern.symbols()) {
    if (s != target) return false;
  }
  return true;
}

}  // namespace pgm
