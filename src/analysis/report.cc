#include "analysis/report.h"

#include <algorithm>

#include "analysis/maximal.h"
#include "util/csv_reader.h"
#include "util/csv_writer.h"
#include "util/io.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace pgm {

std::string FormatMiningReport(const MiningResult& result,
                               const GapRequirement& gap,
                               const ReportOptions& options) {
  std::string out;
  out += StrFormat(
      "gap %s; %zu frequent patterns; longest %lld; complete up to %lld; "
      "%.4g s\n",
      gap.ToString().c_str(), result.patterns.size(),
      static_cast<long long>(result.longest_frequent_length),
      static_cast<long long>(result.guaranteed_complete_up_to),
      result.total_seconds);
  if (!result.complete()) {
    out += StrFormat(
        "partial result: stopped early (%s); patterns longer than %lld may "
        "be missing\n",
        TerminationReasonToString(result.termination),
        static_cast<long long>(result.guaranteed_complete_up_to));
  }
  if (result.estimated_n >= 0) {
    out += StrFormat("MPPm: e_m = %llu, estimated n = %lld\n",
                     static_cast<unsigned long long>(result.em),
                     static_cast<long long>(result.estimated_n));
  }
  if (result.adaptive_iterations > 0) {
    out += StrFormat("adaptive iterations: %lld\n",
                     static_cast<long long>(result.adaptive_iterations));
  }

  std::vector<FrequentPattern> patterns =
      options.maximal_only ? FilterMaximalPatterns(result.patterns)
                           : result.patterns;
  if (options.maximal_only) {
    out += StrFormat("condensed to %zu maximal patterns\n", patterns.size());
  }
  std::sort(patterns.begin(), patterns.end(),
            [](const FrequentPattern& a, const FrequentPattern& b) {
              if (a.pattern.length() != b.pattern.length()) {
                return a.pattern.length() > b.pattern.length();
              }
              return a.support_ratio > b.support_ratio;
            });
  const std::size_t shown = options.top == 0
                                ? patterns.size()
                                : std::min(options.top, patterns.size());
  TablePrinter table({"pattern", "explicit form", "support", "ratio (%)"});
  for (std::size_t i = 0; i < shown; ++i) {
    const FrequentPattern& fp = patterns[i];
    table.Row()
        .Add(fp.pattern.ToShorthand())
        .Add(fp.pattern.ToString(gap))
        .Add(FormatCount(fp.support) + (fp.saturated ? " (sat)" : ""))
        .Add(fp.support_ratio * 100.0)
        .Done();
  }
  out += table.ToString();
  if (shown < patterns.size()) {
    out += StrFormat("... and %zu more\n", patterns.size() - shown);
  }

  if (options.include_level_stats && !result.level_stats.empty()) {
    TablePrinter levels({"length", "candidates", "frequent", "retained"});
    for (const LevelStats& stats : result.level_stats) {
      levels.Row()
          .Add(stats.length)
          .Add(stats.num_candidates)
          .Add(stats.num_frequent)
          .Add(stats.num_retained)
          .Done();
    }
    out += "\nper-level candidates:\n";
    out += levels.ToString();
  }
  return out;
}

namespace {
const std::vector<std::string>& PatternsCsvHeader() {
  static const std::vector<std::string>& header = *new std::vector<std::string>{
      "pattern", "length", "support", "ratio", "saturated"};
  return header;
}
}  // namespace

std::string PatternsToCsv(const MiningResult& result) {
  CsvWriter csv(PatternsCsvHeader());
  for (const FrequentPattern& fp : result.patterns) {
    // Writer arity matches the header by construction; ignore the status.
    (void)csv.Row()
        .Add(fp.pattern.ToShorthand())
        .Add(static_cast<std::uint64_t>(fp.pattern.length()))
        .Add(fp.support)
        .Add(fp.support_ratio)
        .Add(fp.saturated ? "1" : "0")
        .Done();
  }
  return csv.ToString();
}

Status SavePatternsCsv(const MiningResult& result, const std::string& path) {
  CsvWriter csv(PatternsCsvHeader());
  for (const FrequentPattern& fp : result.patterns) {
    PGM_RETURN_IF_ERROR(csv.Row()
                            .Add(fp.pattern.ToShorthand())
                            .Add(static_cast<std::uint64_t>(fp.pattern.length()))
                            .Add(fp.support)
                            .Add(fp.support_ratio)
                            .Add(fp.saturated ? "1" : "0")
                            .Done());
  }
  return csv.WriteToFile(path);
}

StatusOr<std::vector<FrequentPattern>> ParsePatternsCsv(
    const std::string& text, const Alphabet& alphabet) {
  PGM_ASSIGN_OR_RETURN(auto rows, ParseCsv(text));
  if (rows.empty()) {
    return Status::Corruption("patterns CSV is empty");
  }
  if (rows.front() != PatternsCsvHeader()) {
    return Status::Corruption("unexpected patterns CSV header: " +
                              Join(rows.front(), ","));
  }
  std::vector<FrequentPattern> patterns;
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != PatternsCsvHeader().size()) {
      return Status::Corruption(
          StrFormat("row %zu has %zu fields, expected %zu", r, row.size(),
                    PatternsCsvHeader().size()));
    }
    FrequentPattern fp;
    PGM_ASSIGN_OR_RETURN(fp.pattern, Pattern::Parse(row[0], alphabet));
    PGM_ASSIGN_OR_RETURN(std::int64_t length, ParseInt64(row[1]));
    if (static_cast<std::size_t>(length) != fp.pattern.length()) {
      return Status::Corruption(
          StrFormat("row %zu: length field %lld does not match pattern '%s'",
                    r, static_cast<long long>(length), row[0].c_str()));
    }
    PGM_ASSIGN_OR_RETURN(std::int64_t support, ParseInt64(row[2]));
    if (support < 0) {
      return Status::Corruption(StrFormat("row %zu: negative support", r));
    }
    fp.support = static_cast<std::uint64_t>(support);
    PGM_ASSIGN_OR_RETURN(fp.support_ratio, ParseDouble(row[3]));
    if (row[4] == "1") {
      fp.saturated = true;
    } else if (row[4] == "0") {
      fp.saturated = false;
    } else {
      return Status::Corruption(
          StrFormat("row %zu: saturated flag must be 0 or 1", r));
    }
    patterns.push_back(std::move(fp));
  }
  return patterns;
}

StatusOr<std::vector<FrequentPattern>> LoadPatternsCsv(
    const std::string& path, const Alphabet& alphabet) {
  PGM_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  return ParsePatternsCsv(contents, alphabet);
}

}  // namespace pgm
