#ifndef PGM_ANALYSIS_MAXIMAL_H_
#define PGM_ANALYSIS_MAXIMAL_H_

#include <vector>

#include "core/miner.h"
#include "core/pattern.h"

namespace pgm {

/// Maximal-pattern condensation. A mining run over a small alphabet easily
/// reports tens of thousands of frequent patterns, most of which are
/// sub-patterns of longer ones. A frequent pattern is *maximal* (w.r.t.
/// the result set) when it is not a contiguous sub-pattern of any other
/// frequent pattern in the set — the standard condensation downstream
/// users actually read. Note that under this model the Apriori property
/// fails, so a maximal pattern does NOT imply its sub-patterns are
/// frequent; maximality is purely a reporting condensation.

/// True when `candidate` occurs as a contiguous sub-pattern of `container`
/// (the paper's sub-pattern relation restricted to the shorthand form).
bool IsSubPatternOf(const Pattern& candidate, const Pattern& container);

/// Returns the maximal patterns of `patterns`, preserving the input order.
/// O(total substring mass) using a hash set of sub-pattern keys.
std::vector<FrequentPattern> FilterMaximalPatterns(
    const std::vector<FrequentPattern>& patterns);

}  // namespace pgm

#endif  // PGM_ANALYSIS_MAXIMAL_H_
