#include "analysis/window_model.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/string_util.h"

namespace pgm {

namespace {

constexpr std::int64_t kNoMatch = std::numeric_limits<std::int64_t>::max();

Status Validate(const Sequence& sequence, const Pattern& pattern,
                const WindowModelConfig& config) {
  if (!(sequence.alphabet() == pattern.alphabet())) {
    return Status::InvalidArgument(
        "pattern and sequence use different alphabets");
  }
  if (pattern.empty()) {
    return Status::InvalidArgument("pattern must not be empty");
  }
  if (config.window_width == 0) {
    return Status::InvalidArgument("window_width must be positive");
  }
  if (!(config.min_window_fraction > 0.0) ||
      config.min_window_fraction > 1.0) {
    return Status::InvalidArgument(
        "min_window_fraction must lie in (0, 1]");
  }
  return Status::OK();
}

/// earliest_end[x] = the smallest last-offset over all matches of `pattern`
/// starting at x (kNoMatch when none). A window [b, b+w) contains a match
/// iff some x in the window has earliest_end[x] < b + w.
std::vector<std::int64_t> EarliestMatchEnd(const Sequence& sequence,
                                           const Pattern& pattern,
                                           const GapRequirement& gap) {
  const std::int64_t L = static_cast<std::int64_t>(sequence.size());
  const std::int64_t l = static_cast<std::int64_t>(pattern.length());
  std::vector<std::int64_t> end(sequence.size(), kNoMatch);
  for (std::int64_t x = 0; x < L; ++x) {
    if (sequence[x] == pattern[l - 1]) end[x] = x;
  }
  for (std::int64_t j = l - 2; j >= 0; --j) {
    std::vector<std::int64_t> next(sequence.size(), kNoMatch);
    for (std::int64_t x = 0; x < L; ++x) {
      if (sequence[x] != pattern[j]) continue;
      std::int64_t best = kNoMatch;
      const std::int64_t lo = x + gap.min_gap() + 1;
      const std::int64_t hi = std::min<std::int64_t>(L - 1, x + gap.max_gap() + 1);
      for (std::int64_t q = lo; q <= hi; ++q) {
        best = std::min(best, end[q]);
      }
      next[x] = best;
    }
    end.swap(next);
  }
  return end;
}

}  // namespace

std::int64_t NumWindows(std::size_t sequence_length,
                        const WindowModelConfig& config) {
  if (config.window_width == 0 || sequence_length < config.window_width) {
    return 0;
  }
  if (config.overlapping) {
    return static_cast<std::int64_t>(sequence_length - config.window_width) + 1;
  }
  return static_cast<std::int64_t>(sequence_length / config.window_width);
}

StatusOr<std::int64_t> CountWindowsWithOccurrence(
    const Sequence& sequence, const Pattern& pattern,
    const GapRequirement& gap, const WindowModelConfig& config) {
  PGM_RETURN_IF_ERROR(Validate(sequence, pattern, config));
  const std::int64_t total_windows = NumWindows(sequence.size(), config);
  if (total_windows == 0) return static_cast<std::int64_t>(0);

  const std::vector<std::int64_t> end =
      EarliestMatchEnd(sequence, pattern, gap);
  const std::int64_t w = static_cast<std::int64_t>(config.window_width);
  const std::int64_t L = static_cast<std::int64_t>(sequence.size());

  std::int64_t hits = 0;
  if (config.overlapping) {
    // Sliding minimum of earliest_end over each width-w window of starts.
    std::deque<std::int64_t> minima;  // indices, increasing earliest_end
    for (std::int64_t x = 0; x < L; ++x) {
      while (!minima.empty() && end[minima.back()] >= end[x]) {
        minima.pop_back();
      }
      minima.push_back(x);
      const std::int64_t b = x - w + 1;  // window [b, x]
      if (b < 0) continue;
      while (minima.front() < b) minima.pop_front();
      if (end[minima.front()] <= x) ++hits;
    }
  } else {
    for (std::int64_t b = 0; b + w <= L; b += w) {
      for (std::int64_t x = b; x < b + w; ++x) {
        if (end[x] < b + w) {
          ++hits;
          break;
        }
      }
    }
  }
  return hits;
}

StatusOr<bool> IsWindowFrequent(const Sequence& sequence,
                                const Pattern& pattern,
                                const GapRequirement& gap,
                                const WindowModelConfig& config) {
  PGM_ASSIGN_OR_RETURN(std::int64_t hits, CountWindowsWithOccurrence(
                                              sequence, pattern, gap, config));
  const std::int64_t total = NumWindows(sequence.size(), config);
  if (total == 0) return false;
  return static_cast<double>(hits) >=
         config.min_window_fraction * static_cast<double>(total);
}

}  // namespace pgm
