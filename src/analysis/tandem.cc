#include "analysis/tandem.h"

#include <algorithm>

#include "util/string_util.h"

namespace pgm {

namespace {

/// True when `period` is the smallest period of sequence[start, start+len).
bool IsMinimalPeriod(const Sequence& sequence, std::int64_t start,
                     std::int64_t len, std::int64_t period) {
  for (std::int64_t q = 1; q < period; ++q) {
    bool holds = true;
    for (std::int64_t k = start; k + q < start + len; ++k) {
      if (sequence[k] != sequence[k + q]) {
        holds = false;
        break;
      }
    }
    if (holds) return false;  // a smaller period explains the region
  }
  return true;
}

}  // namespace

StatusOr<std::vector<TandemRepeat>> FindTandemRepeats(
    const Sequence& sequence, std::int64_t max_period,
    std::int64_t min_copies) {
  if (max_period < 1) {
    return Status::InvalidArgument("max_period must be >= 1");
  }
  if (min_copies < 2) {
    return Status::InvalidArgument("min_copies must be >= 2");
  }
  const std::int64_t L = static_cast<std::int64_t>(sequence.size());
  std::vector<TandemRepeat> repeats;
  for (std::int64_t p = 1; p <= max_period; ++p) {
    std::int64_t i = 0;
    while (i + p < L) {
      if (sequence[i] != sequence[i + p]) {
        ++i;
        continue;
      }
      // Maximal run of matches S[k] == S[k+p] starting at i.
      std::int64_t j = i;
      while (j + p < L && sequence[j] == sequence[j + p]) ++j;
      const std::int64_t run = j - i;        // number of matching k's
      const std::int64_t region_len = run + p;  // periodic region length
      if (region_len >= min_copies * p &&
          IsMinimalPeriod(sequence, i, region_len, p)) {
        TandemRepeat repeat;
        repeat.start = i;
        repeat.period = p;
        repeat.length = region_len;
        repeats.push_back(repeat);
      }
      i = j + 1;
    }
  }
  std::sort(repeats.begin(), repeats.end(),
            [](const TandemRepeat& a, const TandemRepeat& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.period < b.period;
            });
  return repeats;
}

}  // namespace pgm
