#ifndef PGM_ANALYSIS_WINDOW_MODEL_H_
#define PGM_ANALYSIS_WINDOW_MODEL_H_

#include <cstdint>
#include <vector>

#include "core/gap.h"
#include "core/pattern.h"
#include "seq/sequence.h"
#include "util/status.h"

namespace pgm {

/// The related-work frequency model the paper contrasts itself against
/// (Section 2, citing Han et al. [6] and Mannila et al. [10]): divide the
/// sequence into windows and call a pattern frequent when it OCCURS (at
/// least once) in enough windows. Under window counting the Apriori
/// property holds, which makes mining easy — but, as the paper points
/// out, (a) patterns spanning a window boundary are invisible and (b) a
/// suitable window width is hard to choose. This module implements the
/// model as an honest baseline so the difference is measurable.

struct WindowModelConfig {
  /// Window width w.
  std::size_t window_width = 0;
  /// true: overlapping windows sliding by one position ([10]); false:
  /// non-overlapping tiling ([6]).
  bool overlapping = true;
  /// A pattern is frequent when it occurs in at least this fraction of
  /// windows, in (0, 1].
  double min_window_fraction = 0.0;
};

/// Number of windows the config induces over a length-L sequence.
std::int64_t NumWindows(std::size_t sequence_length,
                        const WindowModelConfig& config);

/// Counts the windows containing at least one match of `pattern` (under
/// `gap`, entirely inside the window). Fails on invalid config or
/// alphabet mismatch.
StatusOr<std::int64_t> CountWindowsWithOccurrence(
    const Sequence& sequence, const Pattern& pattern,
    const GapRequirement& gap, const WindowModelConfig& config);

/// True when `pattern` is frequent under the window model.
StatusOr<bool> IsWindowFrequent(const Sequence& sequence,
                                const Pattern& pattern,
                                const GapRequirement& gap,
                                const WindowModelConfig& config);

}  // namespace pgm

#endif  // PGM_ANALYSIS_WINDOW_MODEL_H_
