#ifndef PGM_ANALYSIS_TANDEM_H_
#define PGM_ANALYSIS_TANDEM_H_

#include <cstdint>
#include <vector>

#include "seq/sequence.h"
#include "util/status.h"

namespace pgm {

/// Tandem repeat detection — the classical periodic-pattern notion the
/// paper's Section 1 contrasts with its gapped model. A tandem repeat with
/// period p at position i satisfies S[i+j] = S[i+p+j]; a run extends as long
/// as the identity holds.
struct TandemRepeat {
  /// 0-based start of the repeat region.
  std::int64_t start = 0;
  /// Period p.
  std::int64_t period = 0;
  /// Total length of the repeat region (>= 2 * period).
  std::int64_t length = 0;

  /// Number of complete periods, length / period.
  std::int64_t copies() const { return length / period; }

  bool operator==(const TandemRepeat& other) const {
    return start == other.start && period == other.period &&
           length == other.length;
  }
};

/// Finds all maximal tandem repeats with period in [1, max_period] and at
/// least `min_copies` complete copies (min_copies >= 2). A repeat is
/// maximal when it can be extended neither left nor right, and it is
/// reported only at its smallest period (so "AAAA" is one period-1 repeat,
/// not also a period-2 one). O(L * max_period) time.
StatusOr<std::vector<TandemRepeat>> FindTandemRepeats(
    const Sequence& sequence, std::int64_t max_period,
    std::int64_t min_copies = 2);

}  // namespace pgm

#endif  // PGM_ANALYSIS_TANDEM_H_
