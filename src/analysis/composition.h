#ifndef PGM_ANALYSIS_COMPOSITION_H_
#define PGM_ANALYSIS_COMPOSITION_H_

#include <cstdint>
#include <vector>

#include "core/miner.h"
#include "core/pattern.h"
#include "util/status.h"

namespace pgm {

/// Section 7 classifies DNA patterns by how many C/G bases they contain
/// ("the bases 'A' and 'T' constitute much more to the periodic patterns
/// than 'C' and 'G'").
enum class DnaPatternClass {
  /// Only A and T characters.
  kAtOnly,
  /// Exactly one C or G character.
  kSingleCg,
  /// Two or more C or G characters.
  kMultiCg,
};

/// Number of C/G characters in `pattern`. Fails when the alphabet lacks
/// C or G.
StatusOr<std::int64_t> CountCg(const Pattern& pattern);

/// Classifies a DNA pattern per the Section 7 buckets.
StatusOr<DnaPatternClass> ClassifyDnaPattern(const Pattern& pattern);

/// Counts of frequent patterns of a fixed length per Section 7 bucket.
struct LengthClassCounts {
  std::int64_t length = 0;
  std::uint64_t at_only = 0;
  std::uint64_t single_cg = 0;
  std::uint64_t multi_cg = 0;

  std::uint64_t total() const { return at_only + single_cg + multi_cg; }
};

/// Buckets the length-`length` patterns of a mining result.
StatusOr<LengthClassCounts> BucketFrequentPatterns(const MiningResult& result,
                                                   std::int64_t length);

/// True when the pattern is a self-repetition of a shorter unit, e.g.
/// ATATATATATA (unit AT) or GTAGTAGTAGT (unit GTA) — the C. elegans
/// observation of Section 7.
bool IsSelfRepeating(const Pattern& pattern);

/// True when every character equals `c` (e.g. the paper's 16-G and 17-G
/// H. sapiens patterns).
bool IsHomopolymer(const Pattern& pattern, char c);

}  // namespace pgm

#endif  // PGM_ANALYSIS_COMPOSITION_H_
