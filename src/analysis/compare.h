#ifndef PGM_ANALYSIS_COMPARE_H_
#define PGM_ANALYSIS_COMPARE_H_

#include <string>
#include <vector>

#include "core/miner.h"
#include "corpus/executor.h"

namespace pgm {

/// Cross-sequence comparison of frequent-pattern sets — the tool behind
/// the paper's closing Section 7 observation that "there are unique
/// periodic patterns for each species".

/// One named frequent-pattern set (e.g. the mining result of one genome).
struct NamedPatternSet {
  std::string name;
  std::vector<FrequentPattern> patterns;
};

/// Comparison outcome for one set against the others.
struct SetComparison {
  std::string name;
  /// Patterns frequent in this set and in every other set.
  std::vector<Pattern> common;
  /// Patterns frequent in this set only.
  std::vector<Pattern> unique;
  std::size_t total = 0;
};

/// Compares two or more frequent-pattern sets: for each set, which of its
/// patterns are common to all sets and which are unique to it. Patterns
/// are identified by their character content (supports may differ).
/// Fails when fewer than two sets are given.
StatusOr<std::vector<SetComparison>> ComparePatternSets(
    const std::vector<NamedPatternSet>& sets);

/// Jaccard similarity |A ∩ B| / |A ∪ B| of two frequent-pattern sets
/// (1.0 for two empty sets).
double PatternSetJaccard(const std::vector<FrequentPattern>& a,
                         const std::vector<FrequentPattern>& b);

/// Adapts a corpus run for cross-record comparison: one NamedPatternSet
/// per source record (named by its record id, in record order), holding
/// the union of that record's per-fragment frequent patterns with the best
/// per-fragment support kept (the same Section 7 aggregation MineCorpus
/// applies corpus-wide), sorted by (length, symbols). Records whose every
/// fragment was skipped or failed yield an empty set rather than vanishing,
/// so the comparison stays positional.
std::vector<NamedPatternSet> PerRecordPatternSets(const CorpusResult& result);

}  // namespace pgm

#endif  // PGM_ANALYSIS_COMPARE_H_
