#ifndef PGM_ANALYSIS_SIGNIFICANCE_H_
#define PGM_ANALYSIS_SIGNIFICANCE_H_

#include <vector>

#include "core/miner.h"
#include "core/pattern.h"
#include "seq/sequence.h"
#include "util/status.h"

namespace pgm {

/// Compositional significance of frequent patterns. Under an i.i.d. null
/// model with the subject sequence's own base composition, the probability
/// that a pattern P matches a randomly picked offset sequence is simply
/// the product of its character frequencies:
///
///     E[sup(P) / N_l] = Π_j pr(P[j])
///
/// (each offset picks an independent position whose character is P[j]
/// with probability pr(P[j])). The *lift* — observed support ratio over
/// this expectation — separates patterns that are frequent merely because
/// their characters are common (the paper's "patterns of lengths one or
/// two are always frequent" effect) from genuinely periodic structure.
/// Section 7's manual argument ("AT-only length-8 patterns are frequent,
/// multi-C/G ones are not") is exactly a composition-expectation
/// computation; this module automates it per pattern.

/// Expected support ratio of `pattern` under the i.i.d. null model with
/// symbol frequencies `frequencies` (one per alphabet symbol, as produced
/// by ComputeComposition). Fails when sizes mismatch.
StatusOr<double> ExpectedSupportRatio(const Pattern& pattern,
                                      const std::vector<double>& frequencies);

/// One scored pattern.
struct ScoredPattern {
  FrequentPattern pattern;
  /// Expected support ratio under the composition null model.
  double expected_ratio = 0.0;
  /// observed ratio / expected ratio (>= 0; large = surprising).
  double lift = 0.0;
};

/// Scores every frequent pattern of `result` against the composition of
/// `subject` and returns them ordered by descending lift.
StatusOr<std::vector<ScoredPattern>> RankByLift(const MiningResult& result,
                                                const Sequence& subject);

}  // namespace pgm

#endif  // PGM_ANALYSIS_SIGNIFICANCE_H_
