#include "analysis/oscillation.h"

#include "seq/stats.h"
#include "util/string_util.h"

namespace pgm {

namespace {

Status CheckPair(const Sequence& sequence, char x, char y) {
  if (!sequence.alphabet().Contains(x) || !sequence.alphabet().Contains(y)) {
    return Status::InvalidArgument(
        StrFormat("characters '%c'/'%c' must both be in the alphabet", x, y));
  }
  return Status::OK();
}

}  // namespace

StatusOr<double> BasePairCorrelation(const Sequence& sequence, char x, char y,
                                     std::int64_t p) {
  PGM_RETURN_IF_ERROR(CheckPair(sequence, x, y));
  const std::int64_t L = static_cast<std::int64_t>(sequence.size());
  if (p < 1 || p >= L) {
    return Status::InvalidArgument(
        StrFormat("distance p must lie in [1, L-1], got %lld",
                  static_cast<long long>(p)));
  }
  const Symbol sx = sequence.alphabet().Encode(x);
  const Symbol sy = sequence.alphabet().Encode(y);
  std::uint64_t n_xy = 0;
  for (std::int64_t i = 0; i + p < L; ++i) {
    if (sequence[i] == sx && sequence[i + p] == sy) ++n_xy;
  }
  const CompositionStats stats = ComputeComposition(sequence);
  const double observed =
      static_cast<double>(n_xy) / static_cast<double>(L - p);
  const double expected = stats.frequencies[sx] * stats.frequencies[sy];
  return observed - expected;
}

StatusOr<CorrelationSpectrum> CorrelationSpectrumFor(
    const Sequence& sequence, char x, char y, std::int64_t max_distance) {
  PGM_RETURN_IF_ERROR(CheckPair(sequence, x, y));
  const std::int64_t L = static_cast<std::int64_t>(sequence.size());
  if (max_distance < 1 || max_distance >= L) {
    return Status::InvalidArgument(
        StrFormat("max_distance must lie in [1, L-1], got %lld",
                  static_cast<long long>(max_distance)));
  }
  const Symbol sx = sequence.alphabet().Encode(x);
  const Symbol sy = sequence.alphabet().Encode(y);
  const CompositionStats stats = ComputeComposition(sequence);
  const double expected = stats.frequencies[sx] * stats.frequencies[sy];

  CorrelationSpectrum spectrum;
  spectrum.x = x;
  spectrum.y = y;
  spectrum.values.reserve(max_distance);
  for (std::int64_t p = 1; p <= max_distance; ++p) {
    std::uint64_t n_xy = 0;
    for (std::int64_t i = 0; i + p < L; ++i) {
      if (sequence[i] == sx && sequence[i + p] == sy) ++n_xy;
    }
    spectrum.values.push_back(
        static_cast<double>(n_xy) / static_cast<double>(L - p) - expected);
  }
  return spectrum;
}

std::vector<std::int64_t> FindPeaks(const CorrelationSpectrum& spectrum,
                                    double threshold) {
  std::vector<std::int64_t> peaks;
  const std::vector<double>& v = spectrum.values;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] <= threshold) continue;
    const bool left_ok = (i == 0) || v[i] > v[i - 1];
    const bool right_ok = (i + 1 == v.size()) || v[i] > v[i + 1];
    if (left_ok && right_ok) {
      peaks.push_back(static_cast<std::int64_t>(i) + 1);
    }
  }
  return peaks;
}

}  // namespace pgm
