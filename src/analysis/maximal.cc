#include "analysis/maximal.h"

#include <algorithm>
#include <map>
#include <string>
#include <unordered_set>

namespace pgm {

namespace {

std::string Key(const Pattern& pattern) {
  return std::string(pattern.symbols().begin(), pattern.symbols().end());
}

}  // namespace

bool IsSubPatternOf(const Pattern& candidate, const Pattern& container) {
  if (candidate.empty() || candidate.length() > container.length()) {
    return false;
  }
  const std::string needle = Key(candidate);
  const std::string haystack = Key(container);
  return haystack.find(needle) != std::string::npos;
}

std::vector<FrequentPattern> FilterMaximalPatterns(
    const std::vector<FrequentPattern>& patterns) {
  // Group indices by length, longest first, then check each pattern
  // against the set of all contiguous sub-pattern keys of strictly longer
  // patterns.
  std::map<std::size_t, std::vector<std::size_t>, std::greater<>> by_length;
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    by_length[patterns[i].pattern.length()].push_back(i);
  }

  std::unordered_set<std::string> covered;
  std::vector<bool> maximal(patterns.size(), false);
  for (const auto& [length, indices] : by_length) {
    // Check against longer patterns only (a pattern cannot be a proper
    // sub-pattern of an equal-length one).
    for (std::size_t i : indices) {
      maximal[i] = covered.find(Key(patterns[i].pattern)) == covered.end();
    }
    // Now publish this level's substrings for the shorter levels.
    for (std::size_t i : indices) {
      const std::string key = Key(patterns[i].pattern);
      for (std::size_t sub_len = 1; sub_len <= key.size(); ++sub_len) {
        for (std::size_t start = 0; start + sub_len <= key.size(); ++start) {
          covered.insert(key.substr(start, sub_len));
        }
      }
    }
  }

  std::vector<FrequentPattern> result;
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    if (maximal[i]) result.push_back(patterns[i]);
  }
  return result;
}

}  // namespace pgm
