#include "analysis/significance.h"

#include <algorithm>
#include <limits>

#include "seq/stats.h"
#include "util/string_util.h"

namespace pgm {

StatusOr<double> ExpectedSupportRatio(const Pattern& pattern,
                                      const std::vector<double>& frequencies) {
  if (pattern.empty()) {
    return Status::InvalidArgument("pattern must not be empty");
  }
  if (frequencies.size() != pattern.alphabet().size()) {
    return Status::InvalidArgument(
        StrFormat("expected %zu frequencies (one per symbol), got %zu",
                  pattern.alphabet().size(), frequencies.size()));
  }
  double expected = 1.0;
  for (Symbol s : pattern.symbols()) {
    const double p = frequencies[s];
    if (p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("frequencies must lie in [0, 1]");
    }
    expected *= p;
  }
  return expected;
}

StatusOr<std::vector<ScoredPattern>> RankByLift(const MiningResult& result,
                                                const Sequence& subject) {
  if (subject.empty()) {
    return Status::InvalidArgument("subject sequence must not be empty");
  }
  const CompositionStats composition = ComputeComposition(subject);
  std::vector<ScoredPattern> scored;
  scored.reserve(result.patterns.size());
  for (const FrequentPattern& fp : result.patterns) {
    if (!(fp.pattern.alphabet() == subject.alphabet())) {
      return Status::InvalidArgument(
          "pattern and subject use different alphabets");
    }
    ScoredPattern entry;
    entry.pattern = fp;
    PGM_ASSIGN_OR_RETURN(
        entry.expected_ratio,
        ExpectedSupportRatio(fp.pattern, composition.frequencies));
    entry.lift = entry.expected_ratio > 0.0
                     ? fp.support_ratio / entry.expected_ratio
                     : std::numeric_limits<double>::infinity();
    scored.push_back(std::move(entry));
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredPattern& a, const ScoredPattern& b) {
              if (a.lift != b.lift) return a.lift > b.lift;
              return a.pattern.pattern.symbols() < b.pattern.pattern.symbols();
            });
  return scored;
}

}  // namespace pgm
