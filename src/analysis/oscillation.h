#ifndef PGM_ANALYSIS_OSCILLATION_H_
#define PGM_ANALYSIS_OSCILLATION_H_

#include <cstdint>
#include <vector>

#include "seq/sequence.h"
#include "util/status.h"

namespace pgm {

/// Base-pair oscillation analysis from the paper's introduction: the
/// correlation between base X and base Y at distance p is
///
///     corr_XY(p) = n_XY(p) / (L - p)  -  pr(X) * pr(Y)
///
/// where n_XY(p) counts positions i with S[i] = X and S[i+p] = Y. Periodic
/// genomes show peaks at the DNA helical pitch (10-11 bp) and multiples.

/// corr_XY(p) for a single distance. Fails when p < 1 or p >= L, or when a
/// character is outside the alphabet.
StatusOr<double> BasePairCorrelation(const Sequence& sequence, char x, char y,
                                     std::int64_t p);

/// The correlation spectrum over p = 1..max_distance.
struct CorrelationSpectrum {
  char x = 0;
  char y = 0;
  /// values[p-1] = corr_XY(p).
  std::vector<double> values;
};

StatusOr<CorrelationSpectrum> CorrelationSpectrumFor(const Sequence& sequence,
                                                     char x, char y,
                                                     std::int64_t max_distance);

/// Local maxima of a spectrum that exceed `threshold`; distances (1-based)
/// returned in increasing order. A point is a peak when strictly greater
/// than both neighbors (boundaries compare one-sided).
std::vector<std::int64_t> FindPeaks(const CorrelationSpectrum& spectrum,
                                    double threshold);

}  // namespace pgm

#endif  // PGM_ANALYSIS_OSCILLATION_H_
