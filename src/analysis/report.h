#ifndef PGM_ANALYSIS_REPORT_H_
#define PGM_ANALYSIS_REPORT_H_

#include <string>
#include <vector>

#include "core/gap.h"
#include "core/miner.h"
#include "seq/alphabet.h"
#include "util/status.h"

namespace pgm {

/// Rendering and persistence of mining results — the glue between a
/// MiningResult and files/terminals.

struct ReportOptions {
  /// Patterns shown in the rendered report (0 = all). Ordered longest
  /// first, support ratio as tiebreak.
  std::size_t top = 25;
  /// Include the per-level candidate table.
  bool include_level_stats = true;
  /// Condense to maximal patterns before rendering.
  bool maximal_only = false;
};

/// Renders a human-readable report of a mining run.
std::string FormatMiningReport(const MiningResult& result,
                               const GapRequirement& gap,
                               const ReportOptions& options = {});

/// Serializes all frequent patterns as CSV text with the header
/// `pattern,length,support,ratio,saturated`.
std::string PatternsToCsv(const MiningResult& result);

/// Writes PatternsToCsv to `path`.
Status SavePatternsCsv(const MiningResult& result, const std::string& path);

/// Loads a patterns CSV (as produced by SavePatternsCsv) back into
/// FrequentPattern records over `alphabet`. Validates the header, pattern
/// characters, and numeric fields.
StatusOr<std::vector<FrequentPattern>> LoadPatternsCsv(
    const std::string& path, const Alphabet& alphabet);

/// Parses patterns CSV text (the in-memory counterpart of
/// LoadPatternsCsv).
StatusOr<std::vector<FrequentPattern>> ParsePatternsCsv(
    const std::string& text, const Alphabet& alphabet);

}  // namespace pgm

#endif  // PGM_ANALYSIS_REPORT_H_
