#ifndef PGM_ANALYSIS_CASE_STUDY_H_
#define PGM_ANALYSIS_CASE_STUDY_H_

#include <cstdint>
#include <vector>

#include "analysis/composition.h"
#include "core/miner.h"
#include "seq/sequence.h"
#include "util/status.h"

namespace pgm {

/// Configuration of a Section 7 style case study: fragment a genome, mine
/// each fragment with MPPm, and aggregate composition statistics of the
/// frequent patterns.
struct CaseStudyConfig {
  /// Mining parameters per fragment (paper: gap [10,12], ρs = 0.006%).
  MinerConfig miner;
  /// Fragment size (paper: 100 kb).
  std::size_t fragment_length = 100'000;
  /// Pattern length whose composition buckets are reported (paper: 8).
  std::int64_t report_length = 8;
  /// Optional cap on the number of fragments mined (0 = all).
  std::size_t max_fragments = 0;
};

/// Per-fragment findings.
struct FragmentReport {
  std::size_t index = 0;
  /// Composition buckets of the frequent report_length patterns.
  LengthClassCounts buckets;
  /// Length of the longest frequent pattern in the fragment.
  std::int64_t longest = 0;
  /// Total number of frequent patterns.
  std::uint64_t num_frequent = 0;
  /// Length of the longest frequent all-G pattern (0 when none).
  std::int64_t longest_poly_g = 0;
  /// Frequent patterns (length >= 4) that repeat a shorter unit, e.g.
  /// ATATATATATA or GTAGTAGTAGT.
  std::uint64_t num_self_repeating = 0;
};

/// Aggregated Section 7 report.
struct CaseStudyReport {
  std::vector<FragmentReport> fragments;
  /// Union of frequent patterns across fragments (deduplicated by content;
  /// the entry keeps the highest support seen). Feeds cross-species
  /// comparison (analysis/compare.h).
  std::vector<FrequentPattern> frequent_union;
  /// Mean bucket sizes across fragments at report_length.
  double avg_at_only = 0.0;
  double avg_single_cg = 0.0;
  double avg_multi_cg = 0.0;
  /// Fragments in which *all* 2^report_length AT-only patterns are frequent.
  std::size_t fragments_with_all_at = 0;
  /// Fragments with at least one frequent poly-G pattern of report_length.
  std::size_t fragments_with_poly_g = 0;
  std::int64_t longest_poly_g_overall = 0;
  std::int64_t longest_overall = 0;
};

/// Fragments `genome`, mines every fragment with MPPm under
/// `config.miner`, and aggregates. Fragments shorter than fragment_length
/// (the tail) are skipped, mirroring the paper.
StatusOr<CaseStudyReport> RunCaseStudy(const Sequence& genome,
                                       const CaseStudyConfig& config);

}  // namespace pgm

#endif  // PGM_ANALYSIS_CASE_STUDY_H_
