#include "analysis/compare.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>

namespace pgm {

namespace {

std::set<std::string> Keys(const std::vector<FrequentPattern>& patterns) {
  std::set<std::string> keys;
  for (const FrequentPattern& fp : patterns) {
    keys.insert(
        std::string(fp.pattern.symbols().begin(), fp.pattern.symbols().end()));
  }
  return keys;
}

}  // namespace

StatusOr<std::vector<SetComparison>> ComparePatternSets(
    const std::vector<NamedPatternSet>& sets) {
  if (sets.size() < 2) {
    return Status::InvalidArgument(
        "pattern-set comparison needs at least two sets");
  }
  std::vector<std::set<std::string>> keys;
  keys.reserve(sets.size());
  for (const NamedPatternSet& set : sets) keys.push_back(Keys(set.patterns));

  std::vector<SetComparison> comparisons;
  for (std::size_t i = 0; i < sets.size(); ++i) {
    SetComparison comparison;
    comparison.name = sets[i].name;
    comparison.total = keys[i].size();
    // Deduplicate by iterating the key set, not the (possibly duplicated)
    // pattern list; recover a Pattern from each contributing entry.
    std::set<std::string> seen;
    for (const FrequentPattern& fp : sets[i].patterns) {
      const std::string key(fp.pattern.symbols().begin(),
                            fp.pattern.symbols().end());
      if (!seen.insert(key).second) continue;
      bool in_all = true;
      bool in_any_other = false;
      for (std::size_t j = 0; j < sets.size(); ++j) {
        if (j == i) continue;
        const bool present = keys[j].count(key) > 0;
        in_all = in_all && present;
        in_any_other = in_any_other || present;
      }
      if (in_all) comparison.common.push_back(fp.pattern);
      if (!in_any_other) comparison.unique.push_back(fp.pattern);
    }
    comparisons.push_back(std::move(comparison));
  }
  return comparisons;
}

double PatternSetJaccard(const std::vector<FrequentPattern>& a,
                         const std::vector<FrequentPattern>& b) {
  const std::set<std::string> keys_a = Keys(a);
  const std::set<std::string> keys_b = Keys(b);
  if (keys_a.empty() && keys_b.empty()) return 1.0;
  std::size_t intersection = 0;
  for (const std::string& key : keys_a) {
    if (keys_b.count(key) > 0) ++intersection;
  }
  const std::size_t union_size = keys_a.size() + keys_b.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(union_size);
}

std::vector<NamedPatternSet> PerRecordPatternSets(const CorpusResult& result) {
  std::vector<NamedPatternSet> sets;
  // Fragments arrive in plan-ordinal order, so a record's fragments are
  // contiguous and record order is preserved by appending on index change.
  std::map<std::vector<Symbol>, FrequentPattern>* current = nullptr;
  std::map<std::vector<Symbol>, FrequentPattern> best;
  std::size_t current_record = 0;
  auto flush = [&] {
    if (current == nullptr) return;
    for (auto& [symbols, fp] : best) {
      sets.back().patterns.push_back(std::move(fp));
    }
    best.clear();
  };
  for (const FragmentResult& fragment : result.fragments) {
    if (current == nullptr || fragment.record_index != current_record) {
      flush();
      sets.push_back(NamedPatternSet{fragment.record_id, {}});
      current_record = fragment.record_index;
      current = &best;
    }
    if (!fragment.mined || !fragment.status.ok()) continue;
    for (const FrequentPattern& fp : fragment.result.patterns) {
      auto [it, inserted] = best.emplace(fp.pattern.symbols(), fp);
      // Keep the best per-fragment support; ties keep the earliest
      // fragment's entry, matching the corpus-wide union fold.
      if (!inserted && fp.support > it->second.support) it->second = fp;
    }
  }
  flush();
  // std::map iterates its keys in order, so each set comes out sorted by
  // (symbols); re-sort to the (length, symbols) order MiningResult uses.
  for (NamedPatternSet& set : sets) {
    std::sort(set.patterns.begin(), set.patterns.end(),
              [](const FrequentPattern& a, const FrequentPattern& b) {
                if (a.pattern.length() != b.pattern.length()) {
                  return a.pattern.length() < b.pattern.length();
                }
                return a.pattern.symbols() < b.pattern.symbols();
              });
  }
  return sets;
}

}  // namespace pgm
