// Quickstart: mine periodic patterns with a gap requirement from a short
// DNA string and print everything the library reports about them.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart

#include <cstdio>

#include "core/miner.h"
#include "core/verifier.h"
#include "seq/sequence.h"
#include "util/status.h"

int main() {
  // A subject sequence with an obvious planted structure: 'A' roughly every
  // 3 positions, so A..A..A patterns under gap [1,3] occur often.
  const char* text =
      "ACGTAGCTAAGCTAGCATCGAATCGTAGCAATGCATCGAATGCCAGTAAGCTAGCAATCG"
      "TAGCAATGCATCGAATGCCAGTAAGCTAGCAATCGAACGTAGCTAAGCTAGCATCGAATC";

  pgm::StatusOr<pgm::Sequence> sequence =
      pgm::Sequence::FromString(text, pgm::Alphabet::Dna());
  if (!sequence.ok()) {
    std::fprintf(stderr, "bad sequence: %s\n",
                 sequence.status().ToString().c_str());
    return 1;
  }

  // Mining parameters: gap requirement [1,3] between successive pattern
  // characters, support-ratio threshold 2%, patterns of length >= 2.
  pgm::MinerConfig config;
  config.min_gap = 1;
  config.max_gap = 3;
  config.min_support_ratio = 0.02;
  config.start_length = 2;

  pgm::StatusOr<pgm::MiningResult> result = pgm::MineMppm(*sequence, config);
  if (!result.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  pgm::GapRequirement gap =
      *pgm::GapRequirement::Create(config.min_gap, config.max_gap);
  std::printf("subject length: %zu, gap %s, threshold %.2f%%\n",
              sequence->size(), gap.ToString().c_str(),
              config.min_support_ratio * 100.0);
  std::printf("MPPm estimated n = %lld (e_m = %llu); %zu frequent patterns\n\n",
              static_cast<long long>(result->estimated_n),
              static_cast<unsigned long long>(result->em),
              result->patterns.size());

  std::printf("%-16s %-28s %10s %10s\n", "pattern", "explicit form", "support",
              "ratio");
  for (const pgm::FrequentPattern& fp : result->patterns) {
    std::printf("%-16s %-28s %10llu %9.3f%%\n",
                fp.pattern.ToShorthand().c_str(),
                fp.pattern.ToString(gap).c_str(),
                static_cast<unsigned long long>(fp.support),
                fp.support_ratio * 100.0);
  }

  // Cross-check one pattern's support against the independent verifier and
  // show a few concrete matches.
  if (!result->patterns.empty()) {
    const pgm::FrequentPattern& first = result->patterns.front();
    pgm::StatusOr<pgm::SupportInfo> direct =
        pgm::CountSupport(*sequence, first.pattern, gap);
    std::printf("\nverifier cross-check for %s: %llu (miner said %llu)\n",
                first.pattern.ToShorthand().c_str(),
                static_cast<unsigned long long>(direct->count),
                static_cast<unsigned long long>(first.support));
    auto matches = pgm::EnumerateMatches(*sequence, first.pattern, gap, 3);
    for (const auto& offsets : matches) {
      std::printf("  match at offsets:");
      for (long long o : offsets) std::printf(" %lld", o);
      std::printf("\n");
    }
  }
  return 0;
}
