// The adaptive-n strategy sketched at the end of the paper's Section 6:
// when the user has no idea how long the longest frequent patterns are,
// run MPP with a deliberately small n (cheap), raise n to the longest
// pattern actually found, and repeat until stable. This example shows the
// refinement converging and compares its cost with the worst case and with
// MPPm's automatic estimate.

#include <cstdio>

#include "core/miner.h"
#include "datagen/presets.h"
#include "seq/fragmenter.h"
#include "util/flags.h"
#include "util/random.h"

namespace {

int RunExample(int argc, char** argv) {
  std::int64_t length = 2000;
  std::int64_t initial_n = 8;
  std::int64_t seed = 19;
  pgm::FlagSet flags("adaptive-n mining on an AX829174 surrogate segment");
  flags.AddInt64("length", &length, "segment length L");
  flags.AddInt64("initial_n", &initial_n, "starting estimate n");
  flags.AddInt64("seed", &seed, "segment selection seed");
  pgm::Status parse_status = flags.Parse(argc, argv);
  if (!parse_status.ok()) {
    std::printf("%s\n", parse_status.message().c_str());
    return parse_status.code() == pgm::StatusCode::kNotFound ? 0 : 2;
  }

  pgm::StatusOr<pgm::Sequence> genome = pgm::MakeAx829174Surrogate();
  if (!genome.ok()) {
    std::fprintf(stderr, "%s\n", genome.status().ToString().c_str());
    return 1;
  }
  pgm::Rng rng(static_cast<std::uint64_t>(seed));
  pgm::StatusOr<pgm::Sequence> segment =
      pgm::RandomSegment(*genome, static_cast<std::size_t>(length), rng);
  if (!segment.ok()) {
    std::fprintf(stderr, "%s\n", segment.status().ToString().c_str());
    return 1;
  }

  pgm::MinerConfig config;
  config.min_gap = 9;
  config.max_gap = 12;
  config.min_support_ratio = 0.003 / 100.0;
  config.start_length = 3;
  config.em_order = 10;

  // Manual refinement loop with per-round reporting (MineAdaptive wraps
  // exactly this; we unroll it here so each round is visible).
  std::printf("manual refinement (L=%lld, gap [9,12], rho_s=0.003%%):\n",
              static_cast<long long>(length));
  std::int64_t n = initial_n;
  double refinement_seconds = 0.0;
  for (int round = 1;; ++round) {
    pgm::MinerConfig round_config = config;
    round_config.user_n = n;
    pgm::StatusOr<pgm::MiningResult> result =
        pgm::MineMpp(*segment, round_config);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    refinement_seconds += result->total_seconds;
    std::printf(
        "  round %d: n=%-3lld -> %zu patterns, longest %lld, %.4g s\n", round,
        static_cast<long long>(n), result->patterns.size(),
        static_cast<long long>(result->longest_frequent_length),
        result->total_seconds);
    if (result->longest_frequent_length <= n || round >= 16) break;
    n = result->longest_frequent_length;
  }
  std::printf("  total: %.4g s\n\n", refinement_seconds);

  // Comparison points.
  pgm::MinerConfig worst = config;
  worst.user_n = -1;
  pgm::StatusOr<pgm::MiningResult> worst_result = pgm::MineMpp(*segment, worst);
  pgm::StatusOr<pgm::MiningResult> mppm_result = pgm::MineMppm(*segment, config);
  if (!worst_result.ok() || !mppm_result.ok()) {
    std::fprintf(stderr, "comparison run failed\n");
    return 1;
  }
  std::printf("MPP worst case (n=l1=%lld): %.4g s, %zu patterns\n",
              static_cast<long long>(worst_result->n_used),
              worst_result->total_seconds, worst_result->patterns.size());
  std::printf("MPPm (auto n=%lld, e_m=%llu):  %.4g s, %zu patterns\n",
              static_cast<long long>(mppm_result->estimated_n),
              static_cast<unsigned long long>(mppm_result->em),
              mppm_result->total_seconds, mppm_result->patterns.size());
  std::printf(
      "\nAll three strategies return the same frequent-pattern set; they "
      "differ only in how much candidate work the estimate of n avoids.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return RunExample(argc, argv); }
