// Base-pair oscillation analysis (the paper's introduction): compute the
// correlation corr_XY(p) = n_XY(p)/(L-p) - pr(X)pr(Y) across distances and
// find the periodic peaks, then show how the peak period feeds the gap
// requirement of a mining run.
//
// The AX829174 surrogate carries AT-rich regions with ~10-12 bp pattern
// periodicity, so the AA/AT spectra show structure where a uniform random
// sequence stays flat.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "analysis/oscillation.h"
#include "core/miner.h"
#include "datagen/presets.h"
#include "util/flags.h"

namespace {

void PrintSpectrum(const pgm::CorrelationSpectrum& spectrum) {
  // Render each distance as a signed bar chart line.
  double max_abs = 1e-12;
  for (double v : spectrum.values) max_abs = std::max(max_abs, std::abs(v));
  for (std::size_t i = 0; i < spectrum.values.size(); ++i) {
    const double v = spectrum.values[i];
    const int bar = static_cast<int>(std::abs(v) / max_abs * 40);
    std::printf("  p=%2zu  %+9.5f  %s%s\n", i + 1, v, v < 0 ? "-" : "+",
                std::string(static_cast<std::size_t>(bar), '#').c_str());
  }
}

int RunExample(int argc, char** argv) {
  std::int64_t max_distance = 24;
  pgm::FlagSet flags("base-pair oscillation scan of the AX829174 surrogate");
  flags.AddInt64("max_distance", &max_distance, "largest distance p to scan");
  pgm::Status parse_status = flags.Parse(argc, argv);
  if (!parse_status.ok()) {
    std::printf("%s\n", parse_status.message().c_str());
    return parse_status.code() == pgm::StatusCode::kNotFound ? 0 : 2;
  }

  pgm::StatusOr<pgm::Sequence> genome = pgm::MakeAx829174Surrogate();
  if (!genome.ok()) {
    std::fprintf(stderr, "%s\n", genome.status().ToString().c_str());
    return 1;
  }

  for (auto [x, y] : {std::pair{'A', 'A'}, {'A', 'T'}, {'G', 'C'}}) {
    pgm::StatusOr<pgm::CorrelationSpectrum> spectrum =
        pgm::CorrelationSpectrumFor(*genome, x, y, max_distance);
    if (!spectrum.ok()) {
      std::fprintf(stderr, "%s\n", spectrum.status().ToString().c_str());
      return 1;
    }
    std::printf("corr_%c%c(p), p = 1..%lld:\n", x, y,
                static_cast<long long>(max_distance));
    PrintSpectrum(*spectrum);
    auto peaks = pgm::FindPeaks(*spectrum, 0.0);
    std::printf("  peaks above 0:");
    for (std::int64_t p : peaks) std::printf(" %lld", static_cast<long long>(p));
    std::printf("\n\n");
  }

  // Use the observed periodicity to parameterize a mining run, as the
  // paper does: a helical turn of 10-11 bp with flexibility suggests a gap
  // requirement around [9,12].
  std::printf(
      "mining with gap [9,12] derived from the observed ~10-11 bp "
      "periodicity...\n");
  pgm::MinerConfig config;
  config.min_gap = 9;
  config.max_gap = 12;
  config.min_support_ratio = 0.003 / 100.0;
  config.start_length = 3;
  config.em_order = 8;
  pgm::StatusOr<pgm::MiningResult> result =
      pgm::MineMppm(genome->Subsequence(0, 2000), config);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "found %zu frequent periodic patterns (longest %lld) in the first "
      "2 kb — e.g.",
      result->patterns.size(),
      static_cast<long long>(result->longest_frequent_length));
  int shown = 0;
  for (auto it = result->patterns.rbegin();
       it != result->patterns.rend() && shown < 3; ++it, ++shown) {
    std::printf(" %s", it->pattern.ToShorthand().c_str());
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return RunExample(argc, argv); }
