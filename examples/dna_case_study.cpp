// Section 7 style case study on a synthetic bacterial genome: fragment the
// genome, mine each fragment with MPPm, and report how the frequent
// patterns split by composition — reproducing the paper's observation that
// A/T bases dominate the periodic patterns of AT-rich genomes.
//
// Usage:
//   example_dna_case_study [--genome_kb 60] [--fragment_kb 20]
//                          [--rho_percent 0.002] [--seed 7]
//
// Defaults are scaled down from the paper's (100 kb fragments at 0.006%)
// so the example finishes in a few seconds.

#include <cstdio>

#include "analysis/case_study.h"
#include "datagen/presets.h"
#include "util/flags.h"

namespace {

int RunExample(int argc, char** argv) {
  std::int64_t genome_kb = 60;
  std::int64_t fragment_kb = 20;
  double rho_percent = 0.002;
  std::int64_t seed = 7;
  pgm::FlagSet flags("Section 7 style DNA case study on a synthetic genome");
  flags.AddInt64("genome_kb", &genome_kb, "genome length in kilobases");
  flags.AddInt64("fragment_kb", &fragment_kb, "fragment size in kilobases");
  flags.AddDouble("rho_percent", &rho_percent,
                  "support threshold as a percentage");
  flags.AddInt64("seed", &seed, "genome generation seed");
  pgm::Status parse_status = flags.Parse(argc, argv);
  if (!parse_status.ok()) {
    std::printf("%s\n", parse_status.message().c_str());
    return parse_status.code() == pgm::StatusCode::kNotFound ? 0 : 2;
  }

  pgm::StatusOr<pgm::Sequence> genome = pgm::MakeBacteriaLikeGenome(
      static_cast<std::size_t>(genome_kb) * 1000,
      static_cast<std::uint64_t>(seed));
  if (!genome.ok()) {
    std::fprintf(stderr, "%s\n", genome.status().ToString().c_str());
    return 1;
  }

  pgm::CaseStudyConfig config;
  config.miner.min_gap = 10;  // one DNA helical turn is ~10-11 bp
  config.miner.max_gap = 12;
  config.miner.min_support_ratio = rho_percent / 100.0;
  config.miner.start_length = 3;
  config.miner.em_order = 6;
  config.fragment_length = static_cast<std::size_t>(fragment_kb) * 1000;
  config.report_length = 8;

  std::printf(
      "mining %lld kb bacteria-like genome in %lld kb fragments "
      "(gap [10,12], rho_s = %.4f%%)...\n\n",
      static_cast<long long>(genome_kb), static_cast<long long>(fragment_kb),
      rho_percent);

  pgm::StatusOr<pgm::CaseStudyReport> report =
      pgm::RunCaseStudy(*genome, config);
  if (!report.ok()) {
    std::fprintf(stderr, "case study failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("%-8s %12s %12s %12s %10s %10s\n", "fragment", "AT-only(8)",
              "one-CG(8)", "multi-CG(8)", "longest", "total");
  for (const pgm::FragmentReport& fragment : report->fragments) {
    std::printf("%-8zu %12llu %12llu %12llu %10lld %10llu\n", fragment.index,
                static_cast<unsigned long long>(fragment.buckets.at_only),
                static_cast<unsigned long long>(fragment.buckets.single_cg),
                static_cast<unsigned long long>(fragment.buckets.multi_cg),
                static_cast<long long>(fragment.longest),
                static_cast<unsigned long long>(fragment.num_frequent));
  }
  std::printf(
      "\naverages: AT-only %.1f of 256, one-CG %.1f of 2048, multi-CG %.1f "
      "of 63232\n"
      "fragments where ALL 256 AT-only length-8 patterns are frequent: %zu "
      "of %zu\n",
      report->avg_at_only, report->avg_single_cg, report->avg_multi_cg,
      report->fragments_with_all_at, report->fragments.size());
  std::printf(
      "\nThe A/T dominance mirrors the paper's finding on H. influenzae, "
      "H. pylori, M. genitalium and M. pneumoniae.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return RunExample(argc, argv); }
