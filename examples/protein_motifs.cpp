// The mining model is alphabet-generic (Section 3): this example runs it
// over the 20-letter amino-acid alphabet to look for periodic residue
// motifs, mimicking the paper's motivating example of the porcine
// ribonuclease inhibitor, whose leucine-rich repeats place hydrophobic
// residues at a period of ~28-29 positions.
//
// We synthesize a protein with leucine-rich repeat structure (an 'L' every
// ~7 residues inside repeat blocks — the classic LxxLxLxx motif density)
// and mine with a gap requirement of [5,7].

#include <algorithm>
#include <cstdio>
#include <string>

#include "core/miner.h"
#include "core/verifier.h"
#include "datagen/generators.h"
#include "util/flags.h"
#include "util/random.h"

namespace {

// Builds a synthetic leucine-rich-repeat protein: background residues are
// uniform over the 20 amino acids; inside repeat blocks every 7th residue
// is forced to 'L' (with a little wobble), the way LRR proteins space
// their leucines.
pgm::StatusOr<pgm::Sequence> MakeLrrProtein(std::size_t length,
                                            pgm::Rng& rng) {
  PGM_ASSIGN_OR_RETURN(
      pgm::Sequence base,
      pgm::UniformRandomSequence(length, pgm::Alphabet::Protein(), rng));
  std::vector<pgm::Symbol> residues = base.symbols();
  const pgm::Symbol leucine = pgm::Alphabet::Protein().Encode('L');
  // Repeat blocks of ~120 residues separated by ~80 unstructured ones.
  for (std::size_t block_start = 40; block_start + 120 < length;
       block_start += 200) {
    for (std::size_t i = block_start; i < block_start + 120; i += 7) {
      std::size_t pos = i + rng.UniformInt(2);  // wobble of one residue
      if (pos < length) residues[pos] = leucine;
    }
  }
  return pgm::Sequence::FromSymbols(std::move(residues),
                                    pgm::Alphabet::Protein());
}

int RunExample(int argc, char** argv) {
  std::int64_t length = 1500;
  double rho_percent = 0.02;
  std::int64_t seed = 23;
  pgm::FlagSet flags("periodic motif mining over the protein alphabet");
  flags.AddInt64("length", &length, "protein length in residues");
  flags.AddDouble("rho_percent", &rho_percent,
                  "support threshold as a percentage");
  flags.AddInt64("seed", &seed, "generation seed");
  pgm::Status parse_status = flags.Parse(argc, argv);
  if (!parse_status.ok()) {
    std::printf("%s\n", parse_status.message().c_str());
    return parse_status.code() == pgm::StatusCode::kNotFound ? 0 : 2;
  }

  pgm::Rng rng(static_cast<std::uint64_t>(seed));
  pgm::StatusOr<pgm::Sequence> protein =
      MakeLrrProtein(static_cast<std::size_t>(length), rng);
  if (!protein.ok()) {
    std::fprintf(stderr, "%s\n", protein.status().ToString().c_str());
    return 1;
  }

  pgm::MinerConfig config;
  config.min_gap = 5;  // leucines sit ~6-8 residues apart in LRR blocks
  config.max_gap = 7;
  config.min_support_ratio = rho_percent / 100.0;
  config.start_length = 2;
  config.em_order = 4;

  pgm::StatusOr<pgm::MiningResult> result = pgm::MineMppm(*protein, config);
  if (!result.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  pgm::GapRequirement gap =
      *pgm::GapRequirement::Create(config.min_gap, config.max_gap);
  std::printf(
      "mined %lld-residue synthetic LRR protein, gap %s, rho_s=%.3f%%: "
      "%zu frequent motifs, longest %lld\n\n",
      static_cast<long long>(length), gap.ToString().c_str(), rho_percent,
      result->patterns.size(),
      static_cast<long long>(result->longest_frequent_length));

  // Rank motifs by support ratio and show the top ones; the all-leucine
  // motifs should dominate.
  std::vector<const pgm::FrequentPattern*> ranked;
  for (const pgm::FrequentPattern& fp : result->patterns) {
    if (fp.pattern.length() >= 3) ranked.push_back(&fp);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const pgm::FrequentPattern* a, const pgm::FrequentPattern* b) {
              return a->support_ratio > b->support_ratio;
            });
  std::printf("%-12s %-36s %10s %10s\n", "motif", "explicit", "support",
              "ratio");
  for (std::size_t i = 0; i < ranked.size() && i < 10; ++i) {
    std::printf("%-12s %-36s %10llu %9.4f%%\n",
                ranked[i]->pattern.ToShorthand().c_str(),
                ranked[i]->pattern.ToString(gap).c_str(),
                static_cast<unsigned long long>(ranked[i]->support),
                ranked[i]->support_ratio * 100.0);
  }

  // Count how many of the frequent length-3 motifs are leucine-pure.
  std::size_t leucine_pure = 0, length3 = 0;
  const pgm::Symbol leucine = pgm::Alphabet::Protein().Encode('L');
  for (const pgm::FrequentPattern& fp : result->patterns) {
    if (fp.pattern.length() != 3) continue;
    ++length3;
    bool pure = true;
    for (pgm::Symbol s : fp.pattern.symbols()) pure = pure && s == leucine;
    if (pure) ++leucine_pure;
  }
  std::printf(
      "\n%zu frequent length-3 motifs; the periodic leucine scaffold LLL "
      "%s among them — the gapped model recovers the LRR period without "
      "alignment.\n",
      length3, leucine_pure > 0 ? "is" : "is NOT");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return RunExample(argc, argv); }
