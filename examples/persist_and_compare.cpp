// A downstream workflow: mine two related genomes, persist the results as
// CSV, reload them, and compare the pattern sets — which patterns are
// shared, which are species-specific, and which are most surprising given
// each genome's composition (lift).

#include <cstdio>
#include <string>

#include "analysis/compare.h"
#include "analysis/report.h"
#include "analysis/significance.h"
#include "core/miner.h"
#include "datagen/presets.h"
#include "util/flags.h"

namespace {

int RunExample(int argc, char** argv) {
  std::int64_t length = 30'000;
  std::string out_dir = "/tmp";
  pgm::FlagSet flags("mine two genomes, persist, reload, compare");
  flags.AddInt64("length", &length, "genome length per species");
  flags.AddString("out_dir", &out_dir, "directory for the CSV files");
  pgm::Status parse_status = flags.Parse(argc, argv);
  if (!parse_status.ok()) {
    std::printf("%s\n", parse_status.message().c_str());
    return parse_status.code() == pgm::StatusCode::kNotFound ? 0 : 2;
  }

  pgm::MinerConfig config;
  config.min_gap = 10;
  config.max_gap = 12;
  config.min_support_ratio = 0.0005 / 100.0;
  config.start_length = 4;
  config.em_order = 6;

  struct Mined {
    std::string name;
    pgm::Sequence genome;
    pgm::MiningResult result;
  };
  std::vector<Mined> runs;
  for (const auto& [name, maker] :
       {std::pair<std::string,
                  pgm::StatusOr<pgm::Sequence> (*)(std::size_t, std::uint64_t)>{
            "bacteria", &pgm::MakeBacteriaLikeGenome},
        {"eukaryote", &pgm::MakeEukaryoteLikeGenome}}) {
    pgm::StatusOr<pgm::Sequence> genome =
        maker(static_cast<std::size_t>(length), 31);
    if (!genome.ok()) {
      std::fprintf(stderr, "%s\n", genome.status().ToString().c_str());
      return 1;
    }
    pgm::StatusOr<pgm::MiningResult> result = pgm::MineMppm(*genome, config);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    // Persist and immediately reload — the round trip a pipeline would do
    // between a mining job and an analysis job.
    const std::string path = out_dir + "/patterns_" + name + ".csv";
    if (pgm::Status s = pgm::SavePatternsCsv(*result, path); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    pgm::StatusOr<std::vector<pgm::FrequentPattern>> reloaded =
        pgm::LoadPatternsCsv(path, pgm::Alphabet::Dna());
    if (!reloaded.ok()) {
      std::fprintf(stderr, "%s\n", reloaded.status().ToString().c_str());
      return 1;
    }
    std::printf("%s: mined %zu patterns, wrote %s, reloaded %zu\n",
                name.c_str(), result->patterns.size(), path.c_str(),
                reloaded->size());
    runs.push_back(Mined{name, *std::move(genome), *std::move(result)});
  }

  // Cross-species comparison on the reloadable results.
  std::vector<pgm::NamedPatternSet> sets;
  for (const Mined& run : runs) {
    sets.push_back(pgm::NamedPatternSet{run.name, run.result.patterns});
  }
  pgm::StatusOr<std::vector<pgm::SetComparison>> comparisons =
      pgm::ComparePatternSets(sets);
  if (!comparisons.ok()) {
    std::fprintf(stderr, "%s\n", comparisons.status().ToString().c_str());
    return 1;
  }
  std::printf("\nJaccard similarity of the two pattern sets: %.3f\n",
              pgm::PatternSetJaccard(runs[0].result.patterns,
                                     runs[1].result.patterns));
  for (const pgm::SetComparison& comparison : *comparisons) {
    std::printf("%-10s %5zu patterns, %5zu shared, %5zu unique",
                comparison.name.c_str(), comparison.total,
                comparison.common.size(), comparison.unique.size());
    if (!comparison.unique.empty()) {
      std::printf("  (e.g. %s)",
                  comparison.unique.back().ToShorthand().c_str());
    }
    std::printf("\n");
  }

  // Most surprising patterns per species under its own composition.
  for (const Mined& run : runs) {
    pgm::StatusOr<std::vector<pgm::ScoredPattern>> ranked =
        pgm::RankByLift(run.result, run.genome);
    if (!ranked.ok() || ranked->empty()) continue;
    const pgm::ScoredPattern& top = ranked->front();
    std::printf(
        "\n%s: highest-lift pattern %s (observed %.3g, expected %.3g, "
        "lift %.1fx)\n",
        run.name.c_str(), top.pattern.pattern.ToShorthand().c_str(),
        top.pattern.support_ratio, top.expected_ratio, top.lift);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return RunExample(argc, argv); }
