#include "core/verifier.h"

#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "util/random.h"

namespace pgm {
namespace {

TEST(VerifierTest, PaperSupportExample) {
  // S = AAGCC, P = AC, gap [2,3]: offset sequences {[0,3],[0,4],[1,4]}.
  Sequence s = *Sequence::FromString("AAGCC", Alphabet::Dna());
  Pattern p = *Pattern::Parse("AC", Alphabet::Dna());
  GapRequirement gap = *GapRequirement::Create(2, 3);
  EXPECT_EQ(CountSupport(s, p, gap)->count, 3u);
}

TEST(VerifierTest, SingleCharacterSupportIsOccurrenceCount) {
  Sequence s = *Sequence::FromString("ACAGAA", Alphabet::Dna());
  Pattern p = *Pattern::Parse("A", Alphabet::Dna());
  GapRequirement gap = *GapRequirement::Create(5, 9);  // irrelevant for l=1
  EXPECT_EQ(CountSupport(s, p, gap)->count, 4u);
}

TEST(VerifierTest, NoMatchIsZero) {
  Sequence s = *Sequence::FromString("AAAA", Alphabet::Dna());
  Pattern p = *Pattern::Parse("AT", Alphabet::Dna());
  GapRequirement gap = *GapRequirement::Create(0, 3);
  EXPECT_EQ(CountSupport(s, p, gap)->count, 0u);
}

TEST(VerifierTest, GapTooLargeForSequence) {
  Sequence s = *Sequence::FromString("AT", Alphabet::Dna());
  Pattern p = *Pattern::Parse("AT", Alphabet::Dna());
  GapRequirement gap = *GapRequirement::Create(5, 7);
  EXPECT_EQ(CountSupport(s, p, gap)->count, 0u);
}

TEST(VerifierTest, ZeroGapAdjacent) {
  Sequence s = *Sequence::FromString("ATAT", Alphabet::Dna());
  Pattern p = *Pattern::Parse("AT", Alphabet::Dna());
  GapRequirement gap = *GapRequirement::Create(0, 0);
  EXPECT_EQ(CountSupport(s, p, gap)->count, 2u);
}

TEST(VerifierTest, AlphabetMismatchFails) {
  Sequence s = *Sequence::FromString("ACGT", Alphabet::Dna());
  Pattern p = *Pattern::Parse("LW", Alphabet::Protein());
  GapRequirement gap = *GapRequirement::Create(0, 1);
  EXPECT_FALSE(CountSupport(s, p, gap).ok());
  EXPECT_FALSE(ComputePil(s, p, gap).ok());
}

TEST(VerifierTest, HomopolymerCombinatorics) {
  // S = A^10, P = AAA, gap [1,2]: count by hand with the DP:
  // positions i<j<k with j-i-1, k-j-1 in [1,2].
  Sequence s = *Sequence::FromString(std::string(10, 'A'), Alphabet::Dna());
  Pattern p = *Pattern::Parse("AAA", Alphabet::Dna());
  GapRequirement gap = *GapRequirement::Create(1, 2);
  // Brute force expectation via EnumerateMatches.
  auto matches = EnumerateMatches(s, p, gap);
  EXPECT_EQ(CountSupport(s, p, gap)->count, matches.size());
  EXPECT_GT(matches.size(), 0u);
}

TEST(VerifierTest, ComputePilMatchesPaperExample) {
  Sequence s = *Sequence::FromString("AACCGTT", Alphabet::Dna());
  Pattern p = *Pattern::Parse("ACT", Alphabet::Dna());
  GapRequirement gap = *GapRequirement::Create(1, 2);
  PartialIndexList pil = *ComputePil(s, p, gap);
  ASSERT_EQ(pil.size(), 2u);
  EXPECT_EQ(pil.entries()[0], (PilEntry{0, 3}));
  EXPECT_EQ(pil.entries()[1], (PilEntry{1, 2}));
}

TEST(VerifierTest, EnumerateMatchesListsPaperOffsets) {
  Sequence s = *Sequence::FromString("AAGCC", Alphabet::Dna());
  Pattern p = *Pattern::Parse("AC", Alphabet::Dna());
  GapRequirement gap = *GapRequirement::Create(2, 3);
  auto matches = EnumerateMatches(s, p, gap);
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0], (std::vector<std::int64_t>{0, 3}));
  EXPECT_EQ(matches[1], (std::vector<std::int64_t>{0, 4}));
  EXPECT_EQ(matches[2], (std::vector<std::int64_t>{1, 4}));
}

TEST(VerifierTest, EnumerateMatchesRespectsLimit) {
  Sequence s = *Sequence::FromString(std::string(30, 'A'), Alphabet::Dna());
  Pattern p = *Pattern::Parse("AAA", Alphabet::Dna());
  GapRequirement gap = *GapRequirement::Create(0, 3);
  auto limited = EnumerateMatches(s, p, gap, 7);
  EXPECT_EQ(limited.size(), 7u);
}

TEST(VerifierTest, EnumerateMatchesOffsetsSatisfyGapRequirement) {
  Rng rng(4242);
  Sequence s = *UniformRandomSequence(50, Alphabet::Dna(), rng);
  Pattern p = *Pattern::Parse("ACA", Alphabet::Dna());
  GapRequirement gap = *GapRequirement::Create(1, 4);
  for (const auto& offsets : EnumerateMatches(s, p, gap)) {
    ASSERT_EQ(offsets.size(), 3u);
    for (std::size_t j = 0; j + 1 < offsets.size(); ++j) {
      std::int64_t g = offsets[j + 1] - offsets[j] - 1;
      EXPECT_GE(g, 1);
      EXPECT_LE(g, 4);
    }
    for (std::size_t j = 0; j < offsets.size(); ++j) {
      EXPECT_EQ(s[offsets[j]], p[j]);
    }
  }
}

TEST(VerifierTest, CountSupportAgreesWithEnumerationRandomized) {
  Rng rng(777);
  GapRequirement gap = *GapRequirement::Create(1, 3);
  for (int trial = 0; trial < 25; ++trial) {
    Sequence s = *UniformRandomSequence(40, Alphabet::Dna(), rng);
    std::vector<Symbol> symbols;
    const std::size_t len = 1 + rng.UniformInt(4);
    for (std::size_t i = 0; i < len; ++i) {
      symbols.push_back(static_cast<Symbol>(rng.UniformInt(4)));
    }
    Pattern p = *Pattern::FromSymbols(symbols, Alphabet::Dna());
    EXPECT_EQ(CountSupport(s, p, gap)->count,
              EnumerateMatches(s, p, gap).size())
        << "trial " << trial << " pattern " << p.ToShorthand();
  }
}

TEST(VerifierTest, PilSupportEqualsCountSupport) {
  Rng rng(888);
  GapRequirement gap = *GapRequirement::Create(2, 5);
  Sequence s = *UniformRandomSequence(80, Alphabet::Dna(), rng);
  for (const char* shorthand : {"A", "AT", "GAT", "CCGA"}) {
    Pattern p = *Pattern::Parse(shorthand, Alphabet::Dna());
    EXPECT_EQ(ComputePil(s, p, gap)->TotalSupport().count,
              CountSupport(s, p, gap)->count);
  }
}

}  // namespace
}  // namespace pgm
