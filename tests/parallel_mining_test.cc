// The parallel level engine's contract: multi-threaded mining is
// result-identical to serial mining (the executor merges shard outputs in
// candidate order, so thread scheduling never leaks into the result), the
// MiningGuard's atomic ledger balances under concurrent charge/release,
// and budget trips latch exactly one termination reason visible to every
// worker.

#include "core/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/guard.h"
#include "core/miner.h"
#include "core/offset_counter.h"
#include "datagen/generators.h"
#include "seq/sequence.h"
#include "util/random.h"

namespace pgm {
namespace {

using Miner = StatusOr<MiningResult> (*)(const Sequence&, const MinerConfig&);

struct NamedMiner {
  const char* name;
  Miner mine;
};

const NamedMiner kMiners[] = {
    {"mpp", MineMpp},
    {"mppm", MineMppm},
    {"enum", MineEnumeration},
    {"adaptive", MineAdaptive},
};

MinerConfig TestConfig() {
  MinerConfig config;
  config.min_gap = 0;
  config.max_gap = 3;
  config.min_support_ratio = 0.01;
  config.start_length = 1;
  config.max_length = 6;  // keeps enumeration tractable
  return config;
}

// Everything in a MiningResult except wall-clock times and the memory peak
// (the peak depends on how many candidate PILs are simultaneously live,
// which legitimately varies with the thread count).
void ExpectSameResult(const MiningResult& serial, const MiningResult& parallel,
                      const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(serial.patterns.size(), parallel.patterns.size());
  for (std::size_t i = 0; i < serial.patterns.size(); ++i) {
    EXPECT_EQ(serial.patterns[i].pattern.ToShorthand(),
              parallel.patterns[i].pattern.ToShorthand());
    EXPECT_EQ(serial.patterns[i].support, parallel.patterns[i].support);
    EXPECT_EQ(serial.patterns[i].saturated, parallel.patterns[i].saturated);
    EXPECT_DOUBLE_EQ(serial.patterns[i].support_ratio,
                     parallel.patterns[i].support_ratio);
  }
  ASSERT_EQ(serial.level_stats.size(), parallel.level_stats.size());
  for (std::size_t i = 0; i < serial.level_stats.size(); ++i) {
    EXPECT_EQ(serial.level_stats[i].length, parallel.level_stats[i].length);
    EXPECT_EQ(serial.level_stats[i].num_candidates,
              parallel.level_stats[i].num_candidates);
    EXPECT_EQ(serial.level_stats[i].num_frequent,
              parallel.level_stats[i].num_frequent);
    EXPECT_EQ(serial.level_stats[i].num_retained,
              parallel.level_stats[i].num_retained);
  }
  EXPECT_EQ(serial.n_used, parallel.n_used);
  EXPECT_EQ(serial.guaranteed_complete_up_to,
            parallel.guaranteed_complete_up_to);
  EXPECT_EQ(serial.longest_frequent_length, parallel.longest_frequent_length);
  EXPECT_EQ(serial.total_candidates, parallel.total_candidates);
  EXPECT_EQ(serial.termination, parallel.termination);
  EXPECT_EQ(serial.em, parallel.em);
  EXPECT_EQ(serial.estimated_n, parallel.estimated_n);
  EXPECT_EQ(serial.adaptive_iterations, parallel.adaptive_iterations);
}

TEST(ParallelMiningTest, AllMinersIdenticalAcrossThreadCountsRandomized) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed * 7919);
    Sequence sequence =
        *UniformRandomSequence(600 + 100 * seed, Alphabet::Dna(), rng);
    for (const NamedMiner& miner : kMiners) {
      MinerConfig config = TestConfig();
      config.threads = 1;
      StatusOr<MiningResult> serial = miner.mine(sequence, config);
      ASSERT_TRUE(serial.ok()) << serial.status().message();
      for (std::int64_t threads : {2, 4}) {
        config.threads = threads;
        StatusOr<MiningResult> parallel = miner.mine(sequence, config);
        ASSERT_TRUE(parallel.ok()) << parallel.status().message();
        ExpectSameResult(*serial, *parallel,
                         std::string(miner.name) + " seed " +
                             std::to_string(seed) + " threads " +
                             std::to_string(threads));
      }
    }
  }
}

TEST(ParallelMiningTest, GappyConfigIdenticalAcrossThreadCounts) {
  Rng rng(424242);
  Sequence sequence = *UniformRandomSequence(2000, Alphabet::Dna(), rng);
  MinerConfig config;
  config.min_gap = 9;
  config.max_gap = 12;  // the paper's Section 6 gap requirement
  config.min_support_ratio = 0.0005;
  config.start_length = 3;
  config.threads = 1;
  StatusOr<MiningResult> serial = MineMppm(sequence, config);
  ASSERT_TRUE(serial.ok()) << serial.status().message();
  config.threads = 3;
  StatusOr<MiningResult> parallel = MineMppm(sequence, config);
  ASSERT_TRUE(parallel.ok()) << parallel.status().message();
  ExpectSameResult(*serial, *parallel, "mppm gap [9,12] threads 3");
}

TEST(ParallelMiningTest, ExecutorMergesInCandidateOrder) {
  // Run a level join with 1 and 4 workers; the sink must observe the same
  // candidates, in the same order, with the same supports and PIL rows.
  Rng rng(99);
  Sequence sequence = *UniformRandomSequence(800, Alphabet::Dna(), rng);
  GapRequirement gap = *GapRequirement::Create(0, 2);
  internal::BuiltLevel level =
      internal::BuildAllPatternsOfLength(sequence, gap, 2);
  ASSERT_FALSE(level.entries.empty());
  const internal::JoinPlan plan = internal::JoinPlan::SelfJoin(level.entries);
  ASSERT_FALSE(plan.empty());

  struct Seen {
    std::string symbols;
    std::uint64_t support;
    std::vector<PilEntry> rows;
    bool operator==(const Seen& other) const {
      return symbols == other.symbols && support == other.support &&
             rows == other.rows;
    }
  };
  auto evaluate = [&](std::int64_t threads) {
    internal::ParallelLevelExecutor executor(threads);
    PilArena out;
    std::vector<Seen> seen;
    bool interrupted = false;
    Status status = executor.ExecuteJoin(
        level.entries, level.arena, level.entries, level.arena, plan, gap,
        /*guard=*/nullptr, out,
        [&](const internal::JoinedCandidate& candidate) -> Status {
          Seen s;
          s.symbols.push_back(level.entries[candidate.left].symbols.front());
          s.symbols.append(level.entries[candidate.right].symbols);
          s.support = candidate.support.count;
          const PilEntry* rows = out.Rows(candidate.span);
          s.rows.assign(rows, rows + candidate.span.len);
          seen.push_back(std::move(s));
          return Status::OK();
        },
        &interrupted);
    EXPECT_TRUE(status.ok());
    EXPECT_FALSE(interrupted);
    return seen;
  };
  const auto serial = evaluate(1);
  const auto parallel = evaluate(4);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelMiningTest, LedgerDrainsToZeroAfterCompletedRun) {
  Rng rng(7);
  Sequence sequence = *UniformRandomSequence(500, Alphabet::Dna(), rng);
  MinerConfig config = TestConfig();
  config.threads = 4;
  GapRequirement gap = *GapRequirement::Create(config.min_gap, config.max_gap);
  OffsetCounter counter(static_cast<std::int64_t>(sequence.size()), gap);
  MiningGuard guard(config.limits, config.cancel);
  StatusOr<MiningResult> result = internal::RunLevelwise(
      sequence, config, counter, counter.l1(), internal::BuiltLevel{}, guard);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_TRUE(result->complete());
  EXPECT_EQ(guard.memory_in_use_bytes(), 0u);
  EXPECT_GT(guard.memory_peak_bytes(), 0u);
}

TEST(ParallelMiningTest, LedgerDrainsToZeroAfterBudgetTrippedRun) {
  Rng rng(8);
  Sequence sequence = *UniformRandomSequence(500, Alphabet::Dna(), rng);
  for (std::int64_t threads : {1, 4}) {
    MinerConfig config = TestConfig();
    config.threads = threads;
    config.limits.pil_memory_budget_bytes = 2048;  // trips mid-level
    GapRequirement gap =
        *GapRequirement::Create(config.min_gap, config.max_gap);
    OffsetCounter counter(static_cast<std::int64_t>(sequence.size()), gap);
    MiningGuard guard(config.limits, config.cancel);
    StatusOr<MiningResult> result =
        internal::RunLevelwise(sequence, config, counter, counter.l1(),
                               internal::BuiltLevel{}, guard);
    ASSERT_TRUE(result.ok()) << result.status().message();
    EXPECT_EQ(result->termination, TerminationReason::kMemoryBudget)
        << "threads " << threads;
    EXPECT_EQ(guard.memory_in_use_bytes(), 0u) << "threads " << threads;
  }
}

TEST(ParallelMiningTest, PartialResultsStaySoundUnderBudgetAtAnyThreadCount) {
  // Under a memory budget the truncation point may differ per thread
  // count, but every returned pattern must carry its exact support
  // (verified against an unbudgeted serial run).
  Rng rng(31);
  Sequence sequence = *UniformRandomSequence(800, Alphabet::Dna(), rng);
  MinerConfig config = TestConfig();
  StatusOr<MiningResult> full = MineMpp(sequence, config);
  ASSERT_TRUE(full.ok());
  std::vector<std::pair<std::string, std::uint64_t>> truth;
  for (const FrequentPattern& fp : full->patterns) {
    truth.emplace_back(fp.pattern.ToShorthand(), fp.support);
  }
  for (std::int64_t threads : {1, 2, 4}) {
    config.threads = threads;
    config.limits.pil_memory_budget_bytes = 4096;
    StatusOr<MiningResult> partial = MineMpp(sequence, config);
    ASSERT_TRUE(partial.ok()) << partial.status().message();
    for (const FrequentPattern& fp : partial->patterns) {
      const std::pair<std::string, std::uint64_t> entry(
          fp.pattern.ToShorthand(), fp.support);
      EXPECT_NE(std::find(truth.begin(), truth.end(), entry), truth.end())
          << "threads " << threads << ": pattern " << entry.first
          << " (support " << entry.second
          << ") not in the unbudgeted result";
    }
  }
}

TEST(GuardConcurrencyTest, ChargeReleaseBalancesAcrossThreads) {
  ResourceLimits limits;  // unlimited
  MiningGuard guard(limits);
  constexpr int kThreads = 8;
  constexpr int kRounds = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&guard] {
      for (int i = 0; i < kRounds; ++i) {
        const std::uint64_t bytes = 16 + static_cast<std::uint64_t>(i % 7);
        EXPECT_TRUE(guard.ChargeMemory(bytes));
        guard.ReleaseMemory(bytes);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(guard.memory_in_use_bytes(), 0u);
  EXPECT_FALSE(guard.stopped());
}

TEST(GuardConcurrencyTest, BudgetTripLatchesExactlyOneReason) {
  ResourceLimits limits;
  limits.pil_memory_budget_bytes = 1000;
  MiningGuard guard(limits);
  constexpr int kThreads = 8;
  std::atomic<int> violations{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (!guard.ChargeMemory(64)) {
          violations.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_GT(violations.load(), 0);
  EXPECT_TRUE(guard.stopped());
  EXPECT_EQ(guard.reason(), TerminationReason::kMemoryBudget);
}

TEST(GuardConcurrencyTest, CancellationVisibleToAllWorkers) {
  CancelToken cancel;
  ResourceLimits limits;
  MiningGuard guard(limits, &cancel);
  constexpr int kThreads = 4;
  std::atomic<int> observed_stop{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (guard.CheckNow()) {
        std::this_thread::yield();
      }
      observed_stop.fetch_add(1);
    });
  }
  cancel.RequestCancel();
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(observed_stop.load(), kThreads);
  EXPECT_EQ(guard.reason(), TerminationReason::kCancelled);
}

TEST(GuardConcurrencyTest, ConcurrentTicksKeepSharedCadence) {
  ResourceLimits limits;
  MiningGuard guard(limits);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<bool> any_false{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100'000; ++i) {
        if (!guard.Tick()) any_false.store(true);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(any_false.load());  // nothing to trip: all ticks succeed
  EXPECT_FALSE(guard.stopped());
}

TEST(ParallelMiningTest, CancelRacingTheMergeStaysSound) {
  // The serve drain latches a CancelToken from another thread while the
  // parallel executor may be anywhere: sharding, counting, or merging.
  // Wherever the cancel lands, the run must return OK with either a
  // completed or a cancelled result, and every returned pattern must carry
  // its exact ungoverned support. TSan patrols the token/merge handshake.
  Rng rng(47);
  Sequence sequence = *UniformRandomSequence(600, Alphabet::Dna(), rng);
  MinerConfig config = TestConfig();

  StatusOr<MiningResult> full = MineMpp(sequence, config);
  ASSERT_TRUE(full.ok());
  std::vector<std::pair<std::string, std::uint64_t>> truth;
  for (const FrequentPattern& fp : full->patterns) {
    truth.emplace_back(fp.pattern.ToShorthand(), fp.support);
  }

  bool saw_cancelled = false;
  // Vary where the cancel lands by spinning a different amount each round;
  // the contract must hold at every interleaving.
  for (int round = 0; round < 12; ++round) {
    CancelToken cancel;
    config.threads = 4;
    config.cancel = &cancel;
    std::thread canceller([&cancel, round] {
      // Relaxed atomic spin: keeps the loop un-elidable without the
      // deprecated volatile increment.
      std::atomic<int> spin{0};
      while (spin.fetch_add(1, std::memory_order_relaxed) < round * 20'000) {
      }
      cancel.RequestCancel();
    });
    StatusOr<MiningResult> result = MineMpp(sequence, config);
    canceller.join();
    ASSERT_TRUE(result.ok()) << result.status().message();
    ASSERT_TRUE(result->termination == TerminationReason::kCompleted ||
                result->termination == TerminationReason::kCancelled);
    if (result->termination == TerminationReason::kCancelled) {
      saw_cancelled = true;
      EXPECT_LT(result->guaranteed_complete_up_to,
                full->guaranteed_complete_up_to + 1);
    } else {
      EXPECT_EQ(result->patterns.size(), full->patterns.size());
    }
    for (const FrequentPattern& fp : result->patterns) {
      const std::pair<std::string, std::uint64_t> entry(
          fp.pattern.ToShorthand(), fp.support);
      EXPECT_NE(std::find(truth.begin(), truth.end(), entry), truth.end())
          << "round " << round << ": pattern " << entry.first
          << " (support " << entry.second << ") not in the full result";
    }
  }
  // Round 0 cancels before the first guard poll, so at least one round is
  // guaranteed to come back cancelled.
  EXPECT_TRUE(saw_cancelled);
}

}  // namespace
}  // namespace pgm
