// The parallel level engine's contract: multi-threaded mining is
// result-identical to serial mining (the executor merges shard outputs in
// candidate order, so thread scheduling never leaks into the result), the
// MiningGuard's atomic ledger balances under concurrent charge/release,
// and budget trips latch exactly one termination reason visible to every
// worker.

#include "core/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/guard.h"
#include "core/miner.h"
#include "core/offset_counter.h"
#include "datagen/generators.h"
#include "seq/sequence.h"
#include "util/random.h"

namespace pgm {
namespace {

using Miner = StatusOr<MiningResult> (*)(const Sequence&, const MinerConfig&);

struct NamedMiner {
  const char* name;
  Miner mine;
};

const NamedMiner kMiners[] = {
    {"mpp", MineMpp},
    {"mppm", MineMppm},
    {"enum", MineEnumeration},
    {"adaptive", MineAdaptive},
};

MinerConfig TestConfig() {
  MinerConfig config;
  config.min_gap = 0;
  config.max_gap = 3;
  config.min_support_ratio = 0.01;
  config.start_length = 1;
  config.max_length = 6;  // keeps enumeration tractable
  return config;
}

// Everything in a MiningResult except wall-clock times and the memory peak
// (the peak depends on how many candidate PILs are simultaneously live,
// which legitimately varies with the thread count).
void ExpectSameResult(const MiningResult& serial, const MiningResult& parallel,
                      const std::string& context) {
  SCOPED_TRACE(context);
  ASSERT_EQ(serial.patterns.size(), parallel.patterns.size());
  for (std::size_t i = 0; i < serial.patterns.size(); ++i) {
    EXPECT_EQ(serial.patterns[i].pattern.ToShorthand(),
              parallel.patterns[i].pattern.ToShorthand());
    EXPECT_EQ(serial.patterns[i].support, parallel.patterns[i].support);
    EXPECT_EQ(serial.patterns[i].saturated, parallel.patterns[i].saturated);
    EXPECT_DOUBLE_EQ(serial.patterns[i].support_ratio,
                     parallel.patterns[i].support_ratio);
  }
  ASSERT_EQ(serial.level_stats.size(), parallel.level_stats.size());
  for (std::size_t i = 0; i < serial.level_stats.size(); ++i) {
    EXPECT_EQ(serial.level_stats[i].length, parallel.level_stats[i].length);
    EXPECT_EQ(serial.level_stats[i].num_candidates,
              parallel.level_stats[i].num_candidates);
    EXPECT_EQ(serial.level_stats[i].num_frequent,
              parallel.level_stats[i].num_frequent);
    EXPECT_EQ(serial.level_stats[i].num_retained,
              parallel.level_stats[i].num_retained);
  }
  EXPECT_EQ(serial.n_used, parallel.n_used);
  EXPECT_EQ(serial.guaranteed_complete_up_to,
            parallel.guaranteed_complete_up_to);
  EXPECT_EQ(serial.longest_frequent_length, parallel.longest_frequent_length);
  EXPECT_EQ(serial.total_candidates, parallel.total_candidates);
  EXPECT_EQ(serial.termination, parallel.termination);
  EXPECT_EQ(serial.em, parallel.em);
  EXPECT_EQ(serial.estimated_n, parallel.estimated_n);
  EXPECT_EQ(serial.adaptive_iterations, parallel.adaptive_iterations);
}

TEST(ParallelMiningTest, AllMinersIdenticalAcrossThreadCountsRandomized) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed * 7919);
    Sequence sequence =
        *UniformRandomSequence(600 + 100 * seed, Alphabet::Dna(), rng);
    for (const NamedMiner& miner : kMiners) {
      MinerConfig config = TestConfig();
      config.threads = 1;
      StatusOr<MiningResult> serial = miner.mine(sequence, config);
      ASSERT_TRUE(serial.ok()) << serial.status().message();
      for (std::int64_t threads : {2, 4}) {
        config.threads = threads;
        StatusOr<MiningResult> parallel = miner.mine(sequence, config);
        ASSERT_TRUE(parallel.ok()) << parallel.status().message();
        ExpectSameResult(*serial, *parallel,
                         std::string(miner.name) + " seed " +
                             std::to_string(seed) + " threads " +
                             std::to_string(threads));
      }
    }
  }
}

TEST(ParallelMiningTest, GappyConfigIdenticalAcrossThreadCounts) {
  Rng rng(424242);
  Sequence sequence = *UniformRandomSequence(2000, Alphabet::Dna(), rng);
  MinerConfig config;
  config.min_gap = 9;
  config.max_gap = 12;  // the paper's Section 6 gap requirement
  config.min_support_ratio = 0.0005;
  config.start_length = 3;
  config.threads = 1;
  StatusOr<MiningResult> serial = MineMppm(sequence, config);
  ASSERT_TRUE(serial.ok()) << serial.status().message();
  config.threads = 3;
  StatusOr<MiningResult> parallel = MineMppm(sequence, config);
  ASSERT_TRUE(parallel.ok()) << parallel.status().message();
  ExpectSameResult(*serial, *parallel, "mppm gap [9,12] threads 3");
}

TEST(ParallelMiningTest, ExecutorMergesInCandidateOrder) {
  // Run a level join with 1 and 4 workers; the sink must observe the same
  // candidates, in the same order, with the same supports and PIL rows.
  Rng rng(99);
  Sequence sequence = *UniformRandomSequence(800, Alphabet::Dna(), rng);
  GapRequirement gap = *GapRequirement::Create(0, 2);
  internal::BuiltLevel level =
      internal::BuildAllPatternsOfLength(sequence, gap, 2);
  ASSERT_FALSE(level.entries.empty());
  const internal::JoinPlan plan = internal::JoinPlan::SelfJoin(level.entries);
  ASSERT_FALSE(plan.empty());

  struct Seen {
    std::string symbols;
    std::uint64_t support;
    std::vector<PilEntry> rows;
    bool operator==(const Seen& other) const {
      return symbols == other.symbols && support == other.support &&
             rows == other.rows;
    }
  };
  auto evaluate = [&](std::int64_t threads) {
    internal::ParallelLevelExecutor executor(threads);
    PilArena out;
    std::vector<Seen> seen;
    bool interrupted = false;
    Status status = executor.ExecuteJoin(
        level.entries, level.arena, level.entries, level.arena, plan, gap,
        KernelImpl::kScalar, /*guard=*/nullptr, out,
        [&](const internal::JoinedCandidate& candidate) -> Status {
          Seen s;
          s.symbols.push_back(level.entries[candidate.left].symbols.front());
          s.symbols.append(level.entries[candidate.right].symbols);
          s.support = candidate.support.count;
          const PilEntry* rows = out.Rows(candidate.span);
          s.rows.assign(rows, rows + candidate.span.len);
          seen.push_back(std::move(s));
          return Status::OK();
        },
        &interrupted);
    EXPECT_TRUE(status.ok());
    EXPECT_FALSE(interrupted);
    return seen;
  };
  const auto serial = evaluate(1);
  const auto parallel = evaluate(4);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelMiningTest, LedgerDrainsToZeroAfterCompletedRun) {
  Rng rng(7);
  Sequence sequence = *UniformRandomSequence(500, Alphabet::Dna(), rng);
  MinerConfig config = TestConfig();
  config.threads = 4;
  GapRequirement gap = *GapRequirement::Create(config.min_gap, config.max_gap);
  OffsetCounter counter(static_cast<std::int64_t>(sequence.size()), gap);
  MiningGuard guard(config.limits, config.cancel);
  StatusOr<MiningResult> result = internal::RunLevelwise(
      sequence, config, counter, counter.l1(), internal::BuiltLevel{}, guard);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_TRUE(result->complete());
  EXPECT_EQ(guard.memory_in_use_bytes(), 0u);
  EXPECT_GT(guard.memory_peak_bytes(), 0u);
}

TEST(ParallelMiningTest, LedgerDrainsToZeroAfterBudgetTrippedRun) {
  Rng rng(8);
  Sequence sequence = *UniformRandomSequence(500, Alphabet::Dna(), rng);
  for (std::int64_t threads : {1, 4}) {
    MinerConfig config = TestConfig();
    config.threads = threads;
    config.limits.pil_memory_budget_bytes = 2048;  // trips mid-level
    GapRequirement gap =
        *GapRequirement::Create(config.min_gap, config.max_gap);
    OffsetCounter counter(static_cast<std::int64_t>(sequence.size()), gap);
    MiningGuard guard(config.limits, config.cancel);
    StatusOr<MiningResult> result =
        internal::RunLevelwise(sequence, config, counter, counter.l1(),
                               internal::BuiltLevel{}, guard);
    ASSERT_TRUE(result.ok()) << result.status().message();
    EXPECT_EQ(result->termination, TerminationReason::kMemoryBudget)
        << "threads " << threads;
    EXPECT_EQ(guard.memory_in_use_bytes(), 0u) << "threads " << threads;
  }
}

TEST(ParallelMiningTest, PartialResultsStaySoundUnderBudgetAtAnyThreadCount) {
  // Under a memory budget the truncation point may differ per thread
  // count, but every returned pattern must carry its exact support
  // (verified against an unbudgeted serial run).
  Rng rng(31);
  Sequence sequence = *UniformRandomSequence(800, Alphabet::Dna(), rng);
  MinerConfig config = TestConfig();
  StatusOr<MiningResult> full = MineMpp(sequence, config);
  ASSERT_TRUE(full.ok());
  std::vector<std::pair<std::string, std::uint64_t>> truth;
  for (const FrequentPattern& fp : full->patterns) {
    truth.emplace_back(fp.pattern.ToShorthand(), fp.support);
  }
  for (std::int64_t threads : {1, 2, 4}) {
    config.threads = threads;
    config.limits.pil_memory_budget_bytes = 4096;
    StatusOr<MiningResult> partial = MineMpp(sequence, config);
    ASSERT_TRUE(partial.ok()) << partial.status().message();
    for (const FrequentPattern& fp : partial->patterns) {
      const std::pair<std::string, std::uint64_t> entry(
          fp.pattern.ToShorthand(), fp.support);
      EXPECT_NE(std::find(truth.begin(), truth.end(), entry), truth.end())
          << "threads " << threads << ": pattern " << entry.first
          << " (support " << entry.second
          << ") not in the unbudgeted result";
    }
  }
}

// --- Pipelined-sink contract: what the executor delivers (and charges)
// when a run does NOT finish cleanly. The delivered prefix must be
// byte-identical at every thread count for memory trips (which latch at a
// window boundary, where the pipeline is deterministically empty) and for
// sink errors (the merge stops in candidate order); and the guard's tick
// total must equal the candidates actually delivered to the sink (TickN
// refunds abandoned pieces), except after a sink error, where workers may
// have paid for fills the merge never consumed.

struct SinkRecord {
  std::string symbols;
  std::uint64_t support = 0;
  std::vector<PilEntry> rows;
  bool operator==(const SinkRecord& other) const {
    return symbols == other.symbols && support == other.support &&
           rows == other.rows;
  }
};

struct JoinRun {
  std::vector<SinkRecord> delivered;
  std::uint64_t ticks = 0;
  bool interrupted = false;
  Status status = Status::OK();
};

// Runs `plan` on `threads` workers under a fresh guard. `memory_budget` of 0
// means unlimited; `fail_after` >= 0 makes the sink error on delivery number
// fail_after (0-based). Every successful delivery is promoted, mirroring the
// mining loop.
JoinRun RunJoin(const internal::BuiltLevel& level,
                const internal::JoinPlan& plan, const GapRequirement& gap,
                std::int64_t threads, std::uint64_t memory_budget,
                std::int64_t fail_after) {
  JoinRun run;
  ResourceLimits limits;
  if (memory_budget > 0) limits.pil_memory_budget_bytes = memory_budget;
  MiningGuard guard(limits);
  {
    internal::ParallelLevelExecutor executor(threads);
    PilArena out(&guard);
    std::int64_t deliveries = 0;
    out.BeginScratch();
    run.status = executor.ExecuteJoin(
        level.entries, level.arena, level.entries, level.arena, plan, gap,
        KernelImpl::kScalar, &guard, out,
        [&](const internal::JoinedCandidate& candidate) -> Status {
          if (fail_after >= 0 && deliveries == fail_after) {
            return Status::Internal("sink failure injected by test");
          }
          ++deliveries;
          SinkRecord record;
          record.symbols.push_back(
              level.entries[candidate.left].symbols.front());
          record.symbols.append(level.entries[candidate.right].symbols);
          record.support = candidate.support.count;
          const PilEntry* rows = out.Rows(candidate.span);
          record.rows.assign(rows, rows + candidate.span.len);
          out.Promote(candidate.span);
          run.delivered.push_back(std::move(record));
          return Status::OK();
        },
        &run.interrupted);
    out.EndScratch();
    run.ticks = guard.ticks();
  }
  return run;
}

// A join big enough to span several scratch windows: 16 candidates of
// ~10k-row PILs each, ~160k output rows against a 64k-row window target.
internal::BuiltLevel MultiWindowLevel(const GapRequirement& gap) {
  Rng rng(2024);
  Sequence sequence = *UniformRandomSequence(40000, Alphabet::Dna(), rng);
  return internal::BuildAllPatternsOfLength(sequence, gap, 1);
}

TEST(ParallelMiningTest, TickTotalEqualsDeliveredCandidates) {
  GapRequirement gap = *GapRequirement::Create(0, 2);
  internal::BuiltLevel level = MultiWindowLevel(gap);
  const internal::JoinPlan plan = internal::JoinPlan::SelfJoin(level.entries);
  ASSERT_FALSE(plan.empty());
  for (std::int64_t threads : {1, 2, 8}) {
    JoinRun run = RunJoin(level, plan, gap, threads, /*memory_budget=*/0,
                          /*fail_after=*/-1);
    ASSERT_TRUE(run.status.ok()) << run.status.message();
    EXPECT_FALSE(run.interrupted);
    EXPECT_EQ(run.delivered.size(), plan.num_candidates());
    EXPECT_EQ(run.ticks, run.delivered.size()) << "threads " << threads;
  }
}

TEST(ParallelMiningTest, MemoryTripPrefixByteIdenticalAcrossThreadCounts) {
  GapRequirement gap = *GapRequirement::Create(0, 2);
  internal::BuiltLevel level = MultiWindowLevel(gap);
  const internal::JoinPlan plan = internal::JoinPlan::SelfJoin(level.entries);
  ASSERT_FALSE(plan.empty());

  // Find a budget that lets the first scratch window through and trips on a
  // later window's Reserve (searched, not hardcoded, so the test survives
  // retuning of the window/block row targets).
  std::uint64_t trip_budget = 0;
  JoinRun reference;
  for (std::uint64_t budget :
       {std::uint64_t{1} << 20, (std::uint64_t{3} << 20) / 2,
        std::uint64_t{2} << 20, std::uint64_t{3} << 20,
        std::uint64_t{1} << 19}) {
    JoinRun run = RunJoin(level, plan, gap, /*threads=*/1, budget,
                          /*fail_after=*/-1);
    ASSERT_TRUE(run.status.ok()) << run.status.message();
    if (run.interrupted && !run.delivered.empty() &&
        run.delivered.size() < plan.num_candidates()) {
      trip_budget = budget;
      reference = std::move(run);
      break;
    }
  }
  ASSERT_NE(trip_budget, 0u)
      << "no probed budget produced a mid-level memory trip";
  // The trip latched at a window boundary with the pipeline drained, so the
  // ticks charged are exactly the candidates the sink received.
  EXPECT_EQ(reference.ticks, reference.delivered.size());

  for (std::int64_t threads : {2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    JoinRun run = RunJoin(level, plan, gap, threads, trip_budget,
                          /*fail_after=*/-1);
    ASSERT_TRUE(run.status.ok()) << run.status.message();
    EXPECT_TRUE(run.interrupted);
    EXPECT_EQ(run.ticks, run.delivered.size());
    EXPECT_EQ(run.delivered, reference.delivered)
        << "memory-trip truncation point moved with the thread count";
  }
}

TEST(ParallelMiningTest, SinkErrorPrefixByteIdenticalAcrossThreadCounts) {
  GapRequirement gap = *GapRequirement::Create(0, 2);
  internal::BuiltLevel level = MultiWindowLevel(gap);
  const internal::JoinPlan plan = internal::JoinPlan::SelfJoin(level.entries);
  ASSERT_GT(plan.num_candidates(), 8u);

  const std::int64_t fail_after = 7;  // mid-stream, not at a window edge
  JoinRun reference = RunJoin(level, plan, gap, /*threads=*/1,
                              /*memory_budget=*/0, fail_after);
  ASSERT_FALSE(reference.status.ok());
  EXPECT_EQ(reference.delivered.size(),
            static_cast<std::size_t>(fail_after));

  for (std::int64_t threads : {2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    JoinRun run = RunJoin(level, plan, gap, threads, /*memory_budget=*/0,
                          fail_after);
    ASSERT_FALSE(run.status.ok());
    EXPECT_EQ(run.status.message(), reference.status.message());
    EXPECT_EQ(run.delivered, reference.delivered)
        << "sink-error prefix depends on the thread count";
    // Workers may have filled (and paid for) pieces past the failure point
    // before observing the stop, so ticks only bounds delivered from above.
    EXPECT_GE(run.ticks, run.delivered.size());
  }
}

TEST(GuardConcurrencyTest, ChargeReleaseBalancesAcrossThreads) {
  ResourceLimits limits;  // unlimited
  MiningGuard guard(limits);
  constexpr int kThreads = 8;
  constexpr int kRounds = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&guard] {
      for (int i = 0; i < kRounds; ++i) {
        const std::uint64_t bytes = 16 + static_cast<std::uint64_t>(i % 7);
        EXPECT_TRUE(guard.ChargeMemory(bytes));
        guard.ReleaseMemory(bytes);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(guard.memory_in_use_bytes(), 0u);
  EXPECT_FALSE(guard.stopped());
}

TEST(GuardConcurrencyTest, BudgetTripLatchesExactlyOneReason) {
  ResourceLimits limits;
  limits.pil_memory_budget_bytes = 1000;
  MiningGuard guard(limits);
  constexpr int kThreads = 8;
  std::atomic<int> violations{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (!guard.ChargeMemory(64)) {
          violations.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_GT(violations.load(), 0);
  EXPECT_TRUE(guard.stopped());
  EXPECT_EQ(guard.reason(), TerminationReason::kMemoryBudget);
}

TEST(GuardConcurrencyTest, CancellationVisibleToAllWorkers) {
  CancelToken cancel;
  ResourceLimits limits;
  MiningGuard guard(limits, &cancel);
  constexpr int kThreads = 4;
  std::atomic<int> observed_stop{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (guard.CheckNow()) {
        std::this_thread::yield();
      }
      observed_stop.fetch_add(1);
    });
  }
  cancel.RequestCancel();
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(observed_stop.load(), kThreads);
  EXPECT_EQ(guard.reason(), TerminationReason::kCancelled);
}

TEST(GuardConcurrencyTest, ConcurrentTicksKeepSharedCadence) {
  ResourceLimits limits;
  MiningGuard guard(limits);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<bool> any_false{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100'000; ++i) {
        if (!guard.Tick()) any_false.store(true);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(any_false.load());  // nothing to trip: all ticks succeed
  EXPECT_FALSE(guard.stopped());
}

TEST(ParallelMiningTest, CancelRacingTheMergeStaysSound) {
  // The serve drain latches a CancelToken from another thread while the
  // parallel executor may be anywhere: sharding, counting, or merging.
  // Wherever the cancel lands, the run must return OK with either a
  // completed or a cancelled result, and every returned pattern must carry
  // its exact ungoverned support. TSan patrols the token/merge handshake.
  Rng rng(47);
  Sequence sequence = *UniformRandomSequence(600, Alphabet::Dna(), rng);
  MinerConfig config = TestConfig();

  StatusOr<MiningResult> full = MineMpp(sequence, config);
  ASSERT_TRUE(full.ok());
  std::vector<std::pair<std::string, std::uint64_t>> truth;
  for (const FrequentPattern& fp : full->patterns) {
    truth.emplace_back(fp.pattern.ToShorthand(), fp.support);
  }

  bool saw_cancelled = false;
  // Vary where the cancel lands by spinning a different amount each round;
  // the contract must hold at every interleaving.
  for (int round = 0; round < 12; ++round) {
    CancelToken cancel;
    config.threads = 4;
    config.cancel = &cancel;
    std::thread canceller([&cancel, round] {
      // Relaxed atomic spin: keeps the loop un-elidable without the
      // deprecated volatile increment.
      std::atomic<int> spin{0};
      while (spin.fetch_add(1, std::memory_order_relaxed) < round * 20'000) {
      }
      cancel.RequestCancel();
    });
    StatusOr<MiningResult> result = MineMpp(sequence, config);
    canceller.join();
    ASSERT_TRUE(result.ok()) << result.status().message();
    ASSERT_TRUE(result->termination == TerminationReason::kCompleted ||
                result->termination == TerminationReason::kCancelled);
    if (result->termination == TerminationReason::kCancelled) {
      saw_cancelled = true;
      EXPECT_LT(result->guaranteed_complete_up_to,
                full->guaranteed_complete_up_to + 1);
    } else {
      EXPECT_EQ(result->patterns.size(), full->patterns.size());
    }
    for (const FrequentPattern& fp : result->patterns) {
      const std::pair<std::string, std::uint64_t> entry(
          fp.pattern.ToShorthand(), fp.support);
      EXPECT_NE(std::find(truth.begin(), truth.end(), entry), truth.end())
          << "round " << round << ": pattern " << entry.first
          << " (support " << entry.second << ") not in the full result";
    }
  }
  // Round 0 cancels before the first guard poll, so at least one round is
  // guaranteed to come back cancelled.
  EXPECT_TRUE(saw_cancelled);
}

}  // namespace
}  // namespace pgm
