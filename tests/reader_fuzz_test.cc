// Seeded fuzz corpus for the file-format readers (FASTA, CSV): 1000
// deterministically generated malformed documents — random structural
// mutations, byte corruption, and truncations of valid files — plus a disk
// sweep through the fault-injection hook. The contract under test is the
// loud-failure guarantee: a reader handed garbage either parses it (and the
// parsed value is safely consumable) or returns Corruption/IoError; it
// never crashes, hangs, or reads out of bounds. The suite carries the
// "robustness" label so it runs under ASan in the sanitizer tree.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "corpus/plan.h"
#include "seq/fasta.h"
#include "seq/sequence.h"
#include "util/csv_reader.h"
#include "util/fault_injection.h"
#include "util/io.h"
#include "util/random.h"
#include "util/status.h"

namespace pgm {
namespace {

constexpr int kCorpusSize = 1000;
constexpr std::uint64_t kCorpusSeed = 0xf022a6e5b176c3d9ull;

// A loud failure: the only acceptable error codes for malformed input.
bool IsLoudReaderError(const Status& status) {
  return status.code() == StatusCode::kCorruption ||
         status.code() == StatusCode::kIoError;
}

std::string RandomValidFasta(Rng& rng) {
  const char* residues = "ACGTNacgtn";
  std::string doc;
  const int records = 1 + static_cast<int>(rng.UniformInt(4));
  for (int r = 0; r < records; ++r) {
    doc += '>';
    doc += "rec";
    doc += static_cast<char>('a' + r);
    if (rng.Bernoulli(0.5)) doc += " some description";
    doc += '\n';
    const int lines = 1 + static_cast<int>(rng.UniformInt(3));
    for (int l = 0; l < lines; ++l) {
      const int len = 1 + static_cast<int>(rng.UniformInt(40));
      for (int i = 0; i < len; ++i) doc += residues[rng.UniformInt(10)];
      doc += '\n';
    }
  }
  return doc;
}

// A multi-record FASTA corpus with the hazards corpus ingestion must
// survive: ragged record lengths (including records shorter than any
// fragment window), duplicate ids, records with zero residue lines (which
// must parse to loud Corruption, never an empty Sequence), blank lines, and
// Windows line endings.
std::string RandomCorpusFasta(Rng& rng) {
  const char* residues = "ACGTNacgtn";
  std::string doc;
  const int records = 1 + static_cast<int>(rng.UniformInt(6));
  for (int r = 0; r < records; ++r) {
    doc += '>';
    if (rng.Bernoulli(0.3)) {
      doc += "dup";  // duplicate ids across records
    } else {
      doc += "rec";
      doc += static_cast<char>('a' + r);
    }
    if (rng.Bernoulli(0.4)) doc += " ragged corpus record";
    doc += rng.Bernoulli(0.2) ? "\r\n" : "\n";
    const int lines = static_cast<int>(rng.UniformInt(4));  // 0 = empty record
    for (int l = 0; l < lines; ++l) {
      const int len = static_cast<int>(rng.UniformInt(81));  // ragged, may be 0
      for (int i = 0; i < len; ++i) doc += residues[rng.UniformInt(10)];
      doc += rng.Bernoulli(0.2) ? "\r\n" : "\n";
      if (rng.Bernoulli(0.15)) doc += '\n';  // stray blank line
    }
  }
  return doc;
}

std::string RandomValidCsv(Rng& rng) {
  std::string doc = "pattern,support,ratio\n";
  const int rows = 1 + static_cast<int>(rng.UniformInt(6));
  for (int r = 0; r < rows; ++r) {
    if (rng.Bernoulli(0.4)) {
      doc += "\"a,\"\"b\"\"\"";  // quoted field with escapes
    } else {
      doc += "abc";
    }
    doc += ",";
    doc += static_cast<char>('0' + rng.UniformInt(10));
    doc += ",0.5\n";
  }
  return doc;
}

// Characters with structural meaning to one parser or the other, plus a few
// bytes that tend to expose unguarded arithmetic (NUL, DEL, high bit set).
constexpr char kHostileBytes[] = {'>',  '"', ',', '\n', '\r', ';',
                                  '\0', '\x7f', '\xff', '\xc3', ' ', '='};

std::string Mutate(Rng& rng, std::string doc) {
  const int mutations = 1 + static_cast<int>(rng.UniformInt(8));
  for (int m = 0; m < mutations; ++m) {
    if (doc.empty()) break;
    switch (rng.UniformInt(5)) {
      case 0: {  // overwrite a byte with a hostile one
        doc[rng.UniformInt(doc.size())] =
            kHostileBytes[rng.UniformInt(sizeof(kHostileBytes))];
        break;
      }
      case 1: {  // insert a hostile byte
        doc.insert(doc.begin() + static_cast<std::ptrdiff_t>(
                                     rng.UniformInt(doc.size() + 1)),
                   kHostileBytes[rng.UniformInt(sizeof(kHostileBytes))]);
        break;
      }
      case 2: {  // truncate (mid-record, mid-quote, mid-line — anywhere)
        doc.resize(rng.UniformInt(doc.size() + 1));
        break;
      }
      case 3: {  // delete a slice
        const std::size_t begin = rng.UniformInt(doc.size());
        const std::size_t len = 1 + rng.UniformInt(doc.size() - begin);
        doc.erase(begin, len);
        break;
      }
      default: {  // duplicate a slice somewhere else
        const std::size_t begin = rng.UniformInt(doc.size());
        const std::size_t len =
            1 + rng.UniformInt(std::min<std::size_t>(doc.size() - begin, 16));
        const std::string slice = doc.substr(begin, len);
        doc.insert(rng.UniformInt(doc.size() + 1), slice);
        break;
      }
    }
  }
  return doc;
}

// Consumes a successful parse so ASan sees every byte the reader handed
// back (a parser that returns OK with a dangling or overlong view fails
// here, not in the caller).
void ConsumeFasta(const std::vector<FastaRecord>& records) {
  const Alphabet dna = Alphabet::Dna();
  std::size_t total = 0;
  for (const FastaRecord& record : records) {
    EXPECT_FALSE(record.id.empty() && record.residues.empty());
    std::size_t dropped = 0;
    const Sequence sequence = RecordToSequence(record, dna, &dropped);
    total += sequence.size() + dropped + record.description.size();
  }
  EXPECT_GE(total, 0u);
}

void ConsumeCsv(const std::vector<std::vector<std::string>>& rows) {
  std::size_t total = 0;
  for (const auto& row : rows) {
    EXPECT_FALSE(row.empty());
    for (const std::string& field : row) total += field.size();
  }
  EXPECT_GE(total, 0u);
}

TEST(ReaderFuzzTest, MalformedFastaNeverCrashesAndFailsLoudly) {
  for (int i = 0; i < kCorpusSize / 2; ++i) {
    Rng rng(kCorpusSeed + static_cast<std::uint64_t>(i));
    const std::string doc = Mutate(rng, RandomValidFasta(rng));
    StatusOr<std::vector<FastaRecord>> records = ParseFasta(doc);
    if (records.ok()) {
      ConsumeFasta(*records);
    } else {
      EXPECT_TRUE(IsLoudReaderError(records.status()))
          << "case " << i << ": " << records.status().ToString();
    }
  }
}

TEST(ReaderFuzzTest, MalformedCsvNeverCrashesAndFailsLoudly) {
  for (int i = 0; i < kCorpusSize / 2; ++i) {
    Rng rng(kCorpusSeed ^ (0x1000000 + static_cast<std::uint64_t>(i)));
    const std::string doc = Mutate(rng, RandomValidCsv(rng));
    StatusOr<std::vector<std::vector<std::string>>> rows = ParseCsv(doc);
    if (rows.ok()) {
      ConsumeCsv(*rows);
    } else {
      EXPECT_TRUE(IsLoudReaderError(rows.status()))
          << "case " << i << ": " << rows.status().ToString();
    }
  }
}

// The same contract through the disk path: injected open errors, mid-stream
// read errors, and silent short reads at every interesting byte offset must
// surface as IoError/Corruption (or a successful parse of the surviving
// prefix), never as a crash.
TEST(ReaderFuzzTest, FaultedFileReadsFailLoudly) {
  const std::string fasta_path = testing::TempDir() + "/reader_fuzz.fa";
  const std::string csv_path = testing::TempDir() + "/reader_fuzz.csv";
  Rng rng(kCorpusSeed ^ 0xd15cull);
  const std::string fasta_doc = RandomValidFasta(rng);
  const std::string csv_doc = RandomValidCsv(rng);
  ASSERT_TRUE(WriteStringToFile(fasta_path, fasta_doc).ok());
  ASSERT_TRUE(WriteStringToFile(csv_path, csv_doc).ok());

  for (int i = 0; i < 60; ++i) {
    FileFault fault;
    switch (i % 3) {
      case 0:
        fault.kind = FileFault::Kind::kOpenError;
        break;
      case 1:
        fault.kind = FileFault::Kind::kReadError;
        fault.byte_limit = rng.UniformInt(fasta_doc.size() + 1);
        break;
      default:
        fault.kind = FileFault::Kind::kTruncate;
        fault.byte_limit = rng.UniformInt(fasta_doc.size() + 1);
        break;
    }
    ScopedFileFault scope(fault);
    StatusOr<std::vector<FastaRecord>> records = ReadFastaFile(fasta_path);
    if (records.ok()) {
      ConsumeFasta(*records);
    } else {
      EXPECT_TRUE(IsLoudReaderError(records.status()))
          << "case " << i << ": " << records.status().ToString();
    }
    StatusOr<std::vector<std::vector<std::string>>> rows =
        ReadCsvFile(csv_path);
    if (rows.ok()) {
      ConsumeCsv(*rows);
    } else {
      EXPECT_TRUE(IsLoudReaderError(rows.status()))
          << "case " << i << ": " << rows.status().ToString();
    }
    EXPECT_GE(scope.hits(), 2) << "fault never fired in case " << i;
  }
  std::remove(fasta_path.c_str());
  std::remove(csv_path.c_str());
}

// --- Corpus-scale multi-record FASTA ingestion -------------------------

// The streaming scanner (the corpus executor's mmap ingestion path) must
// agree with ParseFasta on every document, malformed or not: same
// ok-or-loud outcome, and identical records on success. A divergence here
// would mean `pgm corpus` mines different data depending on --no-mmap.
TEST(ReaderFuzzTest, MutatedCorpusFastaScannerAgreesWithParseFasta) {
  for (int i = 0; i < kCorpusSize / 2; ++i) {
    Rng rng(kCorpusSeed ^ (0x2000000 + static_cast<std::uint64_t>(i)));
    std::string doc = RandomCorpusFasta(rng);
    if (i % 2 == 1) doc = Mutate(rng, doc);  // valid-ish half, hostile half

    StatusOr<std::vector<FastaRecord>> parsed = ParseFasta(doc);

    std::vector<FastaRecord> scanned;
    FastaScanner scanner(doc);
    FastaRecord record;
    Status scan_status = Status::OK();
    while (true) {
      StatusOr<bool> more = scanner.Next(&record);
      if (!more.ok()) {
        scan_status = more.status();
        break;
      }
      if (!*more) break;
      scanned.push_back(record);
    }

    ASSERT_EQ(parsed.ok(), scan_status.ok())
        << "case " << i << ": ParseFasta "
        << (parsed.ok() ? "OK" : parsed.status().ToString())
        << " vs FastaScanner " << scan_status.ToString();
    if (parsed.ok()) {
      ConsumeFasta(scanned);
      ASSERT_EQ(scanned.size(), parsed->size()) << "case " << i;
      for (std::size_t r = 0; r < scanned.size(); ++r) {
        EXPECT_EQ(scanned[r].id, (*parsed)[r].id) << "case " << i;
        EXPECT_EQ(scanned[r].description, (*parsed)[r].description)
            << "case " << i;
        EXPECT_EQ(scanned[r].residues, (*parsed)[r].residues) << "case " << i;
      }
    } else {
      EXPECT_TRUE(IsLoudReaderError(parsed.status()))
          << "case " << i << ": " << parsed.status().ToString();
      EXPECT_TRUE(IsLoudReaderError(scan_status))
          << "case " << i << ": " << scan_status.ToString();
    }
  }
}

void ExpectPlansEqual(const CorpusPlan& a, const CorpusPlan& b,
                      int fuzz_case) {
  ASSERT_EQ(a.fragments().size(), b.fragments().size()) << "case " << fuzz_case;
  EXPECT_EQ(a.num_records(), b.num_records()) << "case " << fuzz_case;
  EXPECT_EQ(a.num_dropped_residues(), b.num_dropped_residues())
      << "case " << fuzz_case;
  EXPECT_EQ(a.total_symbols(), b.total_symbols()) << "case " << fuzz_case;
  EXPECT_EQ(a.skipped_records().size(), b.skipped_records().size())
      << "case " << fuzz_case;
  for (std::size_t i = 0; i < a.fragments().size(); ++i) {
    const CorpusFragment& fa = a.fragments()[i];
    const CorpusFragment& fb = b.fragments()[i];
    EXPECT_EQ(fa.record_id, fb.record_id) << "case " << fuzz_case;
    EXPECT_EQ(fa.record_index, fb.record_index) << "case " << fuzz_case;
    EXPECT_EQ(fa.start, fb.start) << "case " << fuzz_case;
    EXPECT_EQ(fa.sequence.ToString(), fb.sequence.ToString())
        << "case " << fuzz_case;
  }
}

// The two corpus ingestion routes — MmapFile + FastaScanner vs
// ReadFileToString + ParseFasta — must plan identical fragment lists from
// the same file, or fail identically loudly.
TEST(ReaderFuzzTest, CorpusPlanMmapAndStringIngestionAgree) {
  const std::string path = testing::TempDir() + "/reader_fuzz_corpus.fa";
  for (int i = 0; i < 60; ++i) {
    Rng rng(kCorpusSeed ^ (0x3000000 + static_cast<std::uint64_t>(i)));
    std::string doc = RandomCorpusFasta(rng);
    if (i % 2 == 1) doc = Mutate(rng, doc);
    ASSERT_TRUE(WriteStringToFile(path, doc).ok());

    CorpusPlanOptions options;
    options.fragment.fragment_length = 32;
    options.fragment.keep_tail = (i % 4) < 2;
    StatusOr<CorpusPlan> mmap_plan =
        CorpusPlan::FromFastaFile(path, Alphabet::Dna(), options,
                                  /*use_mmap=*/true);
    StatusOr<CorpusPlan> string_plan =
        CorpusPlan::FromFastaFile(path, Alphabet::Dna(), options,
                                  /*use_mmap=*/false);
    ASSERT_EQ(mmap_plan.ok(), string_plan.ok())
        << "case " << i << ": mmap "
        << (mmap_plan.ok() ? "OK" : mmap_plan.status().ToString())
        << " vs string "
        << (string_plan.ok() ? "OK" : string_plan.status().ToString());
    if (mmap_plan.ok()) {
      ExpectPlansEqual(*mmap_plan, *string_plan, i);
    } else {
      EXPECT_TRUE(IsLoudReaderError(mmap_plan.status()))
          << "case " << i << ": " << mmap_plan.status().ToString();
      EXPECT_TRUE(IsLoudReaderError(string_plan.status()))
          << "case " << i << ": " << string_plan.status().ToString();
    }
  }
  std::remove(path.c_str());
}

// The fault campaign against the memory-mapped corpus path: a transient
// open fault must be absorbed by the retry policy (the plan comes out
// identical to an unfaulted run), permanent open/read faults must surface
// as IoError, and silent truncation as a loud parse error or a clean parse
// of the surviving prefix — never a crash or a silently smaller corpus
// that parsed from a torn view.
TEST(ReaderFuzzTest, FaultedMmapCorpusPlanRecoversOrFailsLoudly) {
  const std::string path = testing::TempDir() + "/reader_fuzz_mmap_corpus.fa";
  Rng rng(kCorpusSeed ^ 0xc0a7u);
  const std::string doc = RandomCorpusFasta(rng);
  ASSERT_TRUE(WriteStringToFile(path, doc).ok());
  CorpusPlanOptions options;
  options.fragment.fragment_length = 24;
  options.fragment.keep_tail = true;

  // The document itself may be an invalid corpus (empty records are legal
  // output of the generator); anchor on the unfaulted outcome.
  const StatusOr<CorpusPlan> unfaulted =
      CorpusPlan::FromFastaFile(path, Alphabet::Dna(), options);

  {
    // Transient open fault: one failed attempt, then the retry succeeds and
    // the plan is byte-identical to the unfaulted run.
    FileFault fault;
    fault.kind = FileFault::Kind::kOpenError;
    fault.max_hits = 1;
    ScopedFileFault scope(fault);
    StatusOr<CorpusPlan> plan =
        CorpusPlan::FromFastaFile(path, Alphabet::Dna(), options);
    EXPECT_EQ(scope.hits(), 1);
    ASSERT_EQ(plan.ok(), unfaulted.ok());
    if (plan.ok()) ExpectPlansEqual(*plan, *unfaulted, -1);
  }
  {
    // Permanent open fault: retries exhaust, IoError surfaces.
    FileFault fault;
    fault.kind = FileFault::Kind::kOpenError;
    ScopedFileFault scope(fault);
    StatusOr<CorpusPlan> plan =
        CorpusPlan::FromFastaFile(path, Alphabet::Dna(), options);
    ASSERT_FALSE(plan.ok());
    EXPECT_EQ(plan.status().code(), StatusCode::kIoError);
    EXPECT_GE(scope.hits(), 2) << "retry never re-attempted the open";
  }
  for (int i = 0; i < 40; ++i) {
    FileFault fault;
    fault.kind = (i % 2 == 0) ? FileFault::Kind::kReadError
                              : FileFault::Kind::kTruncate;
    fault.byte_limit = rng.UniformInt(doc.size() + 1);
    ScopedFileFault scope(fault);
    StatusOr<CorpusPlan> plan =
        CorpusPlan::FromFastaFile(path, Alphabet::Dna(), options);
    if (fault.kind == FileFault::Kind::kReadError) {
      ASSERT_FALSE(plan.ok()) << "case " << i;
      EXPECT_EQ(plan.status().code(), StatusCode::kIoError) << "case " << i;
    } else if (!plan.ok()) {
      EXPECT_TRUE(IsLoudReaderError(plan.status()))
          << "case " << i << ": " << plan.status().ToString();
    }
    EXPECT_GE(scope.hits(), 1) << "fault never fired in case " << i;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pgm
