// The result cache: LRU eviction against a byte ledger, refresh-in-place,
// oversized rejection, the disabled (capacity-0) mode, and the serve.cache.*
// metrics contract.

#include "serve/cache.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/miner.h"
#include "util/metrics.h"

namespace pgm {
namespace {

// A recognizable result; n_used doubles as the payload identity.
MiningResult ResultTagged(std::int64_t tag) {
  MiningResult result;
  result.n_used = tag;
  return result;
}

// Every ResultTagged() value has this footprint in the ledger.
std::uint64_t BaseBytes() { return ApproxResultBytes(ResultTagged(0)); }

TEST(ResultCacheTest, MissThenHit) {
  MetricsRegistry metrics;
  ResultCache cache(1 << 20, &metrics);
  MiningResult out;
  EXPECT_FALSE(cache.Lookup("k", &out));
  EXPECT_TRUE(cache.Insert("k", ResultTagged(7)));
  ASSERT_TRUE(cache.Lookup("k", &out));
  EXPECT_EQ(out.n_used, 7);
  EXPECT_EQ(metrics.GetCounter("serve.cache.misses")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("serve.cache.hits")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("serve.cache.insertions")->value(), 1u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedFirst) {
  MetricsRegistry metrics;
  // Room for exactly two base-sized entries.
  ResultCache cache(2 * BaseBytes(), &metrics);
  ASSERT_TRUE(cache.Insert("a", ResultTagged(1)));
  ASSERT_TRUE(cache.Insert("b", ResultTagged(2)));
  EXPECT_EQ(cache.entry_count(), 2u);

  // Touch "a" so "b" becomes the LRU entry, then force an eviction.
  MiningResult out;
  ASSERT_TRUE(cache.Lookup("a", &out));
  ASSERT_TRUE(cache.Insert("c", ResultTagged(3)));

  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_FALSE(cache.Lookup("b", &out)) << "LRU entry must be the one evicted";
  EXPECT_TRUE(cache.Lookup("a", &out));
  EXPECT_TRUE(cache.Lookup("c", &out));
  EXPECT_EQ(metrics.GetCounter("serve.cache.evictions")->value(), 1u);
  EXPECT_EQ(cache.bytes_in_use(), 2 * BaseBytes());
}

TEST(ResultCacheTest, RefreshReplacesInPlace) {
  ResultCache cache(1 << 20);
  ASSERT_TRUE(cache.Insert("k", ResultTagged(1)));
  ASSERT_TRUE(cache.Insert("k", ResultTagged(2)));
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.bytes_in_use(), BaseBytes());
  MiningResult out;
  ASSERT_TRUE(cache.Lookup("k", &out));
  EXPECT_EQ(out.n_used, 2);
}

TEST(ResultCacheTest, RefreshedEntryIsMostRecentlyUsed) {
  ResultCache cache(2 * BaseBytes());
  ASSERT_TRUE(cache.Insert("a", ResultTagged(1)));
  ASSERT_TRUE(cache.Insert("b", ResultTagged(2)));
  ASSERT_TRUE(cache.Insert("a", ResultTagged(3)));  // refresh promotes "a"
  ASSERT_TRUE(cache.Insert("c", ResultTagged(4)));  // evicts "b", not "a"
  MiningResult out;
  EXPECT_TRUE(cache.Lookup("a", &out));
  EXPECT_FALSE(cache.Lookup("b", &out));
}

TEST(ResultCacheTest, OversizedEntryIsRejectedNotCached) {
  MetricsRegistry metrics;
  ResultCache cache(BaseBytes() - 1, &metrics);
  EXPECT_FALSE(cache.Insert("big", ResultTagged(1)));
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.bytes_in_use(), 0u);
  EXPECT_EQ(metrics.GetCounter("serve.cache.rejected")->value(), 1u);
}

TEST(ResultCacheTest, LargerPayloadsChargeTheLedger) {
  ResultCache cache(1 << 20);
  MiningResult fat = ResultTagged(1);
  fat.level_stats.resize(8);
  ASSERT_TRUE(cache.Insert("fat", fat));
  EXPECT_EQ(cache.bytes_in_use(), ApproxResultBytes(fat));
  EXPECT_GT(cache.bytes_in_use(), BaseBytes());
}

TEST(ResultCacheTest, ZeroCapacityDisablesQuietly) {
  MetricsRegistry metrics;
  ResultCache cache(0, &metrics);
  EXPECT_FALSE(cache.Insert("k", ResultTagged(1)));
  MiningResult out;
  EXPECT_FALSE(cache.Lookup("k", &out));
  EXPECT_EQ(cache.entry_count(), 0u);
  // A disabled cache stays silent: no miss/rejected noise in the registry.
  EXPECT_EQ(metrics.GetCounter("serve.cache.misses")->value(), 0u);
  EXPECT_EQ(metrics.GetCounter("serve.cache.rejected")->value(), 0u);
}

TEST(ResultCacheTest, BytesGaugeTracksLedger) {
  MetricsRegistry metrics;
  ResultCache cache(2 * BaseBytes(), &metrics);
  ASSERT_TRUE(cache.Insert("a", ResultTagged(1)));
  ASSERT_TRUE(cache.Insert("b", ResultTagged(2)));
  ASSERT_TRUE(cache.Insert("c", ResultTagged(3)));  // evicts "a"
  EXPECT_EQ(metrics.GetGauge("serve.cache.bytes")->value(),
            static_cast<std::int64_t>(cache.bytes_in_use()));
}

}  // namespace
}  // namespace pgm
