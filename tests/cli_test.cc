#include "cli/cli.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "seq/fasta.h"

namespace pgm::cli {
namespace {

TEST(CliInputTest, RawDna) {
  StatusOr<Sequence> s = LoadInput("raw:ACGT");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->ToString(), "ACGT");
  EXPECT_EQ(s->alphabet().size(), 4u);
}

TEST(CliInputTest, RawProteinSuffix) {
  StatusOr<Sequence> s = LoadInput("raw:LWLW@protein");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->alphabet().size(), 20u);
  EXPECT_EQ(s->ToString(), "LWLW");
}

TEST(CliInputTest, RawRejectsBadCharacters) {
  EXPECT_FALSE(LoadInput("raw:ACGTN").ok());
}

TEST(CliInputTest, MissingKindIsError) {
  EXPECT_FALSE(LoadInput("ACGT").ok());
  EXPECT_FALSE(LoadInput("raw:").ok());
  EXPECT_FALSE(LoadInput("bogus:x").ok());
}

TEST(CliInputTest, Presets) {
  StatusOr<Sequence> surrogate = LoadInput("preset:ax829174");
  ASSERT_TRUE(surrogate.ok());
  EXPECT_EQ(surrogate->size(), 10'011u);

  StatusOr<Sequence> bacteria = LoadInput("preset:bacteria:5000:3");
  ASSERT_TRUE(bacteria.ok());
  EXPECT_EQ(bacteria->size(), 5000u);

  EXPECT_FALSE(LoadInput("preset:unknown").ok());
  EXPECT_FALSE(LoadInput("preset:bacteria:-5").ok());
  EXPECT_FALSE(LoadInput("preset:bacteria:10:2:9").ok());
}

TEST(CliInputTest, PresetDeterministicPerSpec) {
  Sequence a = *LoadInput("preset:worm:4000:9");
  Sequence b = *LoadInput("preset:worm:4000:9");
  EXPECT_EQ(a.ToString(), b.ToString());
}

TEST(CliInputTest, FastaFileWithRecordSelection) {
  const std::string path = testing::TempDir() + "/cli_test.fa";
  ASSERT_TRUE(WriteFastaFile(path, {{"one", "", "ACGT"},
                                    {"two", "", "TTTT"}})
                  .ok());
  StatusOr<Sequence> first = LoadInput("fasta:" + path);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->ToString(), "ACGT");
  StatusOr<Sequence> second = LoadInput("fasta:" + path + "#two");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->ToString(), "TTTT");
  EXPECT_FALSE(LoadInput("fasta:" + path + "#three").ok());
  std::remove(path.c_str());
}

TEST(CliInputTest, TextFileDropsNonAlphabet) {
  const std::string path = testing::TempDir() + "/cli_test.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("AC GT\nNN-acgt\n", f);
  std::fclose(f);
  StatusOr<Sequence> s = LoadInput("text:" + path);
  std::remove(path.c_str());
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->ToString(), "ACGTACGT");
}

TEST(CliRunTest, HelpReturnsZeroWithUsage) {
  std::string output;
  EXPECT_EQ(RunFromString("pgm help", &output), 0);
  EXPECT_NE(output.find("mine"), std::string::npos);
  EXPECT_NE(output.find("tandem"), std::string::npos);
}

TEST(CliRunTest, NoArgsShowsUsageWithError) {
  std::string output;
  EXPECT_EQ(RunFromString("pgm", &output), 2);
  EXPECT_NE(output.find("Usage"), std::string::npos);
}

TEST(CliRunTest, UnknownCommand) {
  std::string output;
  EXPECT_EQ(RunFromString("pgm frobnicate", &output), 2);
  EXPECT_NE(output.find("unknown command"), std::string::npos);
}

TEST(CliRunTest, MineOnRawSequence) {
  std::string output;
  const int code = RunFromString(
      "pgm mine --input raw:ACGTACGTACGTACGTACGTACGTACGTACGT "
      "--min-gap 1 --max-gap 3 --rho-percent 1 --start-length 2 --top 5",
      &output);
  EXPECT_EQ(code, 0) << output;
  EXPECT_NE(output.find("frequent patterns"), std::string::npos);
  EXPECT_NE(output.find("pattern"), std::string::npos);
}

TEST(CliRunTest, MineRequiresInput) {
  std::string output;
  EXPECT_EQ(RunFromString("pgm mine --min-gap 1 --max-gap 2", &output), 1);
  EXPECT_NE(output.find("--input is required"), std::string::npos);
}

TEST(CliRunTest, MineRejectsUnknownAlgorithm) {
  std::string output;
  EXPECT_EQ(RunFromString(
                "pgm mine --input raw:ACGT --algorithm quantum --min-gap 0 "
                "--max-gap 1 --rho-percent 1",
                &output),
            1);
  EXPECT_NE(output.find("unknown --algorithm"), std::string::npos);
}

TEST(CliRunTest, MineWritesCsv) {
  const std::string path = testing::TempDir() + "/cli_mine.csv";
  std::string output;
  const int code = RunFromString(
      "pgm mine --input raw:ACGTACGTACGTACGTACGTACGT --min-gap 1 --max-gap 2 "
      "--rho-percent 1 --start-length 1 --csv " + path,
      &output);
  EXPECT_EQ(code, 0) << output;
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char header[64] = {};
  ASSERT_NE(std::fgets(header, sizeof(header), f), nullptr);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(header), "pattern,length,support,ratio,saturated\n");
}

TEST(CliRunTest, AllAlgorithmsAgreeOnPatternCount) {
  auto count_patterns = [](const std::string& algorithm) {
    std::string output;
    const int code = RunFromString(
        "pgm mine --input raw:AACCGGTTAACCGGTTAACCGGTTAACCGGTT --min-gap 0 "
        "--max-gap 2 --rho-percent 2 --start-length 1 --algorithm " +
            algorithm,
        &output);
    EXPECT_EQ(code, 0) << output;
    const std::size_t pos = output.find(" frequent patterns");
    EXPECT_NE(pos, std::string::npos);
    std::size_t start = output.rfind('\n', pos);
    start = (start == std::string::npos) ? 0 : start + 1;
    return output.substr(start, pos - start);
  };
  const std::string mppm = count_patterns("mppm");
  EXPECT_EQ(count_patterns("mpp"), mppm);
  EXPECT_EQ(count_patterns("adaptive"), mppm);
}

TEST(CliRunTest, MineWithLiftRanking) {
  std::string output;
  const int code = RunFromString(
      "pgm mine --input preset:bacteria:4000:2 --min-gap 1 --max-gap 3 "
      "--rho-percent 0.5 --start-length 2 --top 5 --lift",
      &output);
  EXPECT_EQ(code, 0) << output;
  EXPECT_NE(output.find("compositional lift"), std::string::npos);
  EXPECT_NE(output.find("expected (composition)"), std::string::npos);
}

TEST(CliRunTest, EmCommand) {
  std::string output;
  const int code = RunFromString(
      "pgm em --input raw:ACGTCCGT --min-gap 1 --max-gap 2 --m 2", &output);
  EXPECT_EQ(code, 0) << output;
  EXPECT_NE(output.find("e_m = 2"), std::string::npos);  // the paper's value
}

TEST(CliRunTest, ScanCommand) {
  std::string output;
  const int code = RunFromString(
      "pgm scan --input preset:bacteria:4000:5 --pairs AA,AT "
      "--max-distance 12",
      &output);
  EXPECT_EQ(code, 0) << output;
  EXPECT_NE(output.find("corr_AA(p)"), std::string::npos);
  EXPECT_NE(output.find("corr_AT(p)"), std::string::npos);
  EXPECT_NE(output.find("peaks:"), std::string::npos);
}

TEST(CliRunTest, ScanRejectsBadPair) {
  std::string output;
  EXPECT_EQ(RunFromString(
                "pgm scan --input raw:ACGTACGT --pairs AAT --max-distance 3",
                &output),
            1);
}

TEST(CliRunTest, TandemCommand) {
  std::string output;
  const int code = RunFromString(
      "pgm tandem --input raw:GGATATATATATCC --max-period 3 --min-copies 3 "
      "--min-length 6",
      &output);
  EXPECT_EQ(code, 0) << output;
  EXPECT_NE(output.find("AT"), std::string::npos);
}

TEST(CliRunTest, GenerateRoundTripsThroughFastaInput) {
  const std::string path = testing::TempDir() + "/cli_gen.fa";
  std::string output;
  const int code = RunFromString(
      "pgm generate --preset bacteria --length 3000 --seed 11 --output " +
          path,
      &output);
  EXPECT_EQ(code, 0) << output;
  StatusOr<Sequence> loaded = LoadInput("fasta:" + path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 3000u);
  // Must equal the preset generated directly.
  Sequence direct = *LoadInput("preset:bacteria:3000:11");
  EXPECT_EQ(loaded->ToString(), direct.ToString());
}

TEST(CliRunTest, GenerateRequiresOutput) {
  std::string output;
  EXPECT_EQ(RunFromString("pgm generate --preset bacteria", &output), 1);
}

TEST(CliRunTest, CompareCommand) {
  // Mine two inputs to CSV, then compare them.
  const std::string path_a = testing::TempDir() + "/cmp_a.csv";
  const std::string path_b = testing::TempDir() + "/cmp_b.csv";
  std::string output;
  ASSERT_EQ(RunFromString("pgm mine --input preset:bacteria:3000:1 --min-gap 1 "
                          "--max-gap 3 --rho-percent 1 --start-length 2 "
                          "--top 1 --csv " + path_a,
                          &output),
            0)
      << output;
  output.clear();
  ASSERT_EQ(RunFromString("pgm mine --input preset:eukaryote:3000:1 --min-gap 1 "
                          "--max-gap 3 --rho-percent 1 --start-length 2 "
                          "--top 1 --csv " + path_b,
                          &output),
            0)
      << output;
  output.clear();
  const int code =
      RunFromString("pgm compare " + path_a + " " + path_b, &output);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
  EXPECT_EQ(code, 0) << output;
  EXPECT_NE(output.find("common to all"), std::string::npos);
  EXPECT_NE(output.find("Jaccard similarity"), std::string::npos);
}

TEST(CliRunTest, CompareRequiresTwoFiles) {
  std::string output;
  EXPECT_EQ(RunFromString("pgm compare /tmp/only_one.csv", &output), 1);
  EXPECT_NE(output.find("at least two"), std::string::npos);
}

TEST(CliRunTest, SubcommandHelpReturnsZero) {
  std::string output;
  EXPECT_EQ(RunFromString("pgm mine --help", &output), 0);
  EXPECT_NE(output.find("rho-percent"), std::string::npos);
}

}  // namespace
}  // namespace pgm::cli
