#include "cli/cli.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "seq/fasta.h"

namespace pgm::cli {
namespace {

TEST(CliInputTest, RawDna) {
  StatusOr<Sequence> s = LoadInput("raw:ACGT");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->ToString(), "ACGT");
  EXPECT_EQ(s->alphabet().size(), 4u);
}

TEST(CliInputTest, RawProteinSuffix) {
  StatusOr<Sequence> s = LoadInput("raw:LWLW@protein");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->alphabet().size(), 20u);
  EXPECT_EQ(s->ToString(), "LWLW");
}

TEST(CliInputTest, RawRejectsBadCharacters) {
  EXPECT_FALSE(LoadInput("raw:ACGTN").ok());
}

TEST(CliInputTest, MissingKindIsError) {
  EXPECT_FALSE(LoadInput("ACGT").ok());
  EXPECT_FALSE(LoadInput("raw:").ok());
  EXPECT_FALSE(LoadInput("bogus:x").ok());
}

TEST(CliInputTest, Presets) {
  StatusOr<Sequence> surrogate = LoadInput("preset:ax829174");
  ASSERT_TRUE(surrogate.ok());
  EXPECT_EQ(surrogate->size(), 10'011u);

  StatusOr<Sequence> bacteria = LoadInput("preset:bacteria:5000:3");
  ASSERT_TRUE(bacteria.ok());
  EXPECT_EQ(bacteria->size(), 5000u);

  EXPECT_FALSE(LoadInput("preset:unknown").ok());
  EXPECT_FALSE(LoadInput("preset:bacteria:-5").ok());
  EXPECT_FALSE(LoadInput("preset:bacteria:10:2:9").ok());
}

TEST(CliInputTest, PresetDeterministicPerSpec) {
  Sequence a = *LoadInput("preset:worm:4000:9");
  Sequence b = *LoadInput("preset:worm:4000:9");
  EXPECT_EQ(a.ToString(), b.ToString());
}

TEST(CliInputTest, FastaFileWithRecordSelection) {
  const std::string path = testing::TempDir() + "/cli_test.fa";
  ASSERT_TRUE(WriteFastaFile(path, {{"one", "", "ACGT"},
                                    {"two", "", "TTTT"}})
                  .ok());
  StatusOr<Sequence> first = LoadInput("fasta:" + path);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->ToString(), "ACGT");
  StatusOr<Sequence> second = LoadInput("fasta:" + path + "#two");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->ToString(), "TTTT");
  EXPECT_FALSE(LoadInput("fasta:" + path + "#three").ok());
  std::remove(path.c_str());
}

TEST(CliInputTest, TextFileDropsNonAlphabet) {
  const std::string path = testing::TempDir() + "/cli_test.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("AC GT\nNN-acgt\n", f);
  std::fclose(f);
  StatusOr<Sequence> s = LoadInput("text:" + path);
  std::remove(path.c_str());
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->ToString(), "ACGTACGT");
}

TEST(CliRunTest, HelpReturnsZeroWithUsage) {
  std::string output;
  EXPECT_EQ(RunFromString("pgm help", &output), 0);
  EXPECT_NE(output.find("mine"), std::string::npos);
  EXPECT_NE(output.find("tandem"), std::string::npos);
}

TEST(CliRunTest, NoArgsShowsUsageWithError) {
  std::string output;
  EXPECT_EQ(RunFromString("pgm", &output), 2);
  EXPECT_NE(output.find("Usage"), std::string::npos);
}

TEST(CliRunTest, UnknownCommand) {
  std::string output;
  EXPECT_EQ(RunFromString("pgm frobnicate", &output), 2);
  EXPECT_NE(output.find("unknown command"), std::string::npos);
}

TEST(CliRunTest, MineOnRawSequence) {
  std::string output;
  const int code = RunFromString(
      "pgm mine --input raw:ACGTACGTACGTACGTACGTACGTACGTACGT "
      "--min-gap 1 --max-gap 3 --rho-percent 1 --start-length 2 --top 5",
      &output);
  EXPECT_EQ(code, 0) << output;
  EXPECT_NE(output.find("frequent patterns"), std::string::npos);
  EXPECT_NE(output.find("pattern"), std::string::npos);
}

TEST(CliRunTest, MineRequiresInput) {
  std::string output;
  EXPECT_EQ(RunFromString("pgm mine --min-gap 1 --max-gap 2", &output), 2);
  EXPECT_NE(output.find("--input is required"), std::string::npos);
}

TEST(CliRunTest, MineRejectsUnknownAlgorithm) {
  std::string output;
  EXPECT_EQ(RunFromString(
                "pgm mine --input raw:ACGT --algorithm quantum --min-gap 0 "
                "--max-gap 1 --rho-percent 1",
                &output),
            2);
  EXPECT_NE(output.find("unknown --algorithm"), std::string::npos);
}

TEST(CliRunTest, MineWritesCsv) {
  const std::string path = testing::TempDir() + "/cli_mine.csv";
  std::string output;
  const int code = RunFromString(
      "pgm mine --input raw:ACGTACGTACGTACGTACGTACGT --min-gap 1 --max-gap 2 "
      "--rho-percent 1 --start-length 1 --csv " + path,
      &output);
  EXPECT_EQ(code, 0) << output;
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char header[64] = {};
  ASSERT_NE(std::fgets(header, sizeof(header), f), nullptr);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(header), "pattern,length,support,ratio,saturated\n");
}

TEST(CliRunTest, AllAlgorithmsAgreeOnPatternCount) {
  auto count_patterns = [](const std::string& algorithm) {
    std::string output;
    const int code = RunFromString(
        "pgm mine --input raw:AACCGGTTAACCGGTTAACCGGTTAACCGGTT --min-gap 0 "
        "--max-gap 2 --rho-percent 2 --start-length 1 --algorithm " +
            algorithm,
        &output);
    EXPECT_EQ(code, 0) << output;
    const std::size_t pos = output.find(" frequent patterns");
    EXPECT_NE(pos, std::string::npos);
    std::size_t start = output.rfind('\n', pos);
    start = (start == std::string::npos) ? 0 : start + 1;
    return output.substr(start, pos - start);
  };
  const std::string mppm = count_patterns("mppm");
  EXPECT_EQ(count_patterns("mpp"), mppm);
  EXPECT_EQ(count_patterns("adaptive"), mppm);
}

TEST(CliRunTest, MineWithLiftRanking) {
  std::string output;
  const int code = RunFromString(
      "pgm mine --input preset:bacteria:4000:2 --min-gap 1 --max-gap 3 "
      "--rho-percent 0.5 --start-length 2 --top 5 --lift",
      &output);
  EXPECT_EQ(code, 0) << output;
  EXPECT_NE(output.find("compositional lift"), std::string::npos);
  EXPECT_NE(output.find("expected (composition)"), std::string::npos);
}

TEST(CliRunTest, EmCommand) {
  std::string output;
  const int code = RunFromString(
      "pgm em --input raw:ACGTCCGT --min-gap 1 --max-gap 2 --m 2", &output);
  EXPECT_EQ(code, 0) << output;
  EXPECT_NE(output.find("e_m = 2"), std::string::npos);  // the paper's value
}

TEST(CliRunTest, ScanCommand) {
  std::string output;
  const int code = RunFromString(
      "pgm scan --input preset:bacteria:4000:5 --pairs AA,AT "
      "--max-distance 12",
      &output);
  EXPECT_EQ(code, 0) << output;
  EXPECT_NE(output.find("corr_AA(p)"), std::string::npos);
  EXPECT_NE(output.find("corr_AT(p)"), std::string::npos);
  EXPECT_NE(output.find("peaks:"), std::string::npos);
}

TEST(CliRunTest, ScanRejectsBadPair) {
  std::string output;
  EXPECT_EQ(RunFromString(
                "pgm scan --input raw:ACGTACGT --pairs AAT --max-distance 3",
                &output),
            2);
}

TEST(CliRunTest, TandemCommand) {
  std::string output;
  const int code = RunFromString(
      "pgm tandem --input raw:GGATATATATATCC --max-period 3 --min-copies 3 "
      "--min-length 6",
      &output);
  EXPECT_EQ(code, 0) << output;
  EXPECT_NE(output.find("AT"), std::string::npos);
}

TEST(CliRunTest, GenerateRoundTripsThroughFastaInput) {
  const std::string path = testing::TempDir() + "/cli_gen.fa";
  std::string output;
  const int code = RunFromString(
      "pgm generate --preset bacteria --length 3000 --seed 11 --output " +
          path,
      &output);
  EXPECT_EQ(code, 0) << output;
  StatusOr<Sequence> loaded = LoadInput("fasta:" + path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 3000u);
  // Must equal the preset generated directly.
  Sequence direct = *LoadInput("preset:bacteria:3000:11");
  EXPECT_EQ(loaded->ToString(), direct.ToString());
}

TEST(CliRunTest, GenerateRequiresOutput) {
  std::string output;
  EXPECT_EQ(RunFromString("pgm generate --preset bacteria", &output), 2);
}

TEST(CliRunTest, CompareCommand) {
  // Mine two inputs to CSV, then compare them.
  const std::string path_a = testing::TempDir() + "/cmp_a.csv";
  const std::string path_b = testing::TempDir() + "/cmp_b.csv";
  std::string output;
  ASSERT_EQ(RunFromString("pgm mine --input preset:bacteria:3000:1 --min-gap 1 "
                          "--max-gap 3 --rho-percent 1 --start-length 2 "
                          "--top 1 --csv " + path_a,
                          &output),
            0)
      << output;
  output.clear();
  ASSERT_EQ(RunFromString("pgm mine --input preset:eukaryote:3000:1 --min-gap 1 "
                          "--max-gap 3 --rho-percent 1 --start-length 2 "
                          "--top 1 --csv " + path_b,
                          &output),
            0)
      << output;
  output.clear();
  const int code =
      RunFromString("pgm compare " + path_a + " " + path_b, &output);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
  EXPECT_EQ(code, 0) << output;
  EXPECT_NE(output.find("common to all"), std::string::npos);
  EXPECT_NE(output.find("Jaccard similarity"), std::string::npos);
}

TEST(CliRunTest, CompareRequiresTwoFiles) {
  std::string output;
  EXPECT_EQ(RunFromString("pgm compare /tmp/only_one.csv", &output), 2);
  EXPECT_NE(output.find("at least two"), std::string::npos);
}

TEST(CliRunTest, SubcommandHelpReturnsZero) {
  std::string output;
  EXPECT_EQ(RunFromString("pgm mine --help", &output), 0);
  EXPECT_NE(output.find("rho-percent"), std::string::npos);
}

TEST(CliExitCodeTest, StatusCodeMapping) {
  EXPECT_EQ(ExitCodeForStatus(Status::OK()), 0);
  EXPECT_EQ(ExitCodeForStatus(Status::InvalidArgument("x")), 2);
  EXPECT_EQ(ExitCodeForStatus(Status::IoError("x")), 3);
  EXPECT_EQ(ExitCodeForStatus(Status::Corruption("x")), 4);
  EXPECT_EQ(ExitCodeForStatus(Status::ResourceExhausted("x")), 5);
  EXPECT_EQ(ExitCodeForStatus(Status::NotFound("x")), 6);
  EXPECT_EQ(ExitCodeForStatus(Status::Internal("x")), 1);
}

TEST(CliExitCodeTest, MissingFastaFileExitsThree) {
  std::string output, error;
  const int code = RunFromString(
      "pgm mine --input fasta:/nonexistent-dir-xyz/missing.fa --min-gap 0 "
      "--max-gap 1 --rho-percent 1",
      &output, &error);
  EXPECT_EQ(code, 3) << error;
  EXPECT_TRUE(output.empty());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(CliExitCodeTest, CorruptCsvExitsFour) {
  const std::string path = testing::TempDir() + "/cli_corrupt.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("not,a,patterns,header\n", f);
  std::fclose(f);
  std::string output, error;
  const int code =
      RunFromString("pgm compare " + path + " " + path, &output, &error);
  std::remove(path.c_str());
  EXPECT_EQ(code, 4) << error;
  EXPECT_NE(error.find("header"), std::string::npos);
}

TEST(CliExitCodeTest, DiagnosticsGoToErrorStreamNotOutput) {
  std::string output, error;
  EXPECT_EQ(RunFromString("pgm mine --min-gap 1 --max-gap 2", &output, &error),
            2);
  EXPECT_TRUE(output.empty()) << output;
  EXPECT_NE(error.find("--input is required"), std::string::npos);
}

TEST(CliObservabilityTest, MetricsAndTraceFilesAreWritten) {
  const std::string metrics_path = testing::TempDir() + "/cli_metrics.json";
  const std::string trace_path = testing::TempDir() + "/cli_trace.json";
  std::string output;
  const int code = RunFromString(
      "pgm mine --input raw:ACGTACGTACGTACGTACGTACGT --min-gap 0 --max-gap 2 "
      "--rho-percent 1 --start-length 1 --metrics-out " + metrics_path +
          " --trace " + trace_path,
      &output);
  EXPECT_EQ(code, 0) << output;
  EXPECT_NE(output.find("wrote metrics JSON to"), std::string::npos);
  EXPECT_NE(output.find("wrote trace JSON to"), std::string::npos);

  auto read_file = [](const std::string& path) {
    std::string contents;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    if (f == nullptr) return contents;
    char buffer[4096];
    std::size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
      contents.append(buffer, n);
    }
    std::fclose(f);
    return contents;
  };
  const std::string metrics = read_file(metrics_path);
  const std::string trace = read_file(trace_path);
  std::remove(metrics_path.c_str());
  std::remove(trace_path.c_str());
  EXPECT_NE(metrics.find("\"counters\""), std::string::npos);
  EXPECT_NE(metrics.find("\"mine.candidates.generated\""), std::string::npos);
  EXPECT_NE(metrics.find("\"mine.runs\": 1"), std::string::npos);
  EXPECT_NE(trace.find("\"events\""), std::string::npos);
  EXPECT_NE(trace.find("\"kind\": \"run_start\""), std::string::npos);
  EXPECT_NE(trace.find("\"kind\": \"run_end\""), std::string::npos);
  // Byte-stable export: no volatile fields without --trace-timings.
  EXPECT_EQ(trace.find("shard_timing"), std::string::npos);
  EXPECT_EQ(trace.find("memory_peak_bytes"), std::string::npos);
}

TEST(CliObservabilityTest, ExportsAreByteIdenticalAcrossThreadCounts) {
  auto run = [](int threads, const std::string& suffix) {
    const std::string metrics_path =
        testing::TempDir() + "/cli_m_" + suffix + ".json";
    const std::string trace_path =
        testing::TempDir() + "/cli_t_" + suffix + ".json";
    std::string output;
    EXPECT_EQ(RunFromString(
                  "pgm mine --input preset:bacteria:2000:7 --min-gap 1 "
                  "--max-gap 3 --rho-percent 1 --start-length 1 --threads " +
                      std::to_string(threads) + " --metrics-out " +
                      metrics_path + " --trace " + trace_path,
                  &output),
              0)
        << output;
    std::string contents;
    for (const std::string& path : {metrics_path, trace_path}) {
      std::FILE* f = std::fopen(path.c_str(), "rb");
      EXPECT_NE(f, nullptr) << path;
      if (f != nullptr) {
        char buffer[4096];
        std::size_t n = 0;
        while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
          contents.append(buffer, n);
        }
        std::fclose(f);
      }
      std::remove(path.c_str());
    }
    return contents;
  };
  const std::string serial = run(1, "1");
  EXPECT_EQ(run(2, "2"), serial);
  EXPECT_EQ(run(8, "8"), serial);
}

TEST(CliObservabilityTest, UnwritableMetricsPathExitsThreeWithReport) {
  std::string output, error;
  const int code = RunFromString(
      "pgm mine --input raw:ACGTACGTACGTACGTACGTACGT --min-gap 0 --max-gap 2 "
      "--rho-percent 1 --start-length 1 "
      "--metrics-out /nonexistent-dir-xyz/metrics.json",
      &output, &error);
  EXPECT_EQ(code, 3) << error;
  // The mining report was already produced before the write failed — the
  // failure is loud but does not eat the result.
  EXPECT_NE(output.find("frequent patterns"), std::string::npos);
  EXPECT_NE(error.find("cannot open for writing"), std::string::npos);
}

TEST(CliObservabilityTest, TraceTimingsFlagIncludesVolatileFields) {
  const std::string trace_path = testing::TempDir() + "/cli_trace_vol.json";
  std::string output;
  const int code = RunFromString(
      "pgm mine --input raw:ACGTACGTACGTACGTACGTACGT --min-gap 0 --max-gap 2 "
      "--rho-percent 1 --start-length 1 --trace " + trace_path +
          " --trace-timings",
      &output);
  EXPECT_EQ(code, 0) << output;
  std::string contents;
  std::FILE* f = std::fopen(trace_path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(f);
  std::remove(trace_path.c_str());
  EXPECT_NE(contents.find("\"memory_peak_bytes\""), std::string::npos);
}

TEST(CliGovernanceTest, NegativeBudgetRejected) {
  std::string output, error;
  EXPECT_EQ(RunFromString(
                "pgm mine --input raw:ACGTACGT --min-gap 0 --max-gap 1 "
                "--rho-percent 1 --pil-budget-bytes -5",
                &output, &error),
            2);
  EXPECT_NE(error.find("must be non-negative"), std::string::npos);
}

TEST(CliGovernanceTest, ZeroDeadlineExitsZeroWithPartialBanner) {
  std::string output;
  const int code = RunFromString(
      "pgm mine --input raw:ACGTACGTACGTACGTACGTACGT --min-gap 0 --max-gap 2 "
      "--rho-percent 1 --start-length 1 --deadline-ms 0",
      &output);
  EXPECT_EQ(code, 0) << output;
  EXPECT_NE(output.find("partial result"), std::string::npos);
  EXPECT_NE(output.find("deadline"), std::string::npos);
}

TEST(CliGovernanceTest, OneBytePilBudgetExitsZeroWithPartialBanner) {
  std::string output;
  const int code = RunFromString(
      "pgm mine --input raw:ACGTACGTACGTACGTACGTACGT --min-gap 0 --max-gap 2 "
      "--rho-percent 1 --start-length 1 --pil-budget-bytes 1",
      &output);
  EXPECT_EQ(code, 0) << output;
  EXPECT_NE(output.find("partial result"), std::string::npos);
  EXPECT_NE(output.find("memory-budget"), std::string::npos);
}

TEST(CliGovernanceTest, GenerousLimitsMatchUnlimitedOutput) {
  const std::string base =
      "pgm mine --input preset:bacteria:3000:1 --min-gap 1 --max-gap 3 "
      "--rho-percent 0.5 --start-length 2 --top 5";
  std::string unlimited, governed;
  ASSERT_EQ(RunFromString(base, &unlimited), 0);
  ASSERT_EQ(RunFromString(base +
                              " --deadline-ms 600000 --pil-budget-bytes "
                              "4294967296 --max-level-candidates 1000000000 "
                              "--max-total-candidates 1000000000",
                          &governed),
            0);
  // The report includes timings, so compare everything except the summary
  // line's trailing seconds figure.
  const std::size_t cut_a = unlimited.find(" s\n");
  const std::size_t cut_b = governed.find(" s\n");
  ASSERT_NE(cut_a, std::string::npos);
  ASSERT_NE(cut_b, std::string::npos);
  const std::size_t start_a = unlimited.rfind(';', cut_a);
  const std::size_t start_b = governed.rfind(';', cut_b);
  EXPECT_EQ(unlimited.substr(0, start_a), governed.substr(0, start_b));
  EXPECT_EQ(unlimited.substr(cut_a), governed.substr(cut_b));
}

// ---------------------------------------------------------------------------
// pgm serve
// ---------------------------------------------------------------------------

std::string WriteJobsFile(const std::string& name,
                          const std::string& contents) {
  const std::string path = testing::TempDir() + "/" + name;
  std::FILE* f = std::fopen(path.c_str(), "w");
  EXPECT_NE(f, nullptr);
  std::fputs(contents.c_str(), f);
  std::fclose(f);
  return path;
}

// The signal handlers latch the process-wide token; tests that poke it must
// restore it no matter how they exit, or every later test inherits the
// cancellation.
struct ScopedGlobalCancelReset {
  ~ScopedGlobalCancelReset() { GlobalCancelToken().Reset(); }
};

TEST(CliServeTest, BatchRunsAndReportsPerJobOutcomes) {
  const std::string jobs = WriteJobsFile(
      "serve_batch.jobs",
      "# duplicate inputs share one cache entry\n"
      "raw:ACGTACGTACGGTTACACGTACGT rho-percent=50 max-gap=1\n"
      "raw:ACGTACGTACGGTTACACGTACGT rho-percent=50 max-gap=1\n"
      "raw:TTTTGGGGTTTTGGGG rho-percent=50 max-gap=1\n");
  std::string output;
  const int code = RunFromString(
      "pgm serve --jobs " + jobs + " --cache-bytes 1048576", &output);
  std::remove(jobs.c_str());
  EXPECT_EQ(code, 0) << output;
  EXPECT_NE(output.find("served 3 jobs: 3 completed, 0 partial, 0 shed, "
                        "0 failed, 1 cache hits"),
            std::string::npos)
      << output;
  EXPECT_NE(output.find("job 1 "), std::string::npos);
  EXPECT_NE(output.find("cache_hit=1"), std::string::npos);
}

TEST(CliServeTest, OversubmissionShedsWithRetryHint) {
  const std::string jobs = WriteJobsFile(
      "serve_shed.jobs",
      "raw:ACGTACGTACGTACGT rho-percent=50\n"
      "raw:ACGTACGTACGTACGT rho-percent=50\n"
      "raw:ACGTACGTACGTACGT rho-percent=50\n");
  std::string output;
  const int code = RunFromString("pgm serve --jobs " + jobs +
                                     " --queue-capacity 1 --retry-after-ms 99",
                                 &output);
  std::remove(jobs.c_str());
  EXPECT_EQ(code, 0) << output;  // shedding is service behavior, not failure
  EXPECT_NE(output.find("Unavailable retry_after_ms=99"), std::string::npos)
      << output;
  EXPECT_NE(output.find("2 shed"), std::string::npos);
}

TEST(CliServeTest, DeadlineCeilingYieldsPartialResponses) {
  const std::string jobs = WriteJobsFile(
      "serve_deadline.jobs", "raw:ACGTACGTACGGTTACACGTACGT rho-percent=50\n");
  std::string output;
  const int code = RunFromString(
      "pgm serve --jobs " + jobs + " --max-deadline-ms 0", &output);
  std::remove(jobs.c_str());
  EXPECT_EQ(code, 0) << output;
  EXPECT_NE(output.find("deadline patterns=0"), std::string::npos) << output;
  EXPECT_NE(output.find("1 partial"), std::string::npos);
}

TEST(CliServeTest, RequiresJobsFlag) {
  std::string output, error;
  EXPECT_EQ(RunFromString("pgm serve", &output, &error), 2);
  EXPECT_NE(error.find("--jobs is required"), std::string::npos);
}

TEST(CliServeTest, MalformedJobLineIsRejectedWithLineNumber) {
  const std::string jobs =
      WriteJobsFile("serve_bad.jobs", "raw:ACGT rho-percent=50\nraw:ACGT oops\n");
  std::string output, error;
  const int code = RunFromString("pgm serve --jobs " + jobs, &output, &error);
  std::remove(jobs.c_str());
  EXPECT_EQ(code, 2) << error;
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_NE(error.find("expected key=value"), std::string::npos);
}

TEST(CliServeTest, UnknownJobKeyIsRejected) {
  const std::string jobs =
      WriteJobsFile("serve_badkey.jobs", "raw:ACGT frobnicate=1\n");
  std::string output, error;
  const int code = RunFromString("pgm serve --jobs " + jobs, &output, &error);
  std::remove(jobs.c_str());
  EXPECT_EQ(code, 2) << error;
  EXPECT_NE(error.find("unknown key 'frobnicate'"), std::string::npos);
}

TEST(CliServeTest, EmptyJobsFileIsError) {
  const std::string jobs = WriteJobsFile("serve_empty.jobs", "# nothing\n\n");
  std::string output, error;
  const int code = RunFromString("pgm serve --jobs " + jobs, &output, &error);
  std::remove(jobs.c_str());
  EXPECT_EQ(code, 2) << error;
  EXPECT_NE(error.find("no jobs in"), std::string::npos);
}

TEST(CliServeTest, FailedJobIsLoudButDoesNotSinkTheBatch) {
  const std::string jobs = WriteJobsFile(
      "serve_mixed.jobs",
      "raw:ACGTACGTACGTACGT rho-percent=50\n"
      "fasta:/nonexistent-dir-xyz/missing.fa rho-percent=50\n");
  std::string output;
  const int code = RunFromString(
      "pgm serve --jobs " + jobs + " --retry-attempts 1", &output);
  std::remove(jobs.c_str());
  EXPECT_EQ(code, 0) << output;
  EXPECT_NE(output.find("IoError"), std::string::npos) << output;
  EXPECT_NE(output.find("1 completed"), std::string::npos);
  EXPECT_NE(output.find("1 failed"), std::string::npos);
}

TEST(CliServeTest, MetricsAndTraceExportsCoverTheJobLifecycle) {
  const std::string jobs = WriteJobsFile(
      "serve_obs.jobs", "raw:ACGTACGTACGGTTACACGTACGT rho-percent=50\n");
  const std::string metrics_path = testing::TempDir() + "/serve_metrics.json";
  const std::string trace_path = testing::TempDir() + "/serve_trace.json";
  std::string output;
  const int code = RunFromString("pgm serve --jobs " + jobs +
                                     " --metrics-out " + metrics_path +
                                     " --trace " + trace_path,
                                 &output);
  std::remove(jobs.c_str());
  EXPECT_EQ(code, 0) << output;
  auto read_file = [](const std::string& path) {
    std::string contents;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    if (f == nullptr) return contents;
    char buffer[4096];
    std::size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
      contents.append(buffer, n);
    }
    std::fclose(f);
    return contents;
  };
  const std::string metrics = read_file(metrics_path);
  const std::string trace = read_file(trace_path);
  std::remove(metrics_path.c_str());
  std::remove(trace_path.c_str());
  EXPECT_NE(metrics.find("\"serve.jobs.admitted\": 1"), std::string::npos);
  EXPECT_NE(metrics.find("\"serve.jobs.completed\": 1"), std::string::npos);
  EXPECT_NE(metrics.find("\"serve.latency_us\""), std::string::npos);
  EXPECT_NE(trace.find("\"kind\": \"job_admitted\""), std::string::npos);
  EXPECT_NE(trace.find("\"kind\": \"job_start\""), std::string::npos);
  EXPECT_NE(trace.find("\"kind\": \"job_end\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Graceful interrupt (the CLI half of the SIGINT/SIGTERM story — the
// signal handler itself only latches GlobalCancelToken, which is what
// these tests do directly)
// ---------------------------------------------------------------------------

TEST(CliInterruptTest, MineDrainsToPartialResultAndExits130) {
  ScopedGlobalCancelReset reset;
  GlobalCancelToken().RequestCancel();  // as if SIGINT arrived mid-run
  std::string output;
  const int code = RunFromString(
      "pgm mine --input raw:ACGTACGTACGTACGTACGTACGT --min-gap 0 --max-gap 2 "
      "--rho-percent 1 --start-length 1",
      &output);
  EXPECT_EQ(code, kExitCancelled) << output;
  EXPECT_NE(output.find("interrupted: partial result is sound"),
            std::string::npos)
      << output;
  EXPECT_NE(output.find("cancelled"), std::string::npos);
}

TEST(CliInterruptTest, ServeDrainsGracefullyAndExits130) {
  ScopedGlobalCancelReset reset;
  const std::string jobs = WriteJobsFile(
      "serve_interrupt.jobs",
      "raw:ACGTACGTACGGTTACACGTACGT rho-percent=50\n"
      "raw:TTTTGGGGTTTTGGGG rho-percent=50\n");
  GlobalCancelToken().RequestCancel();
  std::string output;
  const int code = RunFromString("pgm serve --jobs " + jobs, &output);
  std::remove(jobs.c_str());
  EXPECT_EQ(code, kExitCancelled) << output;
  EXPECT_NE(output.find("interrupted: drained gracefully"), std::string::npos)
      << output;
  // Every admitted job still gets a response line — the drain never loses
  // one. Whether each shows "cancelled" or "completed" depends on how far
  // the worker got before the watcher latched the drain; both are sound, so
  // the deterministic service_test covers the cancelled path instead.
  EXPECT_NE(output.find("served 2 jobs"), std::string::npos);
  EXPECT_NE(output.find("0 shed, 0 failed"), std::string::npos) << output;
}

TEST(CliInterruptTest, TokenResetRestoresNormalRuns) {
  {
    ScopedGlobalCancelReset reset;
    GlobalCancelToken().RequestCancel();
  }
  std::string output;
  EXPECT_EQ(RunFromString(
                "pgm mine --input raw:ACGTACGTACGTACGTACGTACGT --min-gap 0 "
                "--max-gap 2 --rho-percent 1 --start-length 1",
                &output),
            0)
      << output;
  EXPECT_EQ(output.find("interrupted"), std::string::npos);
}

TEST(CliExitCodeTest, UnavailableMapsToSeven) {
  EXPECT_EQ(ExitCodeForStatus(Status::Unavailable("x")), 7);
}

}  // namespace
}  // namespace pgm::cli
