#include "analysis/maximal.h"

#include <gtest/gtest.h>

#include "core/miner.h"
#include "datagen/generators.h"
#include "util/random.h"

namespace pgm {
namespace {

Pattern Dna(const char* shorthand) {
  return *Pattern::Parse(shorthand, Alphabet::Dna());
}

FrequentPattern Fp(const char* shorthand) {
  FrequentPattern fp;
  fp.pattern = Dna(shorthand);
  fp.support = 1;
  return fp;
}

TEST(SubPatternTest, ContiguousContainment) {
  EXPECT_TRUE(IsSubPatternOf(Dna("AT"), Dna("GATC")));
  EXPECT_TRUE(IsSubPatternOf(Dna("GATC"), Dna("GATC")));
  EXPECT_TRUE(IsSubPatternOf(Dna("G"), Dna("GATC")));
  EXPECT_FALSE(IsSubPatternOf(Dna("AC"), Dna("GATC")));  // not contiguous
  EXPECT_FALSE(IsSubPatternOf(Dna("GATCA"), Dna("GATC")));
}

TEST(MaximalTest, KeepsOnlyUncoveredPatterns) {
  std::vector<FrequentPattern> patterns = {Fp("AT"), Fp("GAT"), Fp("TC"),
                                           Fp("GATC"), Fp("CC")};
  std::vector<FrequentPattern> maximal = FilterMaximalPatterns(patterns);
  // GATC covers AT, GAT, TC; CC survives.
  ASSERT_EQ(maximal.size(), 2u);
  EXPECT_EQ(maximal[0].pattern.ToShorthand(), "GATC");
  EXPECT_EQ(maximal[1].pattern.ToShorthand(), "CC");
}

TEST(MaximalTest, EqualLengthPatternsAllSurvive) {
  std::vector<FrequentPattern> patterns = {Fp("AT"), Fp("TA"), Fp("CG")};
  EXPECT_EQ(FilterMaximalPatterns(patterns).size(), 3u);
}

TEST(MaximalTest, DuplicatesCondense) {
  // A duplicate is a sub-pattern of its twin at the same length? No —
  // equal length is not *proper* containment, but identical keys mean the
  // second copy is covered once the level publishes... ensure stable
  // behavior: both identical entries survive (set insertion happens after
  // the whole level is checked).
  std::vector<FrequentPattern> patterns = {Fp("ACG"), Fp("ACG")};
  EXPECT_EQ(FilterMaximalPatterns(patterns).size(), 2u);
}

TEST(MaximalTest, PreservesInputOrder) {
  std::vector<FrequentPattern> patterns = {Fp("CC"), Fp("GATC"), Fp("TTT")};
  std::vector<FrequentPattern> maximal = FilterMaximalPatterns(patterns);
  ASSERT_EQ(maximal.size(), 3u);
  EXPECT_EQ(maximal[0].pattern.ToShorthand(), "CC");
  EXPECT_EQ(maximal[1].pattern.ToShorthand(), "GATC");
  EXPECT_EQ(maximal[2].pattern.ToShorthand(), "TTT");
}

TEST(MaximalTest, EmptyInput) {
  EXPECT_TRUE(FilterMaximalPatterns({}).empty());
}

TEST(MaximalTest, MiningResultCondensesConsistently) {
  // Property on a real mining result: every non-maximal pattern is a
  // sub-pattern of some maximal one, and no maximal pattern is a proper
  // sub-pattern of another.
  Rng rng(515);
  Sequence s = *UniformRandomSequence(120, Alphabet::Dna(), rng);
  MinerConfig config;
  config.min_gap = 1;
  config.max_gap = 3;
  config.min_support_ratio = 0.01;
  config.start_length = 1;
  MiningResult result = *MineMpp(s, config);
  std::vector<FrequentPattern> maximal = FilterMaximalPatterns(result.patterns);
  ASSERT_FALSE(maximal.empty());
  EXPECT_LT(maximal.size(), result.patterns.size());

  for (const FrequentPattern& fp : result.patterns) {
    bool covered = false;
    for (const FrequentPattern& max : maximal) {
      if (fp.pattern.length() < max.pattern.length() &&
          IsSubPatternOf(fp.pattern, max.pattern)) {
        covered = true;
        break;
      }
      if (fp.pattern == max.pattern) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << fp.pattern.ToShorthand();
  }
  for (const FrequentPattern& a : maximal) {
    for (const FrequentPattern& b : maximal) {
      if (a.pattern.length() < b.pattern.length()) {
        EXPECT_FALSE(IsSubPatternOf(a.pattern, b.pattern))
            << a.pattern.ToShorthand() << " inside "
            << b.pattern.ToShorthand();
      }
    }
  }
}

}  // namespace
}  // namespace pgm
