#include "analysis/report.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "datagen/generators.h"
#include "util/random.h"

namespace pgm {
namespace {

MiningResult MineSomething() {
  Rng rng(616);
  Sequence s = *UniformRandomSequence(80, Alphabet::Dna(), rng);
  MinerConfig config;
  config.min_gap = 1;
  config.max_gap = 2;
  config.min_support_ratio = 0.02;
  config.start_length = 1;
  config.em_order = 2;
  return *MineMppm(s, config);
}

const GapRequirement kGap = *GapRequirement::Create(1, 2);

TEST(ReportTest, ContainsHeadlineAndPatterns) {
  MiningResult result = MineSomething();
  std::string report = FormatMiningReport(result, kGap);
  EXPECT_NE(report.find("frequent patterns"), std::string::npos);
  EXPECT_NE(report.find("gap [1,2]"), std::string::npos);
  EXPECT_NE(report.find("e_m ="), std::string::npos);
  EXPECT_NE(report.find("per-level candidates"), std::string::npos);
  // The longest pattern's shorthand appears in the table (longest first).
  ASSERT_FALSE(result.patterns.empty());
  EXPECT_NE(report.find(result.patterns.back().pattern.ToShorthand()),
            std::string::npos);
}

TEST(ReportTest, TopLimitsRows) {
  MiningResult result = MineSomething();
  ReportOptions options;
  options.top = 3;
  options.include_level_stats = false;
  std::string report = FormatMiningReport(result, kGap, options);
  EXPECT_NE(report.find("more"), std::string::npos);
  EXPECT_EQ(report.find("per-level"), std::string::npos);
}

TEST(ReportTest, MaximalCondensation) {
  MiningResult result = MineSomething();
  ReportOptions options;
  options.maximal_only = true;
  options.top = 0;
  std::string report = FormatMiningReport(result, kGap, options);
  EXPECT_NE(report.find("maximal patterns"), std::string::npos);
}

TEST(PatternsCsvTest, RoundTripsExactly) {
  MiningResult result = MineSomething();
  ASSERT_FALSE(result.patterns.empty());
  std::string csv = PatternsToCsv(result);
  StatusOr<std::vector<FrequentPattern>> loaded =
      ParsePatternsCsv(csv, Alphabet::Dna());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), result.patterns.size());
  for (std::size_t i = 0; i < loaded->size(); ++i) {
    EXPECT_TRUE((*loaded)[i].pattern == result.patterns[i].pattern);
    EXPECT_EQ((*loaded)[i].support, result.patterns[i].support);
    EXPECT_NEAR((*loaded)[i].support_ratio, result.patterns[i].support_ratio,
                1e-12);
    EXPECT_EQ((*loaded)[i].saturated, result.patterns[i].saturated);
  }
}

TEST(PatternsCsvTest, FileRoundTrip) {
  MiningResult result = MineSomething();
  const std::string path = testing::TempDir() + "/report_test.csv";
  ASSERT_TRUE(SavePatternsCsv(result, path).ok());
  StatusOr<std::vector<FrequentPattern>> loaded =
      LoadPatternsCsv(path, Alphabet::Dna());
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), result.patterns.size());
}

TEST(PatternsCsvTest, RejectsWrongHeader) {
  EXPECT_FALSE(
      ParsePatternsCsv("a,b,c\nx,1,2\n", Alphabet::Dna()).ok());
}

TEST(PatternsCsvTest, RejectsInconsistentLength) {
  const std::string csv =
      "pattern,length,support,ratio,saturated\nACG,2,5,0.1,0\n";
  StatusOr<std::vector<FrequentPattern>> loaded =
      ParsePatternsCsv(csv, Alphabet::Dna());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST(PatternsCsvTest, RejectsBadFields) {
  const std::string header = "pattern,length,support,ratio,saturated\n";
  EXPECT_FALSE(
      ParsePatternsCsv(header + "ACN,3,5,0.1,0\n", Alphabet::Dna()).ok());
  EXPECT_FALSE(
      ParsePatternsCsv(header + "ACG,3,-5,0.1,0\n", Alphabet::Dna()).ok());
  EXPECT_FALSE(
      ParsePatternsCsv(header + "ACG,3,5,xyz,0\n", Alphabet::Dna()).ok());
  EXPECT_FALSE(
      ParsePatternsCsv(header + "ACG,3,5,0.1,maybe\n", Alphabet::Dna()).ok());
  EXPECT_FALSE(
      ParsePatternsCsv(header + "ACG,3,5,0.1\n", Alphabet::Dna()).ok());
}

TEST(PatternsCsvTest, EmptyPatternsListRoundTrips) {
  MiningResult empty;
  std::string csv = PatternsToCsv(empty);
  StatusOr<std::vector<FrequentPattern>> loaded =
      ParsePatternsCsv(csv, Alphabet::Dna());
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

}  // namespace
}  // namespace pgm
