// Fixture: naked-lock must fire on direct mutex member calls.
#include <mutex>

void Broken(std::mutex& mu, int* shared) {
  mu.lock();
  ++*shared;
  mu.unlock();
}

void AlsoBroken(std::mutex* mu) {
  if (mu->try_lock()) {
    mu->unlock();
  }
}
