// Fixture: lock-order must fire on nested acquisition out of rank order
// (hierarchy in tests/lint_fixtures/manifests/locks.txt: outer_mu rank 10,
// inner_mu rank 20).
#include "util/mutex.h"

struct State {
  pgm::Mutex outer_mu;
  pgm::Mutex inner_mu;
};

void Broken(State& state) {
  pgm::MutexLock inner(state.inner_mu);
  {
    pgm::MutexLock outer(state.outer_mu);
  }
}

void Clean(State& state) {
  pgm::MutexLock outer(state.outer_mu);
  {
    pgm::MutexLock inner(state.inner_mu);
  }
}
