// Fixture: wall-clock must fire on clock reads outside a sanctioned seam.
#include <chrono>
#include <ctime>

long NowEpoch() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

long NowMono() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

long NowUnix() {
  return static_cast<long>(std::time(nullptr));
}

long NowCpu() {
  return static_cast<long>(std::clock());
}
