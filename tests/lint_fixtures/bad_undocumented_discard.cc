// Fixture: undocumented-discard must fire on a bare (void) cast.
int Compute();

void Broken() {
  (void)Compute();
}
