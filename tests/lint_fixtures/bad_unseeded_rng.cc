// Fixture: unseeded-rng must fire on every nondeterministic RNG source.
#include <cstdlib>
#include <random>

int Broken() { return std::rand(); }

unsigned AlsoBroken() {
  std::random_device rd;
  return rd();
}

unsigned DefaultSeeded() {
  std::mt19937 rng;
  return rng();
}
