// Fixture: raw vector intrinsics outside the dedicated AVX2 translation
// unit. Each line touching an _mm* call or a __m128/__m256/__m512 register
// type must fire raw-intrinsics — SIMD belongs behind core/kernel.h.
#include <immintrin.h>

__m256i LoadMask(const long long* words) {
  __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words));
  return _mm256_and_si256(v, _mm256_set1_epi64x(63));
}

void StoreLanes(float* dst, __m128 lanes) {
  _mm_storeu_ps(dst, lanes);
}
