// Fixture: unordered-iteration must fire on hash-order walks that never
// reach a sorted-emission pattern.
#include <unordered_map>
#include <unordered_set>

int Sum(const std::unordered_map<int, int>& counts) {
  int total = 0;
  for (const auto& kv : counts) total += kv.second;
  return total;
}

unsigned First(const std::unordered_set<unsigned>& seen) {
  return *seen.begin();
}
