// Fixture: pointer-order must fire on address-keyed hashing or ordering.
#include <cstddef>
#include <cstdint>
#include <functional>

struct Node {
  int id;
};

std::size_t HashNode(const Node* node) {
  return std::hash<const Node*>()(node);
}

bool Before(const Node* a, const Node* b) {
  return std::less<const Node*>()(a, b);
}

std::uintptr_t AddressKey(const Node* node) {
  return reinterpret_cast<std::uintptr_t>(node);
}
