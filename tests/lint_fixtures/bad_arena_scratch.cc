// Fixture: arena-scratch must fire on Promote/TruncateToWatermark outside
// a BeginScratch/EndScratch bracket.
struct Span {};
struct Arena {
  Span Promote(Span span);
  void TruncateToWatermark();
};

Span Broken(Arena& arena, Span span) {
  Span kept = arena.Promote(span);
  arena.TruncateToWatermark();
  return kept;
}
