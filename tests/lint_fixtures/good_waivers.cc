// Fixture: every rule stays quiet when waived or when the code is clean.
// pgm-lint: allow(ledger-pairing) — fixture exercises the file-scope waiver.
#include <mutex>

struct Guard {
  bool ChargeMemory(unsigned long long bytes);
};

struct Wrapper {
  // Same-line waiver.
  void lock() { mu_.lock(); }  // pgm-lint: allow(naked-lock)
  // Previous-line waiver.
  // pgm-lint: allow(naked-lock)
  void unlock() { mu_.unlock(); }

  std::mutex mu_;
};

int Compute();

// A waived intrinsic (say, a prefetch staged for later promotion into the
// kernel TU): the line waiver silences raw-intrinsics.
void WarmLine(const char* p) { _mm_prefetch(p, 1); }  // pgm-lint: allow(raw-intrinsics)

bool Clean(Guard& guard) {
  // Documented discard: the comment satisfies undocumented-discard.
  (void)Compute();
  return guard.ChargeMemory(1);
}

// Mentions in comments and strings must never fire: new delete malloc
// std::rand random_device mt19937 Promote( TruncateToWatermark( lock().
const char* kDoc = "call mu.lock() then new int[4] then std::rand()";
