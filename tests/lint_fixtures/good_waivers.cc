// Fixture: every rule stays quiet when waived or when the code is clean.
// pgm-lint: allow(ledger-pairing) — fixture exercises the file-scope waiver.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

// Waived layering edge (the fixture manifest allows tests -> util only).
#include "core/miner.h"  // pgm-lint: allow(layering) — fixture proves the waiver
#include "util/mutex.h"

struct Guard {
  bool ChargeMemory(unsigned long long bytes);
};

struct Wrapper {
  // Same-line waiver.
  void lock() { mu_.lock(); }  // pgm-lint: allow(naked-lock)
  // Previous-line waiver.
  // pgm-lint: allow(naked-lock)
  void unlock() { mu_.unlock(); }

  std::mutex mu_;
};

int Compute();

// A waived intrinsic (say, a prefetch staged for later promotion into the
// kernel TU): the line waiver silences raw-intrinsics.
void WarmLine(const char* p) { _mm_prefetch(p, 1); }  // pgm-lint: allow(raw-intrinsics)

bool Clean(Guard& guard) {
  // Documented discard: the comment satisfies undocumented-discard.
  (void)Compute();
  return guard.ChargeMemory(1);
}

// Sorted-emission escape: iterating the unordered container is legal
// because the collected keys are sorted before anything consumes them.
std::vector<int> SortedKeys(const std::unordered_set<int>& keys) {
  std::vector<int> out;
  for (int key : keys) out.push_back(key);
  std::sort(out.begin(), out.end());
  return out;
}

// Waived unordered read: any element is acceptable here by construction.
int AnyKey(const std::unordered_set<int>& keys) {
  return *keys.begin();  // pgm-lint: allow(unordered-iteration)
}

// Waived clock read (a diagnostics-only path, not a sanctioned seam).
long WaivedNow() {
  // pgm-lint: allow(wall-clock)
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

// Waived address key: a debug tag that never orders or persists anything.
std::uintptr_t DebugTag(const int* p) {
  return reinterpret_cast<std::uintptr_t>(p);  // pgm-lint: allow(pointer-order)
}

struct RankedState {
  pgm::Mutex outer_mu;
  pgm::Mutex inner_mu;
};

// Waived rank inversion (fixture hierarchy: outer_mu 10 < inner_mu 20).
void WaivedInversion(RankedState& state) {
  pgm::MutexLock inner(state.inner_mu);
  // pgm-lint: allow(lock-order)
  pgm::MutexLock outer(state.outer_mu);
}

// Mentions in comments and strings must never fire: new delete malloc
// std::rand random_device mt19937 Promote( TruncateToWatermark( lock()
// system_clock time() hash<int*> for (x : unordered) MutexLock a(m).
const char* kDoc = "call mu.lock() then new int[4] then std::rand()";
