// Fixture: the same clock read that fires in bad_wall_clock.cc is legal
// here because tests/lint_fixtures/manifests/determinism.txt declares this
// file a wall-clock seam.
#include <chrono>

long SeamNow() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
