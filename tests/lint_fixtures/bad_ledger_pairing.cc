// Fixture: ledger-pairing must fire when a file charges the guard ledger
// without any release path.
// The rule is textual: even a ReleaseMemory *declaration* would count as a
// release path, so this guard only charges.
struct Guard {
  bool ChargeMemory(unsigned long long bytes);
};

bool Broken(Guard& guard) {
  // Charges but never releases: the ledger cannot drain to zero.
  return guard.ChargeMemory(4096);
}
