// Fixture: unknown-waiver must fire on a waiver naming a rule that does
// not exist (a typo'd waiver silences nothing).
int Answer() {
  return 42;  // pgm-lint: allow(naked-locks)
}
