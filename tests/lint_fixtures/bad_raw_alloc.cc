// Fixture: raw-alloc must fire on new/delete/malloc in core code.
#include <cstdlib>

int* Broken(int n) {
  int* rows = new int[static_cast<unsigned>(n)];
  delete[] rows;
  return static_cast<int*>(std::malloc(16));
}

void AlsoBroken(void* p) { std::free(p); }
