// Fixture: layering must fire on an include edge the layering manifest
// does not declare (linted with tests/lint_fixtures/manifests/, where
// `tests` may depend on util only).
#include "core/miner.h"
#include "util/io.h"

int UseMiner();
