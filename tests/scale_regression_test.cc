// Scaled regression tests for failure modes that only appear well above
// unit-test input sizes. Both scenarios here OOM-killed early versions of
// the library:
//   1. MPPm's n-estimate degenerating to l1 on repetitive kilobase inputs
//      (a long-double -> double cast made λ' collapse to zero), turning
//      the level thresholds into no-ops.
//   2. The level-wise engine materializing every candidate PIL of a level
//      before thresholding instead of streaming them.
// Inputs are sized to finish in seconds while still being far beyond the
// regime the unit tests cover.

#include <gtest/gtest.h>

#include "core/miner.h"
#include "core/verifier.h"
#include "datagen/presets.h"
#include "seq/fragmenter.h"
#include "util/random.h"

namespace pgm {
namespace {

TEST(ScaleRegressionTest, MppmEstimateStaysUsableOnRepetitiveKilobases) {
  // 20 kb bacteria-like genome under (scaled) Section 7 parameters. With
  // the λ' regression, estimated_n came out as l1 (~1500) and the run
  // exploded; a sane estimate is orders of magnitude below l1.
  Sequence genome = *MakeBacteriaLikeGenome(20'000, 123);
  MinerConfig config;
  config.min_gap = 10;
  config.max_gap = 12;
  config.min_support_ratio = 0.0003;  // scaled for the shorter fragment
  config.start_length = 3;
  config.em_order = 8;
  MiningResult result = *MineMppm(genome, config);
  GapRequirement gap = *GapRequirement::Create(10, 12);
  const std::int64_t l1 = gap.MaxGuaranteedLength(20'000);
  // The e_m bound must beat the λ-only scan (which accepts nearly every k
  // on data like this), and the resulting thresholds must keep the
  // candidate volume bounded — the λ' regression blew past 10^7 here.
  EXPECT_LT(result.estimated_n, l1)
      << "n-estimate degenerated to the worst case";
  MinerConfig no_em = config;
  no_em.use_em_bound = false;
  MiningResult loose = *MineMppm(genome, no_em);
  EXPECT_LT(result.estimated_n, loose.estimated_n);
  EXPECT_LT(result.total_candidates, 5'000'000u);
  EXPECT_GE(result.estimated_n, result.longest_frequent_length);
  EXPECT_FALSE(result.patterns.empty());
}

TEST(ScaleRegressionTest, WorstCaseMppCompletesOnKilobaseInput) {
  // MPP worst case (n = l1) at L = 4000 with a generous threshold: before
  // candidate streaming this materialized every level's PILs at once.
  Rng rng(321);
  Sequence genome = *MakeAx829174Surrogate();
  Sequence segment = *RandomSegment(genome, 4000, rng);
  MinerConfig config;
  config.min_gap = 9;
  config.max_gap = 12;
  config.min_support_ratio = 0.003 / 100.0;
  config.start_length = 3;
  config.user_n = -1;
  MiningResult result = *MineMpp(segment, config);
  EXPECT_FALSE(result.patterns.empty());
  EXPECT_GT(result.longest_frequent_length, 5);
  // Spot-verify the longest pattern's support against the independent DP.
  GapRequirement gap = *GapRequirement::Create(9, 12);
  const FrequentPattern& longest = result.patterns.back();
  EXPECT_EQ(longest.support, CountSupport(segment, longest.pattern, gap)->count);
}

TEST(ScaleRegressionTest, CaseStudyParametersOnRealFragmentSize) {
  // A single 50 kb fragment under the exact Section 7 parameters (the
  // configuration that OOM-killed the pre-fix library within seconds).
  Sequence genome = *MakeEukaryoteLikeGenome(50'000, 456);
  MinerConfig config;
  config.min_gap = 10;
  config.max_gap = 12;
  config.min_support_ratio = 0.006 / 100.0;
  config.start_length = 3;
  config.em_order = 10;
  MiningResult result = *MineMppm(genome, config);
  EXPECT_FALSE(result.patterns.empty());
  // All 256 AT-only length-8 patterns should be frequent (composition).
  std::size_t at_only_8 = 0;
  const Symbol a = Alphabet::Dna().Encode('A');
  const Symbol t = Alphabet::Dna().Encode('T');
  for (const FrequentPattern& fp : result.patterns) {
    if (fp.pattern.length() != 8) continue;
    bool at_only = true;
    for (Symbol s : fp.pattern.symbols()) {
      at_only = at_only && (s == a || s == t);
    }
    if (at_only) ++at_only_8;
  }
  EXPECT_GE(at_only_8, 250u);
}

}  // namespace
}  // namespace pgm
