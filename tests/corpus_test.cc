// Corpus plan and executor properties: the fragment-boundary matrix around
// every off-by-one length (L-1, L, L+1, 2L-1, 2L, and empty), the
// loud-empty-plan contract, the Section 7 guarantee that a pattern's
// support is counted within fragments and never across a fragment boundary,
// and the ledger-drain invariant — the corpus ledger must read zero after
// MineCorpus returns on every termination path (completed, cancelled,
// candidate-cap, per-fragment failure, rejected configuration). Runs under
// the robustness (ASan), concurrency (TSan), and service presets.

#include "corpus/executor.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "core/miner.h"
#include "corpus/plan.h"
#include "seq/fasta.h"
#include "seq/sequence.h"
#include "serve/service.h"
#include "util/status.h"

namespace pgm {
namespace {

Sequence PeriodicSeq(std::size_t length) {
  std::string text;
  for (std::size_t i = 0; i < length; ++i) text.push_back("ACGT"[i % 4]);
  return *Sequence::FromString(text, Alphabet::Dna());
}

CorpusPlanOptions PlanOptions(std::size_t fragment_length, bool keep_tail,
                              std::size_t max_fragments = 0) {
  CorpusPlanOptions options;
  options.fragment.fragment_length = fragment_length;
  options.fragment.keep_tail = keep_tail;
  options.max_fragments = max_fragments;
  return options;
}

MinerConfig TinyConfig(std::int64_t min_gap = 0, std::int64_t max_gap = 0,
                       double rho = 0.001) {
  MinerConfig config;
  config.min_gap = min_gap;
  config.max_gap = max_gap;
  config.min_support_ratio = rho;
  config.start_length = 1;
  config.em_order = 2;
  return config;
}

const FrequentPattern* FindPattern(const std::vector<FrequentPattern>& set,
                                   const std::string& shorthand) {
  for (const FrequentPattern& fp : set) {
    if (fp.pattern.ToShorthand() == shorthand) return &fp;
  }
  return nullptr;
}

// --- Fragment boundary matrix -------------------------------------------

struct BoundaryCase {
  std::size_t length;
  bool keep_tail;
  std::size_t fragments;
  std::size_t skipped_records;
};

TEST(CorpusPlanTest, FragmentBoundaryMatrix) {
  constexpr std::size_t kL = 8;
  const BoundaryCase cases[] = {
      // One symbol short of a window: dropped entirely, or one tail.
      {kL - 1, false, 0, 1},
      {kL - 1, true, 1, 0},
      // Exact window: identical either way.
      {kL, false, 1, 0},
      {kL, true, 1, 0},
      // One symbol past a window: the extra symbol is the tail.
      {kL + 1, false, 1, 0},
      {kL + 1, true, 2, 0},
      // One short of two windows.
      {2 * kL - 1, false, 1, 0},
      {2 * kL - 1, true, 2, 0},
      // Exactly two windows.
      {2 * kL, false, 2, 0},
      {2 * kL, true, 2, 0},
  };
  for (const BoundaryCase& c : cases) {
    SCOPED_TRACE("length=" + std::to_string(c.length) +
                 " keep_tail=" + std::to_string(c.keep_tail));
    StatusOr<CorpusPlan> plan = CorpusPlan::FromSequence(
        PeriodicSeq(c.length), "rec", PlanOptions(kL, c.keep_tail));
    ASSERT_TRUE(plan.ok()) << plan.status().message();
    EXPECT_EQ(plan->fragments().size(), c.fragments);
    EXPECT_EQ(plan->skipped_records().size(), c.skipped_records);
    EXPECT_EQ(plan->num_records(), 1u);
    // Fragments tile the record prefix: ordinal == index, start == i * L,
    // and every fragment but a kept tail is exactly L symbols.
    std::size_t covered = 0;
    for (std::size_t i = 0; i < plan->fragments().size(); ++i) {
      const CorpusFragment& fragment = plan->fragments()[i];
      EXPECT_EQ(fragment.ordinal, i);
      EXPECT_EQ(fragment.fragment_index, i);
      EXPECT_EQ(fragment.record_index, 0u);
      EXPECT_EQ(fragment.record_id, "rec");
      EXPECT_EQ(fragment.start, i * kL);
      EXPECT_LE(fragment.sequence.size(), kL);
      covered += fragment.sequence.size();
    }
    EXPECT_EQ(covered, plan->total_symbols());
    if (c.keep_tail) {
      EXPECT_EQ(covered, c.fragments > 0 ? c.length : 0u);
    } else {
      EXPECT_EQ(covered, c.fragments * kL);
    }
    if (c.skipped_records == 1) {
      EXPECT_EQ(plan->skipped_records()[0].length, c.length);
    }
  }
}

TEST(CorpusPlanTest, EmptySequenceYieldsEmptyPlanWithSkippedRecord) {
  const Sequence empty = *Sequence::FromString("", Alphabet::Dna());
  for (bool keep_tail : {false, true}) {
    SCOPED_TRACE(keep_tail ? "keep_tail" : "drop_tail");
    StatusOr<CorpusPlan> plan =
        CorpusPlan::FromSequence(empty, "void", PlanOptions(8, keep_tail));
    ASSERT_TRUE(plan.ok()) << plan.status().message();
    EXPECT_TRUE(plan->fragments().empty());
    ASSERT_EQ(plan->skipped_records().size(), 1u);
    EXPECT_EQ(plan->skipped_records()[0].record_id, "void");
    EXPECT_EQ(plan->skipped_records()[0].length, 0u);
  }
}

// The loud-diagnostic contract: an empty plan explains which records were
// too short and how to fix it, and MineCorpus refuses to run it — never a
// silent zero-pattern success.
TEST(CorpusPlanTest, EmptyPlanDiagnosticNamesRecordsAndFix) {
  const CorpusPlanOptions options = PlanOptions(100, /*keep_tail=*/false);
  CorpusPlan plan =
      *CorpusPlan::FromSequence(PeriodicSeq(12), "short_rec", options);
  ASSERT_TRUE(plan.fragments().empty());

  const std::string diagnostic = plan.EmptyPlanDiagnostic(options);
  EXPECT_NE(diagnostic.find("corpus plan is empty"), std::string::npos)
      << diagnostic;
  EXPECT_NE(diagnostic.find("short_rec"), std::string::npos) << diagnostic;
  EXPECT_NE(diagnostic.find("fragment_length=100"), std::string::npos)
      << diagnostic;
  EXPECT_NE(diagnostic.find("keep_tail=false"), std::string::npos)
      << diagnostic;
  EXPECT_NE(diagnostic.find("hint:"), std::string::npos) << diagnostic;

  CorpusOptions corpus_options;
  corpus_options.miner = TinyConfig();
  StatusOr<CorpusResult> result = MineCorpus(plan, corpus_options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CorpusPlanTest, MultiRecordOrdinalsAndFragmentCap) {
  std::vector<FastaRecord> records = {
      {"alpha", "", "ACGTACGTAC"},  // 10 symbols -> 2 windows of 4 + tail
      {"beta", "", "ACG"},          // sub-window -> skipped
      {"gamma", "", "ACGTACGT"},    // exactly 2 windows
  };
  const CorpusPlanOptions options = PlanOptions(4, /*keep_tail=*/false);
  CorpusPlan plan =
      *CorpusPlan::FromRecords(records, Alphabet::Dna(), options);
  ASSERT_EQ(plan.fragments().size(), 4u);
  EXPECT_EQ(plan.num_records(), 3u);
  ASSERT_EQ(plan.skipped_records().size(), 1u);
  EXPECT_EQ(plan.skipped_records()[0].record_id, "beta");
  // Ordinals are corpus-wide and dense; fragment_index restarts per record.
  const char* expected_ids[] = {"alpha", "alpha", "gamma", "gamma"};
  const std::size_t expected_fragment_index[] = {0, 1, 0, 1};
  for (std::size_t i = 0; i < plan.fragments().size(); ++i) {
    EXPECT_EQ(plan.fragments()[i].ordinal, i);
    EXPECT_EQ(plan.fragments()[i].record_id, expected_ids[i]);
    EXPECT_EQ(plan.fragments()[i].fragment_index, expected_fragment_index[i]);
  }

  // The deterministic cap keeps the plan-order prefix.
  CorpusPlan capped = *CorpusPlan::FromRecords(
      records, Alphabet::Dna(), PlanOptions(4, false, /*max_fragments=*/3));
  ASSERT_EQ(capped.fragments().size(), 3u);
  EXPECT_EQ(capped.fragments()[2].record_id, "gamma");
}

// --- Section 7 boundary semantics ---------------------------------------

// A planted run of G's straddling the fragment boundary must NOT produce a
// cross-fragment pattern: mining the unfragmented sequence finds "GGG"
// (the run GGGG spans positions 18..21), but the corpus union — fragment 0
// sees G's at 18,19 and fragment 1 at 20,21 — reports only "GG", because
// §7 support is counted within fragments, never across a boundary.
TEST(CorpusExecutorTest, PlantedPatternSupportNeverCrossesFragmentBoundary) {
  std::string text;
  for (std::size_t i = 0; i < 40; ++i) text.push_back(i % 2 == 0 ? 'A' : 'T');
  // Two G-pairs per fragment so "GG" is solidly frequent per fragment; the
  // pair at 18,19 + the pair at 20,21 form the boundary-straddling GGGG.
  for (std::size_t i : {5u, 6u, 18u, 19u, 20u, 21u, 33u, 34u}) text[i] = 'G';
  const Sequence whole = *Sequence::FromString(text, Alphabet::Dna());

  const MinerConfig config = TinyConfig(/*min_gap=*/0, /*max_gap=*/0);
  MiningResult unfragmented = *MineMppm(whole, config);
  ASSERT_NE(FindPattern(unfragmented.patterns, "GGG"), nullptr)
      << "straddling run not frequent in the unfragmented sequence; the "
         "boundary test would be vacuous";

  CorpusPlan plan = *CorpusPlan::FromSequence(
      whole, "straddle", PlanOptions(20, /*keep_tail=*/false));
  ASSERT_EQ(plan.fragments().size(), 2u);
  CorpusOptions options;
  options.miner = config;
  CorpusResult corpus = *MineCorpus(plan, options);
  ASSERT_EQ(corpus.fragments_completed, 2u);

  EXPECT_EQ(FindPattern(corpus.patterns, "GGG"), nullptr)
      << "corpus union contains a pattern only supported across the "
         "fragment boundary";
  EXPECT_EQ(FindPattern(corpus.patterns, "GGGG"), nullptr);
  const FrequentPattern* gg = FindPattern(corpus.patterns, "GG");
  ASSERT_NE(gg, nullptr);
  // Both fragments report "GG"; the union keeps the best per-fragment
  // support (2 occurrences in each fragment, never the whole-sequence 4).
  for (std::size_t i = 0; i < corpus.patterns.size(); ++i) {
    if (&corpus.patterns[i] == gg) {
      EXPECT_EQ(corpus.pattern_fragment_counts[i], 2u);
    }
  }
  EXPECT_EQ(gg->support, 2u);
  const FrequentPattern* whole_gg = FindPattern(unfragmented.patterns, "GG");
  ASSERT_NE(whole_gg, nullptr);
  EXPECT_GT(whole_gg->support, gg->support)
      << "whole-sequence support should exceed the per-fragment best";
}

// --- Ledger drain on every termination path -----------------------------

TEST(CorpusExecutorTest, LedgerDrainsAfterCompletedRun) {
  CorpusPlan plan = *CorpusPlan::FromSequence(PeriodicSeq(64), "rec",
                                              PlanOptions(16, false));
  ASSERT_EQ(plan.fragments().size(), 4u);
  CorpusLedger ledger;
  CorpusOptions options;
  options.miner = TinyConfig(1, 2, 0.02);
  options.corpus_threads = 2;
  options.ledger = &ledger;
  CorpusResult corpus = *MineCorpus(plan, options);
  EXPECT_EQ(corpus.termination, TerminationReason::kCompleted);
  EXPECT_TRUE(corpus.complete());
  EXPECT_EQ(corpus.fragments_completed, 4u);
  EXPECT_EQ(ledger.outstanding_bytes(), 0u);
  EXPECT_GT(ledger.peak_bytes(), 0u);
  EXPECT_EQ(corpus.ledger_peak_bytes, ledger.peak_bytes());
  EXPECT_GT(corpus.guaranteed_complete_up_to, 0);
}

TEST(CorpusExecutorTest, LedgerDrainsWhenCancelledBeforeStart) {
  CorpusPlan plan = *CorpusPlan::FromSequence(PeriodicSeq(64), "rec",
                                              PlanOptions(16, false));
  CancelToken cancel;
  cancel.RequestCancel();
  CorpusLedger ledger;
  CorpusOptions options;
  options.miner = TinyConfig(1, 2, 0.02);
  options.cancel = &cancel;
  options.ledger = &ledger;
  CorpusResult corpus = *MineCorpus(plan, options);
  EXPECT_EQ(corpus.termination, TerminationReason::kCancelled);
  EXPECT_EQ(corpus.fragments_skipped, 4u);
  EXPECT_EQ(corpus.fragments_mined, 0u);
  EXPECT_TRUE(corpus.patterns.empty());
  // Nothing was picked up, so nothing was ever charged.
  EXPECT_EQ(ledger.outstanding_bytes(), 0u);
  EXPECT_EQ(ledger.peak_bytes(), 0u);
  EXPECT_EQ(corpus.guaranteed_complete_up_to, 0);
}

TEST(CorpusExecutorTest, LedgerDrainsWhenCorpusCandidateCapTrips) {
  CorpusPlan plan = *CorpusPlan::FromSequence(PeriodicSeq(64), "rec",
                                              PlanOptions(16, false));
  CorpusLedger ledger;
  CorpusOptions options;
  options.miner = TinyConfig(1, 2, 0.02);
  // Serial so the trip point is deterministic: fragment 0 mines, its
  // candidate total latches the corpus cap, fragments 1..3 are skipped.
  options.corpus_threads = 1;
  options.limits.max_total_candidates = 1;
  options.ledger = &ledger;
  CorpusResult corpus = *MineCorpus(plan, options);
  EXPECT_EQ(corpus.termination, TerminationReason::kCandidateCap);
  EXPECT_EQ(corpus.fragments_mined, 1u);
  EXPECT_EQ(corpus.fragments_skipped, 3u);
  // Partial-but-sound: the mined fragment's patterns survive the trip.
  EXPECT_FALSE(corpus.patterns.empty());
  EXPECT_EQ(ledger.outstanding_bytes(), 0u);
  EXPECT_GT(ledger.peak_bytes(), 0u);
  EXPECT_EQ(corpus.guaranteed_complete_up_to, 0);
}

TEST(CorpusExecutorTest, LedgerDrainsWhenEveryFragmentFails) {
  CorpusPlan plan = *CorpusPlan::FromSequence(PeriodicSeq(64), "rec",
                                              PlanOptions(16, false));
  CorpusLedger ledger;
  CorpusOptions options;
  options.miner = TinyConfig(/*min_gap=*/5, /*max_gap=*/2);  // rejected
  options.corpus_threads = 2;
  options.ledger = &ledger;
  CorpusResult corpus = *MineCorpus(plan, options);
  EXPECT_EQ(corpus.fragments_failed, 4u);
  EXPECT_EQ(corpus.fragments_completed, 0u);
  EXPECT_TRUE(corpus.patterns.empty());
  for (const FragmentResult& fragment : corpus.fragments) {
    EXPECT_TRUE(fragment.mined);
    EXPECT_FALSE(fragment.status.ok());
  }
  EXPECT_EQ(ledger.outstanding_bytes(), 0u);
  EXPECT_GT(ledger.peak_bytes(), 0u);
  EXPECT_EQ(corpus.guaranteed_complete_up_to, 0);
}

TEST(CorpusExecutorTest, UnknownAlgorithmFailsWithoutCharging) {
  CorpusPlan plan = *CorpusPlan::FromSequence(PeriodicSeq(32), "rec",
                                              PlanOptions(16, false));
  CorpusLedger ledger;
  CorpusOptions options;
  options.algorithm = "nonesuch";
  options.ledger = &ledger;
  StatusOr<CorpusResult> result = MineCorpus(plan, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ledger.outstanding_bytes(), 0u);
  EXPECT_EQ(ledger.peak_bytes(), 0u);
}

TEST(CorpusExecutorTest, ToMiningResultCarriesTheAggregate) {
  CorpusPlan plan = *CorpusPlan::FromSequence(PeriodicSeq(64), "rec",
                                              PlanOptions(16, false));
  CorpusOptions options;
  options.miner = TinyConfig(1, 2, 0.02);
  CorpusResult corpus = *MineCorpus(plan, options);
  const MiningResult flat = corpus.ToMiningResult();
  ASSERT_EQ(flat.patterns.size(), corpus.patterns.size());
  for (std::size_t i = 0; i < flat.patterns.size(); ++i) {
    EXPECT_EQ(flat.patterns[i].pattern, corpus.patterns[i].pattern);
    EXPECT_EQ(flat.patterns[i].support, corpus.patterns[i].support);
  }
  EXPECT_EQ(flat.termination, corpus.termination);
  EXPECT_EQ(flat.total_candidates, corpus.total_candidates);
  EXPECT_EQ(flat.longest_frequent_length, corpus.longest_frequent_length);
  EXPECT_EQ(flat.guaranteed_complete_up_to, corpus.guaranteed_complete_up_to);
}

// --- Serve-layer corpus jobs --------------------------------------------

ServiceConfig CorpusServiceConfig() {
  ServiceConfig config;
  config.loader = [](const std::string& input) -> StatusOr<Sequence> {
    return Sequence::FromString(input, Alphabet::Dna());
  };
  config.corpus_loader =
      [](const std::string& input,
         const CorpusPlanOptions& options) -> StatusOr<CorpusPlan> {
    PGM_ASSIGN_OR_RETURN(Sequence sequence,
                         Sequence::FromString(input, Alphabet::Dna()));
    return CorpusPlan::FromSequence(sequence, "inline", options);
  };
  return config;
}

TEST(CorpusServeTest, CorpusJobMatchesDirectExecutor) {
  const std::string residues = PeriodicSeq(64).ToString();
  MiningJob job;
  job.input = residues;
  job.algorithm = "mppm";
  job.config = TinyConfig(1, 2, 0.02);
  job.corpus_fragment_length = 16;

  MiningService service(CorpusServiceConfig());
  ASSERT_TRUE(service.Submit(job).ok());
  service.Start();
  std::vector<JobResponse> responses = service.Join();
  ASSERT_EQ(responses.size(), 1u);
  const JobResponse& response = responses[0];
  ASSERT_TRUE(response.status.ok()) << response.status.message();
  EXPECT_EQ(response.corpus_fragments, 4u);
  EXPECT_FALSE(response.cache_hit);

  // The service answer must match the executor run directly.
  CorpusPlan plan = *CorpusPlan::FromSequence(PeriodicSeq(64), "inline",
                                              PlanOptions(16, false));
  CorpusOptions options;
  options.algorithm = "mppm";
  options.miner = TinyConfig(1, 2, 0.02);
  const MiningResult expected = MineCorpus(plan, options)->ToMiningResult();
  ASSERT_EQ(response.result.patterns.size(), expected.patterns.size());
  for (std::size_t i = 0; i < expected.patterns.size(); ++i) {
    EXPECT_EQ(response.result.patterns[i].pattern,
              expected.patterns[i].pattern);
    EXPECT_EQ(response.result.patterns[i].support,
              expected.patterns[i].support);
  }
  EXPECT_EQ(response.result.termination, expected.termination);
}

TEST(CorpusServeTest, CorpusJobWithoutLoaderIsFailedPrecondition) {
  ServiceConfig config;
  config.loader = [](const std::string& input) -> StatusOr<Sequence> {
    return Sequence::FromString(input, Alphabet::Dna());
  };
  MiningJob job;
  job.input = "ACGTACGTACGTACGT";
  job.corpus_fragment_length = 4;
  MiningService service(std::move(config));
  ASSERT_TRUE(service.Submit(job).ok());
  service.Start();
  std::vector<JobResponse> responses = service.Join();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status.code(), StatusCode::kFailedPrecondition);
}

TEST(CorpusServeTest, EmptyCorpusPlanFailsLoudlyThroughService) {
  MiningJob job;
  job.input = "ACGT";  // 4 symbols, sub-window for fragment_length 100
  job.corpus_fragment_length = 100;
  MiningService service(CorpusServiceConfig());
  ASSERT_TRUE(service.Submit(job).ok());
  service.Start();
  std::vector<JobResponse> responses = service.Join();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(responses[0].status.message().find("corpus plan is empty"),
            std::string::npos)
      << responses[0].status.message();
}

}  // namespace
}  // namespace pgm
