// The linter's own test suite: every rule must fire on its seeded bad
// fixture (tests/lint_fixtures/), waivers must silence it, and the live
// source tree must lint clean. PGM_LINT_FIXTURE_DIR and PGM_LINT_SOURCE_DIR
// are injected by tests/CMakeLists.txt.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/lint.h"
#include "util/io.h"

namespace pgm {
namespace lint {
namespace {

std::vector<Finding> LintFixture(const std::string& name, bool all_rules) {
  const std::string path = std::string(PGM_LINT_FIXTURE_DIR) + "/" + name;
  StatusOr<std::string> content = ReadFileToString(path);
  EXPECT_TRUE(content.ok()) << path;
  LintOptions options;
  options.all_rules = all_rules;
  return LintSource(path, content.ok() ? content.value() : "", options);
}

std::set<std::string> Rules(const std::vector<Finding>& findings) {
  std::set<std::string> rules;
  for (const Finding& f : findings) rules.insert(f.rule);
  return rules;
}

TEST(LintFixtureTest, NakedLockFires) {
  const std::vector<Finding> findings =
      LintFixture("bad_naked_lock.cc", /*all_rules=*/true);
  EXPECT_EQ(Rules(findings), std::set<std::string>{"naked-lock"});
  // lock, unlock, try_lock, unlock: four offending lines.
  EXPECT_EQ(findings.size(), 4u);
}

TEST(LintFixtureTest, RawAllocFires) {
  const std::vector<Finding> findings =
      LintFixture("bad_raw_alloc.cc", /*all_rules=*/true);
  EXPECT_EQ(Rules(findings), std::set<std::string>{"raw-alloc"});
  // new, delete, malloc, free.
  EXPECT_EQ(findings.size(), 4u);
}

TEST(LintFixtureTest, RawAllocIsScopedToCore) {
  // The same content under a non-core path is exempt unless all_rules.
  const std::string path = std::string(PGM_LINT_FIXTURE_DIR) + "/bad_raw_alloc.cc";
  StatusOr<std::string> content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_TRUE(
      LintSource("tests/helper.cc", content.value(), LintOptions{}).empty());
  EXPECT_FALSE(
      LintSource("src/core/helper.cc", content.value(), LintOptions{})
          .empty());
}

TEST(LintFixtureTest, RawIntrinsicsFires) {
  const std::vector<Finding> findings =
      LintFixture("bad_raw_intrinsics.cc", /*all_rules=*/true);
  EXPECT_EQ(Rules(findings), std::set<std::string>{"raw-intrinsics"});
  // __m256i declaration, gather/and/set lines, a __m128 parameter, and an
  // _mm_ store: five offending lines (one finding per line).
  EXPECT_EQ(findings.size(), 5u);
}

TEST(LintFixtureTest, RawIntrinsicsExemptInAvx2Kernel) {
  // The same content under the sanctioned SIMD TU is clean — even with
  // all_rules, which the tree-scan tests run over the live tree.
  const std::string path =
      std::string(PGM_LINT_FIXTURE_DIR) + "/bad_raw_intrinsics.cc";
  StatusOr<std::string> content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  LintOptions all;
  all.all_rules = true;
  EXPECT_TRUE(
      LintSource("src/core/kernel_avx2.cc", content.value(), all).empty());
  // Any other path fires under default options: the rule is tree-wide.
  EXPECT_FALSE(
      LintSource("src/core/kernel.cc", content.value(), LintOptions{})
          .empty());
  EXPECT_FALSE(
      LintSource("tests/helper.cc", content.value(), LintOptions{}).empty());
}

TEST(LintFixtureTest, UnseededRngFires) {
  const std::vector<Finding> findings =
      LintFixture("bad_unseeded_rng.cc", /*all_rules=*/true);
  EXPECT_EQ(Rules(findings), std::set<std::string>{"unseeded-rng"});
  // std::rand, random_device, default-constructed mt19937.
  EXPECT_EQ(findings.size(), 3u);
}

TEST(LintFixtureTest, UndocumentedDiscardFires) {
  const std::vector<Finding> findings =
      LintFixture("bad_undocumented_discard.cc", /*all_rules=*/true);
  EXPECT_EQ(Rules(findings), std::set<std::string>{"undocumented-discard"});
  EXPECT_EQ(findings.size(), 1u);
}

TEST(LintFixtureTest, LedgerPairingFires) {
  const std::vector<Finding> findings =
      LintFixture("bad_ledger_pairing.cc", /*all_rules=*/true);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "ledger-pairing");
}

TEST(LintFixtureTest, ArenaScratchFires) {
  const std::vector<Finding> findings =
      LintFixture("bad_arena_scratch.cc", /*all_rules=*/true);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "arena-scratch");
}

TEST(LintFixtureTest, WaiversSilenceEveryRule) {
  EXPECT_TRUE(LintFixture("good_waivers.cc", /*all_rules=*/true).empty());
}

TEST(LintFixtureTest, DigitSeparatorsDoNotDerailStripping) {
  // 200'000 is a digit separator, not a char-literal open; the release on
  // the next line must still register.
  const std::string source =
      "void f(G& g) {\n"
      "  for (int i = 0; i < 200'000; ++i) g.ChargeMemory(1);\n"
      "  g.ReleaseMemory(200'000);\n"
      "}\n";
  LintOptions options;
  options.all_rules = true;
  EXPECT_TRUE(LintSource("x.cc", source, options).empty());
}

TEST(LintFixtureTest, CommentsAndStringsAreInvisible) {
  const std::string source =
      "// mu.lock() and new int[3] and std::rand()\n"
      "/* delete p; (void)x; */\n"
      "const char* s = \"mu.lock()\";\n";
  LintOptions options;
  options.all_rules = true;
  EXPECT_TRUE(LintSource("x.cc", source, options).empty());
}

TEST(LintFixtureTest, ServeSourcesAreInScope) {
  // The serving layer is concurrency-heavy; a naked lock there must trip
  // the linter exactly as it would in src/core.
  const std::string source = "void f(M& mu) { mu.lock(); mu.unlock(); }\n";
  const std::vector<Finding> findings =
      LintSource("src/serve/helper.cc", source, LintOptions{});
  EXPECT_EQ(Rules(findings), std::set<std::string>{"naked-lock"});
}

// The gate itself: the live tree must be clean. Same scan `ctest -L lint`
// runs through the pgm_lint binary, duplicated here so a plain `ctest`
// (tier-1) also refuses a tree with violations.
TEST(LintTreeTest, SourceTreeIsClean) {
  StatusOr<std::vector<Finding>> findings =
      LintTree(PGM_LINT_SOURCE_DIR, LintOptions{});
  ASSERT_TRUE(findings.ok()) << findings.status().ToString();
  std::string report;
  for (const Finding& f : findings.value()) {
    report += FormatFinding(f) + "\n";
  }
  EXPECT_TRUE(findings.value().empty()) << report;
}

TEST(LintTreeTest, FixtureCorpusIsExcludedFromTreeScans) {
  LintOptions options;
  options.all_rules = true;
  StatusOr<std::vector<Finding>> findings =
      LintTree(PGM_LINT_SOURCE_DIR, options);
  ASSERT_TRUE(findings.ok());
  for (const Finding& f : findings.value()) {
    EXPECT_EQ(f.file.find("lint_fixtures"), std::string::npos) << f.file;
  }
}

}  // namespace
}  // namespace lint
}  // namespace pgm
