// The linter's own test suite: every rule must fire on its seeded bad
// fixture (tests/lint_fixtures/), waivers must silence it, and the live
// source tree must lint clean. PGM_LINT_FIXTURE_DIR and PGM_LINT_SOURCE_DIR
// are injected by tests/CMakeLists.txt.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "tools/lint/analyze.h"
#include "tools/lint/lint.h"
#include "util/io.h"

namespace pgm {
namespace lint {
namespace {

std::vector<Finding> LintFixture(const std::string& name, bool all_rules) {
  const std::string path = std::string(PGM_LINT_FIXTURE_DIR) + "/" + name;
  StatusOr<std::string> content = ReadFileToString(path);
  EXPECT_TRUE(content.ok()) << path;
  LintOptions options;
  options.all_rules = all_rules;
  return LintSource(path, content.ok() ? content.value() : "", options);
}

/// The fixture manifests (tests/lint_fixtures/manifests/), loaded once: the
/// layering and lock-order passes only run when manifests are supplied.
const AnalyzerManifests& FixtureManifests() {
  static const AnalyzerManifests* manifests = [] {
    StatusOr<AnalyzerManifests> loaded =
        LoadManifests(std::string(PGM_LINT_FIXTURE_DIR) + "/manifests");
    EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
    return new AnalyzerManifests(std::move(loaded).value());
  }();
  return *manifests;
}

std::vector<Finding> AnalyzeFixture(const std::string& name) {
  const std::string path = std::string(PGM_LINT_FIXTURE_DIR) + "/" + name;
  StatusOr<std::string> content = ReadFileToString(path);
  EXPECT_TRUE(content.ok()) << path;
  LintOptions options;
  options.all_rules = true;
  options.manifests = &FixtureManifests();
  return LintSource(path, content.ok() ? content.value() : "", options);
}

std::set<std::string> Rules(const std::vector<Finding>& findings) {
  std::set<std::string> rules;
  for (const Finding& f : findings) rules.insert(f.rule);
  return rules;
}

TEST(LintFixtureTest, NakedLockFires) {
  const std::vector<Finding> findings =
      LintFixture("bad_naked_lock.cc", /*all_rules=*/true);
  EXPECT_EQ(Rules(findings), std::set<std::string>{"naked-lock"});
  // lock, unlock, try_lock, unlock: four offending lines.
  EXPECT_EQ(findings.size(), 4u);
}

TEST(LintFixtureTest, RawAllocFires) {
  const std::vector<Finding> findings =
      LintFixture("bad_raw_alloc.cc", /*all_rules=*/true);
  EXPECT_EQ(Rules(findings), std::set<std::string>{"raw-alloc"});
  // new, delete, malloc, free.
  EXPECT_EQ(findings.size(), 4u);
}

TEST(LintFixtureTest, RawAllocIsScopedToCore) {
  // The same content under a non-core path is exempt unless all_rules.
  const std::string path = std::string(PGM_LINT_FIXTURE_DIR) + "/bad_raw_alloc.cc";
  StatusOr<std::string> content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_TRUE(
      LintSource("tests/helper.cc", content.value(), LintOptions{}).empty());
  EXPECT_FALSE(
      LintSource("src/core/helper.cc", content.value(), LintOptions{})
          .empty());
}

TEST(LintFixtureTest, RawIntrinsicsFires) {
  const std::vector<Finding> findings =
      LintFixture("bad_raw_intrinsics.cc", /*all_rules=*/true);
  EXPECT_EQ(Rules(findings), std::set<std::string>{"raw-intrinsics"});
  // __m256i declaration, gather/and/set lines, a __m128 parameter, and an
  // _mm_ store: five offending lines (one finding per line).
  EXPECT_EQ(findings.size(), 5u);
}

TEST(LintFixtureTest, RawIntrinsicsExemptInAvx2Kernel) {
  // The same content under the sanctioned SIMD TU is clean — even with
  // all_rules, which the tree-scan tests run over the live tree.
  const std::string path =
      std::string(PGM_LINT_FIXTURE_DIR) + "/bad_raw_intrinsics.cc";
  StatusOr<std::string> content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  LintOptions all;
  all.all_rules = true;
  EXPECT_TRUE(
      LintSource("src/core/kernel_avx2.cc", content.value(), all).empty());
  // Any other path fires under default options: the rule is tree-wide.
  EXPECT_FALSE(
      LintSource("src/core/kernel.cc", content.value(), LintOptions{})
          .empty());
  EXPECT_FALSE(
      LintSource("tests/helper.cc", content.value(), LintOptions{}).empty());
}

TEST(LintFixtureTest, UnseededRngFires) {
  const std::vector<Finding> findings =
      LintFixture("bad_unseeded_rng.cc", /*all_rules=*/true);
  EXPECT_EQ(Rules(findings), std::set<std::string>{"unseeded-rng"});
  // std::rand, random_device, default-constructed mt19937.
  EXPECT_EQ(findings.size(), 3u);
}

TEST(LintFixtureTest, UndocumentedDiscardFires) {
  const std::vector<Finding> findings =
      LintFixture("bad_undocumented_discard.cc", /*all_rules=*/true);
  EXPECT_EQ(Rules(findings), std::set<std::string>{"undocumented-discard"});
  EXPECT_EQ(findings.size(), 1u);
}

TEST(LintFixtureTest, LedgerPairingFires) {
  const std::vector<Finding> findings =
      LintFixture("bad_ledger_pairing.cc", /*all_rules=*/true);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "ledger-pairing");
}

TEST(LintFixtureTest, ArenaScratchFires) {
  const std::vector<Finding> findings =
      LintFixture("bad_arena_scratch.cc", /*all_rules=*/true);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "arena-scratch");
}

TEST(LintFixtureTest, UnorderedIterationFires) {
  const std::vector<Finding> findings =
      LintFixture("bad_unordered_iteration.cc", /*all_rules=*/true);
  EXPECT_EQ(Rules(findings), std::set<std::string>{"unordered-iteration"});
  // The range-for over the map and the .begin() walk of the set.
  EXPECT_EQ(findings.size(), 2u);
}

TEST(LintFixtureTest, WallClockFires) {
  const std::vector<Finding> findings =
      LintFixture("bad_wall_clock.cc", /*all_rules=*/true);
  EXPECT_EQ(Rules(findings), std::set<std::string>{"wall-clock"});
  // system_clock, steady_clock, time(), clock().
  EXPECT_EQ(findings.size(), 4u);
}

TEST(LintFixtureTest, PointerOrderFires) {
  const std::vector<Finding> findings =
      LintFixture("bad_pointer_order.cc", /*all_rules=*/true);
  EXPECT_EQ(Rules(findings), std::set<std::string>{"pointer-order"});
  // hash<const Node*>, less<const Node*>, reinterpret_cast to uintptr_t.
  EXPECT_EQ(findings.size(), 3u);
}

TEST(LintFixtureTest, UnknownWaiverFires) {
  const std::vector<Finding> findings =
      LintFixture("bad_unknown_waiver.cc", /*all_rules=*/true);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unknown-waiver");
  // The message must teach the valid catalogue.
  EXPECT_NE(findings[0].message.find("naked-lock"), std::string::npos);
}

TEST(LintFixtureTest, LayeringFires) {
  const std::vector<Finding> findings = AnalyzeFixture("bad_layering.cc");
  EXPECT_EQ(Rules(findings), std::set<std::string>{"layering"});
  // The core include is undeclared for `tests`; the util include is legal.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("tests -> core"), std::string::npos);
}

TEST(LintFixtureTest, LockOrderFires) {
  const std::vector<Finding> findings = AnalyzeFixture("bad_lock_order.cc");
  EXPECT_EQ(Rules(findings), std::set<std::string>{"lock-order"});
  // Broken() inverts; Clean() nests in rank order and stays silent.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("'outer' (rank 10)"), std::string::npos);
  EXPECT_NE(findings[0].message.find("'inner' (rank 20)"), std::string::npos);
}

TEST(LintFixtureTest, WallClockSeamIsSanctioned) {
  // The same steady_clock read that fires in bad_wall_clock.cc is legal in
  // a file the determinism manifest declares a seam.
  EXPECT_TRUE(AnalyzeFixture("good_timing_seam.cc").empty());
}

TEST(LintFixtureTest, WaiversSilenceEveryRule) {
  EXPECT_TRUE(LintFixture("good_waivers.cc", /*all_rules=*/true).empty());
}

TEST(LintFixtureTest, WaiversSilenceManifestPassesToo) {
  // Same fixture under the analyzer manifests: the waived layering edge and
  // the waived rank inversion stay silent.
  EXPECT_TRUE(AnalyzeFixture("good_waivers.cc").empty());
}

TEST(LintFixtureTest, RulesFilterRestrictsTheScan) {
  // --rules=wall-clock over the unordered-iteration fixture: nothing fires,
  // and over the wall-clock fixture only that rule fires.
  const std::string dir = std::string(PGM_LINT_FIXTURE_DIR);
  StatusOr<std::string> unordered =
      ReadFileToString(dir + "/bad_unordered_iteration.cc");
  StatusOr<std::string> wall = ReadFileToString(dir + "/bad_wall_clock.cc");
  ASSERT_TRUE(unordered.ok());
  ASSERT_TRUE(wall.ok());
  LintOptions only;
  only.all_rules = true;
  only.only_rules = {"wall-clock"};
  EXPECT_TRUE(
      LintSource("tests/x.cc", unordered.value(), only).empty());
  EXPECT_EQ(Rules(LintSource("tests/x.cc", wall.value(), only)),
            std::set<std::string>{"wall-clock"});
}

TEST(LintFixtureTest, DigitSeparatorsDoNotDerailStripping) {
  // 200'000 is a digit separator, not a char-literal open; the release on
  // the next line must still register.
  const std::string source =
      "void f(G& g) {\n"
      "  for (int i = 0; i < 200'000; ++i) g.ChargeMemory(1);\n"
      "  g.ReleaseMemory(200'000);\n"
      "}\n";
  LintOptions options;
  options.all_rules = true;
  EXPECT_TRUE(LintSource("x.cc", source, options).empty());
}

TEST(LintFixtureTest, CommentsAndStringsAreInvisible) {
  const std::string source =
      "// mu.lock() and new int[3] and std::rand()\n"
      "/* delete p; (void)x; */\n"
      "const char* s = \"mu.lock()\";\n";
  LintOptions options;
  options.all_rules = true;
  EXPECT_TRUE(LintSource("x.cc", source, options).empty());
}

TEST(LintFixtureTest, ServeSourcesAreInScope) {
  // The serving layer is concurrency-heavy; a naked lock there must trip
  // the linter exactly as it would in src/core.
  const std::string source = "void f(M& mu) { mu.lock(); mu.unlock(); }\n";
  const std::vector<Finding> findings =
      LintSource("src/serve/helper.cc", source, LintOptions{});
  EXPECT_EQ(Rules(findings), std::set<std::string>{"naked-lock"});
}

// The gate itself: the live tree must be clean. Same scan `ctest -L lint`
// runs through the pgm_lint binary, duplicated here so a plain `ctest`
// (tier-1) also refuses a tree with violations.
TEST(LintTreeTest, SourceTreeIsClean) {
  StatusOr<std::vector<Finding>> findings =
      LintTree(PGM_LINT_SOURCE_DIR, LintOptions{});
  ASSERT_TRUE(findings.ok()) << findings.status().ToString();
  std::string report;
  for (const Finding& f : findings.value()) {
    report += FormatFinding(f) + "\n";
  }
  EXPECT_TRUE(findings.value().empty()) << report;
}

TEST(LintTreeTest, FixtureCorpusIsExcludedFromTreeScans) {
  LintOptions options;
  options.all_rules = true;
  StatusOr<std::vector<Finding>> findings =
      LintTree(PGM_LINT_SOURCE_DIR, options);
  ASSERT_TRUE(findings.ok());
  for (const Finding& f : findings.value()) {
    EXPECT_EQ(f.file.find("lint_fixtures"), std::string::npos) << f.file;
  }
}

}  // namespace
}  // namespace lint
}  // namespace pgm
