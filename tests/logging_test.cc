#include "util/logging.h"

#include <gtest/gtest.h>

namespace pgm {
namespace {

class LoggingTest : public testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kInfo); }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, DefaultLevelIsInfo) {
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

TEST_F(LoggingTest, EmittingBelowThresholdCapturesNothing) {
  SetLogLevel(LogLevel::kError);
  testing::internal::CaptureStderr();
  PGM_LOG(kDebug) << "dropped";
  PGM_LOG(kInfo) << "dropped too";
  PGM_LOG(kWarning) << "also dropped";
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST_F(LoggingTest, EmittingAtThresholdIncludesLevelFileAndMessage) {
  SetLogLevel(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  PGM_LOG(kWarning) << "watch out " << 42;
  std::string output = testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("WARN"), std::string::npos);
  EXPECT_NE(output.find("logging_test.cc"), std::string::npos);
  EXPECT_NE(output.find("watch out 42"), std::string::npos);
}

TEST_F(LoggingTest, StreamsArbitraryTypes) {
  SetLogLevel(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  PGM_LOG(kInfo) << "d=" << 1.5 << " s=" << std::string("str") << " b=" << true;
  std::string output = testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("d=1.5 s=str b=1"), std::string::npos);
}

}  // namespace
}  // namespace pgm
