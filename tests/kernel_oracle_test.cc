// Randomized kernel-oracle campaign: 200 seeded (gap, prefix PIL, suffix
// group) configurations run through CombinePrefixGroupKernel under every
// tier and cross-checked row-for-row against PartialIndexList::Combine +
// TotalSupport — the heap-backed reference the whole PIL layer is defined
// by. The window-width schedule pins the bitset kernel's boundary cases
// (W = 1, 63, 64, and a 65 that must fall back to scalar) and the PIL
// shapes force every internal path: dense spans (bitmap fast path), sparse
// spans (density-guard fallback), saturated and near-clamp counts
// (exactness-guard fallback), and empty lists. An exhaustive small-case
// sweep and the ResolveKernel dispatch rules round out the suite. Runs
// under both sanitizer presets via the robustness/concurrency labels.

#include "core/kernel.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/gap.h"
#include "core/pil.h"
#include "core/pil_arena.h"
#include "util/random.h"
#include "util/saturating.h"

namespace pgm {
namespace {

// Every implementation the host can run: scalar always (the dispatch path
// to the oracle itself), bits always, avx2 when compiled in and supported.
std::vector<KernelImpl> TiersUnderTest() {
  std::vector<KernelImpl> tiers = {KernelImpl::kScalar, KernelImpl::kBits};
  if (Avx2Available()) tiers.push_back(KernelImpl::kAvx2);
  return tiers;
}

const char* TierName(KernelImpl impl) { return KernelImplToString(impl); }

// PIL shape classes; the draw weights skew toward the bitmap fast path
// while keeping every fallback lane in the campaign.
enum class PilShape { kDense, kMedium, kSparse, kHugeCounts, kSaturated };

std::vector<PilEntry> RandomPil(Rng& rng, PilShape shape) {
  const std::size_t len = static_cast<std::size_t>(rng.UniformRange(0, 120));
  std::vector<PilEntry> rows;
  rows.reserve(len);
  std::uint32_t pos = static_cast<std::uint32_t>(rng.UniformInt(1 << 16));
  for (std::size_t i = 0; i < len; ++i) {
    std::uint32_t step = 0;
    switch (shape) {
      case PilShape::kDense:
        step = static_cast<std::uint32_t>(rng.UniformRange(1, 3));
        break;
      case PilShape::kMedium:
        step = static_cast<std::uint32_t>(rng.UniformRange(1, 40));
        break;
      case PilShape::kSparse:
        // Spans of ~millions of positions over ~100 rows overflow the
        // density guard (words > 4 * (|prefix| + |suffix|) + 64), forcing
        // the per-pair scalar fallback.
        step = static_cast<std::uint32_t>(rng.UniformRange(1, 60000));
        break;
      case PilShape::kHugeCounts:
      case PilShape::kSaturated:
        step = static_cast<std::uint32_t>(rng.UniformRange(1, 10));
        break;
    }
    pos += step;
    std::uint64_t count = 0;
    switch (shape) {
      case PilShape::kHugeCounts:
        // A handful of these sum past kSaturatedCount, tripping the
        // exactness guard (the bitset kernel's uint64 prefix sums would
        // clamp differently than the oracle's 128-bit window).
        count = std::uint64_t{1} << (40 + rng.UniformInt(23));
        break;
      case PilShape::kSaturated:
        count = rng.Bernoulli(0.2) ? kSaturatedCount
                                   : 1 + rng.UniformInt(100);
        break;
      default:
        count = 1 + static_cast<std::uint64_t>(rng.UniformInt(1000));
        break;
    }
    rows.push_back(PilEntry{pos, count});
  }
  return rows;
}

PilShape DrawShape(Rng& rng) {
  const std::int64_t roll = rng.UniformInt(10);
  if (roll < 4) return PilShape::kDense;
  if (roll < 7) return PilShape::kMedium;
  if (roll < 8) return PilShape::kSparse;
  if (roll < 9) return PilShape::kHugeCounts;
  return PilShape::kSaturated;
}

// Runs one (prefix, suffix group) configuration through `impl` and checks
// every candidate's rows and support byte-for-byte against the heap oracle.
void CheckGroupAgainstOracle(const std::vector<PilEntry>& prefix,
                             const std::vector<std::vector<PilEntry>>& group,
                             const GapRequirement& gap, KernelImpl impl,
                             KernelScratch& scratch) {
  SCOPED_TRACE(std::string("tier=") + TierName(impl));
  std::vector<GroupSuffix> suffixes(group.size());
  std::vector<GroupOutput> outputs(group.size());
  // Combine emits at most one row per prefix row; slack on top catches a
  // kernel overrunning its slice (ASan patrols the redzone).
  std::vector<std::vector<PilEntry>> slices(group.size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    suffixes[i] = {group[i].data(), group[i].size()};
    slices[i].resize(prefix.size() + 1);
    outputs[i].rows = slices[i].data();
  }
  CombinePrefixGroupKernel(impl, prefix.data(), prefix.size(), gap,
                           suffixes.data(), outputs.data(), group.size(),
                           scratch);

  const PartialIndexList prefix_pil =
      PartialIndexList::FromEntries(prefix);
  for (std::size_t i = 0; i < group.size(); ++i) {
    SCOPED_TRACE("suffix " + std::to_string(i));
    const PartialIndexList expected = PartialIndexList::Combine(
        prefix_pil, PartialIndexList::FromEntries(group[i]), gap);
    const SupportInfo expected_support = expected.TotalSupport();
    ASSERT_EQ(outputs[i].len, expected.size());
    for (std::size_t r = 0; r < expected.size(); ++r) {
      ASSERT_EQ(outputs[i].rows[r], expected.entries()[r])
          << "row " << r << " diverged from the oracle";
    }
    EXPECT_EQ(outputs[i].support.count, expected_support.count);
    EXPECT_EQ(outputs[i].support.saturated, expected_support.saturated);
  }
}

TEST(KernelOracleSweep, RandomizedConfigsMatchOracleAcrossTiers) {
  constexpr std::size_t kNumConfigs = 200;
  const std::vector<KernelImpl> tiers = TiersUnderTest();
  Rng rng(0xC0FFEE0DDBA11ull);
  KernelScratch scratch;
  for (std::size_t c = 0; c < kNumConfigs; ++c) {
    // Boundary schedule first — W = 64 is the widest mask a word holds,
    // W = 65 the narrowest window every tier must refuse (and fall back to
    // scalar on) — then uniform over the bitset kernel's whole domain.
    std::int64_t width = 0;
    switch (c) {
      case 0: width = 1; break;
      case 1: width = 63; break;
      case 2: width = 64; break;
      case 3: width = 65; break;
      default: width = rng.UniformRange(1, 64); break;
    }
    const std::int64_t min_gap = rng.UniformRange(0, 12);
    const GapRequirement gap =
        *GapRequirement::Create(min_gap, min_gap + width - 1);
    SCOPED_TRACE("config " + std::to_string(c) + " gap=[" +
                 std::to_string(min_gap) + "," +
                 std::to_string(min_gap + width - 1) + "]");

    const std::vector<PilEntry> prefix = RandomPil(rng, DrawShape(rng));
    const std::size_t group_size =
        static_cast<std::size_t>(rng.UniformRange(1, 6));
    std::vector<std::vector<PilEntry>> group;
    group.reserve(group_size);
    for (std::size_t i = 0; i < group_size; ++i) {
      group.push_back(RandomPil(rng, DrawShape(rng)));
    }

    for (KernelImpl impl : tiers) {
      CheckGroupAgainstOracle(prefix, group, gap, impl, scratch);
    }
  }
}

// Exhaustive sweep over tiny inputs: every subset of positions {0..6} as
// prefix, the full 128-subset powerset as one suffix group, at several
// small windows. Small cases are where off-by-ones live (empty windows,
// window clipping at either end, bit 0 / bit 63 extraction).
TEST(KernelOracleSweep, ExhaustiveSmallCasesMatchOracleAcrossTiers) {
  const std::vector<KernelImpl> tiers = TiersUnderTest();
  KernelScratch scratch;
  constexpr std::uint32_t kPositions = 7;
  constexpr std::uint32_t kMasks = 1u << kPositions;

  auto from_mask = [](std::uint32_t mask) {
    std::vector<PilEntry> rows;
    for (std::uint32_t p = 0; p < kPositions; ++p) {
      if (mask & (1u << p)) rows.push_back(PilEntry{p, 1});
    }
    return rows;
  };

  std::vector<std::vector<PilEntry>> group;
  group.reserve(kMasks);
  for (std::uint32_t mask = 0; mask < kMasks; ++mask) {
    group.push_back(from_mask(mask));
  }

  for (std::int64_t min_gap : {0, 1, 2}) {
    for (std::int64_t width : {1, 2, 3}) {
      const GapRequirement gap =
          *GapRequirement::Create(min_gap, min_gap + width - 1);
      SCOPED_TRACE("gap=[" + std::to_string(min_gap) + "," +
                   std::to_string(min_gap + width - 1) + "]");
      for (std::uint32_t pmask = 0; pmask < kMasks; ++pmask) {
        const std::vector<PilEntry> prefix = from_mask(pmask);
        for (KernelImpl impl : tiers) {
          CheckGroupAgainstOracle(prefix, group, gap, impl, scratch);
          if (testing::Test::HasFatalFailure()) return;
        }
      }
    }
  }
}

TEST(KernelDispatch, ResolveKernelFollowsTierAndWindowRules) {
  const GapRequirement narrow = *GapRequirement::Create(9, 12);    // W = 4
  const GapRequirement w64 = *GapRequirement::Create(0, 63);      // W = 64
  const GapRequirement w65 = *GapRequirement::Create(0, 64);      // W = 65

  // Scalar is always scalar.
  for (const GapRequirement* gap : {&narrow, &w64, &w65}) {
    EXPECT_EQ(ResolveKernel(KernelTier::kScalar, *gap), KernelImpl::kScalar);
  }
  // W > 64 has no bit-parallel representation: every tier degrades to
  // scalar rather than failing.
  for (KernelTier tier : {KernelTier::kAuto, KernelTier::kBits,
                          KernelTier::kAvx2}) {
    EXPECT_EQ(ResolveKernel(tier, w65), KernelImpl::kScalar);
  }
  // Within the 64-bit window, bits means bits and auto/avx2 take the
  // fastest tier the CPU offers.
  const KernelImpl best =
      Avx2Available() ? KernelImpl::kAvx2 : KernelImpl::kBits;
  for (const GapRequirement* gap : {&narrow, &w64}) {
    EXPECT_EQ(ResolveKernel(KernelTier::kBits, *gap), KernelImpl::kBits);
    EXPECT_EQ(ResolveKernel(KernelTier::kAuto, *gap), best);
    EXPECT_EQ(ResolveKernel(KernelTier::kAvx2, *gap), best);
  }
}

TEST(KernelDispatch, TierStringsRoundTrip) {
  for (KernelTier tier : {KernelTier::kAuto, KernelTier::kScalar,
                          KernelTier::kBits, KernelTier::kAvx2}) {
    KernelTier parsed = KernelTier::kAuto;
    ASSERT_TRUE(KernelTierFromString(KernelTierToString(tier), &parsed));
    EXPECT_EQ(parsed, tier);
  }
  KernelTier parsed = KernelTier::kAuto;
  EXPECT_FALSE(KernelTierFromString("sse9", &parsed));
  EXPECT_FALSE(KernelTierFromString("", &parsed));
  EXPECT_STREQ(KernelImplToString(KernelImpl::kScalar), "scalar");
  EXPECT_STREQ(KernelImplToString(KernelImpl::kBits), "bits");
  EXPECT_STREQ(KernelImplToString(KernelImpl::kAvx2), "avx2");
}

}  // namespace
}  // namespace pgm
