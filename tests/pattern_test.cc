#include "core/pattern.h"

#include <gtest/gtest.h>

namespace pgm {
namespace {

const GapRequirement kGap = *GapRequirement::Create(2, 3);

TEST(PatternTest, ParseShorthand) {
  StatusOr<Pattern> p = Pattern::Parse("ATC", Alphabet::Dna());
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->length(), 3u);
  EXPECT_EQ(p->CharAt(0), 'A');
  EXPECT_EQ(p->CharAt(1), 'T');
  EXPECT_EQ(p->CharAt(2), 'C');
}

TEST(PatternTest, ParseRejectsEmpty) {
  EXPECT_FALSE(Pattern::Parse("", Alphabet::Dna()).ok());
}

TEST(PatternTest, ParseRejectsUnknownCharacter) {
  StatusOr<Pattern> p = Pattern::Parse("AXC", Alphabet::Dna());
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.status().message().find("'X'"), std::string::npos);
}

TEST(PatternTest, ParseRejectsWildcardInShorthand) {
  EXPECT_FALSE(Pattern::Parse("A.C", Alphabet::Dna()).ok());
}

TEST(PatternTest, FromSymbolsValidates) {
  EXPECT_TRUE(Pattern::FromSymbols({0, 3, 1}, Alphabet::Dna()).ok());
  EXPECT_FALSE(Pattern::FromSymbols({0, 4}, Alphabet::Dna()).ok());
  EXPECT_FALSE(Pattern::FromSymbols({}, Alphabet::Dna()).ok());
}

TEST(PatternTest, FullNotationParsesPaperExample) {
  // prefix(A..T.C) example uses gaps of size 2 and 1; use matching gap req.
  GapRequirement gap = *GapRequirement::Create(1, 2);
  StatusOr<Pattern> p = Pattern::ParseFullNotation("A..T.C", Alphabet::Dna(), gap);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->length(), 3u);
  EXPECT_EQ(p->ToShorthand(), "ATC");
}

TEST(PatternTest, FullNotationValidatesGapSizes) {
  GapRequirement gap = *GapRequirement::Create(2, 2);
  EXPECT_TRUE(Pattern::ParseFullNotation("A..T..C", Alphabet::Dna(), gap).ok());
  // Gap of 1 is below N=2.
  EXPECT_FALSE(Pattern::ParseFullNotation("A.T..C", Alphabet::Dna(), gap).ok());
  // Gap of 3 is above M=2.
  EXPECT_FALSE(Pattern::ParseFullNotation("A...T..C", Alphabet::Dna(), gap).ok());
}

TEST(PatternTest, FullNotationMustStartAndEndWithCharacters) {
  GapRequirement gap = *GapRequirement::Create(0, 5);
  EXPECT_FALSE(Pattern::ParseFullNotation(".AT", Alphabet::Dna(), gap).ok());
  EXPECT_FALSE(Pattern::ParseFullNotation("AT.", Alphabet::Dna(), gap).ok());
  EXPECT_FALSE(Pattern::ParseFullNotation(".", Alphabet::Dna(), gap).ok());
}

TEST(PatternTest, FullNotationZeroGapAllowedWhenNIsZero) {
  GapRequirement gap = *GapRequirement::Create(0, 2);
  StatusOr<Pattern> p = Pattern::ParseFullNotation("ATC", Alphabet::Dna(), gap);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->length(), 3u);
}

TEST(PatternTest, PrefixAndSuffixMatchPaperDefinition) {
  // prefix(A..T.C) = A..T and suffix(A..T.C) = T.C — in shorthand:
  // prefix(ATC) = AT, suffix(ATC) = TC.
  Pattern p = *Pattern::Parse("ATC", Alphabet::Dna());
  EXPECT_EQ(p.Prefix().ToShorthand(), "AT");
  EXPECT_EQ(p.Suffix().ToShorthand(), "TC");
}

TEST(PatternTest, PrefixSuffixOfLengthTwo) {
  Pattern p = *Pattern::Parse("AG", Alphabet::Dna());
  EXPECT_EQ(p.Prefix().ToShorthand(), "A");
  EXPECT_EQ(p.Suffix().ToShorthand(), "G");
}

TEST(PatternTest, SubPattern) {
  Pattern p = *Pattern::Parse("ACGTA", Alphabet::Dna());
  EXPECT_EQ(p.SubPattern(1, 3).ToShorthand(), "CGT");
  EXPECT_EQ(p.SubPattern(0, 5).ToShorthand(), "ACGTA");
  EXPECT_EQ(p.SubPattern(3, 100).ToShorthand(), "TA");
  EXPECT_TRUE(p.SubPattern(5, 1).empty());
}

TEST(PatternTest, LengthCountsCharactersNotWildcards) {
  // |A..T.C| = 3 per the paper.
  GapRequirement gap = *GapRequirement::Create(1, 2);
  Pattern p = *Pattern::ParseFullNotation("A..T.C", Alphabet::Dna(), gap);
  EXPECT_EQ(p.length(), 3u);
}

TEST(PatternTest, ToStringShowsGapRequirement) {
  Pattern p = *Pattern::Parse("ATC", Alphabet::Dna());
  EXPECT_EQ(p.ToString(kGap), "Ag(2,3)Tg(2,3)C");
  Pattern single = *Pattern::Parse("G", Alphabet::Dna());
  EXPECT_EQ(single.ToString(kGap), "G");
}

TEST(PatternTest, EqualityAndOrdering) {
  Pattern a = *Pattern::Parse("AC", Alphabet::Dna());
  Pattern a2 = *Pattern::Parse("AC", Alphabet::Dna());
  Pattern b = *Pattern::Parse("AG", Alphabet::Dna());
  EXPECT_TRUE(a == a2);
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
}

TEST(PatternTest, ProteinPatterns) {
  StatusOr<Pattern> p = Pattern::Parse("LWL", Alphabet::Protein());
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ToShorthand(), "LWL");
}

}  // namespace
}  // namespace pgm
