#include "analysis/significance.h"

#include <gtest/gtest.h>

#include "core/verifier.h"
#include "datagen/generators.h"
#include "datagen/planting.h"
#include "util/random.h"

namespace pgm {
namespace {

TEST(ExpectedRatioTest, ProductOfFrequencies) {
  Pattern p = *Pattern::Parse("AAT", Alphabet::Dna());
  // frequencies: A=0.5, C=0.1, G=0.1, T=0.3.
  StatusOr<double> expected =
      ExpectedSupportRatio(p, {0.5, 0.1, 0.1, 0.3});
  ASSERT_TRUE(expected.ok());
  EXPECT_DOUBLE_EQ(*expected, 0.5 * 0.5 * 0.3);
}

TEST(ExpectedRatioTest, ZeroFrequencyCharacter) {
  Pattern p = *Pattern::Parse("AC", Alphabet::Dna());
  EXPECT_DOUBLE_EQ(*ExpectedSupportRatio(p, {0.5, 0.0, 0.2, 0.3}), 0.0);
}

TEST(ExpectedRatioTest, Validation) {
  Pattern p = *Pattern::Parse("AC", Alphabet::Dna());
  EXPECT_FALSE(ExpectedSupportRatio(p, {0.5, 0.5}).ok());
  EXPECT_FALSE(ExpectedSupportRatio(p, {0.5, -0.1, 0.3, 0.3}).ok());
  EXPECT_FALSE(ExpectedSupportRatio(p, {0.5, 1.5, 0.3, 0.3}).ok());
}

TEST(ExpectedRatioTest, ObservedMatchesExpectedOnUniformData) {
  // On a large uniform random sequence, observed support ratios should be
  // close to the composition prediction — lift ~ 1.
  Rng rng(717);
  Sequence s = *UniformRandomSequence(30'000, Alphabet::Dna(), rng);
  GapRequirement gap = *GapRequirement::Create(2, 4);
  OffsetCounter counter(30'000, gap);
  for (const char* shorthand : {"ACG", "TTT", "GAT"}) {
    Pattern p = *Pattern::Parse(shorthand, Alphabet::Dna());
    const double observed =
        static_cast<double>(CountSupport(s, p, gap)->count) /
        static_cast<double>(counter.Count(3));
    const double expected = *ExpectedSupportRatio(
        p, {0.25, 0.25, 0.25, 0.25});
    EXPECT_NEAR(observed / expected, 1.0, 0.15) << shorthand;
  }
}

TEST(RankByLiftTest, PlantedStructureRanksAboveCompositionalNoise) {
  // Plant a dense AT region in a uniform background: the planted periodic
  // patterns must out-lift everything that is frequent by composition.
  Rng rng(718);
  Sequence s = *UniformRandomSequence(400, Alphabet::Dna(), rng);
  s = *PlantNoisyTandemRun(s, "A", 100, 80, 0.95, rng);

  MinerConfig config;
  config.min_gap = 1;
  config.max_gap = 3;
  config.min_support_ratio = 0.001;
  config.start_length = 2;
  MiningResult result = *MineMpp(s, config);
  ASSERT_FALSE(result.patterns.empty());

  StatusOr<std::vector<ScoredPattern>> ranked = RankByLift(result, s);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), result.patterns.size());
  // Descending lift.
  for (std::size_t i = 1; i < ranked->size(); ++i) {
    EXPECT_GE((*ranked)[i - 1].lift, (*ranked)[i].lift);
  }
  // The top pattern is an all-A periodic pattern from the planted run.
  const Pattern& top = (*ranked)[0].pattern.pattern;
  for (Symbol sym : top.symbols()) {
    EXPECT_EQ(sym, Alphabet::Dna().Encode('A'));
  }
  EXPECT_GT((*ranked)[0].lift, 3.0);
}

TEST(RankByLiftTest, LiftFieldsConsistent) {
  Rng rng(719);
  Sequence s = *UniformRandomSequence(200, Alphabet::Dna(), rng);
  MinerConfig config;
  config.min_gap = 1;
  config.max_gap = 2;
  config.min_support_ratio = 0.01;
  config.start_length = 1;
  MiningResult result = *MineMpp(s, config);
  std::vector<ScoredPattern> ranked = *RankByLift(result, s);
  for (const ScoredPattern& entry : ranked) {
    ASSERT_GT(entry.expected_ratio, 0.0);
    EXPECT_NEAR(entry.lift,
                entry.pattern.support_ratio / entry.expected_ratio, 1e-12);
  }
}

TEST(RankByLiftTest, AlphabetMismatchFails) {
  MiningResult result;
  FrequentPattern fp;
  fp.pattern = *Pattern::Parse("LW", Alphabet::Protein());
  result.patterns.push_back(fp);
  Sequence dna = *Sequence::FromString("ACGT", Alphabet::Dna());
  EXPECT_FALSE(RankByLift(result, dna).ok());
}

TEST(RankByLiftTest, EmptySubjectFails) {
  MiningResult result;
  Sequence empty = *Sequence::FromString("", Alphabet::Dna());
  EXPECT_FALSE(RankByLift(result, empty).ok());
}

}  // namespace
}  // namespace pgm
