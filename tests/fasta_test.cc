#include "seq/fasta.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace pgm {
namespace {

TEST(FastaTest, ParsesSingleRecord) {
  StatusOr<std::vector<FastaRecord>> records =
      ParseFasta(">seq1 a human fragment\nACGT\nTTGG\n");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].id, "seq1");
  EXPECT_EQ((*records)[0].description, "a human fragment");
  EXPECT_EQ((*records)[0].residues, "ACGTTTGG");
}

TEST(FastaTest, ParsesMultipleRecords) {
  StatusOr<std::vector<FastaRecord>> records =
      ParseFasta(">a\nAC\n>b\nGT\n>c desc\nTT\n");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[1].id, "b");
  EXPECT_EQ((*records)[1].residues, "GT");
  EXPECT_EQ((*records)[2].description, "desc");
}

TEST(FastaTest, IgnoresBlankLinesAndComments) {
  StatusOr<std::vector<FastaRecord>> records =
      ParseFasta("; a comment\n>x\n\nAC\n; mid comment\nGT\n\n");
  ASSERT_TRUE(records.ok());
  EXPECT_EQ((*records)[0].residues, "ACGT");
}

TEST(FastaTest, StripsWhitespaceInsideResidueLines) {
  StatusOr<std::vector<FastaRecord>> records = ParseFasta(">x\nAC GT\r\n");
  ASSERT_TRUE(records.ok());
  EXPECT_EQ((*records)[0].residues, "ACGT");
}

TEST(FastaTest, HeaderWithoutDescription) {
  StatusOr<std::vector<FastaRecord>> records = ParseFasta(">id_only\nAC\n");
  ASSERT_TRUE(records.ok());
  EXPECT_EQ((*records)[0].id, "id_only");
  EXPECT_TRUE((*records)[0].description.empty());
}

TEST(FastaTest, CrlfLineEndings) {
  StatusOr<std::vector<FastaRecord>> records =
      ParseFasta(">r desc\r\nACGT\r\nTTAA\r\n");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].id, "r");
  EXPECT_EQ((*records)[0].description, "desc");
  EXPECT_EQ((*records)[0].residues, "ACGTTTAA");
}

TEST(FastaTest, TrailingBlankLinesIgnored) {
  StatusOr<std::vector<FastaRecord>> records =
      ParseFasta(">r\nACGT\n\n\r\n\n");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].residues, "ACGT");
}

TEST(FastaTest, HeaderlessTrailingRecordIsCorruptionNotTruncation) {
  // A file cut off right after a '>' header (e.g. a short read) must be
  // reported loudly, not returned as a record with no residues.
  StatusOr<std::vector<FastaRecord>> records =
      ParseFasta(">a\nACGT\n>b\n");
  ASSERT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kCorruption);
  EXPECT_NE(records.status().message().find("has no residues"),
            std::string::npos);
}

TEST(FastaTest, RejectsResiduesBeforeHeader) {
  StatusOr<std::vector<FastaRecord>> records = ParseFasta("ACGT\n>x\nAC\n");
  ASSERT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kCorruption);
}

TEST(FastaTest, RejectsEmptyRecord) {
  EXPECT_FALSE(ParseFasta(">x\n>y\nAC\n").ok());
  EXPECT_FALSE(ParseFasta(">only_header\n").ok());
}

TEST(FastaTest, RejectsEmptyId) {
  EXPECT_FALSE(ParseFasta("> \nAC\n").ok());
}

TEST(FastaTest, EmptyInputYieldsNoRecords) {
  StatusOr<std::vector<FastaRecord>> records = ParseFasta("");
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST(FastaTest, WriteWrapsLines) {
  FastaRecord record{"x", "desc", "AAAAACCCCCGGGGG"};
  std::string out = WriteFasta({record}, /*line_width=*/5);
  EXPECT_EQ(out, ">x desc\nAAAAA\nCCCCC\nGGGGG\n");
}

TEST(FastaTest, WriteReadRoundTrip) {
  std::vector<FastaRecord> records = {
      {"alpha", "first", "ACGTACGTACGT"},
      {"beta", "", "TTTTGGGG"},
  };
  StatusOr<std::vector<FastaRecord>> reparsed =
      ParseFasta(WriteFasta(records, 7));
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->size(), 2u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*reparsed)[i].id, records[i].id);
    EXPECT_EQ((*reparsed)[i].description, records[i].description);
    EXPECT_EQ((*reparsed)[i].residues, records[i].residues);
  }
}

TEST(FastaTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/fasta_test.fa";
  std::vector<FastaRecord> records = {{"f", "on disk", "ACGTN"}};
  ASSERT_TRUE(WriteFastaFile(path, records).ok());
  StatusOr<std::vector<FastaRecord>> read = ReadFastaFile(path);
  std::remove(path.c_str());
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), 1u);
  EXPECT_EQ((*read)[0].residues, "ACGTN");
}

TEST(FastaTest, ReadMissingFileFails) {
  StatusOr<std::vector<FastaRecord>> read =
      ReadFastaFile("/nonexistent-dir-xyz/missing.fa");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

TEST(FastaTest, RecordToSequenceDropsAmbiguityCodes) {
  FastaRecord record{"x", "", "ACGTNNRYACGT"};
  std::size_t dropped = 0;
  Sequence s = RecordToSequence(record, Alphabet::Dna(), &dropped);
  EXPECT_EQ(dropped, 4u);
  EXPECT_EQ(s.ToString(), "ACGTACGT");
}

}  // namespace
}  // namespace pgm
