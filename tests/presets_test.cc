#include "datagen/presets.h"

#include <gtest/gtest.h>

#include "seq/stats.h"

namespace pgm {
namespace {

TEST(SurrogateTest, HasExactDatabaseEntryLength) {
  Sequence s = *MakeAx829174Surrogate();
  EXPECT_EQ(s.size(), 10'011u);  // AX829174 is 10,011 bp
}

TEST(SurrogateTest, FullyDeterministic) {
  Sequence a = *MakeAx829174Surrogate();
  Sequence b = *MakeAx829174Surrogate();
  EXPECT_EQ(a.ToString(), b.ToString());
}

TEST(SurrogateTest, GoldenContent) {
  // Golden guard: EXPERIMENTS.md numbers are only reproducible while the
  // surrogate stays bit-identical. Any change to the RNG, the Markov
  // model, or the region planting must consciously update this test (and
  // re-measure EXPERIMENTS.md).
  Sequence s = *MakeAx829174Surrogate();
  EXPECT_EQ(s.Subsequence(0, 48).ToString(),
            "TTCCTATCCTATTTTATACTGACTGAAAAGGTGGAACTAAGGCCTCTG");
  // Inside the first planted AT-rich region (positions 250-379).
  EXPECT_EQ(s.Subsequence(260, 48).ToString(),
            "TATAAAAAAAATGACTAAACTTTAAAAAAAAGATTTATATAATAGATA");
}

TEST(SurrogateTest, HumanLikeComposition) {
  Sequence s = *MakeAx829174Surrogate();
  double gc = *GcContent(s);
  // Human-ish GC, pulled a bit lower by the planted A/T runs.
  EXPECT_GT(gc, 0.25);
  EXPECT_LT(gc, 0.45);
}

TEST(SurrogateTest, ContainsAtRichRegions) {
  // The planted AT-rich mixed regions must survive generation: expect a
  // 120-character window that is >= 85% A/T somewhere (background is only
  // ~58% A/T, so this identifies a planted region, not noise).
  Sequence s = *MakeAx829174Surrogate();
  const std::size_t kWindow = 120;
  std::size_t at_in_window = 0;
  std::size_t best = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    char c = s.CharAt(i);
    if (c == 'A' || c == 'T') ++at_in_window;
    if (i >= kWindow) {
      char old = s.CharAt(i - kWindow);
      if (old == 'A' || old == 'T') --at_in_window;
    }
    best = std::max(best, at_in_window);
  }
  EXPECT_GE(best, static_cast<std::size_t>(kWindow * 0.85));
}

TEST(BacteriaTest, AtRichComposition) {
  Sequence s = *MakeBacteriaLikeGenome(50'000, 7);
  double gc = *GcContent(s);
  EXPECT_GT(gc, 0.25);
  EXPECT_LT(gc, 0.40);
}

TEST(BacteriaTest, DeterministicPerSeed) {
  Sequence a = *MakeBacteriaLikeGenome(10'000, 3);
  Sequence b = *MakeBacteriaLikeGenome(10'000, 3);
  Sequence c = *MakeBacteriaLikeGenome(10'000, 4);
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_NE(a.ToString(), c.ToString());
}

TEST(BacteriaTest, RequestedLength) {
  EXPECT_EQ(MakeBacteriaLikeGenome(12'345, 1)->size(), 12'345u);
}

TEST(EukaryoteTest, LessAtRichThanBacteria) {
  Sequence bacteria = *MakeBacteriaLikeGenome(100'000, 5);
  Sequence eukaryote = *MakeEukaryoteLikeGenome(100'000, 5);
  EXPECT_GT(*GcContent(eukaryote), *GcContent(bacteria));
}

TEST(EukaryoteTest, ContainsLongGTract) {
  // The 195 bp poly-G tract (planted every ~150 kb from position ~52k,
  // sized so poly-G patterns max out at the paper's length 17) must be
  // present in a 200 kb genome. Noisy planting at purity 0.95 interrupts
  // pure runs, so check for a dense G window instead.
  Sequence s = *MakeEukaryoteLikeGenome(200'000, 9);
  std::size_t window_g = 0;
  std::size_t max_window_g = 0;
  const std::size_t kWindow = 195;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s.CharAt(i) == 'G') ++window_g;
    if (i >= kWindow && s.CharAt(i - kWindow) == 'G') --window_g;
    max_window_g = std::max(max_window_g, window_g);
  }
  EXPECT_GE(max_window_g, 160u);
}

TEST(WormTest, ContainsMicrosatelliteExpansions) {
  Sequence s = *MakeWormLikeGenome(60'000, 11);
  const std::string text = s.ToString();
  // (AT)n and (GTA)n expansions: look for long literal repeats.
  EXPECT_NE(text.find("ATATATATATATATATATAT"), std::string::npos);
  EXPECT_NE(text.find("GTAGTAGTAGTAGTA"), std::string::npos);
}

TEST(PresetsTest, AllPresetsStayInDnaAlphabet) {
  for (const Sequence& s :
       {*MakeBacteriaLikeGenome(5'000, 1), *MakeEukaryoteLikeGenome(5'000, 1),
        *MakeWormLikeGenome(5'000, 1), *MakeAx829174Surrogate()}) {
    for (Symbol sym : s.symbols()) EXPECT_LT(sym, 4);
  }
}

}  // namespace
}  // namespace pgm
