#include <gtest/gtest.h>

#include <map>

#include "core/miner.h"
#include "core/verifier.h"
#include "datagen/generators.h"
#include "util/random.h"

namespace pgm {
namespace {

MinerConfig BaseConfig() {
  MinerConfig config;
  config.min_gap = 1;
  config.max_gap = 2;
  config.min_support_ratio = 0.02;
  config.start_length = 1;
  config.max_length = 5;
  return config;
}

TEST(EnumerationTest, MatchesDefinitionExactly) {
  // Every pattern over the alphabet with ratio >= ρs must be reported, and
  // nothing else. Checked exhaustively for lengths 1..3 on a small input.
  Rng rng(5);
  Sequence s = *UniformRandomSequence(40, Alphabet::Dna(), rng);
  MinerConfig config = BaseConfig();
  config.max_length = 3;
  GapRequirement gap = *GapRequirement::Create(1, 2);
  OffsetCounter counter(40, gap);
  MiningResult result = *MineEnumeration(s, config);

  std::map<std::string, std::uint64_t> reported;
  for (const FrequentPattern& fp : result.patterns) {
    reported[fp.pattern.ToShorthand()] = fp.support;
  }

  const std::string alphabet = "ACGT";
  std::size_t expected_total = 0;
  // All 4 + 16 + 64 patterns.
  for (std::size_t l = 1; l <= 3; ++l) {
    std::vector<std::size_t> index(l, 0);
    while (true) {
      std::string shorthand;
      for (std::size_t i : index) shorthand.push_back(alphabet[i]);
      Pattern p = *Pattern::Parse(shorthand, Alphabet::Dna());
      const std::uint64_t support = CountSupport(s, p, gap)->count;
      const bool frequent =
          static_cast<long double>(support) >=
          static_cast<long double>(config.min_support_ratio) * counter.Count(l);
      if (frequent) {
        ++expected_total;
        ASSERT_TRUE(reported.count(shorthand)) << shorthand;
        EXPECT_EQ(reported[shorthand], support) << shorthand;
      } else {
        EXPECT_FALSE(reported.count(shorthand)) << shorthand;
      }
      // Advance the odometer.
      std::size_t pos = 0;
      while (pos < l && ++index[pos] == alphabet.size()) {
        index[pos] = 0;
        ++pos;
      }
      if (pos == l) break;
    }
  }
  EXPECT_EQ(reported.size(), expected_total);
}

TEST(EnumerationTest, CandidateCountsAreAlphabetPowers) {
  Rng rng(6);
  Sequence s = *UniformRandomSequence(30, Alphabet::Dna(), rng);
  MiningResult result = *MineEnumeration(s, BaseConfig());
  for (const LevelStats& stats : result.level_stats) {
    std::uint64_t expected = 1;
    for (std::int64_t i = 0; i < stats.length; ++i) expected *= 4;
    EXPECT_EQ(stats.num_candidates, expected) << "level " << stats.length;
  }
}

TEST(EnumerationTest, CompletenessHorizonIsTheCap) {
  Rng rng(7);
  Sequence s = *UniformRandomSequence(30, Alphabet::Dna(), rng);
  MinerConfig config = BaseConfig();
  config.max_length = 4;
  MiningResult result = *MineEnumeration(s, config);
  EXPECT_EQ(result.guaranteed_complete_up_to, 4);
}

TEST(EnumerationTest, CapDefaultsToL2) {
  Rng rng(8);
  Sequence s = *UniformRandomSequence(12, Alphabet::Dna(), rng);
  MinerConfig config = BaseConfig();
  config.max_length = -1;
  GapRequirement gap = *GapRequirement::Create(1, 2);
  MiningResult result = *MineEnumeration(s, config);
  EXPECT_EQ(result.guaranteed_complete_up_to, gap.MaxPossibleLength(12));
}

TEST(EnumerationTest, NoPruningMeansNoMissesEvenWithoutApriori) {
  // The canonical Apriori-violation input: S = ACTTT, gap [1,3].
  // sup(AT) = 3 while sup(A) = 1; with ρs placed between the two ratios,
  // AT is frequent while A is not — enumeration must report exactly that.
  Sequence s = *Sequence::FromString("ACTTT", Alphabet::Dna());
  GapRequirement gap = *GapRequirement::Create(1, 3);
  OffsetCounter counter(5, gap);
  // ratio(A) = 1/5; ratio(AT) = 3/N2. Pick ρs between them.
  const double ratio_a = 1.0 / 5.0;
  const double ratio_at = 3.0 / static_cast<double>(counter.Count(2));
  ASSERT_GT(ratio_at, ratio_a);  // the Apriori violation itself
  MinerConfig config;
  config.min_gap = 1;
  config.max_gap = 3;
  config.min_support_ratio = (ratio_a + ratio_at) / 2;
  config.start_length = 1;
  config.max_length = 2;
  MiningResult result = *MineEnumeration(s, config);
  bool found_at = false, found_a = false;
  for (const FrequentPattern& fp : result.patterns) {
    if (fp.pattern.ToShorthand() == "AT") found_at = true;
    if (fp.pattern.ToShorthand() == "A") found_a = true;
  }
  EXPECT_TRUE(found_at);
  EXPECT_FALSE(found_a);
}

TEST(EnumerationTest, StopsWhenNothingMatches) {
  // All-A sequence: patterns containing C/G/T die immediately; only the
  // all-A chain continues.
  Sequence s = *Sequence::FromString(std::string(15, 'A'), Alphabet::Dna());
  MinerConfig config = BaseConfig();
  config.max_length = 10;
  MiningResult result = *MineEnumeration(s, config);
  GapRequirement gap = *GapRequirement::Create(1, 2);
  for (const FrequentPattern& fp : result.patterns) {
    EXPECT_LE(static_cast<std::int64_t>(fp.pattern.length()),
              gap.MaxPossibleLength(15));
  }
}

}  // namespace
}  // namespace pgm
