// Kernel-equivalence differential suite: the full seeded configuration
// matrix of tests/differential_test.cc, re-run under every join-kernel tier
// ({scalar, bits, avx2-when-available} x threads {1, 8}), asserting
// byte-identical pattern sets and observability exports. The scalar kernel
// is the authoritative oracle (DESIGN.md §7e): the bitset and AVX2 tiers
// are promises of speed, never of different bytes, and this suite is the
// gate that keeps that promise honest at the engine level (the per-pair
// oracle campaign lives in tests/kernel_oracle_test.cc). Runs under both
// the ASan ("robustness") and TSan ("concurrency") sanitizer presets.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "core/kernel.h"
#include "core/miner.h"
#include "core/trace.h"
#include "datagen/generators.h"
#include "util/metrics.h"
#include "util/random.h"

#include "tools/differential_params.h"

namespace pgm {
namespace {

// (alphabet symbols, L, N, M, rho, seed) — the same matrix the engine
// differential sweep runs, so tier coverage and engine coverage stay in
// lockstep.
using DiffParam = std::tuple<const char*, std::size_t, std::int64_t,
                             std::int64_t, double, std::uint64_t>;

class KernelDifferentialSweep : public testing::TestWithParam<DiffParam> {};

struct TierRun {
  std::string patterns;
  std::string metrics_json;
  std::string trace_json;
};

// The configured tier is the one export field that legitimately differs
// across tiers (run_start records it verbatim); mask its value so every
// remaining byte can be compared exactly.
std::string MaskKernelTier(std::string json) {
  const std::string key = "\"kernel_tier\": \"";
  std::size_t pos = 0;
  while ((pos = json.find(key, pos)) != std::string::npos) {
    pos += key.size();
    const std::size_t end = json.find('"', pos);
    json.replace(pos, end - pos, "*");
    pos += 1;
  }
  return json;
}

TierRun RunTier(const Sequence& s, MinerConfig config, KernelTier tier,
                std::int64_t threads) {
  config.kernel_tier = tier;
  config.threads = threads;
  MetricsRegistry metrics;
  MiningTrace trace;
  MiningObserver observer;
  observer.metrics = &metrics;
  observer.trace = &trace;
  config.observer = &observer;
  StatusOr<MiningResult> result = MineMppm(s, config);
  EXPECT_TRUE(result.ok()) << result.status().message();
  TierRun run;
  if (result.ok()) {
    run.patterns = difftest::CanonicalPatterns(*result, /*max_length=*/1000);
  }
  run.metrics_json = metrics.ToJson();
  run.trace_json = MaskKernelTier(trace.ToJson());
  return run;
}

void ExpectTierMatchesScalar(const Sequence& s, const MinerConfig& base,
                             const TierRun& reference, KernelTier tier) {
  for (std::int64_t threads : {std::int64_t{1}, std::int64_t{8}}) {
    SCOPED_TRACE(std::string(KernelTierToString(tier)) + " threads=" +
                 std::to_string(threads));
    const TierRun run = RunTier(s, base, tier, threads);
    EXPECT_EQ(run.patterns, reference.patterns)
        << "pattern set drifted from the scalar oracle";
    EXPECT_EQ(run.metrics_json, reference.metrics_json)
        << "metrics export drifted from the scalar oracle";
    EXPECT_EQ(run.trace_json, reference.trace_json)
        << "trace export drifted from the scalar oracle";
  }
}

MinerConfig BaseConfig(std::int64_t min_gap, std::int64_t max_gap,
                       double rho) {
  MinerConfig base;
  base.min_gap = min_gap;
  base.max_gap = max_gap;
  base.min_support_ratio = rho;
  base.start_length = 1;
  base.em_order = 2;
  return base;
}

TEST_P(KernelDifferentialSweep, BitsTierByteIdenticalToScalar) {
  const auto [symbols, length, min_gap, max_gap, rho, seed] = GetParam();
  Alphabet alphabet = *Alphabet::Create(symbols);
  Rng rng(seed);
  Sequence s = *UniformRandomSequence(length, alphabet, rng);
  const MinerConfig base = BaseConfig(min_gap, max_gap, rho);

  // Every matrix window fits 64 bits, so the bits tier must actually engage
  // — a silent scalar fallback would make this sweep vacuous.
  GapRequirement gap = *GapRequirement::Create(min_gap, max_gap);
  ASSERT_EQ(ResolveKernel(KernelTier::kBits, gap), KernelImpl::kBits);

  const TierRun reference = RunTier(s, base, KernelTier::kScalar, 1);
  ExpectTierMatchesScalar(s, base, reference, KernelTier::kScalar);
  ExpectTierMatchesScalar(s, base, reference, KernelTier::kBits);
}

TEST_P(KernelDifferentialSweep, Avx2TierByteIdenticalToScalar) {
  if (!Avx2Available()) {
    GTEST_SKIP() << "AVX2 kernel unavailable (CPU or build)";
  }
  const auto [symbols, length, min_gap, max_gap, rho, seed] = GetParam();
  Alphabet alphabet = *Alphabet::Create(symbols);
  Rng rng(seed);
  Sequence s = *UniformRandomSequence(length, alphabet, rng);
  const MinerConfig base = BaseConfig(min_gap, max_gap, rho);

  GapRequirement gap = *GapRequirement::Create(min_gap, max_gap);
  ASSERT_EQ(ResolveKernel(KernelTier::kAvx2, gap), KernelImpl::kAvx2);

  const TierRun reference = RunTier(s, base, KernelTier::kScalar, 1);
  ExpectTierMatchesScalar(s, base, reference, KernelTier::kAvx2);
}

INSTANTIATE_TEST_SUITE_P(
    SeededConfigs, KernelDifferentialSweep,
    testing::Values(
        DiffParam{"ACGT", 40, 1, 2, 0.02, 3001},
        DiffParam{"ACGT", 60, 0, 1, 0.05, 3002},
        DiffParam{"ACGT", 60, 2, 4, 0.01, 3003},
        DiffParam{"ACGT", 80, 1, 3, 0.005, 3004},
        DiffParam{"AB", 50, 1, 2, 0.05, 3005},
        DiffParam{"AB", 70, 0, 2, 0.1, 3006},
        DiffParam{"ABC", 55, 2, 3, 0.02, 3007},
        DiffParam{"ACGT", 45, 3, 3, 0.01, 3008},    // rigid gap, W = 1
        DiffParam{"ACGT", 64, 0, 0, 0.02, 3009},    // adjacent characters
        DiffParam{"ACGT", 33, 5, 8, 0.02, 3010},    // wide gap, short seq
        DiffParam{"ACGT", 100, 2, 3, 0.008, 3011},
        DiffParam{"AB", 36, 4, 6, 0.03, 3012},
        DiffParam{"ABCDE", 48, 1, 2, 0.01, 3013},   // 5-letter alphabet
        DiffParam{"ACGT", 25, 0, 6, 0.05, 3014},    // gap wider than N
        DiffParam{"ACGT", 90, 1, 1, 0.015, 3015},   // rigid non-zero gap
        DiffParam{"ACGT", 48, 1, 2, 0.04, 3016},
        DiffParam{"ACGT", 72, 0, 3, 0.01, 3017},
        DiffParam{"AB", 64, 2, 2, 0.08, 3018},
        DiffParam{"ABC", 80, 0, 1, 0.03, 3019},
        DiffParam{"ACGT", 56, 2, 5, 0.015, 3020},
        DiffParam{"ACGT", 30, 1, 4, 0.06, 3021},
        DiffParam{"AB", 90, 1, 3, 0.04, 3022},
        DiffParam{"ABCDE", 60, 0, 2, 0.008, 3023},
        DiffParam{"ACGT", 84, 3, 4, 0.006, 3024},
        DiffParam{"ACGT", 50, 0, 5, 0.03, 3025},
        DiffParam{"ABC", 44, 1, 1, 0.05, 3026},
        DiffParam{"ACGT", 66, 4, 5, 0.01, 3027}));

}  // namespace
}  // namespace pgm
